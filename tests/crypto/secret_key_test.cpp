#include "src/crypto/secret_key.h"

#include <gtest/gtest.h>

namespace et::crypto {
namespace {

TEST(SecretKeyTest, GenerateDefaultsToAes192) {
  Rng rng(1);
  const SecretKey k = SecretKey::generate(rng);
  EXPECT_EQ(k.algorithm(), SymmetricAlg::kAes192Cbc);
  EXPECT_EQ(k.material().size(), 24u);
  EXPECT_EQ(k.padding(), PaddingScheme::kPkcs7);
  EXPECT_FALSE(k.empty());
}

TEST(SecretKeyTest, KeyLengths) {
  EXPECT_EQ(symmetric_key_len(SymmetricAlg::kAes128Cbc), 16u);
  EXPECT_EQ(symmetric_key_len(SymmetricAlg::kAes192Cbc), 24u);
  EXPECT_EQ(symmetric_key_len(SymmetricAlg::kAes256Cbc), 32u);
}

TEST(SecretKeyTest, AlgNames) {
  EXPECT_EQ(symmetric_alg_name(SymmetricAlg::kAes192Cbc), "AES-192/CBC");
}

TEST(SecretKeyTest, EncryptDecryptRoundTrip) {
  Rng rng(2);
  for (auto alg : {SymmetricAlg::kAes128Cbc, SymmetricAlg::kAes192Cbc,
                   SymmetricAlg::kAes256Cbc}) {
    const SecretKey k = SecretKey::generate(rng, alg);
    const Bytes pt = to_bytes("ALLS_WELL heartbeat #42");
    EXPECT_EQ(k.decrypt(k.encrypt(pt, rng)), pt);
  }
}

TEST(SecretKeyTest, DistinctKeysCannotDecrypt) {
  Rng rng(3);
  const SecretKey a = SecretKey::generate(rng);
  const SecretKey b = SecretKey::generate(rng);
  const Bytes ct = a.encrypt(to_bytes("secret trace"), rng);
  try {
    EXPECT_NE(b.decrypt(ct), to_bytes("secret trace"));
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(SecretKeyTest, SerializationRoundTrip) {
  Rng rng(4);
  const SecretKey k = SecretKey::generate(rng, SymmetricAlg::kAes256Cbc);
  const SecretKey parsed = SecretKey::deserialize(k.serialize());
  EXPECT_EQ(parsed, k);
  // Interop: parsed key decrypts original's output.
  const Bytes ct = k.encrypt(to_bytes("payload"), rng);
  EXPECT_EQ(parsed.decrypt(ct), to_bytes("payload"));
}

TEST(SecretKeyTest, FromMaterialValidatesLength) {
  EXPECT_THROW(
      SecretKey::from_material(Bytes(16), SymmetricAlg::kAes192Cbc),
      std::invalid_argument);
  EXPECT_NO_THROW(
      SecretKey::from_material(Bytes(24), SymmetricAlg::kAes192Cbc));
}

TEST(SecretKeyTest, EmptyKeyThrowsOnUse) {
  Rng rng(5);
  SecretKey k;
  EXPECT_TRUE(k.empty());
  EXPECT_THROW((void)k.encrypt(to_bytes("x"), rng), std::logic_error);
  EXPECT_THROW((void)k.decrypt(Bytes(32)), std::logic_error);
}

TEST(SecretKeyTest, DeterministicGenerationWithSeed) {
  Rng a(6), b(6);
  EXPECT_EQ(SecretKey::generate(a), SecretKey::generate(b));
}

}  // namespace
}  // namespace et::crypto
