// Property-based sweeps over the crypto substrate: algebraic invariants of
// BigInt, round-trip laws for AES/RSA/envelopes across parameter grids,
// and robustness of deserializers against corrupted input.
#include <gtest/gtest.h>

#include <tuple>

#include "src/crypto/aes.h"
#include "src/crypto/bigint.h"
#include "src/crypto/rsa.h"
#include "src/common/serialize.h"
#include "src/crypto/secret_key.h"

namespace et::crypto {
namespace {

// --- BigInt algebraic properties -------------------------------------------

class BigIntPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntPropertyTest, AdditionCommutesAndAssociates) {
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(300));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(300));
    const BigInt c = BigInt::random_bits(rng, 1 + rng.next_below(300));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST_P(BigIntPropertyTest, MultiplicationDistributesOverAddition) {
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(200));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(200));
    const BigInt c = BigInt::random_bits(rng, 1 + rng.next_below(200));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST_P(BigIntPropertyTest, SubtractionInvertsAddition) {
  Rng rng(GetParam() + 2);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(256));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(256));
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST_P(BigIntPropertyTest, DivModInvariantHolds) {
  Rng rng(GetParam() + 3);
  for (int i = 0; i < 25; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.next_below(400));
    const BigInt b =
        BigInt::random_bits(rng, 1 + rng.next_below(300)) + BigInt(1);
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST_P(BigIntPropertyTest, ModExpMultiplicativeProperty) {
  // (a*b)^e mod n == a^e * b^e mod n
  Rng rng(GetParam() + 4);
  BigInt n = BigInt::random_bits(rng, 96);
  if (!n.is_odd()) n = n + BigInt(1);
  const BigInt a = BigInt::random_below(rng, n);
  const BigInt b = BigInt::random_below(rng, n);
  const BigInt e = BigInt::random_bits(rng, 24);
  const BigInt lhs = ((a * b) % n).mod_exp(e, n);
  const BigInt rhs = (a.mod_exp(e, n) * b.mod_exp(e, n)) % n;
  EXPECT_EQ(lhs, rhs);
}

TEST_P(BigIntPropertyTest, BytesRoundTripAnyLength) {
  Rng rng(GetParam() + 5);
  for (int i = 0; i < 20; ++i) {
    const BigInt v = BigInt::random_bits(rng, 1 + rng.next_below(600));
    EXPECT_EQ(BigInt::from_bytes(v.to_bytes()), v);
    EXPECT_EQ(BigInt::parse("0x" + (v.is_zero() ? "0" : v.to_hex())), v);
    EXPECT_EQ(BigInt::parse(v.to_string()), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(11u, 23u, 47u, 89u, 131u));

// --- AES round-trip grid -----------------------------------------------------

class AesGridTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(AesGridTest, EncryptDecryptIdentity) {
  const auto [key_len, msg_len] = GetParam();
  Rng rng(key_len * 1000 + msg_len);
  const Aes cipher(rng.next_bytes(key_len));
  const Bytes pt = rng.next_bytes(msg_len);
  EXPECT_EQ(aes_cbc_decrypt(cipher, aes_cbc_encrypt(cipher, pt, rng)), pt);
}

INSTANTIATE_TEST_SUITE_P(
    KeyAndMessageSizes, AesGridTest,
    ::testing::Combine(::testing::Values(16u, 24u, 32u),
                       ::testing::Values(0u, 1u, 16u, 100u, 1000u)));

// --- RSA round-trip across key sizes ----------------------------------------

class RsaSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaSizeTest, SignVerifyAndEncryptDecrypt) {
  Rng rng(GetParam());
  const RsaKeyPair kp = rsa_generate(rng, GetParam());
  const Bytes msg = rng.next_bytes(100);
  EXPECT_TRUE(kp.public_key.verify(msg, kp.private_key.sign(msg)));
  const std::size_t capacity = kp.public_key.modulus_len() - 11;
  const Bytes secret = rng.next_bytes(std::min<std::size_t>(capacity, 32));
  EXPECT_EQ(kp.private_key.decrypt(kp.public_key.encrypt(secret, rng)),
            secret);
}

TEST_P(RsaSizeTest, PrivateKeySerializationPreservesOperation) {
  Rng rng(GetParam() + 7);
  const RsaKeyPair kp = rsa_generate(rng, GetParam());
  const RsaPrivateKey copy =
      RsaPrivateKey::deserialize(kp.private_key.serialize());
  const Bytes msg = rng.next_bytes(64);
  // The copy signs identically (PKCS#1 v1.5 is deterministic).
  EXPECT_EQ(copy.sign(msg), kp.private_key.sign(msg));
  EXPECT_EQ(copy.public_key(), kp.public_key);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaSizeTest,
                         ::testing::Values(384u, 512u, 768u));

// --- corruption robustness ----------------------------------------------------

TEST(CorruptionTest, SecretKeyDeserializeNeverCrashes) {
  Rng rng(71);
  const SecretKey k = SecretKey::generate(rng);
  const Bytes wire = k.serialize();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes corrupt = wire;
    corrupt[i] ^= 0xFF;
    try {
      const SecretKey parsed = SecretKey::deserialize(corrupt);
      // Parsed fine: the flipped byte was inside key material. It must
      // still behave like a (different) key.
      (void)parsed.material();
    } catch (const std::exception&) {
      // Rejection is equally acceptable.
    }
  }
}

TEST(CorruptionTest, PublicKeyDeserializeTruncationThrows) {
  Rng rng(72);
  const RsaKeyPair kp = rsa_generate(rng, 256);
  const Bytes wire = kp.public_key.serialize();
  for (std::size_t cut = 0; cut < wire.size(); cut += 3) {
    EXPECT_THROW(RsaPublicKey::deserialize(BytesView(wire.data(), cut)),
                 SerializeError)
        << "cut=" << cut;
  }
}

TEST(CorruptionTest, SignatureBitFlipsAllRejected) {
  Rng rng(73);
  const RsaKeyPair kp = rsa_generate(rng, 512);
  const Bytes msg = to_bytes("every single bit matters");
  const Bytes sig = kp.private_key.sign(msg);
  for (std::size_t byte = 0; byte < sig.size(); byte += 5) {
    for (int bit = 0; bit < 8; bit += 3) {
      Bytes bad = sig;
      bad[byte] = static_cast<std::uint8_t>(bad[byte] ^ (1u << bit));
      EXPECT_FALSE(kp.public_key.verify(msg, bad))
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

}  // namespace
}  // namespace et::crypto
