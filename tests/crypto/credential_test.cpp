#include "src/crypto/credential.h"

#include <gtest/gtest.h>

namespace et::crypto {
namespace {

class CredentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(777);
    ca_ = new CertificateAuthority("test-ca", *rng_, 512);
    other_ca_ = new CertificateAuthority("rogue-ca", *rng_, 512);
  }
  static void TearDownTestSuite() {
    delete ca_;
    delete other_ca_;
    delete rng_;
    ca_ = other_ca_ = nullptr;
    rng_ = nullptr;
  }
  static Rng* rng_;
  static CertificateAuthority* ca_;
  static CertificateAuthority* other_ca_;
};

Rng* CredentialTest::rng_ = nullptr;
CertificateAuthority* CredentialTest::ca_ = nullptr;
CertificateAuthority* CredentialTest::other_ca_ = nullptr;

TEST_F(CredentialTest, IssueAndVerify) {
  const Identity id =
      Identity::create("service-7", *ca_, *rng_, /*now=*/1000, 60 * kSecond,
                       512);
  EXPECT_EQ(id.credential.subject(), "service-7");
  EXPECT_EQ(id.credential.issuer(), "test-ca");
  EXPECT_TRUE(id.credential.verify(ca_->public_key(), 1000).is_ok());
  EXPECT_TRUE(id.credential.verify(ca_->public_key(), 1000 + 59 * kSecond)
                  .is_ok());
}

TEST_F(CredentialTest, RejectsWrongCa) {
  const Identity id = Identity::create("svc", *ca_, *rng_, 0, kSecond, 512);
  const Status s = id.credential.verify(other_ca_->public_key(), 0);
  EXPECT_EQ(s.code(), Code::kUnauthenticated);
}

TEST_F(CredentialTest, RejectsExpired) {
  const Identity id = Identity::create("svc", *ca_, *rng_, 0, kSecond, 512);
  const Status s = id.credential.verify(ca_->public_key(), 2 * kSecond);
  EXPECT_EQ(s.code(), Code::kExpired);
}

TEST_F(CredentialTest, RejectsNotYetValid) {
  const Credential c =
      ca_->issue("svc", ca_->public_key(), 10 * kSecond, kSecond);
  const Status s = c.verify(ca_->public_key(), 5 * kSecond);
  EXPECT_EQ(s.code(), Code::kExpired);
}

TEST_F(CredentialTest, SerializationRoundTrip) {
  const Identity id = Identity::create("node-42", *ca_, *rng_, 500,
                                       10 * kSecond, 512);
  const Credential parsed =
      Credential::deserialize(id.credential.serialize());
  EXPECT_EQ(parsed.subject(), "node-42");
  EXPECT_EQ(parsed.public_key(), id.keys.public_key);
  EXPECT_EQ(parsed.not_before(), 500);
  EXPECT_TRUE(parsed.verify(ca_->public_key(), 600).is_ok());
}

TEST_F(CredentialTest, TamperedSubjectFailsVerification) {
  const Identity id = Identity::create("alice", *ca_, *rng_, 0, kSecond, 512);
  // Re-assemble a credential claiming a different subject with the same
  // signature.
  const Credential forged("mallory", id.credential.public_key(),
                          id.credential.issuer(), id.credential.not_before(),
                          id.credential.not_after(),
                          id.credential.signature());
  EXPECT_EQ(forged.verify(ca_->public_key(), 0).code(),
            Code::kUnauthenticated);
}

TEST_F(CredentialTest, TamperedKeyFailsVerification) {
  const Identity victim = Identity::create("victim", *ca_, *rng_, 0, kSecond,
                                           512);
  const Identity attacker = Identity::create("attacker", *ca_, *rng_, 0,
                                             kSecond, 512);
  // Attacker substitutes their key under the victim's subject.
  const Credential forged("victim", attacker.keys.public_key, "test-ca",
                          victim.credential.not_before(),
                          victim.credential.not_after(),
                          victim.credential.signature());
  EXPECT_FALSE(forged.verify(ca_->public_key(), 0).is_ok());
}

TEST_F(CredentialTest, EmptyCredentialRejected) {
  Credential empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.verify(ca_->public_key(), 0).is_ok());
}

TEST_F(CredentialTest, ProofOfPossessionFlow) {
  // The §3.2 registration check: sign a message, verify with the
  // credential's embedded key.
  const Identity id = Identity::create("entity-9", *ca_, *rng_, 0,
                                       kSecond, 512);
  const Bytes msg = to_bytes("registration request body");
  const Bytes sig = id.keys.private_key.sign(msg);
  ASSERT_TRUE(id.credential.verify(ca_->public_key(), 0).is_ok());
  EXPECT_TRUE(id.credential.public_key().verify(msg, sig));
}

}  // namespace
}  // namespace et::crypto
