#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"

namespace et::crypto {
namespace {

// FIPS 180 / NIST CAVS known-answer vectors.

TEST(Sha1Test, EmptyInput) {
  EXPECT_EQ(hex_encode(Sha1::digest({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(hex_encode(Sha1::digest(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(Sha1::digest(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  Sha1 h;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    h.update(BytesView(msg.data() + i, 1));
  }
  EXPECT_EQ(h.finalize(), Sha1::digest(msg));
}

TEST(Sha1Test, ResetRestoresInitialState) {
  Sha1 h;
  h.update(to_bytes("junk"));
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(hex_encode(h.finalize()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, BoundarySizes) {
  // Exercise the padding edge at 55/56/64 bytes.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const Bytes m(n, 0x41);
    Sha1 a;
    a.update(m);
    EXPECT_EQ(a.finalize(), Sha1::digest(m)) << "n=" << n;
  }
}

TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(
      hex_encode(Sha256::digest({})),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      hex_encode(Sha256::digest(to_bytes("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      hex_encode(Sha256::digest(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(10000, 'a');
  for (int i = 0; i < 100; ++i) h.update(chunk);
  EXPECT_EQ(
      hex_encode(h.finalize()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes msg;
  for (int i = 0; i < 300; ++i) msg.push_back(static_cast<std::uint8_t>(i));
  Sha256 h;
  h.update(BytesView(msg.data(), 100));
  h.update(BytesView(msg.data() + 100, 200));
  EXPECT_EQ(h.finalize(), Sha256::digest(msg));
}

TEST(Sha256Test, DigestSizes) {
  EXPECT_EQ(Sha1::digest(to_bytes("x")).size(), Sha1::kDigestSize);
  EXPECT_EQ(Sha256::digest(to_bytes("x")).size(), Sha256::kDigestSize);
}

}  // namespace
}  // namespace et::crypto
