#include "src/crypto/bigint.h"

#include <gtest/gtest.h>

namespace et::crypto {
namespace {

TEST(BigIntTest, ZeroBasics) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_TRUE(z.to_bytes().empty());
}

TEST(BigIntTest, SmallValues) {
  EXPECT_EQ(BigInt(1).to_string(), "1");
  EXPECT_EQ(BigInt(0xFFFFFFFFull).bit_length(), 32u);
  EXPECT_EQ(BigInt(0x100000000ull).bit_length(), 33u);
  EXPECT_EQ(BigInt(12345678901234567ull).to_string(), "12345678901234567");
}

TEST(BigIntTest, ParseDecimalAndHex) {
  EXPECT_EQ(BigInt::parse("12345678901234567890123456789").to_string(),
            "12345678901234567890123456789");
  EXPECT_EQ(BigInt::parse("0xff").to_u64(), 255u);
  EXPECT_EQ(BigInt::parse("0xDEADBEEFCAFE").to_hex(), "deadbeefcafe");
  EXPECT_THROW(BigInt::parse(""), std::invalid_argument);
  EXPECT_THROW(BigInt::parse("12a"), std::invalid_argument);
}

TEST(BigIntTest, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const BigInt v = BigInt::random_bits(rng, 1 + rng.next_below(512));
    EXPECT_EQ(BigInt::from_bytes(v.to_bytes()), v);
  }
}

TEST(BigIntTest, FromBytesIgnoresLeadingZeros) {
  const Bytes with_zeros{0x00, 0x00, 0x01, 0x02};
  const Bytes minimal{0x01, 0x02};
  EXPECT_EQ(BigInt::from_bytes(with_zeros), BigInt::from_bytes(minimal));
}

TEST(BigIntTest, ToBytesPadsToMinLen) {
  const Bytes b = BigInt(0x0102).to_bytes(4);
  EXPECT_EQ(b, (Bytes{0x00, 0x00, 0x01, 0x02}));
}

TEST(BigIntTest, AdditionWithCarryChain) {
  const BigInt a = BigInt::parse("0xffffffffffffffffffffffff");
  EXPECT_EQ((a + BigInt(1)).to_hex(), "1000000000000000000000000");
}

TEST(BigIntTest, SubtractionWithBorrow) {
  const BigInt a = BigInt::parse("0x10000000000000000");
  EXPECT_EQ((a - BigInt(1)).to_hex(), "ffffffffffffffff");
  EXPECT_THROW(BigInt(1) - BigInt(2), std::underflow_error);
}

TEST(BigIntTest, MultiplicationKnownProduct) {
  const BigInt a = BigInt::parse("123456789012345678901234567890");
  const BigInt b = BigInt::parse("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_string(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, MultiplyByZeroAndOne) {
  const BigInt a = BigInt::parse("0xabcdef0123456789");
  EXPECT_TRUE((a * BigInt()).is_zero());
  EXPECT_EQ(a * BigInt(1), a);
}

TEST(BigIntTest, ShiftRoundTrip) {
  Rng rng(2);
  for (std::size_t shift : {1u, 31u, 32u, 33u, 100u}) {
    const BigInt v = BigInt::random_bits(rng, 200) + BigInt(1);
    EXPECT_EQ((v << shift) >> shift, v) << "shift=" << shift;
  }
}

TEST(BigIntTest, DivModIdentity) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_bits(rng, 256);
    const BigInt b = BigInt::random_bits(rng, 1 + rng.next_below(200)) +
                     BigInt(1);
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigIntTest, DivModSmallerDividend) {
  const BigInt a(5), b(7);
  const auto [q, r] = a.divmod(b);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, a);
}

TEST(BigIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(5) / BigInt(), std::domain_error);
  EXPECT_THROW(BigInt(5) % BigInt(), std::domain_error);
}

TEST(BigIntTest, KnuthDCornerCase) {
  // Exercises the "add back" branch probabilistically: many divisions with
  // divisors having a high top limb.
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const BigInt b = (BigInt(1) << 95) + BigInt::random_bits(rng, 64);
    const BigInt a = BigInt::random_bits(rng, 192);
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigIntTest, Comparison) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt::parse("0x100000000"), BigInt(0xFFFFFFFFull));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, ModExpSmallKnown) {
  // 4^13 mod 497 = 445 (classic example).
  EXPECT_EQ(BigInt(4).mod_exp(BigInt(13), BigInt(497)).to_u64(), 445u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(BigInt(2).mod_exp(BigInt(1000002), BigInt(1000003)).to_u64(), 1u);
}

TEST(BigIntTest, ModExpEvenModulus) {
  // 3^5 mod 100 = 43 (non-Montgomery path).
  EXPECT_EQ(BigInt(3).mod_exp(BigInt(5), BigInt(100)).to_u64(), 43u);
}

TEST(BigIntTest, ModExpZeroExponent) {
  EXPECT_EQ(BigInt(12345).mod_exp(BigInt(), BigInt(97)).to_u64(), 1u);
}

TEST(BigIntTest, MontgomeryMatchesClassical) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    BigInt n = BigInt::random_bits(rng, 128);
    if (!n.is_odd()) n = n + BigInt(1);
    if (n.bit_length() < 2) continue;
    const BigInt base = BigInt::random_bits(rng, 128);
    const BigInt exp = BigInt::random_bits(rng, 40);
    // Classical reference via repeated reduction.
    BigInt acc(1);
    BigInt b = base % n;
    for (std::size_t bit = exp.bit_length(); bit-- > 0;) {
      acc = (acc * acc) % n;
      if (exp.bit(bit)) acc = (acc * b) % n;
    }
    EXPECT_EQ(base.mod_exp(exp, n), acc);
  }
}

TEST(BigIntTest, GcdKnown) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)).to_u64(), 6u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
}

TEST(BigIntTest, ModInverse) {
  // 3 * 7 = 21 = 1 mod 10.
  EXPECT_EQ(BigInt(3).mod_inverse(BigInt(10)).to_u64(), 7u);
  Rng rng(6);
  const BigInt m = BigInt::generate_prime(rng, 64, 16);
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::random_below(rng, m - BigInt(1)) + BigInt(1);
    const BigInt inv = a.mod_inverse(m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
}

TEST(BigIntTest, ModInverseNonCoprimeThrows) {
  EXPECT_THROW(BigInt(4).mod_inverse(BigInt(8)), std::domain_error);
}

TEST(BigIntTest, PrimalityKnownPrimes) {
  Rng rng(7);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 97ull, 65537ull, 4294967291ull}) {
    EXPECT_TRUE(BigInt(p).is_probable_prime(rng)) << p;
  }
}

TEST(BigIntTest, PrimalityKnownComposites) {
  Rng rng(8);
  // Includes Carmichael numbers 561 and 41041.
  for (std::uint64_t c : {1ull, 4ull, 100ull, 561ull, 41041ull,
                          4294967295ull}) {
    EXPECT_FALSE(BigInt(c).is_probable_prime(rng)) << c;
  }
}

TEST(BigIntTest, GeneratePrimeHasExactBitLength) {
  Rng rng(9);
  const BigInt p = BigInt::generate_prime(rng, 96, 16);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(p.is_probable_prime(rng, 16));
}

TEST(BigIntTest, RandomBelowIsBelow) {
  Rng rng(10);
  const BigInt bound = BigInt::parse("1000000007");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
}

TEST(BigIntTest, DecimalStringLarge) {
  const BigInt v = BigInt::parse("340282366920938463463374607431768211456");
  EXPECT_EQ(v, BigInt(1) << 128);
  EXPECT_EQ(v.to_string(), "340282366920938463463374607431768211456");
}

}  // namespace
}  // namespace et::crypto
