#include "src/crypto/rsa.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace et::crypto {
namespace {

// Key generation is the slow part; share one pair across the suite.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(4242);
    pair_ = new RsaKeyPair(rsa_generate(rng, 1024));
    small_ = new RsaKeyPair(rsa_generate(rng, 512));
  }
  static void TearDownTestSuite() {
    delete pair_;
    delete small_;
    pair_ = nullptr;
    small_ = nullptr;
  }
  static RsaKeyPair* pair_;
  static RsaKeyPair* small_;
};

RsaKeyPair* RsaTest::pair_ = nullptr;
RsaKeyPair* RsaTest::small_ = nullptr;

TEST_F(RsaTest, ModulusHasRequestedLength) {
  EXPECT_EQ(pair_->public_key.n().bit_length(), 1024u);
  EXPECT_EQ(pair_->public_key.modulus_len(), 128u);
  EXPECT_EQ(small_->public_key.n().bit_length(), 512u);
}

TEST_F(RsaTest, SignVerifySha1) {
  const Bytes msg = to_bytes("trace registration message");
  const Bytes sig = pair_->private_key.sign(msg, HashAlg::kSha1);
  EXPECT_EQ(sig.size(), 128u);
  EXPECT_TRUE(pair_->public_key.verify(msg, sig, HashAlg::kSha1));
}

TEST_F(RsaTest, SignVerifySha256) {
  const Bytes msg = to_bytes("trace registration message");
  const Bytes sig = pair_->private_key.sign(msg, HashAlg::kSha256);
  EXPECT_TRUE(pair_->public_key.verify(msg, sig, HashAlg::kSha256));
  // Digest mismatch must fail.
  EXPECT_FALSE(pair_->public_key.verify(msg, sig, HashAlg::kSha1));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  const Bytes sig = pair_->private_key.sign(to_bytes("original"));
  EXPECT_FALSE(pair_->public_key.verify(to_bytes("forged"), sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  const Bytes msg = to_bytes("message");
  Bytes sig = pair_->private_key.sign(msg);
  sig[40] ^= 0x01;
  EXPECT_FALSE(pair_->public_key.verify(msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  const Bytes msg = to_bytes("message");
  const Bytes sig = pair_->private_key.sign(msg);
  EXPECT_FALSE(small_->public_key.verify(msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongLengthSignature) {
  const Bytes msg = to_bytes("message");
  Bytes sig = pair_->private_key.sign(msg);
  sig.pop_back();
  EXPECT_FALSE(pair_->public_key.verify(msg, sig));
  sig.push_back(0);
  sig.push_back(0);
  EXPECT_FALSE(pair_->public_key.verify(msg, sig));
}

TEST_F(RsaTest, SignatureIsDeterministic) {
  const Bytes msg = to_bytes("PKCS#1 v1.5 is deterministic");
  EXPECT_EQ(pair_->private_key.sign(msg), pair_->private_key.sign(msg));
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  Rng rng(1);
  const Bytes pt = to_bytes("secret trace key material 192bit");
  const Bytes ct = pair_->public_key.encrypt(pt, rng);
  EXPECT_EQ(ct.size(), 128u);
  EXPECT_EQ(pair_->private_key.decrypt(ct), pt);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  Rng rng(2);
  const Bytes pt = to_bytes("same message");
  EXPECT_NE(pair_->public_key.encrypt(pt, rng),
            pair_->public_key.encrypt(pt, rng));
}

TEST_F(RsaTest, EncryptRejectsOverlongMessage) {
  Rng rng(3);
  EXPECT_THROW(pair_->public_key.encrypt(Bytes(118), rng),
               std::invalid_argument);
  // 117 = 128 - 11 is the PKCS#1 v1.5 limit for a 1024-bit key.
  EXPECT_NO_THROW(pair_->public_key.encrypt(Bytes(117), rng));
}

TEST_F(RsaTest, DecryptRejectsGarbage) {
  EXPECT_THROW(pair_->private_key.decrypt(Bytes(128, 0xAB)),
               std::invalid_argument);
  EXPECT_THROW(pair_->private_key.decrypt(Bytes(64)), std::invalid_argument);
}

TEST_F(RsaTest, DecryptWithWrongKeyFails) {
  Rng rng(4);
  const Bytes ct = small_->public_key.encrypt(to_bytes("hello"), rng);
  EXPECT_THROW((void)pair_->private_key.decrypt(ct), std::invalid_argument);
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  const Bytes wire = pair_->public_key.serialize();
  const RsaPublicKey parsed = RsaPublicKey::deserialize(wire);
  EXPECT_EQ(parsed, pair_->public_key);
  const Bytes msg = to_bytes("serialized key still verifies");
  EXPECT_TRUE(parsed.verify(msg, pair_->private_key.sign(msg)));
}

TEST_F(RsaTest, FingerprintStableAndDistinct) {
  EXPECT_EQ(pair_->public_key.fingerprint(), pair_->public_key.fingerprint());
  EXPECT_NE(pair_->public_key.fingerprint(),
            small_->public_key.fingerprint());
  EXPECT_EQ(pair_->public_key.fingerprint().size(), 20u);
}

TEST_F(RsaTest, EmptyKeyBehaviour) {
  RsaPublicKey empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.verify(to_bytes("m"), Bytes(128)));
  RsaPrivateKey empty_priv;
  EXPECT_THROW((void)empty_priv.sign(to_bytes("m")), std::logic_error);
}

TEST_F(RsaTest, CrtMatchesPlainExponentiation) {
  // private_op via CRT must invert the public operation.
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const Bytes pt = rng.next_bytes(32);
    const Bytes ct = small_->public_key.encrypt(pt, rng);
    EXPECT_EQ(small_->private_key.decrypt(ct), pt);
  }
}

TEST(RsaGenerateTest, RejectsBadSizes) {
  Rng rng(6);
  EXPECT_THROW(rsa_generate(rng, 100), std::invalid_argument);
  EXPECT_THROW(rsa_generate(rng, 127), std::invalid_argument);
}

TEST(RsaGenerateTest, DistinctKeysAcrossCalls) {
  Rng rng(7);
  const RsaKeyPair a = rsa_generate(rng, 256);
  const RsaKeyPair b = rsa_generate(rng, 256);
  EXPECT_NE(a.public_key.n(), b.public_key.n());
}

}  // namespace
}  // namespace et::crypto
