#include "src/crypto/aes.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace et::crypto {
namespace {

// FIPS 197 Appendix C known-answer tests.

TEST(AesBlockTest, Fips197Aes128) {
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  std::uint8_t block[16];
  std::memcpy(block, pt.data(), 16);
  cipher.encrypt_block(block);
  EXPECT_EQ(hex_encode(BytesView(block, 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  cipher.decrypt_block(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(AesBlockTest, Fips197Aes192) {
  const Bytes key =
      hex_decode("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  EXPECT_EQ(cipher.key_bits(), 192u);
  std::uint8_t block[16];
  std::memcpy(block, pt.data(), 16);
  cipher.encrypt_block(block);
  EXPECT_EQ(hex_encode(BytesView(block, 16)),
            "dda97ca4864cdfe06eaf70a0ec0d7191");
  cipher.decrypt_block(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(AesBlockTest, Fips197Aes256) {
  const Bytes key = hex_decode(
      "000102030405060708090a0b0c0d0e0f"
      "101112131415161718191a1b1c1d1e1f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  Aes cipher(key);
  std::uint8_t block[16];
  std::memcpy(block, pt.data(), 16);
  cipher.encrypt_block(block);
  EXPECT_EQ(hex_encode(BytesView(block, 16)),
            "8ea2b7ca516745bfeafc49904b496089");
  cipher.decrypt_block(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(AesTest, RejectsBadKeyLengths) {
  EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(17)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33)), std::invalid_argument);
}

class AesCbcTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesCbcTest, RoundTripVariousLengths) {
  Rng rng(101);
  const Bytes key = rng.next_bytes(24);
  const Aes cipher(key);
  const Bytes pt = rng.next_bytes(GetParam());
  const Bytes ct = aes_cbc_encrypt(cipher, pt, rng);
  EXPECT_EQ(aes_cbc_decrypt(cipher, ct), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AesCbcTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 100, 512,
                                           4096));

TEST(AesCbcTest, CiphertextIsIvPlusPaddedBlocks) {
  Rng rng(102);
  const Aes cipher(rng.next_bytes(16));
  // 16-byte plaintext pads to 32 bytes, plus 16-byte IV.
  const Bytes ct = aes_cbc_encrypt(cipher, Bytes(16, 0x42), rng);
  EXPECT_EQ(ct.size(), 48u);
}

TEST(AesCbcTest, DistinctIvsGiveDistinctCiphertexts) {
  Rng rng(103);
  const Aes cipher(rng.next_bytes(24));
  const Bytes pt = to_bytes("same plaintext every time");
  const Bytes c1 = aes_cbc_encrypt(cipher, pt, rng);
  const Bytes c2 = aes_cbc_encrypt(cipher, pt, rng);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(aes_cbc_decrypt(cipher, c1), aes_cbc_decrypt(cipher, c2));
}

TEST(AesCbcTest, WrongKeyFailsToDecrypt) {
  Rng rng(104);
  const Aes k1(rng.next_bytes(24));
  const Aes k2(rng.next_bytes(24));
  const Bytes ct = aes_cbc_encrypt(k1, to_bytes("confidential trace"), rng);
  // Either throws on padding or yields different plaintext.
  try {
    const Bytes pt = aes_cbc_decrypt(k2, ct);
    EXPECT_NE(pt, to_bytes("confidential trace"));
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(AesCbcTest, TamperedCiphertextDetectedOrGarbled) {
  Rng rng(105);
  const Aes cipher(rng.next_bytes(24));
  const Bytes pt = to_bytes("availability trace payload xxxx");
  Bytes ct = aes_cbc_encrypt(cipher, pt, rng);
  ct[20] ^= 0x80;
  try {
    EXPECT_NE(aes_cbc_decrypt(cipher, ct), pt);
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

TEST(AesCbcTest, RejectsShortOrMisalignedCiphertext) {
  Rng rng(106);
  const Aes cipher(rng.next_bytes(16));
  EXPECT_THROW(aes_cbc_decrypt(cipher, Bytes(16)), std::invalid_argument);
  EXPECT_THROW(aes_cbc_decrypt(cipher, Bytes(33)), std::invalid_argument);
  EXPECT_THROW(aes_cbc_decrypt(cipher, Bytes{}), std::invalid_argument);
}

TEST(AesCbcTest, AllKeySizesInterop) {
  Rng rng(107);
  for (std::size_t len : {16u, 24u, 32u}) {
    const Aes cipher(rng.next_bytes(len));
    const Bytes pt = rng.next_bytes(200);
    EXPECT_EQ(aes_cbc_decrypt(cipher, aes_cbc_encrypt(cipher, pt, rng)), pt);
  }
}

}  // namespace
}  // namespace et::crypto
