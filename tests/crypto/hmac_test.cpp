#include "src/crypto/hmac.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace et::crypto {
namespace {

// RFC 2202 (HMAC-SHA1) and RFC 4231 (HMAC-SHA256) test vectors.

TEST(HmacSha1Test, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha1(key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1Test, Rfc2202Case2) {
  EXPECT_EQ(hex_encode(hmac_sha1(to_bytes("Jefe"),
                                 to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1Test, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(hmac_sha1(key, data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1Test, LongKeyIsHashed) {
  // RFC 2202 case 6: 80-byte key (> block size).
  const Bytes key(80, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha1(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash "
                              "Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha256Test, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(
      hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(
      hex_encode(hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, VerifyAcceptsValidTag) {
  const Bytes key = to_bytes("secret");
  const Bytes msg = to_bytes("ALLS_WELL trace payload");
  EXPECT_TRUE(hmac_sha1_verify(key, msg, hmac_sha1(key, msg)));
  EXPECT_TRUE(hmac_sha256_verify(key, msg, hmac_sha256(key, msg)));
}

TEST(HmacTest, VerifyRejectsTamperedMessage) {
  const Bytes key = to_bytes("secret");
  const Bytes tag = hmac_sha1(key, to_bytes("original"));
  EXPECT_FALSE(hmac_sha1_verify(key, to_bytes("tampered"), tag));
}

TEST(HmacTest, VerifyRejectsWrongKey) {
  const Bytes msg = to_bytes("msg");
  const Bytes tag = hmac_sha256(to_bytes("key1"), msg);
  EXPECT_FALSE(hmac_sha256_verify(to_bytes("key2"), msg, tag));
}

TEST(HmacTest, VerifyRejectsTruncatedTag) {
  const Bytes key = to_bytes("k");
  const Bytes msg = to_bytes("m");
  Bytes tag = hmac_sha1(key, msg);
  tag.pop_back();
  EXPECT_FALSE(hmac_sha1_verify(key, msg, tag));
}

TEST(HmacTest, EmptyKeyAndMessage) {
  // Must not crash; produces a fixed value.
  const Bytes tag = hmac_sha1({}, {});
  EXPECT_EQ(tag.size(), 20u);
  EXPECT_TRUE(hmac_sha1_verify({}, {}, tag));
}

}  // namespace
}  // namespace et::crypto
