// Robustness of the pub/sub wire format and the broker's handling of
// hostile bytes: random mutations must never crash a parser — they either
// round-trip to an equivalent frame or throw SerializeError, and brokers
// survive arbitrary garbage.
#include <gtest/gtest.h>

#include "src/pubsub/broker.h"
#include "src/pubsub/client.h"
#include "src/pubsub/message.h"
#include "src/pubsub/topology.h"
#include "src/transport/virtual_network.h"

namespace et::pubsub {
namespace {

Message random_message(Rng& rng) {
  Message m;
  const char* topics[] = {
      "a/b/c",
      "Constrained/Traces/Broker/Publish-Only/uuid/AllUpdates",
      "Constrained/Traces/entity/Subscribe-Only/uuid/sess",
      "x",
  };
  m.topic = topics[rng.next_below(4)];
  m.payload = rng.next_bytes(rng.next_below(200));
  m.publisher = "pub" + std::to_string(rng.next_below(10));
  m.sequence = rng.next_u64();
  m.timestamp = static_cast<TimePoint>(rng.next_u64() >> 1);
  m.auth_token = rng.next_bytes(rng.next_below(64));
  m.signature = rng.next_bytes(rng.next_below(64));
  m.encrypted = rng.next_below(2) == 1;
  return m;
}

TEST(WireRobustnessTest, RandomMessagesRoundTrip) {
  Rng rng(1001);
  for (int i = 0; i < 200; ++i) {
    const Message m = random_message(rng);
    const Frame parsed = Frame::deserialize(make_publish(m).serialize());
    ASSERT_TRUE(parsed.message);
    EXPECT_EQ(parsed.message->topic, m.topic);
    EXPECT_EQ(parsed.message->payload, m.payload);
    EXPECT_EQ(parsed.message->publisher, m.publisher);
    EXPECT_EQ(parsed.message->sequence, m.sequence);
    EXPECT_EQ(parsed.message->timestamp, m.timestamp);
    EXPECT_EQ(parsed.message->auth_token, m.auth_token);
    EXPECT_EQ(parsed.message->signature, m.signature);
    EXPECT_EQ(parsed.message->encrypted, m.encrypted);
  }
}

TEST(WireRobustnessTest, SingleByteMutationsNeverCrash) {
  Rng rng(1002);
  const Bytes wire = make_publish(random_message(rng)).serialize();
  int parsed_ok = 0, rejected = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t delta : {0x01, 0x80, 0xFF}) {
      Bytes mutated = wire;
      mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ delta);
      try {
        (void)Frame::deserialize(mutated);
        ++parsed_ok;
      } catch (const SerializeError&) {
        ++rejected;
      }
    }
  }
  // Both outcomes occur; what matters is the absence of crashes/UB.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed_ok + rejected, 0);
}

TEST(WireRobustnessTest, RandomGarbageNeverCrashesParser) {
  Rng rng(1003);
  for (int i = 0; i < 500; ++i) {
    const Bytes garbage = rng.next_bytes(rng.next_below(300));
    try {
      (void)Frame::deserialize(garbage);
    } catch (const SerializeError&) {
      // expected for nearly everything
    }
  }
}

TEST(WireRobustnessTest, TruncationsAllThrow) {
  Rng rng(1004);
  const Bytes wire = make_publish(random_message(rng)).serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_THROW((void)Frame::deserialize(BytesView(wire.data(), cut)),
                 SerializeError)
        << "cut=" << cut;
  }
}

TEST(WireRobustnessTest, BrokerSurvivesGarbageFlood) {
  transport::VirtualTimeNetwork net(1005);
  Topology topo(net);
  Broker& b = topo.add_broker({.name = "b0", .misbehaviour_threshold = 1000});
  Rng rng(1006);

  const transport::NodeId hose =
      net.add_node("firehose", [](transport::NodeId, BytesView) {});
  net.link(hose, b.node(), transport::LinkParams::ideal_profile());
  for (int i = 0; i < 300; ++i) {
    (void)net.send(hose, b.node(), rng.next_bytes(rng.next_below(120)));
  }
  net.run_until_idle();

  // Broker still functions for legitimate clients.
  Client pub(net, "p"), sub(net, "s");
  pub.connect(b.node(), transport::LinkParams::ideal_profile());
  sub.connect(b.node(), transport::LinkParams::ideal_profile());
  int got = 0;
  sub.subscribe("still/alive", [&](const Message&) { ++got; });
  net.run_until_idle();
  pub.publish("still/alive", to_bytes("yes"));
  net.run_until_idle();
  EXPECT_EQ(got, 1);
}

TEST(WireRobustnessTest, ClientSurvivesGarbageFromBroker) {
  transport::VirtualTimeNetwork net(1007);
  Topology topo(net);
  Broker& b = topo.add_broker({.name = "b0"});
  Client c(net, "victim");
  c.connect(b.node(), transport::LinkParams::ideal_profile());
  net.run_until_idle();

  // A malicious "broker" node sprays garbage straight at the client.
  Rng rng(1008);
  const transport::NodeId evil =
      net.add_node("evil", [](transport::NodeId, BytesView) {});
  net.link(evil, c.node(), transport::LinkParams::ideal_profile());
  for (int i = 0; i < 200; ++i) {
    (void)net.send(evil, c.node(), rng.next_bytes(rng.next_below(100)));
  }
  net.run_until_idle();
  EXPECT_TRUE(c.connected());  // unshaken
}

}  // namespace
}  // namespace et::pubsub
