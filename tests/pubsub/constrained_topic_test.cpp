#include "src/pubsub/constrained_topic.h"

#include <gtest/gtest.h>

namespace et::pubsub {
namespace {

TEST(ConstrainedTopicTest, NonConstrainedReturnsNullopt) {
  EXPECT_FALSE(ConstrainedTopic::parse("StockQuotes/Companies/Adobe"));
  EXPECT_FALSE(ConstrainedTopic::parse(""));
  EXPECT_FALSE(is_constrained_topic("a/Constrained/b"));
  EXPECT_TRUE(is_constrained_topic("/Constrained/Traces"));
}

TEST(ConstrainedTopicTest, FullyExplicitForm) {
  const auto ct = ConstrainedTopic::parse(
      "/Constrained/Traces/Broker/Subscribe-Only/Limited/Trace-Topic");
  ASSERT_TRUE(ct);
  EXPECT_EQ(ct->event_type, "Traces");
  EXPECT_EQ(ct->constrainer, "Broker");
  EXPECT_TRUE(ct->constrainer_is_broker());
  EXPECT_EQ(ct->allowed, AllowedActions::kSubscribeOnly);
  EXPECT_EQ(ct->distribution, Distribution::kDisseminate);
  EXPECT_EQ(ct->suffixes,
            (std::vector<std::string>{"Limited", "Trace-Topic"}));
}

TEST(ConstrainedTopicTest, PaperEquivalenceExample) {
  // §3.1: /Constrained/Traces/Broker/PublishSubscribe/Limited and
  // /Constrained/Traces/Limited are equivalent topics.
  const auto full = ConstrainedTopic::parse(
      "/Constrained/Traces/Broker/PublishSubscribe/Limited");
  const auto elided = ConstrainedTopic::parse("/Constrained/Traces/Limited");
  ASSERT_TRUE(full);
  ASSERT_TRUE(elided);
  EXPECT_EQ(full->event_type, elided->event_type);
  EXPECT_EQ(full->constrainer, elided->constrainer);
  EXPECT_EQ(full->allowed, elided->allowed);
  EXPECT_EQ(full->distribution, elided->distribution);
  EXPECT_EQ(full->suffixes, elided->suffixes);
  EXPECT_EQ(full->to_topic(), elided->to_topic());
}

TEST(ConstrainedTopicTest, DefaultsWhenAllOmitted) {
  const auto ct = ConstrainedTopic::parse("/Constrained");
  ASSERT_TRUE(ct);
  EXPECT_EQ(ct->event_type, "RealTime");
  EXPECT_EQ(ct->constrainer, "Broker");
  EXPECT_EQ(ct->allowed, AllowedActions::kPublishSubscribe);
  EXPECT_EQ(ct->distribution, Distribution::kDisseminate);
}

TEST(ConstrainedTopicTest, EntityConstrainer) {
  const auto ct = ConstrainedTopic::parse(
      "Constrained/Traces/entity-42/Subscribe-Only/uuid/session");
  ASSERT_TRUE(ct);
  EXPECT_EQ(ct->constrainer, "entity-42");
  EXPECT_FALSE(ct->constrainer_is_broker());
  EXPECT_EQ(ct->allowed, AllowedActions::kSubscribeOnly);
}

TEST(ConstrainedTopicTest, BrokerOnlyShortForm) {
  const auto ct =
      ConstrainedTopic::parse("Constrained/Broker/Publish-Only/x");
  ASSERT_TRUE(ct);
  EXPECT_EQ(ct->event_type, "RealTime");  // omitted
  EXPECT_EQ(ct->constrainer, "Broker");
  EXPECT_EQ(ct->allowed, AllowedActions::kPublishOnly);
  EXPECT_EQ(ct->suffixes, (std::vector<std::string>{"x"}));
}

TEST(ConstrainedTopicTest, SuppressDistribution) {
  const auto ct = ConstrainedTopic::parse(
      "Constrained/Traces/Broker/Publish-Only/Suppress/x");
  ASSERT_TRUE(ct);
  EXPECT_EQ(ct->distribution, Distribution::kSuppress);
  EXPECT_EQ(ct->suffixes, (std::vector<std::string>{"x"}));
}

TEST(ConstrainedTopicTest, DistributionWithoutAction) {
  const auto ct =
      ConstrainedTopic::parse("Constrained/Traces/Broker/Suppress/x");
  ASSERT_TRUE(ct);
  EXPECT_EQ(ct->allowed, AllowedActions::kPublishSubscribe);  // default
  EXPECT_EQ(ct->distribution, Distribution::kSuppress);
}

TEST(ConstrainedTopicTest, RoundTripThroughToTopic) {
  const auto ct = ConstrainedTopic::parse(
      "Constrained/Traces/Broker/Publish-Only/abc/ChangeNotifications");
  ASSERT_TRUE(ct);
  const auto again = ConstrainedTopic::parse(ct->to_topic());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->event_type, ct->event_type);
  EXPECT_EQ(again->constrainer, ct->constrainer);
  EXPECT_EQ(again->allowed, ct->allowed);
  EXPECT_EQ(again->suffixes, ct->suffixes);
}

// --- action checks -------------------------------------------------------

TEST(ConstrainedActionTest, UnconstrainedTopicAllowsEverything) {
  EXPECT_TRUE(check_constrained_action("news/sports", TopicAction::kPublish,
                                       false, "anyone")
                  .is_ok());
  EXPECT_TRUE(check_constrained_action("news/sports",
                                       TopicAction::kSubscribe, false, "x")
                  .is_ok());
}

TEST(ConstrainedActionTest, PublishOnlyReservesPublishForBroker) {
  const std::string topic =
      "Constrained/Traces/Broker/Publish-Only/uuid/AllUpdates";
  // Broker publishes: OK. Client publishes: denied. Anyone subscribes: OK.
  EXPECT_TRUE(check_constrained_action(topic, TopicAction::kPublish, true, "")
                  .is_ok());
  EXPECT_EQ(check_constrained_action(topic, TopicAction::kPublish, false,
                                     "client")
                .code(),
            Code::kPermissionDenied);
  EXPECT_TRUE(
      check_constrained_action(topic, TopicAction::kSubscribe, false, "c")
          .is_ok());
}

TEST(ConstrainedActionTest, SubscribeOnlyReservesSubscribe) {
  const std::string topic =
      "Constrained/Traces/Broker/Subscribe-Only/Registration";
  // Only brokers subscribe; clients may publish (to reach the broker).
  EXPECT_TRUE(
      check_constrained_action(topic, TopicAction::kSubscribe, true, "")
          .is_ok());
  EXPECT_FALSE(
      check_constrained_action(topic, TopicAction::kSubscribe, false, "c")
          .is_ok());
  EXPECT_TRUE(check_constrained_action(topic, TopicAction::kPublish, false,
                                       "entity")
                  .is_ok());
}

TEST(ConstrainedActionTest, EntityConstrainerMatchesById) {
  const std::string topic =
      "Constrained/Traces/entity-7/Subscribe-Only/uuid/sess";
  EXPECT_TRUE(check_constrained_action(topic, TopicAction::kSubscribe, false,
                                       "entity-7")
                  .is_ok());
  EXPECT_FALSE(check_constrained_action(topic, TopicAction::kSubscribe,
                                        false, "entity-8")
                   .is_ok());
  // A broker is NOT the entity; it may publish (complement) but not
  // subscribe.
  EXPECT_FALSE(
      check_constrained_action(topic, TopicAction::kSubscribe, true, "")
          .is_ok());
  EXPECT_TRUE(check_constrained_action(topic, TopicAction::kPublish, true, "")
                  .is_ok());
}

TEST(ConstrainedActionTest, PublishSubscribeReservesBoth) {
  const std::string topic = "Constrained/Admin/Broker/PublishSubscribe/ctl";
  EXPECT_FALSE(
      check_constrained_action(topic, TopicAction::kPublish, false, "c")
          .is_ok());
  EXPECT_FALSE(
      check_constrained_action(topic, TopicAction::kSubscribe, false, "c")
          .is_ok());
  EXPECT_TRUE(check_constrained_action(topic, TopicAction::kPublish, true, "")
                  .is_ok());
}

// --- tracing topic builders ----------------------------------------------

TEST(TraceTopicsTest, BuildersProduceParseableTopics) {
  const std::string uuid = "9f2c1d34-aaaa-4bbb-8ccc-123456789abc";
  const auto reg = ConstrainedTopic::parse(trace_topics::registration());
  ASSERT_TRUE(reg);
  EXPECT_EQ(reg->allowed, AllowedActions::kSubscribeOnly);

  const auto e2b =
      ConstrainedTopic::parse(trace_topics::entity_to_broker(uuid, "s1"));
  ASSERT_TRUE(e2b);
  EXPECT_TRUE(e2b->constrainer_is_broker());
  EXPECT_EQ(e2b->allowed, AllowedActions::kSubscribeOnly);

  const auto b2e = ConstrainedTopic::parse(
      trace_topics::broker_to_entity("entity-1", uuid, "s1"));
  ASSERT_TRUE(b2e);
  EXPECT_EQ(b2e->constrainer, "entity-1");

  const auto pub = ConstrainedTopic::parse(
      trace_topics::trace_publication(uuid, "AllUpdates"));
  ASSERT_TRUE(pub);
  EXPECT_EQ(pub->allowed, AllowedActions::kPublishOnly);
  ASSERT_EQ(pub->suffixes.size(), 2u);
  EXPECT_EQ(pub->suffixes[0], uuid);
  EXPECT_EQ(pub->suffixes[1], "AllUpdates");
}

TEST(TraceTopicsTest, GaugeAndResponseTopicsDiffer) {
  const std::string uuid = "9f2c1d34-aaaa-4bbb-8ccc-123456789abc";
  EXPECT_NE(trace_topics::gauge_interest(uuid),
            trace_topics::interest_response(uuid));
  // Gauge: broker publishes. Response: broker subscribes.
  const auto gauge = ConstrainedTopic::parse(trace_topics::gauge_interest(uuid));
  const auto resp =
      ConstrainedTopic::parse(trace_topics::interest_response(uuid));
  ASSERT_TRUE(gauge && resp);
  EXPECT_EQ(gauge->allowed, AllowedActions::kPublishOnly);
  EXPECT_EQ(resp->allowed, AllowedActions::kSubscribeOnly);
}

}  // namespace
}  // namespace et::pubsub
