// Backend conformance for the chaos-sweep overlay generators
// (Topology::make_ring/make_tree/make_clusters/make_random_tree): the
// same structural guarantees — spanning-tree overlay, recorded edges,
// diameter, naming, end-to-end routing — must hold on both backends.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "src/pubsub/client.h"
#include "src/pubsub/topology.h"
#include "src/transport/realtime_network.h"
#include "src/transport/virtual_network.h"

namespace et::pubsub {
namespace {

template <typename Backend>
struct Driver;

template <>
struct Driver<transport::VirtualTimeNetwork> {
  static void settle(transport::VirtualTimeNetwork& net, Duration d) {
    net.run_for(d);
  }
  static void teardown(transport::VirtualTimeNetwork&) {}
};

template <>
struct Driver<transport::RealTimeNetwork> {
  static void settle(transport::RealTimeNetwork&, Duration d) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(d + 30 * kMillisecond));
  }
  // Halt network threads before fixture members (brokers) are destroyed.
  static void teardown(transport::RealTimeNetwork& net) { net.stop(); }
};

template <typename Backend>
class TopologyShapesTest : public ::testing::Test {
 protected:
  Backend net{77};
  Topology topo{net};

  ~TopologyShapesTest() override { Driver<Backend>::teardown(this->net); }

  void settle(Duration d) { Driver<Backend>::settle(net, d); }

  static transport::LinkParams fast() {
    transport::LinkParams p = transport::LinkParams::ideal_profile();
    p.base_latency = 1 * kMillisecond;
    return p;
  }
};

using Backends =
    ::testing::Types<transport::VirtualTimeNetwork,
                     transport::RealTimeNetwork>;
TYPED_TEST_SUITE(TopologyShapesTest, Backends);

TYPED_TEST(TopologyShapesTest, RingIsSpanningChainPlusStandbyLink) {
  auto ring = this->topo.make_ring(6, this->fast());
  ASSERT_EQ(ring.size(), 6u);
  // Peered overlay: the spanning chain (5 edges, acyclic).
  EXPECT_EQ(this->topo.edges().size(), 5u);
  EXPECT_EQ(this->topo.diameter(), 5u);
  // The closing edge exists on the transport but is never peered.
  EXPECT_TRUE(this->net.linked(ring.back()->node(), ring.front()->node()));
  // ...and is exposed to the repair protocol as a recorded standby edge.
  ASSERT_EQ(this->topo.standby_edges().size(), 1u);
  EXPECT_EQ(this->topo.standby_edges()[0], std::make_pair(5ul, 0ul));
}

TYPED_TEST(TopologyShapesTest, SmallRingSkipsStandbyLink) {
  auto ring = this->topo.make_ring(2, this->fast());
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(this->topo.edges().size(), 1u);
  EXPECT_TRUE(this->topo.standby_edges().empty());
}

// Every chaos generator provisions exactly one cold standby link (linked
// on the backend, never peered, never in edges()) for the repair protocol
// to activate. One test per shape; the ring's is covered above.

TYPED_TEST(TopologyShapesTest, TreeRecordsRootToDeepestLeafStandby) {
  auto tree = this->topo.make_tree(7, 2, this->fast());
  ASSERT_EQ(this->topo.standby_edges().size(), 1u);
  EXPECT_EQ(this->topo.standby_edges()[0], std::make_pair(0ul, 6ul));
  EXPECT_TRUE(this->net.linked(tree.front()->node(), tree.back()->node()));
  EXPECT_EQ(this->topo.edges().size(), 6u);  // standby is not an edge

  // When the last broker is already the root's child the shortcut would
  // duplicate a tree edge, so none is recorded.
  transport::VirtualTimeNetwork scratch(1);
  Topology tiny(scratch);
  tiny.make_tree(3, 2, this->fast(), "tiny");
  EXPECT_TRUE(tiny.standby_edges().empty());
}

TYPED_TEST(TopologyShapesTest, ClustersRecordCoreChainBypassStandby) {
  auto all = this->topo.make_clusters(3, 2, this->fast());
  ASSERT_EQ(this->topo.standby_edges().size(), 1u);
  EXPECT_EQ(this->topo.standby_edges()[0], std::make_pair(0ul, 2ul));
  EXPECT_TRUE(this->net.linked(all[0]->node(), all[2]->node()));

  // Two cores are chain-adjacent already; an end-to-end bypass would
  // duplicate the existing core edge.
  transport::VirtualTimeNetwork scratch(1);
  Topology two(scratch);
  two.make_clusters(2, 2, this->fast(), "two");
  EXPECT_TRUE(two.standby_edges().empty());
}

TYPED_TEST(TopologyShapesTest, RandomTreeRecordsFrontToBackStandby) {
  auto brokers = this->topo.make_random_tree(24, 3, 42, this->fast());
  ASSERT_EQ(this->topo.standby_edges().size(), 1u);
  const auto standby = this->topo.standby_edges()[0];
  EXPECT_EQ(standby, std::make_pair(0ul, 23ul));
  EXPECT_TRUE(this->net.linked(brokers[standby.first]->node(),
                               brokers[standby.second]->node()));
  for (const auto& e : this->topo.edges()) EXPECT_NE(e, standby);
}

TYPED_TEST(TopologyShapesTest, TreeHasLogDiameterAndBfsParents) {
  auto tree = this->topo.make_tree(7, 2, this->fast());
  ASSERT_EQ(tree.size(), 7u);
  EXPECT_EQ(this->topo.edges().size(), 6u);
  // Balanced binary tree of 7: leaf -> root -> leaf = 4 hops.
  EXPECT_EQ(this->topo.diameter(), 4u);
  // Parent of out[i] is out[(i-1)/arity].
  for (const auto& [a, b] : this->topo.edges()) {
    EXPECT_EQ(a, (b - 1) / 2);
  }
  EXPECT_THROW(this->topo.make_tree(3, 0, this->fast()),
               std::invalid_argument);
}

TYPED_TEST(TopologyShapesTest, ClustersLayoutCoresThenRacks) {
  auto all = this->topo.make_clusters(3, 2, this->fast(), "b");
  ASSERT_EQ(all.size(), 9u);  // 3 cores * (1 + 2 leaves)
  EXPECT_EQ(this->topo.edges().size(), 8u);
  EXPECT_EQ(all[0]->name(), "b-core0");
  EXPECT_EQ(all[2]->name(), "b-core2");
  // Leaf j of rack i sits at index cores + i*leaves_per_core + j.
  EXPECT_EQ(all[3]->name(), "b-r0n0");
  EXPECT_EQ(all[8]->name(), "b-r2n1");
  // Worst pair: leaf of rack 0 to leaf of rack 2 = 1 + 2 + 1 hops.
  EXPECT_EQ(this->topo.diameter(), 4u);
}

TYPED_TEST(TopologyShapesTest, RandomTreeRespectsDegreeBoundAndSeed) {
  auto brokers = this->topo.make_random_tree(24, 3, 42, this->fast());
  ASSERT_EQ(brokers.size(), 24u);
  ASSERT_EQ(this->topo.edges().size(), 23u);
  std::vector<std::size_t> degree(24, 0);
  for (const auto& [a, b] : this->topo.edges()) {
    ++degree[a];
    ++degree[b];
  }
  for (const std::size_t d : degree) EXPECT_LE(d, 3u);

  // Same seed reproduces the same attachment sequence; different seed
  // diverges (24 nodes make a collision implausible). The attachment Rng
  // is backend-independent, so the comparison builds run on their own
  // virtual net (keeps RealTimeNetwork teardown out of the picture).
  transport::VirtualTimeNetwork scratch(1);
  Topology again(scratch);
  again.make_random_tree(24, 3, 42, this->fast(), "again");
  EXPECT_EQ(again.edges(), this->topo.edges());
  Topology other(scratch);
  other.make_random_tree(24, 3, 43, this->fast(), "other");
  EXPECT_NE(other.edges(), this->topo.edges());

  EXPECT_THROW(this->topo.make_random_tree(3, 1, 1, this->fast()),
               std::invalid_argument);
}

TYPED_TEST(TopologyShapesTest, OptionsLambdaSeesEveryGeneratedName) {
  std::set<std::string> names;
  this->topo.make_clusters(2, 1, this->fast(), "x",
                           [&](const std::string& name) {
                             names.insert(name);
                             Broker::Options o;
                             o.name = name;
                             return o;
                           });
  EXPECT_EQ(names, (std::set<std::string>{"x-core0", "x-core1", "x-r0n0",
                                          "x-r1n0"}));
}

TYPED_TEST(TopologyShapesTest, RoutesAcrossGeneratedShapes) {
  // One pub/sub exchange across the widest pair of each shape proves the
  // generated overlay actually forwards interest and messages.
  auto all = this->topo.make_clusters(3, 2, this->fast());
  Client sub(this->net, "sub");
  Client pub(this->net, "pub");
  sub.connect(all[3]->node(), this->fast());   // leaf of rack 0
  pub.connect(all[8]->node(), this->fast());   // leaf of rack 2
  this->settle(30 * kMillisecond);
  std::atomic<int> got{0};
  sub.subscribe("chaos/route", [&](const Message&) { got.fetch_add(1); });
  this->settle(30 * kMillisecond);
  pub.publish("chaos/route", to_bytes("hello"));
  this->settle(50 * kMillisecond);
  EXPECT_EQ(got.load(), 1);
}

}  // namespace
}  // namespace et::pubsub
