// Broker + client behaviour on the virtual-time backend: connect/ack,
// routing, wildcard delivery, interest propagation over chains and stars,
// constrained enforcement at the edge, suppress semantics, filters and
// misbehaviour handling.
#include "src/pubsub/broker.h"

#include <gtest/gtest.h>

#include "src/pubsub/client.h"
#include "src/pubsub/topology.h"
#include "src/transport/virtual_network.h"

namespace et::pubsub {
namespace {

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

struct BrokerFixture : ::testing::Test {
  transport::VirtualTimeNetwork net{7};
  Topology topo{net};
};

TEST_F(BrokerFixture, ClientConnectAck) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client c(net, "client-1");
  Status connect_status = internal_error("no callback");
  c.connect(b.node(), fast(), [&](const Status& s) { connect_status = s; });
  net.run_until_idle();
  EXPECT_TRUE(connect_status.is_ok());
  EXPECT_TRUE(c.connected());
  EXPECT_EQ(b.client_identity(c.node()), "client-1");
}

TEST_F(BrokerFixture, PubSubDeliveryOnOneBroker) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client pub(net, "producer");
  Client sub(net, "consumer");
  pub.connect(b.node(), fast());
  sub.connect(b.node(), fast());
  std::vector<std::string> got;
  sub.subscribe("sensors/temp", [&](const Message& m) {
    got.push_back(et::to_string(m.payload));
  });
  net.run_until_idle();
  pub.publish("sensors/temp", to_bytes("21.5"));
  pub.publish("sensors/humidity", to_bytes("60"));
  net.run_until_idle();
  EXPECT_EQ(got, (std::vector<std::string>{"21.5"}));
  EXPECT_EQ(sub.delivered_count(), 1u);
}

TEST_F(BrokerFixture, WildcardSubscription) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client pub(net, "p");
  Client sub(net, "s");
  pub.connect(b.node(), fast());
  sub.connect(b.node(), fast());
  int got = 0;
  sub.subscribe("sensors/#", [&](const Message&) { ++got; });
  net.run_until_idle();
  pub.publish("sensors/temp/celsius", to_bytes("x"));
  pub.publish("sensors/pressure", to_bytes("y"));
  pub.publish("other", to_bytes("z"));
  net.run_until_idle();
  EXPECT_EQ(got, 2);
}

TEST_F(BrokerFixture, PublisherDoesNotReceiveOwnMessageUnlessSubscribed) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client c(net, "both");
  c.connect(b.node(), fast());
  int got = 0;
  c.subscribe("loop/topic", [&](const Message&) { ++got; });
  net.run_until_idle();
  c.publish("loop/topic", to_bytes("echo"));
  net.run_until_idle();
  // The arrival-node exclusion stops immediate echo back to the sender's
  // connection... but the subscription is a different role: NaradaBrokering
  // delivers to all registered consumers, including the producer.
  // Our broker excludes the arrival endpoint to avoid reflection; assert
  // the documented behaviour.
  EXPECT_EQ(got, 0);
}

TEST_F(BrokerFixture, RoutingAcrossChain) {
  auto brokers = topo.make_chain(4, fast());
  Client pub(net, "p");
  Client sub(net, "s");
  pub.connect(brokers[0]->node(), fast());
  sub.connect(brokers[3]->node(), fast());
  std::string got;
  sub.subscribe("far/away", [&](const Message& m) { got = et::to_string(m.payload); });
  net.run_until_idle();  // interest propagates 3 hops
  pub.publish("far/away", to_bytes("hello across 4 brokers"));
  net.run_until_idle();
  EXPECT_EQ(got, "hello across 4 brokers");
  EXPECT_GT(brokers[1]->stats().forwarded, 0u);
  EXPECT_GT(brokers[2]->stats().forwarded, 0u);
}

TEST_F(BrokerFixture, NoForwardingWithoutRemoteInterest) {
  auto brokers = topo.make_chain(3, fast());
  Client pub(net, "p");
  pub.connect(brokers[0]->node(), fast());
  net.run_until_idle();
  pub.publish("nobody/cares", to_bytes("void"));
  net.run_until_idle();
  EXPECT_EQ(brokers[0]->stats().forwarded, 0u);
  EXPECT_EQ(brokers[1]->stats().published, 0u);
}

TEST_F(BrokerFixture, StarTopologyFanOut) {
  auto brokers = topo.make_star(4, fast());
  Client pub(net, "p");
  pub.connect(brokers[1]->node(), fast());  // a leaf
  std::vector<std::unique_ptr<Client>> subs;
  int total = 0;
  for (int i = 2; i <= 4; ++i) {
    subs.push_back(std::make_unique<Client>(net, "s" + std::to_string(i)));
    subs.back()->connect(brokers[i]->node(), fast());
    subs.back()->subscribe("fan/out", [&](const Message&) { ++total; });
  }
  net.run_until_idle();
  pub.publish("fan/out", to_bytes("x"));
  net.run_until_idle();
  EXPECT_EQ(total, 3);
  // Hub forwarded one copy per interested leaf.
  EXPECT_EQ(brokers[0]->stats().forwarded, 3u);
}

TEST_F(BrokerFixture, UnsubscribeStopsDelivery) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client pub(net, "p");
  Client sub(net, "s");
  pub.connect(b.node(), fast());
  sub.connect(b.node(), fast());
  int got = 0;
  sub.subscribe("t", [&](const Message&) { ++got; });
  net.run_until_idle();
  pub.publish("t", to_bytes("1"));
  net.run_until_idle();
  sub.unsubscribe("t");
  net.run_until_idle();
  pub.publish("t", to_bytes("2"));
  net.run_until_idle();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerFixture, InterestPropagationAfterLateSubscribe) {
  // A subscriber joining after traffic started still gets future messages.
  auto brokers = topo.make_chain(2, fast());
  Client pub(net, "p");
  pub.connect(brokers[0]->node(), fast());
  net.run_until_idle();
  pub.publish("late/topic", to_bytes("missed"));
  net.run_until_idle();

  Client sub(net, "s");
  sub.connect(brokers[1]->node(), fast());
  int got = 0;
  sub.subscribe("late/topic", [&](const Message&) { ++got; });
  net.run_until_idle();
  pub.publish("late/topic", to_bytes("seen"));
  net.run_until_idle();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerFixture, ConstrainedPublishRejectedAtEdge) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client c(net, "mallory");
  c.connect(b.node(), fast());
  Status err = Status::ok();
  c.set_error_handler([&](const Status& s) { err = s; });
  net.run_until_idle();
  c.publish("Constrained/Traces/Broker/Publish-Only/uuid/AllUpdates",
            to_bytes("forged"));
  net.run_until_idle();
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(b.stats().discarded, 1u);
  EXPECT_EQ(b.stats().published, 0u);
}

TEST_F(BrokerFixture, ConstrainedSubscribeRejectedAtEdge) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client c(net, "nosy");
  c.connect(b.node(), fast());
  Status sub_status = Status::ok();
  c.subscribe("Constrained/Traces/other-entity/Subscribe-Only/uuid/sess",
              [](const Message&) {},
              [&](const Status& s) { sub_status = s; });
  net.run_until_idle();
  EXPECT_FALSE(sub_status.is_ok());
}

TEST_F(BrokerFixture, EntityConstrainerMaySubscribeItsOwnTopic) {
  Broker& b = topo.add_broker({.name = "b0"});
  Client c(net, "entity-1");
  c.connect(b.node(), fast());
  Status sub_status = internal_error("no callback");
  c.subscribe("Constrained/Traces/entity-1/Subscribe-Only/uuid/sess",
              [](const Message&) {},
              [&](const Status& s) { sub_status = s; });
  net.run_until_idle();
  EXPECT_TRUE(sub_status.is_ok()) << sub_status.to_string();
}

TEST_F(BrokerFixture, SuppressedPublicationStaysLocal) {
  auto brokers = topo.make_chain(2, fast());
  // Remote subscriber on broker 1.
  Client remote(net, "remote");
  remote.connect(brokers[1]->node(), fast());
  int remote_got = 0;
  remote.subscribe("Constrained/Traces/Broker/Publish-Only/Suppress/t",
                   [&](const Message&) { ++remote_got; });
  // Local subscriber on broker 0.
  Client local(net, "local");
  local.connect(brokers[0]->node(), fast());
  int local_got = 0;
  local.subscribe("Constrained/Traces/Broker/Publish-Only/Suppress/t",
                  [&](const Message&) { ++local_got; });
  net.run_until_idle();

  Message m;
  m.topic = "Constrained/Traces/Broker/Publish-Only/Suppress/t";
  m.payload = to_bytes("local only");
  brokers[0]->publish_from_broker(std::move(m));
  net.run_until_idle();

  EXPECT_EQ(local_got, 1);
  EXPECT_EQ(remote_got, 0);  // suppressed at the publishing broker
}

TEST_F(BrokerFixture, MessageFilterDiscardsAndStrikes) {
  Broker::Options o;
  o.name = "b0";
  o.misbehaviour_threshold = 3;
  o.message_filter = [](Broker&, const MessageView& m,
                        transport::NodeId) -> FilterVerdict {
    if (m.topic == "poison")
      return FilterVerdict::reject(unauthenticated("poisoned"));
    return FilterVerdict::accept();
  };
  Broker& b = topo.add_broker(std::move(o));
  Client c(net, "c");
  c.connect(b.node(), fast());
  net.run_until_idle();
  for (int i = 0; i < 3; ++i) {
    c.publish("poison", to_bytes("x"));
    net.run_until_idle();
  }
  EXPECT_TRUE(b.is_blacklisted(c.node()));
  EXPECT_EQ(b.stats().discarded, 3u);
}

TEST_F(BrokerFixture, MalformedFrameCountsAsMisbehaviour) {
  Broker& b =
      topo.add_broker({.name = "b0", .misbehaviour_threshold = 2});
  const transport::NodeId garbler =
      net.add_node("garbler", [](transport::NodeId, BytesView) {});
  net.link(garbler, b.node(), fast());
  (void)net.send(garbler, b.node(), to_bytes("not a frame"));
  (void)net.send(garbler, b.node(), to_bytes("still not a frame"));
  net.run_until_idle();
  EXPECT_TRUE(b.is_blacklisted(garbler));
}

TEST_F(BrokerFixture, TopologyRejectsCycles) {
  auto brokers = topo.make_chain(3, fast());
  EXPECT_THROW(topo.connect_brokers(*brokers[0], *brokers[2], fast()),
               std::invalid_argument);
}

TEST_F(BrokerFixture, TopologyRejectsForeignBroker) {
  Topology other(net);
  Broker& a = topo.add_broker({.name = "mine"});
  Broker& b = other.add_broker({.name = "theirs"});
  EXPECT_THROW(topo.connect_brokers(a, b, fast()), std::invalid_argument);
}

TEST_F(BrokerFixture, BrokerLocalServiceReceivesMatchingMessages) {
  Broker& b = topo.add_broker({.name = "b0"});
  std::vector<std::string> service_got;
  b.subscribe_local("svc/input/#", [&](const Message& m) {
    service_got.push_back(et::to_string(m.payload));
  });
  Client c(net, "c");
  c.connect(b.node(), fast());
  net.run_until_idle();
  c.publish("svc/input/alpha", to_bytes("one"));
  c.publish("svc/other", to_bytes("two"));
  net.run_until_idle();
  EXPECT_EQ(service_got, (std::vector<std::string>{"one"}));
}

TEST_F(BrokerFixture, LocalServiceInterestPropagatesAcrossBrokers) {
  auto brokers = topo.make_chain(2, fast());
  std::vector<std::string> got;
  brokers[1]->subscribe_local("svc/remote", [&](const Message& m) {
    got.push_back(et::to_string(m.payload));
  });
  net.run_until_idle();
  Client c(net, "c");
  c.connect(brokers[0]->node(), fast());
  net.run_until_idle();
  c.publish("svc/remote", to_bytes("over the wire"));
  net.run_until_idle();
  EXPECT_EQ(got, (std::vector<std::string>{"over the wire"}));
}

TEST_F(BrokerFixture, OptionsConstructionWiresFilterAndHandler) {
  Broker::Options o;
  o.name = "b0";
  o.misbehaviour_threshold = 2;
  o.message_filter = [](Broker&, const MessageView& m,
                        transport::NodeId) -> FilterVerdict {
    if (m.topic == "poison")
      return FilterVerdict::reject(unauthenticated("poisoned"));
    return FilterVerdict::accept();
  };
  Broker& b = topo.add_broker(std::move(o));
  EXPECT_EQ(b.name(), "b0");
  Client c(net, "c");
  c.connect(b.node(), fast());
  net.run_until_idle();
  for (int i = 0; i < 2; ++i) {
    c.publish("poison", to_bytes("x"));
    net.run_until_idle();
  }
  EXPECT_TRUE(b.is_blacklisted(c.node()));  // threshold from Options
  EXPECT_EQ(b.stats().discarded, 2u);
}

TEST_F(BrokerFixture, MatchThreadsClampedOnVirtualTimeBackend) {
  // VirtualTimeNetwork reports concurrent_dispatch() == false, so the
  // requested worker pool must be clamped away and routing stays inline
  // and deterministic.
  Broker::Options o;
  o.name = "b0";
  o.match_threads = 4;
  Broker& b = topo.add_broker(std::move(o));
  EXPECT_EQ(b.match_threads(), 0);

  Client pub(net, "p");
  Client sub(net, "s");
  pub.connect(b.node(), fast());
  sub.connect(b.node(), fast());
  int got = 0;
  sub.subscribe("t/#", [&](const Message&) { ++got; });
  net.run_until_idle();
  pub.publish("t/x", to_bytes("1"));
  net.run_until_idle();
  EXPECT_EQ(got, 1);
}

TEST_F(BrokerFixture, VirtualTimeRunsAreDeterministicWithMatchThreadsSet) {
  // Same seed + same scenario must give an identical delivery transcript
  // even when match_threads is requested (it is clamped on this backend).
  auto run_once = [] {
    std::vector<std::string> transcript;
    transport::VirtualTimeNetwork vnet(99);
    Topology vtopo(vnet);
    Broker::Options o;
    o.name = "d0";
    o.match_threads = 4;
    Broker& b = vtopo.add_broker(std::move(o));
    Client pub(vnet, "p");
    Client sub(vnet, "s");
    pub.connect(b.node(), fast());
    sub.connect(b.node(), fast());
    sub.subscribe("d/#", [&](const Message& m) {
      transcript.push_back(m.topic + "=" + et::to_string(m.payload));
    });
    vnet.run_until_idle();
    for (int i = 0; i < 20; ++i) {
      pub.publish("d/" + std::to_string(i % 4), to_bytes(std::to_string(i)));
    }
    vnet.run_until_idle();
    return transcript;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace et::pubsub
