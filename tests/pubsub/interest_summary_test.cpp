// Hierarchical interest aggregation: the summarize_pattern grammar, the
// per-edge refcount table under churn, and end-to-end broker behaviour
// with Options::interest_summary_depth — one summarized edge per
// (neighbour, prefix) upstream, unchanged routing, clean retraction, and
// anti-entropy resync.
#include "src/pubsub/interest_summary.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/pubsub/broker.h"
#include "src/pubsub/client.h"
#include "src/pubsub/topology.h"
#include "src/transport/virtual_network.h"

namespace et::pubsub {
namespace {

TEST(SummarizePatternTest, CollapsesBelowDepth) {
  EXPECT_EQ(summarize_pattern(TopicPath("a/b/c/d"), 2), "a/b/#");
  EXPECT_EQ(summarize_pattern(TopicPath("a/b/c"), 2), "a/b/#");
}

TEST(SummarizePatternTest, ShortPatternsPassThrough) {
  EXPECT_EQ(summarize_pattern(TopicPath("a/b"), 2), "a/b");
  EXPECT_EQ(summarize_pattern(TopicPath("a"), 2), "a");
}

TEST(SummarizePatternTest, DepthZeroIsIdentity) {
  EXPECT_EQ(summarize_pattern(TopicPath("a/b/c/d"), 0), "a/b/c/d");
}

TEST(SummarizePatternTest, WildcardInPrefixPassesThrough) {
  // A pattern whose summarized stem would contain a wildcard cannot be
  // collapsed into a concrete prefix edge.
  EXPECT_EQ(summarize_pattern(TopicPath("a/*/c/d"), 2), "a/*/c/d");
  EXPECT_EQ(summarize_pattern(TopicPath("#"), 2), "#");
}

TEST(SummarizePatternTest, IdempotentAcrossHops) {
  // A received summary edge re-summarizes to itself, so multi-hop chains
  // converge instead of nesting wildcards.
  const std::string s = summarize_pattern(TopicPath("a/b/c/d"), 3);
  EXPECT_EQ(s, "a/b/c/#");
  EXPECT_EQ(summarize_pattern(TopicPath(s), 3), s);
}

TEST(InterestSummaryTableTest, RefcountsDistinctPatternsPerEdge) {
  InterestSummaryTable t(2);
  EXPECT_EQ(t.add(TopicPath("a/b/x")), "a/b/#");   // edge created
  EXPECT_EQ(t.add(TopicPath("a/b/y")), std::nullopt);
  EXPECT_EQ(t.add(TopicPath("a/b/z")), std::nullopt);
  EXPECT_EQ(t.edge_count(), 1u);
  EXPECT_EQ(t.remove(TopicPath("a/b/x")), std::nullopt);
  EXPECT_EQ(t.remove(TopicPath("a/b/y")), std::nullopt);
  EXPECT_EQ(t.remove(TopicPath("a/b/z")), "a/b/#");  // last one retracts
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(InterestSummaryTableTest, ReAddsAndDoubleRemovesNeverSkewCounts) {
  InterestSummaryTable t(2);
  EXPECT_TRUE(t.add(TopicPath("a/b/x")).has_value());
  // Duplicate adds of the same pattern are recorded once.
  EXPECT_EQ(t.add(TopicPath("a/b/x")), std::nullopt);
  EXPECT_EQ(t.add(TopicPath("a/b/x")), std::nullopt);
  EXPECT_EQ(t.pattern_count(), 1u);
  // First remove retracts; further removes never underflow or retract
  // again (no double-free of the edge).
  EXPECT_EQ(t.remove(TopicPath("a/b/x")), "a/b/#");
  EXPECT_EQ(t.remove(TopicPath("a/b/x")), std::nullopt);
  EXPECT_EQ(t.remove(TopicPath("a/b/x")), std::nullopt);
  EXPECT_EQ(t.edge_count(), 0u);
  EXPECT_EQ(t.pattern_count(), 0u);
}

TEST(InterestSummaryTableTest, TrackerChurnNeverStrandsAnEdge) {
  // The satellite regression: trackers come and go, each contributing a
  // batch of per-entity patterns under a common prefix. However the
  // arrivals and departures interleave, the edge exists exactly while at
  // least one pattern backs it.
  InterestSummaryTable t(3);
  const std::string prefix = "Constrained/Traces/Broker";
  auto pattern = [&](int tracker, int entity) {
    return TopicPath(prefix + "/t" + std::to_string(tracker) + "/e" +
                     std::to_string(entity));
  };
  int announces = 0, retracts = 0;
  for (int round = 0; round < 20; ++round) {
    for (int tr = 0; tr < 4; ++tr) {
      for (int e = 0; e < 8; ++e) {
        if (t.add(pattern(tr, e))) ++announces;
      }
    }
    // Departures in a different order than arrivals.
    for (int tr = 3; tr >= 0; --tr) {
      for (int e = 7; e >= 0; --e) {
        if (t.remove(pattern(tr, e))) ++retracts;
      }
    }
    ASSERT_EQ(t.edge_count(), 0u) << "stranded edge after round " << round;
    ASSERT_EQ(t.pattern_count(), 0u);
  }
  // Exactly one announce/retract pair per round: 32 patterns, 1 edge.
  EXPECT_EQ(announces, 20);
  EXPECT_EQ(retracts, 20);
}

TEST(InterestSummaryTableTest, DistinctPrefixesGetDistinctEdges) {
  InterestSummaryTable t(1);
  EXPECT_EQ(t.add(TopicPath("alpha/x")), "alpha/#");
  EXPECT_EQ(t.add(TopicPath("beta/x")), "beta/#");
  EXPECT_EQ(t.edge_count(), 2u);
  EXPECT_EQ(t.announced(),
            (std::vector<std::string>{"alpha/#", "beta/#"}));
}

// --- broker integration over a virtual-time overlay ------------------------

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

struct SummaryFixture : ::testing::Test {
  transport::VirtualTimeNetwork net{7};
  Topology topo{net};
  BrokerOptionsFn with_depth(std::size_t depth) {
    return [depth](const std::string&) {
      Broker::Options o;
      o.interest_summary_depth = depth;
      return o;
    };
  }
};

TEST_F(SummaryFixture, ChainHoldsOneEdgePerPrefixNotPerSubscription) {
  auto brokers = topo.make_chain(4, fast(), "broker", with_depth(2));
  Client sub(net, "tracker");
  sub.connect(brokers[0]->node(), fast());
  net.run_until_idle();
  // 64 concrete subscriptions under one prefix at the edge broker.
  for (int i = 0; i < 64; ++i) {
    sub.subscribe("Traces/hosts/h" + std::to_string(i) + "/AllsWell",
                  [](const Message&) {});
  }
  net.run_until_idle();
  // The edge broker knows all 64 patterns; every upstream broker holds
  // exactly one summarized edge.
  EXPECT_EQ(brokers[0]->interest_edges(), 64u);
  EXPECT_EQ(brokers[0]->summarized_edges(), 1u);
  for (std::size_t i = 1; i < brokers.size(); ++i) {
    EXPECT_EQ(brokers[i]->interest_edges(), 1u)
        << "broker " << i << " should hold one summary edge";
  }
}

TEST_F(SummaryFixture, RoutingStillDeliversAcrossSummarizedChain) {
  auto brokers = topo.make_chain(4, fast(), "broker", with_depth(2));
  Client sub(net, "tracker");
  Client pub(net, "entity");
  sub.connect(brokers[0]->node(), fast());
  pub.connect(brokers[3]->node(), fast());
  std::vector<std::string> got;
  sub.subscribe("Traces/hosts/h1/AllsWell", [&](const Message& m) {
    got.push_back(std::string(m.topic));
  });
  net.run_until_idle();
  pub.publish("Traces/hosts/h1/AllsWell", to_bytes("ok"));
  // A sibling topic under the same summarized prefix crosses the overlay
  // (widened interest) but must NOT be delivered to the subscriber.
  pub.publish("Traces/hosts/h2/AllsWell", to_bytes("other"));
  net.run_until_idle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "Traces/hosts/h1/AllsWell");
}

TEST_F(SummaryFixture, LastUnsubscribeRetractsTheSummaryEdge) {
  auto brokers = topo.make_chain(3, fast(), "broker", with_depth(2));
  Client sub(net, "tracker");
  sub.connect(brokers[0]->node(), fast());
  net.run_until_idle();
  for (int i = 0; i < 8; ++i) {
    sub.subscribe("Traces/hosts/h" + std::to_string(i) + "/AllsWell",
                  [](const Message&) {});
  }
  net.run_until_idle();
  EXPECT_EQ(brokers[1]->interest_edges(), 1u);
  for (int i = 0; i < 7; ++i) {
    sub.unsubscribe("Traces/hosts/h" + std::to_string(i) + "/AllsWell");
  }
  net.run_until_idle();
  // Edge survives while one backing pattern remains.
  EXPECT_EQ(brokers[1]->interest_edges(), 1u);
  sub.unsubscribe("Traces/hosts/h7/AllsWell");
  net.run_until_idle();
  EXPECT_EQ(brokers[1]->interest_edges(), 0u);
  EXPECT_EQ(brokers[0]->summarized_edges(), 0u);
}

TEST_F(SummaryFixture, DepthZeroKeepsLegacyPerPatternPropagation) {
  auto brokers = topo.make_chain(3, fast(), "broker", with_depth(0));
  Client sub(net, "tracker");
  sub.connect(brokers[0]->node(), fast());
  net.run_until_idle();
  for (int i = 0; i < 8; ++i) {
    sub.subscribe("Traces/hosts/h" + std::to_string(i) + "/AllsWell",
                  [](const Message&) {});
  }
  net.run_until_idle();
  EXPECT_EQ(brokers[1]->interest_edges(), 8u);
  EXPECT_EQ(brokers[2]->interest_edges(), 8u);
}

TEST_F(SummaryFixture, RegisterInterestMakesOneWideEdge) {
  auto brokers = topo.make_chain(3, fast(), "broker", with_depth(2));
  int got = 0;
  brokers[0]->register_interest({.prefix = "Traces/hosts/deep/nested",
                                 .depth = 2},
                                [&](const Message&) { ++got; });
  net.run_until_idle();
  // The interest compiled to Traces/hosts/# — one edge upstream.
  EXPECT_EQ(brokers[1]->interest_edges(), 1u);
  Client pub(net, "entity");
  pub.connect(brokers[2]->node(), fast());
  net.run_until_idle();
  pub.publish("Traces/hosts/h5/AllsWell", to_bytes("x"));
  net.run_until_idle();
  EXPECT_EQ(got, 1);
}

TEST_F(SummaryFixture, ResyncBackfillsALateJoinedNeighbour) {
  auto brokers = topo.make_chain(2, fast(), "broker", with_depth(2));
  Client sub(net, "tracker");
  sub.connect(brokers[0]->node(), fast());
  net.run_until_idle();
  for (int i = 0; i < 8; ++i) {
    sub.subscribe("Traces/hosts/h" + std::to_string(i) + "/AllsWell",
                  [](const Message&) {});
  }
  net.run_until_idle();
  // A broker joins after propagation already happened: it learns nothing
  // until the edge broker resyncs.
  Broker& late = topo.add_broker(
      {.name = "late", .interest_summary_depth = 2});
  topo.connect_brokers(*brokers[0], late, fast());
  net.run_until_idle();
  EXPECT_EQ(late.interest_edges(), 0u);
  brokers[0]->resync_interest();
  net.run_until_idle();
  EXPECT_EQ(late.interest_edges(), 1u);
  // Resync is idempotent: repeating it changes nothing anywhere.
  brokers[0]->resync_interest();
  net.run_until_idle();
  EXPECT_EQ(late.interest_edges(), 1u);
  EXPECT_EQ(brokers[1]->interest_edges(), 1u);
}

}  // namespace
}  // namespace et::pubsub
