#include "src/pubsub/subscription.h"

#include <gtest/gtest.h>

namespace et::pubsub {
namespace {

// Read helpers compile the probe once; the table's read API is
// TopicPath-only so every test exercises the compiled path.
std::set<transport::NodeId> match(const SubscriptionTable& t,
                                  const std::string& topic) {
  return t.match(TopicPath(topic));
}

TEST(SubscriptionTableTest, AddReturnsTrueOnFirstSubscriber) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add("a/b", 1));
  EXPECT_FALSE(t.add("a/b", 2));
  EXPECT_TRUE(t.add("a/c", 1));
  EXPECT_EQ(t.pattern_count(), 2u);
}

TEST(SubscriptionTableTest, NormalizesPatterns) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add("/a/b/", 1));
  EXPECT_FALSE(t.add("a//b", 2));  // same pattern after normalization
  EXPECT_EQ(t.pattern_count(), 1u);
}

TEST(SubscriptionTableTest, MatchCollectsAllEndpoints) {
  SubscriptionTable t;
  t.add("a/b", 1);
  t.add("a/b", 2);
  t.add("a/*", 3);
  t.add("a/c", 4);
  EXPECT_EQ(match(t, "a/b"), (std::set<transport::NodeId>{1, 2, 3}));
}

TEST(SubscriptionTableTest, MatchWithMultiLevelWildcard) {
  SubscriptionTable t;
  t.add("Constrained/Traces/#", 9);
  EXPECT_TRUE(
      match(t, "Constrained/Traces/Broker/Publish-Only/x").contains(9));
  EXPECT_TRUE(match(t, "Constrained/Traces").contains(9));
  EXPECT_TRUE(match(t, "Other/Topic").empty());
}

TEST(SubscriptionTableTest, LeadingWildcardPatternsMatchAnyFirstSegment) {
  // Patterns starting with a wildcard live in the shared wildcard shard
  // and must match regardless of the topic's first segment.
  SubscriptionTable t;
  t.add("*/status", 1);
  t.add("#", 2);
  EXPECT_EQ(match(t, "alpha/status"), (std::set<transport::NodeId>{1, 2}));
  EXPECT_EQ(match(t, "beta/status"), (std::set<transport::NodeId>{1, 2}));
  EXPECT_EQ(match(t, "gamma/other"), (std::set<transport::NodeId>{2}));
}

TEST(SubscriptionTableTest, RemoveReturnsTrueWhenEmptied) {
  SubscriptionTable t;
  t.add("a/b", 1);
  t.add("a/b", 2);
  EXPECT_FALSE(t.remove("a/b", 1));
  EXPECT_TRUE(t.remove("a/b", 2));
  EXPECT_EQ(t.pattern_count(), 0u);
}

TEST(SubscriptionTableTest, RemoveUnknownPatternIsNoop) {
  SubscriptionTable t;
  EXPECT_FALSE(t.remove("nope", 1));
}

TEST(SubscriptionTableTest, RemoveEndpointDropsEverything) {
  SubscriptionTable t;
  t.add("a", 1);
  t.add("b", 1);
  t.add("b", 2);
  const auto emptied = t.remove_endpoint(1);
  EXPECT_EQ(emptied, (std::vector<std::string>{"a"}));
  EXPECT_TRUE(match(t, "a").empty());
  EXPECT_TRUE(match(t, "b").contains(2));
}

TEST(SubscriptionTableTest, RemoveEndpointReturnsSortedPatterns) {
  SubscriptionTable t;
  // Spread across shards: sortedness must not depend on shard hashing.
  t.add("zeta/x", 1);
  t.add("alpha/y", 1);
  t.add("#", 1);
  t.add("mid/z", 1);
  EXPECT_EQ(t.remove_endpoint(1),
            (std::vector<std::string>{"#", "alpha/y", "mid/z", "zeta/x"}));
}

TEST(SubscriptionTableTest, AnyMatch) {
  SubscriptionTable t;
  t.add("x/*/z", 1);
  EXPECT_TRUE(t.any_match(TopicPath("x/y/z")));
  EXPECT_FALSE(t.any_match(TopicPath("x/y")));
}

TEST(SubscriptionTableTest, EndpointMatches) {
  SubscriptionTable t;
  t.add("a/#", 1);
  t.add("b", 2);
  EXPECT_TRUE(t.endpoint_matches(1, TopicPath("a/deep/topic")));
  EXPECT_FALSE(t.endpoint_matches(2, TopicPath("a/deep/topic")));
}

TEST(SubscriptionTableTest, PrecompiledAddAgreesWithStringAdd) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add(TopicPath("x/*/z"), 1));
  EXPECT_FALSE(t.add("x/*/z", 2));  // same pattern, string overload
  EXPECT_EQ(match(t, "x/y/z"), (std::set<transport::NodeId>{1, 2}));
  EXPECT_FALSE(t.remove(TopicPath("x/*/z"), 1));
  EXPECT_TRUE(t.remove("x/*/z", 2));
}

TEST(SubscriptionTableTest, AddNormalizesPatternOnce) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add("/a/b/", 1));
  EXPECT_FALSE(t.add("a//b", 2));  // same pattern after normalization
  EXPECT_EQ(t.pattern_count(), 1u);
  EXPECT_EQ(match(t, "a/b"), (std::set<transport::NodeId>{1, 2}));
}

TEST(SubscriptionTableTest, PatternsEnumerationIsSorted) {
  SubscriptionTable t;
  t.add("b", 1);
  t.add("a", 1);
  t.add("#", 2);
  const auto p = t.patterns();
  EXPECT_EQ(p, (std::vector<std::string>{"#", "a", "b"}));
}

TEST(SubscriptionTableTest, EmptyTopicOnlyReachesWildcardPatterns) {
  SubscriptionTable t;
  t.add("#", 1);
  t.add("a", 2);
  EXPECT_EQ(match(t, ""), (std::set<transport::NodeId>{1}));
}

TEST(SubscriptionTableTest, SnapshotIsImmutableUnderLaterWrites) {
  SubscriptionTable t;
  t.add("a/b", 1);
  const auto snap = t.snapshot();
  ASSERT_TRUE(snap != nullptr);
  EXPECT_EQ(snap->pattern_count(), 1u);
  EXPECT_EQ(snap->match(TopicPath("a/b")),
            (std::set<transport::NodeId>{1}));

  // Mutate the table after taking the snapshot: the snapshot must keep
  // reporting the old state while the table reports the new one.
  t.add("a/b", 2);
  t.add("c/d", 3);
  t.remove("a/b", 1);
  EXPECT_EQ(snap->pattern_count(), 1u);
  EXPECT_EQ(snap->match(TopicPath("a/b")),
            (std::set<transport::NodeId>{1}));
  EXPECT_FALSE(snap->any_match(TopicPath("c/d")));

  EXPECT_EQ(match(t, "a/b"), (std::set<transport::NodeId>{2}));
  EXPECT_TRUE(t.any_match(TopicPath("c/d")));
}

TEST(SubscriptionTableTest, SnapshotReadsAgreeWithTableShorthands) {
  SubscriptionTable t;
  t.add("x/*/z", 1);
  t.add("x/#", 2);
  t.add("#", 3);
  const auto snap = t.snapshot();
  const TopicPath topic("x/y/z");
  EXPECT_EQ(snap->match(topic), t.match(topic));
  EXPECT_EQ(snap->any_match(topic), t.any_match(topic));
  EXPECT_EQ(snap->endpoint_matches(2, topic), t.endpoint_matches(2, topic));
  EXPECT_EQ(snap->patterns(), t.patterns());
  EXPECT_EQ(snap->pattern_count(), t.pattern_count());
}

TEST(SubscriptionTableTest, ManyFirstSegmentsAllRouteCorrectly) {
  // More distinct first segments than shards: every hashed bucket gets
  // exercised, and matches must never leak across segments.
  SubscriptionTable t;
  constexpr int kSegments = 64;
  for (int i = 0; i < kSegments; ++i) {
    const std::string seg = "seg" + std::to_string(i);
    t.add(seg + "/data", static_cast<transport::NodeId>(i + 1));
  }
  EXPECT_EQ(t.pattern_count(), static_cast<std::size_t>(kSegments));
  for (int i = 0; i < kSegments; ++i) {
    const std::string seg = "seg" + std::to_string(i);
    EXPECT_EQ(
        match(t, seg + "/data"),
        (std::set<transport::NodeId>{static_cast<transport::NodeId>(i + 1)}))
        << seg;
    EXPECT_TRUE(match(t, seg + "/other").empty()) << seg;
  }
}

}  // namespace
}  // namespace et::pubsub
