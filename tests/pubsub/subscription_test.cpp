#include "src/pubsub/subscription.h"

#include <gtest/gtest.h>

namespace et::pubsub {
namespace {

TEST(SubscriptionTableTest, AddReturnsTrueOnFirstSubscriber) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add("a/b", 1));
  EXPECT_FALSE(t.add("a/b", 2));
  EXPECT_TRUE(t.add("a/c", 1));
  EXPECT_EQ(t.pattern_count(), 2u);
}

TEST(SubscriptionTableTest, NormalizesPatterns) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add("/a/b/", 1));
  EXPECT_FALSE(t.add("a//b", 2));  // same pattern after normalization
  EXPECT_EQ(t.pattern_count(), 1u);
}

TEST(SubscriptionTableTest, MatchCollectsAllEndpoints) {
  SubscriptionTable t;
  t.add("a/b", 1);
  t.add("a/b", 2);
  t.add("a/*", 3);
  t.add("a/c", 4);
  const auto m = t.match("a/b");
  EXPECT_EQ(m, (std::set<transport::NodeId>{1, 2, 3}));
}

TEST(SubscriptionTableTest, MatchWithMultiLevelWildcard) {
  SubscriptionTable t;
  t.add("Constrained/Traces/#", 9);
  EXPECT_TRUE(t.match("Constrained/Traces/Broker/Publish-Only/x").contains(9));
  EXPECT_TRUE(t.match("Constrained/Traces").contains(9));
  EXPECT_TRUE(t.match("Other/Topic").empty());
}

TEST(SubscriptionTableTest, RemoveReturnsTrueWhenEmptied) {
  SubscriptionTable t;
  t.add("a/b", 1);
  t.add("a/b", 2);
  EXPECT_FALSE(t.remove("a/b", 1));
  EXPECT_TRUE(t.remove("a/b", 2));
  EXPECT_EQ(t.pattern_count(), 0u);
}

TEST(SubscriptionTableTest, RemoveUnknownPatternIsNoop) {
  SubscriptionTable t;
  EXPECT_FALSE(t.remove("nope", 1));
}

TEST(SubscriptionTableTest, RemoveEndpointDropsEverything) {
  SubscriptionTable t;
  t.add("a", 1);
  t.add("b", 1);
  t.add("b", 2);
  const auto emptied = t.remove_endpoint(1);
  EXPECT_EQ(emptied, (std::vector<std::string>{"a"}));
  EXPECT_TRUE(t.match("a").empty());
  EXPECT_TRUE(t.match("b").contains(2));
}

TEST(SubscriptionTableTest, AnyMatch) {
  SubscriptionTable t;
  t.add("x/*/z", 1);
  EXPECT_TRUE(t.any_match("x/y/z"));
  EXPECT_FALSE(t.any_match("x/y"));
}

TEST(SubscriptionTableTest, EndpointMatches) {
  SubscriptionTable t;
  t.add("a/#", 1);
  t.add("b", 2);
  EXPECT_TRUE(t.endpoint_matches(1, "a/deep/topic"));
  EXPECT_FALSE(t.endpoint_matches(2, "a/deep/topic"));
}

TEST(SubscriptionTableTest, PrecompiledPathOverloadsAgreeWithStrings) {
  SubscriptionTable t;
  t.add("x/*/z", 1);
  t.add("x/#", 2);
  const TopicPath topic("x/y/z");
  EXPECT_EQ(t.match(topic), t.match("x/y/z"));
  EXPECT_EQ(t.match(topic), (std::set<transport::NodeId>{1, 2}));
  EXPECT_TRUE(t.any_match(topic));
  EXPECT_FALSE(t.any_match(TopicPath("a/b")));
  EXPECT_TRUE(t.endpoint_matches(2, TopicPath("x/deep/under")));
  EXPECT_FALSE(t.endpoint_matches(1, TopicPath("x/deep/under")));
}

TEST(SubscriptionTableTest, AddNormalizesPatternOnce) {
  SubscriptionTable t;
  EXPECT_TRUE(t.add("/a/b/", 1));
  EXPECT_FALSE(t.add("a//b", 2));  // same pattern after normalization
  EXPECT_EQ(t.pattern_count(), 1u);
  EXPECT_EQ(t.match("a/b"), (std::set<transport::NodeId>{1, 2}));
}

TEST(SubscriptionTableTest, PatternsEnumeration) {
  SubscriptionTable t;
  t.add("b", 1);
  t.add("a", 1);
  const auto p = t.patterns();
  EXPECT_EQ(p, (std::vector<std::string>{"a", "b"}));  // map order
}

}  // namespace
}  // namespace et::pubsub
