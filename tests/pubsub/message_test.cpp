#include "src/pubsub/message.h"

#include <gtest/gtest.h>

namespace et::pubsub {
namespace {

Message sample_message() {
  Message m;
  m.topic = "Constrained/Traces/Broker/Publish-Only/uuid/AllUpdates";
  m.payload = to_bytes("trace body");
  m.publisher = "broker-3";
  m.sequence = 77;
  m.timestamp = 123456789;
  m.auth_token = to_bytes("token-bytes");
  m.signature = to_bytes("sig-bytes");
  m.encrypted = true;
  return m;
}

TEST(MessageTest, FrameRoundTripPublish) {
  const Frame f = make_publish(sample_message());
  const Frame g = Frame::deserialize(f.serialize());
  ASSERT_EQ(g.type, FrameType::kPublish);
  ASSERT_TRUE(g.message);
  EXPECT_EQ(g.message->topic, f.message->topic);
  EXPECT_EQ(g.message->payload, f.message->payload);
  EXPECT_EQ(g.message->publisher, "broker-3");
  EXPECT_EQ(g.message->sequence, 77u);
  EXPECT_EQ(g.message->timestamp, 123456789);
  EXPECT_EQ(g.message->auth_token, to_bytes("token-bytes"));
  EXPECT_EQ(g.message->signature, to_bytes("sig-bytes"));
  EXPECT_TRUE(g.message->encrypted);
}

TEST(MessageTest, FrameRoundTripControlVerbs) {
  {
    const Frame g =
        Frame::deserialize(make_connect("entity-1", 42).serialize());
    EXPECT_EQ(g.type, FrameType::kConnect);
    EXPECT_EQ(g.text, "entity-1");
    EXPECT_EQ(g.request_id, 42u);
  }
  {
    const Frame g = Frame::deserialize(make_subscribe("a/b/#", 7).serialize());
    EXPECT_EQ(g.type, FrameType::kSubscribe);
    EXPECT_EQ(g.text, "a/b/#");
  }
  {
    const Frame g = Frame::deserialize(make_unsubscribe("a/b").serialize());
    EXPECT_EQ(g.type, FrameType::kUnsubscribe);
  }
  {
    const Frame g =
        Frame::deserialize(make_error(2, "denied", 9).serialize());
    EXPECT_EQ(g.type, FrameType::kError);
    EXPECT_EQ(g.status, 2u);
    EXPECT_EQ(g.detail, "denied");
    EXPECT_EQ(g.request_id, 9u);
  }
}

TEST(MessageTest, SignableBytesExcludesSignature) {
  Message a = sample_message();
  Message b = sample_message();
  b.signature = to_bytes("different signature");
  EXPECT_EQ(a.signable_bytes(), b.signable_bytes());
}

TEST(MessageTest, SignableBytesCoversEveryOtherField) {
  const Message base = sample_message();
  Message m = base;
  m.topic += "x";
  EXPECT_NE(m.signable_bytes(), base.signable_bytes());
  m = base;
  m.payload.push_back(0);
  EXPECT_NE(m.signable_bytes(), base.signable_bytes());
  m = base;
  m.publisher = "other";
  EXPECT_NE(m.signable_bytes(), base.signable_bytes());
  m = base;
  ++m.sequence;
  EXPECT_NE(m.signable_bytes(), base.signable_bytes());
  m = base;
  ++m.timestamp;
  EXPECT_NE(m.signable_bytes(), base.signable_bytes());
  m = base;
  m.auth_token.push_back(1);
  EXPECT_NE(m.signable_bytes(), base.signable_bytes());
  m = base;
  m.encrypted = !m.encrypted;
  EXPECT_NE(m.signable_bytes(), base.signable_bytes());
}

TEST(MessageTest, DeserializeRejectsWrongMagic) {
  Bytes b = make_unsubscribe("x").serialize();
  b[0] ^= 0xFF;
  EXPECT_THROW(Frame::deserialize(b), SerializeError);
}

TEST(MessageTest, DeserializeRejectsUnknownType) {
  Bytes b = make_unsubscribe("x").serialize();
  b[1] = 200;
  EXPECT_THROW(Frame::deserialize(b), SerializeError);
}

TEST(MessageTest, DeserializeRejectsTruncation) {
  const Bytes b = make_publish(sample_message()).serialize();
  for (std::size_t cut : {std::size_t{1}, b.size() / 2, b.size() - 1}) {
    EXPECT_THROW(Frame::deserialize(BytesView(b.data(), cut)),
                 SerializeError)
        << "cut=" << cut;
  }
}

TEST(MessageTest, DeserializeRejectsTrailingGarbage) {
  Bytes b = make_unsubscribe("x").serialize();
  b.push_back(0xAA);
  EXPECT_THROW(Frame::deserialize(b), SerializeError);
}

TEST(MessageTest, EmptyMessageRoundTrip) {
  Message empty;
  const Frame g = Frame::deserialize(make_publish(empty).serialize());
  ASSERT_TRUE(g.message);
  EXPECT_EQ(g.message->topic, "");
  EXPECT_TRUE(g.message->payload.empty());
  EXPECT_FALSE(g.message->encrypted);
}

}  // namespace
}  // namespace et::pubsub
