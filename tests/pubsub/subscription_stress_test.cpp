// Concurrency stress for the sharded subscription table and the broker's
// threaded match stage. Built for ET_SANITIZE=thread: the assertions are
// deliberately coarse (no lost updates, no crashes, all messages arrive)
// — the point is giving TSan real concurrent traffic over the RCU
// snapshot path and the match worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/pubsub/broker.h"
#include "src/pubsub/client.h"
#include "src/pubsub/subscription.h"
#include "src/pubsub/topology.h"
#include "src/transport/realtime_network.h"

namespace et::pubsub {
namespace {

TEST(SubscriptionStressTest, ConcurrentWritersAndSnapshotReaders) {
  SubscriptionTable table;
  // A stable base population so readers always have something to match.
  for (int i = 0; i < 32; ++i) {
    table.add("base/seg" + std::to_string(i) + "/#",
              static_cast<transport::NodeId>(1000 + i));
  }
  table.add("#", 999);

  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_matches{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&table, w] {
      const auto endpoint = static_cast<transport::NodeId>(w + 1);
      for (int i = 0; i < kIters; ++i) {
        const std::string pattern =
            "w" + std::to_string(w) + "/topic" + std::to_string(i % 16);
        table.add(pattern, endpoint);
        if (i % 3 == 0) table.remove(pattern, endpoint);
        if (i % 97 == 0) (void)table.remove_endpoint(endpoint);
      }
      (void)table.remove_endpoint(endpoint);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&table, &stop, &reader_matches, r] {
      const TopicPath own("w" + std::to_string(r % kWriters) + "/topic3");
      const TopicPath base("base/seg7/deep/leaf");
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = table.snapshot();
        // The wildcard subscriber and the base population never go away,
        // so every snapshot must see them.
        ASSERT_TRUE(snap->match(base).contains(999));
        ASSERT_TRUE(snap->match(base).contains(1007));
        ASSERT_TRUE(snap->any_match(own));  // "#" matches everything
        reader_matches.fetch_add(1, std::memory_order_relaxed);
        // Table shorthands take their own snapshot internally.
        ASSERT_TRUE(table.endpoint_matches(999, own));
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (int r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  EXPECT_GT(reader_matches.load(), 0u);
  // All writer subscriptions were torn down; the base population stays.
  EXPECT_EQ(table.pattern_count(), 33u);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_FALSE(table.endpoint_matches(
        static_cast<transport::NodeId>(w + 1),
        TopicPath("w" + std::to_string(w) + "/topic3")));
  }
}

TEST(SubscriptionStressTest, ThreadedMatchStageDeliversEverything) {
  transport::RealTimeNetwork net(1717);
  Topology topo(net);
  Broker::Options o;
  o.name = "b0";
  o.match_threads = 2;
  Broker& broker = topo.add_broker(std::move(o));
  ASSERT_EQ(broker.match_threads(), 2);

  transport::LinkParams link = transport::LinkParams::ideal_profile();

  Client sub(net, "sub");
  std::atomic<bool> sub_connected{false};
  sub.connect(broker.node(), link,
              [&](const Status& s) { sub_connected = s.is_ok(); });
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<bool> subscribed{false};
  sub.subscribe(
      "stress/#", [&](const Message&) { delivered.fetch_add(1); },
      [&](const Status& s) { subscribed = s.is_ok(); });

  constexpr int kPublishers = 3;
  constexpr int kPerPublisher = 200;
  std::vector<std::unique_ptr<Client>> pubs;
  std::atomic<int> connected{0};
  for (int p = 0; p < kPublishers; ++p) {
    pubs.push_back(
        std::make_unique<Client>(net, "pub" + std::to_string(p)));
    pubs.back()->connect(broker.node(), link, [&](const Status& s) {
      if (s.is_ok()) connected.fetch_add(1);
    });
  }
  for (int i = 0; i < 200; ++i) {
    if (sub_connected && subscribed && connected == kPublishers) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(sub_connected && subscribed);
  ASSERT_EQ(connected.load(), kPublishers);

  // Publish concurrently from plain test threads: Client::publish posts
  // into the client's node context, so this also stresses the backend's
  // cross-thread entry points.
  std::vector<std::thread> workers;
  for (int p = 0; p < kPublishers; ++p) {
    workers.emplace_back([&pubs, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        pubs[p]->publish("stress/p" + std::to_string(p) + "/" +
                             std::to_string(i % 8),
                         to_bytes(std::to_string(i)));
      }
    });
  }
  for (auto& t : workers) t.join();

  constexpr std::uint64_t kExpected =
      static_cast<std::uint64_t>(kPublishers) * kPerPublisher;
  for (int i = 0; i < 1000 && delivered.load() < kExpected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(delivered.load(), kExpected);
  const BrokerStats stats = broker.stats();
  EXPECT_GE(stats.published, kExpected);
  EXPECT_GE(stats.delivered_local, kExpected);

  net.stop();
}

}  // namespace
}  // namespace et::pubsub
