// Unit tests for the self-healing overlay layer (overlay_repair.h): the
// keepalive liveness ladder, unpeer's interest teardown, peer-exchange
// gossip, and the repair policy's standby-activation and gossip-scored
// re-peering paths — all on VirtualTimeNetwork, where same-seed runs are
// byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/pubsub/client.h"
#include "src/pubsub/overlay_repair.h"
#include "src/pubsub/topology.h"
#include "src/transport/fault_injector.h"
#include "src/transport/virtual_network.h"

namespace et::pubsub {
namespace {

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

/// Brokers + one repair service per broker + one shared policy.
struct RepairRig {
  RepairRig(transport::VirtualTimeNetwork& net, Topology& topo,
            std::vector<Broker*> brokers_in, RepairPolicy::Options po)
      : brokers(std::move(brokers_in)), policy(net, topo, po) {
    for (std::size_t i = 0; i < brokers.size(); ++i) {
      services.push_back(std::make_unique<OverlayRepairService>(
          *brokers[i], &policy, OverlayRepairService::Options{}));
      policy.attach(i, *brokers[i], *services[i]);
      services[i]->start();
    }
  }

  std::vector<Broker*> brokers;
  RepairPolicy policy;
  std::vector<std::unique_ptr<OverlayRepairService>> services;
};

TEST(OverlayRepairServiceTest, KeepaliveLadderDeclaresCutPeerDead) {
  transport::VirtualTimeNetwork net(7);
  Topology topo(net);
  auto brokers = topo.make_chain(2, fast());
  OverlayRepairService s0(*brokers[0], nullptr, {});
  OverlayRepairService s1(*brokers[1], nullptr, {});
  s0.start();
  s1.start();

  net.run_for(1 * kSecond);
  EXPECT_GT(s0.stats().probes_sent, 0u);
  EXPECT_GT(s0.stats().acks_sent, 0u);
  EXPECT_EQ(s0.stats().suspects, 0u);
  EXPECT_EQ(s0.stats().peers_declared_dead, 0u);

  // A blackhole drops every frame silently; both ends must walk the
  // suspect -> dead ladder and tear the peering down.
  net.faults().blackhole(brokers[0]->node(), brokers[1]->node());
  net.run_for(1 * kSecond);
  EXPECT_EQ(s0.stats().suspects, 1u);
  EXPECT_EQ(s0.stats().peers_declared_dead, 1u);
  EXPECT_EQ(s1.stats().peers_declared_dead, 1u);
  EXPECT_TRUE(brokers[0]->neighbours().empty());
  EXPECT_TRUE(brokers[1]->neighbours().empty());
}

TEST(OverlayRepairServiceTest, LossyLinkDoesNotFalselyKillPeer) {
  transport::VirtualTimeNetwork net(7);
  Topology topo(net);
  transport::LinkParams lossy = fast();
  lossy.loss_probability = 0.05;
  lossy.reliable = false;
  auto brokers = topo.make_chain(2, lossy);
  OverlayRepairService s0(*brokers[0], nullptr, {});
  OverlayRepairService s1(*brokers[1], nullptr, {});
  s0.start();
  s1.start();

  // Any frame resets the ladder, so a false dead declaration at 5% loss
  // needs probe, ack AND the peer's own traffic lost for dead_misses
  // consecutive ticks (~1e-14 per window). 30 seconds = 300 windows.
  net.run_for(30 * kSecond);
  EXPECT_EQ(s0.stats().peers_declared_dead, 0u);
  EXPECT_EQ(s1.stats().peers_declared_dead, 0u);
  EXPECT_EQ(brokers[0]->neighbours().size(), 1u);
  EXPECT_EQ(brokers[1]->neighbours().size(), 1u);
}

TEST(OverlayRepairServiceTest, GossipSpreadsEndpointDirectory) {
  transport::VirtualTimeNetwork net(7);
  Topology topo(net);
  auto brokers = topo.make_chain(3, fast());
  OverlayRepairService s0(*brokers[0], nullptr, {});
  OverlayRepairService s1(*brokers[1], nullptr, {});
  OverlayRepairService s2(*brokers[2], nullptr, {});
  s0.start();
  s1.start();
  s2.start();

  net.run_for(1 * kSecond);
  // Ends of the chain are not neighbours; they learn each other through
  // the middle broker's peer-exchange records.
  EXPECT_TRUE(s0.knows("broker2"));
  EXPECT_TRUE(s2.knows("broker0"));
  EXPECT_GT(s0.stats().gossip_sent, 0u);
  EXPECT_GT(s0.stats().gossip_merged, 0u);
  EXPECT_EQ(s0.directory().size(), 3u);
}

TEST(BrokerUnpeerTest, RetractsOrphanedInterestUpstream) {
  transport::VirtualTimeNetwork net(7);
  Topology topo(net);
  auto b = topo.make_chain(3, fast());
  Client sub(net, "sub");
  Client pub(net, "pub");
  sub.connect(b[2]->node(), fast());
  pub.connect(b[0]->node(), fast());
  net.run_for(20 * kMillisecond);

  int got = 0;
  sub.subscribe("repair/x", [&](const Message&) { ++got; });
  net.run_for(20 * kMillisecond);
  pub.publish("repair/x", to_bytes("one"));
  net.run_for(50 * kMillisecond);
  ASSERT_EQ(got, 1);
  const std::uint64_t before = b[0]->stats().forwarded;
  ASSERT_GT(before, 0u);

  // The middle broker forgets the subscriber's broker. The orphaned
  // pattern must be retracted from the head broker too, so it stops
  // forwarding publishes toward the dead edge.
  net.post(b[1]->node(), [&] { b[1]->unpeer(b[2]->node()); });
  net.run_for(20 * kMillisecond);
  pub.publish("repair/x", to_bytes("two"));
  net.run_for(50 * kMillisecond);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(b[0]->stats().forwarded, before);
}

TEST(RepairPolicyTest, StandbyActivationHealsRingCut) {
  transport::VirtualTimeNetwork net(7);
  Topology topo(net);
  RepairPolicy::Options po;
  po.seed = 1;
  po.link_params = fast();
  RepairRig rig(net, topo, topo.make_ring(4, fast()), po);

  Client sub(net, "sub");
  Client pub(net, "pub");
  sub.connect(rig.brokers[3]->node(), fast());
  pub.connect(rig.brokers[0]->node(), fast());
  net.run_for(20 * kMillisecond);
  int got = 0;
  sub.subscribe("ring/x", [&](const Message&) { ++got; });
  net.run_for(1 * kSecond);
  pub.publish("ring/x", to_bytes("before"));
  net.run_for(50 * kMillisecond);
  ASSERT_EQ(got, 1);

  // Sever the spanning chain in the middle: detection (~700ms) tears the
  // edge down, the policy finds the ring's recorded standby (3,0)
  // crossing the split and activates it, then interest resyncs.
  net.faults().blackhole(rig.brokers[1]->node(), rig.brokers[2]->node());
  net.run_for(2 * kSecond);

  const RepairPolicy::Stats stats = rig.policy.stats();
  EXPECT_EQ(stats.reports, 2u);  // both cut endpoints report
  EXPECT_EQ(stats.splits, 1u);   // second report finds it already healed
  EXPECT_EQ(stats.standby_activations, 1u);
  EXPECT_EQ(stats.repeers, 0u);
  EXPECT_TRUE(topo.standby_edges().empty());  // promoted into edges()

  pub.publish("ring/x", to_bytes("after"));
  net.run_for(100 * kMillisecond);
  EXPECT_EQ(got, 2);
}

TEST(RepairPolicyTest, RepeerFallbackUsesGossipDirectory) {
  transport::VirtualTimeNetwork net(7);
  Topology topo(net);
  RepairPolicy::Options po;
  po.seed = 9;
  po.link_params = fast();
  // A chain records no standby edge, so the policy must fall back to
  // creating a fresh edge between gossip-learned endpoints.
  RepairRig rig(net, topo, topo.make_chain(3, fast()), po);

  Client sub(net, "sub");
  Client pub(net, "pub");
  sub.connect(rig.brokers[2]->node(), fast());
  pub.connect(rig.brokers[0]->node(), fast());
  net.run_for(20 * kMillisecond);
  int got = 0;
  sub.subscribe("chain/x", [&](const Message&) { ++got; });
  net.run_for(1 * kSecond);  // let gossip spread the directory first
  pub.publish("chain/x", to_bytes("before"));
  net.run_for(50 * kMillisecond);
  ASSERT_EQ(got, 1);

  net.faults().blackhole(rig.brokers[1]->node(), rig.brokers[2]->node());
  net.run_for(2 * kSecond);

  const RepairPolicy::Stats stats = rig.policy.stats();
  EXPECT_EQ(stats.splits, 1u);
  EXPECT_EQ(stats.standby_activations, 0u);
  EXPECT_EQ(stats.repeers, 1u);
  EXPECT_EQ(stats.stranded, 0u);
  // The only candidate not excluded as the known-bad cut pair is 0-2.
  ASSERT_EQ(topo.edges().size(), 2u);

  pub.publish("chain/x", to_bytes("after"));
  net.run_for(100 * kMillisecond);
  EXPECT_EQ(got, 2);
}

TEST(RepairPolicyTest, SameSeedProducesIdenticalActionLogs) {
  const auto run = [](std::uint64_t seed) {
    transport::VirtualTimeNetwork net(42);
    Topology topo(net);
    RepairPolicy::Options po;
    po.seed = seed;
    po.link_params = fast();
    RepairRig rig(net, topo, topo.make_ring(5, fast()), po);
    net.run_for(500 * kMillisecond);
    net.faults().blackhole(rig.brokers[2]->node(), rig.brokers[3]->node());
    net.run_for(2 * kSecond);
    return rig.policy.action_log();
  };

  const std::vector<std::string> first = run(123);
  const std::vector<std::string> second = run(123);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical decisions and timestamps
  for (const std::string& line : first) {
    EXPECT_EQ(line.rfind("t=", 0), 0u) << line;
  }
}

}  // namespace
}  // namespace et::pubsub
