#include "src/transport/link.h"

#include <gtest/gtest.h>

namespace et::transport {
namespace {

TEST(LinkParamsTest, TcpProfileIsReliableOrdered) {
  const LinkParams p = LinkParams::tcp_profile();
  EXPECT_TRUE(p.reliable);
  EXPECT_TRUE(p.ordered);
  EXPECT_GT(p.base_latency, 0);
}

TEST(LinkParamsTest, UdpProfileIsUnreliableUnordered) {
  const LinkParams p = LinkParams::udp_profile();
  EXPECT_FALSE(p.reliable);
  EXPECT_FALSE(p.ordered);
  EXPECT_GT(p.loss_probability, 0.0);
}

TEST(LinkParamsTest, UdpFasterThanTcp) {
  // The paper's Figure 2 shape depends on this ordering.
  EXPECT_LT(LinkParams::udp_profile().base_latency,
            LinkParams::tcp_profile().base_latency);
}

TEST(LinkStateTest, IdealLinkHasZeroDelayNoLoss) {
  LinkState link(LinkParams::ideal_profile());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(link.sample_delay(100, i, rng), 0);
  }
  EXPECT_EQ(link.packets_lost(), 0u);
  EXPECT_EQ(link.packets_sent(), 100u);
}

TEST(LinkStateTest, DelayNearBaseLatency) {
  LinkParams p;
  p.base_latency = 1500;
  p.jitter_stddev = 0;
  p.loss_probability = 0;
  p.bytes_per_us = 0;
  LinkState link(p);
  Rng rng(2);
  EXPECT_EQ(link.sample_delay(0, 0, rng), 1500);
}

TEST(LinkStateTest, BandwidthAddsTransmissionDelay) {
  LinkParams p;
  p.base_latency = 1000;
  p.jitter_stddev = 0;
  p.loss_probability = 0;
  p.bytes_per_us = 12.5;  // 100 Mbps
  LinkState link(p);
  Rng rng(3);
  // 1250 bytes at 12.5 B/us = 100 us extra.
  EXPECT_EQ(link.sample_delay(1250, 0, rng), 1100);
}

TEST(LinkStateTest, UnreliableLinkDropsApproximatelyAtRate) {
  LinkParams p = LinkParams::udp_profile();
  p.loss_probability = 0.2;
  LinkState link(p);
  Rng rng(4);
  int lost = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    if (link.sample_delay(64, i, rng) == kPacketLost) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kN, 0.2, 0.03);
  EXPECT_EQ(link.packets_lost(), static_cast<std::uint64_t>(lost));
}

TEST(LinkStateTest, ReliableLinkNeverDropsButPaysRetransmit) {
  LinkParams p = LinkParams::tcp_profile();
  p.loss_probability = 1.0;  // every packet "lost" once
  p.jitter_stddev = 0;
  p.bytes_per_us = 0;
  LinkState link(p);
  Rng rng(5);
  const Duration d = link.sample_delay(0, 0, rng);
  EXPECT_EQ(d, p.base_latency * 3);  // base + 2x retransmit penalty
  EXPECT_EQ(link.packets_lost(), 0u);
}

TEST(LinkStateTest, OrderedLinkClampsFifo) {
  LinkParams p;
  p.base_latency = 1000;
  p.jitter_stddev = 500;  // heavy jitter would reorder without the clamp
  p.loss_probability = 0;
  p.ordered = true;
  p.bytes_per_us = 0;
  LinkState link(p);
  Rng rng(6);
  TimePoint now = 0;
  TimePoint last_delivery = 0;
  for (int i = 0; i < 500; ++i) {
    const Duration d = link.sample_delay(0, now, rng);
    const TimePoint delivery = now + d;
    EXPECT_GE(delivery, last_delivery);
    last_delivery = delivery;
    now += 10;  // closely spaced sends
  }
}

TEST(LinkStateTest, JitterProducesVariedDelays) {
  LinkParams p;
  p.base_latency = 1000;
  p.jitter_stddev = 200;
  p.loss_probability = 0;
  p.ordered = false;
  p.bytes_per_us = 0;
  LinkState link(p);
  Rng rng(7);
  Duration min_d = 1 << 30, max_d = 0;
  for (int i = 0; i < 200; ++i) {
    const Duration d = link.sample_delay(0, 0, rng);
    min_d = std::min(min_d, d);
    max_d = std::max(max_d, d);
    EXPECT_GE(d, p.base_latency / 2);  // clamped floor
  }
  EXPECT_LT(min_d, max_d);
}

}  // namespace
}  // namespace et::transport
