// NetworkBackend conformance: the same contract checks run against both
// backends through a small driver that knows how to "advance" each one
// (virtual time steps vs. wall-clock sleeps). Protocol code relies on
// exactly these properties being backend-independent.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/transport/realtime_network.h"
#include "src/transport/virtual_network.h"

namespace et::transport {
namespace {

template <typename Backend>
struct Driver;

template <>
struct Driver<VirtualTimeNetwork> {
  static void settle(VirtualTimeNetwork& net, Duration virtual_time) {
    net.run_for(virtual_time);
  }
};

template <>
struct Driver<RealTimeNetwork> {
  static void settle(RealTimeNetwork&, Duration virtual_time) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(virtual_time + 30 * kMillisecond));
  }
};

template <typename Backend>
class BackendConformanceTest : public ::testing::Test {
 protected:
  Backend net{77};
  void settle(Duration d) { Driver<Backend>::settle(net, d); }

  static LinkParams fast() {
    LinkParams p = LinkParams::ideal_profile();
    p.base_latency = 1 * kMillisecond;
    return p;
  }
};

using Backends = ::testing::Types<VirtualTimeNetwork, RealTimeNetwork>;
TYPED_TEST_SUITE(BackendConformanceTest, Backends);

TYPED_TEST(BackendConformanceTest, DeliversWithSourceIdentity) {
  std::atomic<int> got{0};
  std::atomic<NodeId> from_seen{kInvalidNode};
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  const NodeId b = this->net.add_node("b", [&](NodeId from, Bytes payload) {
    from_seen.store(from);
    if (to_string(payload) == "payload") got.fetch_add(1);
  });
  this->net.link(a, b, this->fast());
  ASSERT_TRUE(this->net.send(a, b, to_bytes("payload")).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(from_seen.load(), a);
}

TYPED_TEST(BackendConformanceTest, SendWithoutLinkIsUnavailable) {
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  const NodeId b = this->net.add_node("b", [](NodeId, Bytes) {});
  EXPECT_EQ(this->net.send(a, b, Bytes{}).code(), Code::kUnavailable);
}

TYPED_TEST(BackendConformanceTest, OrderedLinkPreservesFifo) {
  std::vector<int> order;
  std::mutex mu;
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, Bytes p) {
    std::lock_guard lock(mu);
    order.push_back(p[0]);
  });
  this->net.link(a, b, this->fast());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        this->net.send(a, b, Bytes{static_cast<std::uint8_t>(i)}).is_ok());
  }
  this->settle(10 * kMillisecond);
  std::lock_guard lock(mu);
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(order[i], i);
}

TYPED_TEST(BackendConformanceTest, TimerFiresOnceAndCancelWorks) {
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  std::atomic<int> fired{0};
  std::atomic<int> cancelled_fired{0};
  this->net.schedule(a, 2 * kMillisecond, [&] { fired.fetch_add(1); });
  const TimerId id = this->net.schedule(a, 2 * kMillisecond, [&] {
    cancelled_fired.fetch_add(1);
  });
  this->net.cancel(id);
  this->settle(20 * kMillisecond);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(cancelled_fired.load(), 0);
}

TYPED_TEST(BackendConformanceTest, PostRunsInNodeContext) {
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  std::atomic<bool> ran{false};
  this->net.post(a, [&] { ran.store(true); });
  this->settle(1 * kMillisecond);
  EXPECT_TRUE(ran.load());
}

TYPED_TEST(BackendConformanceTest, UnlinkDropsInFlight) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, Bytes) {
    got.fetch_add(1);
  });
  LinkParams slow = this->fast();
  slow.base_latency = 20 * kMillisecond;
  this->net.link(a, b, slow);
  ASSERT_TRUE(this->net.send(a, b, Bytes(4)).is_ok());
  this->net.unlink(a, b);
  this->settle(50 * kMillisecond);
  EXPECT_EQ(got.load(), 0);
  EXPECT_FALSE(this->net.linked(a, b));
}

TYPED_TEST(BackendConformanceTest, DetachSilencesNode) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, Bytes) {
    got.fetch_add(1);
  });
  this->net.link(a, b, this->fast());
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);

  this->net.detach(b);
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);  // handler replaced; no further invocations
}

TYPED_TEST(BackendConformanceTest, NodeNamesAreStable) {
  const NodeId a = this->net.add_node("alpha", [](NodeId, Bytes) {});
  const NodeId b = this->net.add_node("beta", [](NodeId, Bytes) {});
  EXPECT_EQ(this->net.node_name(a), "alpha");
  EXPECT_EQ(this->net.node_name(b), "beta");
  EXPECT_EQ(this->net.node_name(kInvalidNode), "<invalid>");
}

TYPED_TEST(BackendConformanceTest, ClockAdvancesAcrossDeliveries) {
  const NodeId a = this->net.add_node("a", [](NodeId, Bytes) {});
  const NodeId b = this->net.add_node("b", [](NodeId, Bytes) {});
  this->net.link(a, b, this->fast());
  const TimePoint before = this->net.now();
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_GT(this->net.now(), before);
}

}  // namespace
}  // namespace et::transport
