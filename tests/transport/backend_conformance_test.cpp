// NetworkBackend conformance: the same contract checks run against both
// backends through a small driver that knows how to "advance" each one
// (virtual time steps vs. wall-clock sleeps). Protocol code relies on
// exactly these properties being backend-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/pubsub/message.h"
#include "src/transport/fault_injector.h"
#include "src/transport/realtime_network.h"
#include "src/transport/socket_network.h"
#include "src/transport/virtual_network.h"

namespace et::transport {
namespace {

template <typename Backend>
struct Driver;

template <>
struct Driver<VirtualTimeNetwork> {
  static void settle(VirtualTimeNetwork& net, Duration virtual_time) {
    net.run_for(virtual_time);
  }
};

template <>
struct Driver<RealTimeNetwork> {
  static void settle(RealTimeNetwork&, Duration virtual_time) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(virtual_time + 30 * kMillisecond));
  }
};

template <>
struct Driver<SocketNetwork> {
  static void settle(SocketNetwork&, Duration virtual_time) {
    // Real TCP over loopback: modeled latency plus a margin for the
    // kernel round trip, same shape as the RealTimeNetwork driver.
    std::this_thread::sleep_for(
        std::chrono::microseconds(virtual_time + 30 * kMillisecond));
  }
};

template <typename Backend>
class BackendConformanceTest : public ::testing::Test {
 protected:
  Backend net{77};
  void settle(Duration d) { Driver<Backend>::settle(net, d); }

  static LinkParams fast() {
    LinkParams p = LinkParams::ideal_profile();
    p.base_latency = 1 * kMillisecond;
    return p;
  }
};

using Backends =
    ::testing::Types<VirtualTimeNetwork, RealTimeNetwork, SocketNetwork>;
TYPED_TEST_SUITE(BackendConformanceTest, Backends);

TYPED_TEST(BackendConformanceTest, DeliversWithSourceIdentity) {
  std::atomic<int> got{0};
  std::atomic<NodeId> from_seen{kInvalidNode};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [&](NodeId from, BytesView payload) {
    from_seen.store(from);
    if (to_string(payload) == "payload") got.fetch_add(1);
  });
  this->net.link(a, b, this->fast());
  ASSERT_TRUE(this->net.send(a, b, to_bytes("payload")).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(from_seen.load(), a);
}

TYPED_TEST(BackendConformanceTest, SendWithoutLinkIsUnavailable) {
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [](NodeId, BytesView) {});
  EXPECT_EQ(this->net.send(a, b, Bytes{}).code(), Code::kUnavailable);
}

TYPED_TEST(BackendConformanceTest, OrderedLinkPreservesFifo) {
  std::vector<int> order;
  std::mutex mu;
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, BytesView p) {
    std::lock_guard lock(mu);
    order.push_back(p[0]);
  });
  this->net.link(a, b, this->fast());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        this->net.send(a, b, Bytes{static_cast<std::uint8_t>(i)}).is_ok());
  }
  this->settle(10 * kMillisecond);
  std::lock_guard lock(mu);
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(order[i], i);
}

TYPED_TEST(BackendConformanceTest, TimerFiresOnceAndCancelWorks) {
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  std::atomic<int> fired{0};
  std::atomic<int> cancelled_fired{0};
  this->net.schedule(a, 2 * kMillisecond, [&] { fired.fetch_add(1); });
  const TimerId id = this->net.schedule(a, 2 * kMillisecond, [&] {
    cancelled_fired.fetch_add(1);
  });
  this->net.cancel(id);
  this->settle(20 * kMillisecond);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(cancelled_fired.load(), 0);
}

TYPED_TEST(BackendConformanceTest, PostRunsInNodeContext) {
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  std::atomic<bool> ran{false};
  this->net.post(a, [&] { ran.store(true); });
  this->settle(1 * kMillisecond);
  EXPECT_TRUE(ran.load());
}

TYPED_TEST(BackendConformanceTest, UnlinkDropsInFlight) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, BytesView) {
    got.fetch_add(1);
  });
  LinkParams slow = this->fast();
  slow.base_latency = 20 * kMillisecond;
  this->net.link(a, b, slow);
  ASSERT_TRUE(this->net.send(a, b, Bytes(4)).is_ok());
  this->net.unlink(a, b);
  this->settle(50 * kMillisecond);
  EXPECT_EQ(got.load(), 0);
  EXPECT_FALSE(this->net.linked(a, b));
}

TYPED_TEST(BackendConformanceTest, DetachSilencesNode) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, BytesView) {
    got.fetch_add(1);
  });
  this->net.link(a, b, this->fast());
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);

  this->net.detach(b);
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);  // handler replaced; no further invocations
}

TYPED_TEST(BackendConformanceTest, NodeNamesAreStable) {
  const NodeId a = this->net.add_node("alpha", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("beta", [](NodeId, BytesView) {});
  EXPECT_EQ(this->net.node_name(a), "alpha");
  EXPECT_EQ(this->net.node_name(b), "beta");
  EXPECT_EQ(this->net.node_name(kInvalidNode), "<invalid>");
}

TYPED_TEST(BackendConformanceTest, ClockAdvancesAcrossDeliveries) {
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [](NodeId, BytesView) {});
  this->net.link(a, b, this->fast());
  const TimePoint before = this->net.now();
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_GT(this->net.now(), before);
}

// --- FaultInjector conformance: every primitive must behave identically
// on both backends. Injected faults are always *silent*: send returns OK
// and only delivery is affected. -----------------------------------------

TYPED_TEST(BackendConformanceTest, PartitionDropsCrossGroupTrafficOnly) {
  std::atomic<int> got_b{0}, got_c{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got_b.fetch_add(1); });
  const NodeId c = this->net.add_node(
      "c", [&](NodeId, BytesView) { got_c.fetch_add(1); });
  this->net.link(a, b, this->fast());
  this->net.link(b, c, this->fast());

  // d is unlisted: it must keep reaching both sides of the partition.
  const NodeId d = this->net.add_node("d", [](NodeId, BytesView) {});
  this->net.link(d, a, this->fast());
  this->net.link(d, b, this->fast());

  this->net.faults().partition({{a}, {b, c}});
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());  // crosses the cut
  ASSERT_TRUE(this->net.send(b, c, Bytes(1)).is_ok());  // intra-group
  ASSERT_TRUE(this->net.send(d, b, Bytes(1)).is_ok());  // unlisted sender
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got_b.load(), 1);  // only d's packet arrived
  EXPECT_EQ(got_c.load(), 1);

  this->net.faults().heal();
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got_b.load(), 2);
}

TYPED_TEST(BackendConformanceTest, IsolateSeversListedFromUnlisted) {
  // A single-group partition (isolate) cuts the listed set off from every
  // unlisted node while both sides keep their internal traffic — the
  // historical footgun was that partition({{a,b}}) was a silent no-op.
  std::atomic<int> got_a{0}, got_b{0}, got_d{0};
  const NodeId a = this->net.add_node(
      "a", [&](NodeId, BytesView) { got_a.fetch_add(1); });
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got_b.fetch_add(1); });
  const NodeId c = this->net.add_node("c", [](NodeId, BytesView) {});
  const NodeId d = this->net.add_node(
      "d", [&](NodeId, BytesView) { got_d.fetch_add(1); });
  this->net.link(a, b, this->fast());
  this->net.link(b, c, this->fast());
  this->net.link(c, d, this->fast());

  this->net.faults().isolate({a, b});
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());  // listed-to-listed
  ASSERT_TRUE(this->net.send(c, b, Bytes(1)).is_ok());  // crosses boundary
  ASSERT_TRUE(this->net.send(c, d, Bytes(1)).is_ok());  // both unlisted
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got_b.load(), 1);  // only a's packet arrived
  EXPECT_EQ(got_d.load(), 1);

  this->net.faults().heal();
  ASSERT_TRUE(this->net.send(c, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got_b.load(), 2);
}

TYPED_TEST(BackendConformanceTest, PartitionSwallowsInFlightPackets) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got.fetch_add(1); });
  LinkParams slow = this->fast();
  slow.base_latency = 50 * kMillisecond;
  this->net.link(a, b, slow);
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  // Cut the pair while the packet is still on the wire.
  this->net.faults().partition({{a}, {b}});
  this->settle(100 * kMillisecond);
  EXPECT_EQ(got.load(), 0);
}

TYPED_TEST(BackendConformanceTest, BlackholeAndRestore) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got.fetch_add(1); });
  this->net.link(a, b, this->fast());
  this->net.faults().blackhole(a, b);
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  ASSERT_TRUE(this->net.send(b, a, Bytes(1)).is_ok());  // both directions
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 0);
  EXPECT_TRUE(this->net.linked(a, b));  // the link itself stays up

  this->net.faults().restore(a, b);
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);
}

TYPED_TEST(BackendConformanceTest, FlapTogglesWithPhase) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got.fetch_add(1); });
  this->net.link(a, b, this->fast());
  // Down for 300 ms, up for 300 ms, starting now: the first send falls in
  // the down window, a send after ~350 ms falls in the up window (wide
  // margins keep the real-time variant immune to scheduler jitter).
  this->net.faults().flap(a, b, 300 * kMillisecond, 300 * kMillisecond,
                          this->net.now());
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(350 * kMillisecond);
  EXPECT_EQ(got.load(), 0);
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);
}

TYPED_TEST(BackendConformanceTest, DropBurstConsumesExactly) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got.fetch_add(1); });
  this->net.link(a, b, this->fast());
  this->net.faults().drop_next(a, b, 2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  }
  this->settle(10 * kMillisecond);
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(this->net.faults().stats().dropped, 2u);
}

TYPED_TEST(BackendConformanceTest, DuplicateDeliversTwice) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, BytesView p) {
    if (to_string(p) == "dup-me") got.fetch_add(1);
  });
  this->net.link(a, b, this->fast());
  this->net.faults().duplicate_probability(a, b, 1.0);
  ASSERT_TRUE(this->net.send(a, b, to_bytes("dup-me")).is_ok());
  this->settle(10 * kMillisecond);
  EXPECT_EQ(got.load(), 2);
  EXPECT_EQ(this->net.faults().stats().duplicated, 1u);
}

TYPED_TEST(BackendConformanceTest, CorruptMutatesPayloadPreservingSize) {
  std::atomic<bool> delivered{false};
  std::atomic<bool> same_size{false};
  std::atomic<bool> differs{false};
  const Bytes original = to_bytes("pristine-payload-bytes");
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node("b", [&](NodeId, BytesView p) {
    delivered.store(true);
    same_size.store(p.size() == original.size());
    differs.store(!std::equal(p.begin(), p.end(), original.begin(),
                              original.end()));
  });
  this->net.link(a, b, this->fast());
  this->net.faults().corrupt_probability(a, b, 1.0);
  ASSERT_TRUE(this->net.send(a, b, original).is_ok());
  this->settle(10 * kMillisecond);
  EXPECT_TRUE(delivered.load());
  EXPECT_TRUE(same_size.load());
  EXPECT_TRUE(differs.load());
  EXPECT_EQ(this->net.faults().stats().corrupted, 1u);
}

TYPED_TEST(BackendConformanceTest, CrashIsolatesBothDirectionsUntilRestart) {
  std::atomic<int> got_a{0}, got_b{0};
  const NodeId a = this->net.add_node(
      "a", [&](NodeId, BytesView) { got_a.fetch_add(1); });
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got_b.fetch_add(1); });
  this->net.link(a, b, this->fast());
  this->net.faults().crash(b);
  EXPECT_TRUE(this->net.faults().crashed(b));
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  ASSERT_TRUE(this->net.send(b, a, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got_a.load(), 0);
  EXPECT_EQ(got_b.load(), 0);

  // Frozen-process model: a crashed node's timers keep running (its state
  // is intact, only its network is gone) so a restart resumes seamlessly.
  std::atomic<int> timer_fired{0};
  this->net.schedule(b, 1 * kMillisecond, [&] { timer_fired.fetch_add(1); });
  this->settle(5 * kMillisecond);
  EXPECT_EQ(timer_fired.load(), 1);

  this->net.faults().restart(b);
  EXPECT_FALSE(this->net.faults().crashed(b));
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got_b.load(), 1);
}

TYPED_TEST(BackendConformanceTest, ClearRemovesEveryFault) {
  std::atomic<int> got{0};
  const NodeId a = this->net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = this->net.add_node(
      "b", [&](NodeId, BytesView) { got.fetch_add(1); });
  this->net.link(a, b, this->fast());
  this->net.faults().partition({{a}, {b}});
  this->net.faults().blackhole(a, b);
  this->net.faults().crash(a);
  this->net.faults().clear();
  EXPECT_FALSE(this->net.faults().armed());
  ASSERT_TRUE(this->net.send(a, b, Bytes(1)).is_ok());
  this->settle(5 * kMillisecond);
  EXPECT_EQ(got.load(), 1);
}

// Satellite: wire decoders must reject — never crash on — packets the
// injector corrupted. Runs the corruption path many times over a real
// serialized pubsub frame and feeds every mutation to the decoder.
TYPED_TEST(BackendConformanceTest, CorruptedFramesRejectedByDecoder) {
  pubsub::Message m;
  m.topic = "Availability/Traces/entity-7/ChangeNotifications";
  m.publisher = "entity-7";
  m.sequence = 41;
  m.timestamp = 123456789;
  m.payload = to_bytes("state transition: READY");
  const Bytes wire = pubsub::make_publish(std::move(m)).serialize();

  FaultInjector fi(2026);
  fi.corrupt_probability(1, 2, 1.0);
  int rejected = 0, accepted = 0;
  for (int i = 0; i < 200; ++i) {
    Bytes mutated = wire;
    (void)fi.judge(1, 2, 0, mutated);
    ASSERT_NE(mutated, wire);
    try {
      (void)pubsub::Frame::deserialize(mutated);
      ++accepted;  // flip hit a don't-care byte; must still not crash
    } catch (const SerializeError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected + accepted, 200);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace et::transport
