#include "src/transport/realtime_network.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/bytes.h"

namespace et::transport {
namespace {

LinkParams fast_link() {
  LinkParams p = LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

TEST(RealTimeNetworkTest, DeliversPacket) {
  RealTimeNetwork net;
  std::atomic<int> got{0};
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId, BytesView p) {
    if (to_string(p) == "hello") got.fetch_add(1);
  });
  net.link(a, b, fast_link());
  ASSERT_TRUE(net.send(a, b, to_bytes("hello")).is_ok());
  net.drain();
  EXPECT_EQ(got.load(), 1);
}

TEST(RealTimeNetworkTest, MeasuredLatencyMatchesLinkModel) {
  RealTimeNetwork net;
  std::atomic<TimePoint> arrival{0};
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId, BytesView) {
    arrival.store(net.now());
  });
  LinkParams p = LinkParams::ideal_profile();
  p.base_latency = 5 * kMillisecond;
  net.link(a, b, p);
  const TimePoint start = net.now();
  ASSERT_TRUE(net.send(a, b, Bytes(16)).is_ok());
  net.drain();
  ASSERT_GT(arrival.load(), 0);
  const Duration elapsed = arrival.load() - start;
  EXPECT_GE(elapsed, 5 * kMillisecond);
  // The upper bound only guards against "delivered without any delay at
  // all being modelled"; parallel test load can legitimately stall the
  // timer thread for hundreds of milliseconds.
  EXPECT_LT(elapsed, 1 * kSecond);
}

TEST(RealTimeNetworkTest, SendWithoutLinkFails) {
  RealTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [](NodeId, BytesView) {});
  EXPECT_EQ(net.send(a, b, Bytes{}).code(), Code::kUnavailable);
}

TEST(RealTimeNetworkTest, HandlersForOneNodeAreSerialized) {
  RealTimeNetwork net;
  int counter = 0;  // deliberately unsynchronized; actor must serialize
  std::atomic<int> done{0};
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId, BytesView) {
    const int v = counter;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    counter = v + 1;
    done.fetch_add(1);
  });
  net.link(a, b, fast_link());
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(net.send(a, b, Bytes(4)).is_ok());
  net.drain();
  EXPECT_EQ(done.load(), kN);
  EXPECT_EQ(counter, kN);  // lost updates would show here
}

TEST(RealTimeNetworkTest, TimerFiresApproximatelyOnTime) {
  RealTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  std::atomic<Duration> elapsed{-1};
  const TimePoint start = net.now();
  net.schedule(a, 10 * kMillisecond, [&] { elapsed.store(net.now() - start); });
  net.drain(20 * kMillisecond);
  EXPECT_GE(elapsed.load(), 10 * kMillisecond);
  EXPECT_LT(elapsed.load(), 100 * kMillisecond);
}

TEST(RealTimeNetworkTest, CancelledTimerDoesNotFire) {
  RealTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  std::atomic<bool> fired{false};
  const TimerId id = net.schedule(a, 20 * kMillisecond, [&] {
    fired.store(true);
  });
  net.cancel(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  net.drain();
  EXPECT_FALSE(fired.load());
}

TEST(RealTimeNetworkTest, PostRunsSoon) {
  RealTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  std::atomic<bool> ran{false};
  net.post(a, [&] { ran.store(true); });
  net.drain();
  EXPECT_TRUE(ran.load());
}

TEST(RealTimeNetworkTest, ConcurrentSendsFromManyNodes) {
  RealTimeNetwork net;
  std::atomic<int> received{0};
  const NodeId hub = net.add_node("hub", [&](NodeId, BytesView) {
    received.fetch_add(1);
  });
  constexpr int kSpokes = 8;
  std::vector<NodeId> spokes;
  for (int i = 0; i < kSpokes; ++i) {
    spokes.push_back(
        net.add_node("spoke" + std::to_string(i), [](NodeId, BytesView) {}));
    net.link(spokes.back(), hub, fast_link());
  }
  for (int round = 0; round < 10; ++round) {
    for (const NodeId s : spokes) {
      ASSERT_TRUE(net.send(s, hub, Bytes(8)).is_ok());
    }
  }
  net.drain();
  EXPECT_EQ(received.load(), kSpokes * 10);
}

TEST(RealTimeNetworkTest, CleanShutdownWithPendingTimers) {
  // Destructor must not hang or crash with queued work.
  auto net = std::make_unique<RealTimeNetwork>();
  const NodeId a = net->add_node("a", [](NodeId, BytesView) {});
  for (int i = 0; i < 10; ++i) {
    net->schedule(a, (i + 1) * kSecond, [] {});
  }
  net.reset();  // must return promptly
  SUCCEED();
}

TEST(RealTimeNetworkTest, UnlinkedInFlightDropped) {
  RealTimeNetwork net;
  std::atomic<int> got{0};
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId, BytesView) { got.fetch_add(1); });
  LinkParams p = LinkParams::ideal_profile();
  p.base_latency = 50 * kMillisecond;
  net.link(a, b, p);
  ASSERT_TRUE(net.send(a, b, Bytes(4)).is_ok());
  net.unlink(a, b);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  net.drain();
  EXPECT_EQ(got.load(), 0);
}

}  // namespace
}  // namespace et::transport
