#include "src/transport/virtual_network.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/bytes.h"

namespace et::transport {
namespace {

LinkParams fixed_latency(Duration latency) {
  LinkParams p = LinkParams::ideal_profile();
  p.base_latency = latency;
  return p;
}

TEST(VirtualNetworkTest, DeliversAlongLink) {
  VirtualTimeNetwork net;
  std::vector<std::string> received;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId from, BytesView payload) {
    received.push_back(net.node_name(from) + ":" + to_string(payload));
  });
  net.link(a, b, fixed_latency(1000));
  ASSERT_TRUE(net.send(a, b, to_bytes("ping")).is_ok());
  net.run_until_idle();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "a:ping");
  EXPECT_EQ(net.now(), 1000);
}

TEST(VirtualNetworkTest, SendWithoutLinkFails) {
  VirtualTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [](NodeId, BytesView) {});
  const Status s = net.send(a, b, to_bytes("x"));
  EXPECT_EQ(s.code(), Code::kUnavailable);
}

TEST(VirtualNetworkTest, UnlinkStopsTraffic) {
  VirtualTimeNetwork net;
  int delivered = 0;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId, BytesView) { ++delivered; });
  net.link(a, b, fixed_latency(10));
  ASSERT_TRUE(net.send(a, b, to_bytes("1")).is_ok());
  net.run_until_idle();
  net.unlink(a, b);
  EXPECT_FALSE(net.send(a, b, to_bytes("2")).is_ok());
  EXPECT_EQ(delivered, 1);
}

TEST(VirtualNetworkTest, InFlightPacketsDroppedOnUnlink) {
  VirtualTimeNetwork net;
  int delivered = 0;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId, BytesView) { ++delivered; });
  net.link(a, b, fixed_latency(1000));
  ASSERT_TRUE(net.send(a, b, to_bytes("x")).is_ok());
  net.unlink(a, b);  // before delivery time
  net.run_until_idle();
  EXPECT_EQ(delivered, 0);
}

TEST(VirtualNetworkTest, LatencyAccumulatesAcrossHops) {
  VirtualTimeNetwork net;
  // a -> b -> c relay chain with 1 ms per hop.
  TimePoint arrival = -1;
  const NodeId c = net.add_node("c", [&](NodeId, BytesView) {
    arrival = net.now();
  });
  NodeId b_id = kInvalidNode;
  const NodeId b = net.add_node("b", [&](NodeId, BytesView payload) {
    net.send(b_id, c, Bytes(payload.begin(), payload.end()));
  });
  b_id = b;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  net.link(a, b, fixed_latency(1000));
  net.link(b, c, fixed_latency(1000));
  ASSERT_TRUE(net.send(a, b, to_bytes("relay")).is_ok());
  net.run_until_idle();
  EXPECT_EQ(arrival, 2000);
}

TEST(VirtualNetworkTest, FifoOrderOnOrderedLink) {
  VirtualTimeNetwork net;
  std::vector<int> order;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [&](NodeId, BytesView p) {
    order.push_back(p[0]);
  });
  LinkParams params = fixed_latency(1000);
  params.jitter_stddev = 900;  // would reorder if unordered
  net.link(a, b, params);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.send(a, b, Bytes{static_cast<std::uint8_t>(i)}).is_ok());
  }
  net.run_until_idle();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(VirtualNetworkTest, TimersFireInOrder) {
  VirtualTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  std::vector<int> fired;
  net.schedule(a, 300, [&] { fired.push_back(3); });
  net.schedule(a, 100, [&] { fired.push_back(1); });
  net.schedule(a, 200, [&] { fired.push_back(2); });
  net.run_until_idle();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(net.now(), 300);
}

TEST(VirtualNetworkTest, CancelledTimerDoesNotFire) {
  VirtualTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  bool fired = false;
  const TimerId id = net.schedule(a, 100, [&] { fired = true; });
  net.cancel(id);
  net.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(VirtualNetworkTest, PostRunsAtCurrentTime) {
  VirtualTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  net.run_for(500);
  TimePoint when = -1;
  net.post(a, [&] { when = net.now(); });
  net.run_until_idle();
  EXPECT_EQ(when, 500);
}

TEST(VirtualNetworkTest, RunForStopsAtDeadline) {
  VirtualTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  bool early = false, late = false;
  net.schedule(a, 100, [&] { early = true; });
  net.schedule(a, 10000, [&] { late = true; });
  net.run_for(1000);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(net.now(), 1000);
  net.run_until_idle();
  EXPECT_TRUE(late);
}

TEST(VirtualNetworkTest, RepeatingTimerChain) {
  VirtualTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) net.schedule(a, 100, tick);
  };
  net.schedule(a, 100, tick);
  net.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(net.now(), 500);
}

TEST(VirtualNetworkTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    VirtualTimeNetwork net(seed);
    std::vector<TimePoint> deliveries;
    const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
    const NodeId b = net.add_node("b", [&](NodeId, BytesView) {
      deliveries.push_back(net.now());
    });
    LinkParams p = LinkParams::udp_profile();
    net.link(a, b, p);
    for (int i = 0; i < 100; ++i) (void)net.send(a, b, Bytes(32));
    net.run_until_idle();
    return deliveries;
  };
  EXPECT_EQ(run(12345), run(12345));
  EXPECT_NE(run(12345), run(54321));
}

TEST(VirtualNetworkTest, CountersTrackTraffic) {
  VirtualTimeNetwork net(1);
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  const NodeId b = net.add_node("b", [](NodeId, BytesView) {});
  LinkParams p = LinkParams::udp_profile();
  p.loss_probability = 0.5;
  net.link(a, b, p);
  for (int i = 0; i < 200; ++i) (void)net.send(a, b, Bytes(10));
  net.run_until_idle();
  EXPECT_EQ(net.packets_sent(), 200u);
  EXPECT_EQ(net.bytes_sent(), 2000u);
  EXPECT_EQ(net.packets_delivered() + net.packets_lost(), 200u);
  EXPECT_GT(net.packets_lost(), 50u);
  EXPECT_GT(net.packets_delivered(), 50u);
}

TEST(VirtualNetworkTest, BadNodeIdsThrow) {
  VirtualTimeNetwork net;
  const NodeId a = net.add_node("a", [](NodeId, BytesView) {});
  EXPECT_THROW(net.link(a, 99, LinkParams{}), std::invalid_argument);
  EXPECT_THROW(net.link(a, a, LinkParams{}), std::invalid_argument);
  EXPECT_THROW(net.post(99, [] {}), std::invalid_argument);
  EXPECT_THROW(net.schedule(99, 1, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace et::transport
