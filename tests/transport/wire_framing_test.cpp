// Codec-edge tests for the socket transport's length-prefixed framing.
//
// These drive FrameAssembler directly (no sockets) so the ASan CI stage
// can prove the safety contract: a truncated, split, overlong, or
// corrupted stream never crashes or over-reads — malformed input either
// waits for more bytes or throws SerializeError.

#include "src/transport/wire_framing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/pubsub/message.h"
#include "src/transport/fault_injector.h"
#include "src/transport/socket_network.h"

namespace et::transport {
namespace {

Bytes payload_of(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// One frame's wire form: header + body.
Bytes framed(const Bytes& body) {
  const auto hdr = frame_header(static_cast<std::uint32_t>(body.size()));
  Bytes out(hdr.begin(), hdr.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<Bytes> collect(FrameAssembler& a, BytesView chunk) {
  std::vector<Bytes> out;
  a.feed(chunk, [&](BytesView f) { out.emplace_back(f.begin(), f.end()); });
  return out;
}

TEST(FrameAssembler, TruncatedLengthPrefixWaits) {
  const Bytes wire = framed(payload_of("hello"));
  // Feed every strict prefix of the header: nothing may be emitted, and
  // the partial bytes must be accounted for in pending().
  for (std::size_t n = 0; n < 4; ++n) {
    FrameAssembler a;
    const auto got = collect(a, BytesView(wire).subspan(0, n));
    EXPECT_TRUE(got.empty()) << "emitted a frame from a " << n
                             << "-byte header";
    EXPECT_EQ(a.pending(), n);
    // Completing the stream later releases exactly the one frame.
    const auto rest = collect(a, BytesView(wire).subspan(n));
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], payload_of("hello"));
    EXPECT_EQ(a.pending(), 0u);
  }
}

TEST(FrameAssembler, TruncatedBodyWaits) {
  const Bytes wire = framed(payload_of("partial-body"));
  for (std::size_t n = 4; n < wire.size(); ++n) {
    FrameAssembler a;
    EXPECT_TRUE(collect(a, BytesView(wire).subspan(0, n)).empty());
    const auto rest = collect(a, BytesView(wire).subspan(n));
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], payload_of("partial-body"));
  }
}

TEST(FrameAssembler, SplitAcrossEveryBoundary) {
  // Three frames of different sizes, including an empty one, concatenated
  // and then split at every possible boundary — each split must yield the
  // same three frames in order.
  const std::vector<Bytes> bodies = {payload_of("a"), Bytes{},
                                     payload_of("third-frame-payload")};
  Bytes stream;
  for (const auto& b : bodies) {
    const Bytes w = framed(b);
    stream.insert(stream.end(), w.begin(), w.end());
  }
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameAssembler a;
    std::vector<Bytes> got = collect(a, BytesView(stream).subspan(0, cut));
    const auto more = collect(a, BytesView(stream).subspan(cut));
    got.insert(got.end(), more.begin(), more.end());
    ASSERT_EQ(got.size(), bodies.size()) << "split at " << cut;
    EXPECT_EQ(got, bodies) << "split at " << cut;
    EXPECT_EQ(a.pending(), 0u);
  }
}

TEST(FrameAssembler, ByteAtATime) {
  const Bytes wire = framed(payload_of("drip-fed"));
  FrameAssembler a;
  std::vector<Bytes> got;
  for (const std::uint8_t b : wire) {
    a.feed(BytesView(&b, 1),
           [&](BytesView f) { got.emplace_back(f.begin(), f.end()); });
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload_of("drip-fed"));
}

TEST(FrameAssembler, OverlongDeclaredLengthRejected) {
  for (const std::uint32_t len :
       {kMaxWireFrame + 1, 0xFFFFFFFFu, 0x80000000u}) {
    FrameAssembler a;
    const auto hdr = frame_header(len);
    EXPECT_THROW(
        a.feed(BytesView(hdr.data(), hdr.size()), [](BytesView) {
          FAIL() << "emitted a frame from an overlong header";
        }),
        SerializeError)
        << "len=" << len;
    // reset() restores the assembler for connection reuse.
    a.reset();
    const auto ok = collect(a, BytesView(framed(payload_of("after"))));
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(ok[0], payload_of("after"));
  }
}

TEST(FrameAssembler, OverlongHeaderSplitAcrossFeedsStillRejected) {
  // The poisoned header arrives one byte at a time; the throw must land
  // on the feed that completes it, not crash earlier or later.
  const auto hdr = frame_header(kMaxWireFrame + 7);
  FrameAssembler a;
  for (std::size_t i = 0; i + 1 < hdr.size(); ++i) {
    a.feed(BytesView(&hdr[i], 1), [](BytesView) { FAIL(); });
  }
  EXPECT_THROW(a.feed(BytesView(&hdr[3], 1), [](BytesView) { FAIL(); }),
               SerializeError);
}

TEST(FrameAssembler, MaxLengthBoundaryAccepted) {
  // A frame exactly at the cap decodes; use a small custom cap so the
  // test does not allocate 64 MiB.
  FrameAssembler a(/*max_frame=*/16);
  const Bytes body(16, std::uint8_t{0xAB});
  const auto got = collect(a, BytesView(framed(body)));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], body);
  FrameAssembler b(/*max_frame=*/16);
  const Bytes over(17, std::uint8_t{0xAB});
  EXPECT_THROW(collect(b, BytesView(framed(over))), SerializeError);
}

TEST(FrameAssembler, FuzzRandomChunkingRoundTrips) {
  // Deterministic fuzz: random frame sizes re-chunked at random read
  // boundaries must reassemble byte-identically.
  Rng rng(1234);
  std::vector<Bytes> bodies;
  Bytes stream;
  for (int i = 0; i < 64; ++i) {
    Bytes body = rng.next_bytes(rng.next_below(301));
    const Bytes w = framed(body);
    stream.insert(stream.end(), w.begin(), w.end());
    bodies.push_back(std::move(body));
  }
  FrameAssembler a;
  std::vector<Bytes> got;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t n = std::min<std::size_t>(
        1 + static_cast<std::size_t>(rng.next_below(96)), stream.size() - off);
    a.feed(BytesView(stream).subspan(off, n),
           [&](BytesView f) { got.emplace_back(f.begin(), f.end()); });
    off += n;
  }
  EXPECT_EQ(got, bodies);
  EXPECT_EQ(a.pending(), 0u);
}

TEST(FrameCodec, CorruptedPubSubFramesNeverOverread) {
  // Byte-level corruption of a valid frame (the same mutation the
  // FaultInjector applies on the socket path) must yield either a parse
  // failure (SerializeError) or a decodable — possibly wrong — frame.
  // Under ASan this doubles as an over-read probe on FrameView::parse.
  pubsub::Frame f = pubsub::make_publish(
      "sensors/rack-7/temp", payload_of("23.5C"), "publisher-1");
  f.message->auth_token = payload_of("tok");
  f.message->signature = payload_of("sig");
  const Bytes wire = f.serialize();
  Rng rng(99);
  int rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = wire;
    const std::uint64_t flips = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    try {
      const pubsub::FrameView view = pubsub::FrameView::parse(mutated);
      // A surviving parse must still bound every field inside the buffer.
      if (view.message) {
        EXPECT_LE(view.message->payload.size(), mutated.size());
      }
    } catch (const SerializeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);  // flipping bytes does break frames
}

TEST(FrameCodec, CorruptedSocketFramesRejectedEndToEnd) {
  // Full socket path: every payload corrupted in flight by the
  // FaultInjector. The receiving handler parses like a broker would;
  // corrupted frames must surface as SerializeError (or decode to a
  // mutated frame), never kill the process or the connection.
  SocketNetwork net(/*seed=*/7);
  std::atomic<int> received{0};
  std::atomic<int> rejected{0};
  const NodeId rx = net.add_node("rx", [&](NodeId, BytesView p) {
    ++received;
    try {
      (void)pubsub::FrameView::parse(p);
    } catch (const SerializeError&) {
      ++rejected;
    }
  });
  const NodeId tx = net.add_node("tx", [](NodeId, BytesView) {});
  LinkParams fast;
  fast.base_latency = 100 * kMicrosecond;
  fast.jitter_stddev = 0;
  net.link(tx, rx, fast);
  net.faults().corrupt_probability(tx, rx, 1.0);

  const int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) {
    const pubsub::Frame f = pubsub::make_publish(
        "t/" + std::to_string(i), payload_of("payload-" + std::to_string(i)),
        "pub");
    ASSERT_TRUE(net.send(tx, rx, f.serialize()).is_ok());
  }
  net.drain(200 * kMillisecond);
  EXPECT_EQ(received.load(), kFrames);  // corruption preserves size/count
  EXPECT_GT(rejected.load(), 0);        // and most flips break the parse
  net.stop();
}

}  // namespace
}  // namespace et::transport
