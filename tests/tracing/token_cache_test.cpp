// Per-hop token-verification cache (token_verify_cache.h + the cached
// trace filter): the RSA chain must run once per (token bytes, validity
// window) while every security property of the uncached filter is
// preserved — expiry, forged signatures, wrong topics and eviction must
// all still reject exactly as before.
#include <gtest/gtest.h>

#include "src/crypto/fingerprint.h"
#include "src/pubsub/message.h"
#include "src/tracing/token_verify_cache.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/trace_message.h"
#include "src/transport/virtual_network.h"
#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

constexpr std::size_t kBits = 512;

struct CachedFilterFixture : ::testing::Test {
  CachedFilterFixture() : rng(77), ca("ca", rng, kBits), net(9) {
    owner = crypto::Identity::create("owner-1", ca, rng, 0, 3600 * kSecond,
                                     kBits);
    tdn_keys = crypto::rsa_generate(rng, kBits);
    delegate = crypto::rsa_generate(rng, kBits);
    ad = make_advertisement(Uuid::generate(rng));
    anchors.ca_key = ca.public_key();
    anchors.tdn_key = tdn_keys.public_key;
    cache = std::make_shared<TokenVerifyCache>(/*capacity=*/8,
                                               /*ttl=*/60 * kSecond);
    filter = make_trace_filter(anchors, net, cache);
  }

  discovery::TopicAdvertisement make_advertisement(const Uuid& topic) {
    discovery::TopicAdvertisement unsigned_ad(
        topic, "Availability/Traces/owner-1", owner.credential, {}, 0,
        3600 * kSecond, "tdn-0", {});
    return discovery::TopicAdvertisement(
        topic, "Availability/Traces/owner-1", owner.credential, {}, 0,
        3600 * kSecond, "tdn-0",
        tdn_keys.private_key.sign(unsigned_ad.tbs()));
  }

  AuthorizationToken make_token(TimePoint from = 0,
                                TimePoint until = 600 * kSecond) {
    return AuthorizationToken::create(ad, delegate.public_key,
                                      TokenRights::kPublish, from, until,
                                      owner.keys.private_key);
  }

  pubsub::Message trace_message(const AuthorizationToken& t,
                                const discovery::TopicAdvertisement& for_ad) {
    TracePayload p;
    p.type = TraceType::kAllsWell;
    p.entity_id = "owner-1";
    pubsub::Message m;
    m.topic = pubsub::trace_topics::trace_publication(
        for_ad.topic().to_string(), "AllUpdates");
    m.payload = p.serialize();
    m.publisher = "broker-x";
    m.sequence = 1;
    m.timestamp = net.now();
    m.auth_token = t.serialize();
    m.signature = delegate.private_key.sign(m.signable_bytes());
    return m;
  }

  pubsub::Message trace_message(const AuthorizationToken& t) {
    return trace_message(t, ad);
  }

  /// Drives a filter the way a broker would and folds the verdict back to
  /// a Status (the inline filter never defers). The filter sees a view of
  /// `m`, exactly as it would see a decoded wire frame.
  Status run(const pubsub::MessageFilter& f, pubsub::Message m) {
    const pubsub::FilterVerdict v = f(broker, m.as_view(), 0);
    return v.accepted() ? Status::ok() : v.status;
  }
  Status run(pubsub::Message m) { return run(filter, std::move(m)); }

  Rng rng;
  crypto::CertificateAuthority ca;
  transport::VirtualTimeNetwork net;
  crypto::Identity owner;
  crypto::RsaKeyPair tdn_keys;
  crypto::RsaKeyPair delegate;
  discovery::TopicAdvertisement ad;
  TrustAnchors anchors;
  std::shared_ptr<TokenVerifyCache> cache;
  pubsub::MessageFilter filter;
  pubsub::Broker broker{net, {.name = "fixture-broker"}};
};

TEST_F(CachedFilterFixture, SteadyStateHitsAfterOneMiss) {
  const AuthorizationToken t = make_token();
  const pubsub::Message m = trace_message(t);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(run(m).is_ok()) << "round " << i;
  }
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 99u);
  EXPECT_EQ(cache->stats().insertions, 1u);
  EXPECT_GT(cache->stats().hit_rate(), 0.9);
}

TEST_F(CachedFilterFixture, CachedOkIsReRejectedAfterExpiry) {
  const AuthorizationToken t = make_token(0, 2 * kSecond);
  const pubsub::Message m = trace_message(t);
  EXPECT_TRUE(run(m).is_ok());  // miss: full chain
  EXPECT_TRUE(run(m).is_ok());  // hit
  ASSERT_EQ(cache->stats().hits, 1u);

  // Advance the virtual clock past the validity window (plus skew): the
  // cached OK must die with the token.
  net.run_for(3 * kSecond);
  EXPECT_EQ(run(m).code(), Code::kExpired);
  EXPECT_GE(cache->stats().expired, 1u);
  // The lapsed window is monotonic, so the rejection is now cacheable:
  // byte-identical resends are turned away without any RSA work.
  EXPECT_EQ(run(m).code(), Code::kExpired);
  EXPECT_GE(cache->stats().negative_hits, 1u);
}

TEST_F(CachedFilterFixture, BadSignatureNeverServedOkOnResend) {
  Rng mallory_rng(5);
  const crypto::Identity mallory = crypto::Identity::create(
      "mallory", ca, mallory_rng, 0, 3600 * kSecond, kBits);
  // Mallory signs a token over the owner's advertisement: the chain fails
  // at the owner-signature step, deterministically for these bytes.
  const AuthorizationToken forged = AuthorizationToken::create(
      ad, delegate.public_key, TokenRights::kPublish, 0, 600 * kSecond,
      mallory.keys.private_key);
  const pubsub::Message m = trace_message(forged);
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
  // Byte-identical resend: served the cached rejection, never OK.
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
  EXPECT_EQ(cache->stats().hits, 0u);
  EXPECT_GE(cache->stats().negative_hits, 1u);
}

TEST_F(CachedFilterFixture, TamperedTokenCannotAliasCachedVerdict) {
  const AuthorizationToken good = make_token();
  const pubsub::Message m = trace_message(good);
  ASSERT_TRUE(run(m).is_ok());

  // Flip one bit of the attached token: the fingerprint changes, so the
  // tampered bytes cannot ride the good token's cached OK.
  pubsub::Message tampered = m;
  tampered.auth_token.back() ^= 0x01;
  EXPECT_FALSE(run(tampered).is_ok());
  // And the good token still verifies from the cache.
  EXPECT_TRUE(run(m).is_ok());
  EXPECT_GE(cache->stats().hits, 1u);
}

TEST_F(CachedFilterFixture, MalformedTokensAreNotCached) {
  const AuthorizationToken t = make_token();
  pubsub::Message m = trace_message(t);
  m.auth_token = to_bytes("garbage-not-a-token");
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
  EXPECT_EQ(cache->stats().insertions, 0u);
  EXPECT_EQ(cache->size(), 0u);
}

TEST_F(CachedFilterFixture, NotYetValidIsNotNegativelyCached) {
  const AuthorizationToken t =
      make_token(5 * kSecond, 600 * kSecond);
  const pubsub::Message m = trace_message(t);
  EXPECT_EQ(run(m).code(), Code::kExpired);  // "not yet valid"
  EXPECT_EQ(cache->stats().insertions, 0u);
  // Once the window opens the same bytes must verify.
  net.run_for(6 * kSecond);
  EXPECT_TRUE(run(m).is_ok());
}

TEST_F(CachedFilterFixture, CachedTokenStillRejectsWrongTopic) {
  const AuthorizationToken t = make_token();
  ASSERT_TRUE(run(trace_message(t)).is_ok());  // cached OK

  // Same (cached) token attached to a publication on a different trace
  // topic: the per-message topic check must still reject.
  const discovery::TopicAdvertisement other_ad =
      make_advertisement(Uuid::generate(rng));
  pubsub::Message wrong = trace_message(t, other_ad);
  EXPECT_EQ(run(wrong).code(), Code::kPermissionDenied);
}

TEST_F(CachedFilterFixture, CachedTokenStillChecksDelegateSignature) {
  const AuthorizationToken t = make_token();
  ASSERT_TRUE(run(trace_message(t)).is_ok());  // cached OK

  pubsub::Message m = trace_message(t);
  m.payload.push_back(0xFF);  // bit-flip after signing
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
}

TEST_F(CachedFilterFixture, EvictionAtCapacityKeepsFilterCorrect) {
  auto small = std::make_shared<TokenVerifyCache>(/*capacity=*/2,
                                                  /*ttl=*/60 * kSecond);
  auto f = make_trace_filter(anchors, net, small);

  // Three distinct tokens (distinct advertisements -> distinct bytes).
  std::vector<discovery::TopicAdvertisement> ads;
  std::vector<AuthorizationToken> tokens;
  for (int i = 0; i < 3; ++i) {
    ads.push_back(make_advertisement(Uuid::generate(rng)));
    tokens.push_back(AuthorizationToken::create(
        ads.back(), delegate.public_key, TokenRights::kPublish, 0,
        600 * kSecond, owner.keys.private_key));
  }
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(run(f, trace_message(tokens[i], ads[i])).is_ok())
          << "round " << round << " token " << i;
    }
  }
  EXPECT_GE(small->stats().evictions, 1u);
  EXPECT_LE(small->size(), 2u);
}

TEST_F(CachedFilterFixture, ZeroCapacityDisablesStorageNotCorrectness) {
  auto disabled = std::make_shared<TokenVerifyCache>(/*capacity=*/0,
                                                     /*ttl=*/60 * kSecond);
  auto f = make_trace_filter(anchors, net, disabled);
  const AuthorizationToken t = make_token();
  const pubsub::Message m = trace_message(t);
  EXPECT_TRUE(run(f, m).is_ok());
  EXPECT_TRUE(run(f, m).is_ok());
  EXPECT_EQ(disabled->stats().hits, 0u);
  EXPECT_EQ(disabled->size(), 0u);
  pubsub::Message bad = m;
  bad.payload.push_back(0x01);
  EXPECT_FALSE(run(f, bad).is_ok());
}

TEST_F(CachedFilterFixture, TtlForcesFullReverification) {
  auto short_ttl = std::make_shared<TokenVerifyCache>(/*capacity=*/8,
                                                      /*ttl=*/1 * kSecond);
  auto f = make_trace_filter(anchors, net, short_ttl);
  const AuthorizationToken t = make_token();
  const pubsub::Message m = trace_message(t);
  EXPECT_TRUE(run(f, m).is_ok());  // miss
  EXPECT_TRUE(run(f, m).is_ok());  // hit
  net.run_for(2 * kSecond);      // past the TTL, token still valid
  EXPECT_TRUE(run(f, m).is_ok());  // full chain re-ran
  EXPECT_GE(short_ttl->stats().expired, 1u);
  EXPECT_EQ(short_ttl->stats().misses, 1u);
  EXPECT_EQ(short_ttl->stats().insertions, 2u);
}

// --- LRU mechanics directly on the cache -----------------------------------

TEST_F(CachedFilterFixture, LruPrefersRecentlyUsedEntries) {
  TokenVerifyCache lru(/*capacity=*/2, /*ttl=*/60 * kSecond);
  const AuthorizationToken a = make_token();
  const auto fp_a = crypto::fingerprint(a.serialize());
  const auto fp_b = crypto::fingerprint(to_bytes("token-b"));
  const auto fp_c = crypto::fingerprint(to_bytes("token-c"));
  lru.store_ok(fp_a, a, 0);
  lru.store_rejected(fp_b, unauthenticated("bad"), 0);
  // Touch A so B is the least recently used, then insert C.
  EXPECT_EQ(lru.lookup(fp_a, 0).kind, TokenVerifyCache::Lookup::Kind::kOk);
  lru.store_rejected(fp_c, unauthenticated("bad"), 0);
  EXPECT_EQ(lru.stats().evictions, 1u);
  EXPECT_EQ(lru.lookup(fp_a, 0).kind, TokenVerifyCache::Lookup::Kind::kOk);
  EXPECT_EQ(lru.lookup(fp_b, 0).kind, TokenVerifyCache::Lookup::Kind::kMiss);
  EXPECT_EQ(lru.lookup(fp_c, 0).kind,
            TokenVerifyCache::Lookup::Kind::kRejected);
}

// --- end-to-end: routed traces hit downstream broker caches ----------------

TEST(TokenCacheE2eTest, DownstreamBrokerCacheReachesSteadyState) {
  testing::TracingHarness h(/*broker_count=*/2);
  auto entity = h.make_entity("cached-svc", 0);
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("watcher", 1);
  int received = 0;
  ASSERT_TRUE(h.track(*tracker, "cached-svc", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++received;
                      })
                  .is_ok());
  h.net.run_for(2 * kSecond);
  EXPECT_GT(received, 5);

  // Broker 1 receives every trace from its neighbour and must verify the
  // (byte-identical) token each time: one full chain, the rest cache hits.
  ASSERT_NE(h.token_caches.at(1), nullptr);
  const TokenCacheStats s = h.token_caches[1]->stats();
  EXPECT_GE(s.hits, 5u);
  EXPECT_LE(s.misses, 2u);  // first trace (+ a renewal at most)
  EXPECT_GT(s.hit_rate(), 0.8);
}

}  // namespace
}  // namespace et::tracing
