// Unit tests of trace vocabulary, payload serialization, authorization
// tokens and the broker-side trace filter.
#include <gtest/gtest.h>

#include "src/pubsub/message.h"
#include "src/tracing/authorization_token.h"
#include "src/tracing/registration.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/trace_message.h"
#include "src/transport/virtual_network.h"

namespace et::tracing {
namespace {

constexpr std::size_t kBits = 512;

struct TokenFixture : ::testing::Test {
  TokenFixture() : rng(21), ca("ca", rng, kBits) {
    owner = crypto::Identity::create("owner-1", ca, rng, 0, 3600 * kSecond,
                                     kBits);
    tdn_keys = crypto::rsa_generate(rng, kBits);
    delegate = crypto::rsa_generate(rng, kBits);

    // A TDN-signed advertisement for the owner.
    Uuid topic = Uuid::generate(rng);
    discovery::TopicAdvertisement unsigned_ad(
        topic, "Availability/Traces/owner-1", owner.credential, {}, 0,
        3600 * kSecond, "tdn-0", {});
    ad = discovery::TopicAdvertisement(
        topic, "Availability/Traces/owner-1", owner.credential, {}, 0,
        3600 * kSecond, "tdn-0",
        tdn_keys.private_key.sign(unsigned_ad.tbs()));
  }

  AuthorizationToken make_token(TimePoint from = 0,
                                TimePoint until = 600 * kSecond) {
    return AuthorizationToken::create(ad, delegate.public_key,
                                      TokenRights::kPublish, from, until,
                                      owner.keys.private_key);
  }

  Rng rng;
  crypto::CertificateAuthority ca;
  crypto::Identity owner;
  crypto::RsaKeyPair tdn_keys;
  crypto::RsaKeyPair delegate;
  discovery::TopicAdvertisement ad;
};

TEST_F(TokenFixture, ValidTokenVerifies) {
  const AuthorizationToken t = make_token();
  EXPECT_TRUE(t.verify(tdn_keys.public_key, ca.public_key(), kSecond).is_ok());
  EXPECT_EQ(t.trace_topic(), ad.topic());
  EXPECT_EQ(t.rights(), TokenRights::kPublish);
}

TEST_F(TokenFixture, SerializationRoundTrip) {
  const AuthorizationToken t = make_token();
  const AuthorizationToken parsed =
      AuthorizationToken::deserialize(t.serialize());
  EXPECT_EQ(parsed.trace_topic(), t.trace_topic());
  EXPECT_EQ(parsed.delegate_key(), t.delegate_key());
  EXPECT_EQ(parsed.valid_until(), t.valid_until());
  EXPECT_TRUE(
      parsed.verify(tdn_keys.public_key, ca.public_key(), kSecond).is_ok());
}

TEST_F(TokenFixture, WrongTdnKeyFails) {
  Rng other_rng(5);
  const crypto::RsaKeyPair other = crypto::rsa_generate(other_rng, kBits);
  const AuthorizationToken t = make_token();
  EXPECT_FALSE(t.verify(other.public_key, ca.public_key(), kSecond).is_ok());
}

TEST_F(TokenFixture, WrongCaFails) {
  Rng other_rng(6);
  crypto::CertificateAuthority other("other-ca", other_rng, kBits);
  const AuthorizationToken t = make_token();
  EXPECT_FALSE(
      t.verify(tdn_keys.public_key, other.public_key(), kSecond).is_ok());
}

TEST_F(TokenFixture, NotSignedByOwnerFails) {
  Rng mallory_rng(7);
  const crypto::Identity mallory = crypto::Identity::create(
      "mallory", ca, mallory_rng, 0, 3600 * kSecond, kBits);
  // Mallory signs a token for the owner's advertisement.
  const AuthorizationToken t = AuthorizationToken::create(
      ad, delegate.public_key, TokenRights::kPublish, 0, 600 * kSecond,
      mallory.keys.private_key);
  const Status s = t.verify(tdn_keys.public_key, ca.public_key(), kSecond);
  EXPECT_EQ(s.code(), Code::kUnauthenticated);
}

TEST_F(TokenFixture, ExpiryWithSkewAllowance) {
  const AuthorizationToken t = make_token(0, 10 * kSecond);
  // Just past expiry but within the 100 ms skew allowance: accepted.
  EXPECT_TRUE(t.verify(tdn_keys.public_key, ca.public_key(),
                       10 * kSecond + 50 * kMillisecond)
                  .is_ok());
  // Beyond the allowance: rejected.
  EXPECT_EQ(t.verify(tdn_keys.public_key, ca.public_key(),
                     10 * kSecond + 200 * kMillisecond)
                .code(),
            Code::kExpired);
}

TEST_F(TokenFixture, NotYetValidWithSkewAllowance) {
  const AuthorizationToken t = make_token(10 * kSecond, 20 * kSecond);
  EXPECT_TRUE(t.verify(tdn_keys.public_key, ca.public_key(),
                       10 * kSecond - 50 * kMillisecond)
                  .is_ok());
  EXPECT_EQ(t.verify(tdn_keys.public_key, ca.public_key(), 5 * kSecond)
                .code(),
            Code::kExpired);
}

TEST_F(TokenFixture, DelegateSignatureVerification) {
  const AuthorizationToken t = make_token();
  const Bytes msg = to_bytes("a trace message body");
  const Bytes sig = delegate.private_key.sign(msg);
  EXPECT_TRUE(t.verify_delegate_signature(msg, sig));
  EXPECT_FALSE(t.verify_delegate_signature(to_bytes("other"), sig));
  // Owner's signature is NOT the delegate's.
  EXPECT_FALSE(
      t.verify_delegate_signature(msg, owner.keys.private_key.sign(msg)));
}

TEST_F(TokenFixture, EmptyTokenRejected) {
  AuthorizationToken empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(
      empty.verify(tdn_keys.public_key, ca.public_key(), 0).is_ok());
}

// --- trace filter ---------------------------------------------------------

struct FilterFixture : TokenFixture {
  FilterFixture() {
    anchors.ca_key = ca.public_key();
    anchors.tdn_key = tdn_keys.public_key;
    filter = make_trace_filter(anchors, net);
  }

  pubsub::Message trace_message(const AuthorizationToken& t,
                                const crypto::RsaPrivateKey& signer) {
    TracePayload p;
    p.type = TraceType::kAllsWell;
    p.entity_id = "owner-1";
    pubsub::Message m;
    m.topic = pubsub::trace_topics::trace_publication(
        ad.topic().to_string(), "AllUpdates");
    m.payload = p.serialize();
    m.publisher = "broker-x";
    m.sequence = 1;
    m.timestamp = net.now();
    m.auth_token = t.serialize();
    m.signature = signer.sign(m.signable_bytes());
    return m;
  }

  /// Drives the filter the way a broker would and folds the verdict back
  /// to a Status (the inline filter never defers). The filter sees a view
  /// of `m`, exactly as it would see a decoded wire frame.
  Status run(pubsub::Message m) {
    const pubsub::FilterVerdict v = filter(broker, m.as_view(), 0);
    return v.accepted() ? Status::ok() : v.status;
  }

  transport::VirtualTimeNetwork net{9};
  TrustAnchors anchors;
  pubsub::MessageFilter filter;
  pubsub::Broker broker{net, {.name = "fixture-broker"}};
};

TEST_F(FilterFixture, AcceptsProperlyTokenedTrace) {
  const AuthorizationToken t = make_token();
  const pubsub::Message m = trace_message(t, delegate.private_key);
  EXPECT_TRUE(run(m).is_ok());
}

TEST_F(FilterFixture, IgnoresNonTraceTopics) {
  pubsub::Message m;
  m.topic = "plain/topic";
  EXPECT_TRUE(run(m).is_ok());
  m.topic = "Constrained/Traces/Broker/Subscribe-Only/Registration";
  EXPECT_TRUE(run(m).is_ok());  // Subscribe-Only: not a publication
}

TEST_F(FilterFixture, RejectsMissingToken) {
  const AuthorizationToken t = make_token();
  pubsub::Message m = trace_message(t, delegate.private_key);
  m.auth_token.clear();
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
}

TEST_F(FilterFixture, RejectsGarbageToken) {
  const AuthorizationToken t = make_token();
  pubsub::Message m = trace_message(t, delegate.private_key);
  m.auth_token = to_bytes("garbage");
  EXPECT_FALSE(run(m).is_ok());
}

TEST_F(FilterFixture, RejectsWrongTopicToken) {
  // Token minted for a different trace topic.
  Uuid other_topic = Uuid::generate(rng);
  discovery::TopicAdvertisement unsigned_ad(
      other_topic, "Availability/Traces/owner-1", owner.credential, {}, 0,
      3600 * kSecond, "tdn-0", {});
  discovery::TopicAdvertisement other_ad(
      other_topic, "Availability/Traces/owner-1", owner.credential, {}, 0,
      3600 * kSecond, "tdn-0", tdn_keys.private_key.sign(unsigned_ad.tbs()));
  const AuthorizationToken t = AuthorizationToken::create(
      other_ad, delegate.public_key, TokenRights::kPublish, 0,
      600 * kSecond, owner.keys.private_key);
  pubsub::Message m = trace_message(t, delegate.private_key);
  // m.topic still names the original ad's UUID.
  EXPECT_EQ(run(m).code(), Code::kPermissionDenied);
}

TEST_F(FilterFixture, RejectsWrongSigner) {
  const AuthorizationToken t = make_token();
  const pubsub::Message m = trace_message(t, owner.keys.private_key);
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
}

TEST_F(FilterFixture, RejectsSubscribeRightsToken) {
  const AuthorizationToken t = AuthorizationToken::create(
      ad, delegate.public_key, TokenRights::kSubscribe, 0, 600 * kSecond,
      owner.keys.private_key);
  const pubsub::Message m = trace_message(t, delegate.private_key);
  EXPECT_EQ(run(m).code(), Code::kPermissionDenied);
}

TEST_F(FilterFixture, RejectsTamperedPayload) {
  const AuthorizationToken t = make_token();
  pubsub::Message m = trace_message(t, delegate.private_key);
  m.payload.push_back(0xFF);  // bit-flip after signing
  EXPECT_EQ(run(m).code(), Code::kUnauthenticated);
}

// --- payload serialization -------------------------------------------------

TEST(TracePayloadTest, FullRoundTrip) {
  TracePayload p;
  p.type = TraceType::kNetworkMetrics;
  p.entity_id = "svc-1";
  p.issued_at = 123456;
  p.state = EntityState::kReady;
  p.load = LoadInfo{0.5, 0.25, 7};
  p.metrics = NetworkMetrics{0.01, 3.5, 0.0, 12.5};
  p.secured = true;
  p.detail = "details";
  const TracePayload q = TracePayload::deserialize(p.serialize());
  EXPECT_EQ(q.type, p.type);
  EXPECT_EQ(q.entity_id, p.entity_id);
  EXPECT_EQ(q.issued_at, p.issued_at);
  EXPECT_EQ(q.state, p.state);
  EXPECT_EQ(q.load, p.load);
  EXPECT_EQ(q.metrics, p.metrics);
  EXPECT_EQ(q.secured, p.secured);
  EXPECT_EQ(q.detail, p.detail);
}

TEST(TracePayloadTest, MinimalRoundTrip) {
  TracePayload p;
  p.type = TraceType::kAllsWell;
  const TracePayload q = TracePayload::deserialize(p.serialize());
  EXPECT_EQ(q.type, TraceType::kAllsWell);
  EXPECT_FALSE(q.state);
  EXPECT_FALSE(q.load);
  EXPECT_FALSE(q.metrics);
}

TEST(TracePayloadTest, RejectsUnknownType) {
  TracePayload p;
  p.type = TraceType::kAllsWell;
  Bytes b = p.serialize();
  b[0] = 200;
  EXPECT_THROW(TracePayload::deserialize(b), SerializeError);
}

TEST(SessionMessageTest, PingRoundTrip) {
  SessionMessage sm;
  sm.type = SessionMsgType::kPing;
  sm.ping_number = 42;
  sm.ping_timestamp = 987654;
  const SessionMessage q = SessionMessage::deserialize(sm.serialize());
  EXPECT_EQ(q.type, SessionMsgType::kPing);
  EXPECT_EQ(q.ping_number, 42u);
  EXPECT_EQ(q.ping_timestamp, 987654);
}

TEST(SessionMessageTest, TokenDeliveryRoundTrip) {
  SessionMessage sm;
  sm.type = SessionMsgType::kTokenDelivery;
  sm.token = to_bytes("token-bytes");
  sm.delegate_secret = to_bytes("key-bytes");
  const SessionMessage q = SessionMessage::deserialize(sm.serialize());
  EXPECT_EQ(q.token, to_bytes("token-bytes"));
  EXPECT_EQ(q.delegate_secret, to_bytes("key-bytes"));
}

// --- trace vocabulary -------------------------------------------------------

TEST(TraceTypesTest, NamesMatchPaperTable1) {
  EXPECT_EQ(trace_type_name(TraceType::kFailureSuspicion),
            "FAILURE_SUSPICION");
  EXPECT_EQ(trace_type_name(TraceType::kAllsWell), "ALLS_WELL");
  EXPECT_EQ(trace_type_name(TraceType::kRevertingToSilentMode),
            "REVERTING_TO_SILENT_MODE");
  EXPECT_EQ(trace_type_name(TraceType::kGaugeInterest), "GAUGE_INTEREST");
}

TEST(TraceTypesTest, CategoriesMatchPaperTable2) {
  EXPECT_EQ(category_of(TraceType::kJoin), kCatChangeNotifications);
  EXPECT_EQ(category_of(TraceType::kFailed), kCatChangeNotifications);
  EXPECT_EQ(category_of(TraceType::kFailureSuspicion),
            kCatChangeNotifications);
  EXPECT_EQ(category_of(TraceType::kDisconnect), kCatChangeNotifications);
  EXPECT_EQ(category_of(TraceType::kRevertingToSilentMode),
            kCatChangeNotifications);
  EXPECT_EQ(category_of(TraceType::kAllsWell), kCatAllUpdates);
  EXPECT_EQ(category_of(TraceType::kReady), kCatStateTransitions);
  EXPECT_EQ(category_of(TraceType::kLoadInformation), kCatLoad);
  EXPECT_EQ(category_of(TraceType::kNetworkMetrics), kCatNetworkMetrics);
  EXPECT_EQ(category_of(TraceType::kGaugeInterest), 0);
}

TEST(TraceTypesTest, CategorySuffixes) {
  EXPECT_EQ(category_suffix(kCatChangeNotifications), "ChangeNotifications");
  EXPECT_EQ(category_suffix(kCatAllUpdates), "AllUpdates");
  EXPECT_EQ(category_suffix(kCatStateTransitions), "StateTransitions");
  EXPECT_EQ(category_suffix(kCatLoad), "Load");
  EXPECT_EQ(category_suffix(kCatNetworkMetrics), "NetworkMetrics");
}

TEST(TraceTypesTest, StateMapping) {
  EXPECT_EQ(state_trace_type(EntityState::kReady), TraceType::kReady);
  EXPECT_EQ(state_trace_type(EntityState::kShutdown), TraceType::kShutdown);
  EXPECT_EQ(entity_state_name(EntityState::kRecovering), "RECOVERING");
}

TEST(TraceTypesTest, AllCategoryMaskCoversAll) {
  EXPECT_EQ(kCatAll, kCatChangeNotifications | kCatAllUpdates |
                         kCatStateTransitions | kCatLoad |
                         kCatNetworkMetrics);
}

// --- sealed envelope --------------------------------------------------------

TEST(SealedEnvelopeTest, RoundTrip) {
  Rng rng(31);
  const crypto::RsaKeyPair recipient = crypto::rsa_generate(rng, kBits);
  const Bytes secret = to_bytes("the secret trace key material");
  const SealedEnvelope env = SealedEnvelope::seal(
      secret, recipient.public_key, rng, crypto::SymmetricAlg::kAes192Cbc);
  EXPECT_EQ(env.open(recipient.private_key), secret);
}

TEST(SealedEnvelopeTest, WrongRecipientCannotOpen) {
  Rng rng(32);
  const crypto::RsaKeyPair alice = crypto::rsa_generate(rng, kBits);
  const crypto::RsaKeyPair bob = crypto::rsa_generate(rng, kBits);
  const SealedEnvelope env =
      SealedEnvelope::seal(to_bytes("secret"), alice.public_key, rng,
                           crypto::SymmetricAlg::kAes192Cbc);
  EXPECT_THROW((void)env.open(bob.private_key), std::invalid_argument);
}

TEST(SealedEnvelopeTest, SerializationRoundTrip) {
  Rng rng(33);
  const crypto::RsaKeyPair recipient = crypto::rsa_generate(rng, kBits);
  const SealedEnvelope env =
      SealedEnvelope::seal(to_bytes("payload"), recipient.public_key, rng,
                           crypto::SymmetricAlg::kAes256Cbc);
  const SealedEnvelope parsed = SealedEnvelope::deserialize(env.serialize());
  EXPECT_EQ(parsed.open(recipient.private_key), to_bytes("payload"));
}

}  // namespace
}  // namespace et::tracing
