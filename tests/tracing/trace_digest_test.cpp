// Property tests for the coalesced availability digest (DESIGN.md §14):
// the coalesce -> serialize -> sign -> verify -> deserialize -> expand
// pipeline must be an identity on the observation stream.
#include "src/tracing/trace_digest.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/crypto/rsa.h"
#include "src/pubsub/message.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {
namespace {

TraceDigest random_digest(Rng& rng, std::size_t entries) {
  TraceDigest d;
  d.host_id = "host-" + std::to_string(rng.next_u64() % 1000);
  d.round = rng.next_u64();
  d.issued_at = static_cast<TimePoint>(rng.next_u64() % (1ull << 40));
  for (std::size_t i = 0; i < entries; ++i) {
    DigestEntry e;
    e.entity_id = "entity-" + std::to_string(i) + "-" +
                  std::to_string(rng.next_u64() % 100000);
    // Digests carry heartbeats in practice, but the wire format accepts
    // any trace type; exercise a few.
    switch (rng.next_u64() % 4) {
      case 0:
        e.type = TraceType::kAllsWell;
        break;
      case 1:
        e.type = TraceType::kFailureSuspicion;
        break;
      case 2:
        e.type = TraceType::kReady;
        e.state = EntityState::kReady;
        break;
      default:
        e.type = TraceType::kRecovering;
        e.state = EntityState::kRecovering;
        break;
    }
    d.entries.push_back(std::move(e));
  }
  return d;
}

TEST(TraceDigestTest, RoundTripIdentityOverRandomEntitySets) {
  Rng rng(20260809);
  for (int iter = 0; iter < 50; ++iter) {
    // Sizes 1..64; the 1-entry case is pinned separately below.
    const std::size_t n = 1 + rng.next_u64() % 64;
    const TraceDigest d = random_digest(rng, n);
    const TraceDigest back = TraceDigest::deserialize(d.serialize());
    EXPECT_EQ(d, back) << "iteration " << iter << " (" << n << " entries)";
  }
}

TEST(TraceDigestTest, SingleEntryDigestRoundTrips) {
  Rng rng(7);
  const TraceDigest d = random_digest(rng, 1);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(TraceDigest::deserialize(d.serialize()), d);
}

TEST(TraceDigestTest, EmptyDigestRoundTrips) {
  TraceDigest d;
  d.host_id = "host-empty";
  d.round = 3;
  d.issued_at = 42;
  EXPECT_EQ(TraceDigest::deserialize(d.serialize()), d);
  EXPECT_TRUE(d.expand().empty());
}

TEST(TraceDigestTest, ExpandRestoresPerEntityPayloads) {
  Rng rng(99);
  const TraceDigest d = random_digest(rng, 17);
  const std::vector<TracePayload> payloads = d.expand();
  ASSERT_EQ(payloads.size(), d.entries.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i].entity_id, d.entries[i].entity_id);
    EXPECT_EQ(payloads[i].type, d.entries[i].type);
    EXPECT_EQ(payloads[i].state, d.entries[i].state);
    // Per-entry payloads inherit the digest's emission time.
    EXPECT_EQ(payloads[i].issued_at, d.issued_at);
  }
}

TEST(TraceDigestTest, SignVerifyExpandPipelineIsIdentity) {
  Rng rng(31337);
  const crypto::RsaKeyPair delegate = crypto::rsa_generate(rng, 512);
  for (const std::size_t n : {std::size_t{1}, std::size_t{13},
                              std::size_t{64}}) {
    const TraceDigest d = random_digest(rng, n);

    // The broker-side half: serialize into a signed message.
    pubsub::Message m;
    m.topic = "Availability/Traces/" + d.host_id + "/Digest";
    m.payload = d.serialize();
    m.publisher = "broker-0";
    m.sequence = 1;
    m.timestamp = d.issued_at;
    m.signature = delegate.private_key.sign(m.signable_bytes());

    // The tracker-side half: verify, deserialize, expand.
    ASSERT_TRUE(
        delegate.public_key.verify(m.signable_bytes(), m.signature));
    const TraceDigest received = TraceDigest::deserialize(m.payload);
    EXPECT_EQ(received, d);
    const std::vector<TracePayload> expanded = received.expand();
    ASSERT_EQ(expanded.size(), d.entries.size());
    for (std::size_t i = 0; i < expanded.size(); ++i) {
      EXPECT_EQ(expanded[i].entity_id, d.entries[i].entity_id);
      EXPECT_EQ(expanded[i].type, d.entries[i].type);
    }
  }
}

TEST(TraceDigestTest, TamperedPayloadFailsVerification) {
  Rng rng(5);
  const crypto::RsaKeyPair delegate = crypto::rsa_generate(rng, 512);
  const TraceDigest d = random_digest(rng, 8);
  pubsub::Message m;
  m.topic = "t";
  m.payload = d.serialize();
  m.signature = delegate.private_key.sign(m.signable_bytes());
  m.payload[m.payload.size() / 2] ^= 0x40;  // flip one bit mid-stream
  EXPECT_FALSE(delegate.public_key.verify(m.signable_bytes(), m.signature));
}

TEST(TraceDigestTest, MalformedBytesThrow) {
  Rng rng(11);
  TraceDigest d = random_digest(rng, 3);
  Bytes b = d.serialize();
  EXPECT_THROW(TraceDigest::deserialize(BytesView(b.data(), b.size() - 1)),
               SerializeError);
  Bytes junk{0xde, 0xad, 0xbe, 0xef};
  EXPECT_THROW(TraceDigest::deserialize(junk), SerializeError);
}

}  // namespace
}  // namespace et::tracing
