// Deferred-verdict pipeline tests (verify_pipeline.h): the batched filter
// must behave observably like the inline one. Forged traces admitted to
// the queue are rejected, counted as misbehaviour of the sending peer and
// never reorder deliveries — an earlier accepted trace on the same topic
// always arrives first. Virtual-time runs stay deterministic; the
// real-time variant drives a threaded drain pool and is the suite's TSan
// target.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "src/pubsub/message.h"
#include "src/pubsub/topology.h"
#include "src/tracing/token_verify_cache.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/trace_message.h"
#include "src/tracing/verify_pipeline.h"
#include "src/transport/realtime_network.h"
#include "src/transport/virtual_network.h"
#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

constexpr std::size_t kBits = 512;

/// Advertisement for `topic` owned by `owner`, signed with the TDN key.
/// `from` anchors the validity window — pass the backend's now() on the
/// real-time network, whose clock does not start at zero.
discovery::TopicAdvertisement make_ad(const crypto::Identity& owner,
                                      const crypto::RsaKeyPair& tdn_keys,
                                      const Uuid& topic, TimePoint from = 0) {
  discovery::TopicAdvertisement unsigned_ad(
      topic, "Availability/Traces/" + owner.credential.subject(),
      owner.credential, {}, from, from + 3600 * kSecond, "tdn-0", {});
  return discovery::TopicAdvertisement(
      topic, "Availability/Traces/" + owner.credential.subject(),
      owner.credential, {}, from, from + 3600 * kSecond, "tdn-0",
      tdn_keys.private_key.sign(unsigned_ad.tbs()));
}

/// AllUpdates trace publication on `ad`'s topic, signed with `delegate`.
pubsub::Message make_trace(const discovery::TopicAdvertisement& ad,
                           const AuthorizationToken& t,
                           const crypto::RsaKeyPair& delegate,
                           std::uint64_t seq, TimePoint now) {
  TracePayload p;
  p.type = TraceType::kAllsWell;
  p.entity_id = "owner-1";
  pubsub::Message m;
  m.topic = pubsub::trace_topics::trace_publication(ad.topic().to_string(),
                                                    "AllUpdates");
  m.payload = p.serialize();
  m.publisher = "upstream-broker";
  m.sequence = seq;
  m.timestamp = now;
  m.auth_token = t.serialize();
  m.signature = delegate.private_key.sign(m.signable_bytes());
  return m;
}

struct PipelineFixture : ::testing::Test {
  PipelineFixture() : rng(91), ca("ca", rng, kBits), net(17) {
    owner = crypto::Identity::create("owner-1", ca, rng, 0, 3600 * kSecond,
                                     kBits);
    tdn_keys = crypto::rsa_generate(rng, kBits);
    ad = make_ad(owner, tdn_keys, Uuid::generate(rng));
    anchors.ca_key = ca.public_key();
    anchors.tdn_key = tdn_keys.public_key;
  }

  AuthorizationToken make_token(const crypto::RsaKeyPair& delegate,
                                const crypto::RsaPrivateKey& signer) {
    return AuthorizationToken::create(ad, delegate.public_key,
                                      TokenRights::kPublish, 0, 600 * kSecond,
                                      signer);
  }

  /// Token whose chain deterministically fails: signed by an identity
  /// other than the advertisement's owner.
  AuthorizationToken make_forged_token(const crypto::RsaKeyPair& delegate) {
    Rng mallory_rng(5);
    const crypto::Identity mallory = crypto::Identity::create(
        "mallory", ca, mallory_rng, 0, 3600 * kSecond, kBits);
    return make_token(delegate, mallory.keys.private_key);
  }

  [[nodiscard]] std::string topic() const {
    return pubsub::trace_topics::trace_publication(ad.topic().to_string(),
                                                   "AllUpdates");
  }

  Rng rng;
  crypto::CertificateAuthority ca;
  transport::VirtualTimeNetwork net;
  crypto::Identity owner;
  crypto::RsaKeyPair tdn_keys;
  discovery::TopicAdvertisement ad;
  TrustAnchors anchors;
};

// --- rejection + misbehaviour accounting -----------------------------------

TEST_F(PipelineFixture, ForgedTraceRejectedAndCountedAsMisbehaviour) {
  pubsub::Topology topo(net);
  pubsub::Broker& b0 = topo.add_broker({.name = "b0"});
  pubsub::Broker::Options o{.name = "b1", .misbehaviour_threshold = 2};
  TraceFilterHandle handle = install_trace_filter(o, anchors, net);
  pubsub::Broker& b1 = topo.add_broker(std::move(o));
  topo.connect_brokers(b0, b1, transport::LinkParams::ideal_profile());

  std::vector<std::uint64_t> delivered;
  b1.subscribe_local(topic(), [&](const pubsub::Message& m) {
    delivered.push_back(m.sequence);
  });
  net.run_for(10 * kMillisecond);  // interest propagation to b0

  const crypto::RsaKeyPair good_key = crypto::rsa_generate(rng, kBits);
  const crypto::RsaKeyPair bad_key = crypto::rsa_generate(rng, kBits);
  const AuthorizationToken good = make_token(good_key, owner.keys.private_key);
  const AuthorizationToken forged = make_forged_token(bad_key);

  b0.publish_from_broker(make_trace(ad, good, good_key, 1, net.now()));
  b0.publish_from_broker(make_trace(ad, forged, bad_key, 2, net.now()));
  b0.publish_from_broker(make_trace(ad, good, good_key, 3, net.now()));
  net.run_for(10 * kMillisecond);

  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 3}));
  const TraceFilterStats fs = handle.stats();
  EXPECT_EQ(fs.checked, 3u);
  EXPECT_EQ(fs.accepted, 2u);
  EXPECT_EQ(fs.rejected, 1u);
  EXPECT_GE(b1.stats().discarded, 1u);
  // One strike so far: below the threshold of 2, the peer stays connected.
  EXPECT_FALSE(b1.is_blacklisted(b0.node()));

  // The second forgery (served from the negative cache) crosses the
  // threshold and the upstream peer is disconnected.
  b0.publish_from_broker(make_trace(ad, forged, bad_key, 4, net.now()));
  net.run_for(10 * kMillisecond);
  EXPECT_TRUE(b1.is_blacklisted(b0.node()));
  EXPECT_GE(b1.stats().disconnects, 1u);

  const VerifyPipelineStats ps = handle.pipeline_stats();
  EXPECT_EQ(ps.queued, 4u);
  EXPECT_EQ(ps.batched, 4u);
  EXPECT_GE(ps.drains, 1u);
  EXPECT_TRUE(handle.pipeline()->idle());
}

// --- ordering ---------------------------------------------------------------

TEST_F(PipelineFixture, ForgedTraceNeverReordersEarlierAcceptedTrace) {
  pubsub::Topology topo(net);
  pubsub::Broker& b0 = topo.add_broker({.name = "b0"});
  pubsub::Broker::Options o{.name = "b1"};
  TraceFilterHandle handle = install_trace_filter(o, anchors, net);
  pubsub::Broker& b1 = topo.add_broker(std::move(o));
  topo.connect_brokers(b0, b1, transport::LinkParams::ideal_profile());

  std::vector<std::uint64_t> delivered;
  b1.subscribe_local(topic(), [&](const pubsub::Message& m) {
    delivered.push_back(m.sequence);
  });
  net.run_for(10 * kMillisecond);

  // Two legitimate delegate keys and one forgery, interleaved on ONE
  // topic: grouping by key must reorder verification work only, never
  // delivery.
  const crypto::RsaKeyPair key_a = crypto::rsa_generate(rng, kBits);
  const crypto::RsaKeyPair key_b = crypto::rsa_generate(rng, kBits);
  const crypto::RsaKeyPair bad_key = crypto::rsa_generate(rng, kBits);
  const AuthorizationToken tok_a = make_token(key_a, owner.keys.private_key);
  const AuthorizationToken tok_b = make_token(key_b, owner.keys.private_key);
  const AuthorizationToken forged = make_forged_token(bad_key);

  std::vector<std::uint64_t> expected;
  std::uint64_t seq = 0;
  for (int round = 0; round < 3; ++round) {
    b0.publish_from_broker(make_trace(ad, tok_a, key_a, ++seq, net.now()));
    expected.push_back(seq);
    b0.publish_from_broker(make_trace(ad, tok_b, key_b, ++seq, net.now()));
    expected.push_back(seq);
    b0.publish_from_broker(make_trace(ad, forged, bad_key, ++seq, net.now()));
  }
  net.run_for(10 * kMillisecond);

  // Every accepted trace arrives, in exactly its admission order; the
  // rejected ones leave no gap-induced reordering behind.
  EXPECT_EQ(delivered, expected);
  const TraceFilterStats fs = handle.stats();
  EXPECT_EQ(fs.checked, 9u);
  EXPECT_EQ(fs.accepted, 6u);
  EXPECT_EQ(fs.rejected, 3u);
}

// --- batching mechanics, driven directly ------------------------------------

TEST_F(PipelineFixture, BatchedDrainGroupsByDelegateKeyFingerprint) {
  pubsub::Broker host(net, {.name = "host"});
  pubsub::Broker peer(net, {.name = "peer"});
  auto cache = std::make_shared<TokenVerifyCache>(/*capacity=*/64,
                                                  /*ttl=*/60 * kSecond);
  std::atomic<int> ok{0};
  std::atomic<int> bad{0};
  VerifyPipeline pipe(anchors, net, cache, TracingConfig::Verification{},
                      [&](bool accepted) { (accepted ? ok : bad)++; });

  const crypto::RsaKeyPair key_a = crypto::rsa_generate(rng, kBits);
  const crypto::RsaKeyPair key_b = crypto::rsa_generate(rng, kBits);
  const AuthorizationToken tok_a = make_token(key_a, owner.keys.private_key);
  const AuthorizationToken tok_b = make_token(key_b, owner.keys.private_key);
  const std::string expected_topic = ad.topic().to_string();

  // Six admissions before the virtual clock runs: the drain posted by the
  // first admission takes the whole backlog in one pass and resolves each
  // key's chain + Montgomery context once.
  for (std::uint64_t i = 0; i < 6; ++i) {
    const bool use_a = (i % 2) == 0;
    pipe.admit(host,
               make_trace(ad, use_a ? tok_a : tok_b, use_a ? key_a : key_b,
                          i + 1, net.now()),
               expected_topic, peer.node());
  }
  net.run_for(1 * kMillisecond);

  EXPECT_TRUE(pipe.idle());
  EXPECT_EQ(ok.load(), 6);
  EXPECT_EQ(bad.load(), 0);
  const VerifyPipelineStats s = pipe.stats();
  EXPECT_EQ(s.queued, 6u);
  EXPECT_EQ(s.drains, 1u);
  EXPECT_EQ(s.batched, 6u);
  EXPECT_EQ(s.keys_deduped, 4u);  // 6 messages, 2 distinct key groups
  EXPECT_EQ(s.max_drain_depth, 6u);
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->stats().insertions, 2u);
  // Released messages entered the host's routing stage.
  EXPECT_EQ(host.stats().published, 6u);
}

// --- determinism ------------------------------------------------------------

TEST(VerifyPipelineDeterminismTest, VirtualTimeRunsAreRepeatable) {
  using Transcript = std::vector<std::tuple<std::uint64_t, TimePoint, int>>;
  auto run_once = []() {
    Transcript transcript;
    testing::TracingHarness h(/*broker_count=*/2);
    auto entity = h.make_entity("svc", 0);
    EXPECT_TRUE(h.start_tracing(*entity).is_ok());
    auto tracker = h.make_tracker("watch", 1);
    EXPECT_TRUE(h.track(*tracker, "svc",
                        kCatAllUpdates | kCatStateTransitions,
                        [&](const TracePayload& p, const pubsub::Message& m) {
                          transcript.emplace_back(m.sequence, m.timestamp,
                                                  static_cast<int>(p.type));
                        })
                    .is_ok());
    h.net.run_for(2 * kSecond);
    const VerifyPipelineStats ps = h.filters[1].pipeline_stats();
    const TraceFilterStats fs = h.filters[1].stats();
    return std::make_tuple(transcript, ps.queued, ps.drains, ps.batched,
                           fs.accepted);
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(std::get<0>(a).empty());
  EXPECT_GT(std::get<1>(a), 0u);
  // Identical seeds -> identical trace transcripts AND identical pipeline
  // batching decisions (queue depths, drain passes) on the virtual clock.
  EXPECT_EQ(a, b);
}

// --- real-time / threaded drain (TSan target) -------------------------------

TEST(VerifyPipelineRealTimeTest, ThreadedBurstKeepsOrderAndCountsForgeries) {
  transport::RealTimeNetwork net;
  Rng rng(131);
  const TimePoint t0 = net.now();  // steady-clock epoch, NOT zero
  crypto::CertificateAuthority ca("rt-ca", rng, kBits);
  const crypto::Identity owner = crypto::Identity::create(
      "owner-1", ca, rng, t0, 3600 * kSecond, kBits);
  const crypto::RsaKeyPair tdn_keys = crypto::rsa_generate(rng, kBits);
  const discovery::TopicAdvertisement ad =
      make_ad(owner, tdn_keys, Uuid::generate(rng), t0);
  TrustAnchors anchors{ca.public_key(), tdn_keys.public_key};

  pubsub::Topology topo(net);
  pubsub::Broker& b0 = topo.add_broker({.name = "rt-b0"});
  TracingConfig cfg;
  cfg.verification.threads = 2;
  cfg.verification.batch_max = 16;
  // Strikes are the assertion here, not disconnection: keep the peer
  // connected through all 18 forgeries so later messages still flow.
  pubsub::Broker::Options o{.name = "rt-b1", .misbehaviour_threshold = 1000};
  TraceFilterHandle handle = install_trace_filter(o, anchors, net, cfg);
  pubsub::Broker& b1 = topo.add_broker(std::move(o));
  transport::LinkParams link = transport::LinkParams::ideal_profile();
  link.base_latency = 200;  // 0.2 ms
  topo.connect_brokers(b0, b1, link);

  const std::string topic = pubsub::trace_topics::trace_publication(
      ad.topic().to_string(), "AllUpdates");
  std::mutex mu;
  std::vector<std::uint64_t> delivered;
  b1.subscribe_local(topic, [&](const pubsub::Message& m) {
    const std::lock_guard<std::mutex> l(mu);
    delivered.push_back(m.sequence);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Burst: three legitimate delegate keys plus a forgery, round-robin on
  // one topic — enough backlog for multi-message, multi-group batches.
  constexpr std::uint64_t kTotal = 72;
  std::vector<crypto::RsaKeyPair> keys;
  std::vector<AuthorizationToken> tokens;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(crypto::rsa_generate(rng, kBits));
    tokens.push_back(AuthorizationToken::create(
        ad, keys.back().public_key, TokenRights::kPublish, t0,
        t0 + 600 * kSecond, owner.keys.private_key));
  }
  const crypto::RsaKeyPair bad_key = crypto::rsa_generate(rng, kBits);
  Rng mallory_rng(5);
  const crypto::Identity mallory = crypto::Identity::create(
      "mallory", ca, mallory_rng, t0, 3600 * kSecond, kBits);
  const AuthorizationToken forged = AuthorizationToken::create(
      ad, bad_key.public_key, TokenRights::kPublish, t0, t0 + 600 * kSecond,
      mallory.keys.private_key);

  std::vector<std::uint64_t> expected_good;
  for (std::uint64_t seq = 1; seq <= kTotal; ++seq) {
    const std::size_t slot = (seq - 1) % 4;
    pubsub::Message m =
        slot < 3 ? make_trace(ad, tokens[slot], keys[slot], seq, net.now())
                 : make_trace(ad, forged, bad_key, seq, net.now());
    if (slot < 3) expected_good.push_back(seq);
    net.post(b0.node(), [&b0, m]() mutable {
      b0.publish_from_broker(std::move(m));
    });
  }
  const std::uint64_t kGood = expected_good.size();
  const std::uint64_t kForged = kTotal - kGood;

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto settled = [&]() {
    if (handle.stats().checked < kTotal) return false;
    if (!handle.pipeline()->idle()) return false;
    const std::lock_guard<std::mutex> l(mu);
    return delivered.size() >= kGood;
  };
  while (!settled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  EXPECT_EQ(handle.pipeline()->verify_threads(), 2);
  {
    const std::lock_guard<std::mutex> l(mu);
    // FIFO link + FIFO queue + in-order apply: the accepted traces arrive
    // in exactly their admission order even with a threaded drain stage.
    EXPECT_EQ(delivered, expected_good);
  }
  const TraceFilterStats fs = handle.stats();
  EXPECT_EQ(fs.checked, kTotal);
  EXPECT_EQ(fs.accepted, kGood);
  EXPECT_EQ(fs.rejected, kForged);
  EXPECT_EQ(b1.stats().discarded, kForged);
  const VerifyPipelineStats ps = handle.pipeline_stats();
  EXPECT_EQ(ps.queued, kTotal);
  EXPECT_EQ(ps.batched, kTotal);
  EXPECT_GE(ps.drains, 1u);
  net.stop();
}

}  // namespace
}  // namespace et::tracing
