// Lifecycle features: token renewal (§4.3), DISCONNECT traces (Table 1)
// and tracker untrack.
#include <gtest/gtest.h>

#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

using testing::TracingHarness;

TEST(LifecycleTest, TokenRenewalKeepsTracesVerifiable) {
  TracingConfig c = TracingHarness::fast_config();
  c.token_lifetime = 700 * kMillisecond;
  c.auto_renew_tokens = true;  // default, explicit for contrast
  TracingHarness h(1, c);
  auto entity = h.make_entity("svc-renewing");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("long-watcher");
  int received = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-renewing", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++received;
                      })
                  .is_ok());

  // Run far past several token lifetimes: renewals must keep every trace
  // verifiable with zero rejections.
  h.net.run_for(4 * kSecond);
  EXPECT_GT(received, 20);
  EXPECT_EQ(tracker->stats().traces_rejected, 0u);

  const int before = received;
  h.net.run_for(1 * kSecond);
  EXPECT_GT(received, before);  // still flowing after ~7 lifetimes
}

TEST(LifecycleTest, ManualRenewalReplacesDelegation) {
  TracingHarness h;
  auto entity = h.make_entity("svc-manual");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("observer");
  int received = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-manual", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++received;
                      })
                  .is_ok());
  h.net.run_for(500 * kMillisecond);
  const int before = received;

  entity->renew_token();
  h.net.run_for(1 * kSecond);
  // Traces continue under the new delegation without rejections.
  EXPECT_GT(received, before);
  EXPECT_EQ(tracker->stats().traces_rejected, 0u);
}

TEST(LifecycleTest, AbruptDisconnectPublishesDisconnectTrace) {
  TracingHarness h;
  auto entity = h.make_entity("svc-vanishing");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("watcher");
  bool disconnect_seen = false;
  bool failed_seen = false;
  ASSERT_TRUE(h.track(*tracker, "svc-vanishing", kCatChangeNotifications,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kDisconnect) {
                          disconnect_seen = true;
                        }
                        if (p.type == TraceType::kFailed) failed_seen = true;
                      })
                  .is_ok());
  h.net.run_for(300 * kMillisecond);

  entity->disconnect();  // sever the link with no notice
  h.net.run_for(2 * kSecond);

  // The broker notices on its next ping delivery attempt and reports
  // DISCONNECT (not FAILED — the link event preempts the miss counter).
  EXPECT_TRUE(disconnect_seen);
  EXPECT_FALSE(failed_seen);
  EXPECT_FALSE(h.services[0]->has_session_for("svc-vanishing"));
}

TEST(LifecycleTest, DisconnectWithNoTrackersIsQuiet) {
  TracingHarness h;
  auto entity = h.make_entity("svc-unseen");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  h.net.run_for(200 * kMillisecond);
  entity->disconnect();
  h.net.run_for(2 * kSecond);
  // Session torn down, nothing published (no interest).
  EXPECT_FALSE(h.services[0]->has_session_for("svc-unseen"));
  EXPECT_EQ(h.services[0]->stats().traces_published, 0u);
}

TEST(LifecycleTest, UntrackStopsDeliveryAndInterestExpires) {
  TracingHarness h;
  auto entity = h.make_entity("svc-watched");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("fickle");
  int received = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-watched", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++received;
                      })
                  .is_ok());
  h.net.run_for(500 * kMillisecond);
  EXPECT_GT(received, 0);
  EXPECT_EQ(tracker->tracked_count(), 1u);

  tracker->untrack("svc-watched");
  h.net.run_for(100 * kMillisecond);
  EXPECT_EQ(tracker->tracked_count(), 0u);
  const int at_untrack = received;
  h.net.run_for(500 * kMillisecond);
  EXPECT_EQ(received, at_untrack);  // no further deliveries

  // After TTL gauge rounds with no interest responses, the broker stops
  // publishing entirely.
  h.net.run_for(2 * kSecond);
  const std::uint64_t published = h.services[0]->stats().traces_published;
  h.net.run_for(1 * kSecond);
  EXPECT_EQ(h.services[0]->stats().traces_published, published);
}

TEST(LifecycleTest, UntrackOneOfTwoKeepsTheOther) {
  TracingHarness h;
  auto e1 = h.make_entity("svc-a");
  auto e2 = h.make_entity("svc-b");
  ASSERT_TRUE(h.start_tracing(*e1).is_ok());
  ASSERT_TRUE(h.start_tracing(*e2).is_ok());
  auto tracker = h.make_tracker("dual");
  int a_count = 0, b_count = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-a", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++a_count;
                      })
                  .is_ok());
  ASSERT_TRUE(h.track(*tracker, "svc-b", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++b_count;
                      })
                  .is_ok());
  h.net.run_for(500 * kMillisecond);
  tracker->untrack("svc-a");
  h.net.run_for(100 * kMillisecond);
  const int a_frozen = a_count;
  const int b_so_far = b_count;
  h.net.run_for(500 * kMillisecond);
  EXPECT_EQ(a_count, a_frozen);
  EXPECT_GT(b_count, b_so_far);
  EXPECT_EQ(tracker->tracked_count(), 1u);
}

}  // namespace
}  // namespace et::tracing
