// Security & authorization scenarios: confidential traces (§5.1),
// discovery restrictions (§3.4), forged registrations/tokens (§4), and
// denial-of-service handling (§5.2).
#include <gtest/gtest.h>

#include "src/pubsub/client.h"
#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

using testing::TracingHarness;

TracingConfig secure_config() {
  TracingConfig c = TracingHarness::fast_config();
  c.secure_traces = true;
  return c;
}

TEST(SecurityTest, SecureTracesAreEncryptedAndDecryptable) {
  TracingHarness h(1, secure_config());
  auto entity = h.make_entity("secret-svc");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("cleared-tracker");
  int received = 0;
  bool all_encrypted = true;
  ASSERT_TRUE(h.track(*tracker, "secret-svc", kCatAllUpdates,
                      [&](const TracePayload& p, const pubsub::Message& m) {
                        if (p.type == TraceType::kAllsWell) {
                          ++received;
                          all_encrypted &= m.encrypted;
                        }
                      })
                  .is_ok());

  h.net.run_for(2 * kSecond);
  EXPECT_GT(received, 5);
  EXPECT_TRUE(all_encrypted);
  EXPECT_EQ(tracker->stats().keys_received, 1u);
  EXPECT_GE(h.services[0]->stats().keys_distributed, 1u);
  const auto view = h.services[0]->session_view("secret-svc");
  EXPECT_TRUE(view.secure);
}

TEST(SecurityTest, EavesdropperWithoutKeySeesOnlyCiphertext) {
  TracingHarness h(1, secure_config());
  auto entity = h.make_entity("secret-svc2");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  // A legit tracker gets the key flowing; the eavesdropper subscribes to
  // the raw topic directly (it "guessed" the UUID) but never runs the key
  // exchange.
  auto tracker = h.make_tracker("legit");
  ASSERT_TRUE(h.track(*tracker, "secret-svc2", kCatAllUpdates,
                      [](const TracePayload&, const pubsub::Message&) {})
                  .is_ok());

  pubsub::Client eavesdropper(h.net, "eve");
  eavesdropper.connect(h.brokers[0]->node(), TracingHarness::link());
  const std::string raw_topic = pubsub::trace_topics::trace_publication(
      entity->trace_topic().to_string(), "AllUpdates");
  int cipher_seen = 0;
  int plain_readable = 0;
  eavesdropper.subscribe(raw_topic, [&](const pubsub::Message& m) {
    if (!m.encrypted) {
      ++plain_readable;
      return;
    }
    ++cipher_seen;
    // Ciphertext must not parse as a trace payload.
    try {
      (void)TracePayload::deserialize(m.payload);
      ++plain_readable;
    } catch (const std::exception&) {
    }
  });

  h.net.run_for(2 * kSecond);
  EXPECT_GT(cipher_seen, 3);      // routing doesn't hide the stream...
  EXPECT_EQ(plain_readable, 0);   // ...but the contents stay opaque
}

TEST(SecurityTest, DiscoveryRestrictionsBlockUnauthorizedTrackers) {
  TracingHarness h;
  auto entity = h.make_entity("restricted-svc");
  discovery::DiscoveryRestrictions restrictions;
  restrictions.authorized_subjects = {"friend"};
  ASSERT_TRUE(h.start_tracing(*entity, restrictions).is_ok());

  auto friendly = h.make_tracker("friend");
  auto stranger = h.make_tracker("stranger");

  const Status ok = h.track(*friendly, "restricted-svc", kCatAllUpdates,
                            [](const TracePayload&, const pubsub::Message&) {});
  EXPECT_TRUE(ok.is_ok()) << ok.to_string();

  const Status denied =
      h.track(*stranger, "restricted-svc", kCatAllUpdates,
              [](const TracePayload&, const pubsub::Message&) {});
  // §3.4: the TDN stays silent; the stranger times out with NOT_FOUND and
  // cannot proceed.
  EXPECT_EQ(denied.code(), Code::kNotFound);
  EXPECT_GT(h.tdn->stats().discoveries_ignored, 0u);
}

TEST(SecurityTest, RegistrationWithoutValidCredentialRejected) {
  TracingHarness h;
  // An identity signed by a rogue CA the deployment does not trust.
  Rng rogue_rng(99);
  crypto::CertificateAuthority rogue_ca("rogue-ca", rogue_rng,
                                        testing::kTestKeyBits);
  auto rogue = std::make_unique<TracedEntity>(
      h.net, crypto::Identity::create("imposter", rogue_ca, rogue_rng,
                                      h.net.now(), 3600 * kSecond,
                                      testing::kTestKeyBits),
      h.anchors, TracingHarness::fast_config(), 7);
  rogue->attach_tdn(h.tdn->node(), TracingHarness::link());
  rogue->connect_broker(h.brokers[0]->node(), TracingHarness::link());
  h.net.run_for(20 * kMillisecond);

  const Status s = h.start_tracing(*rogue);
  EXPECT_FALSE(s.is_ok());
  EXPECT_FALSE(h.services[0]->has_session_for("imposter"));
  // Rejected at the TDN (topic creation needs a trusted credential).
  EXPECT_GT(h.tdn->stats().rejected_requests, 0u);
}

TEST(SecurityTest, ForgedRegistrationWithStolenAdvertisementRejected) {
  TracingHarness h;
  auto victim = h.make_entity("victim");
  ASSERT_TRUE(h.start_tracing(*victim).is_ok());

  // Mallory (valid credential) replays the victim's advertisement under
  // her own registration.
  const crypto::Identity mallory = h.make_identity("mallory");
  pubsub::Client client(h.net, "mallory");
  client.connect(h.brokers[0]->node(), TracingHarness::link());
  h.net.run_for(10 * kMillisecond);

  RegistrationRequest req;
  req.entity_id = "mallory";
  req.credential = mallory.credential;
  req.advertisement = victim->advertisement();  // stolen
  req.request_id = 42;

  pubsub::Message m;
  m.topic = pubsub::trace_topics::registration();
  m.payload = req.serialize();
  m.publisher = "mallory";
  m.sequence = 1;
  m.timestamp = h.net.now();
  m.signature = mallory.keys.private_key.sign(m.signable_bytes());
  client.publish(std::move(m));
  h.net.run_for(100 * kMillisecond);

  EXPECT_FALSE(h.services[0]->has_session_for("mallory"));
  EXPECT_GT(h.services[0]->stats().rejected_registrations, 0u);
}

TEST(SecurityTest, SpuriousTracesWithoutTokenAreDiscarded) {
  TracingHarness h(/*broker_count=*/2);
  auto entity = h.make_entity("target", 0);
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("watcher", 1);
  int bogus_seen = 0;
  ASSERT_TRUE(h.track(*tracker, "target", kCatChangeNotifications,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kFailed) ++bogus_seen;
                      })
                  .is_ok());

  // The attacker knows the trace topic (suppose it leaked) and injects a
  // fake FAILED trace without any token.
  pubsub::Client attacker(h.net, "attacker");
  attacker.connect(h.brokers[0]->node(), TracingHarness::link());
  h.net.run_for(10 * kMillisecond);

  TracePayload fake;
  fake.type = TraceType::kFailed;
  fake.entity_id = "target";
  pubsub::Message m;
  m.topic = pubsub::trace_topics::trace_publication(
      entity->trace_topic().to_string(), "ChangeNotifications");
  m.payload = fake.serialize();
  attacker.publish(std::move(m));
  h.net.run_for(200 * kMillisecond);

  EXPECT_EQ(bogus_seen, 0);
  // Discarded at the attacker's own broker edge: the topic is
  // Publish-Only for brokers, so a client publish is rejected outright.
  EXPECT_GT(h.brokers[0]->stats().discarded, 0u);
}

TEST(SecurityTest, RepeatedBogusAttemptsTerminateCommunications) {
  TracingHarness h;
  pubsub::Client attacker(h.net, "flooder");
  attacker.connect(h.brokers[0]->node(), TracingHarness::link());
  h.net.run_for(10 * kMillisecond);

  // §5.2: after several unauthorized publishes the broker disconnects us.
  for (int i = 0; i < 10; ++i) {
    pubsub::Message m;
    m.topic = "Constrained/Traces/Broker/Publish-Only/forged/" +
              std::to_string(i);
    m.payload = to_bytes("spurious");
    attacker.publish(std::move(m));
    h.net.run_for(20 * kMillisecond);
  }
  EXPECT_TRUE(h.brokers[0]->is_blacklisted(attacker.node()));
  EXPECT_GE(h.brokers[0]->stats().disconnects, 1u);
  EXPECT_FALSE(h.net.linked(attacker.node(), h.brokers[0]->node()));
}

TEST(SecurityTest, TrackerRejectsTamperedTraces) {
  TracingHarness h;
  auto entity = h.make_entity("svc-integrity");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  // A tracker whose handler also counts rejections via stats.
  auto tracker = h.make_tracker("strict");
  ASSERT_TRUE(h.track(*tracker, "svc-integrity", kCatAllUpdates,
                      [](const TracePayload&, const pubsub::Message&) {})
                  .is_ok());
  h.net.run_for(500 * kMillisecond);
  const std::uint64_t received_before = tracker->stats().traces_received;
  EXPECT_GT(received_before, 0u);
  EXPECT_EQ(tracker->stats().traces_rejected, 0u);

  // Replay one of the broker's topics with a token-less forgery straight
  // over the tracker's access link: the tracker's own verification (not
  // just the broker filter) must reject it.
  pubsub::Message forged;
  forged.topic = pubsub::trace_topics::trace_publication(
      entity->trace_topic().to_string(), "AllUpdates");
  TracePayload p;
  p.type = TraceType::kAllsWell;
  p.entity_id = "svc-integrity";
  forged.payload = p.serialize();
  forged.publisher = "nobody";
  // Deliver directly, bypassing brokers (a compromised last hop).
  pubsub::Frame f = pubsub::make_publish(forged);
  h.net.link(h.tdn->node(), tracker->client().node(),
             TracingHarness::link());
  (void)h.net.send(h.tdn->node(), tracker->client().node(), f.serialize());
  h.net.run_for(100 * kMillisecond);

  EXPECT_GT(tracker->stats().traces_rejected, 0u);
}

TEST(SecurityTest, ExpiredTokenStopsTraceRouting) {
  TracingConfig c = TracingHarness::fast_config();
  c.token_lifetime = 700 * kMillisecond;  // very short delegation
  c.auto_renew_tokens = false;            // let it lapse (§4.3 renewal off)
  TracingHarness h(1, c);
  auto entity = h.make_entity("svc-shortlease");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("lease-watcher");
  int received = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-shortlease", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++received;
                      })
                  .is_ok());
  h.net.run_for(500 * kMillisecond);
  const int before_expiry = received;
  EXPECT_GT(before_expiry, 0);

  // Run past the token expiry: the tracker (and any filter) must reject
  // traces signed under the stale token.
  h.net.run_for(2 * kSecond);
  const std::uint64_t rejected = tracker->stats().traces_rejected;
  EXPECT_GT(rejected, 0u);
}

TEST(SecurityTest, SymmetricSessionModeStillAuthenticates) {
  TracingConfig c = TracingHarness::fast_config();
  c.signing_mode = EntitySigningMode::kSymmetricSession;  // §6.3
  TracingHarness h(1, c);
  auto entity = h.make_entity("svc-fast");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("fast-watcher");
  int received = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-fast", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++received;
                      })
                  .is_ok());
  h.net.run_for(1 * kSecond);
  EXPECT_GT(received, 3);
  EXPECT_EQ(h.services[0]->stats().rejected_session_messages, 0u);

  // An attacker without the session key cannot inject session messages.
  pubsub::Client attacker(h.net, "spoofer");
  attacker.connect(h.brokers[0]->node(), TracingHarness::link());
  h.net.run_for(10 * kMillisecond);
  pubsub::Message m;
  m.topic = pubsub::trace_topics::entity_to_broker(
      entity->trace_topic().to_string(), entity->session_id().to_string());
  SessionMessage sm;
  sm.type = SessionMsgType::kSilentMode;  // try to kill the session
  m.payload = sm.serialize();
  m.encrypted = false;
  attacker.publish(std::move(m));
  h.net.run_for(100 * kMillisecond);

  EXPECT_GT(h.services[0]->stats().rejected_session_messages, 0u);
  EXPECT_TRUE(h.services[0]->has_session_for("svc-fast"));  // still alive
}

}  // namespace
}  // namespace et::tracing
