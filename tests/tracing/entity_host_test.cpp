// EntityHost end-to-end (DESIGN.md §14): one batch registration covers a
// whole roster, one ping round carries the roster's liveness, coalesced
// digests expand back to exact per-entity semantics at the tracker.
#include "src/tracing/entity_host.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/transport/fault_injector.h"
#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

using testing::TracingHarness;

std::vector<std::string> member_ids(std::size_t n) {
  std::vector<std::string> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back("member-" + std::to_string(i));
  }
  return ids;
}

TracingConfig digest_config() {
  TracingConfig c = TracingHarness::fast_config();
  c.digest_interval = 100 * kMillisecond;
  c.timer_wheel_tick = 20 * kMillisecond;
  return c;
}

struct HostFixture {
  explicit HostFixture(std::size_t brokers, std::size_t members,
                       TracingConfig config = digest_config())
      : h(brokers, config) {
    host = std::make_unique<EntityHost>(h.net, h.make_identity("host-0"),
                                        h.anchors, config, h.rng.next_u64());
    host->attach_tdn(h.tdn->node(), TracingHarness::link());
    host->connect_broker(h.brokers.front()->node(), TracingHarness::link());
    h.net.run_for(20 * kMillisecond);

    Status reg = internal_error("callback never ran");
    bool done = false;
    host->register_entities({}, member_ids(members), [&](const Status& s) {
      reg = s;
      done = true;
    });
    for (int i = 0; i < 100 && !done; ++i) h.net.run_for(50 * kMillisecond);
    EXPECT_TRUE(reg.is_ok()) << reg.to_string();
  }

  TracingHarness h;
  std::unique_ptr<EntityHost> host;
};

TEST(EntityHostTest, BatchRegistrationIsOneRoundTripPerRoster) {
  HostFixture f(/*brokers=*/1, /*members=*/16);
  EXPECT_TRUE(f.host->tracing_active());
  EXPECT_EQ(f.host->entity_count(), 16u);
  EXPECT_EQ(f.h.services[0]->stats().batch_registrations, 1u);
  EXPECT_EQ(f.h.services[0]->stats().registrations, 1u);  // one session
  EXPECT_EQ(f.h.services[0]->roster_size(), 16u);
  // Every member resolves to the (single) host session.
  for (const std::string& id : member_ids(16)) {
    EXPECT_TRUE(f.h.services[0]->has_session_for(id)) << id;
  }
}

TEST(EntityHostTest, DigestsExpandToPerEntityHeartbeats) {
  HostFixture f(/*brokers=*/3, /*members=*/16);
  auto tracker = f.h.make_tracker("tracker-0", /*broker_index=*/2);

  std::map<std::string, int> heartbeats;
  Status st = internal_error("never");
  bool done = false;
  tracker->track_host(
      "host-0", kCatAll,
      [&](const TracePayload& p, const pubsub::Message&) {
        if (p.type == TraceType::kAllsWell) ++heartbeats[p.entity_id];
      },
      [&](const Status& s) {
        st = s;
        done = true;
      });
  for (int i = 0; i < 100 && !done; ++i) f.h.net.run_for(50 * kMillisecond);
  ASSERT_TRUE(st.is_ok()) << st.to_string();

  f.h.net.run_for(2 * kSecond);
  // The tracker observes per-entity heartbeats for EVERY member even
  // though the wire carried coalesced digests.
  for (const std::string& id : member_ids(16)) {
    EXPECT_GE(heartbeats[id], 3) << id;
  }
  EXPECT_GT(tracker->stats().digests_received, 0u);
  EXPECT_GT(tracker->stats().digest_entries_expanded, 0u);
  // Coalescing actually happened on the broker side: far fewer digest
  // messages than observations carried.
  const TraceEmitter::Stats& es = f.h.services[0]->emitter_stats();
  EXPECT_GT(es.digests_published, 0u);
  EXPECT_GT(es.digest_entries, 4 * es.digests_published);
}

TEST(EntityHostTest, SingleUnresponsiveMemberEscalatesAlone) {
  HostFixture f(/*brokers=*/1, /*members=*/8);
  auto tracker = f.h.make_tracker("tracker-0");

  std::set<std::string> suspected;
  std::map<std::string, int> recovered;
  Status st = internal_error("never");
  bool done = false;
  tracker->track_host(
      "host-0", kCatAll,
      [&](const TracePayload& p, const pubsub::Message&) {
        if (p.type == TraceType::kFailureSuspicion ||
            p.type == TraceType::kFailed) {
          suspected.insert(p.entity_id);
        }
        if (p.type == TraceType::kAllsWell && !p.detail.empty()) {
          ++recovered[p.entity_id];
        }
      },
      [&](const Status& s) {
        st = s;
        done = true;
      });
  for (int i = 0; i < 100 && !done; ++i) f.h.net.run_for(50 * kMillisecond);
  ASSERT_TRUE(st.is_ok()) << st.to_string();

  f.host->set_responsive("member-3", false);
  f.h.net.run_for(3 * kSecond);
  // Only the dead member escalates; the host and its 7 live members keep
  // reporting healthy through the same ping/digest stream.
  EXPECT_EQ(suspected, std::set<std::string>{"member-3"});
  EXPECT_TRUE(f.h.services[0]->session_view("member-3").suspected ||
              f.h.services[0]->session_view("member-3").failed);
  EXPECT_FALSE(f.h.services[0]->session_view("member-1").suspected);

  // Recovery travels urgently (detail-carrying ALLS_WELL, not digested).
  f.host->set_responsive("member-3", true);
  f.h.net.run_for(1 * kSecond);
  EXPECT_GE(recovered["member-3"], 1);
  EXPECT_FALSE(f.h.services[0]->session_view("member-3").suspected);
  EXPECT_FALSE(f.h.services[0]->session_view("member-3").failed);
}

TEST(EntityHostTest, TimerStateIsPerHostNotPerEntity) {
  HostFixture f(/*brokers=*/1, /*members=*/64);
  f.h.net.run_for(1 * kSecond);
  // One session: ping + metrics + gauge (+ one digest flush) logical
  // timers — versus 64 entities.
  const TimerWheel::Stats ws = f.h.services[0]->timer_stats();
  EXPECT_LE(ws.pending, 4u);
  // A nonzero tick multiplexes them onto at most one armed backend timer.
  EXPECT_LE(ws.armed_now, 1u);
  // The arena actually holds the roster compactly.
  EXPECT_EQ(f.h.services[0]->roster_size(), 64u);
  EXPECT_GT(f.h.services[0]->roster_bytes(), 0u);
}

TEST(EntityHostTest, HostDisconnectFansOutPerMemberDisconnects) {
  HostFixture f(/*brokers=*/1, /*members=*/8);
  auto tracker = f.h.make_tracker("tracker-0");

  std::set<std::string> disconnected;
  bool done = false;
  tracker->track_host(
      "host-0", kCatAll,
      [&](const TracePayload& p, const pubsub::Message&) {
        if (p.type == TraceType::kDisconnect) {
          disconnected.insert(p.entity_id);
        }
      },
      [&](const Status&) { done = true; });
  for (int i = 0; i < 100 && !done; ++i) f.h.net.run_for(50 * kMillisecond);

  f.host->disconnect();
  f.h.net.run_for(2 * kSecond);
  // The broker notices the severed link and announces every member.
  const std::vector<std::string> roster = member_ids(8);
  EXPECT_EQ(disconnected, std::set<std::string>(roster.begin(), roster.end()));
  EXPECT_FALSE(f.h.services[0]->has_session_for("host-0"));
  EXPECT_EQ(f.h.services[0]->roster_size(), 0u);
}

TEST(EntityHostTest, BrokerSilenceTriggersBatchFailover) {
  TracingConfig c = digest_config();
  c.broker_silence_timeout = 600 * kMillisecond;
  RetryPolicy r;
  r.max_attempts = 0;  // an availability reporter never gives up
  r.initial_backoff = 50 * kMillisecond;
  r.max_backoff = 400 * kMillisecond;
  r.deadline = 10 * kSecond;
  c.retry = r;
  HostFixture f(/*brokers=*/2, /*members=*/8, c);
  f.h.register_brokers();
  ASSERT_TRUE(f.host->tracing_active());
  ASSERT_EQ(f.host->stats().registrations, 1u);

  // Kill the hosting broker: pings stop, the silence watchdog fires, and
  // ONE batch re-registration re-homes the entire roster — mirroring
  // TracedEntity's failover ladder at O(1)-per-host cost.
  f.h.net.faults().crash(f.h.brokers[0]->node());
  for (int i = 0; i < 200 && f.host->stats().failovers == 0; ++i) {
    f.h.net.run_for(100 * kMillisecond);
  }
  EXPECT_EQ(f.host->stats().failovers, 1u);
  EXPECT_GE(f.host->stats().failover_attempts, 1u);
  EXPECT_FALSE(f.host->failing_over());
  EXPECT_TRUE(f.host->tracing_active());
  EXPECT_EQ(f.host->client().broker(), f.h.brokers[1]->node());
  EXPECT_EQ(f.host->stats().registrations, 2u);
  // The replacement broker serves the whole roster under the new session.
  EXPECT_EQ(f.h.services[1]->roster_size(), 8u);
  for (const std::string& id : member_ids(8)) {
    EXPECT_TRUE(f.h.services[1]->has_session_for(id)) << id;
  }
  // Pings flow again: the host answers its new broker.
  const std::uint64_t answered = f.host->stats().pings_answered;
  f.h.net.run_for(1 * kSecond);
  EXPECT_GT(f.host->stats().pings_answered, answered);
}

TEST(EntityHostTest, PassthroughConfigStillDeliversPerEntity) {
  // digest_interval == 0: the emitter publishes per-entity messages, no
  // digests anywhere — the batch API works without coalescing.
  TracingConfig c = TracingHarness::fast_config();
  HostFixture f(/*brokers=*/1, /*members=*/4, c);
  auto tracker = f.h.make_tracker("tracker-0");

  std::map<std::string, int> heartbeats;
  bool done = false;
  tracker->track_host(
      "host-0", kCatAll,
      [&](const TracePayload& p, const pubsub::Message&) {
        if (p.type == TraceType::kAllsWell) ++heartbeats[p.entity_id];
      },
      [&](const Status&) { done = true; });
  for (int i = 0; i < 100 && !done; ++i) f.h.net.run_for(50 * kMillisecond);

  f.h.net.run_for(1 * kSecond);
  for (const std::string& id : member_ids(4)) {
    EXPECT_GE(heartbeats[id], 2) << id;
  }
  EXPECT_EQ(tracker->stats().digests_received, 0u);
  EXPECT_EQ(f.h.services[0]->emitter_stats().digests_published, 0u);
}

}  // namespace
}  // namespace et::tracing
