// Shared test fixture assembling a complete tracing deployment on the
// deterministic virtual-time backend: CA, TDN, broker chain with tracing
// services and trace filters, plus factory helpers for entities/trackers.
//
// Uses 512-bit RSA keys to keep the suite fast; the protocol logic is key
// size independent.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/crypto/credential.h"
#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/config.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

namespace et::tracing::testing {

inline constexpr std::size_t kTestKeyBits = 512;

/// A ready-to-use deployment.
class TracingHarness {
 public:
  explicit TracingHarness(std::size_t broker_count = 1,
                          TracingConfig config = fast_config(),
                          std::uint64_t seed = 1234)
      : net(seed),
        rng(seed),
        ca("test-ca", rng, kTestKeyBits),
        config_(config) {
    // TDN identity + node.
    crypto::Identity tdn_identity =
        crypto::Identity::create("tdn-0", ca, rng, net.now(),
                                 3600 * kSecond, kTestKeyBits);
    anchors.ca_key = ca.public_key();
    anchors.tdn_key = tdn_identity.keys.public_key;
    tdn = std::make_unique<discovery::Tdn>(net, std::move(tdn_identity),
                                           ca.public_key(), seed + 1);

    // Broker chain with tracing services and filters everywhere. Filters
    // ride the construction path: install_trace_filter fills the broker
    // Options before each broker is built.
    topology = std::make_unique<pubsub::Topology>(net);
    brokers = topology->make_chain(
        broker_count, link(), "broker", [&](const std::string& name) {
          pubsub::Broker::Options o;
          o.name = name;
          filters.push_back(install_trace_filter(o, anchors, net, config_));
          token_caches.push_back(filters.back().cache());
          return o;
        });
    for (std::size_t i = 0; i < brokers.size(); ++i) {
      services.push_back(std::make_unique<TracingBrokerService>(
          *brokers[i], anchors, config_, seed + 100 + i));
    }
  }

  /// Fast-turnaround config for tests.
  static TracingConfig fast_config() {
    TracingConfig c;
    c.ping_interval = 100 * kMillisecond;
    c.min_ping_interval = 20 * kMillisecond;
    c.gauge_interval = 300 * kMillisecond;
    c.metrics_interval = 250 * kMillisecond;
    c.delegate_key_bits = kTestKeyBits;
    return c;
  }

  /// Default low-latency link for tests.
  static transport::LinkParams link() {
    transport::LinkParams p = transport::LinkParams::ideal_profile();
    p.base_latency = 1 * kMillisecond;
    return p;
  }

  /// Enrolls every broker in the TDN's registry so find_broker (and hence
  /// entity failover) can discover them. Keeps the registrar client alive
  /// for the harness lifetime.
  void register_brokers() {
    registrar = std::make_unique<discovery::DiscoveryClient>(
        net, make_identity("registrar"));
    registrar->attach_tdn(tdn->node(), link());
    for (pubsub::Broker* b : brokers) {
      registrar->register_broker(b->name(), b->node(),
                                 make_identity(b->name()).credential);
    }
    net.run_for(20 * kMillisecond);
  }

  crypto::Identity make_identity(const std::string& id) {
    return crypto::Identity::create(id, ca, rng, net.now(), 3600 * kSecond,
                                    kTestKeyBits);
  }

  // NOTE: the deployment contains self-rescheduling timers (pings,
  // gauges), so run_until_idle would never return once a session exists.
  // All helpers advance bounded virtual time with run_for instead.

  /// Entity attached to `broker_index`, TDN wired.
  std::unique_ptr<TracedEntity> make_entity(const std::string& id,
                                            std::size_t broker_index = 0) {
    auto e = std::make_unique<TracedEntity>(net, make_identity(id), anchors,
                                            config_, rng.next_u64());
    e->attach_tdn(tdn->node(), link());
    e->connect_broker(brokers.at(broker_index)->node(), link());
    net.run_for(20 * kMillisecond);
    return e;
  }

  /// Tracker attached to `broker_index`, TDN wired.
  std::unique_ptr<Tracker> make_tracker(const std::string& id,
                                        std::size_t broker_index = 0) {
    auto t = std::make_unique<Tracker>(net, make_identity(id), anchors,
                                       rng.next_u64());
    t->attach_tdn(tdn->node(), link());
    t->connect_broker(brokers.at(broker_index)->node(), link());
    net.run_for(20 * kMillisecond);
    return t;
  }

  /// Runs start_tracing to completion; returns the outcome.
  Status start_tracing(TracedEntity& e,
                       discovery::DiscoveryRestrictions restrictions = {}) {
    Status out = internal_error("callback never ran");
    bool done = false;
    e.start_tracing(std::move(restrictions), [&](const Status& s) {
      out = s;
      done = true;
    });
    for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
    return out;
  }

  /// Runs track() to completion; returns the outcome.
  Status track(Tracker& t, const std::string& entity_id,
               std::uint8_t categories, Tracker::TraceHandler handler) {
    Status out = internal_error("callback never ran");
    bool done = false;
    t.track(entity_id, categories, std::move(handler), [&](const Status& s) {
      out = s;
      done = true;
    });
    for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
    // Let the unsolicited interest response reach the hosting broker.
    net.run_for(20 * kMillisecond);
    return out;
  }

  transport::VirtualTimeNetwork net;
  Rng rng;
  crypto::CertificateAuthority ca;
  TrustAnchors anchors;
  std::unique_ptr<discovery::Tdn> tdn;
  std::unique_ptr<discovery::DiscoveryClient> registrar;
  std::unique_ptr<pubsub::Topology> topology;
  std::vector<pubsub::Broker*> brokers;
  std::vector<std::unique_ptr<TracingBrokerService>> services;
  /// Per-broker trace-filter handles (parallel to `brokers`).
  std::vector<TraceFilterHandle> filters;
  /// Per-broker token-verification caches (parallel to `brokers`; entries
  /// are nullptr when the config disables caching).
  std::vector<std::shared_ptr<TokenVerifyCache>> token_caches;

 private:
  TracingConfig config_;
};

}  // namespace et::tracing::testing
