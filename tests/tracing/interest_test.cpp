// Interest-gauging behaviour (§3.5): selective categories, interest TTL
// expiry after trackers vanish, multiple trackers with disjoint interests,
// and the "no traces without trackers" economy property.
#include <gtest/gtest.h>

#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

using testing::TracingHarness;

TEST(InterestTest, DisjointCategoriesDeliveredSelectively) {
  TracingHarness h;
  auto entity = h.make_entity("svc-multi");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto heart_watcher = h.make_tracker("hearts");
  auto load_watcher = h.make_tracker("loads");
  int hearts_hb = 0, hearts_load = 0, loads_hb = 0, loads_load = 0;
  ASSERT_TRUE(h.track(*heart_watcher, "svc-multi", kCatAllUpdates,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kAllsWell) ++hearts_hb;
                        if (p.type == TraceType::kLoadInformation)
                          ++hearts_load;
                      })
                  .is_ok());
  ASSERT_TRUE(h.track(*load_watcher, "svc-multi", kCatLoad,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kAllsWell) ++loads_hb;
                        if (p.type == TraceType::kLoadInformation)
                          ++loads_load;
                      })
                  .is_ok());

  h.net.run_for(500 * kMillisecond);
  LoadInfo info;
  info.cpu_utilization = 0.5;
  entity->report_load(info);
  h.net.run_for(500 * kMillisecond);

  EXPECT_GT(hearts_hb, 0);
  EXPECT_EQ(hearts_load, 0);
  EXPECT_EQ(loads_hb, 0);
  EXPECT_EQ(loads_load, 1);
}

TEST(InterestTest, UnionOfInterestsPublished) {
  TracingHarness h;
  auto entity = h.make_entity("svc-union");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto a = h.make_tracker("a");
  auto b = h.make_tracker("b");
  ASSERT_TRUE(h.track(*a, "svc-union", kCatAllUpdates,
                      [](const TracePayload&, const pubsub::Message&) {})
                  .is_ok());
  ASSERT_TRUE(h.track(*b, "svc-union", kCatNetworkMetrics,
                      [](const TracePayload&, const pubsub::Message&) {})
                  .is_ok());
  h.net.run_for(400 * kMillisecond);
  const auto view = h.services[0]->session_view("svc-union");
  EXPECT_EQ(view.effective_interest, kCatAllUpdates | kCatNetworkMetrics);
}

TEST(InterestTest, InterestExpiresWhenTrackerStopsResponding) {
  // Gauge rounds run every 300 ms (fast_config); TTL = 3 rounds. A tracker
  // that disappears stops renewing, and after TTL rounds the broker stops
  // publishing its categories.
  TracingHarness h;
  auto entity = h.make_entity("svc-ttl");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  {
    auto tracker = h.make_tracker("ephemeral");
    ASSERT_TRUE(h.track(*tracker, "svc-ttl", kCatAllUpdates,
                        [](const TracePayload&, const pubsub::Message&) {})
                    .is_ok());
    h.net.run_for(500 * kMillisecond);
    EXPECT_NE(h.services[0]->session_view("svc-ttl").effective_interest, 0);
    // Tracker object destroyed here — it will never answer another gauge.
    // (Its subscriptions survive at the broker, but interest renewals
    // stop, which is what the TTL protects against.)
  }

  // Run long enough for several gauge rounds beyond the TTL.
  h.net.run_for(3 * kSecond);
  EXPECT_EQ(h.services[0]->session_view("svc-ttl").effective_interest, 0);

  const std::uint64_t published_before =
      h.services[0]->stats().traces_published;
  h.net.run_for(1 * kSecond);
  // No interested trackers left: nothing new is published.
  EXPECT_EQ(h.services[0]->stats().traces_published, published_before);
  EXPECT_GT(h.services[0]->stats().traces_suppressed_no_interest, 0u);
}

TEST(InterestTest, GaugeProbesCarryTokensAndVerify) {
  TracingHarness h;
  auto entity = h.make_entity("svc-gauge");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("gauged");
  ASSERT_TRUE(h.track(*tracker, "svc-gauge", kCatAllUpdates,
                      [](const TracePayload&, const pubsub::Message&) {})
                  .is_ok());
  // Several gauge rounds must be answered without any rejections.
  h.net.run_for(2 * kSecond);
  EXPECT_GT(tracker->stats().gauges_answered, 2u);
  EXPECT_EQ(tracker->stats().traces_rejected, 0u);
  EXPECT_GT(h.services[0]->stats().interest_responses, 2u);
}

TEST(InterestTest, LateTrackerStartsReceivingMidStream) {
  TracingHarness h;
  auto entity = h.make_entity("svc-late");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  h.net.run_for(1 * kSecond);  // traces suppressed so far

  auto tracker = h.make_tracker("latecomer");
  int got = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-late", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++got;
                      })
                  .is_ok());
  h.net.run_for(1 * kSecond);
  EXPECT_GT(got, 3);
}

TEST(InterestTest, SecuredFlagPropagatesInGauge) {
  TracingConfig c = TracingHarness::fast_config();
  c.secure_traces = true;
  TracingHarness h(1, c);
  auto entity = h.make_entity("svc-sec-gauge");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("sec-tracker");
  ASSERT_TRUE(h.track(*tracker, "svc-sec-gauge", kCatAllUpdates,
                      [](const TracePayload&, const pubsub::Message&) {})
                  .is_ok());
  h.net.run_for(1 * kSecond);
  // The tracker received the key exactly once even though multiple gauge
  // rounds ran (it stops requesting once it has the key).
  EXPECT_EQ(tracker->stats().keys_received, 1u);
}

}  // namespace
}  // namespace et::tracing
