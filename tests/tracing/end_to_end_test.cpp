// End-to-end integration tests of the full tracing pipeline:
// TDN topic creation -> registration -> delegation -> pings -> traces ->
// tracker verification, across single- and multi-broker deployments.
#include <gtest/gtest.h>

#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

using testing::TracingHarness;

TEST(EndToEndTest, EntityRegistersAndTracingStarts) {
  TracingHarness h;
  auto entity = h.make_entity("service-1");
  const Status s = h.start_tracing(*entity);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(entity->tracing_active());
  EXPECT_FALSE(entity->trace_topic().is_nil());
  EXPECT_FALSE(entity->session_id().is_nil());
  EXPECT_TRUE(h.services[0]->has_session_for("service-1"));
  EXPECT_EQ(h.services[0]->stats().registrations, 1u);
  EXPECT_EQ(h.tdn->stats().topics_created, 1u);
}

TEST(EndToEndTest, PingsFlowAndAllsWellReachesTracker) {
  TracingHarness h;
  auto entity = h.make_entity("service-2");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("tracker-1");
  int alls_well = 0;
  ASSERT_TRUE(h.track(*tracker, "service-2", kCatAllUpdates,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kAllsWell) ++alls_well;
                      })
                  .is_ok());

  h.net.run_for(2 * kSecond);
  EXPECT_GT(entity->stats().pings_answered, 10u);
  EXPECT_GT(alls_well, 10);
  EXPECT_EQ(tracker->stats().traces_rejected, 0u);
  // Trace time: heartbeats were verified end-to-end.
  EXPECT_GE(tracker->stats().traces_received, static_cast<std::uint64_t>(alls_well));
}

TEST(EndToEndTest, TracesCrossMultipleBrokerHops) {
  TracingHarness h(/*broker_count=*/4);
  auto entity = h.make_entity("svc-far", /*broker_index=*/0);
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("watcher", /*broker_index=*/3);
  int received = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-far", kCatAllUpdates,
                      [&](const TracePayload&, const pubsub::Message&) {
                        ++received;
                      })
                  .is_ok());

  h.net.run_for(2 * kSecond);
  EXPECT_GT(received, 5);
  // Traces were forwarded through intermediate brokers.
  EXPECT_GT(h.brokers[1]->stats().forwarded, 0u);
  EXPECT_GT(h.brokers[2]->stats().forwarded, 0u);
}

TEST(EndToEndTest, StateTransitionsReachSelectiveTracker) {
  TracingHarness h;
  auto entity = h.make_entity("svc-state");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("state-watcher");
  std::vector<EntityState> seen;
  int heartbeats = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-state", kCatStateTransitions,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.state) seen.push_back(*p.state);
                        if (p.type == TraceType::kAllsWell) ++heartbeats;
                      })
                  .is_ok());
  h.net.run_for(200 * kMillisecond);

  entity->set_state(EntityState::kReady);
  h.net.run_for(200 * kMillisecond);
  entity->set_state(EntityState::kRecovering);
  h.net.run_for(200 * kMillisecond);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], EntityState::kReady);
  EXPECT_EQ(seen[1], EntityState::kRecovering);
  // Selectivity: this tracker never subscribed to AllUpdates.
  EXPECT_EQ(heartbeats, 0);
}

TEST(EndToEndTest, LoadReportsFlowToLoadSubscribers) {
  TracingHarness h;
  auto entity = h.make_entity("svc-load");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("load-watcher");
  LoadInfo seen;
  int count = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-load", kCatLoad,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.load) {
                          seen = *p.load;
                          ++count;
                        }
                      })
                  .is_ok());
  h.net.run_for(100 * kMillisecond);

  LoadInfo load;
  load.cpu_utilization = 0.75;
  load.memory_utilization = 0.5;
  load.workload = 42;
  entity->report_load(load);
  h.net.run_for(200 * kMillisecond);

  ASSERT_EQ(count, 1);
  EXPECT_EQ(seen, load);
}

TEST(EndToEndTest, FailureDetectionEscalates) {
  TracingHarness h;
  auto entity = h.make_entity("svc-dying");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("mortician");
  bool suspected = false, failed = false;
  TimePoint suspected_at = 0, failed_at = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-dying", kCatChangeNotifications,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kFailureSuspicion) {
                          suspected = true;
                          suspected_at = h.net.now();
                        }
                        if (p.type == TraceType::kFailed) {
                          failed = true;
                          failed_at = h.net.now();
                        }
                      })
                  .is_ok());

  h.net.run_for(500 * kMillisecond);
  ASSERT_FALSE(suspected);

  entity->set_responsive(false);  // crash
  h.net.run_for(5 * kSecond);

  EXPECT_TRUE(suspected);
  EXPECT_TRUE(failed);
  EXPECT_GT(failed_at, suspected_at);  // suspicion precedes failure
  const auto view = h.services[0]->session_view("svc-dying");
  EXPECT_TRUE(view.failed);
}

TEST(EndToEndTest, AdaptivePingIntervalShrinksOnMisses) {
  TracingHarness h;
  auto entity = h.make_entity("svc-flaky");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  h.net.run_for(300 * kMillisecond);
  const auto before = h.services[0]->session_view("svc-flaky");

  entity->set_responsive(false);
  h.net.run_for(1 * kSecond);
  const auto during = h.services[0]->session_view("svc-flaky");
  EXPECT_LT(during.current_ping_interval, before.current_ping_interval);

  // Recovery restores the interval and clears flags.
  entity->set_responsive(true);
  h.net.run_for(2 * kSecond);
  const auto after = h.services[0]->session_view("svc-flaky");
  EXPECT_FALSE(after.suspected);
  EXPECT_FALSE(after.failed);
  EXPECT_EQ(after.current_ping_interval, before.current_ping_interval);
}

TEST(EndToEndTest, SilentModePublishesReverting) {
  TracingHarness h;
  auto entity = h.make_entity("svc-quiet");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("observer");
  bool reverting = false;
  ASSERT_TRUE(h.track(*tracker, "svc-quiet", kCatChangeNotifications,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kRevertingToSilentMode) {
                          reverting = true;
                        }
                      })
                  .is_ok());
  h.net.run_for(200 * kMillisecond);

  entity->stop_tracing();
  h.net.run_for(500 * kMillisecond);
  EXPECT_TRUE(reverting);
  EXPECT_FALSE(h.services[0]->has_session_for("svc-quiet"));
  EXPECT_EQ(h.services[0]->active_sessions(), 0u);
}

TEST(EndToEndTest, NoTracesWithoutInterest) {
  TracingHarness h;
  auto entity = h.make_entity("svc-lonely");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  h.net.run_for(2 * kSecond);
  // Pings flow, but no tracker ever asked for anything.
  EXPECT_GT(h.services[0]->stats().pings_sent, 0u);
  EXPECT_GT(h.services[0]->stats().traces_suppressed_no_interest, 0u);
  EXPECT_EQ(h.services[0]->stats().traces_published, 0u);
}

TEST(EndToEndTest, MultipleTrackersAllReceive) {
  TracingHarness h;
  auto entity = h.make_entity("svc-popular");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  constexpr int kTrackers = 5;
  std::vector<std::unique_ptr<Tracker>> trackers;
  std::vector<int> counts(kTrackers, 0);
  for (int i = 0; i < kTrackers; ++i) {
    trackers.push_back(h.make_tracker("t" + std::to_string(i)));
    ASSERT_TRUE(h.track(*trackers.back(), "svc-popular", kCatAllUpdates,
                        [&counts, i](const TracePayload&,
                                     const pubsub::Message&) {
                          ++counts[i];
                        })
                    .is_ok());
  }
  h.net.run_for(1 * kSecond);
  for (int i = 0; i < kTrackers; ++i) {
    EXPECT_GT(counts[i], 3) << "tracker " << i;
  }
}

TEST(EndToEndTest, NetworkMetricsReportLinkBehaviour) {
  TracingHarness h;
  auto entity = h.make_entity("svc-metrics");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());

  auto tracker = h.make_tracker("net-watcher");
  NetworkMetrics last;
  int count = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-metrics", kCatNetworkMetrics,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.metrics) {
                          last = *p.metrics;
                          ++count;
                        }
                      })
                  .is_ok());
  h.net.run_for(2 * kSecond);
  ASSERT_GT(count, 0);
  // Round trip over two 1 ms links is ~4 ms (entity->broker via broker).
  EXPECT_GT(last.mean_rtt_ms, 0.5);
  EXPECT_LT(last.mean_rtt_ms, 50.0);
  EXPECT_EQ(last.loss_rate, 0.0);
}

TEST(EndToEndTest, OnlyTheHostingBrokerMintsASession) {
  // Regression: the registration subscription must not propagate, or every
  // broker in the overlay creates a phantom session (with phantom pings,
  // duplicate traces and spurious failure detection).
  TracingHarness h(/*broker_count=*/3);
  auto entity = h.make_entity("svc-single-home", /*broker_index=*/1);
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  h.net.run_for(500 * kMillisecond);
  EXPECT_EQ(h.services[0]->active_sessions(), 0u);
  EXPECT_EQ(h.services[1]->active_sessions(), 1u);
  EXPECT_EQ(h.services[2]->active_sessions(), 0u);
  EXPECT_EQ(h.services[0]->stats().registrations, 0u);
  EXPECT_EQ(h.services[2]->stats().registrations, 0u);

  // And a remote tracker sees each state transition exactly once.
  auto tracker = h.make_tracker("dedup-check", 2);
  int ready_count = 0;
  ASSERT_TRUE(h.track(*tracker, "svc-single-home", kCatStateTransitions,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        if (p.type == TraceType::kReady) ++ready_count;
                      })
                  .is_ok());
  entity->set_state(EntityState::kReady);
  h.net.run_for(300 * kMillisecond);
  EXPECT_EQ(ready_count, 1);
}

TEST(EndToEndTest, ReRegistrationReplacesSession) {
  TracingHarness h;
  auto entity = h.make_entity("svc-again");
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  const Uuid first_session = entity->session_id();
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  // A fresh topic + session replaces the old one; broker holds exactly one.
  EXPECT_EQ(h.services[0]->active_sessions(), 1u);
  EXPECT_NE(entity->session_id(), first_session);
}

}  // namespace
}  // namespace et::tracing
