// Durability chaos tests (ctest -L chaos, DESIGN.md §16): the
// restart-with-state / restart-cold schedule steps and the
// audit-after-partition ledger check, driven through ScenarioDeployment.
//
//   * TDN restart-with-state recovers every advertisement from the
//     snapshot+WAL store and serves discovery WITHOUT re-advertisement;
//     restart-cold loses them (re-advertisement is the only way back);
//   * broker restart-with-state preserves the blacklist and strike
//     counters earned before the crash; cold forgives everything;
//   * a partition/heal run with state restarts passes I1/I2 AND the
//     ledger audit: every chain verifies, no phantom or reordered
//     history on any tracker;
//   * same-seed determinism: timelines, schedule action logs and ledger
//     head digests are byte-identical across independent runs;
//   * a SocketNetwork kill-and-recover smoke: a TDN process dies without
//     checkpointing, a new process over the same state directory serves
//     the topic over real TCP.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/chaos/oracle.h"
#include "src/chaos/scenario.h"
#include "src/chaos/schedule.h"
#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/transport/socket_network.h"
#include "src/transport/virtual_network.h"

namespace et::chaos {
namespace {

using transport::VirtualTimeNetwork;

void start_tracing(VirtualTimeNetwork& net, tracing::TracedEntity& e) {
  Status out = internal_error("callback never ran");
  bool done = false;
  e.start_tracing({}, [&](const Status& s) {
    out = s;
    done = true;
  });
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
  ASSERT_TRUE(done && out.is_ok()) << out.to_string();
}

void track(VirtualTimeNetwork& net, tracing::Tracker& t,
           const std::string& entity_id, tracing::Tracker::TraceHandler h) {
  Status out = internal_error("callback never ran");
  bool done = false;
  t.track(entity_id, tracing::kCatAll, std::move(h), [&](const Status& s) {
    out = s;
    done = true;
  });
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
  net.run_for(20 * kMillisecond);
  ASSERT_TRUE(done && out.is_ok()) << out.to_string();
}

std::string hex(BytesView b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (const std::uint8_t c : b) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

ScenarioDeployment::Options durable_opts(std::uint64_t seed,
                                         std::size_t brokers = 4,
                                         std::size_t tdns = 1) {
  ScenarioDeployment::Options opts;
  opts.overlay.shape = OverlaySpec::Shape::kChain;
  opts.overlay.brokers = brokers;
  opts.seed = seed;
  opts.tdn_replicas = tdns;
  opts.durability.enabled = true;
  return opts;
}

// --- TDN restart-with-state vs restart-cold -----------------------------

TEST(DurabilityChaos, TdnRestartWithStateServesDiscoveryWithoutReadvertisement) {
  VirtualTimeNetwork net(71);
  ScenarioDeployment dep(net, durable_opts(71));
  ASSERT_TRUE(dep.durable());
  ASSERT_TRUE(dep.tdn(0).durable());
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  dep.add_entity("entity-0", 0);
  net.run_for(20 * kMillisecond);
  start_tracing(net, dep.entity(0));

  const std::size_t ads = dep.tdn(0).advertisement_count();
  ASSERT_GE(ads, 1u);
  const std::size_t created = dep.tdn(0).stats().topics_created;

  // Process dies, state survives: every advertisement and broker
  // registration must come back from the store — no re-advertisement,
  // no re-registration.
  const std::size_t broker_entries = dep.tdn(0).broker_count();
  dep.restart_tdn_state(0, /*with_state=*/true);
  net.run_for(20 * kMillisecond);
  EXPECT_EQ(dep.tdn(0).advertisement_count(), ads);
  EXPECT_EQ(dep.tdn(0).broker_count(), broker_entries);
  EXPECT_GE(dep.tdn(0).stats().records_recovered, ads);
  EXPECT_EQ(dep.tdn(0).stats().topics_created, 0u)
      << "recovery must replay, not re-create";

  // Discovery is served from recovered state: a tracker arriving after
  // the restart resolves the entity's trace topic and starts receiving.
  dep.add_tracker("tracker-0", 3);
  net.run_for(20 * kMillisecond);
  std::size_t traces = 0;
  track(net, dep.tracker(0), "entity-0",
        [&](const tracing::TracePayload&, const pubsub::Message&) {
          ++traces;
        });
  net.run_for(2 * kSecond);
  EXPECT_GT(traces, 0u);
  (void)created;

  // Cold restart: the disk is gone too. Nothing survives.
  dep.restart_tdn_state(0, /*with_state=*/false);
  net.run_for(20 * kMillisecond);
  EXPECT_EQ(dep.tdn(0).advertisement_count(), 0u);
  EXPECT_EQ(dep.tdn(0).broker_count(), 0u);
}

// A checkpoint folds the WAL into the snapshot; recovery after it must
// yield the same state through the snapshot path.
TEST(DurabilityChaos, TdnCheckpointThenRestartRecoversFromSnapshot) {
  VirtualTimeNetwork net(72);
  ScenarioDeployment dep(net, durable_opts(72));
  dep.register_brokers();
  net.run_for(20 * kMillisecond);
  dep.add_entity("entity-0", 0);
  net.run_for(20 * kMillisecond);
  start_tracing(net, dep.entity(0));

  const std::size_t ads = dep.tdn(0).advertisement_count();
  ASSERT_GE(ads, 1u);
  ASSERT_TRUE(dep.tdn(0).checkpoint().is_ok());
  EXPECT_EQ(dep.tdn(0).store().wal_records(), 0u);

  dep.restart_tdn_state(0, /*with_state=*/true);
  net.run_for(20 * kMillisecond);
  EXPECT_TRUE(dep.tdn(0).store().snapshot_loaded());
  EXPECT_EQ(dep.tdn(0).advertisement_count(), ads);
}

// --- broker misbehaviour durability -------------------------------------

TEST(DurabilityChaos, BrokerRestartWithStatePreservesBlacklist) {
  VirtualTimeNetwork net(73);
  ScenarioDeployment dep(net, durable_opts(73));
  ASSERT_TRUE(dep.broker(0).misbehaviour_durable());
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  const transport::NodeId victim =
      net.add_node("victim", [](transport::NodeId, BytesView) {});
  pubsub::Broker& b = dep.broker(0);
  for (int i = 0; i < 8; ++i) b.report_misbehaviour(victim, "chaos probe");
  ASSERT_TRUE(b.is_blacklisted(victim));
  const std::size_t blacklisted = b.blacklist_size();

  dep.restart_broker_state(0, /*with_state=*/true);
  net.run_for(20 * kMillisecond);
  EXPECT_TRUE(b.is_blacklisted(victim))
      << "restart-with-state must not forgive the blacklist";
  EXPECT_EQ(b.blacklist_size(), blacklisted);

  // One more strike must not need the whole threshold again: the counter
  // itself was recovered, so the endpoint stays over the line.
  b.report_misbehaviour(victim, "chaos probe");
  EXPECT_TRUE(b.is_blacklisted(victim));

  dep.restart_broker_state(0, /*with_state=*/false);
  net.run_for(20 * kMillisecond);
  EXPECT_FALSE(b.is_blacklisted(victim)) << "cold restart forgives";
  EXPECT_EQ(b.blacklist_size(), 0u);
}

// --- audit-after-partition ----------------------------------------------

struct DurableRun {
  std::vector<std::string> timeline;
  std::vector<std::string> actions;
  std::vector<std::string> violations;
  std::vector<std::string> audit;
  std::vector<std::string> heads;  // per-broker ledger head digests (hex)
};

/// Partition the chain, heal it, then state-restart TDN 0 and broker 0;
/// sample truth throughout and audit the ledgers at the end.
DurableRun run_durable_scenario(std::uint64_t seed) {
  VirtualTimeNetwork net(seed);
  ScenarioDeployment dep(net, durable_opts(seed));
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  dep.add_entity("entity-0", 0);
  net.run_for(20 * kMillisecond);
  dep.add_tracker("tracker-0", 3);
  net.run_for(20 * kMillisecond);
  start_tracing(net, dep.entity(0));

  AvailabilityOracle oracle;
  track(net, dep.tracker(0), "entity-0",
        oracle.tap("tracker-0", "entity-0", net));

  FailureSchedule schedule;
  schedule.partition(1 * kSecond, {{0, 1}, {2, 3}})
      .heal(5 * kSecond)
      .tdn_restart_with_state(7 * kSecond, {0})
      .restart_with_state(7 * kSecond + 100 * kMillisecond, {0});

  ScheduleEngine engine(net, dep.topology());
  dep.attach_restart_handler(engine);
  engine.run(schedule);

  dep.sample_truth(oracle, net.now());
  for (Duration t = 0; t < 12 * kSecond; t += 50 * kMillisecond) {
    net.run_for(50 * kMillisecond);
    dep.sample_truth(oracle, net.now());
  }

  DurableRun out;
  out.timeline = oracle.timeline();
  out.actions = engine.action_log();
  const Duration grace = 50 * kMillisecond + 2 * kSecond +
                         dep.config().recovery_announce_delay;
  out.violations =
      oracle.check_invariants(detection_bound(dep.config()), grace);
  out.audit = dep.audit_ledgers(oracle);
  for (std::size_t i = 0; i < dep.broker_count(); ++i) {
    for (const std::string& topic : dep.ledger(i).topics()) {
      out.heads.push_back(std::to_string(i) + "/" + topic + "=" +
                          hex(dep.ledger(i).head_digest(topic)));
    }
  }
  return out;
}

TEST(DurabilityChaos, AuditAfterPartitionPassesInvariantsAndChains) {
  const DurableRun r = run_durable_scenario(8101);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front() << " (+" << r.violations.size() - 1 << " more)";
  EXPECT_TRUE(r.audit.empty())
      << r.audit.front() << " (+" << r.audit.size() - 1 << " more)";
  EXPECT_FALSE(r.heads.empty()) << "traces must have been ledgered";
  // The schedule's restart steps actually ran.
  bool saw_state_restart = false;
  for (const std::string& a : r.actions) {
    if (a.find("restart-state") != std::string::npos) {
      saw_state_restart = true;
    }
  }
  EXPECT_TRUE(saw_state_restart);
}

// A deliberately tampered chain must fail the audit — the detection half
// of audit_after_partition, driven through the deployment API.
TEST(DurabilityChaos, AuditFlagsTamperedLedger) {
  VirtualTimeNetwork net(8102);
  ScenarioDeployment dep(net, durable_opts(8102));
  dep.register_brokers();
  net.run_for(20 * kMillisecond);
  dep.add_entity("entity-0", 0);
  net.run_for(20 * kMillisecond);
  dep.add_tracker("tracker-0", 3);
  net.run_for(20 * kMillisecond);
  start_tracing(net, dep.entity(0));
  track(net, dep.tracker(0), "entity-0",
        [](const tracing::TracePayload&, const pubsub::Message&) {});
  net.run_for(2 * kSecond);

  // Forge history: append a record whose prev_digest ignores the chain
  // head. The auditor must name the broker.
  persist::TraceLedger& ledger = dep.ledger(0);
  ASSERT_FALSE(ledger.topics().empty());
  const std::string topic = ledger.topics().front();
  const std::size_t len = ledger.records(topic).size();
  ASSERT_GE(len, 1u);
  std::vector<persist::LedgerRecord> forged = ledger.records(topic);
  forged[len - 1].payload.push_back(0xee);  // tamper the stored body
  EXPECT_FALSE(persist::LedgerAuditor::verify_chain(forged).ok);
}

// --- same-seed determinism ----------------------------------------------

TEST(DurabilityChaos, SameSeedSameTimelineActionsAndLedgerHeads) {
  const DurableRun a = run_durable_scenario(4242);
  const DurableRun b = run_durable_scenario(4242);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.heads, b.heads);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.audit, b.audit);
}

// --- SocketNetwork kill-and-recover smoke -------------------------------

// A real-TCP TDN dies without checkpointing; a fresh instance over the
// same state directory serves the topic to a discovery client.
TEST(DurabilitySocketSmoke, TdnKillAndRecoverServesDiscovery) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "et-durability-socket-smoke";
  fs::remove_all(dir);

  transport::SocketNetwork net(/*seed=*/91);
  transport::LinkParams fast = transport::LinkParams::ideal_profile();
  fast.base_latency = 1 * kMillisecond;

  Rng rng(91);
  constexpr std::size_t kBits = 512;
  crypto::CertificateAuthority ca("ca", rng, kBits);
  const crypto::Identity tdn_id = crypto::Identity::create(
      "tdn-0", ca, rng, net.now(), 3600 * kSecond, kBits);

  const auto settle = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  const auto await = [&](const bool& done) {
    for (int i = 0; i < 100 && !done; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };

  {
    discovery::Tdn tdn(net, {tdn_id, ca.public_key(), /*seed=*/5,
                             (dir / "tdn-0").string(),
                             persist::FsyncPolicy::kEveryAppend});
    discovery::DiscoveryClient creator(
        net, crypto::Identity::create("entity-1", ca, rng, net.now(),
                                      3600 * kSecond, kBits));
    creator.attach_tdn(tdn.node(), fast);
    settle();

    Result<discovery::TopicAdvertisement> created(
        internal_error("no callback"));
    bool done = false;
    creator.create_topic("Availability/Traces/entity-1", {}, 3600 * kSecond,
                         [&](Result<discovery::TopicAdvertisement> r) {
                           created = std::move(r);
                           done = true;
                         });
    await(done);
    ASSERT_TRUE(done && created.ok()) << created.status().to_string();
    settle();
    // Process killed here: the Tdn is destroyed WITHOUT a checkpoint —
    // recovery must come from the write-ahead log alone.
  }

  {
    discovery::Tdn revived(net, {tdn_id, ca.public_key(), /*seed=*/5,
                                 (dir / "tdn-0").string(),
                                 persist::FsyncPolicy::kEveryAppend});
    EXPECT_EQ(revived.advertisement_count(), 1u);
    EXPECT_GE(revived.stats().records_recovered, 1u);

    discovery::DiscoveryClient tracker(
        net, crypto::Identity::create("tracker-1", ca, rng, net.now(),
                                      3600 * kSecond, kBits));
    tracker.attach_tdn(revived.node(), fast);
    settle();

    Result<std::vector<discovery::TopicAdvertisement>> found(
        internal_error("no callback"));
    bool done = false;
    tracker.discover("Availability/Traces/entity-1",
                     [&](Result<std::vector<discovery::TopicAdvertisement>> r) {
                       found = std::move(r);
                       done = true;
                     });
    await(done);
    ASSERT_TRUE(done && found.ok()) << found.status().to_string();
    ASSERT_EQ(found->size(), 1u);
    EXPECT_EQ((*found)[0].descriptor(), "Availability/Traces/entity-1");
    settle();
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace et::chaos
