// Chaos validation of the §14 coalescing path (ctest -L chaos): the
// availability oracle must reach the same verdicts over coalesced digest
// streams as it does over per-entity heartbeats. Rack loss (a host and
// all its co-hosted members vanishing at once) must surface every member
// through the suspect ladder with ZERO false suspicions for members on
// surviving racks, and the oracle's I1/I2 safety invariants must hold —
// coalescing changes the wire format, never the semantics.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/chaos/oracle.h"
#include "src/tracing/entity_host.h"
#include "src/transport/fault_injector.h"
#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

using chaos::AvailabilityOracle;
using chaos::OracleReport;
using chaos::PairReport;
using testing::TracingHarness;

constexpr std::size_t kMembersPerRack = 24;

/// Chaos ladder thresholds on top of the digest-enabled fast config.
TracingConfig digest_chaos_config() {
  TracingConfig c = TracingHarness::fast_config();  // 100 ms pings
  c.digest_interval = 100 * kMillisecond;
  c.timer_wheel_tick = 20 * kMillisecond;
  c.suspicion_misses = 3;
  c.failed_misses = 6;
  c.disconnect_misses = 9;
  return c;
}

std::vector<std::string> rack_members(const std::string& rack) {
  std::vector<std::string> ids;
  ids.reserve(kMembersPerRack);
  for (std::size_t i = 0; i < kMembersPerRack; ++i) {
    ids.push_back(rack + "/m" + std::to_string(i));
  }
  return ids;
}

/// One rack: an EntityHost carrying kMembersPerRack members, registered
/// against `broker_index` of the harness.
std::unique_ptr<EntityHost> make_rack(TracingHarness& h,
                                      const std::string& rack,
                                      std::size_t broker_index,
                                      const TracingConfig& config) {
  auto host = std::make_unique<EntityHost>(h.net, h.make_identity(rack),
                                           h.anchors, config,
                                           h.rng.next_u64());
  host->attach_tdn(h.tdn->node(), TracingHarness::link());
  host->connect_broker(h.brokers.at(broker_index)->node(),
                       TracingHarness::link());
  h.net.run_for(20 * kMillisecond);

  Status reg = internal_error("callback never ran");
  bool done = false;
  host->register_entities({}, rack_members(rack), [&](const Status& s) {
    reg = s;
    done = true;
  });
  for (int i = 0; i < 100 && !done; ++i) h.net.run_for(50 * kMillisecond);
  EXPECT_TRUE(reg.is_ok()) << rack << ": " << reg.to_string();
  return host;
}

/// Subscribes the tracker to a whole rack, routing every expanded
/// per-member observation into that member's oracle tap.
void track_rack(TracingHarness& h, Tracker& tracker, AvailabilityOracle& oracle,
                const std::string& rack) {
  auto taps =
      std::make_shared<std::map<std::string, Tracker::TraceHandler>>();
  for (const std::string& id : rack_members(rack)) {
    (*taps)[id] = oracle.tap(tracker.tracker_id(), id, h.net);
  }
  Status st = internal_error("callback never ran");
  bool done = false;
  tracker.track_host(
      rack, kCatAll,
      [taps](const TracePayload& p, const pubsub::Message& m) {
        // Digest expansion already happened inside the tracker; by here
        // every observation is per-member.
        const auto it = taps->find(p.entity_id);
        if (it != taps->end()) it->second(p, m);
      },
      [&](const Status& s) {
        st = s;
        done = true;
      });
  for (int i = 0; i < 100 && !done; ++i) h.net.run_for(50 * kMillisecond);
  h.net.run_for(20 * kMillisecond);
  ASSERT_TRUE(st.is_ok()) << rack << ": " << st.to_string();
}

void set_rack_truth(AvailabilityOracle& oracle, const std::string& tracker_id,
                    const std::string& rack, bool up, TimePoint at) {
  for (const std::string& id : rack_members(rack)) {
    oracle.set_truth(tracker_id, id, up, at);
  }
}

const PairReport& pair_for(const OracleReport& r, const std::string& entity) {
  for (const PairReport& p : r.pairs) {
    if (p.entity_id == entity) return p;
  }
  ADD_FAILURE() << "no pair report for " << entity;
  static const PairReport kEmpty;
  return kEmpty;
}

TEST(DigestChaosTest, RackLossSurfacesEveryMemberWithZeroFalseSuspicions) {
  const TracingConfig config = digest_chaos_config();
  TracingHarness h(/*broker_count=*/3, config, /*seed=*/20260809);
  auto rack_a = make_rack(h, "rack-a", 0, config);
  auto rack_b = make_rack(h, "rack-b", 1, config);
  auto tracker = h.make_tracker("oracle-watcher", 2);

  AvailabilityOracle oracle;
  track_rack(h, *tracker, oracle, "rack-a");
  track_rack(h, *tracker, oracle, "rack-b");
  set_rack_truth(oracle, tracker->tracker_id(), "rack-a", true, h.net.now());
  set_rack_truth(oracle, tracker->tracker_id(), "rack-b", true, h.net.now());

  // Steady state long enough for several digest rounds on both racks.
  h.net.run_for(1 * kSecond);
  EXPECT_GT(h.services[0]->emitter_stats().digests_published, 0u);
  EXPECT_GT(h.services[1]->emitter_stats().digests_published, 0u);

  // Rack loss: the host (and with it all 24 members) drops off the
  // network at once. Ground truth flips for rack-a only.
  h.net.faults().blackhole(rack_a->client().node(), h.brokers[0]->node());
  set_rack_truth(oracle, tracker->tracker_id(), "rack-a", false, h.net.now());

  // Ride out the whole ladder: 9 missed pings to DISCONNECT, plus digest
  // flush and overlay propagation.
  h.net.run_for(3 * kSecond);

  const OracleReport report = oracle.report(h.net.now(), /*grace=*/2 * kSecond);
  // The headline §14 claim: coalescing introduces no false suspicions.
  EXPECT_EQ(report.false_suspicions(), 0u);
  for (const std::string& id : rack_members("rack-a")) {
    const PairReport& p = pair_for(report, id);
    // Every lost member was individually surfaced...
    EXPECT_GE(p.suspicion_signals, 1u) << id;
    EXPECT_EQ(p.truth_down_edges, 1u) << id;
    EXPECT_GE(p.detected_down_edges, 1u) << id;
  }
  for (const std::string& id : rack_members("rack-b")) {
    // ...while the surviving rack never drew a single suspicion.
    EXPECT_EQ(pair_for(report, id).suspicion_signals, 0u) << id;
  }

  // Safety invariants over the merged truth/observation timelines: no
  // availability signal beyond the detection bound, RECOVERING only with
  // a real failover behind it.
  const Duration detection_bound =
      config.disconnect_misses * config.ping_interval +
      2 * config.digest_interval;
  EXPECT_EQ(oracle.check_invariants(detection_bound, 500 * kMillisecond),
            std::vector<std::string>{});

  // The verdicts above were reached over the coalesced wire format.
  EXPECT_GT(tracker->stats().digests_received, 0u);
  EXPECT_GT(tracker->stats().digest_entries_expanded,
            4 * tracker->stats().digests_received);
}

TEST(DigestChaosTest, MemberBlackoutAndRecoveryStaysInvariantClean) {
  const TracingConfig config = digest_chaos_config();
  TracingHarness h(/*broker_count=*/3, config, /*seed=*/4242);
  auto rack = make_rack(h, "rack-a", 0, config);
  auto tracker = h.make_tracker("oracle-watcher", 2);

  AvailabilityOracle oracle;
  track_rack(h, *tracker, oracle, "rack-a");
  set_rack_truth(oracle, tracker->tracker_id(), "rack-a", true, h.net.now());
  h.net.run_for(500 * kMillisecond);

  // One member blacks out while its host stays healthy: the host's ping
  // responses simply stop vouching for it.
  const std::string victim = "rack-a/m7";
  rack->set_responsive(victim, false);
  oracle.set_truth(tracker->tracker_id(), victim, false, h.net.now());
  h.net.run_for(2 * kSecond);

  // Recovery: responsive again, urgent (non-digested) ALLS_WELL restores.
  rack->set_responsive(victim, true);
  oracle.set_truth(tracker->tracker_id(), victim, true, h.net.now());
  h.net.run_for(1500 * kMillisecond);

  const OracleReport report = oracle.report(h.net.now(), /*grace=*/1 * kSecond);
  EXPECT_EQ(report.false_suspicions(), 0u);
  const PairReport& p = pair_for(report, victim);
  EXPECT_GE(p.suspicion_signals, 1u);
  EXPECT_GE(p.detected_down_edges, 1u);
  for (const std::string& id : rack_members("rack-a")) {
    if (id != victim) {
      EXPECT_EQ(pair_for(report, id).suspicion_signals, 0u) << id;
    }
  }
  const Duration detection_bound =
      config.disconnect_misses * config.ping_interval +
      2 * config.digest_interval;
  EXPECT_EQ(oracle.check_invariants(detection_bound, 500 * kMillisecond),
            std::vector<std::string>{});
  EXPECT_GT(tracker->stats().digests_received, 0u);
}

}  // namespace
}  // namespace et::tracing
