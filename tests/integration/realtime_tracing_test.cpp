// Integration tests on the wall-clock RealTimeNetwork backend — the same
// code paths the benchmarks use, including thread interleavings that the
// deterministic backend can't produce. Kept small/fast: one broker chain,
// short ping intervals, 512-bit keys.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/realtime_network.h"

namespace et::tracing {
namespace {

constexpr std::size_t kBits = 512;

struct RealTimeFixture : ::testing::Test {
  RealTimeFixture() : rng(55), ca("rt-ca", rng, kBits) {
    crypto::Identity tdn_id = crypto::Identity::create(
        "tdn-0", ca, rng, net.now(), 3600 * kSecond, kBits);
    anchors = TrustAnchors{ca.public_key(), tdn_id.keys.public_key};
    tdn = std::make_unique<discovery::Tdn>(net, std::move(tdn_id),
                                           ca.public_key(), 2);
    config.ping_interval = 30 * kMillisecond;
    config.min_ping_interval = 10 * kMillisecond;
    config.gauge_interval = 100 * kMillisecond;
    config.metrics_interval = 150 * kMillisecond;
    config.delegate_key_bits = kBits;

    topo = std::make_unique<pubsub::Topology>(net);
    brokers =
        topo->make_chain(2, link(), "broker", [&](const std::string& name) {
          pubsub::Broker::Options o;
          o.name = name;
          install_trace_filter(o, anchors, net);
          return o;
        });
    for (auto* b : brokers) {
      services.push_back(std::make_unique<TracingBrokerService>(
          *b, anchors, config, 321));
    }
  }

  ~RealTimeFixture() override { net.stop(); }

  static transport::LinkParams link() {
    transport::LinkParams p = transport::LinkParams::ideal_profile();
    p.base_latency = 500;  // 0.5 ms
    return p;
  }

  crypto::Identity identity(const std::string& id) {
    return crypto::Identity::create(id, ca, rng, net.now(), 3600 * kSecond,
                                    kBits);
  }

  Status start_blocking(TracedEntity& e) {
    std::atomic<int> state{0};
    Status result = internal_error("timed out");
    e.start_tracing({}, [&](const Status& s) {
      result = s;
      state.store(1);
    });
    for (int i = 0; i < 2000 && state.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return state.load() ? result : internal_error("timed out");
  }

  transport::RealTimeNetwork net;
  Rng rng;
  crypto::CertificateAuthority ca;
  TrustAnchors anchors;
  TracingConfig config;
  std::unique_ptr<discovery::Tdn> tdn;
  std::unique_ptr<pubsub::Topology> topo;
  std::vector<pubsub::Broker*> brokers;
  std::vector<std::unique_ptr<TracingBrokerService>> services;
};

TEST_F(RealTimeFixture, FullPipelineUnderRealThreads) {
  TracedEntity entity(net, identity("rt-entity"), anchors, config, 1);
  entity.attach_tdn(tdn->node(), link());
  entity.connect_broker(brokers[0]->node(), link());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(start_blocking(entity).is_ok());

  Tracker tracker(net, identity("rt-tracker"), anchors, 2);
  tracker.attach_tdn(tdn->node(), link());
  tracker.connect_broker(brokers[1]->node(), link());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  std::atomic<int> heartbeats{0};
  std::atomic<int> ready_states{0};
  tracker.track("rt-entity", kCatAllUpdates | kCatStateTransitions,
                [&](const TracePayload& p, const pubsub::Message&) {
                  if (p.type == TraceType::kAllsWell) heartbeats.fetch_add(1);
                  if (p.type == TraceType::kReady) ready_states.fetch_add(1);
                });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  entity.set_state(EntityState::kReady);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  EXPECT_GT(heartbeats.load(), 3);
  EXPECT_EQ(ready_states.load(), 1);
  EXPECT_EQ(tracker.stats().traces_rejected, 0u);
  // Halt network threads before the test-local entity/tracker are
  // destroyed; the fixture's stop() only protects fixture members.
  net.stop();
}

TEST_F(RealTimeFixture, ManyEntitiesRegisterConcurrently) {
  // Exercises the subscribe/publish ordering race fixed in the transport:
  // registrations issued while other sessions generate ping load.
  constexpr int kEntities = 6;
  std::vector<std::unique_ptr<TracedEntity>> entities;
  for (int i = 0; i < kEntities; ++i) {
    auto e = std::make_unique<TracedEntity>(
        net, identity("rt-e" + std::to_string(i)), anchors, config,
        10 + i);
    e->attach_tdn(tdn->node(), link());
    e->connect_broker(brokers[i % 2]->node(), link());
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(start_blocking(*e).is_ok()) << "entity " << i;
    entities.push_back(std::move(e));
  }
  EXPECT_EQ(services[0]->active_sessions() + services[1]->active_sessions(),
            static_cast<std::size_t>(kEntities));
  net.stop();  // before the test-local entities are destroyed
}

TEST_F(RealTimeFixture, FailureDetectionOnWallClock) {
  TracedEntity entity(net, identity("rt-dying"), anchors, config, 3);
  entity.attach_tdn(tdn->node(), link());
  entity.connect_broker(brokers[0]->node(), link());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(start_blocking(entity).is_ok());

  Tracker tracker(net, identity("rt-watcher"), anchors, 4);
  tracker.attach_tdn(tdn->node(), link());
  tracker.connect_broker(brokers[0]->node(), link());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::atomic<bool> failed{false};
  tracker.track("rt-dying", kCatChangeNotifications,
                [&](const TracePayload& p, const pubsub::Message&) {
                  if (p.type == TraceType::kFailed) failed.store(true);
                });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  entity.set_responsive(false);
  // 6 misses at 30->10ms adaptive interval: well under a second.
  for (int i = 0; i < 400 && !failed.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(failed.load());
  net.stop();  // before the test-local entity/tracker are destroyed
}

}  // namespace
}  // namespace et::tracing
