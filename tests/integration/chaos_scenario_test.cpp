// Chaos scenario tests (ctest -L chaos): declarative failure schedules
// driven through ScenarioDeployment overlays with the availability oracle
// checking ground truth against what trackers actually observed.
//
//   * oracle invariants (I1: no availability signal while partitioned
//     past the detection bound; I2: RECOVERING implies a real failover)
//     pinned on three small topologies;
//   * seed determinism: same seed => byte-identical oracle timeline and
//     schedule action log across independent runs;
//   * the 128-broker cluster-of-stars rack-loss sweep from the ROADMAP,
//     deterministic and invariant-clean;
//   * a RealTimeNetwork smoke of the same schedule shape (TSan-clean).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/chaos/oracle.h"
#include "src/chaos/scenario.h"
#include "src/chaos/schedule.h"
#include "src/transport/fault_injector.h"
#include "src/transport/realtime_network.h"
#include "src/transport/virtual_network.h"

namespace et::chaos {
namespace {

using transport::VirtualTimeNetwork;

/// Drives start_tracing to completion on the virtual clock.
void start_tracing(VirtualTimeNetwork& net, tracing::TracedEntity& e) {
  Status out = internal_error("callback never ran");
  bool done = false;
  e.start_tracing({}, [&](const Status& s) {
    out = s;
    done = true;
  });
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
  ASSERT_TRUE(done && out.is_ok()) << out.to_string();
}

/// Drives track() to completion on the virtual clock.
void track(VirtualTimeNetwork& net, tracing::Tracker& t,
           const std::string& entity_id, tracing::Tracker::TraceHandler h) {
  Status out = internal_error("callback never ran");
  bool done = false;
  t.track(entity_id, tracing::kCatAll, std::move(h), [&](const Status& s) {
    out = s;
    done = true;
  });
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
  net.run_for(20 * kMillisecond);
  ASSERT_TRUE(done && out.is_ok()) << out.to_string();
}

/// Result of one deterministic virtual-time scenario run.
struct RunResult {
  std::vector<std::string> timeline;
  std::vector<std::string> actions;
  OracleReport report;
  std::vector<std::string> violations;
  std::size_t diameter = 0;
};

/// Builds the deployment, wires tracker[i] to every entity, runs the
/// schedule while sampling truth every `slice`, and reports. Entities sit
/// on `entity_brokers`, trackers on `tracker_brokers`.
RunResult run_scenario(const OverlaySpec& overlay,
                       const FailureSchedule& schedule, std::uint64_t seed,
                       const std::vector<std::size_t>& entity_brokers,
                       const std::vector<std::size_t>& tracker_brokers,
                       Duration total, Duration slice = 50 * kMillisecond,
                       std::size_t tdn_replicas = 1) {
  VirtualTimeNetwork net(seed);
  ScenarioDeployment::Options opts;
  opts.overlay = overlay;
  opts.seed = seed;
  opts.tdn_replicas = tdn_replicas;
  ScenarioDeployment dep(net, opts);
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  for (std::size_t i = 0; i < entity_brokers.size(); ++i) {
    dep.add_entity("entity-" + std::to_string(i), entity_brokers[i]);
    net.run_for(20 * kMillisecond);
  }
  for (std::size_t i = 0; i < tracker_brokers.size(); ++i) {
    dep.add_tracker("tracker-" + std::to_string(i), tracker_brokers[i]);
    net.run_for(20 * kMillisecond);
  }
  for (std::size_t e = 0; e < dep.entity_count(); ++e) {
    start_tracing(net, dep.entity(e));
  }
  AvailabilityOracle oracle;
  for (std::size_t t = 0; t < dep.tracker_count(); ++t) {
    for (std::size_t e = 0; e < dep.entity_count(); ++e) {
      track(net, dep.tracker(t), dep.entity(e).entity_id(),
            oracle.tap(dep.tracker(t).tracker_id(),
                       dep.entity(e).entity_id(), net));
    }
  }

  ScheduleEngine engine(net, dep.topology());
  engine.run(schedule);
  dep.sample_truth(oracle, net.now());
  for (Duration t = 0; t < total; t += slice) {
    net.run_for(slice);
    dep.sample_truth(oracle, net.now());
  }

  RunResult out;
  out.timeline = oracle.timeline();
  out.actions = engine.action_log();
  out.report = oracle.report(net.now(), 2 * kSecond);
  // Grace: one sampling slice for truth quantization plus overlay
  // propagation plus the post-failover announcement delay.
  const Duration grace =
      slice + 2 * kSecond + dep.config().recovery_announce_delay;
  out.violations =
      oracle.check_invariants(detection_bound(dep.config()), grace);
  out.diameter = dep.topology().diameter();
  return out;
}

// --- invariant pins on three small topologies ---------------------------

/// Crash-and-restart of the entity's hosting broker on a given shape:
/// invariants must hold, the episode must be detected, and the entity
/// must have failed over (RECOVERING backed by a real failover).
void pin_invariants_on(const OverlaySpec& overlay, std::size_t entity_broker,
                       std::size_t tracker_broker) {
  FailureSchedule schedule;
  schedule.crash(1 * kSecond, {entity_broker});
  schedule.restart(6 * kSecond, {entity_broker});
  RunResult r = run_scenario(overlay, schedule, 9001, {entity_broker},
                             {tracker_broker}, 14 * kSecond);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front() << " (+" << r.violations.size() - 1
      << " more)";
  ASSERT_EQ(r.report.pairs.size(), 1u);
  const PairReport& p = r.report.pairs[0];
  EXPECT_GE(p.truth_down_edges, 1u);
  EXPECT_GE(p.detected_down_edges, 1u);
  EXPECT_GT(p.mean_detection_latency_us, 0.0);
  // The tracker's availability estimate must roughly follow the truth.
  EXPECT_LT(p.availability_error, 0.35);
}

TEST(ChaosInvariants, ChainHostingBrokerLoss) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kChain;
  ov.brokers = 4;
  pin_invariants_on(ov, 0, 3);
}

TEST(ChaosInvariants, TreeHostingBrokerLoss) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kTree;
  ov.brokers = 7;
  ov.arity = 2;
  pin_invariants_on(ov, 3, 6);  // leaf to leaf across the root
}

TEST(ChaosInvariants, ClustersHostingBrokerLoss) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kClusters;
  ov.brokers = 8;  // 2 cores x (1 + 3 leaves)
  ov.leaves_per_core = 3;
  pin_invariants_on(ov, 2, 5);  // rack-0 leaf to rack-1 leaf
}

/// I1 pinned directly: a partition that outlives the detection bound must
/// not let the tracker keep believing READY — after the bound, zero
/// availability signals may arrive on the tracker side.
TEST(ChaosInvariants, NoReadyBeyondDetectionBoundWhilePartitioned) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kChain;
  ov.brokers = 4;
  FailureSchedule schedule;
  // Split tracker side {2,3} from entity side {0,1} for far longer than
  // the K-ping detection bound, then heal.
  schedule.partition(1 * kSecond, {{0, 1}, {2, 3}}).heal(9 * kSecond);
  RunResult r =
      run_scenario(ov, schedule, 4242, {0}, {3}, 13 * kSecond);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front() << " (+" << r.violations.size() - 1
      << " more)";
  ASSERT_EQ(r.report.pairs.size(), 1u);
  // The long partition is a real down edge; silence (not stale READY) is
  // the only acceptable tracker-side behaviour while it lasts.
  EXPECT_GE(r.report.pairs[0].truth_down_edges, 1u);
}

// --- seed determinism ----------------------------------------------------

TEST(ChaosDeterminism, SameSeedSameTimelinesAcrossRuns) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kClusters;
  ov.brokers = 8;
  ov.leaves_per_core = 3;
  FailureSchedule schedule;
  schedule.rack_loss(1 * kSecond, {0, 2, 3, 4}, 4 * kSecond)
      .flapping_link(2 * kSecond, 0, 1, 200 * kMillisecond,
                     300 * kMillisecond, 3 * kSecond);
  const auto a = run_scenario(ov, schedule, 777, {2}, {5}, 10 * kSecond);
  const auto b = run_scenario(ov, schedule, 777, {2}, {5}, 10 * kSecond);
  // Byte-identical oracle timelines and schedule action logs.
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.actions, b.actions);
  ASSERT_FALSE(a.timeline.empty());
  ASSERT_FALSE(a.actions.empty());

  // A different seed perturbs delivery sampling enough to diverge.
  const auto c = run_scenario(ov, schedule, 778, {2}, {5}, 10 * kSecond);
  EXPECT_NE(a.timeline, c.timeline);
}

TEST(ChaosDeterminism, ScheduleDescribeIsStable) {
  FailureSchedule s;
  s.rolling_restart(1 * kSecond, {0, 1, 2}, 500 * kMillisecond,
                    250 * kMillisecond)
      .cascading_partition(4 * kSecond, {{0}, {1}, {2, 3}},
                           300 * kMillisecond, 2 * kSecond)
      .flapping_link(8 * kSecond, 0, 3, 100 * kMillisecond,
                     100 * kMillisecond);
  const std::vector<std::string> expect = {
      "t=1000000 crash [0]",
      "t=1250000 restart [0]",
      "t=1500000 crash [1]",
      "t=1750000 restart [1]",
      "t=2000000 crash [2]",
      "t=2250000 restart [2]",
      "t=4000000 partition [0]|[1,2,3]",
      "t=4300000 partition [0]|[1]|[2,3]",
      "t=6300000 heal",
      "t=8000000 flap 0-3 down=100000 up=100000",
  };
  EXPECT_EQ(s.describe(), expect);
}

// --- the ROADMAP 128-broker sweep ----------------------------------------

TEST(ChaosSweep, RackLossOn128BrokerClusterOfStarsIsDeterministic) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kClusters;
  ov.brokers = 128;  // 32 cores x (1 + 3 leaves)
  ov.leaves_per_core = 3;

  auto run_once = [&](std::uint64_t seed) {
    VirtualTimeNetwork net(seed);
    ScenarioDeployment::Options opts;
    opts.overlay = ov;
    opts.seed = seed;
    ScenarioDeployment dep(net, opts);
    EXPECT_EQ(dep.broker_count(), 128u);
    EXPECT_EQ(dep.rack_count(), 32u);
    dep.register_brokers();
    net.run_for(20 * kMillisecond);

    // Entities on leaves of racks 0 and 31, trackers on leaves at the
    // other end of the core chain — traces cross the full diameter.
    dep.add_entity("entity-0", dep.rack(0)[1]);
    net.run_for(20 * kMillisecond);
    dep.add_entity("entity-1", dep.rack(31)[1]);
    net.run_for(20 * kMillisecond);
    dep.add_tracker("tracker-0", dep.rack(31)[2]);
    net.run_for(20 * kMillisecond);
    dep.add_tracker("tracker-1", dep.rack(15)[1]);
    net.run_for(20 * kMillisecond);
    start_tracing(net, dep.entity(0));
    start_tracing(net, dep.entity(1));

    AvailabilityOracle oracle;
    for (std::size_t t = 0; t < 2; ++t) {
      for (std::size_t e = 0; e < 2; ++e) {
        track(net, dep.tracker(t), dep.entity(e).entity_id(),
              oracle.tap(dep.tracker(t).tracker_id(),
                         dep.entity(e).entity_id(), net));
      }
    }

    // Rack 0 (entity-0's whole rack, core included) dies at t+1s and
    // comes back 4s later; rack 8 is collateral noise.
    FailureSchedule schedule;
    schedule.rack_loss(1 * kSecond, dep.rack(0), 4 * kSecond);
    schedule.rack_loss(2 * kSecond, dep.rack(8), 2 * kSecond);
    ScheduleEngine engine(net, dep.topology());
    engine.run(schedule);

    dep.sample_truth(oracle, net.now());
    for (int i = 0; i < 280; ++i) {  // 14 s in 50 ms slices
      net.run_for(50 * kMillisecond);
      dep.sample_truth(oracle, net.now());
    }

    RunResult out;
    out.timeline = oracle.timeline();
    out.actions = engine.action_log();
    out.report = oracle.report(net.now(), 2 * kSecond);
    out.violations = oracle.check_invariants(
        detection_bound(dep.config()),
        50 * kMillisecond + 2 * kSecond +
            dep.config().recovery_announce_delay);
    out.diameter = dep.topology().diameter();
    return out;
  };

  const RunResult a = run_once(31337);
  EXPECT_EQ(a.diameter, 33u);  // 31 core hops + 2 leaf hops
  EXPECT_TRUE(a.violations.empty())
      << a.violations.front() << " (+" << a.violations.size() - 1
      << " more)";
  ASSERT_EQ(a.report.pairs.size(), 4u);
  // entity-0 lost its rack: every tracker saw a real down edge, and the
  // episode surfaced (suspicion or post-failover RECOVERING).
  std::size_t entity0_down = 0;
  std::size_t entity0_detected = 0;
  for (const auto& p : a.report.pairs) {
    if (p.entity_id == "entity-0") {
      entity0_down += p.truth_down_edges;
      entity0_detected += p.detected_down_edges;
    }
  }
  EXPECT_GE(entity0_down, 2u);
  EXPECT_GE(entity0_detected, 2u);

  // Determinism at full scale: an identical second run reproduces the
  // oracle timeline byte for byte.
  const RunResult b = run_once(31337);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.actions, b.actions);
}

// --- TDN replicas split across a partition -------------------------------

TEST(ChaosSweep, EntityFailoverSurvivesTdnReplicaPartition) {
  // Two TDN replicas; the partition isolates replica 0 with the dying
  // broker while the entity keeps a path to replica 1 — failover must
  // succeed via the reachable replica (DiscoveryClient rotates replicas
  // under its retry policy).
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kChain;
  ov.brokers = 4;
  VirtualTimeNetwork net(2024);
  ScenarioDeployment::Options opts;
  opts.overlay = ov;
  opts.seed = 2024;
  opts.tdn_replicas = 2;
  ScenarioDeployment dep(net, opts);
  ASSERT_EQ(dep.tdn_count(), 2u);
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  tracing::TracedEntity& entity = dep.add_entity("entity-0", 0);
  net.run_for(20 * kMillisecond);
  dep.add_tracker("tracker-0", 3);
  net.run_for(20 * kMillisecond);
  start_tracing(net, entity);
  AvailabilityOracle oracle;
  track(net, dep.tracker(0), entity.entity_id(),
        oracle.tap(dep.tracker(0).tracker_id(), entity.entity_id(), net));

  // Replica 0 goes down with the same failure domain as the hosting
  // broker. crash() fully isolates the node; faults().isolate() would
  // work too now that single-group partitions sever listed from unlisted
  // nodes, but crash keeps this cell on the frozen-process model.
  net.faults().crash(dep.tdn(0).node());
  dep.topology().crash(dep.topology().broker(0));

  const std::uint64_t before = entity.stats().failovers;
  for (int i = 0; i < 200 && entity.stats().failovers == before; ++i) {
    net.run_for(100 * kMillisecond);
  }
  EXPECT_GT(entity.stats().failovers, before)
      << "failover should complete via the reachable TDN replica";
  // The new hosting broker is one that is still up.
  EXPECT_NE(entity.client().broker(), dep.broker(0).node());
}

// --- RealTimeNetwork smoke (runs under TSan in the tsan CI stage) --------

TEST(ChaosRealTimeSmoke, PartitionScheduleIsRaceFree) {
  // Same schedule shape as the virtual runs, on real threads. Entities
  // keep their home brokers (partition-only schedule, no failover), so
  // static truth sampling is safe while actors run. TSan must stay
  // silent; invariants must hold.
  transport::RealTimeNetwork net(99);
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kClusters;
  ov.brokers = 8;
  ov.leaves_per_core = 3;
  ScenarioDeployment::Options opts;
  opts.overlay = ov;
  opts.seed = 99;
  {
    ScenarioDeployment dep(net, opts);
    dep.register_brokers();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    tracing::TracedEntity& entity = dep.add_entity("entity-0", 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    dep.add_tracker("tracker-0", 5);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::atomic<bool> ok{false};
    entity.start_tracing({}, [&](const Status& s) { ok = s.is_ok(); });
    for (int i = 0; i < 100 && !ok; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(ok);
    AvailabilityOracle oracle;
    std::atomic<bool> tracked{false};
    dep.tracker(0).track(
        entity.entity_id(), tracing::kCatAll,
        oracle.tap(dep.tracker(0).tracker_id(), entity.entity_id(), net),
        [&](const Status& s) { tracked = s.is_ok(); });
    for (int i = 0; i < 100 && !tracked; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(tracked);

    FailureSchedule schedule;
    // Rack 0 (core 0 + its leaves) splits from rack 1 for 1.2 s, with a
    // flapping core link after the heal.
    schedule.partition(300 * kMillisecond, {{0, 2, 3, 4}, {1, 5, 6, 7}})
        .heal(1500 * kMillisecond)
        .flapping_link(1600 * kMillisecond, 0, 1, 50 * kMillisecond,
                       100 * kMillisecond, 600 * kMillisecond);
    ScheduleEngine engine(net, dep.topology());
    engine.run(schedule);

    dep.sample_truth_static(oracle, net.now());
    for (int i = 0; i < 30; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      dep.sample_truth_static(oracle, net.now());
    }

    net.stop();  // halt actors before reading entity/tracker state
    const auto violations = oracle.check_invariants(
        detection_bound(dep.config()), 3 * kSecond);
    EXPECT_TRUE(violations.empty())
        << violations.front() << " (+" << violations.size() - 1 << " more)";
    EXPECT_FALSE(engine.action_log().empty());
    EXPECT_GT(dep.tracker(0).stats().traces_received, 0u);
  }
}

}  // namespace
}  // namespace et::chaos
