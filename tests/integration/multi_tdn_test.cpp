// Multi-TDN integration: "since a given topic advertisement will be
// stored at multiple TDN nodes, this scheme sustains the loss of TDN
// nodes" (paper §2.2). The traced entity creates its topic at one TDN;
// the tracker discovers it through a replica — including after the
// primary TDN is gone.
#include <gtest/gtest.h>

#include <memory>

#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

namespace et::tracing {
namespace {

constexpr std::size_t kBits = 512;

transport::LinkParams lan() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

struct MultiTdnFixture : ::testing::Test {
  MultiTdnFixture() : rng(808), ca("ca", rng, kBits) {
    // Both TDNs share one signing key pair (a deployment-level identity),
    // so advertisements verify against a single trust anchor regardless
    // of which TDN minted or served them.
    const crypto::RsaKeyPair tdn_keys = crypto::rsa_generate(rng, kBits);
    auto tdn_identity = [&](const std::string& id) {
      crypto::Identity ident;
      ident.id = id;
      ident.keys = tdn_keys;
      ident.credential =
          ca.issue(id, tdn_keys.public_key, net.now(), 3600 * kSecond);
      return ident;
    };
    anchors = TrustAnchors{ca.public_key(), tdn_keys.public_key};
    tdn0 = std::make_unique<discovery::Tdn>(net, tdn_identity("tdn-0"),
                                            ca.public_key(), 1);
    tdn1 = std::make_unique<discovery::Tdn>(net, tdn_identity("tdn-1"),
                                            ca.public_key(), 2);
    net.link(tdn0->node(), tdn1->node(), lan());
    tdn0->peer(tdn1->node());
    tdn1->peer(tdn0->node());

    config.ping_interval = 100 * kMillisecond;
    config.gauge_interval = 300 * kMillisecond;
    config.delegate_key_bits = kBits;

    topo = std::make_unique<pubsub::Topology>(net);
    brokers =
        topo->make_chain(2, lan(), "broker", [&](const std::string& name) {
          pubsub::Broker::Options o;
          o.name = name;
          install_trace_filter(o, anchors, net);
          return o;
        });
    for (auto* b : brokers) {
      services.push_back(
          std::make_unique<TracingBrokerService>(*b, anchors, config, 7));
    }
  }

  crypto::Identity identity(const std::string& id) {
    return crypto::Identity::create(id, ca, rng, net.now(), 3600 * kSecond,
                                    kBits);
  }

  transport::VirtualTimeNetwork net{808};
  Rng rng;
  crypto::CertificateAuthority ca;
  TrustAnchors anchors;
  TracingConfig config;
  std::unique_ptr<discovery::Tdn> tdn0, tdn1;
  std::unique_ptr<pubsub::Topology> topo;
  std::vector<pubsub::Broker*> brokers;
  std::vector<std::unique_ptr<TracingBrokerService>> services;
};

TEST_F(MultiTdnFixture, TrackerDiscoversThroughReplicaTdn) {
  // Entity uses tdn-0; tracker uses tdn-1.
  TracedEntity entity(net, identity("svc"), anchors, config, 11);
  entity.attach_tdn(tdn0->node(), lan());
  entity.connect_broker(brokers[0]->node(), lan());
  Status entity_status = internal_error("pending");
  entity.start_tracing({}, [&](const Status& s) { entity_status = s; });
  net.run_for(500 * kMillisecond);
  ASSERT_TRUE(entity_status.is_ok()) << entity_status.to_string();
  EXPECT_EQ(tdn1->advertisement_count(), 1u);  // replication happened

  Tracker tracker(net, identity("watcher"), anchors, 12);
  tracker.attach_tdn(tdn1->node(), lan());
  tracker.connect_broker(brokers[1]->node(), lan());
  int received = 0;
  Status track_status = internal_error("pending");
  tracker.track("svc", kCatAllUpdates,
                [&](const TracePayload&, const pubsub::Message&) {
                  ++received;
                },
                [&](const Status& s) { track_status = s; });
  net.run_for(1 * kSecond);
  ASSERT_TRUE(track_status.is_ok()) << track_status.to_string();
  EXPECT_GT(received, 3);
  EXPECT_EQ(tracker.stats().traces_rejected, 0u);
  EXPECT_GT(tdn1->stats().discoveries_answered, 0u);
}

TEST_F(MultiTdnFixture, DiscoverySurvivesPrimaryTdnLoss) {
  TracedEntity entity(net, identity("svc2"), anchors, config, 13);
  entity.attach_tdn(tdn0->node(), lan());
  entity.connect_broker(brokers[0]->node(), lan());
  entity.start_tracing({}, [](const Status&) {});
  net.run_for(500 * kMillisecond);

  // The minting TDN vanishes (link severed = node unreachable).
  net.unlink(tdn0->node(), tdn1->node());
  net.detach(tdn0->node());

  Tracker tracker(net, identity("late-watcher"), anchors, 14);
  tracker.attach_tdn(tdn1->node(), lan());
  tracker.connect_broker(brokers[1]->node(), lan());
  int received = 0;
  Status track_status = internal_error("pending");
  tracker.track("svc2", kCatAllUpdates,
                [&](const TracePayload&, const pubsub::Message&) {
                  ++received;
                },
                [&](const Status& s) { track_status = s; });
  net.run_for(1 * kSecond);
  ASSERT_TRUE(track_status.is_ok()) << track_status.to_string();
  EXPECT_GT(received, 3);
}

TEST_F(MultiTdnFixture, RestrictionsEnforcedAtReplicaToo) {
  TracedEntity entity(net, identity("svc3"), anchors, config, 15);
  entity.attach_tdn(tdn0->node(), lan());
  entity.connect_broker(brokers[0]->node(), lan());
  discovery::DiscoveryRestrictions only_friend;
  only_friend.authorized_subjects = {"friend"};
  entity.start_tracing(only_friend, [](const Status&) {});
  net.run_for(500 * kMillisecond);

  // A stranger querying the REPLICA is ignored just like at the primary.
  Tracker stranger(net, identity("stranger"), anchors, 16);
  stranger.attach_tdn(tdn1->node(), lan());
  stranger.connect_broker(brokers[1]->node(), lan());
  Status denied = Status::ok();
  stranger.track("svc3", kCatAllUpdates,
                 [](const TracePayload&, const pubsub::Message&) {},
                 [&](const Status& s) { denied = s; });
  net.run_for(3 * kSecond);
  EXPECT_EQ(denied.code(), Code::kNotFound);
  EXPECT_GT(tdn1->stats().discoveries_ignored, 0u);
}

}  // namespace
}  // namespace et::tracing
