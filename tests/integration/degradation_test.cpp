// Graceful degradation under faults (DESIGN.md §11): security bookkeeping
// must not reset just because the network misbehaved.
//
//   * a blacklist entry earned before a partition is still enforced after
//     the partition heals — misbehaviour is a property of the endpoint,
//     not of the current connectivity;
//   * deferred-verdict rejections (Broker::reject_deferred) issued while
//     the overlay is partitioned still feed the misbehaviour accounting,
//     so asynchronous verification keeps protecting a broker even when it
//     is cut off from the rest of the overlay;
//   * an entity that failed over re-registers under a fresh session and
//     exactly one broker hosts it (covered from the tracing side by
//     chaos_soak_test; here we pin the pub/sub substrate).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/pubsub/broker.h"
#include "src/pubsub/client.h"
#include "src/pubsub/topology.h"
#include "src/transport/fault_injector.h"
#include "src/transport/virtual_network.h"

namespace et::pubsub {
namespace {

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

TEST(DegradationTest, BlacklistPersistsAcrossPartitionAndHeal) {
  transport::VirtualTimeNetwork net(7);
  Topology topo(net);
  Broker::Options o;
  o.name = "b0";
  o.misbehaviour_threshold = 3;
  o.message_filter = [](Broker&, const MessageView& m,
                        transport::NodeId) -> FilterVerdict {
    if (m.topic == "poison") {
      return FilterVerdict::reject(unauthenticated("poisoned"));
    }
    return FilterVerdict::accept();
  };
  Broker& b0 = topo.add_broker(std::move(o));
  Broker& b1 = topo.add_broker({.name = "b1"});
  topo.connect_brokers(b0, b1, fast());

  Client attacker(net, "attacker");
  attacker.connect(b0.node(), fast());
  Client honest(net, "honest");
  honest.connect(b0.node(), fast());
  Client listener(net, "listener");
  listener.connect(b0.node(), fast());
  int delivered = 0;
  listener.subscribe("news", [&](const Message&) { ++delivered; });
  net.run_until_idle();

  for (int i = 0; i < 3; ++i) {
    attacker.publish("poison", to_bytes("x"));
    net.run_until_idle();
  }
  ASSERT_TRUE(b0.is_blacklisted(attacker.node()));

  // Partition the overlay, then heal it: the strike record and blacklist
  // must come out the other side untouched.
  topo.partition({{&b0}, {&b1}});
  net.run_for(500 * kMillisecond);
  topo.heal();
  net.run_until_idle();

  EXPECT_TRUE(b0.is_blacklisted(attacker.node()));
  // The blacklisted endpoint stays cut off...
  attacker.publish("news", to_bytes("spam"));
  net.run_until_idle();
  EXPECT_EQ(delivered, 0);
  // ... while well-behaved clients are unaffected by partition or heal.
  honest.publish("news", to_bytes("update"));
  net.run_until_idle();
  EXPECT_EQ(delivered, 1);
}

TEST(DegradationTest, RejectDeferredDuringPartitionFeedsMisbehaviour) {
  transport::VirtualTimeNetwork net(8);
  Topology topo(net);
  Broker& b0 = topo.add_broker({.name = "b0"});

  // b1 defers everything on "suspicious" for asynchronous verification.
  std::vector<std::pair<Message, transport::NodeId>> parked;
  Broker::Options o;
  o.name = "b1";
  o.misbehaviour_threshold = 2;
  o.message_filter = [&parked](Broker&, const MessageView& m,
                               transport::NodeId from) -> FilterVerdict {
    if (m.topic == "suspicious") {
      parked.emplace_back(m.materialize(), from);
      return FilterVerdict::defer();
    }
    return FilterVerdict::accept();
  };
  Broker& b1 = topo.add_broker(std::move(o));
  topo.connect_brokers(b0, b1, fast());

  int delivered = 0;
  b1.subscribe_local("suspicious", [&](const Message&) { ++delivered; });
  net.run_for(10 * kMillisecond);  // interest propagates to b0

  Message m;
  m.topic = "suspicious";
  m.payload = to_bytes("claim-1");
  b0.publish_from_broker(std::move(m));
  m = Message{};
  m.topic = "suspicious";
  m.payload = to_bytes("claim-2");
  b0.publish_from_broker(std::move(m));
  net.run_until_idle();
  ASSERT_EQ(parked.size(), 2u);
  EXPECT_EQ(delivered, 0);  // verdicts still pending

  // The overlay partitions while verification is in flight. The verdicts
  // land anyway — rejections must strike the (now unreachable) upstream
  // peer exactly as if it were still connected.
  topo.partition({{&b0}, {&b1}});
  for (auto& [msg, from] : parked) {
    const transport::NodeId peer = from;
    net.post(b1.node(), [&b1, peer] {
      b1.reject_deferred(peer, unauthenticated("forged claim"));
    });
  }
  net.run_until_idle();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(b1.stats().discarded, 2u);
  EXPECT_TRUE(b1.is_blacklisted(b0.node()));  // threshold of 2 crossed
  EXPECT_GE(b1.stats().disconnects, 1u);

  // Healing the partition does not forgive the strikes.
  topo.heal();
  net.run_until_idle();
  EXPECT_TRUE(b1.is_blacklisted(b0.node()));
}

TEST(DegradationTest, ReleaseDeferredDuringPartitionStillRoutes) {
  // The accept half of the deferred contract: a verdict released during
  // the partition is queued into routing; local delivery works because
  // the subscriber is on the broker itself.
  transport::VirtualTimeNetwork net(9);
  Topology topo(net);
  Broker& b0 = topo.add_broker({.name = "b0"});
  std::vector<std::pair<Message, transport::NodeId>> parked;
  Broker::Options o;
  o.name = "b1";
  o.message_filter = [&parked](Broker&, const MessageView& m,
                               transport::NodeId from) -> FilterVerdict {
    parked.emplace_back(m.materialize(), from);
    return FilterVerdict::defer();
  };
  Broker& b1 = topo.add_broker(std::move(o));
  topo.connect_brokers(b0, b1, fast());

  int delivered = 0;
  b1.subscribe_local("slow-checked", [&](const Message&) { ++delivered; });
  net.run_for(10 * kMillisecond);

  Message m;
  m.topic = "slow-checked";
  m.payload = to_bytes("legit");
  b0.publish_from_broker(std::move(m));
  net.run_until_idle();
  ASSERT_EQ(parked.size(), 1u);

  topo.partition({{&b0}, {&b1}});
  auto [msg, from] = std::move(parked.front());
  const transport::NodeId peer = from;
  net.post(b1.node(), [&b1, released = std::move(msg), peer]() mutable {
    b1.release_deferred(std::move(released), peer);
  });
  net.run_until_idle();
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(b1.is_blacklisted(b0.node()));
}

}  // namespace
}  // namespace et::pubsub
