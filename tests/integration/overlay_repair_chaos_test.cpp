// Self-healing overlay under scenario faults (ctest -L chaos): the
// repair protocol (DESIGN.md §15) must reconnect a severed overlay and
// converge tracker-observed availability back to the truth — without any
// entity re-registering.
//
//   * ring cut: the recorded standby link activates, heartbeats resume,
//     tail availability error is exactly zero;
//   * cluster-of-stars rack-severing core cut with standby disabled: a
//     gossip-scored fresh edge re-peers the halves;
//   * the same ring cut on a 5% lossy overlay: no false dead
//     declarations, repair still converges;
//   * same-seed runs produce byte-identical repair action logs;
//   * a RealTimeNetwork repair smoke (TSan-clean in the tsan CI stage).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/chaos/oracle.h"
#include "src/chaos/scenario.h"
#include "src/pubsub/overlay_repair.h"
#include "src/transport/fault_injector.h"
#include "src/transport/realtime_network.h"
#include "src/transport/virtual_network.h"

namespace et::chaos {
namespace {

using transport::VirtualTimeNetwork;

/// Drives start_tracing to completion on the virtual clock.
void start_tracing(VirtualTimeNetwork& net, tracing::TracedEntity& e) {
  Status out = internal_error("callback never ran");
  bool done = false;
  e.start_tracing({}, [&](const Status& s) {
    out = s;
    done = true;
  });
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
  ASSERT_TRUE(done && out.is_ok()) << out.to_string();
}

/// Drives track() to completion on the virtual clock.
void track(VirtualTimeNetwork& net, tracing::Tracker& t,
           const std::string& entity_id, tracing::Tracker::TraceHandler h) {
  Status out = internal_error("callback never ran");
  bool done = false;
  t.track(entity_id, tracing::kCatAll, std::move(h), [&](const Status& s) {
    out = s;
    done = true;
  });
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
  net.run_for(20 * kMillisecond);
  ASSERT_TRUE(done && out.is_ok()) << out.to_string();
}

/// One repair scenario: overlay up, one (tracker, entity) pair tracing
/// across it, a single link blackholed mid-run, repair left to converge.
struct RepairRun {
  pubsub::RepairPolicy::Stats stats;
  std::vector<std::string> actions;
  OracleReport tail;       // availability over [cut + 4s, end]
  std::vector<std::string> violations;
  std::uint64_t entity_failovers = 0;
  int post_repair_signals = 0;  // availability signals after cut + 1s
};

RepairRun run_repair(const OverlaySpec& overlay, std::size_t cut_a,
                     std::size_t cut_b, std::size_t entity_broker,
                     std::size_t tracker_broker, double overlay_loss,
                     bool activate_standby, std::uint64_t seed) {
  VirtualTimeNetwork net(seed);
  ScenarioDeployment::Options opts;
  opts.overlay = overlay;
  opts.seed = seed;
  opts.overlay_loss = overlay_loss;
  opts.repair.enabled = true;
  opts.repair.activate_standby = activate_standby;
  ScenarioDeployment dep(net, opts);
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  tracing::TracedEntity& entity = dep.add_entity("entity-0", entity_broker);
  net.run_for(20 * kMillisecond);
  dep.add_tracker("tracker-0", tracker_broker);
  net.run_for(20 * kMillisecond);
  start_tracing(net, entity);

  AvailabilityOracle oracle;
  TimePoint cut_at = 0;
  int post_repair_signals = 0;
  track(net, dep.tracker(0), entity.entity_id(),
        oracle.tap(dep.tracker(0).tracker_id(), entity.entity_id(), net,
                   [&](const tracing::TracePayload& p, const pubsub::Message&) {
                     if (cut_at != 0 && net.now() > cut_at + 1 * kSecond &&
                         availability_signal(p.type)) {
                       ++post_repair_signals;
                     }
                   }));

  // Anti-entropy after setup: on a lossy overlay the initial interest
  // flood may have dropped announcements, so resync until the cell
  // starts converged — the run measures repair, not setup luck.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < dep.broker_count(); ++i) {
      pubsub::Broker& b = dep.broker(i);
      net.post(b.node(), [&b] { b.resync_interest(); });
    }
    net.run_for(200 * kMillisecond);
  }

  // Warm up: gossip directories fill, heartbeats flow end to end.
  dep.sample_truth(oracle, net.now());
  for (int i = 0; i < 40; ++i) {  // 2 s in 50 ms slices
    net.run_for(50 * kMillisecond);
    dep.sample_truth(oracle, net.now());
  }

  cut_at = net.now();
  net.faults().blackhole(dep.broker(cut_a).node(), dep.broker(cut_b).node());
  for (int i = 0; i < 200; ++i) {  // 10 s in 50 ms slices
    net.run_for(50 * kMillisecond);
    dep.sample_truth(oracle, net.now());
  }

  RepairRun out;
  out.stats = dep.repair_policy()->stats();
  out.actions = dep.repair_policy()->action_log();
  // Grace: one sampling slice for truth quantization plus overlay
  // propagation plus the post-failover announcement delay.
  const Duration grace = 50 * kMillisecond + 2 * kSecond +
                         dep.config().recovery_announce_delay;
  out.tail = oracle.report_window(cut_at + 4 * kSecond, net.now(), grace);
  out.violations =
      oracle.check_invariants(detection_bound(dep.config()), grace);
  out.entity_failovers = entity.stats().failovers;
  out.post_repair_signals = post_repair_signals;
  return out;
}

// --- standby activation on a ring -----------------------------------------

TEST(OverlayRepairChaos, RingStandbyActivationConvergesToZeroTailError) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kRing;
  ov.brokers = 8;
  // Cut the spanning chain between 3 and 4: the tracker's half {4..7}
  // loses the entity's half {0..3} until the standby (7,0) activates.
  const RepairRun r = run_repair(ov, 3, 4, /*entity=*/0, /*tracker=*/7,
                                 /*loss=*/0.0, /*standby=*/true, 101);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front() << " (+" << r.violations.size() - 1 << " more)";
  EXPECT_EQ(r.stats.reports, 2u);  // both cut endpoints report
  EXPECT_EQ(r.stats.splits, 1u);   // second report finds it healed
  EXPECT_EQ(r.stats.standby_activations, 1u);
  EXPECT_EQ(r.stats.repeers, 0u);
  EXPECT_EQ(r.stats.stranded, 0u);
  ASSERT_FALSE(r.actions.empty());

  // Routing converged without any entity re-registration: heartbeats
  // resumed over the repaired overlay and the settled tail window shows
  // *zero* availability error.
  EXPECT_GT(r.post_repair_signals, 0);
  EXPECT_EQ(r.entity_failovers, 0u);
  ASSERT_EQ(r.tail.pairs.size(), 1u);
  EXPECT_EQ(r.tail.pairs[0].availability_error, 0.0);
  EXPECT_EQ(r.tail.pairs[0].false_suspicions, 0u);
}

// --- gossip-scored re-peering on cluster-of-stars -------------------------

TEST(OverlayRepairChaos, ClustersGossipRepeerHealsRackSeveringCut) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kClusters;
  ov.brokers = 16;  // 4 cores x (1 + 3 leaves)
  ov.leaves_per_core = 3;
  // Sever the core chain in the middle with standby activation disabled:
  // the policy must build a fresh edge from gossip-learned endpoints.
  // Entity on a rack-0 leaf, tracker on a rack-3 leaf — the cut strands
  // them on opposite halves.
  const RepairRun r = run_repair(ov, 1, 2, /*entity=*/5, /*tracker=*/14,
                                 /*loss=*/0.0, /*standby=*/false, 202);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front() << " (+" << r.violations.size() - 1 << " more)";
  EXPECT_EQ(r.stats.splits, 1u);
  EXPECT_EQ(r.stats.standby_activations, 0u);
  EXPECT_EQ(r.stats.repeers, 1u);
  EXPECT_EQ(r.stats.stranded, 0u);

  EXPECT_GT(r.post_repair_signals, 0);
  EXPECT_EQ(r.entity_failovers, 0u);
  ASSERT_EQ(r.tail.pairs.size(), 1u);
  EXPECT_EQ(r.tail.pairs[0].availability_error, 0.0);
}

// --- lossy-link repair soak -----------------------------------------------

TEST(OverlayRepairChaos, LossyOverlayNeitherFalseKillsNorStaysBroken) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kRing;
  ov.brokers = 8;
  // 5% per-packet loss on every overlay link. The liveness ladder must
  // not falsely kill a merely-lossy peer (any frame resets it), yet the
  // genuinely blackholed link must still be detected and repaired.
  const RepairRun r = run_repair(ov, 3, 4, /*entity=*/0, /*tracker=*/7,
                                 /*loss=*/0.05, /*standby=*/true, 303);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front() << " (+" << r.violations.size() - 1 << " more)";
  // Exactly the two reports from the real cut — no false positives from
  // loss alone anywhere on the ring over the whole soak.
  EXPECT_EQ(r.stats.reports, 2u);
  EXPECT_EQ(r.stats.splits, 1u);
  EXPECT_EQ(r.stats.standby_activations, 1u);
  EXPECT_EQ(r.stats.stranded, 0u);

  EXPECT_GT(r.post_repair_signals, 0);
  EXPECT_EQ(r.entity_failovers, 0u);
  ASSERT_EQ(r.tail.pairs.size(), 1u);
  EXPECT_EQ(r.tail.pairs[0].availability_error, 0.0);
  EXPECT_EQ(r.tail.pairs[0].false_suspicions, 0u);
}

// --- determinism ----------------------------------------------------------

TEST(OverlayRepairChaos, SameSeedProducesIdenticalRepairActionLogs) {
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kClusters;
  ov.brokers = 16;
  ov.leaves_per_core = 3;
  const RepairRun a = run_repair(ov, 1, 2, 5, 14, 0.0, false, 777);
  const RepairRun b = run_repair(ov, 1, 2, 5, 14, 0.0, false, 777);
  ASSERT_FALSE(a.actions.empty());
  EXPECT_EQ(a.actions, b.actions);  // byte-identical decisions + timestamps
  for (const std::string& line : a.actions) {
    EXPECT_EQ(line.rfind("t=", 0), 0u) << line;
  }
}

// --- RealTimeNetwork smoke (runs under TSan in the tsan CI stage) ---------

TEST(OverlayRepairRealTimeSmoke, StandbyActivationOnRealThreads) {
  // The repair path on real threads: dead-peer reports arrive in broker
  // node contexts, the policy wires the standby from its own lock, and
  // resync rounds land back in node contexts. TSan must stay silent.
  transport::RealTimeNetwork net(55);
  OverlaySpec ov;
  ov.shape = OverlaySpec::Shape::kRing;
  ov.brokers = 4;
  ScenarioDeployment::Options opts;
  opts.overlay = ov;
  opts.seed = 55;
  opts.repair.enabled = true;
  {
    ScenarioDeployment dep(net, opts);
    dep.register_brokers();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    tracing::TracedEntity& entity = dep.add_entity("entity-0", 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    dep.add_tracker("tracker-0", 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::atomic<bool> ok{false};
    entity.start_tracing({}, [&](const Status& s) { ok = s.is_ok(); });
    for (int i = 0; i < 100 && !ok; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(ok);

    std::atomic<int> signals{0};
    std::atomic<bool> tracked{false};
    dep.tracker(0).track(
        entity.entity_id(), tracing::kCatAll,
        [&](const tracing::TracePayload& p, const pubsub::Message&) {
          if (availability_signal(p.type)) signals.fetch_add(1);
        },
        [&](const Status& s) { tracked = s.is_ok(); });
    for (int i = 0; i < 100 && !tracked; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(tracked);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));

    // Sever the chain between 1 and 2: detection (~600ms) plus standby
    // wiring plus the first resync round, then heartbeats must resume.
    net.faults().blackhole(dep.broker(1).node(), dep.broker(2).node());
    std::this_thread::sleep_for(std::chrono::milliseconds(1800));
    const int before = signals.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    EXPECT_GT(signals.load(), before);

    const pubsub::RepairPolicy::Stats stats = dep.repair_policy()->stats();
    EXPECT_GE(stats.splits, 1u);
    EXPECT_EQ(stats.standby_activations, 1u);

    net.stop();  // halt actors before reading entity state
    EXPECT_EQ(entity.stats().failovers, 0u);
  }
}

}  // namespace
}  // namespace et::chaos
