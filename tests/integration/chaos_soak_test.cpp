// Deterministic chaos soak (DESIGN.md §11): end-to-end failure recovery
// under injected faults on the virtual-time backend.
//
// Invariants exercised:
//   * during a partition no tracker ever observes an "available" trace
//     (ALLS_WELL / READY / JOIN / INITIALIZING) for an unreachable entity;
//   * the hosting broker escalates SUSPICION -> FAILED -> DISCONNECT and
//     tears the stale session down;
//   * the entity's silence watchdog fails over to a replacement broker
//     (find_broker -> connect -> resubscribe -> re-register -> re-mint)
//     and trackers witness RECOVERING -> READY under the fresh session;
//   * the same seed and fault schedule produce bit-identical trace logs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/transport/fault_injector.h"
#include "src/transport/realtime_network.h"
#include "tests/tracing/harness.h"

namespace et::tracing {
namespace {

using testing::TracingHarness;

TracingConfig chaos_config() {
  TracingConfig c = TracingHarness::fast_config();
  c.suspicion_misses = 3;
  c.failed_misses = 6;
  c.disconnect_misses = 9;
  c.broker_silence_timeout = 600 * kMillisecond;
  RetryPolicy r;
  r.max_attempts = 0;  // an availability reporter never gives up
  r.initial_backoff = 50 * kMillisecond;
  r.max_backoff = 400 * kMillisecond;
  r.deadline = 10 * kSecond;
  c.retry = r;
  c.recovery_announce_delay = 700 * kMillisecond;
  return c;
}

struct Event {
  TimePoint at = 0;
  TraceType type = TraceType::kAllsWell;
  std::string detail;
};

bool availability_signal(TraceType t) {
  return t == TraceType::kAllsWell || t == TraceType::kReady ||
         t == TraceType::kJoin || t == TraceType::kInitializing;
}

/// Everything one scenario run produced, in delivery order.
struct ScenarioTrace {
  std::vector<Event> events;
  TimePoint cut_at = 0;
  TimePoint recovered_at = 0;  // entity-side: failover finished
  Uuid session_before;
  Uuid session_after;
  std::uint64_t failover_attempts = 0;
  std::uint64_t failovers = 0;

  [[nodiscard]] std::vector<std::string> log() const {
    std::vector<std::string> lines;
    lines.reserve(events.size());
    for (const Event& e : events) {
      std::ostringstream os;
      os << e.at << ' ' << trace_type_name(e.type) << ' ' << e.detail;
      lines.push_back(os.str());
    }
    return lines;
  }

  [[nodiscard]] TimePoint first(TraceType t, TimePoint after = 0) const {
    for (const Event& e : events) {
      if (e.type == t && e.at >= after) return e.at;
    }
    return -1;
  }
};

/// Severs the entity<->broker link, waits out detection + failover, then
/// soaks the recovered deployment. Pure function of `seed`.
ScenarioTrace run_link_cut_scenario(std::uint64_t seed) {
  ScenarioTrace out;
  TracingHarness h(3, chaos_config(), seed);
  h.register_brokers();

  auto entity = h.make_entity("svc-chaos", 0);
  EXPECT_TRUE(h.start_tracing(*entity).is_ok());
  out.session_before = entity->session_id();

  auto tracker = h.make_tracker("watcher", 2);
  EXPECT_TRUE(h.track(*tracker, "svc-chaos", kCatAll,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        out.events.push_back(
                            {h.net.now(), p.type, p.detail});
                      })
                  .is_ok());

  h.net.run_for(600 * kMillisecond);  // steady state: heartbeats flow

  out.cut_at = h.net.now();
  h.net.faults().blackhole(entity->client().node(), h.brokers[0]->node());

  // Detection + failover. The TDN hands back random registered brokers,
  // so the entity may burn attempts rediscovering the unreachable one —
  // bounded by per-attempt timeouts and backoff, never unbounded.
  for (int i = 0; i < 300 && entity->stats().failovers == 0; ++i) {
    h.net.run_for(100 * kMillisecond);
  }
  out.recovered_at = h.net.now();
  out.session_after = entity->session_id();
  out.failover_attempts = entity->stats().failover_attempts;
  out.failovers = entity->stats().failovers;

  // Soak past the RECOVERING dwell, an interest gauge round and several
  // heartbeats on the replacement broker.
  h.net.run_for(2 * kSecond);
  return out;
}

TEST(ChaosSoakTest, LinkCutDetectedEscalatedAndRecovered) {
  const ScenarioTrace t = run_link_cut_scenario(777);

  // The entity recovered, under a brand-new session.
  ASSERT_GE(t.failovers, 1u);
  EXPECT_NE(t.session_before, t.session_after);
  // Bounded re-registration: detection (600ms silence) plus a handful of
  // failover attempts, not the 30s worst-case cap of the wait loop.
  EXPECT_LE(t.recovered_at - t.cut_at, 10 * kSecond);

  // The stale hosting broker escalated the full suspect ladder.
  const TimePoint suspicion = t.first(TraceType::kFailureSuspicion, t.cut_at);
  const TimePoint failed = t.first(TraceType::kFailed, t.cut_at);
  const TimePoint disconnect = t.first(TraceType::kDisconnect, t.cut_at);
  ASSERT_GE(suspicion, 0);
  ASSERT_GE(failed, 0);
  ASSERT_GE(disconnect, 0);
  EXPECT_LT(suspicion, failed);
  EXPECT_LT(failed, disconnect);

  // Trackers witness the recovery as RECOVERING -> READY.
  const TimePoint recovering = t.first(TraceType::kRecovering, t.cut_at);
  ASSERT_GE(recovering, 0);
  const TimePoint ready = t.first(TraceType::kReady, recovering);
  ASSERT_GE(ready, 0);
  // ... and heartbeats resume from the replacement broker.
  EXPECT_GE(t.first(TraceType::kAllsWell, ready), 0);

  // Core safety property: while the entity was unreachable, nothing that
  // reads as "available" was delivered. The margin covers heartbeats
  // published just before the cut still crossing the overlay.
  const TimePoint margin = t.cut_at + 150 * kMillisecond;
  for (const Event& e : t.events) {
    if (e.at <= margin || e.at >= recovering) continue;
    EXPECT_FALSE(availability_signal(e.type))
        << trace_type_name(e.type) << " at t=" << e.at
        << " inside the unreachable window [" << margin << ", " << recovering
        << ")";
  }
}

TEST(ChaosSoakTest, SameSeedSameScheduleProducesIdenticalTraceLog) {
  const ScenarioTrace a = run_link_cut_scenario(4242);
  const ScenarioTrace b = run_link_cut_scenario(4242);
  EXPECT_EQ(a.log(), b.log());
  EXPECT_EQ(a.recovered_at, b.recovered_at);
  EXPECT_EQ(a.failover_attempts, b.failover_attempts);

  // A different seed must still recover — and is allowed to (and in
  // practice does) schedule differently.
  const ScenarioTrace c = run_link_cut_scenario(4243);
  EXPECT_GE(c.failovers, 1u);
}

TEST(ChaosSoakTest, OverlayPartitionSilencesTrackerWithoutFalseAlarms) {
  TracingHarness h(3, chaos_config(), 99);
  h.register_brokers();
  auto entity = h.make_entity("svc-steady", 0);
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("watcher", 2);
  std::vector<Event> events;
  ASSERT_TRUE(h.track(*tracker, "svc-steady", kCatAll,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        events.push_back({h.net.now(), p.type, p.detail});
                      })
                  .is_ok());
  h.net.run_for(600 * kMillisecond);
  ASSERT_FALSE(events.empty());

  // Split the overlay between broker-1 and broker-2: the tracker's side
  // loses sight of the entity; the entity's session itself is untouched.
  const TimePoint cut = h.net.now();
  h.topology->partition({{h.brokers[0], h.brokers[1]}, {h.brokers[2]}});
  h.net.run_for(600 * kMillisecond);  // under the interest TTL
  const TimePoint healed = h.net.now();
  h.topology->heal();
  h.net.run_for(1 * kSecond);

  std::size_t during = 0, after = 0;
  for (const Event& e : events) {
    // Deliveries already queued on the tracker's side drain within a hop.
    if (e.at > cut + 10 * kMillisecond && e.at <= healed) ++during;
    if (e.at > healed) ++after;
  }
  EXPECT_EQ(during, 0u);  // partition means silence, not stale data
  EXPECT_GT(after, 0u);   // traffic resumes once healed
  // The entity<->broker pair never noticed: no failover, no suspect
  // ladder, no disconnect anywhere in the run.
  EXPECT_EQ(entity->stats().failovers, 0u);
  for (const Event& e : events) {
    EXPECT_NE(e.type, TraceType::kFailureSuspicion);
    EXPECT_NE(e.type, TraceType::kFailed);
    EXPECT_NE(e.type, TraceType::kDisconnect);
    EXPECT_NE(e.type, TraceType::kRecovering);
  }
}

TEST(ChaosSoakTest, BrokerCrashTriggersFailoverAndStaleSessionCleanup) {
  TracingHarness h(3, chaos_config(), 31337);
  h.register_brokers();
  auto entity = h.make_entity("svc-crashed-host", 0);
  ASSERT_TRUE(h.start_tracing(*entity).is_ok());
  auto tracker = h.make_tracker("watcher", 2);
  std::vector<Event> events;
  ASSERT_TRUE(h.track(*tracker, "svc-crashed-host", kCatAll,
                      [&](const TracePayload& p, const pubsub::Message&) {
                        events.push_back({h.net.now(), p.type, p.detail});
                      })
                  .is_ok());
  h.net.run_for(500 * kMillisecond);

  h.topology->crash(*h.brokers[0]);
  for (int i = 0; i < 300 && entity->stats().failovers == 0; ++i) {
    h.net.run_for(100 * kMillisecond);
  }
  ASSERT_GE(entity->stats().failovers, 1u);
  h.net.run_for(2 * kSecond);  // dwell + interest round + heartbeats

  bool recovering = false, ready_after = false;
  for (const Event& e : events) {
    if (e.type == TraceType::kRecovering) recovering = true;
    if (recovering && e.type == TraceType::kReady) ready_after = true;
  }
  EXPECT_TRUE(recovering);
  EXPECT_TRUE(ready_after);
  EXPECT_TRUE(entity->tracing_active());

  // The crash freezes the broker's process, not its clock: its ping
  // timers keep firing, hit the link the failing-over entity severed, and
  // the pub/sub-level "client unreachable" signal tears the stale session
  // down. After the broker returns, no ghost of the old session remains
  // and the recovered deployment keeps running.
  h.topology->restart(*h.brokers[0]);
  h.net.run_for(2 * kSecond);
  EXPECT_FALSE(h.services[0]->has_session_for("svc-crashed-host"));
  EXPECT_TRUE(entity->tracing_active());
}

// --- wall-clock variant ----------------------------------------------------
// The same failover machinery on RealTimeNetwork, where broker executors,
// the timer thread and the fault injector genuinely race. Built under
// ET_SANITIZE=thread this doubles as the TSan soak.
TEST(ChaosSoakRealTimeTest, BrokerCrashFailoverOnWallClock) {
  transport::RealTimeNetwork net;
  Rng rng(606);
  crypto::CertificateAuthority ca("chaos-ca", rng, testing::kTestKeyBits);
  crypto::Identity tdn_id =
      crypto::Identity::create("tdn-0", ca, rng, net.now(), 3600 * kSecond,
                               testing::kTestKeyBits);
  TrustAnchors anchors{ca.public_key(), tdn_id.keys.public_key};
  auto tdn = std::make_unique<discovery::Tdn>(net, std::move(tdn_id),
                                              ca.public_key(), 2);
  auto identity = [&](const std::string& id) {
    return crypto::Identity::create(id, ca, rng, net.now(), 3600 * kSecond,
                                    testing::kTestKeyBits);
  };
  transport::LinkParams link = transport::LinkParams::ideal_profile();
  link.base_latency = 500;  // 0.5 ms

  TracingConfig config = chaos_config();
  config.ping_interval = 30 * kMillisecond;
  config.min_ping_interval = 10 * kMillisecond;
  config.gauge_interval = 100 * kMillisecond;
  // Generous relative to the ping period: under TSan an executor can stall
  // for hundreds of milliseconds, and a watchdog close to that stall fires
  // spuriously on the *healthy* post-failover session, churning failovers
  // forever.
  config.broker_silence_timeout = 1500 * kMillisecond;
  config.recovery_announce_delay = 400 * kMillisecond;
  config.retry.initial_backoff = 30 * kMillisecond;
  config.retry.max_backoff = 150 * kMillisecond;
  // Sanitizer builds slow the RSA re-mint by an order of magnitude; a
  // tight deadline would abort the failover rather than merely delay it.
  config.retry.deadline = 120 * kSecond;

  pubsub::Topology topo(net);
  std::vector<pubsub::Broker*> brokers =
      topo.make_chain(2, link, "broker", [&](const std::string& name) {
        pubsub::Broker::Options o;
        o.name = name;
        install_trace_filter(o, anchors, net, config);
        return o;
      });
  std::vector<std::unique_ptr<TracingBrokerService>> services;
  for (auto* b : brokers) {
    services.push_back(
        std::make_unique<TracingBrokerService>(*b, anchors, config, 17));
  }
  discovery::DiscoveryClient registrar(net, identity("registrar"));
  registrar.attach_tdn(tdn->node(), link);
  for (auto* b : brokers) {
    registrar.register_broker(b->name(), b->node(),
                              identity(b->name()).credential);
  }

  TracedEntity entity(net, identity("rt-survivor"), anchors, config, 5);
  entity.attach_tdn(tdn->node(), link);
  entity.connect_broker(brokers[0]->node(), link);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::atomic<int> started{0};
  entity.start_tracing({}, [&](const Status& s) {
    started.store(s.is_ok() ? 1 : -1);
  });
  for (int i = 0; i < 2000 && started.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(started.load(), 1);

  Tracker tracker(net, identity("rt-watcher"), anchors, 6);
  tracker.attach_tdn(tdn->node(), link);
  tracker.connect_broker(brokers[1]->node(), link);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Only post-crash evidence counts. RECOVERING is the usual signal, but
  // if the announce dwell elapses before the tracker's interest reaches
  // the new session, the interest-edge replay delivers READY instead —
  // either one proves the failed-over session is publishing again.
  std::atomic<bool> crashed{false};
  std::atomic<int> recovered{0}, heartbeats_after_recovery{0};
  tracker.track("rt-survivor", kCatAll,
                [&](const TracePayload& p, const pubsub::Message&) {
                  if (!crashed.load()) {
                    return;
                  }
                  if (p.type == TraceType::kRecovering ||
                      p.type == TraceType::kReady) {
                    recovered.fetch_add(1);
                  }
                  if (p.type == TraceType::kAllsWell &&
                      recovered.load() > 0) {
                    heartbeats_after_recovery.fetch_add(1);
                  }
                });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  crashed.store(true);
  net.faults().crash(brokers[0]->node());
  // Silence watchdog (300 ms) + find_broker retries; generous wall-clock
  // budget so loaded CI machines don't flake. Progress is observed only
  // through the tracker's atomics — entity/service internals are owned by
  // their executor threads until the network stops.
  for (int i = 0; i < 12000 && recovered.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (int i = 0; i < 12000 && heartbeats_after_recovery.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  net.faults().restart(brokers[0]->node());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  net.stop();  // joins every executor: state below is quiescent

  EXPECT_GE(recovered.load(), 1);
  EXPECT_GT(heartbeats_after_recovery.load(), 0);
  EXPECT_GE(entity.stats().failovers, 1u);
  EXPECT_TRUE(entity.tracing_active());
  EXPECT_TRUE(services[1]->has_session_for("rt-survivor"));
}

}  // namespace
}  // namespace et::tracing
