// Decoder fuzzing for the replay log and the trace ledger (DESIGN.md §16).
//
// Two adversaries, both seeded and deterministic:
//
//  * a corrupting disk — random chunk overwrites and single-bit flips in
//    the WAL file. Recovery must never crash, never over-read, and must
//    yield a byte-exact prefix of the committed records (the ASan CI
//    stage runs this binary to prove the "never" part);
//
//  * a tampering broker — drop / duplicate / reorder / bit-flip /
//    sequence-rewrite mutations applied to an otherwise valid hash
//    chain. `LedgerAuditor::verify_chain` must flag every single
//    mutation, and must name the exact first broken link.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/common/serialize.h"
#include "src/persist/ledger.h"
#include "src/persist/wal.h"

namespace et::persist {
namespace {

namespace fs = std::filesystem;

class PersistFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("et-persist-fuzz-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

void overwrite_bytes(const std::string& p, std::uint64_t off,
                     BytesView junk) {
  std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(off));
  f.write(reinterpret_cast<const char*>(junk.data()),
          static_cast<std::streamsize>(junk.size()));
}

void flip_bit(const std::string& p, std::uint64_t byte, unsigned bit) {
  std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(byte));
  char c = 0;
  f.get(c);
  c = static_cast<char>(c ^ (1u << bit));
  f.seekp(static_cast<std::streamoff>(byte));
  f.put(c);
}

// --- WAL corruption fuzzing -------------------------------------------

// Random chunk overwrites anywhere in the log: recovery yields a
// byte-exact prefix of what was committed — corrupt or synthesized
// records never surface.
TEST_F(PersistFuzzTest, WalRandomChunkCorruptionYieldsPrefixNeverCrash) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const std::string p = path("wal-" + std::to_string(seed) + ".log");
    std::vector<Bytes> committed;
    {
      Wal wal;
      ASSERT_TRUE(wal.open({.path = p}, [](BytesView) {}).is_ok());
      const std::size_t n = 3 + rng.next_below(12);
      for (std::size_t i = 0; i < n; ++i) {
        committed.push_back(rng.next_bytes(1 + rng.next_below(80)));
        ASSERT_TRUE(wal.append(committed.back()).is_ok());
      }
      wal.close();
    }
    const std::uint64_t len = fs::file_size(p);
    const std::uint64_t off = rng.next_below(len);
    const Bytes junk = rng.next_bytes(
        1 + rng.next_below(std::min<std::uint64_t>(len - off, 48)));
    overwrite_bytes(p, off, junk);

    Wal wal;
    std::vector<Bytes> got;
    const Status s = wal.open({.path = p}, [&](BytesView r) {
      got.emplace_back(r.begin(), r.end());
    });
    ASSERT_TRUE(s.is_ok()) << "seed " << seed << ": " << s.message();
    ASSERT_LE(got.size(), committed.size()) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], committed[i]) << "seed " << seed << " record " << i;
    }
    wal.close();
  }
}

// Single-bit flips: CRC-32 detects every one of them, so the affected
// record (and everything after) must vanish while the prefix survives.
TEST_F(PersistFuzzTest, WalSingleBitFlipNeverSurfacesCorruptRecord) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(1000 + seed);
    const std::string p = path("wal-" + std::to_string(seed) + ".log");
    std::vector<Bytes> committed;
    std::vector<std::uint64_t> ends;
    {
      Wal wal;
      ASSERT_TRUE(wal.open({.path = p}, [](BytesView) {}).is_ok());
      const std::size_t n = 2 + rng.next_below(8);
      for (std::size_t i = 0; i < n; ++i) {
        committed.push_back(rng.next_bytes(1 + rng.next_below(40)));
        ASSERT_TRUE(wal.append(committed.back()).is_ok());
        ends.push_back(wal.size_bytes());
      }
      wal.close();
    }
    const std::uint64_t byte = rng.next_below(fs::file_size(p));
    flip_bit(p, byte, static_cast<unsigned>(rng.next_below(8)));
    // The first record whose frame covers the flipped byte is the first
    // casualty; everything before it must replay verbatim.
    std::size_t survivors = 0;
    while (survivors < ends.size() && ends[survivors] <= byte) ++survivors;

    Wal wal;
    std::vector<Bytes> got;
    ASSERT_TRUE(wal.open({.path = p},
                         [&](BytesView r) {
                           got.emplace_back(r.begin(), r.end());
                         })
                    .is_ok());
    ASSERT_EQ(got.size(), survivors) << "seed " << seed;
    for (std::size_t i = 0; i < survivors; ++i) {
      ASSERT_EQ(got[i], committed[i]) << "seed " << seed;
    }
    wal.close();
  }
}

// Pure garbage files of every small size: open() must neither crash nor
// replay anything that was never appended.
TEST_F(PersistFuzzTest, WalGarbageFilesNeverYieldRecords) {
  Rng rng(7);
  for (std::size_t len = 0; len < 64; ++len) {
    const std::string p = path("junk-" + std::to_string(len) + ".log");
    {
      std::ofstream f(p, std::ios::binary);
      const Bytes junk = rng.next_bytes(len);
      f.write(reinterpret_cast<const char*>(junk.data()),
              static_cast<std::streamsize>(junk.size()));
    }
    Wal wal;
    std::size_t got = 0;
    ASSERT_TRUE(wal.open({.path = p}, [&](BytesView) { ++got; }).is_ok());
    // A garbage prefix could only decode as a record if its CRC matched a
    // random length-prefixed span — astronomically unlikely and, with
    // these fixed seeds, deterministic: nothing decodes.
    EXPECT_EQ(got, 0u) << "len " << len;
    wal.close();
  }
}

// --- ledger record decoder fuzzing ------------------------------------

TEST_F(PersistFuzzTest, LedgerRecordDecoderSurvivesTruncationAndNoise) {
  TraceLedger ledger;  // in-memory
  Rng rng(11);
  ASSERT_TRUE(ledger
                  .append("t/a", "e1", 2, 1000, rng.next_bytes(30),
                          rng.next_bytes(64))
                  .is_ok());
  const Bytes wire = ledger.records("t/a")[0].serialize();
  // Every truncation of a valid encoding must throw, not over-read.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)LedgerRecord::deserialize(
                     BytesView(wire.data(), len)),
                 SerializeError)
        << "len " << len;
  }
  // Random noise: decode either throws or yields *some* record; it must
  // never crash. (Validity is the auditor's job, not the decoder's.)
  for (int i = 0; i < 200; ++i) {
    const Bytes junk = rng.next_bytes(1 + rng.next_below(120));
    try {
      (void)LedgerRecord::deserialize(junk);
    } catch (const SerializeError&) {
      // expected for nearly all inputs
    }
  }
}

// --- hash-chain mutation fuzzing --------------------------------------

// Builds a deterministic valid chain of `n` records.
std::vector<LedgerRecord> build_chain(std::size_t n, std::uint64_t seed) {
  TraceLedger ledger;  // in-memory
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(ledger
                    .append("topic/x", "entity-" + std::to_string(i % 3),
                            static_cast<std::uint8_t>(rng.next_below(7)),
                            static_cast<TimePoint>(1000 * (i + 1)),
                            rng.next_bytes(10 + rng.next_below(40)),
                            rng.next_bytes(32))
                    .is_ok());
  }
  return ledger.records("topic/x");
}

enum class Mutation : std::uint8_t {
  kDropInterior,    // remove a non-tail record
  kDuplicate,       // append a copy of record k right after itself
  kSwapAdjacent,    // reorder records k and k+1
  kFlipPayloadBit,  // tamper the stored trace body
  kFlipPrevDigest,  // tamper the chain link itself
  kFlipDigest,      // tamper the record's own digest
  kRewriteSequence, // forge the sequence number
  kRewriteIssuedAt, // backdate the record
  kCount,
};

struct MutationOutcome {
  std::size_t expect_broken = 0;  // index verify_chain must report
};

// Applies `m` at position `k`; returns where the auditor must flag it.
MutationOutcome apply_mutation(std::vector<LedgerRecord>& chain, Mutation m,
                               std::size_t k, Rng& rng) {
  switch (m) {
    case Mutation::kDropInterior:
      chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(k));
      // The successor now sits at index k carrying sequence k+2.
      return {.expect_broken = k};
    case Mutation::kDuplicate:
      chain.insert(chain.begin() + static_cast<std::ptrdiff_t>(k + 1),
                   chain[k]);
      // The copy at k+1 repeats sequence k+1 where k+2 belongs.
      return {.expect_broken = k + 1};
    case Mutation::kSwapAdjacent:
      std::swap(chain[k], chain[k + 1]);
      return {.expect_broken = k};
    case Mutation::kFlipPayloadBit: {
      Bytes& p = chain[k].payload;
      p[rng.next_below(p.size())] ^= static_cast<std::uint8_t>(
          1u << rng.next_below(8));
      return {.expect_broken = k};
    }
    case Mutation::kFlipPrevDigest: {
      Bytes& d = chain[k].prev_digest;
      d[rng.next_below(d.size())] ^= static_cast<std::uint8_t>(
          1u << rng.next_below(8));
      return {.expect_broken = k};
    }
    case Mutation::kFlipDigest: {
      Bytes& d = chain[k].digest;
      d[rng.next_below(d.size())] ^= static_cast<std::uint8_t>(
          1u << rng.next_below(8));
      return {.expect_broken = k};
    }
    case Mutation::kRewriteSequence:
      chain[k].sequence += 1 + rng.next_below(5);
      return {.expect_broken = k};
    case Mutation::kRewriteIssuedAt:
      chain[k].issued_at -= 1;
      return {.expect_broken = k};
    case Mutation::kCount:
      break;
  }
  ADD_FAILURE() << "unreachable";
  return {};
}

// Every mutation kind, every viable position, several chain seeds: the
// auditor must detect 100% of them and name the exact first broken link.
TEST_F(PersistFuzzTest, LedgerAuditorFlagsEveryMutationAtExactLink) {
  constexpr std::size_t kChain = 8;
  std::size_t mutations_checked = 0;
  for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
    const std::vector<LedgerRecord> pristine = build_chain(kChain, seed);
    ASSERT_TRUE(LedgerAuditor::verify_chain(pristine).ok);

    for (std::uint8_t mi = 0;
         mi < static_cast<std::uint8_t>(Mutation::kCount); ++mi) {
      const auto m = static_cast<Mutation>(mi);
      // Viable positions: drops skip the tail (a truncated tail is a
      // shorter-but-valid chain — head_digest comparison catches it, not
      // chain verification); swaps need a successor.
      const std::size_t limit =
          (m == Mutation::kDropInterior || m == Mutation::kSwapAdjacent)
              ? kChain - 1
              : kChain;
      for (std::size_t k = 0; k < limit; ++k) {
        Rng rng(seed * 1000 + mi * 100 + k);
        std::vector<LedgerRecord> chain = pristine;
        const MutationOutcome want = apply_mutation(chain, m, k, rng);
        const ChainReport report = LedgerAuditor::verify_chain(chain);
        ASSERT_FALSE(report.ok)
            << "mutation " << int(mi) << " at " << k << " seed " << seed
            << " escaped the auditor";
        EXPECT_EQ(report.first_broken, want.expect_broken)
            << "mutation " << int(mi) << " at " << k << " seed " << seed
            << " reason: " << report.reason;
        EXPECT_FALSE(report.reason.empty());
        ++mutations_checked;
      }
    }
  }
  // 3 seeds x (2 kinds x 7 positions + 6 kinds x 8 positions).
  EXPECT_EQ(mutations_checked, 3u * (2 * (kChain - 1) + 6 * kChain));
}

// Dropping the tail record is invisible to chain verification by design;
// the durable head digest is the defence. Pin that boundary explicitly so
// nobody mistakes it for detection coverage.
TEST_F(PersistFuzzTest, LedgerTailDropDetectedByHeadDigestNotChain) {
  std::vector<LedgerRecord> chain = build_chain(5, 21);
  const Bytes head = chain.back().digest;
  chain.pop_back();
  EXPECT_TRUE(LedgerAuditor::verify_chain(chain).ok);
  EXPECT_NE(chain.back().digest, head);
}

// Durable ledger under random file corruption: reopening must never
// crash, and the recovered records must be a prefix of what was written.
TEST_F(PersistFuzzTest, LedgerLogCorruptionRecoversPrefixNeverCrash) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(500 + seed);
    const std::string p = path("ledger-" + std::to_string(seed) + ".log");
    std::vector<LedgerRecord> written;
    {
      TraceLedger ledger;
      ASSERT_TRUE(ledger.open({.path = p}).is_ok());
      const std::size_t n = 3 + rng.next_below(10);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(ledger
                        .append("t", "e", 1,
                                static_cast<TimePoint>(100 * (i + 1)),
                                rng.next_bytes(20), rng.next_bytes(16))
                        .is_ok());
      }
      written = ledger.records("t");
    }
    const std::uint64_t len = fs::file_size(p);
    const Bytes junk = rng.next_bytes(1 + rng.next_below(32));
    overwrite_bytes(p, rng.next_below(len), junk);

    TraceLedger reopened;
    ASSERT_TRUE(reopened.open({.path = p}).is_ok()) << "seed " << seed;
    const std::vector<std::string> topics = reopened.topics();
    if (!topics.empty()) {
      const auto& got = reopened.records("t");
      ASSERT_LE(got.size(), written.size()) << "seed " << seed;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], written[i]) << "seed " << seed << " record " << i;
      }
      // Whatever survived is a valid prefix — its chain must verify.
      EXPECT_TRUE(LedgerAuditor::verify_chain(got).ok) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace et::persist
