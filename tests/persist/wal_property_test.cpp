// Crash-recovery property tests for the write-ahead log (DESIGN.md §16).
//
// The WAL's contract is prefix durability: after a crash at ANY byte of
// the file, recovery replays exactly the longest prefix of committed
// records whose frames verify — never a torn record, never a phantom.
// These tests prove it exhaustively (truncation at every byte boundary
// of the tail record) and statistically (randomized write/crash/recover
// cycles), plus the snapshot store's atomic-replace and corruption
// detection, and the DurableStore checkpoint dance.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/random.h"
#include "src/persist/store.h"
#include "src/persist/wal.h"

namespace et::persist {
namespace {

namespace fs = std::filesystem;

// Unique scratch directory per test, removed on teardown.
class PersistWalPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("et-persist-test-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

Bytes record_payload(std::uint64_t i, std::size_t len) {
  Bytes b(len);
  for (std::size_t k = 0; k < len; ++k) {
    b[k] = static_cast<std::uint8_t>((i * 131 + k * 7 + 3) & 0xff);
  }
  return b;
}

std::vector<Bytes> replay_all(const std::string& p) {
  std::vector<Bytes> out;
  Wal wal;
  Status s = wal.open({.path = p, .fsync = FsyncPolicy::kNever},
                      [&](BytesView r) { out.emplace_back(r.begin(), r.end()); });
  EXPECT_TRUE(s.is_ok()) << s.message();
  wal.close();
  return out;
}

void truncate_file(const std::string& p, std::uint64_t len) {
  fs::resize_file(p, len);
}

std::uint64_t file_size(const std::string& p) { return fs::file_size(p); }

// --- exhaustive torn-tail sweep ---------------------------------------

// Write N records, then for EVERY byte boundary inside the tail record's
// frame, copy the log, truncate at that boundary, and recover: the result
// must be exactly the first N-1 records — the torn tail never surfaces,
// and nothing before it is lost.
TEST_F(PersistWalPropertyTest, TruncationAtEveryTailByteYieldsExactPrefix) {
  const std::string p = path("wal.log");
  constexpr std::size_t kRecords = 5;
  std::vector<Bytes> committed;
  std::uint64_t prefix_len = 0;  // bytes occupied by records [0, N-1)
  {
    Wal wal;
    ASSERT_TRUE(wal.open({.path = p}, [](BytesView) {}).is_ok());
    for (std::size_t i = 0; i < kRecords; ++i) {
      committed.push_back(record_payload(i, 16 + i * 9));
      if (i + 1 == kRecords) prefix_len = wal.size_bytes();
      ASSERT_TRUE(wal.append(committed.back()).is_ok());
    }
    wal.close();
  }
  const std::uint64_t full_len = file_size(p);
  ASSERT_GT(full_len, prefix_len);

  for (std::uint64_t cut = prefix_len; cut < full_len; ++cut) {
    const std::string torn = path("torn.log");
    fs::copy_file(p, torn, fs::copy_options::overwrite_existing);
    truncate_file(torn, cut);

    const std::vector<Bytes> got = replay_all(torn);
    ASSERT_EQ(got.size(), kRecords - 1) << "cut at byte " << cut;
    for (std::size_t i = 0; i + 1 < kRecords; ++i) {
      EXPECT_EQ(got[i], committed[i]) << "cut at byte " << cut;
    }
    // Recovery truncated the torn tail: the file now holds the prefix.
    EXPECT_EQ(file_size(torn), prefix_len) << "cut at byte " << cut;
    fs::remove(torn);
  }
}

// Same sweep but cutting anywhere in the whole file: recovery must yield
// the records whose frames fit entirely before the cut, in order.
TEST_F(PersistWalPropertyTest, TruncationAnywhereYieldsCommittedPrefix) {
  const std::string p = path("wal.log");
  constexpr std::size_t kRecords = 4;
  std::vector<Bytes> committed;
  std::vector<std::uint64_t> ends;  // file length after each append
  {
    Wal wal;
    ASSERT_TRUE(wal.open({.path = p}, [](BytesView) {}).is_ok());
    for (std::size_t i = 0; i < kRecords; ++i) {
      committed.push_back(record_payload(i, 5 + i * 11));
      ASSERT_TRUE(wal.append(committed.back()).is_ok());
      ends.push_back(wal.size_bytes());
    }
    wal.close();
  }
  for (std::uint64_t cut = 0; cut <= ends.back(); ++cut) {
    std::size_t expect = 0;
    while (expect < kRecords && ends[expect] <= cut) ++expect;

    const std::string torn = path("torn.log");
    fs::copy_file(p, torn, fs::copy_options::overwrite_existing);
    truncate_file(torn, cut);

    const std::vector<Bytes> got = replay_all(torn);
    ASSERT_EQ(got.size(), expect) << "cut at byte " << cut;
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(got[i], committed[i]) << "cut at byte " << cut;
    }
    fs::remove(torn);
  }
}

// --- randomized write/crash/recover cycles ----------------------------

// Many rounds: append a random batch, "crash" by truncating the file at a
// random byte ≥ the last committed boundary we keep, recover, verify the
// survivor set is exactly a prefix of everything committed so far, then
// keep appending on top of the recovered log. Model state (the committed
// prefix) is tracked outside the WAL.
TEST_F(PersistWalPropertyTest, RandomizedCrashRecoverCyclesPreservePrefix) {
  for (std::uint64_t seed : {7ULL, 42ULL, 1234ULL}) {
    const std::string p = path("wal-" + std::to_string(seed) + ".log");
    Rng rng(seed);
    std::vector<Bytes> model;          // records known durable
    std::vector<std::uint64_t> ends;   // file length after each record
    std::uint64_t base = 0;

    for (int round = 0; round < 25; ++round) {
      // Append a batch.
      {
        Wal wal;
        std::size_t replayed = 0;
        ASSERT_TRUE(
            wal.open({.path = p}, [&](BytesView) { ++replayed; }).is_ok());
        ASSERT_EQ(replayed, model.size());
        const std::size_t batch = 1 + rng.next_below(6);
        for (std::size_t i = 0; i < batch; ++i) {
          Bytes r = rng.next_bytes(1 + rng.next_below(64));
          ASSERT_TRUE(wal.append(r).is_ok());
          model.push_back(std::move(r));
          ends.push_back(wal.size_bytes());
        }
        wal.close();
      }
      // Crash: cut at a uniformly random byte of the file.
      const std::uint64_t len = file_size(p);
      const std::uint64_t cut = base + rng.next_below(len - base + 1);
      truncate_file(p, cut);
      // Shrink the model to the surviving prefix.
      while (!ends.empty() && ends.back() > cut) {
        ends.pop_back();
        model.pop_back();
      }
      base = ends.empty() ? 0 : ends.back();
      // Recover and compare against the model exactly.
      const std::vector<Bytes> got = replay_all(p);
      ASSERT_EQ(got.size(), model.size()) << "seed " << seed << " round "
                                          << round;
      for (std::size_t i = 0; i < model.size(); ++i) {
        ASSERT_EQ(got[i], model[i]) << "seed " << seed << " round " << round;
      }
      // replay_all's recovery rewrote the file to the valid prefix.
      ASSERT_EQ(file_size(p), base);
    }
  }
}

// Trailing garbage (random bytes appended by a confused writer) must be
// dropped, not decoded.
TEST_F(PersistWalPropertyTest, TrailingGarbageIsTruncatedNotReplayed) {
  const std::string p = path("wal.log");
  const Bytes only = record_payload(1, 20);
  {
    Wal wal;
    ASSERT_TRUE(wal.open({.path = p}, [](BytesView) {}).is_ok());
    ASSERT_TRUE(wal.append(only).is_ok());
    wal.close();
  }
  Rng rng(99);
  {
    std::ofstream f(p, std::ios::binary | std::ios::app);
    const Bytes junk = rng.next_bytes(37);
    f.write(reinterpret_cast<const char*>(junk.data()),
            static_cast<std::streamsize>(junk.size()));
  }
  Wal wal;
  std::vector<Bytes> got;
  ASSERT_TRUE(wal.open({.path = p},
                       [&](BytesView r) {
                         got.emplace_back(r.begin(), r.end());
                       })
                  .is_ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], only);
  EXPECT_TRUE(wal.recovery().torn_tail);
  EXPECT_GT(wal.recovery().truncated_bytes, 0u);
  wal.close();
}

// A length field claiming more than kMaxWalRecord is corruption, not an
// allocation request.
TEST_F(PersistWalPropertyTest, OversizedLengthFieldTreatedAsCorruption) {
  const std::string p = path("wal.log");
  {
    std::ofstream f(p, std::ios::binary);
    const std::uint8_t huge[8] = {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0};
    f.write(reinterpret_cast<const char*>(huge), 8);
  }
  const std::vector<Bytes> got = replay_all(p);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(file_size(p), 0u);
}

TEST_F(PersistWalPropertyTest, AppendRejectsOversizedRecord) {
  Wal wal;
  ASSERT_TRUE(wal.open({.path = path("wal.log")}, [](BytesView) {}).is_ok());
  const Bytes big(kMaxWalRecord + 1, 0xab);
  EXPECT_FALSE(wal.append(big).is_ok());
  wal.close();
}

// --- snapshot store ---------------------------------------------------

TEST_F(PersistWalPropertyTest, SnapshotRoundTripAndAtomicReplace) {
  SnapshotStore snap(path("snapshot.bin"));
  EXPECT_EQ(snap.load().status().code(), Code::kNotFound);

  const Bytes v1 = record_payload(1, 100);
  ASSERT_TRUE(snap.save(v1).is_ok());
  auto r1 = snap.load();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value(), v1);

  const Bytes v2 = record_payload(2, 250);
  ASSERT_TRUE(snap.save(v2).is_ok());
  auto r2 = snap.load();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), v2);
}

// Flip every single byte of a saved snapshot in turn: load must fail its
// header or CRC check every time — silent corruption is not an option.
TEST_F(PersistWalPropertyTest, SnapshotDetectsEveryByteFlip) {
  const std::string p = path("snapshot.bin");
  SnapshotStore snap(p);
  ASSERT_TRUE(snap.save(record_payload(3, 64)).is_ok());

  std::ifstream in(p, std::ios::binary);
  std::vector<char> orig((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();

  for (std::size_t i = 0; i < orig.size(); ++i) {
    std::vector<char> bad = orig;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    {
      std::ofstream out(p, std::ios::binary | std::ios::trunc);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    EXPECT_FALSE(snap.load().ok()) << "flip at byte " << i;
  }
}

// --- durable store (snapshot + WAL composition) -----------------------

// Map-shaped state machine: records are (key, value) pairs, snapshot is
// the serialized map. Replay over snapshot must be idempotent.
struct MapState {
  std::map<std::uint8_t, std::uint8_t> m;

  void apply(BytesView r) {
    ASSERT_EQ(r.size(), 2u);
    m[r[0]] = r[1];
  }
  void load(BytesView blob) {
    m.clear();
    ASSERT_EQ(blob.size() % 2, 0u);
    for (std::size_t i = 0; i < blob.size(); i += 2) m[blob[i]] = blob[i + 1];
  }
  [[nodiscard]] Bytes blob() const {
    Bytes b;
    for (auto& [k, v] : m) {
      b.push_back(k);
      b.push_back(v);
    }
    return b;
  }
};

TEST_F(PersistWalPropertyTest, DurableStoreCheckpointAndReplayConverge) {
  const std::string d = path("store");
  Rng rng(2024);
  MapState model;

  for (int round = 0; round < 10; ++round) {
    DurableStore store;
    MapState recovered;
    ASSERT_TRUE(store
                    .open({.dir = d},
                          [&](BytesView blob) { recovered.load(blob); },
                          [&](BytesView r) { recovered.apply(r); })
                    .is_ok());
    ASSERT_EQ(recovered.m, model.m) << "round " << round;

    const std::size_t writes = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < writes; ++i) {
      const Bytes r{static_cast<std::uint8_t>(rng.next_below(16)),
                    static_cast<std::uint8_t>(rng.next_below(256))};
      ASSERT_TRUE(store.append(r).is_ok());
      model.apply(r);
      recovered.apply(r);
    }
    if (round % 3 == 2) {
      ASSERT_TRUE(store.checkpoint(recovered.blob()).is_ok());
      ASSERT_EQ(store.wal_records(), 0u);
    }
    store.close();
  }
}

TEST_F(PersistWalPropertyTest, DurableStoreResetWipesEverything) {
  const std::string d = path("store");
  DurableStore store;
  ASSERT_TRUE(
      store.open({.dir = d}, [](BytesView) {}, [](BytesView) {}).is_ok());
  ASSERT_TRUE(store.append(record_payload(1, 4)).is_ok());
  ASSERT_TRUE(store.checkpoint(record_payload(2, 8)).is_ok());
  ASSERT_TRUE(store.append(record_payload(3, 4)).is_ok());
  ASSERT_TRUE(store.reset().is_ok());
  store.close();

  DurableStore again;
  bool snapshot_seen = false;
  std::size_t records = 0;
  ASSERT_TRUE(again
                  .open({.dir = d},
                        [&](BytesView) { snapshot_seen = true; },
                        [&](BytesView) { ++records; })
                  .is_ok());
  EXPECT_FALSE(snapshot_seen);
  EXPECT_EQ(records, 0u);
  again.close();
}

// A corrupt snapshot must fail open() loudly — recovering from WAL alone
// would silently drop the checkpointed state.
TEST_F(PersistWalPropertyTest, DurableStoreRefusesCorruptSnapshot) {
  const std::string d = path("store");
  {
    DurableStore store;
    ASSERT_TRUE(
        store.open({.dir = d}, [](BytesView) {}, [](BytesView) {}).is_ok());
    ASSERT_TRUE(store.checkpoint(record_payload(1, 32)).is_ok());
    store.close();
  }
  {
    std::ofstream f(d + "/snapshot.bin",
                    std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(6);
    f.put(static_cast<char>(0xee));
  }
  DurableStore store;
  EXPECT_FALSE(
      store.open({.dir = d}, [](BytesView) {}, [](BytesView) {}).is_ok());
}

}  // namespace
}  // namespace et::persist
