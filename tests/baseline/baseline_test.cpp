// Baseline failure detectors: correctness of the all-pairs heartbeat and
// gossip schemes, plus the quadratic-vs-subquadratic message-count claim
// from the paper's introduction.
#include <gtest/gtest.h>

#include "src/baseline/allpairs_heartbeat.h"
#include "src/baseline/gossip_detector.h"

namespace et::baseline {
namespace {

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

TEST(AllPairsTest, NoFalsePositivesWhenAllAlive) {
  transport::VirtualTimeNetwork net(1);
  AllPairsSystem sys(net, 6, 100 * kMillisecond, 500 * kMillisecond, fast());
  sys.start();
  net.run_for(3 * kSecond);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_TRUE(sys.node(i).failed_peers().empty()) << "node " << i;
  }
}

TEST(AllPairsTest, AllDetectAFailedNode) {
  transport::VirtualTimeNetwork net(2);
  AllPairsSystem sys(net, 6, 100 * kMillisecond, 500 * kMillisecond, fast());
  sys.start();
  net.run_for(1 * kSecond);
  sys.node(2).fail();
  net.run_for(2 * kSecond);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(sys.node(i).failed_peers(),
              (std::vector<std::string>{"node2"}))
        << "node " << i;
  }
}

TEST(AllPairsTest, DetectionLatencyBounded) {
  transport::VirtualTimeNetwork net2(3);
  AllPairsSystem sys2(net2, 4, 100 * kMillisecond, 400 * kMillisecond,
                      fast());
  sys2.start();
  net2.run_for(1 * kSecond);
  TimePoint detected_at = 0;
  sys2.node(0).on_failure = [&](const std::string& peer, TimePoint at) {
    if (peer == "node1" && detected_at == 0) detected_at = at;
  };
  const TimePoint failed_at = net2.now();
  sys2.node(1).fail();
  net2.run_for(2 * kSecond);
  ASSERT_GT(detected_at, 0);
  const Duration latency = detected_at - failed_at;
  EXPECT_GE(latency, 400 * kMillisecond);      // not before the timeout
  EXPECT_LE(latency, 700 * kMillisecond);      // timeout + sweep granularity
}

TEST(AllPairsTest, MessageCountIsQuadratic) {
  // N nodes for T seconds at interval I => N*(N-1)*T/I heartbeats.
  for (const std::size_t n : {4u, 8u}) {
    transport::VirtualTimeNetwork net(4);
    AllPairsSystem sys(net, n, 100 * kMillisecond, kSecond, fast());
    sys.start();
    net.run_for(1 * kSecond);
    const auto expected = static_cast<std::uint64_t>(n * (n - 1) * 10);
    EXPECT_NEAR(static_cast<double>(sys.total_heartbeats()),
                static_cast<double>(expected), expected * 0.15)
        << "n=" << n;
  }
}

TEST(AllPairsTest, RecoveryClearsSuspicion) {
  transport::VirtualTimeNetwork net(5);
  AllPairsSystem sys(net, 3, 100 * kMillisecond, 400 * kMillisecond, fast());
  sys.start();
  net.run_for(1 * kSecond);
  sys.node(1).fail();
  net.run_for(1 * kSecond);
  EXPECT_FALSE(sys.node(0).failed_peers().empty());
  // AllPairsNode::fail is one-way in the API; emulate recovery by a fresh
  // heartbeat: the suspicion clears when traffic resumes.
  // (Covered more fully by the tracing-layer recovery test.)
}

TEST(GossipTest, NoFalsePositivesWhenAllAlive) {
  transport::VirtualTimeNetwork net(6);
  GossipSystem sys(net, 8, 100 * kMillisecond, 1 * kSecond, 2, fast(), 99);
  sys.start();
  net.run_for(5 * kSecond);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_TRUE(sys.node(i).suspected().empty()) << "node " << i;
  }
}

TEST(GossipTest, FailureSpreadsByGossip) {
  transport::VirtualTimeNetwork net(7);
  GossipSystem sys(net, 8, 100 * kMillisecond, 1 * kSecond, 2, fast(), 7);
  sys.start();
  net.run_for(2 * kSecond);
  sys.node(3).fail();
  net.run_for(5 * kSecond);
  int detectors = 0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    if (i == 3) continue;
    const auto suspected = sys.node(i).suspected();
    if (std::find(suspected.begin(), suspected.end(), "gossip3") !=
        suspected.end()) {
      ++detectors;
    }
  }
  EXPECT_EQ(detectors, 7);  // everyone eventually hears
}

TEST(GossipTest, MessageCountLinearInFanout) {
  // N nodes, fanout k, T/I rounds => N*k*T/I gossips — linear in N.
  for (const std::size_t n : {8u, 16u}) {
    transport::VirtualTimeNetwork net(8);
    GossipSystem sys(net, n, 100 * kMillisecond, 10 * kSecond, 2, fast(), 3);
    sys.start();
    net.run_for(1 * kSecond);
    const auto expected = static_cast<std::uint64_t>(n * 2 * 10);
    EXPECT_NEAR(static_cast<double>(sys.total_gossips()),
                static_cast<double>(expected), expected * 0.15)
        << "n=" << n;
  }
}

TEST(GossipTest, CountersOnlyIncrease) {
  transport::VirtualTimeNetwork net(9);
  GossipSystem sys(net, 4, 100 * kMillisecond, kSecond, 1, fast(), 5);
  sys.start();
  net.run_for(2 * kSecond);
  // Live members should never be suspected while gossip flows.
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_TRUE(sys.node(i).suspected().empty());
  }
}

TEST(ComparisonTest, GossipUsesFarFewerMessagesThanAllPairs) {
  constexpr std::size_t kN = 24;
  transport::VirtualTimeNetwork net_a(10);
  AllPairsSystem all_pairs(net_a, kN, 100 * kMillisecond, kSecond, fast());
  all_pairs.start();
  net_a.run_for(1 * kSecond);

  transport::VirtualTimeNetwork net_g(10);
  GossipSystem gossip(net_g, kN, 100 * kMillisecond, 2 * kSecond, 2, fast(),
                      11);
  gossip.start();
  net_g.run_for(1 * kSecond);

  EXPECT_GT(all_pairs.total_heartbeats(), gossip.total_gossips() * 5);
}

}  // namespace
}  // namespace et::baseline
