// TDN replica-quorum behaviour across partitions: a discovery client on
// the minority side of a split must fail over to reachable replicas, a
// late heal must not resurrect expired (stale) state, and re-registering
// after the heal must be idempotent — the registry converges instead of
// accumulating duplicates.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/transport/fault_injector.h"
#include "src/transport/virtual_network.h"

namespace et::discovery {
namespace {

constexpr std::size_t kBits = 512;
constexpr std::size_t kReplicas = 3;

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

struct TdnQuorumFixture : ::testing::Test {
  TdnQuorumFixture() : rng(17), ca("ca", rng, kBits) {
    // Replicas share one signing keypair: they present as one logical
    // discovery service behind a single trusted tdn_key.
    const crypto::RsaKeyPair shared = crypto::rsa_generate(rng, kBits);
    for (std::size_t i = 0; i < kReplicas; ++i) {
      crypto::Identity ident;
      ident.id = "tdn-" + std::to_string(i);
      ident.keys = shared;
      ident.credential = ca.issue(ident.id, shared.public_key, net.now(),
                                  3600 * kSecond);
      tdns.push_back(std::make_unique<Tdn>(net, std::move(ident),
                                           ca.public_key(), 5 + i));
    }
    for (std::size_t i = 0; i < kReplicas; ++i) {
      for (std::size_t j = i + 1; j < kReplicas; ++j) {
        net.link(tdns[i]->node(), tdns[j]->node(), fast());
        tdns[i]->peer(tdns[j]->node());
        tdns[j]->peer(tdns[i]->node());
      }
    }
  }

  crypto::Identity identity(const std::string& id) {
    return crypto::Identity::create(id, ca, rng, net.now(), 3600 * kSecond,
                                    kBits);
  }

  /// Client attached to every replica (tdn-0 first, so a partitioned
  /// tdn-0 is what the first attempt hits), retries enabled.
  std::unique_ptr<DiscoveryClient> client(const std::string& id) {
    auto c = std::make_unique<DiscoveryClient>(net, identity(id));
    for (const auto& t : tdns) c->attach_tdn(t->node(), fast());
    RetryPolicy p;
    p.max_attempts = 6;
    p.initial_backoff = 50 * kMillisecond;
    p.max_backoff = 200 * kMillisecond;
    p.deadline = 15 * kSecond;
    c->set_retry_policy(p);
    return c;
  }

  Result<TopicAdvertisement> create(DiscoveryClient& c,
                                    const std::string& descriptor,
                                    Duration lifetime = 3600 * kSecond) {
    Result<TopicAdvertisement> out(internal_error("no callback"));
    c.create_topic(descriptor, {}, lifetime,
                   [&](Result<TopicAdvertisement> r) { out = std::move(r); });
    net.run_until_idle();
    return out;
  }

  Result<std::vector<TopicAdvertisement>> discover(DiscoveryClient& c,
                                                   const std::string& query) {
    Result<std::vector<TopicAdvertisement>> out(internal_error("no cb"));
    c.discover(query, [&](Result<std::vector<TopicAdvertisement>> r) {
      out = std::move(r);
    });
    net.run_until_idle();
    return out;
  }

  Result<BrokerLocation> find_broker(DiscoveryClient& c) {
    Result<BrokerLocation> out(internal_error("no cb"));
    c.find_broker([&](Result<BrokerLocation> r) { out = std::move(r); });
    net.run_until_idle();
    return out;
  }

  /// Splits replica 0 into the minority side; everything in `majority`
  /// (the other replicas plus any client nodes that must stay on the
  /// majority side) loses its path to it. The injector only severs
  /// listed-to-listed pairs, so clients must be listed explicitly.
  void split_minority(std::vector<transport::NodeId> majority = {}) {
    majority.push_back(tdns[1]->node());
    majority.push_back(tdns[2]->node());
    net.faults().partition({{tdns[0]->node()}, std::move(majority)});
  }
  void heal() { net.faults().heal(); }

  transport::VirtualTimeNetwork net{1234};
  Rng rng;
  crypto::CertificateAuthority ca;
  std::vector<std::unique_ptr<Tdn>> tdns;
};

TEST_F(TdnQuorumFixture, MinorityDiscoveryFailsOverToMajority) {
  auto owner = client("entity-1");
  ASSERT_TRUE(create(*owner, "Availability/Traces/entity-1").ok());
  auto reg = client("registrar");
  const transport::NodeId broker =
      net.add_node("broker-0", [](transport::NodeId, BytesView) {});
  reg->register_broker("broker-0", broker,
                       identity("broker-0").credential);
  net.run_until_idle();
  for (const auto& t : tdns) EXPECT_EQ(t->broker_count(), 1u);

  // Replica 0 — the one every client tries first — ends up on the wrong
  // side of the split from both clients below.
  auto seeker = client("tracker-1");
  auto stuck = std::make_unique<DiscoveryClient>(net, identity("stuck"));
  stuck->attach_tdn(tdns[0]->node(), fast());
  split_minority({seeker->node(), stuck->node()});

  const auto found = discover(*seeker, "Liveness/entity-1");
  ASSERT_TRUE(found.ok())
      << "rotation to a majority replica should answer: "
      << found.status().to_string();
  ASSERT_EQ(found.value().size(), 1u);
  EXPECT_EQ(found.value()[0].descriptor(), "Availability/Traces/entity-1");

  const auto loc = find_broker(*seeker);
  ASSERT_TRUE(loc.ok()) << loc.status().to_string();
  EXPECT_EQ(loc->node, broker);

  // Without retries there is no rotation: a client whose only replica is
  // on the minority side stays unanswered (silence, kNotFound).
  const auto nothing = discover(*stuck, "Liveness/entity-1");
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.status().code(), Code::kNotFound);
}

TEST_F(TdnQuorumFixture, LateHealDoesNotResurrectExpiredState) {
  // A short-lived topic is replicated everywhere, then the replica set
  // splits and the advertisement expires during the partition.
  auto owner = client("entity-2");
  ASSERT_TRUE(create(*owner, "Availability/Traces/entity-2",
                     2 * kSecond).ok());
  for (const auto& t : tdns) EXPECT_EQ(t->advertisement_count(), 1u);

  split_minority();
  net.run_for(3 * kSecond);  // outlives the advertisement
  heal();

  // The heal must not resurrect the expired advertisement on any side —
  // a minority-only client and a majority client both get silence.
  auto minority = std::make_unique<DiscoveryClient>(net, identity("m"));
  minority->attach_tdn(tdns[0]->node(), fast());
  EXPECT_FALSE(discover(*minority, "Liveness/entity-2").ok());
  auto majority = client("M");
  EXPECT_FALSE(discover(*majority, "Liveness/entity-2").ok());

  // A topic minted on the majority during the partition never reached
  // replica 0 (replication is push-at-create; there is deliberately no
  // anti-entropy on heal), yet replica rotation still serves it.
  auto owner2 = client("entity-3");
  split_minority({owner2->node()});
  ASSERT_TRUE(create(*owner2, "Availability/Traces/entity-3").ok());
  heal();
  EXPECT_EQ(tdns[0]->advertisement_count(), 1u);  // only the expired one
  EXPECT_EQ(tdns[1]->advertisement_count(), 2u);
  auto seeker = client("tracker-3");
  EXPECT_TRUE(discover(*seeker, "Liveness/entity-3").ok());
}

// Expiry monotonicity across downtime (DESIGN.md §16): a durable replica
// that crashes and later recovers from its snapshot+WAL must drop every
// advertisement that expired while it was down, and a stale replicate
// arriving late (a heal delivering pre-partition state) must not
// resurrect one either — expiry is monotonic across the replica set.
TEST_F(TdnQuorumFixture, ExpiryDuringDowntimeNotResurrectedOnRecovery) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "et-tdn-quorum-durable";
  fs::remove_all(dir);
  const crypto::RsaKeyPair shared = crypto::rsa_generate(rng, kBits);
  auto make = [&](const std::string& id, std::uint64_t seed) {
    crypto::Identity ident;
    ident.id = id;
    ident.keys = shared;
    ident.credential =
        ca.issue(id, shared.public_key, net.now(), 3600 * kSecond);
    return std::make_unique<Tdn>(
        net, Tdn::Options{std::move(ident), ca.public_key(), seed,
                          (dir / id).string(),
                          persist::FsyncPolicy::kNever});
  };
  auto d0 = make("tdn-d0", 31);
  auto d1 = make("tdn-d1", 32);
  net.link(d0->node(), d1->node(), fast());
  d0->peer(d1->node());
  d1->peer(d0->node());

  auto owner = std::make_unique<DiscoveryClient>(net, identity("entity-9"));
  owner->attach_tdn(d0->node(), fast());
  ASSERT_TRUE(
      create(*owner, "Availability/Traces/entity-9", 2 * kSecond).ok());
  EXPECT_EQ(d0->advertisement_count(), 1u);
  EXPECT_EQ(d1->advertisement_count(), 1u);
  // Fold the ad into the snapshot so recovery exercises the snapshot
  // path, not just WAL replay.
  ASSERT_TRUE(d0->checkpoint().is_ok());

  // Replica 0 is down while the advertisement expires; recovery from the
  // snapshot must refuse to load it back.
  net.run_for(3 * kSecond);
  d0->simulate_restart(/*with_state=*/true);
  EXPECT_TRUE(d0->store().snapshot_loaded());
  EXPECT_EQ(d0->advertisement_count(), 0u);
  EXPECT_GE(d0->stats().expired_dropped, 1u);
  auto probe = std::make_unique<DiscoveryClient>(net, identity("probe"));
  probe->attach_tdn(d0->node(), fast());
  EXPECT_FALSE(discover(*probe, "Liveness/entity-9").ok());

  // Late replicate: a peer's push that arrives after the lifetime (the
  // heal delivering pre-partition traffic) must be dropped on arrival.
  auto d2 = make("tdn-d2", 33);
  auto d3 = make("tdn-d3", 34);
  transport::LinkParams slow = fast();
  slow.base_latency = 4 * kSecond;  // longer than the topic lifetime
  net.link(d2->node(), d3->node(), slow);
  d3->peer(d2->node());
  auto owner2 = std::make_unique<DiscoveryClient>(net, identity("entity-10"));
  owner2->attach_tdn(d3->node(), fast());
  ASSERT_TRUE(
      create(*owner2, "Availability/Traces/entity-10", 2 * kSecond).ok());
  EXPECT_EQ(d3->advertisement_count(), 1u);
  EXPECT_EQ(d2->advertisement_count(), 0u)
      << "a replicate older than the lifetime must not be stored";
  EXPECT_GE(d2->stats().expired_dropped, 1u);
  fs::remove_all(dir);
}

TEST_F(TdnQuorumFixture, RemintAfterHealIsIdempotent) {
  auto reg = client("registrar");
  const transport::NodeId old_node =
      net.add_node("broker-1@old", [](transport::NodeId, BytesView) {});
  reg->register_broker("broker-1", old_node,
                       identity("broker-1").credential);
  net.run_until_idle();
  for (const auto& t : tdns) ASSERT_EQ(t->broker_count(), 1u);

  // The broker restarts on a new node while replica 0 is partitioned
  // away: the majority learns the new address, the minority keeps the
  // stale one.
  split_minority({reg->node()});
  const transport::NodeId new_node =
      net.add_node("broker-1@new", [](transport::NodeId, BytesView) {});
  reg->register_broker("broker-1", new_node,
                       identity("broker-1").credential);
  net.run_until_idle();

  // Re-minting the registration after the heal converges every replica
  // onto the new address without duplicating the entry.
  heal();
  reg->register_broker("broker-1", new_node,
                       identity("broker-1").credential);
  net.run_until_idle();
  for (const auto& t : tdns) EXPECT_EQ(t->broker_count(), 1u);

  // Every replica now hands out the new address — including the healed
  // minority, whose stale registration must not resurface.
  for (std::size_t i = 0; i < kReplicas; ++i) {
    auto probe = std::make_unique<DiscoveryClient>(
        net, identity("probe-" + std::to_string(i)));
    probe->attach_tdn(tdns[i]->node(), fast());
    const auto loc = find_broker(*probe);
    ASSERT_TRUE(loc.ok()) << loc.status().to_string();
    EXPECT_EQ(loc->node, new_node) << "replica " << i;
  }
}

}  // namespace
}  // namespace et::discovery
