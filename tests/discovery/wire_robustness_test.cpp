// Discovery wire-format round trips for every frame type, plus parser and
// TDN robustness against hostile bytes.
#include <gtest/gtest.h>

#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/discovery/wire.h"
#include "src/transport/virtual_network.h"

namespace et::discovery {
namespace {

constexpr std::size_t kBits = 384;

struct WireFixture : ::testing::Test {
  WireFixture() : rng(2024), ca("ca", rng, kBits) {
    owner = crypto::Identity::create("owner", ca, rng, 0, 3600 * kSecond,
                                     kBits);
    tdn_keys = crypto::rsa_generate(rng, kBits);
    Uuid topic = Uuid::generate(rng);
    TopicAdvertisement unsigned_ad(topic, "Availability/Traces/owner",
                                   owner.credential, {}, 0, 3600 * kSecond,
                                   "tdn-0", {});
    ad = TopicAdvertisement(topic, "Availability/Traces/owner",
                            owner.credential, {}, 0, 3600 * kSecond, "tdn-0",
                            tdn_keys.private_key.sign(unsigned_ad.tbs()));
  }

  Rng rng;
  crypto::CertificateAuthority ca;
  crypto::Identity owner;
  crypto::RsaKeyPair tdn_keys;
  TopicAdvertisement ad;
};

TEST_F(WireFixture, TopicCreateRoundTrip) {
  TopicCreateRequest req;
  req.credential = owner.credential;
  req.descriptor = "Availability/Traces/owner";
  req.restrictions.authorized_subjects = {"alice", "bob"};
  req.lifetime = 120 * kSecond;
  req.request_id = 99;
  req.signature = owner.keys.private_key.sign(req.signable_bytes());

  DiscFrame f;
  f.type = DiscFrameType::kTopicCreate;
  f.request_id = 99;
  f.create = req;

  const DiscFrame g = DiscFrame::deserialize(f.serialize());
  ASSERT_EQ(g.type, DiscFrameType::kTopicCreate);
  ASSERT_TRUE(g.create);
  EXPECT_EQ(g.create->descriptor, req.descriptor);
  EXPECT_EQ(g.create->restrictions.authorized_subjects,
            req.restrictions.authorized_subjects);
  EXPECT_EQ(g.create->lifetime, req.lifetime);
  EXPECT_EQ(g.create->request_id, 99u);
  // Signature still verifies after the round trip.
  EXPECT_TRUE(g.create->credential.public_key().verify(
      g.create->signable_bytes(), g.create->signature));
}

TEST_F(WireFixture, DiscoverRoundTrip) {
  DiscoverRequest req;
  req.credential = owner.credential;
  req.query = "Liveness/owner";
  req.request_id = 7;
  req.signature = owner.keys.private_key.sign(req.signable_bytes());

  DiscFrame f;
  f.type = DiscFrameType::kDiscover;
  f.request_id = 7;
  f.discover = req;
  const DiscFrame g = DiscFrame::deserialize(f.serialize());
  ASSERT_TRUE(g.discover);
  EXPECT_EQ(g.discover->query, "Liveness/owner");
  EXPECT_TRUE(g.discover->credential.public_key().verify(
      g.discover->signable_bytes(), g.discover->signature));
}

TEST_F(WireFixture, ResponseWithAdvertisementsRoundTrip) {
  DiscFrame f;
  f.type = DiscFrameType::kDiscoverResp;
  f.request_id = 3;
  f.advertisements.push_back(ad);
  f.advertisements.push_back(ad);
  const DiscFrame g = DiscFrame::deserialize(f.serialize());
  ASSERT_EQ(g.advertisements.size(), 2u);
  EXPECT_EQ(g.advertisements[0].topic(), ad.topic());
  EXPECT_TRUE(g.advertisements[1].verify(tdn_keys.public_key, 1).is_ok());
}

TEST_F(WireFixture, BrokerFramesRoundTrip) {
  DiscFrame f;
  f.type = DiscFrameType::kBrokerRegister;
  f.broker_name = "broker-7";
  f.broker_node = 1234;
  f.credential_bytes = owner.credential.serialize();
  const DiscFrame g = DiscFrame::deserialize(f.serialize());
  EXPECT_EQ(g.broker_name, "broker-7");
  EXPECT_EQ(g.broker_node, 1234u);
  EXPECT_EQ(crypto::Credential::deserialize(g.credential_bytes).subject(),
            "owner");
}

TEST_F(WireFixture, ErrorResponseRoundTrip) {
  DiscFrame f;
  f.type = DiscFrameType::kTopicCreateResp;
  f.request_id = 11;
  f.status = 1;
  f.detail = "credential: expired";
  const DiscFrame g = DiscFrame::deserialize(f.serialize());
  EXPECT_EQ(g.status, 1u);
  EXPECT_EQ(g.detail, "credential: expired");
}

TEST_F(WireFixture, WrongMagicRejected) {
  DiscFrame f;
  f.type = DiscFrameType::kBrokerQuery;
  Bytes wire = f.serialize();
  wire[0] ^= 0x01;
  EXPECT_THROW(DiscFrame::deserialize(wire), SerializeError);
}

TEST_F(WireFixture, UnknownTypeRejected) {
  DiscFrame f;
  f.type = DiscFrameType::kBrokerQuery;
  Bytes wire = f.serialize();
  wire[1] = 99;
  EXPECT_THROW(DiscFrame::deserialize(wire), SerializeError);
}

TEST_F(WireFixture, TruncationsThrow) {
  DiscFrame f;
  f.type = DiscFrameType::kDiscoverResp;
  f.advertisements.push_back(ad);
  const Bytes wire = f.serialize();
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    EXPECT_THROW(DiscFrame::deserialize(BytesView(wire.data(), cut)),
                 SerializeError)
        << "cut=" << cut;
  }
}

TEST_F(WireFixture, RandomGarbageNeverCrashes) {
  Rng garbage_rng(4040);
  for (int i = 0; i < 300; ++i) {
    const Bytes garbage = garbage_rng.next_bytes(garbage_rng.next_below(200));
    try {
      (void)DiscFrame::deserialize(garbage);
    } catch (const std::exception&) {
    }
  }
}

TEST_F(WireFixture, TdnSurvivesGarbageAndStaysFunctional) {
  transport::VirtualTimeNetwork net(5);
  crypto::Identity tdn_identity =
      crypto::Identity::create("tdn-0", ca, rng, net.now(), 3600 * kSecond,
                               kBits);
  const crypto::RsaPublicKey tdn_pub = tdn_identity.keys.public_key;
  Tdn tdn(net, std::move(tdn_identity), ca.public_key(), 6);

  const transport::NodeId hose =
      net.add_node("hose", [](transport::NodeId, BytesView) {});
  net.link(hose, tdn.node(), transport::LinkParams::ideal_profile());
  Rng garbage_rng(6);
  for (int i = 0; i < 200; ++i) {
    (void)net.send(hose, tdn.node(),
                   garbage_rng.next_bytes(garbage_rng.next_below(150)));
  }
  net.run_until_idle();
  EXPECT_GT(tdn.stats().rejected_requests, 0u);

  // Legit topic creation still works afterwards.
  DiscoveryClient dc(net, owner);
  dc.attach_tdn(tdn.node(), transport::LinkParams::ideal_profile());
  bool ok = false;
  dc.create_topic("Availability/Traces/owner", {}, kSecond,
                  [&](Result<TopicAdvertisement> r) { ok = r.ok(); });
  net.run_until_idle();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace et::discovery
