// DiscoveryClient retry/backoff and late-reply hygiene.
//
// The seed client had a race: a TDN reply arriving after the client's
// timeout timer fired would find the pending-request entry already
// consumed and, in the worst interleavings, resolve the operation a
// second time. These tests pin the repaired contract: every operation
// resolves exactly once, late replies are dropped, and with a
// RetryPolicy installed the client rotates across replica TDNs until
// the attempt cap or deadline is spent.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/transport/fault_injector.h"
#include "src/transport/virtual_network.h"

namespace et::discovery {
namespace {

constexpr std::size_t kBits = 512;

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

// One-way latency high enough that a round trip (160ms) outlives the
// 100ms operation timeouts used below: replies always arrive "late".
transport::LinkParams slow() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 80 * kMillisecond;
  return p;
}

struct RetryFixture : ::testing::Test {
  RetryFixture() : rng(29), ca("ca", rng, kBits) {
    tdn0 = make_tdn("tdn-0", 5);
    tdn1 = make_tdn("tdn-1", 6);
  }

  std::unique_ptr<Tdn> make_tdn(const std::string& id, std::uint64_t seed) {
    return std::make_unique<Tdn>(net, identity(id), ca.public_key(), seed);
  }

  crypto::Identity identity(const std::string& id) {
    return crypto::Identity::create(id, ca, rng, net.now(), 3600 * kSecond,
                                    kBits);
  }

  std::unique_ptr<DiscoveryClient> client(
      const std::string& id, const transport::LinkParams& link0,
      bool attach_replica = false) {
    auto c = std::make_unique<DiscoveryClient>(net, identity(id));
    c->attach_tdn(tdn0->node(), link0);
    if (attach_replica) c->attach_tdn(tdn1->node(), fast());
    return c;
  }

  transport::VirtualTimeNetwork net{3};
  Rng rng;
  crypto::CertificateAuthority ca;
  std::unique_ptr<Tdn> tdn0;
  std::unique_ptr<Tdn> tdn1;
};

TEST_F(RetryFixture, LateReplyAfterTimeoutResolvesExactlyOnce) {
  auto c = client("entity-1", slow());
  int calls = 0;
  Status last = Status::ok();
  c->create_topic("Availability/Traces/entity-1", {}, 3600 * kSecond,
                  [&](Result<TopicAdvertisement> r) {
                    ++calls;
                    last = r.status();
                  },
                  100 * kMillisecond);
  net.run_until_idle();  // timeout at 100ms, TDN reply lands at ~160ms
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(last.is_ok());
  EXPECT_EQ(c->inflight(), 0u);
  // The TDN did process the request; only the client-side op is gone.
  EXPECT_EQ(tdn0->stats().topics_created, 1u);
}

TEST_F(RetryFixture, LateDiscoverReplyDoesNotResurface) {
  auto owner = client("entity-2", fast());
  owner->create_topic("Availability/Traces/entity-2", {}, 3600 * kSecond,
                      [](Result<TopicAdvertisement>) {});
  net.run_until_idle();

  auto seeker = client("tracker-1", slow());
  int calls = 0;
  bool ok = false;
  seeker->discover("Liveness/entity-2",
                   [&](Result<std::vector<TopicAdvertisement>> r) {
                     ++calls;
                     ok = r.ok();
                   },
                   100 * kMillisecond);
  net.run_until_idle();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(ok);  // timed out before the (matching) reply arrived
  EXPECT_EQ(seeker->inflight(), 0u);
}

TEST_F(RetryFixture, ReplyToEarlierAttemptResolvesRetriedOp) {
  // Attempt #1 times out at 100ms and attempt #2 goes out after a short
  // backoff — but attempt #1's reply (in flight since t=0) arrives at
  // ~160ms and must complete the operation. Attempt #2's reply at
  // ~310ms+ must then be dropped.
  auto c = client("entity-3", slow());
  RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff = 20 * kMillisecond;
  p.max_backoff = 50 * kMillisecond;
  p.deadline = 10 * kSecond;
  c->set_retry_policy(p);

  int calls = 0;
  Result<TopicAdvertisement> out(internal_error("no callback"));
  c->create_topic("Availability/Traces/entity-3", {}, 3600 * kSecond,
                  [&](Result<TopicAdvertisement> r) {
                    ++calls;
                    out = std::move(r);
                  },
                  100 * kMillisecond);
  net.run_until_idle();
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out->descriptor(), "Availability/Traces/entity-3");
  EXPECT_EQ(c->inflight(), 0u);
  // Both attempts reached the TDN; the duplicate-minted topic is merely
  // never claimed.
  EXPECT_GE(tdn0->stats().topics_created, 2u);
}

TEST_F(RetryFixture, RetryRotatesToReplicaTdnAfterCrash) {
  // tdn-0 is crashed (sends into it vanish); with a retry policy the
  // second attempt must rotate to the healthy replica and succeed.
  net.faults().crash(tdn0->node());
  auto c = client("entity-4", fast(), /*attach_replica=*/true);
  RetryPolicy p;
  p.max_attempts = 4;
  p.initial_backoff = 20 * kMillisecond;
  p.max_backoff = 100 * kMillisecond;
  p.deadline = 10 * kSecond;
  c->set_retry_policy(p);

  int calls = 0;
  Result<TopicAdvertisement> out(internal_error("no callback"));
  c->create_topic("Availability/Traces/entity-4", {}, 3600 * kSecond,
                  [&](Result<TopicAdvertisement> r) {
                    ++calls;
                    out = std::move(r);
                  },
                  100 * kMillisecond);
  net.run_until_idle();
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out->issuing_tdn(), "tdn-1");
  EXPECT_EQ(tdn0->stats().topics_created, 0u);
  EXPECT_EQ(tdn1->stats().topics_created, 1u);
}

TEST_F(RetryFixture, FindBrokerFailsOverToReplica) {
  // Brokers enroll with every attached replica, so the registry survives
  // the loss of tdn-0 and find_broker succeeds via tdn-1 on retry.
  auto registrar = client("broker-x", fast(), /*attach_replica=*/true);
  const crypto::Identity broker_ident = identity("broker-x-node");
  registrar->register_broker("broker-x", 42, broker_ident.credential);
  net.run_until_idle();

  net.faults().crash(tdn0->node());
  auto c = client("tracker-2", fast(), /*attach_replica=*/true);
  RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff = 20 * kMillisecond;
  p.max_backoff = 100 * kMillisecond;
  p.deadline = 10 * kSecond;
  c->set_retry_policy(p);

  int calls = 0;
  Result<BrokerLocation> out(internal_error("no callback"));
  c->find_broker(
      [&](Result<BrokerLocation> r) {
        ++calls;
        out = std::move(r);
      },
      100 * kMillisecond);
  net.run_until_idle();
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out->name, "broker-x");
  EXPECT_EQ(out->node, 42u);
}

TEST_F(RetryFixture, ExhaustedRetriesRespectDeadline) {
  net.faults().crash(tdn0->node());
  auto c = client("entity-5", fast());
  RetryPolicy p;
  p.max_attempts = 0;  // unbounded; only the deadline stops us
  p.initial_backoff = 50 * kMillisecond;
  p.max_backoff = 200 * kMillisecond;
  p.deadline = 2 * kSecond;
  c->set_retry_policy(p);

  int calls = 0;
  Status last = Status::ok();
  const TimePoint started = net.now();
  c->discover("Liveness/ghost",
              [&](Result<std::vector<TopicAdvertisement>> r) {
                ++calls;
                last = r.status();
              },
              100 * kMillisecond);
  net.run_until_idle();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last.code(), Code::kNotFound);
  const Duration elapsed = net.now() - started;
  // Gave it a real try (most of the deadline) but stopped soon after:
  // at worst deadline + one final attempt timeout + scheduling slack.
  EXPECT_GE(elapsed, p.deadline / 2);
  EXPECT_LE(elapsed, p.deadline + 100 * kMillisecond + p.max_backoff);
}

TEST_F(RetryFixture, DestructionWithInflightOpsIsSafe) {
  net.faults().crash(tdn0->node());
  auto c = client("entity-6", fast());
  RetryPolicy p;
  p.max_attempts = 0;
  p.initial_backoff = 50 * kMillisecond;
  p.max_backoff = 200 * kMillisecond;
  p.deadline = 30 * kSecond;
  c->set_retry_policy(p);

  int calls = 0;
  c->create_topic("Availability/Traces/entity-6", {}, 3600 * kSecond,
                  [&](Result<TopicAdvertisement>) { ++calls; },
                  100 * kMillisecond);
  c->find_broker([&](Result<BrokerLocation>) { ++calls; },
                 100 * kMillisecond);
  net.run_for(150 * kMillisecond);  // first attempts in flight / retried
  c.reset();  // tears down timers + node; callbacks must never fire
  net.run_until_idle();
  EXPECT_EQ(calls, 0);
}

TEST_F(RetryFixture, NoTdnAttachedStillFailsFast) {
  DiscoveryClient c(net, identity("entity-7"));
  c.set_retry_policy(RetryPolicy::standard());
  int calls = 0;
  Status last = Status::ok();
  c.find_broker([&](Result<BrokerLocation> r) {
    ++calls;
    last = r.status();
  });
  net.run_until_idle();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last.code(), Code::kUnavailable);
}

}  // namespace
}  // namespace et::discovery
