// TDN behaviour: authenticated topic creation, UUID minting, restricted
// discovery (silence for unauthorized), lifetimes, replication across TDNs
// and broker discovery.
#include "src/discovery/tdn.h"

#include <gtest/gtest.h>

#include "src/discovery/discovery_client.h"
#include "src/transport/virtual_network.h"

namespace et::discovery {
namespace {

constexpr std::size_t kBits = 512;

transport::LinkParams fast() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1 * kMillisecond;
  return p;
}

struct TdnFixture : ::testing::Test {
  TdnFixture()
      : rng(11), ca("ca", rng, kBits) {
    auto tdn_id = crypto::Identity::create("tdn-0", ca, rng, net.now(),
                                           3600 * kSecond, kBits);
    tdn_key = tdn_id.keys.public_key;
    tdn = std::make_unique<Tdn>(net, std::move(tdn_id), ca.public_key(), 5);
  }

  crypto::Identity identity(const std::string& id) {
    return crypto::Identity::create(id, ca, rng, net.now(), 3600 * kSecond,
                                    kBits);
  }

  std::unique_ptr<DiscoveryClient> client(const std::string& id) {
    auto c = std::make_unique<DiscoveryClient>(net, identity(id));
    c->attach_tdn(tdn->node(), fast());
    return c;
  }

  Result<TopicAdvertisement> create(DiscoveryClient& c,
                                    const std::string& descriptor,
                                    DiscoveryRestrictions r = {},
                                    Duration lifetime = 3600 * kSecond) {
    Result<TopicAdvertisement> out(internal_error("no callback"));
    c.create_topic(descriptor, std::move(r), lifetime,
                   [&](Result<TopicAdvertisement> res) { out = std::move(res); });
    net.run_until_idle();
    return out;
  }

  Result<std::vector<TopicAdvertisement>> discover(DiscoveryClient& c,
                                                   const std::string& query) {
    Result<std::vector<TopicAdvertisement>> out(internal_error("no cb"));
    c.discover(query, [&](Result<std::vector<TopicAdvertisement>> res) {
      out = std::move(res);
    });
    net.run_until_idle();
    return out;
  }

  transport::VirtualTimeNetwork net{3};
  Rng rng;
  crypto::CertificateAuthority ca;
  crypto::RsaPublicKey tdn_key;
  std::unique_ptr<Tdn> tdn;
};

TEST_F(TdnFixture, CreateTopicMintsSignedAdvertisement) {
  auto c = client("entity-1");
  const auto result = create(*c, "Availability/Traces/entity-1");
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const TopicAdvertisement& ad = *result;
  EXPECT_FALSE(ad.topic().is_nil());
  EXPECT_EQ(ad.descriptor(), "Availability/Traces/entity-1");
  EXPECT_EQ(ad.owner().subject(), "entity-1");
  EXPECT_EQ(ad.issuing_tdn(), "tdn-0");
  EXPECT_TRUE(ad.verify(tdn_key, net.now()).is_ok());
  EXPECT_EQ(tdn->stats().topics_created, 1u);
}

TEST_F(TdnFixture, DistinctTopicsForDistinctRequests) {
  auto c = client("entity-2");
  const auto a = create(*c, "Availability/Traces/entity-2");
  const auto b = create(*c, "Availability/Traces/entity-2");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->topic(), b->topic());  // UUIDs are minted fresh each time
}

TEST_F(TdnFixture, UntrustedCredentialRejected) {
  Rng rogue_rng(3);
  crypto::CertificateAuthority rogue("rogue", rogue_rng, kBits);
  auto ident = crypto::Identity::create("imp", rogue, rogue_rng, net.now(),
                                        kSecond * 3600, kBits);
  DiscoveryClient c(net, std::move(ident));
  c.attach_tdn(tdn->node(), fast());
  Result<TopicAdvertisement> out(internal_error("no cb"));
  c.create_topic("Availability/Traces/imp", {}, kSecond,
                 [&](Result<TopicAdvertisement> r) { out = std::move(r); });
  net.run_until_idle();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), Code::kUnauthenticated);
  EXPECT_EQ(tdn->stats().topics_created, 0u);
}

TEST_F(TdnFixture, NonPositiveLifetimeRejected) {
  auto c = client("entity-3");
  const auto out = create(*c, "Availability/Traces/entity-3", {}, 0);
  ASSERT_FALSE(out.ok());
}

TEST_F(TdnFixture, DiscoveryByLivenessQuery) {
  auto owner = client("entity-4");
  ASSERT_TRUE(create(*owner, "Availability/Traces/entity-4").ok());

  auto seeker = client("tracker-1");
  const auto found = discover(*seeker, "Liveness/entity-4");
  ASSERT_TRUE(found.ok()) << found.status().to_string();
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ(found->front().descriptor(), "Availability/Traces/entity-4");
  EXPECT_TRUE(found->front().verify(tdn_key, net.now()).is_ok());
}

TEST_F(TdnFixture, DiscoveryByDescriptorQuery) {
  auto owner = client("entity-5");
  ASSERT_TRUE(create(*owner, "Availability/Traces/entity-5").ok());
  auto seeker = client("tracker-2");
  const auto found = discover(*seeker, "Availability/Traces/entity-5");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->size(), 1u);
}

TEST_F(TdnFixture, UnknownTopicTimesOutSilently) {
  auto seeker = client("tracker-3");
  const auto found = discover(*seeker, "Liveness/ghost");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), Code::kNotFound);
  EXPECT_GT(tdn->stats().discoveries_ignored, 0u);
}

TEST_F(TdnFixture, RestrictedDiscoveryIgnoresUnauthorized) {
  auto owner = client("entity-6");
  DiscoveryRestrictions r;
  r.authorized_subjects = {"friend"};
  ASSERT_TRUE(create(*owner, "Availability/Traces/entity-6", r).ok());

  auto enemy = client("enemy");
  const auto denied = discover(*enemy, "Liveness/entity-6");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), Code::kNotFound);

  auto friendly = client("friend");
  const auto granted = discover(*friendly, "Liveness/entity-6");
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(granted->size(), 1u);
}

TEST_F(TdnFixture, ExpiredAdvertisementNotDiscoverable) {
  auto owner = client("entity-7");
  ASSERT_TRUE(
      create(*owner, "Availability/Traces/entity-7", {}, 50 * kMillisecond)
          .ok());
  net.run_for(100 * kMillisecond);  // lifetime elapses
  auto seeker = client("tracker-4");
  const auto found = discover(*seeker, "Liveness/entity-7");
  EXPECT_FALSE(found.ok());
}

TEST_F(TdnFixture, ReplicationToPeerTdnSurvivesPrimaryLoss) {
  // Second TDN sharing the deployment's CA trust.
  auto tdn2_id = crypto::Identity::create("tdn-1", ca, rng, net.now(),
                                          3600 * kSecond, kBits);
  Tdn tdn2(net, std::move(tdn2_id), ca.public_key(), 6);
  net.link(tdn->node(), tdn2.node(), fast());
  tdn->peer(tdn2.node());

  auto owner = client("entity-8");
  ASSERT_TRUE(create(*owner, "Availability/Traces/entity-8").ok());
  net.run_until_idle();
  EXPECT_EQ(tdn2.stats().replicas_stored, 1u);
  EXPECT_EQ(tdn2.advertisement_count(), 1u);

  // Tracker asks the replica: the advertisement is discoverable there.
  auto seeker = std::make_unique<DiscoveryClient>(net, identity("tracker-5"));
  seeker->attach_tdn(tdn2.node(), fast());
  Result<std::vector<TopicAdvertisement>> out(internal_error("no cb"));
  seeker->discover("Liveness/entity-8",
                   [&](Result<std::vector<TopicAdvertisement>> r) {
                     out = std::move(r);
                   });
  net.run_until_idle();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST_F(TdnFixture, BrokerRegistryRoundTrip) {
  auto registrar = client("broker-owner");
  const crypto::Identity broker_id = identity("broker-7");
  registrar->register_broker("broker-7", 1234, broker_id.credential);
  net.run_until_idle();

  auto seeker = client("entity-9");
  Result<BrokerLocation> out(internal_error("no cb"));
  seeker->find_broker([&](Result<BrokerLocation> r) { out = std::move(r); });
  net.run_until_idle();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->name, "broker-7");
  EXPECT_EQ(out->node, 1234u);
}

TEST_F(TdnFixture, BrokerQueryWithEmptyRegistryFails) {
  auto seeker = client("entity-10");
  Result<BrokerLocation> out(internal_error("no cb"));
  seeker->find_broker([&](Result<BrokerLocation> r) { out = std::move(r); });
  net.run_until_idle();
  EXPECT_FALSE(out.ok());
}

TEST_F(TdnFixture, AdvertisementSerializationRoundTrip) {
  auto c = client("entity-11");
  const auto result = create(*c, "Availability/Traces/entity-11");
  ASSERT_TRUE(result.ok());
  const TopicAdvertisement parsed =
      TopicAdvertisement::deserialize(result->serialize());
  EXPECT_EQ(parsed.topic(), result->topic());
  EXPECT_EQ(parsed.descriptor(), result->descriptor());
  EXPECT_TRUE(parsed.verify(tdn_key, net.now()).is_ok());
}

TEST_F(TdnFixture, TamperedAdvertisementFailsVerification) {
  auto c = client("entity-12");
  const auto result = create(*c, "Availability/Traces/entity-12");
  ASSERT_TRUE(result.ok());
  // Flip a byte of the topic UUID, which sits at the start of the signed
  // (tbs) region — right after its 4-byte length prefix.
  Bytes wire = result->serialize();
  wire[5] ^= 0x01;
  const TopicAdvertisement forged = TopicAdvertisement::deserialize(wire);
  EXPECT_FALSE(forged.verify(tdn_key, net.now()).is_ok());
}

}  // namespace
}  // namespace et::discovery
