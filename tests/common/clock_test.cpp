#include "src/common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace et {
namespace {

TEST(ClockTest, ManualClockStartsAtGivenTime) {
  ManualClock c(1000);
  EXPECT_EQ(c.now(), 1000);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock c;
  c.advance(5 * kMillisecond);
  EXPECT_EQ(c.now(), 5000);
  c.advance(1);
  EXPECT_EQ(c.now(), 5001);
}

TEST(ClockTest, ManualClockSet) {
  ManualClock c;
  c.set(123456);
  EXPECT_EQ(c.now(), 123456);
}

TEST(ClockTest, SystemClockMonotone) {
  SystemClock c;
  const TimePoint a = c.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const TimePoint b = c.now();
  EXPECT_GE(b - a, 1 * kMillisecond);
}

TEST(ClockTest, SkewedClockAppliesOffset) {
  ManualClock base(1000);
  SkewedClock ahead(base, 50 * kMillisecond);
  SkewedClock behind(base, -30 * kMillisecond);
  EXPECT_EQ(ahead.now(), 1000 + 50 * kMillisecond);
  EXPECT_EQ(behind.now(), 1000 - 30 * kMillisecond);
  base.advance(10);
  EXPECT_EQ(ahead.now(), 1010 + 50 * kMillisecond);
}

TEST(ClockTest, ToMillisConversion) {
  EXPECT_DOUBLE_EQ(to_millis(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_millis(0), 0.0);
}

}  // namespace
}  // namespace et
