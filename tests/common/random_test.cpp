#include "src/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace et {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(13);
  std::vector<bool> hit(7, false);
  for (int i = 0; i < 500; ++i) hit[rng.next_below(7)] = true;
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool b) { return b; }));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(19);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  constexpr int kN = 20000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.next_gaussian(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, NextBytesLengths) {
  Rng rng(29);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 33u}) {
    EXPECT_EQ(rng.next_bytes(n).size(), n);
  }
}

TEST(RngTest, NextBytesNotConstant) {
  Rng rng(31);
  const Bytes b = rng.next_bytes(64);
  EXPECT_NE(b, Bytes(64, b[0]));
}

TEST(RngTest, FromEntropyProducesDistinctStreams) {
  Rng a = Rng::from_entropy();
  Rng b = Rng::from_entropy();
  // Overwhelmingly likely to differ.
  bool differ = false;
  for (int i = 0; i < 8; ++i) {
    if (a.next_u64() != b.next_u64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and not crash
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace et
