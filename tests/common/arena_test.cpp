#include "src/common/arena.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace et {
namespace {

TEST(SlotArenaTest, EmplaceAccessErase) {
  SlotArena<std::string> a;
  auto h1 = a.emplace("alpha");
  auto h2 = a.emplace("beta");
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[h1], "alpha");
  EXPECT_EQ(a[h2], "beta");
  EXPECT_TRUE(a.contains(h1));
  a.erase(h1);
  EXPECT_FALSE(a.contains(h1));
  EXPECT_TRUE(a.contains(h2));
  EXPECT_EQ(a.size(), 1u);
}

TEST(SlotArenaTest, HandlesStableAcrossSlabGrowth) {
  SlotArena<int> a(/*slab_capacity=*/4);
  std::vector<SlotArena<int>::Handle> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(a.emplace(i * 7));
  // Growth allocated new slabs; every earlier handle still reads its value.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[handles[i]], i * 7);
  EXPECT_GE(a.capacity(), 100u);
}

TEST(SlotArenaTest, ErasedSlotsAreRecycledBeforeGrowth) {
  SlotArena<int> a(/*slab_capacity=*/8);
  std::vector<SlotArena<int>::Handle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(a.emplace(i));
  const std::size_t cap = a.capacity();
  a.erase(handles[3]);
  a.erase(handles[5]);
  auto r1 = a.emplace(33);
  auto r2 = a.emplace(55);
  // Freed slots were reused: no new slab, and the handles came back from
  // the erased set.
  EXPECT_EQ(a.capacity(), cap);
  std::set<SlotArena<int>::Handle> freed{handles[3], handles[5]};
  EXPECT_TRUE(freed.count(r1));
  EXPECT_TRUE(freed.count(r2));
  EXPECT_EQ(a[r1], 33);
  EXPECT_EQ(a[r2], 55);
}

TEST(SlotArenaTest, DestructorsRunOnEraseAndClear) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    explicit Probe(std::shared_ptr<int> p) : c(std::move(p)) {}
    ~Probe() {
      if (c) ++*c;
    }
    std::shared_ptr<int> c;
  };
  SlotArena<Probe> a;
  auto h = a.emplace(counter);
  a.emplace(counter);
  a.emplace(counter);
  EXPECT_EQ(*counter, 0);
  a.erase(h);
  EXPECT_EQ(*counter, 1);
  a.clear();
  EXPECT_EQ(*counter, 3);
  EXPECT_EQ(a.size(), 0u);
}

TEST(SlotArenaTest, ForEachVisitsExactlyLiveRecords) {
  SlotArena<int> a(/*slab_capacity=*/4);
  std::vector<SlotArena<int>::Handle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(a.emplace(i));
  a.erase(handles[2]);
  a.erase(handles[7]);
  std::set<int> seen;
  a.for_each([&](SlotArena<int>::Handle, int& v) { seen.insert(v); });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_FALSE(seen.count(2));
  EXPECT_FALSE(seen.count(7));
}

TEST(SlotArenaTest, BytesTracksSlabFootprint) {
  SlotArena<std::uint64_t> a(/*slab_capacity=*/16);
  EXPECT_EQ(a.bytes(), 0u);
  a.emplace(1);
  const std::size_t one_slab = a.bytes();
  EXPECT_GT(one_slab, 0u);
  for (int i = 0; i < 16; ++i) a.emplace(i);  // spills into a second slab
  EXPECT_GT(a.bytes(), one_slab);
  // Footprint is amortized: slabs, not per-record heap nodes.
  EXPECT_LT(a.bytes(), 17 * 64 + 1024);
}

TEST(SlotArenaTest, ChurnNeverLosesOrDuplicatesSlots) {
  SlotArena<int> a(/*slab_capacity=*/8);
  std::vector<SlotArena<int>::Handle> live;
  // Deterministic churn: interleave bursts of insert and erase.
  int next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) live.push_back(a.emplace(next++));
    for (int i = 0; i < 5 && !live.empty(); ++i) {
      a.erase(live[live.size() / 2]);
      live.erase(live.begin() + static_cast<long>(live.size()) / 2);
    }
    EXPECT_EQ(a.size(), live.size());
  }
  // All surviving handles resolve and are distinct slots.
  std::set<SlotArena<int>::Handle> distinct(live.begin(), live.end());
  EXPECT_EQ(distinct.size(), live.size());
  for (auto h : live) EXPECT_TRUE(a.contains(h));
}

}  // namespace
}  // namespace et
