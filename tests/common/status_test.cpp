#include "src/common/status.h"

#include <gtest/gtest.h>

namespace et {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = permission_denied("no publish rights");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Code::kPermissionDenied);
  EXPECT_EQ(s.message(), "no publish rights");
  EXPECT_EQ(s.to_string(), "PERMISSION_DENIED: no publish rights");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(invalid_argument("x").code(), Code::kInvalidArgument);
  EXPECT_EQ(not_found("x").code(), Code::kNotFound);
  EXPECT_EQ(permission_denied("x").code(), Code::kPermissionDenied);
  EXPECT_EQ(unauthenticated("x").code(), Code::kUnauthenticated);
  EXPECT_EQ(expired("x").code(), Code::kExpired);
  EXPECT_EQ(already_exists("x").code(), Code::kAlreadyExists);
  EXPECT_EQ(unavailable("x").code(), Code::kUnavailable);
  EXPECT_EQ(internal_error("x").code(), Code::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(code_name(Code::kOk), "OK");
  EXPECT_EQ(code_name(Code::kUnauthenticated), "UNAUTHENTICATED");
  EXPECT_EQ(code_name(Code::kExpired), "EXPIRED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(not_found("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace et
