#include "src/common/serialize.h"

#include <gtest/gtest.h>

#include <limits>

namespace et {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  const Bytes buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  r.expect_done();
}

TEST(SerializeTest, StringAndBytesRoundTrip) {
  Writer w;
  w.str("availability");
  w.bytes(Bytes{9, 8, 7});
  w.str("");
  const Bytes buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.str(), "availability");
  EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "");
  r.expect_done();
}

TEST(SerializeTest, RawRoundTrip) {
  Writer w;
  w.raw(Bytes{1, 2, 3, 4});
  const Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_EQ(r.raw(4), (Bytes{1, 2, 3, 4}));
  r.expect_done();
}

TEST(SerializeTest, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304u);
  const Bytes buf = std::move(w).take();
  EXPECT_EQ(buf, (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(SerializeTest, TruncatedScalarThrows) {
  const Bytes buf{0x01, 0x02};
  Reader r(buf);
  EXPECT_THROW(r.u32(), SerializeError);
}

TEST(SerializeTest, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.raw(Bytes{1, 2, 3});
  const Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_THROW(r.bytes(), SerializeError);
}

TEST(SerializeTest, OverlongLengthRejected) {
  Writer w;
  w.u32(0xF0000000u);  // 3.75 GiB claim
  const Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_THROW(r.bytes(), SerializeError);
}

TEST(SerializeTest, TrailingGarbageDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  const Bytes buf = std::move(w).take();
  Reader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), SerializeError);
}

TEST(SerializeTest, RemainingCountsDown) {
  Writer w;
  w.u32(7);
  const Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_EQ(r.remaining(), 4u);
  r.u16();
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.done());
  r.u16();
  EXPECT_TRUE(r.done());
}

TEST(SerializeTest, F64SpecialValues) {
  Writer w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  const Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -0.0);
}

}  // namespace
}  // namespace et
