#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace et {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.stderr_of_mean(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.stderr_of_mean(), std::sqrt(32.0 / 7.0) / std::sqrt(8.0),
              1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 + (i % 7);
    all.add(x);
    (i < 40 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(RunningStatsTest, NumericalStabilityLargeOffset) {
  // Welford should survive a large common offset.
  RunningStats s;
  for (double x : {1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}) s.add(x);
  EXPECT_NEAR(s.mean(), 1e9 + 10, 1e-3);
  EXPECT_NEAR(s.stddev(), std::sqrt(30.0), 1e-6);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0.0);
}

TEST(HistogramTest, PercentilesOfUniformRange) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_NEAR(h.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
}

TEST(HistogramTest, SingleElement) {
  Histogram h;
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 42.0);
}

}  // namespace
}  // namespace et
