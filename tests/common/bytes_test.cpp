#include "src/common/bytes.h"

#include <gtest/gtest.h>

namespace et {
namespace {

TEST(BytesTest, RoundTripString) {
  const std::string s = "hello, tracing";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(BytesTest, EmptyString) {
  EXPECT_TRUE(to_bytes("").empty());
  EXPECT_EQ(to_string(Bytes{}), "");
}

TEST(BytesTest, HexEncode) {
  EXPECT_EQ(hex_encode(Bytes{0x00, 0xFF, 0x1a}), "00ff1a");
  EXPECT_EQ(hex_encode(Bytes{}), "");
}

TEST(BytesTest, HexDecode) {
  EXPECT_EQ(hex_decode("00ff1a"), (Bytes{0x00, 0xFF, 0x1a}));
  EXPECT_EQ(hex_decode("00FF1A"), (Bytes{0x00, 0xFF, 0x1a}));
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b;
  for (int i = 0; i < 256; ++i) b.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(hex_decode(hex_encode(b)), b);
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
}

TEST(BytesTest, ConstantTimeEqualLengthMismatch) {
  EXPECT_FALSE(constant_time_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
}

TEST(BytesTest, ConstantTimeEqualEmpty) {
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(BytesTest, Append) {
  Bytes dst{1, 2};
  append(dst, Bytes{3, 4});
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
}

TEST(BytesTest, Concat) {
  const Bytes a{1}, b{2, 3}, c{};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace et
