#include "src/common/timer_wheel.h"

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace et {
namespace {

/// Minimal deterministic one-shot scheduler: timers fire in deadline order
/// (FIFO within a deadline) as the test advances time.
class FakeScheduler {
 public:
  TimerWheel::Scheduler as_wheel_scheduler() {
    return TimerWheel::Scheduler{
        .schedule =
            [this](Duration delay, std::function<void()> fn) {
              const std::uint64_t id = next_id_++;
              timers_.emplace(Key{now_ + delay, id}, std::move(fn));
              ++armed_total_;
              return id;
            },
        .cancel =
            [this](std::uint64_t id) {
              for (auto it = timers_.begin(); it != timers_.end(); ++it) {
                if (it->first.id == id) {
                  timers_.erase(it);
                  return;
                }
              }
            },
        .now = [this] { return now_; },
    };
  }

  void advance(Duration d) {
    const TimePoint until = now_ + d;
    while (!timers_.empty() && timers_.begin()->first.at <= until) {
      auto it = timers_.begin();
      now_ = it->first.at;
      auto fn = std::move(it->second);
      timers_.erase(it);
      fn();
    }
    now_ = until;
  }

  [[nodiscard]] std::size_t pending() const { return timers_.size(); }
  [[nodiscard]] std::uint64_t armed_total() const { return armed_total_; }

 private:
  struct Key {
    TimePoint at;
    std::uint64_t id;
    bool operator<(const Key& o) const {
      return at != o.at ? at < o.at : id < o.id;
    }
  };
  TimePoint now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t armed_total_ = 0;
  std::map<Key, std::function<void()>> timers_;
};

TEST(TimerWheelTest, PassthroughFiresAtExactDeadline) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/0);
  std::vector<TimePoint> fired;
  wheel.schedule(100, [&] { fired.push_back(wheel.now()); });
  wheel.schedule(250, [&] { fired.push_back(wheel.now()); });
  sched.advance(99);
  EXPECT_TRUE(fired.empty());
  sched.advance(1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 100);
  sched.advance(150);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 250);
  // Passthrough arms one scheduler timer per logical timer.
  EXPECT_EQ(wheel.stats().armed, 2u);
  EXPECT_EQ(wheel.stats().fired, 2u);
}

TEST(TimerWheelTest, PassthroughCancelStopsFiring) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/0);
  int fired = 0;
  auto id = wheel.schedule(100, [&] { ++fired; });
  wheel.cancel(id);
  sched.advance(1000);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.stats().cancelled, 1u);
  EXPECT_EQ(wheel.stats().pending, 0u);
}

TEST(TimerWheelTest, CoalescesManyTimersIntoOneArmedTimer) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/1000);
  int fired = 0;
  // 100 logical timers inside one tick window.
  for (int i = 0; i < 100; ++i) {
    wheel.schedule(500 + i, [&] { ++fired; });
  }
  EXPECT_EQ(wheel.stats().pending, 100u);
  // One scheduler timer armed for the shared bucket, not 100.
  EXPECT_EQ(sched.pending(), 1u);
  sched.advance(1000);
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(wheel.stats().armed, 1u);
  EXPECT_EQ(wheel.stats().fired, 100u);
}

TEST(TimerWheelTest, NeverFiresEarlyAtMostOneTickLate) {
  FakeScheduler sched;
  const Duration tick = 1000;
  TimerWheel wheel(sched.as_wheel_scheduler(), tick);
  std::vector<std::pair<TimePoint, TimePoint>> asked_fired;
  for (Duration d : {1, 999, 1000, 1001, 2500}) {
    const TimePoint deadline = d;  // scheduled at t=0
    wheel.schedule(d, [&, deadline] {
      asked_fired.emplace_back(deadline, wheel.now());
    });
  }
  sched.advance(10000);
  ASSERT_EQ(asked_fired.size(), 5u);
  for (auto [asked, fired] : asked_fired) {
    EXPECT_GE(fired, asked) << "fired early";
    EXPECT_LT(fired, asked + tick) << "fired more than a tick late";
    EXPECT_EQ(fired % tick, 0) << "fired off a tick boundary";
  }
}

TEST(TimerWheelTest, CancelledIdInSharedBucketIsSkipped) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/1000);
  int a = 0, b = 0;
  auto ida = wheel.schedule(400, [&] { ++a; });
  wheel.schedule(600, [&] { ++b; });
  wheel.cancel(ida);
  sched.advance(2000);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(wheel.stats().cancelled, 1u);
  EXPECT_EQ(wheel.stats().fired, 1u);
}

TEST(TimerWheelTest, EarlierTimerReArmsTheWheel) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/100);
  std::vector<int> order;
  wheel.schedule(5000, [&] { order.push_back(2); });
  // A later schedule with an earlier deadline must fire first.
  wheel.schedule(300, [&] { order.push_back(1); });
  sched.advance(10000);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(TimerWheelTest, CallbackMayRescheduleItself) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/1000);
  int fires = 0;
  std::function<void()> periodic = [&] {
    if (++fires < 5) wheel.schedule(1000, periodic);
  };
  wheel.schedule(1000, periodic);
  sched.advance(10000);
  EXPECT_EQ(fires, 5);
  // Self-rescheduling from inside the drain still coalesces: one armed
  // scheduler timer per occupied bucket.
  EXPECT_EQ(wheel.stats().armed, 5u);
}

TEST(TimerWheelTest, ManyHostsOneBucketArmsOncePerRound) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/1000);
  // 64 "hosts" each rescheduling their own digest timer every round: the
  // wheel should arm one scheduler timer per round, not per host.
  int fires = 0;
  std::function<void()> tickfn = [&] {
    ++fires;
    wheel.schedule(1000, tickfn);
  };
  for (int h = 0; h < 64; ++h) wheel.schedule(1000, tickfn);
  sched.advance(10 * 1000);
  EXPECT_EQ(fires, 64 * 10);
  // One arm per drained round plus the arm for the (unfired) next round.
  EXPECT_EQ(wheel.stats().armed, 11u);
}

TEST(TimerWheelTest, DestructorCancelsArmedTimersSafely) {
  FakeScheduler sched;
  int fired = 0;
  {
    TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/1000);
    wheel.schedule(500, [&] { ++fired; });
  }
  sched.advance(5000);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sched.pending(), 0u);
  {
    TimerWheel passthrough(sched.as_wheel_scheduler(), /*tick=*/0);
    passthrough.schedule(500, [&] { ++fired; });
  }
  sched.advance(5000);
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextAdvance) {
  FakeScheduler sched;
  TimerWheel wheel(sched.as_wheel_scheduler(), /*tick=*/1000);
  int fired = 0;
  wheel.schedule(0, [&] { ++fired; });
  sched.advance(0);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace et
