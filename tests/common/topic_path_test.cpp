#include "src/common/topic_path.h"

#include <gtest/gtest.h>

namespace et {
namespace {

TEST(TopicPathTest, SplitBasic) {
  EXPECT_EQ(split_topic("a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TopicPathTest, SplitLeadingSlash) {
  EXPECT_EQ(split_topic("/Constrained/Traces"),
            (std::vector<std::string>{"Constrained", "Traces"}));
}

TEST(TopicPathTest, SplitCollapsesEmptySegments) {
  EXPECT_EQ(split_topic("a//b/"), (std::vector<std::string>{"a", "b"}));
}

TEST(TopicPathTest, SplitEmpty) {
  EXPECT_TRUE(split_topic("").empty());
  EXPECT_TRUE(split_topic("/").empty());
}

TEST(TopicPathTest, JoinRoundTrip) {
  const std::string t = "StockQuotes/Companies/Adobe";
  EXPECT_EQ(join_topic(split_topic(t)), t);
}

TEST(TopicPathTest, NormalizeStripsSlashes) {
  EXPECT_EQ(normalize_topic("/a/b/"), "a/b");
  EXPECT_EQ(normalize_topic("a//b"), "a/b");
}

TEST(TopicPathTest, PrefixMatch) {
  EXPECT_TRUE(topic_has_prefix("a/b/c", "a/b"));
  EXPECT_TRUE(topic_has_prefix("a/b", "a/b"));
  EXPECT_TRUE(topic_has_prefix("/a/b", "a"));
  EXPECT_FALSE(topic_has_prefix("a/b", "a/b/c"));
  EXPECT_FALSE(topic_has_prefix("ab/c", "a"));
}

TEST(TopicPathTest, ExactMatching) {
  EXPECT_TRUE(topic_matches("a/b", "a/b"));
  EXPECT_TRUE(topic_matches("a/b", "/a/b/"));  // normalization applies
  EXPECT_FALSE(topic_matches("a/b", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/b/c", "a/b"));
  EXPECT_FALSE(topic_matches("a/B", "a/b"));  // case-sensitive
}

TEST(TopicPathTest, SingleSegmentWildcard) {
  EXPECT_TRUE(topic_matches("a/*/c", "a/b/c"));
  EXPECT_TRUE(topic_matches("*/b", "a/b"));
  EXPECT_FALSE(topic_matches("a/*", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/*/c", "a/c"));
}

TEST(TopicPathTest, MultiSegmentWildcard) {
  EXPECT_TRUE(topic_matches("a/#", "a/b/c"));
  EXPECT_TRUE(topic_matches("a/#", "a"));  // '#' matches zero segments
  EXPECT_TRUE(topic_matches("#", "anything/at/all"));
  EXPECT_FALSE(topic_matches("a/#/c", "a/b/c"));  // '#' only valid last
}

TEST(TopicPathTest, TraceTopicShapes) {
  // The shapes used by the tracing scheme must match exactly.
  const std::string trace =
      "Constrained/Traces/Broker/Publish-Only/"
      "9f2c1d34-aaaa-4bbb-8ccc-123456789abc/ChangeNotifications";
  EXPECT_TRUE(topic_matches(trace, "/" + trace));
  EXPECT_TRUE(topic_has_prefix(trace, "Constrained/Traces"));
}

TEST(TopicPathTest, SplitOnceViewMatchesStringSemantics) {
  const TopicPath pattern("a/*/c");
  const TopicPath topic("/a//b/c");
  EXPECT_EQ(topic.segments(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(topic.canonical(), "a/b/c");
  EXPECT_TRUE(topic_matches(pattern, topic));
  EXPECT_FALSE(topic_matches(pattern, TopicPath("a/b/d")));
  EXPECT_TRUE(topic_matches(TopicPath("a/#"), TopicPath("a")));
  EXPECT_FALSE(topic_matches(TopicPath("a/#/c"), TopicPath("a/b/c")));
}

TEST(TopicPathTest, TopicPathEqualityIgnoresSourceSlashes) {
  EXPECT_EQ(TopicPath("/a/b/"), TopicPath("a//b"));
  EXPECT_NE(TopicPath("a/b"), TopicPath("a/b/c"));
  EXPECT_TRUE(TopicPath("").empty());
  EXPECT_EQ(TopicPath("a/b").size(), 2u);
  EXPECT_EQ(TopicPath("a/b")[1], "b");
}

TEST(TopicPathTest, Validity) {
  EXPECT_TRUE(is_valid_topic("Availability/Traces/entity-42"));
  EXPECT_FALSE(is_valid_topic(""));
  EXPECT_FALSE(is_valid_topic("/"));
  EXPECT_FALSE(is_valid_topic("a b/c"));
  EXPECT_FALSE(is_valid_topic(std::string("a\tb")));
}

}  // namespace
}  // namespace et
