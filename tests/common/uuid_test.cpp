#include "src/common/uuid.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace et {
namespace {

TEST(UuidTest, NilByDefault) {
  Uuid u;
  EXPECT_TRUE(u.is_nil());
  EXPECT_EQ(u.to_string(), "00000000-0000-0000-0000-000000000000");
}

TEST(UuidTest, GenerateIsVersion4) {
  Rng rng(1);
  const Uuid u = Uuid::generate(rng);
  const Bytes b = u.to_bytes();
  EXPECT_EQ(b[6] & 0xF0, 0x40);           // version nibble
  EXPECT_EQ(b[8] & 0xC0, 0x80);           // variant bits
  EXPECT_FALSE(u.is_nil());
}

TEST(UuidTest, GenerateUnique) {
  Rng rng(2);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(Uuid::generate(rng).to_string());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(UuidTest, ParseRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Uuid u = Uuid::generate(rng);
    EXPECT_EQ(Uuid::parse(u.to_string()), u);
  }
}

TEST(UuidTest, BytesRoundTrip) {
  Rng rng(4);
  const Uuid u = Uuid::generate(rng);
  EXPECT_EQ(Uuid::from_bytes(u.to_bytes()), u);
}

TEST(UuidTest, ParseRejectsMalformed) {
  EXPECT_THROW(Uuid::parse(""), std::invalid_argument);
  EXPECT_THROW(Uuid::parse("not-a-uuid"), std::invalid_argument);
  EXPECT_THROW(Uuid::parse("00000000+0000-0000-0000-000000000000"),
               std::invalid_argument);
  EXPECT_THROW(Uuid::parse("0000000g-0000-0000-0000-000000000000"),
               std::invalid_argument);
}

TEST(UuidTest, FromBytesRejectsWrongLength) {
  EXPECT_THROW(Uuid::from_bytes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Uuid::from_bytes(Bytes(17)), std::invalid_argument);
}

TEST(UuidTest, DeterministicWithSeed) {
  Rng a(99), b(99);
  EXPECT_EQ(Uuid::generate(a), Uuid::generate(b));
}

TEST(UuidTest, HashUsableInUnorderedSet) {
  Rng rng(5);
  std::unordered_set<Uuid> set;
  for (int i = 0; i < 100; ++i) set.insert(Uuid::generate(rng));
  EXPECT_EQ(set.size(), 100u);
}

TEST(UuidTest, Ordering) {
  const Uuid a = Uuid::from_bytes(Bytes(16, 0x01));
  const Uuid b = Uuid::from_bytes(Bytes(16, 0x02));
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace et
