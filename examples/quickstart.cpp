// Quickstart: the minimal end-to-end tracing deployment.
//
// One certificate authority, one Topic Discovery Node, one broker with the
// tracing service, one traced entity and one tracker — everything on the
// deterministic virtual-time network so the run is reproducible.
//
//   $ ./quickstart
//
// Walks the paper's whole flow: topic creation at the TDN, registration,
// delegation token, pings, heartbeat traces, a state transition and a
// simulated crash with FAILURE_SUSPICION -> FAILED escalation.
#include <cstdio>

#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

using namespace et;

int main() {
  std::printf("== entitytrace quickstart ==\n\n");

  // --- infrastructure ------------------------------------------------------
  transport::VirtualTimeNetwork net(/*seed=*/2026);
  Rng rng(7);

  // The deployment's trust anchors: a CA everyone trusts, and a TDN whose
  // signatures establish trace-topic ownership.
  crypto::CertificateAuthority ca("example-ca", rng, /*key_bits=*/1024);
  crypto::Identity tdn_identity = crypto::Identity::create(
      "tdn-0", ca, rng, net.now(), 24 * 3600 * kSecond, 1024);
  tracing::TrustAnchors anchors{ca.public_key(),
                                tdn_identity.keys.public_key};
  discovery::Tdn tdn(net, std::move(tdn_identity), ca.public_key(), 1);

  // One broker running the tracing service; the trace filter enforces
  // authorization tokens on everything it routes.
  tracing::TracingConfig config;
  config.ping_interval = 500 * kMillisecond;
  config.gauge_interval = 2 * kSecond;
  pubsub::Topology topology(net);
  pubsub::Broker::Options broker_opts;
  broker_opts.name = "broker-0";
  tracing::install_trace_filter(broker_opts, anchors, net);
  pubsub::Broker& broker = topology.add_broker(std::move(broker_opts));
  tracing::TracingBrokerService service(broker, anchors, config, 42);

  transport::LinkParams lan = transport::LinkParams::tcp_profile();

  // --- the traced entity ---------------------------------------------------
  tracing::TracedEntity entity(
      net,
      crypto::Identity::create("payments-service", ca, rng, net.now(),
                               24 * 3600 * kSecond, 1024),
      anchors, config, rng.next_u64());
  entity.attach_tdn(tdn.node(), lan);
  entity.connect_broker(broker.node(), lan);

  entity.start_tracing({}, [&](const Status& s) {
    std::printf("[entity ] tracing %s (trace topic %s)\n",
                s.is_ok() ? "started" : s.to_string().c_str(),
                entity.trace_topic().to_string().c_str());
  });
  net.run_for(100 * kMillisecond);

  // --- the tracker ---------------------------------------------------------
  tracing::Tracker tracker(
      net,
      crypto::Identity::create("ops-dashboard", ca, rng, net.now(),
                               24 * 3600 * kSecond, 1024),
      anchors, rng.next_u64());
  tracker.attach_tdn(tdn.node(), lan);
  tracker.connect_broker(broker.node(), lan);

  tracker.track(
      "payments-service",
      tracing::kCatChangeNotifications | tracing::kCatAllUpdates |
          tracing::kCatStateTransitions,
      [&](const tracing::TracePayload& p, const pubsub::Message&) {
        std::printf("[tracker] t=%6.2fs  %-20s %s\n",
                    to_millis(net.now()) / 1000.0,
                    std::string(tracing::trace_type_name(p.type)).c_str(),
                    p.detail.c_str());
      },
      [](const Status& s) {
        std::printf("[tracker] tracking %s\n",
                    s.is_ok() ? "started" : s.to_string().c_str());
      });
  net.run_for(300 * kMillisecond);

  // --- a healthy period ----------------------------------------------------
  std::printf("\n-- entity healthy for 2 simulated seconds --\n");
  net.run_for(2 * kSecond);

  std::printf("\n-- entity transitions to READY --\n");
  entity.set_state(tracing::EntityState::kReady);
  net.run_for(500 * kMillisecond);

  // --- a crash -------------------------------------------------------------
  std::printf("\n-- entity stops responding (simulated crash) --\n");
  entity.set_responsive(false);
  net.run_for(6 * kSecond);

  std::printf("\n-- entity recovers --\n");
  entity.set_responsive(true);
  net.run_for(2 * kSecond);

  // --- summary -------------------------------------------------------------
  std::printf("\n== summary ==\n");
  std::printf("broker pings sent:        %llu\n",
              (unsigned long long)service.stats().pings_sent);
  std::printf("entity pings answered:    %llu\n",
              (unsigned long long)entity.stats().pings_answered);
  std::printf("traces published:         %llu\n",
              (unsigned long long)service.stats().traces_published);
  std::printf("traces verified:          %llu\n",
              (unsigned long long)tracker.stats().traces_received);
  std::printf("traces rejected:          %llu\n",
              (unsigned long long)tracker.stats().traces_rejected);
  return 0;
}
