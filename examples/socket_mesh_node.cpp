// One process of a multi-process pub/sub overlay over real TCP sockets.
//
// Each invocation runs a single Broker on its own SocketNetwork, bound to
// a fixed loopback port. Peers are named on the command line: with an
// address the process dials out; without one it waits for that peer to
// dial in. Interest propagation, constrained-topic enforcement and the
// misbehaviour ladder all run exactly as they do on the simulated
// backends — the broker cannot tell the transports apart.
//
// A 3-process chain (see README "Multi-process topology"):
//
//   ./socket_mesh_node b1 --port 7001 --peer b0 --peer b2
//   ./socket_mesh_node b2 --port 7002 --peer b1=127.0.0.1:7001 --subscribe 'demo/#'
//   ./socket_mesh_node b0 --port 7003 --peer b1=127.0.0.1:7001 --publish demo/ticks
//
// b0's publications cross two real TCP links to reach b2's subscriber.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/pubsub/broker.h"
#include "src/transport/socket_network.h"

namespace {

using namespace et;

struct PeerSpec {
  std::string name;
  std::string host;  // empty: passive, the peer dials us
  std::uint16_t port = 0;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <name> --port <p> [--peer name[=host:port]]...\n"
               "          [--subscribe <pattern>] [--publish <topic>]\n"
               "          [--count <n>] [--interval-ms <ms>]\n",
               argv0);
  std::exit(2);
}

PeerSpec parse_peer(const std::string& arg) {
  PeerSpec p;
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    p.name = arg;  // passive: peer dials us
    return p;
  }
  p.name = arg.substr(0, eq);
  const std::string addr = arg.substr(eq + 1);
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "peer address must be host:port, got %s\n",
                 addr.c_str());
    std::exit(2);
  }
  p.host = addr.substr(0, colon);
  p.port = static_cast<std::uint16_t>(std::stoi(addr.substr(colon + 1)));
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // line-buffered even when piped
  if (argc < 2) usage(argv[0]);
  const std::string name = argv[1];
  std::uint16_t port = 0;
  std::vector<PeerSpec> peers;
  std::string subscribe_pattern;
  std::string publish_topic;
  int count = 10;
  int interval_ms = 500;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::stoi(next()));
    } else if (arg == "--peer") {
      peers.push_back(parse_peer(next()));
    } else if (arg == "--subscribe") {
      subscribe_pattern = next();
    } else if (arg == "--publish") {
      publish_topic = next();
    } else if (arg == "--count") {
      count = std::stoi(next());
    } else if (arg == "--interval-ms") {
      interval_ms = std::stoi(next());
    } else {
      usage(argv[0]);
    }
  }
  if (port == 0) usage(argv[0]);

  transport::SocketNetwork net(/*seed=*/port, port);
  std::printf("[%s] listening on 127.0.0.1:%u\n", name.c_str(),
              net.listen_port());

  pubsub::Broker::Options opts;
  opts.name = name;
  pubsub::Broker broker(net, std::move(opts));
  transport::LinkParams wire;  // the modelled delay on top of real TCP
  wire.base_latency = 200 * kMicrosecond;
  wire.jitter_stddev = 0;
  for (const PeerSpec& p : peers) {
    const transport::NodeId peer =
        p.host.empty() ? net.add_remote(p.name)
                       : net.add_remote(p.name, p.host, p.port);
    net.link(broker.node(), peer, wire);
    broker.peer(peer);
    // Announce ourselves even before we have traffic, so the passive side
    // can flush interest it parked for us (see SocketNetwork::connect_peer).
    if (!p.host.empty()) net.connect_peer(broker.node(), peer);
    std::printf("[%s] peer %s (%s)\n", name.c_str(), p.name.c_str(),
                p.host.empty() ? "passive, will dial us" : "dialing");
  }

  if (!subscribe_pattern.empty()) {
    broker.subscribe_local(subscribe_pattern, [&](const pubsub::Message& m) {
      std::printf("[%s] %s <- %s: %s\n", name.c_str(), m.topic.c_str(),
                  m.publisher.c_str(), et::to_string(m.payload).c_str());
      std::fflush(stdout);
    });
  }

  if (!publish_topic.empty()) {
    // Give interest propagation a moment to cross the mesh, then publish
    // `count` messages from the broker's node context.
    std::this_thread::sleep_for(std::chrono::seconds(1));
    for (int i = 0; i < count; ++i) {
      net.post(broker.node(), [&broker, &publish_topic, i] {
        pubsub::Message m;
        m.topic = publish_topic;
        m.payload = et::to_bytes("tick-" + std::to_string(i));
        broker.publish_from_broker(std::move(m));
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    net.drain(100 * kMillisecond);
    const pubsub::BrokerStats s = broker.stats();
    std::printf("[%s] published=%llu forwarded=%llu view_forwards=%llu "
                "materialized=%llu\n",
                name.c_str(), static_cast<unsigned long long>(s.published),
                static_cast<unsigned long long>(s.forwarded),
                static_cast<unsigned long long>(s.view_forwards),
                static_cast<unsigned long long>(s.materialized));
    net.stop();
    return 0;
  }

  // Relay / subscriber processes serve until killed.
  std::printf("[%s] serving (Ctrl-C to exit)\n", name.c_str());
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}
