// Example 3: security features end to end — discovery restrictions,
// encrypted traces with key distribution, and denial-of-service handling.
//
// A "billing-db" entity only lets the "sre-team" tracker discover its
// trace topic (§3.4) and encrypts all traces (§5.1). An unauthorized
// tracker fails discovery; an eavesdropper that somehow knows the topic
// string sees only ciphertext; an attacker who injects forged traces gets
// disconnected by its broker (§5.2).
#include <cstdio>

#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/client.h"
#include "src/pubsub/topology.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

using namespace et;

int main() {
  std::printf("== secure & restricted tracing demo ==\n\n");
  transport::VirtualTimeNetwork net(31337);
  Rng rng(31337);

  crypto::CertificateAuthority ca("corp-ca", rng, 512);
  crypto::Identity tdn_identity = crypto::Identity::create(
      "tdn-0", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
  tracing::TrustAnchors anchors{ca.public_key(),
                                tdn_identity.keys.public_key};
  discovery::Tdn tdn(net, std::move(tdn_identity), ca.public_key(), 1);

  tracing::TracingConfig config;
  config.ping_interval = 300 * kMillisecond;
  config.gauge_interval = 1 * kSecond;
  config.secure_traces = true;  // §5.1 confidentiality on
  config.delegate_key_bits = 512;

  const transport::LinkParams lan = transport::LinkParams::tcp_profile();
  pubsub::Topology topology(net);
  auto brokers =
      topology.make_chain(2, lan, "broker", [&](const std::string& name) {
        pubsub::Broker::Options o;
        o.name = name;
        tracing::install_trace_filter(o, anchors, net);
        return o;
      });
  tracing::TracingBrokerService svc0(*brokers[0], anchors, config, 5);
  tracing::TracingBrokerService svc1(*brokers[1], anchors, config, 6);

  // --- the protected entity: only "sre-team" may discover it --------------
  tracing::TracedEntity db(
      net,
      crypto::Identity::create("billing-db", ca, rng, net.now(),
                               24 * 3600 * kSecond, 512),
      anchors, config, rng.next_u64());
  db.attach_tdn(tdn.node(), lan);
  db.connect_broker(brokers[0]->node(), lan);
  discovery::DiscoveryRestrictions only_sre;
  only_sre.authorized_subjects = {"sre-team"};
  db.start_tracing(only_sre, [](const Status& s) {
    std::printf("[billing-db] tracing: %s\n", s.to_string().c_str());
  });
  net.run_for(200 * kMillisecond);

  // --- authorized tracker ---------------------------------------------------
  tracing::Tracker sre(net,
                       crypto::Identity::create("sre-team", ca, rng,
                                                net.now(),
                                                24 * 3600 * kSecond, 512),
                       anchors, rng.next_u64());
  sre.attach_tdn(tdn.node(), lan);
  sre.connect_broker(brokers[1]->node(), lan);
  int sre_heartbeats = 0;
  sre.track("billing-db", tracing::kCatAllUpdates,
            [&](const tracing::TracePayload& p, const pubsub::Message& m) {
              if (p.type == tracing::TraceType::kAllsWell) {
                ++sre_heartbeats;
                if (sre_heartbeats == 1) {
                  std::printf(
                      "[sre-team  ] first heartbeat (wire encrypted=%s)\n",
                      m.encrypted ? "yes" : "no");
                }
              }
            },
            [](const Status& s) {
              std::printf("[sre-team  ] discovery+subscribe: %s\n",
                          s.to_string().c_str());
            });
  net.run_for(2 * kSecond);

  // --- unauthorized tracker fails discovery --------------------------------
  tracing::Tracker intern(
      net,
      crypto::Identity::create("curious-intern", ca, rng, net.now(),
                               24 * 3600 * kSecond, 512),
      anchors, rng.next_u64());
  intern.attach_tdn(tdn.node(), lan);
  intern.connect_broker(brokers[1]->node(), lan);
  intern.track("billing-db", tracing::kCatAllUpdates,
               [](const tracing::TracePayload&, const pubsub::Message&) {
                 std::printf("[intern    ] !!! should never see a trace\n");
               },
               [&](const Status& s) {
                 std::printf("[intern    ] discovery outcome: %s\n",
                             s.to_string().c_str());
               });
  net.run_for(3 * kSecond);

  // --- eavesdropper on the raw topic sees only ciphertext -------------------
  pubsub::Client eve(net, "eve");
  eve.connect(brokers[1]->node(), lan);
  int eve_ciphertexts = 0, eve_plaintexts = 0;
  eve.subscribe(pubsub::trace_topics::trace_publication(
                    db.trace_topic().to_string(), "AllUpdates"),
                [&](const pubsub::Message& m) {
                  try {
                    (void)tracing::TracePayload::deserialize(m.payload);
                    ++eve_plaintexts;
                  } catch (const std::exception&) {
                    ++eve_ciphertexts;
                  }
                });
  net.run_for(2 * kSecond);
  std::printf("[eve       ] observed %d ciphertext traces, decoded %d\n",
              eve_ciphertexts, eve_plaintexts);

  // --- forger gets cut off ---------------------------------------------------
  pubsub::Client mallory(net, "mallory");
  mallory.connect(brokers[1]->node(), lan);
  net.run_for(50 * kMillisecond);
  for (int i = 0; i < 8; ++i) {
    tracing::TracePayload fake;
    fake.type = tracing::TraceType::kFailed;
    fake.entity_id = "billing-db";
    pubsub::Message m;
    m.topic = pubsub::trace_topics::trace_publication(
        db.trace_topic().to_string(), "ChangeNotifications");
    m.payload = fake.serialize();
    mallory.publish(std::move(m));
    net.run_for(50 * kMillisecond);
  }
  std::printf("[mallory   ] blacklisted by broker-1: %s\n",
              brokers[1]->is_blacklisted(mallory.node()) ? "yes" : "no");

  // --- wrap up ----------------------------------------------------------------
  std::printf("\n== results ==\n");
  std::printf("sre-team decrypted heartbeats: %d\n", sre_heartbeats);
  std::printf("sre-team keys received:        %llu\n",
              (unsigned long long)sre.stats().keys_received);
  std::printf("intern traces seen:            %llu\n",
              (unsigned long long)intern.stats().traces_received);
  std::printf("tdn silent discoveries:        %llu\n",
              (unsigned long long)tdn.stats().discoveries_ignored);
  std::printf("broker-1 disconnects:          %llu\n",
              (unsigned long long)brokers[1]->stats().disconnects);

  const bool ok = sre_heartbeats > 0 && eve_plaintexts == 0 &&
                  intern.stats().traces_received == 0 &&
                  brokers[1]->is_blacklisted(mallory.node());
  std::printf("\n%s\n", ok ? "ALL SECURITY PROPERTIES HELD"
                           : "SECURITY PROPERTY VIOLATION");
  return ok ? 0 : 1;
}
