// Example 2: a datacenter-style service fleet monitored across a broker
// network — the scenario the paper's introduction motivates ("an
// application may be interested in the availability of a resource at all
// times ... remedial actions are taken in response to the failure of a
// given entity").
//
// Twelve services spread over a 4-broker chain; an operations monitor
// tracks all of them from the far end, keeps an availability board, and
// "restarts" (recovers) services it sees FAILED. Random service crashes
// are injected — and then an entire broker is killed mid-run: the
// services it hosted detect the silence, fail over to surviving brokers
// (find_broker -> re-register -> re-mint, DESIGN.md §11) and the board
// shows them RECOVERING -> READY without operator involvement.
// Deterministic virtual-time simulation.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/crypto/credential.h"
#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

using namespace et;

namespace {

constexpr std::size_t kServices = 12;
constexpr std::size_t kBrokers = 4;

struct Board {
  std::map<std::string, std::string> status;
  int failures_seen = 0;
  int recoveries_seen = 0;

  void print(TimePoint now) const {
    std::printf("\n-- availability board @ t=%.1fs --\n",
                to_millis(now) / 1000.0);
    for (const auto& [name, s] : status) {
      std::printf("  %-14s %s\n", name.c_str(), s.c_str());
    }
  }
};

}  // namespace

int main() {
  std::printf("== service fleet monitor ==\n");
  transport::VirtualTimeNetwork net(99);
  Rng rng(99);

  crypto::CertificateAuthority ca("fleet-ca", rng, 512);
  crypto::Identity tdn_identity = crypto::Identity::create(
      "tdn-0", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
  tracing::TrustAnchors anchors{ca.public_key(),
                                tdn_identity.keys.public_key};
  discovery::Tdn tdn(net, std::move(tdn_identity), ca.public_key(), 1);

  tracing::TracingConfig config;
  config.ping_interval = 400 * kMillisecond;
  config.suspicion_misses = 2;
  config.failed_misses = 4;
  config.gauge_interval = 2 * kSecond;
  config.delegate_key_bits = 512;  // demo speed
  // Failure recovery (DESIGN.md §11): presumed-departed teardown after 8
  // total misses, and entity-side failover when the hosting broker goes
  // silent for 2 s.
  config.disconnect_misses = 8;
  config.broker_silence_timeout = 2 * kSecond;
  config.retry.max_attempts = 0;  // keep hunting for a broker, forever
  config.retry.initial_backoff = 100 * kMillisecond;
  config.retry.max_backoff = kSecond;
  config.retry.deadline = 10 * kSecond;
  config.recovery_announce_delay = 2500 * kMillisecond;

  const transport::LinkParams lan = transport::LinkParams::tcp_profile();
  pubsub::Topology topology(net);
  auto brokers =
      topology.make_chain(kBrokers, lan, "broker", [&](const std::string& name) {
        pubsub::Broker::Options o;
        o.name = name;
        tracing::install_trace_filter(o, anchors, net);
        return o;
      });
  std::vector<std::unique_ptr<tracing::TracingBrokerService>> services;
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    services.push_back(std::make_unique<tracing::TracingBrokerService>(
        *brokers[i], anchors, config, 1000 + i));
  }

  // Enroll every broker in the TDN's registry so failing-over services
  // can rediscover a host.
  discovery::DiscoveryClient registrar(
      net, crypto::Identity::create("registrar", ca, rng, net.now(),
                                    24 * 3600 * kSecond, 512));
  registrar.attach_tdn(tdn.node(), lan);
  for (auto* b : brokers) {
    registrar.register_broker(
        b->name(), b->node(),
        crypto::Identity::create(b->name(), ca, rng, net.now(),
                                 24 * 3600 * kSecond, 512)
            .credential);
  }
  net.run_for(50 * kMillisecond);

  // The fleet: services attach to brokers round-robin.
  std::vector<std::unique_ptr<tracing::TracedEntity>> fleet;
  for (std::size_t i = 0; i < kServices; ++i) {
    const std::string name = "svc-" + std::to_string(i);
    auto e = std::make_unique<tracing::TracedEntity>(
        net,
        crypto::Identity::create(name, ca, rng, net.now(),
                                 24 * 3600 * kSecond, 512),
        anchors, config, rng.next_u64());
    e->attach_tdn(tdn.node(), lan);
    e->connect_broker(brokers[i % kBrokers]->node(), lan);
    e->start_tracing({}, [name](const Status& s) {
      if (!s.is_ok()) {
        std::printf("%s failed to start tracing: %s\n", name.c_str(),
                    s.to_string().c_str());
      }
    });
    net.run_for(50 * kMillisecond);
    e->set_state(tracing::EntityState::kReady);
    fleet.push_back(std::move(e));
  }
  net.run_for(500 * kMillisecond);

  // The monitor tracks every service from the far broker and reacts.
  Board board;
  tracing::Tracker monitor(
      net,
      crypto::Identity::create("fleet-monitor", ca, rng, net.now(),
                               24 * 3600 * kSecond, 512),
      anchors, rng.next_u64());
  monitor.attach_tdn(tdn.node(), lan);
  monitor.connect_broker(brokers[kBrokers - 1]->node(), lan);

  for (std::size_t i = 0; i < kServices; ++i) {
    const std::string name = "svc-" + std::to_string(i);
    tracing::TracedEntity* svc = fleet[i].get();
    monitor.track(
        name,
        tracing::kCatChangeNotifications | tracing::kCatStateTransitions,
        [&, name, svc](const tracing::TracePayload& p,
                       const pubsub::Message&) {
          switch (p.type) {
            case tracing::TraceType::kJoin:
              board.status[name] = "JOINED";
              break;
            case tracing::TraceType::kReady:
              board.status[name] = "READY";
              break;
            case tracing::TraceType::kFailureSuspicion:
              board.status[name] = "SUSPECTED";
              break;
            case tracing::TraceType::kFailed: {
              board.status[name] = "FAILED -> restarting";
              ++board.failures_seen;
              std::printf("[monitor] t=%.1fs %s FAILED — issuing restart\n",
                          to_millis(net.now()) / 1000.0, name.c_str());
              // Remedial action: "restart" the service after a delay,
              // then declare it healthy once warm-up completes.
              net.schedule(monitor.client().node(), 800 * kMillisecond,
                           [svc] {
                             svc->set_responsive(true);
                             svc->set_state(
                                 tracing::EntityState::kRecovering);
                           });
              net.schedule(monitor.client().node(), 2500 * kMillisecond,
                           [svc] {
                             svc->set_state(tracing::EntityState::kReady);
                           });
              break;
            }
            case tracing::TraceType::kRecovering:
              board.status[name] = "RECOVERING";
              ++board.recoveries_seen;
              break;
            case tracing::TraceType::kDisconnect:
              board.status[name] = "DISCONNECTED";
              break;
            default:
              break;
          }
        });
    net.run_for(20 * kMillisecond);
  }

  net.run_for(1 * kSecond);
  board.print(net.now());

  // Inject three random crashes over the run.
  for (int crash = 0; crash < 3; ++crash) {
    const std::size_t victim = rng.next_below(kServices);
    std::printf("\n[chaos  ] t=%.1fs crashing svc-%zu\n",
                to_millis(net.now()) / 1000.0, victim);
    fleet[victim]->set_responsive(false);
    net.run_for(8 * kSecond);
    board.print(net.now());
  }

  net.run_for(4 * kSecond);
  board.print(net.now());

  // Act two: kill an entire broker. broker-0 hosts svc-0, svc-4 and
  // svc-8; the frozen process stops answering pings, the services'
  // silence watchdogs fire, and each one rediscovers a surviving broker
  // through the TDN, re-registers and re-mints its delegation token. The
  // monitor's board goes RECOVERING -> READY with no operator action.
  std::printf("\n[chaos  ] t=%.1fs killing broker-0 (hosts svc-0/4/8)\n",
              to_millis(net.now()) / 1000.0);
  topology.crash(*brokers[0]);
  net.run_for(15 * kSecond);
  board.print(net.now());

  std::uint64_t failovers = 0;
  for (const auto& e : fleet) failovers += e->stats().failovers;
  std::printf("\n[ops    ] t=%.1fs %llu services failed over; "
              "restarting broker-0\n",
              to_millis(net.now()) / 1000.0, (unsigned long long)failovers);
  topology.restart(*brokers[0]);
  net.run_for(3 * kSecond);
  board.print(net.now());

  int ready = 0;
  for (const auto& [name, s] : board.status) ready += (s == "READY");
  std::printf("\n== run complete: %d failures detected, %d recoveries, "
              "%llu broker failovers, %d/%zu READY ==\n",
              board.failures_seen, board.recoveries_seen,
              (unsigned long long)failovers, ready, kServices);
  std::printf("system messages: %llu sent, %llu delivered\n",
              (unsigned long long)net.packets_sent(),
              (unsigned long long)net.packets_delivered());
  const bool ok = board.failures_seen >= 3 && board.recoveries_seen >= 3 &&
                  failovers >= 3 && ready == static_cast<int>(kServices);
  return ok ? 0 : 1;
}
