// Example 4: load-aware work dispatch using LOAD_INFORMATION traces.
//
// The paper (§3.3): "knowledge of such information can enable trackers to
// arrive at better decisions while determining the entity to leverage in
// distributed settings." Three workers report CPU/memory/queue-depth load;
// a dispatcher tracks the Load category and routes work to the least
// loaded worker, re-routing as loads change.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

using namespace et;

int main() {
  std::printf("== load-aware dispatch demo ==\n\n");
  transport::VirtualTimeNetwork net(4096);
  Rng rng(4096);

  crypto::CertificateAuthority ca("grid-ca", rng, 512);
  crypto::Identity tdn_identity = crypto::Identity::create(
      "tdn-0", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
  tracing::TrustAnchors anchors{ca.public_key(),
                                tdn_identity.keys.public_key};
  discovery::Tdn tdn(net, std::move(tdn_identity), ca.public_key(), 1);

  tracing::TracingConfig config;
  config.ping_interval = 500 * kMillisecond;
  config.gauge_interval = 2 * kSecond;
  config.delegate_key_bits = 512;

  const transport::LinkParams lan = transport::LinkParams::tcp_profile();
  pubsub::Topology topology(net);
  pubsub::Broker::Options broker_opts;
  broker_opts.name = "broker-0";
  tracing::install_trace_filter(broker_opts, anchors, net);
  pubsub::Broker& broker = topology.add_broker(std::move(broker_opts));
  tracing::TracingBrokerService service(broker, anchors, config, 17);

  // --- three workers --------------------------------------------------------
  constexpr int kWorkers = 3;
  std::vector<std::unique_ptr<tracing::TracedEntity>> workers;
  for (int i = 0; i < kWorkers; ++i) {
    const std::string name = "worker-" + std::to_string(i);
    auto w = std::make_unique<tracing::TracedEntity>(
        net,
        crypto::Identity::create(name, ca, rng, net.now(),
                                 24 * 3600 * kSecond, 512),
        anchors, config, rng.next_u64());
    w->attach_tdn(tdn.node(), lan);
    w->connect_broker(broker.node(), lan);
    w->start_tracing({}, [](const Status&) {});
    net.run_for(50 * kMillisecond);
    workers.push_back(std::move(w));
  }

  // --- the dispatcher tracks Load -------------------------------------------
  std::map<std::string, tracing::LoadInfo> latest_load;
  tracing::Tracker dispatcher(
      net,
      crypto::Identity::create("dispatcher", ca, rng, net.now(),
                               24 * 3600 * kSecond, 512),
      anchors, rng.next_u64());
  dispatcher.attach_tdn(tdn.node(), lan);
  dispatcher.connect_broker(broker.node(), lan);
  for (int i = 0; i < kWorkers; ++i) {
    dispatcher.track("worker-" + std::to_string(i), tracing::kCatLoad,
                     [&](const tracing::TracePayload& p,
                         const pubsub::Message&) {
                       if (p.load) latest_load[p.entity_id] = *p.load;
                     });
    net.run_for(20 * kMillisecond);
  }
  net.run_for(200 * kMillisecond);

  auto pick_worker = [&]() -> std::string {
    std::string best;
    double best_score = 1e18;
    for (const auto& [name, load] : latest_load) {
      // Simple scalarization: CPU dominates, queue depth breaks ties.
      const double score = load.cpu_utilization * 100.0 + load.workload;
      if (score < best_score) {
        best_score = score;
        best = name;
      }
    }
    return best.empty() ? "worker-0 (no load data)" : best;
  };

  // --- simulate changing load and dispatch decisions -------------------------
  struct Phase {
    const char* label;
    double cpu[kWorkers];
    std::uint32_t queue[kWorkers];
  };
  const Phase phases[] = {
      {"all idle", {0.05, 0.08, 0.06}, {0, 1, 0}},
      {"worker-0 busy", {0.92, 0.20, 0.15}, {14, 2, 1}},
      {"worker-0 and worker-2 busy", {0.88, 0.25, 0.95}, {11, 3, 22}},
      {"all recovering", {0.30, 0.85, 0.35}, {2, 17, 3}},
  };

  std::map<std::string, int> dispatched;
  std::vector<std::string> choice_per_phase;
  for (const Phase& phase : phases) {
    for (int i = 0; i < kWorkers; ++i) {
      tracing::LoadInfo load;
      load.cpu_utilization = phase.cpu[i];
      load.memory_utilization = phase.cpu[i] * 0.6;
      load.workload = phase.queue[i];
      workers[i]->report_load(load);
    }
    net.run_for(300 * kMillisecond);

    std::printf("-- phase: %-28s", phase.label);
    // Dispatch a burst of 5 jobs based on the freshest load picture.
    const std::string chosen = pick_worker();
    choice_per_phase.push_back(chosen);
    dispatched[chosen] += 5;
    std::printf(" -> dispatching 5 jobs to %s\n", chosen.c_str());
    for (const auto& [name, load] : latest_load) {
      std::printf("     %-10s cpu=%4.0f%% queue=%u\n", name.c_str(),
                  load.cpu_utilization * 100.0, load.workload);
    }
  }

  std::printf("\n== dispatch totals ==\n");
  for (const auto& [name, jobs] : dispatched) {
    std::printf("  %-10s %d jobs\n", name.c_str(), jobs);
  }
  // Phase 2: worker-0 was busy. Phase 3: workers 0 and 2 were busy (the
  // only sane target is worker-1). A correct dispatcher avoided them.
  const bool avoided_busy =
      choice_per_phase.size() == 4 && choice_per_phase[1] != "worker-0" &&
      choice_per_phase[2] == "worker-1";
  std::printf("%s\n", avoided_busy ? "dispatcher avoided busy workers"
                                   : "dispatcher misrouted work");
  return avoided_busy ? 0 : 1;
}
