#!/usr/bin/env bash
# Staged CI driver. Stages:
#
#   fast    — build + every test that is not labelled `chaos` (quick signal)
#   chaos   — the labelled fault-injection soaks and scenario sweeps,
#             including the overlay-repair cells (standby activation,
#             gossip re-peering, lossy-link repair soaks — DESIGN.md §15),
#             scheduled separately because they simulate tens of seconds of
#             virtual/wall time (each already carries a 300 s ctest timeout)
#   sockets — the loopback-TCP suites (SocketNetwork conformance + the
#             end-to-end framing tests) with a hard timeout; skipped
#             gracefully where loopback sockets are unavailable
#   asan    — ET_SANITIZE=address build of the codec-edge and robustness
#             suites: over-read probes on the framing/view decoders
#   tsan    — ET_SANITIZE=thread build running the concurrency-sensitive
#             suites, including the socket backend and the RealTimeNetwork
#             chaos scenario and overlay-repair smokes
#   scale   — the E16 100k-entity smoke (bench_entity_scale --smoke):
#             asserts the §14 resource floors (interest edges and armed
#             timers each >= 100x fewer than entities, RSS under 512 MB)
#   durability — the §16 persistence suites: WAL crash-recovery property
#             tests, replay-log/ledger fuzzing, the durable-state chaos
#             cells, plus a SocketNetwork kill-and-recover smoke
#
# Usage: scripts/ci.sh [fast|chaos|sockets|asan|tsan|scale|durability|all]
# (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

configure() { # build-dir extra-cmake-args...
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
}

run_fast() {
  configure build
  ctest --test-dir build -LE chaos --output-on-failure -j "$jobs"
}

run_chaos() {
  configure build
  ctest --test-dir build -L chaos --output-on-failure --timeout 300
}

# True when this environment can bind a loopback TCP socket (some
# sandboxes cannot; the socket suites would fail on setup, not on merit).
loopback_available() {
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import socket; s = socket.socket(); s.bind(("127.0.0.1", 0))' \
      >/dev/null 2>&1
    return $?
  fi
  return 0  # no probe available; let the tests speak for themselves
}

run_sockets() {
  if ! loopback_available; then
    echo "sockets: loopback unavailable in this environment, skipping stage"
    return 0
  fi
  configure build
  # Real-TCP suites: the conformance matrix instantiated over
  # SocketNetwork plus the end-to-end framing/corruption tests. The hard
  # timeout bounds a wedged event loop to minutes, not a hung CI job.
  ctest --test-dir build --output-on-failure --timeout 120 -R \
    'SocketNetwork|FrameCodec'
}

run_asan() {
  configure build-asan -DET_SANITIZE=address -DET_BUILD_BENCHMARKS=OFF \
    -DET_BUILD_EXAMPLES=OFF
  # Codec edges under ASan: the framing assembler's truncation/split/
  # overlong cases, corrupted-frame parses, and the wire robustness
  # suites — the decoders' no-over-read contract, enforced. The Persist
  # suites add the WAL/snapshot/ledger decoders fed truncated, bit-flipped
  # and garbage inputs (DESIGN.md §16).
  ctest --test-dir build-asan --output-on-failure --timeout 300 -R \
    'FrameAssembler|FrameCodec|Robustness|Persist'
}

run_tsan() {
  configure build-tsan -DET_SANITIZE=thread -DET_BUILD_BENCHMARKS=OFF \
    -DET_BUILD_EXAMPLES=OFF
  # Threaded/wall-clock suites where TSan has something to bite on: the
  # socket backend's event loop, the conformance matrix across all three
  # backends, and the RealTimeNetwork chaos schedule and overlay-repair
  # smokes (the latter matches via "RealTime").
  # Persist rides along: fsync/close ordering under TSan's happens-before
  # checking costs little and keeps the durability layer in the matrix.
  local filter='Realtime|RealTime|ChaosRealTimeSmoke|Threaded|Persist'
  if loopback_available; then
    filter="$filter|BackendConformance|SocketNetwork|FrameCodec"
  else
    echo "tsan: loopback unavailable, running without the socket suites"
    filter="$filter"'|BackendConformanceTest.*<et::transport::(Virtual|Real)'
  fi
  ctest --test-dir build-tsan --output-on-failure --timeout 300 -R "$filter"
}

run_scale() {
  configure build
  # Virtual-time 10^5-entity deployment; exits non-zero if any §14
  # resource floor regresses. Completes in seconds of wall time.
  ./build/bench/bench_entity_scale --smoke
}

run_durability() {
  configure build
  # §16 persistence: WAL truncate-at-every-byte property tests, the
  # replay-log / ledger fuzz suites, and the durable-state chaos cells
  # (restart-with-state vs cold, audit-after-partition, determinism).
  # DurabilitySocketSmoke is the kill-and-recover smoke over a real TCP
  # loopback; excluded where the sandbox cannot bind sockets.
  local exclude=''
  if ! loopback_available; then
    echo "durability: loopback unavailable, skipping the socket smoke"
    exclude='DurabilitySocketSmoke'
  fi
  ctest --test-dir build --output-on-failure --timeout 300 \
    -R 'Persist|Durability' ${exclude:+-E "$exclude"}
}

case "$stage" in
  fast)    run_fast ;;
  chaos)   run_chaos ;;
  sockets) run_sockets ;;
  asan)    run_asan ;;
  tsan)    run_tsan ;;
  scale)   run_scale ;;
  durability) run_durability ;;
  all)     run_fast; run_chaos; run_sockets; run_asan; run_tsan; run_scale
           run_durability ;;
  *) echo "unknown stage: $stage" >&2
     echo "want fast|chaos|sockets|asan|tsan|scale|durability|all" >&2
     exit 2 ;;
esac
