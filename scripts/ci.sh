#!/usr/bin/env bash
# Staged CI driver. Stages:
#
#   fast   — build + every test that is not labelled `chaos` (quick signal)
#   chaos  — the labelled fault-injection soaks and scenario sweeps,
#            scheduled separately because they simulate tens of seconds of
#            virtual/wall time (each already carries a 300 s ctest timeout)
#   tsan   — ET_SANITIZE=thread build running the concurrency-sensitive
#            suites, including the RealTimeNetwork chaos scenario smoke
#
# Usage: scripts/ci.sh [fast|chaos|tsan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

configure() { # build-dir extra-cmake-args...
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
}

run_fast() {
  configure build
  ctest --test-dir build -LE chaos --output-on-failure -j "$jobs"
}

run_chaos() {
  configure build
  ctest --test-dir build -L chaos --output-on-failure --timeout 300
}

run_tsan() {
  configure build-tsan -DET_SANITIZE=thread -DET_BUILD_BENCHMARKS=OFF \
    -DET_BUILD_EXAMPLES=OFF
  # Threaded/wall-clock suites where TSan has something to bite on; the
  # chaos scenario binary includes the RealTimeNetwork schedule smoke.
  ctest --test-dir build-tsan --output-on-failure --timeout 300 -R \
    'Realtime|RealTime|ChaosRealTimeSmoke|Threaded|backend_conformance'
}

case "$stage" in
  fast)  run_fast ;;
  chaos) run_chaos ;;
  tsan)  run_tsan ;;
  all)   run_fast; run_chaos; run_tsan ;;
  *) echo "unknown stage: $stage (want fast|chaos|tsan|all)" >&2; exit 2 ;;
esac
