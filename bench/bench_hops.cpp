// Experiment E1 — paper Table 3 (trace-routing rows) and Figure 2:
// trace routing overhead vs broker hops, TCP-like vs UDP-like transport,
// authorization-only vs authorization + security.
//
// Topology (paper Figure 1): traced entity -> broker1 -> ... -> brokerH ->
// measuring tracker, one broker per "hop". Each trace crosses H+1 links
// and pays, per the scheme: entity RSA signature, broker verification,
// broker delegate signature + token attach, per-hop token verification
// (trace filter) and tracker-side end-to-end verification; the secured
// variant adds AES-192 encryption at the broker and decryption at the
// tracker.
#include <cstdio>

#include "bench/bench_util.h"

namespace et::bench {
namespace {

constexpr std::size_t kRounds = 40;

RunningStats run_config(std::size_t hops, const transport::LinkParams& link,
                        bool secure) {
  tracing::TracingConfig config = paper_config();
  config.secure_traces = secure;

  Deployment dep(hops, link, config);
  auto entity = dep.make_entity("traced-entity", 0);
  dep.start_tracing(*entity);
  auto tracker = dep.make_tracker("measuring-tracker", hops - 1);

  Latch received;
  dep.track(*tracker, "traced-entity", tracing::kCatStateTransitions,
            [&](const tracing::TracePayload& p, const pubsub::Message&) {
              if (p.state) received.hit();
            });

  RunningStats stats = measure_state_trace_latency(dep, *entity, received,
                                                   kRounds);
  // Halt all network threads while entity/tracker are still alive (they
  // are destroyed before `dep` on scope exit).
  dep.net.stop();
  return stats;
}

void run_transport(const char* name, const transport::LinkParams& link) {
  {
    PaperTable table("Trace Routing Overhead for different hops (" +
                     std::string(name) + ") -- Authorization Only");
    for (std::size_t hops = 2; hops <= 6; ++hops) {
      table.add_row(std::to_string(hops) + " hops",
                    run_config(hops, link, /*secure=*/false));
    }
    table.print();
  }
  {
    PaperTable table("Trace Routing Overhead for different hops (" +
                     std::string(name) + ") -- Authorization & Security");
    for (std::size_t hops = 2; hops <= 6; ++hops) {
      table.add_row(std::to_string(hops) + " hops",
                    run_config(hops, link, /*secure=*/true));
    }
    table.print();
  }
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf("E1: Trace routing overhead vs hops (paper Table 3 / Figure 2)\n");
  std::printf("Units: milliseconds. %zu traces per configuration.\n",
              et::bench::kRounds);
  et::bench::run_transport("TCP", et::transport::LinkParams::tcp_profile());
  et::bench::run_transport("UDP", et::transport::LinkParams::udp_profile());
  return 0;
}
