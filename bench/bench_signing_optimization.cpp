// Experiment E5 — paper Figure 5 (§6.3): the signing-cost optimization.
//
// Baseline: the traced entity RSA-signs every message it sends its hosting
// broker (§4.2). Optimized: entity and broker share the session's secret
// symmetric key and the entity AES-encrypts instead — "the
// encryption/decryption costs are cheaper than the corresponding
// signing/verification cost". Both modes measured across 2-6 hops on the
// TCP profile, end-to-end (entity state change -> verified trace at the
// tracker), exactly like E1.
#include <cstdio>

#include "bench/bench_util.h"

namespace et::bench {
namespace {

constexpr std::size_t kRounds = 40;

RunningStats run_config(std::size_t hops, tracing::EntitySigningMode mode) {
  tracing::TracingConfig config = paper_config();
  config.signing_mode = mode;

  Deployment dep(hops, transport::LinkParams::tcp_profile(), config);
  auto entity = dep.make_entity("traced-entity", 0);
  dep.start_tracing(*entity);
  auto tracker = dep.make_tracker("measuring-tracker", hops - 1);

  Latch received;
  dep.track(*tracker, "traced-entity", tracing::kCatStateTransitions,
            [&](const tracing::TracePayload& p, const pubsub::Message&) {
              if (p.state) received.hit();
            });

  RunningStats stats =
      measure_state_trace_latency(dep, *entity, received, kRounds);
  dep.net.stop();
  return stats;
}

}  // namespace
}  // namespace et::bench

int main() {
  using et::tracing::EntitySigningMode;
  std::printf(
      "E5: Signing-cost optimization (paper Figure 5, section 6.3)\n"
      "Units: milliseconds. %zu traces per configuration, TCP profile.\n",
      et::bench::kRounds);
  {
    et::bench::PaperTable table(
        "Entity signs every message (RSA-1024, section 4.2 baseline)");
    for (std::size_t hops = 2; hops <= 6; ++hops) {
      table.add_row(
          std::to_string(hops) + " hops",
          et::bench::run_config(hops, EntitySigningMode::kSignEachMessage));
    }
    table.print();
  }
  {
    et::bench::PaperTable table(
        "Symmetric session key optimization (AES-192, section 6.3)");
    for (std::size_t hops = 2; hops <= 6; ++hops) {
      table.add_row(
          std::to_string(hops) + " hops",
          et::bench::run_config(hops, EntitySigningMode::kSymmetricSession));
    }
    table.print();
  }
  return 0;
}
