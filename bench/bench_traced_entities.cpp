// Experiment E6 — paper Table 4: trace routing overhead while increasing
// the number of traced entities (10/20/30), with 1 broker and 30 trackers.
//
// As in the paper, every process shares one machine ("to cope with clock
// skews ... the traced entities and the trackers reside on the same
// machine"), so the compute-intensive per-trace security operations
// contend for the CPU: every ping response is RSA-signed by its entity and
// verified by the broker, and every resulting ALLS_WELL heartbeat is
// delegate-signed and fanned out to the trackers. More traced entities =
// more background security work per core = higher trace-routing mean and
// variance, which is the paper's observed effect.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

namespace et::bench {
namespace {

constexpr std::size_t kTrackers = 30;
constexpr std::size_t kRoundsPerEntity = 4;

RunningStats run_count(std::size_t entity_count) {
  tracing::TracingConfig config = paper_config();
  // Denser pings than the default so the per-entity security load is
  // material, as it was on the paper's 2007-era CPUs.
  config.ping_interval = 30 * kMillisecond;
  config.min_ping_interval = 20 * kMillisecond;

  Deployment dep(1, transport::LinkParams::tcp_profile(), config);

  std::vector<std::unique_ptr<tracing::TracedEntity>> entities;
  for (std::size_t i = 0; i < entity_count; ++i) {
    entities.push_back(dep.make_entity("entity-" + std::to_string(i), 0));
    dep.start_tracing(*entities.back());
  }

  // 30 trackers; tracker j watches entity j % N, receiving both the
  // heartbeat stream (background load) and the measured state
  // transitions.
  std::vector<std::unique_ptr<tracing::Tracker>> trackers;
  Latch state_received;
  for (std::size_t j = 0; j < kTrackers; ++j) {
    trackers.push_back(dep.make_tracker("tracker-" + std::to_string(j), 0));
    dep.track(*trackers.back(), "entity-" + std::to_string(j % entity_count),
              tracing::kCatStateTransitions | tracing::kCatAllUpdates,
              [&](const tracing::TracePayload& p, const pubsub::Message&) {
                if (p.state) state_received.hit();
              });
  }
  // Let the heartbeat stream reach steady state.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  SystemClock clock;
  RunningStats stats;
  std::uint64_t baseline = state_received.count();
  bool ready = true;
  for (std::size_t round = 0; round < kRoundsPerEntity; ++round) {
    for (std::size_t i = 0; i < entity_count; ++i) {
      const tracing::EntityState next =
          ready ? tracing::EntityState::kReady
                : tracing::EntityState::kRecovering;
      const TimePoint t0 = clock.now();
      entities[i]->set_state(next);
      // Latency to the FIRST tracker delivery of this transition.
      if (state_received.wait_for(baseline + 1, 5 * kSecond)) {
        stats.add(to_millis(clock.now() - t0));
      }
      // Let the rest of the audience drain before re-baselining so late
      // deliveries can't satisfy the next round's wait.
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      baseline = state_received.count();
    }
    ready = !ready;
  }
  dep.net.stop();
  return stats;
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E6: Trace routing overhead vs number of traced entities "
      "(paper Table 4)\n"
      "Units: milliseconds. 1 broker, %zu trackers, all colocated. Each\n"
      "sample is one state transition's latency to its first tracker,\n"
      "under the full ping + heartbeat security load of every traced\n"
      "entity (30 ms ping period).\n",
      et::bench::kTrackers);
  et::bench::PaperTable table(
      "Trace routing overhead by increasing traced entities (TCP)");
  for (const std::size_t n : {10u, 20u, 30u}) {
    table.add_row(std::to_string(n) + " traced entities",
                  et::bench::run_count(n));
  }
  table.print();
  return 0;
}
