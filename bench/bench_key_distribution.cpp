// Experiment E3 — paper Table 3, "Key Distribution Overhead" for 2-4
// hops: the time from a tracker announcing interest in a *secured* trace
// stream to the sealed trace key arriving and being unwrapped (§5.1:
// gauge-interest flag -> tracker response with credential -> broker seals
// {key, algorithm, padding} to the tracker's credential).
//
// Each round uses a fresh tracker on the far broker, so the full exchange
// (discovery + subscriptions + interest response + sealed delivery +
// RSA unwrap) is measured, matching the paper's large variance.
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"

namespace et::bench {
namespace {

constexpr int kRounds = 15;

RunningStats run_hops(std::size_t hops) {
  tracing::TracingConfig config = paper_config();
  config.secure_traces = true;

  Deployment dep(hops, transport::LinkParams::tcp_profile(), config);
  auto entity = dep.make_entity("secured-entity", 0);
  dep.start_tracing(*entity);

  RunningStats stats;
  SystemClock clock;
  // Trackers must outlive all network activity: their node handlers stay
  // registered until dep.net.stop() below.
  std::vector<std::unique_ptr<tracing::Tracker>> trackers;
  for (int round = 0; round < kRounds; ++round) {
    trackers.push_back(
        dep.make_tracker("tracker-" + std::to_string(round), hops - 1));
    tracing::Tracker* tracker = trackers.back().get();
    Latch ready;
    const TimePoint t0 = clock.now();
    tracker->track("secured-entity", tracing::kCatAllUpdates,
                   [](const tracing::TracePayload&, const pubsub::Message&) {},
                   [&](const Status& s) {
                     if (!s.is_ok()) std::abort();
                   });
    // The key arrives asynchronously after the interest response; poll the
    // tracker's counter.
    bool got_key = false;
    for (int spin = 0; spin < 4000; ++spin) {
      if (tracker->stats().keys_received > 0) {
        got_key = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    (void)ready;
    if (!got_key) {
      std::fprintf(stderr, "FATAL: key never arrived (hops=%zu)\n", hops);
      std::abort();
    }
    stats.add(to_millis(clock.now() - t0));
  }
  dep.net.stop();
  return stats;
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E3: Key distribution overhead (paper Table 3, last section)\n"
      "Units: milliseconds. %d fresh trackers per hop count; time from\n"
      "track() to the sealed AES-192 trace key being unwrapped.\n",
      et::bench::kRounds);
  et::bench::PaperTable table("Key Distribution Overhead");
  for (std::size_t hops = 2; hops <= 4; ++hops) {
    table.add_row(std::to_string(hops) + "-hops",
                  et::bench::run_hops(hops));
  }
  table.print();
  return 0;
}
