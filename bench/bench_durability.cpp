// E18: durability (DESIGN.md §16) — what a crash costs and what the
// paper trail costs.
//
//   * WAL replay throughput and recovery time vs log size (10^3..10^5
//     records): the startup tax of write-ahead durability;
//   * TDN restart-with-state over a 10^4-advertisement replay log, then
//     again from a checkpointed snapshot — zero advertisement loss is
//     the acceptance gate;
//   * broker misbehaviour recovery over 10^4 strike records — zero
//     blacklist loss;
//   * trace-ledger append throughput, plus the hot-path tax: the same
//     chaos scenario wall-clocked with durability (ledger + stores) off
//     vs on — the gate is < 10% regression (min-of-N, small absolute
//     slack for scheduler noise);
//   * ledger tamper detection: drop / duplicate / reorder / bit-flip /
//     sequence-rewrite mutations over valid chains — the auditor must
//     flag 100% of them.
//
// Exits non-zero when any gate fails; prints the paper-style table plus
// one JSON line for the plotting scripts.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/oracle.h"
#include "src/chaos/scenario.h"
#include "src/common/random.h"
#include "src/common/serialize.h"
#include "src/common/stats.h"
#include "src/discovery/advertisement.h"
#include "src/discovery/tdn.h"
#include "src/persist/ledger.h"
#include "src/persist/store.h"
#include "src/persist/wal.h"
#include "src/pubsub/topology.h"
#include "src/transport/virtual_network.h"

namespace et::bench {
namespace {

namespace fs = std::filesystem;
using transport::VirtualTimeNetwork;

constexpr std::size_t kBits = 512;  // protocol logic is key-size independent

double now_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

// --- WAL replay throughput vs log size ---------------------------------

struct WalPoint {
  std::size_t records = 0;
  std::size_t recovered = 0;
  double recover_ms = 0.0;
  double throughput_rps = 0.0;  // records replayed per second
};

WalPoint wal_replay(const fs::path& dir, std::size_t n) {
  const std::string p = (dir / ("wal-" + std::to_string(n) + ".log")).string();
  Rng rng(n);
  {
    persist::Wal wal;
    (void)wal.open({.path = p}, [](BytesView) {});
    const Bytes payload = rng.next_bytes(64);
    for (std::size_t i = 0; i < n; ++i) (void)wal.append(payload);
    wal.close();
  }
  WalPoint out;
  out.records = n;
  const double t0 = now_ms();
  persist::Wal wal;
  (void)wal.open({.path = p}, [&](BytesView) { ++out.recovered; });
  out.recover_ms = now_ms() - t0;
  wal.close();
  out.throughput_rps =
      out.recover_ms > 0 ? out.recovered / (out.recover_ms / 1000.0) : 0.0;
  return out;
}

// --- TDN advertisement recovery ----------------------------------------

struct TdnPoint {
  std::size_t ads = 0;
  std::size_t wal_recovered = 0;       // restart over the raw replay log
  double wal_recover_ms = 0.0;
  std::size_t snapshot_recovered = 0;  // restart after a checkpoint
  double snapshot_recover_ms = 0.0;
};

/// Builds a 10^4-advertisement replay log directly through the public
/// on-disk format (record tag 1 = advertisement, see src/discovery/tdn.cpp)
/// and measures a TDN recovering from it — replay does not re-verify
/// signatures, which is exactly what makes restart-with-state cheap.
TdnPoint tdn_recovery(const fs::path& dir, std::size_t n) {
  const fs::path tdn_dir = dir / "tdn-bench";
  fs::create_directories(tdn_dir);
  Rng rng(7);
  crypto::CertificateAuthority ca("ca", rng, kBits);
  const crypto::Identity owner_id = crypto::Identity::create(
      "bench-owner", ca, rng, 0, 3600 * kSecond, kBits);
  {
    persist::Wal wal;
    (void)wal.open({.path = (tdn_dir / "wal.log").string()}, [](BytesView) {});
    for (std::size_t i = 0; i < n; ++i) {
      const discovery::TopicAdvertisement ad(
          Uuid::generate(rng), "Availability/Traces/bench-" + std::to_string(i),
          owner_id.credential, {}, /*created_at=*/0,
          /*expires_at=*/3600 * kSecond, "tdn-0", rng.next_bytes(64));
      Writer w;
      w.u8(1);  // kRecordAd
      w.bytes(ad.serialize());
      (void)wal.append(std::move(w).take());
    }
    wal.close();
  }

  VirtualTimeNetwork net(5);
  TdnPoint out;
  out.ads = n;
  const double t0 = now_ms();
  discovery::Tdn tdn(net,
                     {crypto::Identity::create("tdn-0", ca, rng, 0,
                                               3600 * kSecond, kBits),
                      ca.public_key(), /*seed=*/5, tdn_dir.string(),
                      persist::FsyncPolicy::kNever});
  out.wal_recover_ms = now_ms() - t0;
  out.wal_recovered = tdn.advertisement_count();

  // Fold into a snapshot and measure the post-checkpoint restart.
  (void)tdn.checkpoint();
  const double t1 = now_ms();
  tdn.simulate_restart(/*with_state=*/true);
  out.snapshot_recover_ms = now_ms() - t1;
  out.snapshot_recovered = tdn.advertisement_count();
  return out;
}

// --- broker misbehaviour recovery --------------------------------------

struct BrokerPoint {
  std::size_t strikes = 0;
  std::size_t blacklisted = 0;
  std::size_t recovered_blacklist = 0;
  double recover_ms = 0.0;
};

BrokerPoint broker_recovery(const fs::path& dir, std::size_t strikes) {
  VirtualTimeNetwork net(9);
  pubsub::Topology topo(net);
  pubsub::Broker& b = topo.add_broker(
      {.name = "b0",
       .misbehaviour_persist_dir = (dir / "broker-bench").string()});
  const std::size_t threshold = 5;
  const std::size_t endpoints = strikes / threshold;
  std::vector<transport::NodeId> victims;
  victims.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    victims.push_back(net.add_node("victim-" + std::to_string(i),
                                   [](transport::NodeId, BytesView) {}));
  }
  for (std::size_t i = 0; i < endpoints; ++i) {
    for (std::size_t s = 0; s < threshold; ++s) {
      b.report_misbehaviour(victims[i], "bench");
    }
  }
  BrokerPoint out;
  out.strikes = strikes;
  out.blacklisted = b.blacklist_size();
  const double t0 = now_ms();
  b.restart_misbehaviour_state(/*with_state=*/true);
  out.recover_ms = now_ms() - t0;
  out.recovered_blacklist = b.blacklist_size();
  return out;
}

// --- ledger append throughput + hot-path overhead ----------------------

double ledger_append_rps(const fs::path& dir, std::size_t n) {
  persist::TraceLedger ledger;
  (void)ledger.open({.path = (dir / "ledger-bench.log").string()});
  Rng rng(13);
  const Bytes payload = rng.next_bytes(96);
  const Bytes signature = rng.next_bytes(64);
  const double t0 = now_ms();
  for (std::size_t i = 0; i < n; ++i) {
    (void)ledger.append("t/bench", "entity-1", 1,
                        static_cast<TimePoint>(i), payload, signature);
  }
  const double ms = now_ms() - t0;
  return ms > 0 ? n / (ms / 1000.0) : 0.0;
}

/// Wall-clocks one virtual-time chaos slice with durability off/on; the
/// trace emission path (sign + publish, plus ledger append when on) is
/// the dominant cost, so the ratio is the hot-path tax.
double scenario_wall_ms(bool durable) {
  VirtualTimeNetwork net(4242);
  chaos::ScenarioDeployment::Options opts;
  opts.overlay.shape = chaos::OverlaySpec::Shape::kChain;
  opts.overlay.brokers = 4;
  opts.seed = 4242;
  opts.durability.enabled = durable;
  const double t0 = now_ms();
  chaos::ScenarioDeployment dep(net, opts);
  dep.register_brokers();
  net.run_for(20 * kMillisecond);
  dep.add_entity("entity-0", 0);
  net.run_for(20 * kMillisecond);
  dep.add_tracker("tracker-0", 3);
  net.run_for(20 * kMillisecond);
  bool started = false;
  dep.entity(0).start_tracing({}, [&](const Status&) { started = true; });
  for (int i = 0; i < 100 && !started; ++i) net.run_for(50 * kMillisecond);
  bool tracking = false;
  dep.tracker(0).track(
      "entity-0", tracing::kCatAll,
      [](const tracing::TracePayload&, const pubsub::Message&) {},
      [&](const Status&) { tracking = true; });
  for (int i = 0; i < 100 && !tracking; ++i) net.run_for(50 * kMillisecond);
  net.run_for(10 * kSecond);
  return now_ms() - t0;
}

double min_scenario_ms(bool durable, int runs) {
  double best = scenario_wall_ms(durable);
  for (int i = 1; i < runs; ++i) {
    best = std::min(best, scenario_wall_ms(durable));
  }
  return best;
}

// --- ledger tamper detection -------------------------------------------

struct DetectPoint {
  std::size_t injected = 0;
  std::size_t detected = 0;
};

DetectPoint ledger_detection() {
  DetectPoint out;
  for (std::uint64_t seed : {5ULL, 23ULL, 71ULL}) {
    persist::TraceLedger ledger;
    Rng rng(seed);
    constexpr std::size_t kChain = 50;
    for (std::size_t i = 0; i < kChain; ++i) {
      (void)ledger.append("t", "e-" + std::to_string(i % 5),
                          static_cast<std::uint8_t>(rng.next_below(7)),
                          static_cast<TimePoint>(1000 * (i + 1)),
                          rng.next_bytes(40), rng.next_bytes(32));
    }
    const std::vector<persist::LedgerRecord> pristine = ledger.records("t");
    for (int kind = 0; kind < 5; ++kind) {
      for (std::size_t k = 0; k + 1 < kChain; ++k) {
        std::vector<persist::LedgerRecord> chain = pristine;
        switch (kind) {
          case 0:  // drop an interior record
            chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(k));
            break;
          case 1:  // duplicate a record
            chain.insert(chain.begin() + static_cast<std::ptrdiff_t>(k + 1),
                         chain[k]);
            break;
          case 2:  // reorder adjacent records
            std::swap(chain[k], chain[k + 1]);
            break;
          case 3:  // flip one payload bit
            chain[k].payload[k % chain[k].payload.size()] ^= 0x10;
            break;
          case 4:  // forge the sequence number
            chain[k].sequence += 3;
            break;
        }
        ++out.injected;
        if (!persist::LedgerAuditor::verify_chain(chain).ok) ++out.detected;
      }
    }
  }
  return out;
}

}  // namespace
}  // namespace et::bench

int main() {
  using namespace et;
  using namespace et::bench;

  const fs::path dir =
      fs::temp_directory_path() / "et-bench-durability";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // E18a: WAL replay vs log size.
  std::vector<WalPoint> wal_points;
  for (const std::size_t n : {std::size_t{1000}, std::size_t{10000},
                              std::size_t{100000}}) {
    wal_points.push_back(wal_replay(dir, n));
  }

  // E18b/c: component recovery at 10^4 records.
  const TdnPoint tdn = tdn_recovery(dir, 10000);
  const BrokerPoint broker = broker_recovery(dir, 10000);

  // E18d: ledger throughput + hot-path tax.
  const double append_rps = ledger_append_rps(dir, 100000);
  const double off_ms = min_scenario_ms(false, 5);
  const double on_ms = min_scenario_ms(true, 5);
  const double overhead = off_ms > 0 ? (on_ms - off_ms) / off_ms : 0.0;

  // E18e: tamper detection.
  const DetectPoint detect = ledger_detection();

  std::printf("\nE18: durability — recovery, replay throughput, ledger\n");
  std::printf("%-44s %14s %14s\n", "Measurement", "Value", "Unit");
  for (const WalPoint& p : wal_points) {
    std::printf("%-44s %14.2f %14s\n",
                ("wal replay " + std::to_string(p.records) + " records")
                    .c_str(),
                p.recover_ms, "ms");
    std::printf("%-44s %14.0f %14s\n", "  throughput", p.throughput_rps,
                "records/s");
  }
  std::printf("%-44s %14.2f %14s\n", "tdn recover 10^4 ads (replay log)",
              tdn.wal_recover_ms, "ms");
  std::printf("%-44s %14.2f %14s\n", "tdn recover 10^4 ads (snapshot)",
              tdn.snapshot_recover_ms, "ms");
  std::printf("%-44s %14.2f %14s\n", "broker recover 10^4 strikes",
              broker.recover_ms, "ms");
  std::printf("%-44s %14.0f %14s\n", "ledger append throughput", append_rps,
              "records/s");
  std::printf("%-44s %14.2f %14s\n", "hot path, durability off (min)",
              off_ms, "ms");
  std::printf("%-44s %14.2f %14s\n", "hot path, durability on (min)", on_ms,
              "ms");
  std::printf("%-44s %14.2f %14s\n", "hot path overhead", overhead * 100.0,
              "%");
  std::printf("%-44s %10zu/%zu %10s\n", "ledger mutations detected",
              detect.detected, detect.injected, "");

  std::printf("{\"experiment\":\"E18\",\"wal\":[");
  for (std::size_t i = 0; i < wal_points.size(); ++i) {
    std::printf("%s{\"records\":%zu,\"recover_ms\":%.3f,\"rps\":%.0f}",
                i ? "," : "", wal_points[i].records, wal_points[i].recover_ms,
                wal_points[i].throughput_rps);
  }
  std::printf(
      "],\"tdn\":{\"ads\":%zu,\"wal_recovered\":%zu,\"wal_ms\":%.3f,"
      "\"snapshot_recovered\":%zu,\"snapshot_ms\":%.3f},"
      "\"broker\":{\"strikes\":%zu,\"blacklisted\":%zu,\"recovered\":%zu,"
      "\"recover_ms\":%.3f},"
      "\"ledger\":{\"append_rps\":%.0f,\"hot_off_ms\":%.3f,"
      "\"hot_on_ms\":%.3f,\"overhead\":%.4f,"
      "\"mutations_injected\":%zu,\"mutations_detected\":%zu}}\n",
      tdn.ads, tdn.wal_recovered, tdn.wal_recover_ms, tdn.snapshot_recovered,
      tdn.snapshot_recover_ms, broker.strikes, broker.blacklisted,
      broker.recovered_blacklist, broker.recover_ms, append_rps, off_ms,
      on_ms, overhead, detect.injected, detect.detected);

  fs::remove_all(dir);

  // Acceptance gates (ISSUE 10): zero-loss recovery at 10^4 records,
  // 100% tamper detection, < 10% hot-path regression (with a small
  // absolute slack so scheduler noise on a sub-second sample cannot
  // fail a correct build).
  bool ok = true;
  for (const WalPoint& p : wal_points) {
    if (p.recovered != p.records) {
      std::fprintf(stderr, "FAIL: wal replay lost records (%zu/%zu)\n",
                   p.recovered, p.records);
      ok = false;
    }
  }
  if (tdn.wal_recovered != tdn.ads || tdn.snapshot_recovered != tdn.ads) {
    std::fprintf(stderr, "FAIL: tdn recovery lost advertisements (%zu/%zu "
                         "replay, %zu/%zu snapshot)\n",
                 tdn.wal_recovered, tdn.ads, tdn.snapshot_recovered, tdn.ads);
    ok = false;
  }
  if (broker.recovered_blacklist != broker.blacklisted ||
      broker.blacklisted == 0) {
    std::fprintf(stderr, "FAIL: broker recovery lost blacklist (%zu/%zu)\n",
                 broker.recovered_blacklist, broker.blacklisted);
    ok = false;
  }
  if (detect.detected != detect.injected) {
    std::fprintf(stderr, "FAIL: ledger auditor missed mutations (%zu/%zu)\n",
                 detect.detected, detect.injected);
    ok = false;
  }
  if (on_ms > off_ms * 1.10 + 20.0) {
    std::fprintf(stderr,
                 "FAIL: ledger hot-path overhead %.1f%% (off=%.2fms "
                 "on=%.2fms)\n",
                 overhead * 100.0, off_ms, on_ms);
    ok = false;
  }
  return ok ? 0 : 1;
}
