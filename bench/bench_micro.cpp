// Experiment E9 (ablation) — google-benchmark microbenchmarks of the hot
// primitives underneath the tracing scheme: digests, AES, RSA, Montgomery
// exponentiation, topic matching, constrained-topic parsing and
// subscription-table lookup.
#include <benchmark/benchmark.h>

#include "src/common/topic_path.h"
#include "src/common/uuid.h"
#include "src/crypto/aes.h"
#include "src/crypto/bigint.h"
#include "src/crypto/hmac.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha256.h"
#include "src/pubsub/constrained_topic.h"
#include "src/pubsub/subscription.h"

namespace et {
namespace {

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(512)->Arg(4096);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(512)->Arg(4096);

void BM_HmacSha1(benchmark::State& state) {
  Rng rng(3);
  const Bytes key = rng.next_bytes(20);
  const Bytes data = rng.next_bytes(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha1(key, data));
  }
}
BENCHMARK(BM_HmacSha1);

void BM_AesCbcEncrypt(benchmark::State& state) {
  Rng rng(4);
  const crypto::Aes cipher(rng.next_bytes(24));
  const Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_encrypt(cipher, data, rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(64)->Arg(512)->Arg(4096);

void BM_AesCbcDecrypt(benchmark::State& state) {
  Rng rng(5);
  const crypto::Aes cipher(rng.next_bytes(24));
  const Bytes ct = crypto::aes_cbc_encrypt(
      cipher, rng.next_bytes(static_cast<std::size_t>(state.range(0))), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_decrypt(cipher, ct));
  }
}
BENCHMARK(BM_AesCbcDecrypt)->Arg(512);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(6);
  const crypto::RsaKeyPair kp =
      crypto::rsa_generate(rng, static_cast<std::size_t>(state.range(0)));
  const Bytes msg = rng.next_bytes(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.private_key.sign(msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(7);
  const crypto::RsaKeyPair kp =
      crypto::rsa_generate(rng, static_cast<std::size_t>(state.range(0)));
  const Bytes msg = rng.next_bytes(512);
  const Bytes sig = kp.private_key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.public_key.verify(msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(1024);

void BM_RsaEncrypt(benchmark::State& state) {
  Rng rng(8);
  const crypto::RsaKeyPair kp = crypto::rsa_generate(rng, 1024);
  const Bytes msg = rng.next_bytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.public_key.encrypt(msg, rng));
  }
}
BENCHMARK(BM_RsaEncrypt);

void BM_MontgomeryModExp(benchmark::State& state) {
  Rng rng(9);
  const crypto::BigInt n =
      crypto::BigInt::generate_prime(rng, static_cast<std::size_t>(state.range(0)), 16);
  const crypto::BigInt base = crypto::BigInt::random_below(rng, n);
  const crypto::BigInt exp = crypto::BigInt::random_bits(
      rng, static_cast<std::size_t>(state.range(0)));
  const crypto::Montgomery mont(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow(base, exp));
  }
}
BENCHMARK(BM_MontgomeryModExp)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_TopicMatch(benchmark::State& state) {
  const std::string pattern =
      "Constrained/Traces/Broker/Publish-Only/"
      "9f2c1d34-aaaa-4bbb-8ccc-123456789abc/AllUpdates";
  const std::string topic = pattern;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topic_matches(pattern, topic));
  }
}
BENCHMARK(BM_TopicMatch);

void BM_TopicMatchWildcard(benchmark::State& state) {
  const std::string pattern = "Constrained/Traces/#";
  const std::string topic =
      "Constrained/Traces/Broker/Publish-Only/uuid/AllUpdates";
  for (auto _ : state) {
    benchmark::DoNotOptimize(topic_matches(pattern, topic));
  }
}
BENCHMARK(BM_TopicMatchWildcard);

void BM_ConstrainedParse(benchmark::State& state) {
  const std::string topic =
      "/Constrained/Traces/Broker/Subscribe-Only/Limited/"
      "9f2c1d34-aaaa-4bbb-8ccc-123456789abc/session";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pubsub::ConstrainedTopic::parse(topic));
  }
}
BENCHMARK(BM_ConstrainedParse);

void BM_SubscriptionMatch(benchmark::State& state) {
  pubsub::SubscriptionTable table;
  Rng rng(10);
  for (int i = 0; i < state.range(0); ++i) {
    table.add("Constrained/Traces/Broker/Publish-Only/" +
                  Uuid::generate(rng).to_string() + "/AllUpdates",
              static_cast<transport::NodeId>(i));
  }
  Rng probe_rng(10);
  const TopicPath hit("Constrained/Traces/Broker/Publish-Only/" +
                      Uuid::generate(probe_rng).to_string() + "/AllUpdates");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.match(hit));
  }
}
BENCHMARK(BM_SubscriptionMatch)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace et

BENCHMARK_MAIN();
