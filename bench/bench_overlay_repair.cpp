// E17: self-healing overlay — time-to-reconnect and post-repair
// availability error after a severing overlay cut (DESIGN.md §15,
// extends E14's topology sweeps with the repair protocol in the loop).
//
// Three shapes, each cut so the (tracker, entity) pair is stranded on
// opposite halves:
//
//   * ring-8 — the spanning chain is cut in the middle; repair activates
//     the ring's recorded standby link;
//   * clusters-32 — the rack-severing core-chain cut from the ROADMAP
//     sweep; repair activates the core bypass standby;
//   * clusters-32/gossip — same cut with standby activation disabled, so
//     repair must build a fresh gossip-scored edge (the RAPTEE-style
//     path).
//
// Each shape runs repair-off vs repair-on at overlay loss 0, 0.5% and 5%,
// over several seeds. Scored per cell: time-to-reconnect (first
// availability signal at the tracker after the cut), availability error
// over the settled tail window [cut+4s, end], entity failovers (must be
// zero — repair happens under the routing layer, entities never
// re-register) and the repair path taken. Headline: the repair-on
// cluster cells converge to exactly zero tail availability error at
// every loss rate; the bench exits non-zero if they don't.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/oracle.h"
#include "src/chaos/scenario.h"
#include "src/common/stats.h"
#include "src/pubsub/overlay_repair.h"
#include "src/transport/fault_injector.h"
#include "src/transport/virtual_network.h"

namespace et::chaos {
namespace {

using transport::VirtualTimeNetwork;

struct ShapeCell {
  std::string label;
  OverlaySpec overlay;
  std::size_t cut_a = 0;  // overlay edge severed mid-run
  std::size_t cut_b = 0;
  std::size_t entity_broker = 0;
  std::size_t tracker_broker = 0;
  bool activate_standby = true;  // false: force the gossip-scored path
};

struct CellResult {
  RunningStats reconnect_ms;      // per reconnected seed
  RunningStats tail_avail_err;    // per seed, window [cut+4s, end]
  std::size_t runs = 0;
  std::size_t reconnected = 0;
  std::uint64_t entity_failovers = 0;
  std::uint64_t standby_activations = 0;
  std::uint64_t repeers = 0;
  std::uint64_t stranded = 0;
  std::vector<std::string> first_actions;  // repair log, first seed
};

void drive(VirtualTimeNetwork& net, bool& done, const char* what) {
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
  if (!done) {
    std::fprintf(stderr, "FATAL: %s never completed\n", what);
    std::abort();
  }
}

/// One (shape, repair, loss, seed) run: warm up, sever the cut edge,
/// observe for 10 s, score the tail.
void run_cell(const ShapeCell& cell, bool repair, double loss,
              std::uint64_t seed, CellResult& out) {
  VirtualTimeNetwork net(seed);
  ScenarioDeployment::Options opts;
  opts.overlay = cell.overlay;
  opts.seed = seed;
  opts.overlay_loss = loss;
  opts.repair.enabled = repair;
  opts.repair.activate_standby = cell.activate_standby;
  ScenarioDeployment dep(net, opts);
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  tracing::TracedEntity& entity = dep.add_entity("entity", cell.entity_broker);
  net.run_for(20 * kMillisecond);
  tracing::Tracker& tracker = dep.add_tracker("tracker", cell.tracker_broker);
  net.run_for(20 * kMillisecond);

  bool started = false;
  entity.start_tracing({}, [&](const Status& s) { started = s.is_ok(); });
  drive(net, started, "start_tracing");

  AvailabilityOracle oracle;
  TimePoint cut_at = 0;
  TimePoint reconnect_at = 0;
  bool tracked = false;
  tracker.track(
      entity.entity_id(), tracing::kCatAll,
      oracle.tap(tracker.tracker_id(), entity.entity_id(), net,
                 [&](const tracing::TracePayload& p, const pubsub::Message&) {
                   // First availability signal after the cut (50 ms dead
                   // margin skips frames already in flight when it landed).
                   if (cut_at != 0 && reconnect_at == 0 &&
                       net.now() > cut_at + 50 * kMillisecond &&
                       availability_signal(p.type)) {
                     reconnect_at = net.now();
                   }
                 }),
      [&](const Status& s) { tracked = s.is_ok(); });
  drive(net, tracked, "track");

  // Anti-entropy after setup: on a lossy overlay the initial interest
  // flood may have dropped announcements; resync so every cell starts
  // converged and the run measures repair, not setup luck.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < dep.broker_count(); ++i) {
      pubsub::Broker& b = dep.broker(i);
      net.post(b.node(), [&b] { b.resync_interest(); });
    }
    net.run_for(200 * kMillisecond);
  }
  dep.sample_truth(oracle, net.now());
  for (int i = 0; i < 40; ++i) {  // 2 s warm-up in 50 ms slices
    net.run_for(50 * kMillisecond);
    dep.sample_truth(oracle, net.now());
  }

  cut_at = net.now();
  net.faults().blackhole(dep.broker(cell.cut_a).node(),
                         dep.broker(cell.cut_b).node());
  for (int i = 0; i < 200; ++i) {  // 10 s observation in 50 ms slices
    net.run_for(50 * kMillisecond);
    dep.sample_truth(oracle, net.now());
  }

  ++out.runs;
  if (reconnect_at != 0) {
    ++out.reconnected;
    out.reconnect_ms.add(static_cast<double>(reconnect_at - cut_at) / 1000.0);
  }
  const Duration grace = 50 * kMillisecond + 2 * kSecond +
                         dep.config().recovery_announce_delay;
  const OracleReport tail =
      oracle.report_window(cut_at + 4 * kSecond, net.now(), grace);
  for (const PairReport& p : tail.pairs) {
    out.tail_avail_err.add(p.availability_error);
  }
  out.entity_failovers += entity.stats().failovers;
  if (repair) {
    const pubsub::RepairPolicy::Stats rs = dep.repair_policy()->stats();
    out.standby_activations += rs.standby_activations;
    out.repeers += rs.repeers;
    out.stranded += rs.stranded;
    if (out.first_actions.empty()) {
      out.first_actions = dep.repair_policy()->action_log();
    }
  }
}

}  // namespace
}  // namespace et::chaos

int main() {
  using namespace et;
  using namespace et::chaos;

  std::vector<ShapeCell> shapes;
  {
    ShapeCell c;
    c.label = "ring-8";
    c.overlay.shape = OverlaySpec::Shape::kRing;
    c.overlay.brokers = 8;
    c.cut_a = 3;  // middle of the spanning chain
    c.cut_b = 4;
    c.entity_broker = 0;
    c.tracker_broker = 7;
    shapes.push_back(c);
  }
  {
    ShapeCell c;
    c.label = "clusters-32";
    c.overlay.shape = OverlaySpec::Shape::kClusters;
    c.overlay.brokers = 32;  // 8 cores x (1 + 3 leaves)
    c.overlay.leaves_per_core = 3;
    c.cut_a = 3;  // rack-severing core-chain cut
    c.cut_b = 4;
    c.entity_broker = 8;    // first leaf of rack 0
    c.tracker_broker = 29;  // first leaf of rack 7
    shapes.push_back(c);
  }
  {
    ShapeCell c = shapes.back();
    c.label = "clusters-32/gossip";
    c.activate_standby = false;  // force the gossip-scored re-peering path
    shapes.push_back(c);
  }
  const double losses[] = {0.0, 0.005, 0.05};
  const std::uint64_t seeds[] = {101, 202, 303};

  struct Row {
    std::string label;
    bool repair = false;
    double loss = 0.0;
    CellResult r;
  };
  std::vector<Row> rows;
  bench::PaperTable table("E17: time-to-reconnect after a severing cut (ms)");
  for (const ShapeCell& shape : shapes) {
    for (const bool repair : {false, true}) {
      for (const double loss : losses) {
        CellResult r;
        for (const std::uint64_t seed : seeds) {
          run_cell(shape, repair, loss, seed, r);
        }
        char label[96];
        std::snprintf(label, sizeof(label), "%s %s loss=%.1f%%",
                      shape.label.c_str(), repair ? "repair" : "no-repair",
                      loss * 100.0);
        table.add_row(label, r.reconnect_ms);
        rows.push_back({label, repair, loss, r});
        std::fprintf(stderr, "done: %s (reconnected %zu/%zu)\n", label,
                     r.reconnected, r.runs);
      }
    }
  }

  table.print();
  table.print_json("overlay_repair");

  std::printf("\nE17 detail (per cell, %zu seeds)\n", std::size(seeds));
  std::printf("%-34s %11s %12s %9s %8s %7s %8s\n", "Cell", "reconnected",
              "tail-error", "failover", "standby", "repeer", "stranded");
  for (const Row& row : rows) {
    std::printf("%-34s %7zu/%-3zu %12.4f %9llu %8llu %7llu %8llu\n",
                row.label.c_str(), row.r.reconnected, row.r.runs,
                row.r.tail_avail_err.mean(),
                static_cast<unsigned long long>(row.r.entity_failovers),
                static_cast<unsigned long long>(row.r.standby_activations),
                static_cast<unsigned long long>(row.r.repeers),
                static_cast<unsigned long long>(row.r.stranded));
  }
  std::printf("{\"bench\":\"overlay_repair_detail\",\"rows\":[");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf(
        "%s{\"label\":\"%s\",\"repair\":%s,\"loss\":%.3f,"
        "\"reconnected\":%zu,\"runs\":%zu,\"reconnect_ms\":%.3f,"
        "\"tail_availability_error\":%.6f,\"entity_failovers\":%llu,"
        "\"standby_activations\":%llu,\"repeers\":%llu,\"stranded\":%llu,"
        "\"actions\":[",
        i ? "," : "", row.label.c_str(), row.repair ? "true" : "false",
        row.loss, row.r.reconnected, row.r.runs, row.r.reconnect_ms.mean(),
        row.r.tail_avail_err.mean(),
        static_cast<unsigned long long>(row.r.entity_failovers),
        static_cast<unsigned long long>(row.r.standby_activations),
        static_cast<unsigned long long>(row.r.repeers),
        static_cast<unsigned long long>(row.r.stranded));
    for (std::size_t a = 0; a < row.r.first_actions.size(); ++a) {
      std::printf("%s\"%s\"", a ? "," : "", row.r.first_actions[a].c_str());
    }
    std::printf("]}");
  }
  std::printf("]}\n");

  // Headline acceptance: every repair-on cell reconnects on every seed,
  // converges to exactly zero tail availability error, and no entity
  // ever re-registered — repair is invisible above the routing layer.
  bool ok = true;
  for (const Row& row : rows) {
    if (!row.repair) continue;
    if (row.r.reconnected != row.r.runs || row.r.entity_failovers != 0 ||
        row.r.tail_avail_err.max() != 0.0 || row.r.stranded != 0) {
      std::fprintf(stderr,
                   "FAIL: %s reconnected=%zu/%zu tail-error-max=%.6f "
                   "failovers=%llu stranded=%llu\n",
                   row.label.c_str(), row.r.reconnected, row.r.runs,
                   row.r.tail_avail_err.max(),
                   static_cast<unsigned long long>(row.r.entity_failovers),
                   static_cast<unsigned long long>(row.r.stranded));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
