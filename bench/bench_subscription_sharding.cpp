// E11 — sharded subscription table + threaded match stage.
//
// Two views of the scaling change (DESIGN.md §9):
//   1. Table microbench: the sharded snapshot table vs the previous
//      std::map implementation (reproduced below as LegacyMapTable),
//      single-threaded match cost across pattern counts and two
//      workloads. "exact" is the paper's trace workload — wildcard-free
//      UUID topics — where the sharded table resolves matches by binary
//      search instead of a scan. "wildcard" keeps every pattern on the
//      scan path and guards the "no regression at match_threads=0"
//      requirement even on the sharded table's worst case (every
//      pattern under one top-level segment).
//   2. Broker bench: aggregate publish->deliver throughput through one
//      RealTimeNetwork broker carrying heavy wildcard subscription
//      state, at match_threads 0 / 2 / 4. With workers, the match stage
//      leaves the broker's node thread, which then only parses inbound
//      frames and executes send stages. Note: offloading only shows a
//      wall-clock win when the host has spare cores — the JSON reports
//      hw_concurrency so single-core container runs (where T>0 can at
//      best tie T=0) are interpretable.
//
// Emits the human-readable tables of the other benches plus one JSON
// object per table/counter set (see PaperTable::print_json) so a
// BENCH_subscription_sharding trajectory can be tracked across PRs.
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/pubsub/broker.h"
#include "src/pubsub/client.h"
#include "src/pubsub/subscription.h"
#include "src/pubsub/topology.h"
#include "src/transport/realtime_network.h"

namespace et::bench {
namespace {

// ---------------------------------------------------------------------------
// Section A: table microbench vs the legacy std::map implementation.

/// The pre-sharding SubscriptionTable, reproduced as the baseline: one
/// std::map over all patterns, every match walks every entry.
class LegacyMapTable {
 public:
  void add(const std::string& pattern, transport::NodeId endpoint) {
    auto [it, inserted] = entries_.try_emplace(normalize_topic(pattern));
    if (inserted) it->second.compiled = TopicPath(it->first);
    it->second.subs.insert(endpoint);
  }

  [[nodiscard]] std::set<transport::NodeId> match(
      const TopicPath& topic) const {
    std::set<transport::NodeId> out;
    for (const auto& [pattern, e] : entries_) {
      if (topic_matches(e.compiled, topic)) {
        out.insert(e.subs.begin(), e.subs.end());
      }
    }
    return out;
  }

 private:
  struct Entry {
    TopicPath compiled;
    std::set<transport::NodeId> subs;
  };
  std::map<std::string, Entry> entries_;
};

/// Trace-like patterns: all under one top-level segment ("Constrained"),
/// which concentrates the whole population in a single shard — the
/// sharded table's worst case, so the comparison is honest. The exact
/// workload subscribes to a specific action per trace topic; the
/// wildcard workload subscribes to all actions under each trace topic,
/// which forces the scan path.
std::vector<std::string> make_patterns(std::size_t count, bool wildcard,
                                       Rng& rng) {
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back("Constrained/Traces/Broker/Publish-Only/" +
                  Uuid::generate(rng).to_string() +
                  (wildcard ? "/*" : "/AllUpdates"));
  }
  return out;
}

struct MicroResult {
  double sharded_us = 0;  // mean per match
  double legacy_us = 0;
};

MicroResult run_table_micro(std::size_t pattern_count, bool wildcard,
                            PaperTable& table) {
  Rng rng(77);
  const auto patterns = make_patterns(pattern_count, wildcard, rng);
  pubsub::SubscriptionTable sharded;
  LegacyMapTable legacy;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const auto endpoint = static_cast<transport::NodeId>(i + 1);
    sharded.add(patterns[i], endpoint);
    legacy.add(patterns[i], endpoint);
  }
  // Probes: alternate a hit (matches exactly one pattern) and a miss
  // (same shape, unknown UUID — walks the same candidate entries).
  std::vector<TopicPath> probes;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::string& pat = patterns[(i * 7919) % patterns.size()];
    probes.emplace_back(
        wildcard ? pat.substr(0, pat.size() - 1) + "AllUpdates" : pat);
    probes.emplace_back("Constrained/Traces/Broker/Publish-Only/" +
                        Uuid::generate(rng).to_string() + "/AllUpdates");
  }

  constexpr std::size_t kRounds = 12;
  const std::size_t per_round =
      std::max<std::size_t>(64, 262144 / pattern_count);
  SystemClock clock;
  std::uint64_t checksum = 0;  // defeats dead-code elimination
  const char* workload = wildcard ? "wildcard" : "exact";
  const std::string suffix = std::string(" (") + workload + ", " +
                             std::to_string(pattern_count) + " pat)";

  RunningStats sharded_stats;
  for (std::size_t r = 0; r < kRounds; ++r) {
    const TimePoint t0 = clock.now();
    for (std::size_t i = 0; i < per_round; ++i) {
      checksum += sharded.match(probes[i % probes.size()]).size();
    }
    const TimePoint t1 = clock.now();
    sharded_stats.add(to_millis(t1 - t0) / static_cast<double>(per_round));
  }
  table.add_row("sharded match / msg" + suffix, sharded_stats);

  RunningStats legacy_stats;
  for (std::size_t r = 0; r < kRounds; ++r) {
    const TimePoint t0 = clock.now();
    for (std::size_t i = 0; i < per_round; ++i) {
      checksum += legacy.match(probes[i % probes.size()]).size();
    }
    const TimePoint t1 = clock.now();
    legacy_stats.add(to_millis(t1 - t0) / static_cast<double>(per_round));
  }
  table.add_row("legacy map match / msg" + suffix, legacy_stats);

  const MicroResult res{sharded_stats.mean() * 1000.0,
                        legacy_stats.mean() * 1000.0};
  std::printf(
      "{\"bench\":\"subscription_sharding\",\"counters\":{"
      "\"workload\":\"%s\",\"patterns\":%zu,"
      "\"sharded_us\":%.3f,\"legacy_us\":%.3f,"
      "\"single_thread_ratio\":%.4f,\"checksum\":%llu}}\n",
      workload, pattern_count, res.sharded_us, res.legacy_us,
      res.legacy_us > 0 ? res.sharded_us / res.legacy_us : 0.0,
      static_cast<unsigned long long>(checksum));
  return res;
}

// ---------------------------------------------------------------------------
// Section B: one RealTimeNetwork broker under heavy subscription state.

constexpr std::size_t kBrokerPatterns = 2048;
constexpr int kPublishers = 4;
constexpr int kPerPublisher = 500;

/// Deep wildcard ballast patterns sharing the published topics' first
/// segment: every one lands in the same candidate shard, stays on the
/// scan path (trailing '*'), and only mismatches near its last segment,
/// so each inbound message pays a full scan — the match stage dominates
/// and the benefit of offloading it is visible (given spare cores).
std::string ballast_pattern(std::size_t i) {
  return "Bench/load/s1/s2/s3/s4/s5/s6/s7/s8/p" + std::to_string(i) + "/*";
}

double run_broker_throughput(int match_threads, PaperTable& table,
                             double inline_msgs_per_sec) {
  transport::RealTimeNetwork net(2024);
  pubsub::Topology topo(net);
  pubsub::Broker::Options o;
  o.name = "b0";
  o.match_threads = match_threads;
  pubsub::Broker& broker = topo.add_broker(std::move(o));
  const transport::LinkParams link = transport::LinkParams::ideal_profile();

  // The sink holds the one matching subscription; the ballast client
  // holds the scan weight.
  pubsub::Client sink(net, "sink");
  std::atomic<bool> sink_ok{false};
  sink.connect(broker.node(), link,
               [&](const Status& s) { sink_ok = s.is_ok(); });
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<bool> subscribed{false};
  sink.subscribe(
      "Bench/#", [&](const pubsub::Message&) { delivered.fetch_add(1); },
      [&](const Status& s) { subscribed = s.is_ok(); });

  pubsub::Client ballast(net, "ballast");
  std::atomic<bool> ballast_ok{false};
  ballast.connect(broker.node(), link,
                  [&](const Status& s) { ballast_ok = s.is_ok(); });
  std::atomic<std::size_t> acked{0};
  for (std::size_t i = 0; i < kBrokerPatterns; ++i) {
    ballast.subscribe(
        ballast_pattern(i), [](const pubsub::Message&) {},
        [&](const Status& s) {
          if (s.is_ok()) acked.fetch_add(1);
        });
  }

  std::vector<std::unique_ptr<pubsub::Client>> pubs;
  std::atomic<int> connected{0};
  for (int p = 0; p < kPublishers; ++p) {
    pubs.push_back(std::make_unique<pubsub::Client>(
        net, "pub" + std::to_string(p)));
    pubs.back()->connect(broker.node(), link, [&](const Status& s) {
      if (s.is_ok()) connected.fetch_add(1);
    });
  }
  for (int i = 0; i < 3000; ++i) {
    if (sink_ok && subscribed && ballast_ok &&
        acked == kBrokerPatterns && connected == kPublishers) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (acked != kBrokerPatterns || connected != kPublishers) std::abort();

  SystemClock clock;
  const TimePoint t0 = clock.now();
  std::vector<std::thread> workers;
  for (int p = 0; p < kPublishers; ++p) {
    workers.emplace_back([&pubs, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        pubs[p]->publish(
            "Bench/load/s1/s2/s3/s4/s5/s6/s7/s8/msg" + std::to_string(i),
            to_bytes(std::to_string(i)));
      }
    });
  }
  for (auto& t : workers) t.join();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kPublishers) * kPerPublisher;
  while (delivered.load() < kTotal) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (to_millis(clock.now() - t0) > 120000.0) std::abort();
  }
  const TimePoint t1 = clock.now();
  net.stop();

  const double elapsed_ms = to_millis(t1 - t0);
  const double msgs_per_sec = 1000.0 * static_cast<double>(kTotal) /
                              elapsed_ms;
  RunningStats per_msg;  // single aggregate sample, paper-table format
  per_msg.add(elapsed_ms / static_cast<double>(kTotal));
  table.add_row("per-message latency, T=" + std::to_string(match_threads),
                per_msg);
  std::printf(
      "{\"bench\":\"subscription_sharding\",\"counters\":{"
      "\"match_threads\":%d,\"patterns\":%zu,\"messages\":%llu,"
      "\"elapsed_ms\":%.2f,\"msgs_per_sec\":%.0f,"
      "\"speedup_vs_inline\":%.2f,\"hw_concurrency\":%u}}\n",
      match_threads, kBrokerPatterns,
      static_cast<unsigned long long>(kTotal), elapsed_ms, msgs_per_sec,
      inline_msgs_per_sec > 0 ? msgs_per_sec / inline_msgs_per_sec : 1.0,
      std::thread::hardware_concurrency());
  return msgs_per_sec;
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E11: Sharded subscription table + threaded match stage\n"
      "Units: milliseconds.\n");
  {
    et::bench::PaperTable table(
        "Single-threaded match cost, sharded vs legacy std::map");
    for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
      et::bench::run_table_micro(n, /*wildcard=*/false, table);
    }
    for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
      et::bench::run_table_micro(n, /*wildcard=*/true, table);
    }
    table.print();
    table.print_json("subscription_sharding");
  }
  {
    et::bench::PaperTable table(
        "Broker publish->deliver throughput, 2048 ballast patterns");
    const double inline_rate =
        et::bench::run_broker_throughput(0, table, 0.0);
    et::bench::run_broker_throughput(2, table, inline_rate);
    et::bench::run_broker_throughput(4, table, inline_rate);
    table.print();
    table.print_json("subscription_sharding");
  }
  return 0;
}
