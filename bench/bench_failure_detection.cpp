// Experiments E8 and E13 — failure detection and recovery.
//
// E8 (ablation) — adaptive vs fixed ping interval (§3.3): "if
// consecutive pings do not have responses associated with them, the ping
// interval is reduced to hasten the failure detection of the entity."
// A traced entity is crashed at a random phase of the ping cycle; we
// measure time-to-FAILURE_SUSPICION and time-to-FAILED plus the pings
// spent, with and without the adaptive shrink, across many trials on the
// deterministic virtual-time backend.
//
// E13 (ablation) — end-to-end failure recovery (DESIGN.md §11): a lossy
// entity<->broker link plus an injected cut of configurable length. Swept
// over packet loss {0, 0.5%, 5%}, cut length {0.3 s, 1 s, permanent} and
// the suspect threshold K; reports detection latency, false-suspect rate
// during the healthy window, and time from cut to completed
// re-registration at a replacement broker. Emits one JSON object per
// table (PaperTable::print_json) for BENCH_failure_recovery.json.
#include <cstdio>
#include <memory>
#include <string>

#include "src/crypto/credential.h"
#include "src/discovery/discovery_client.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/config.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/fault_injector.h"
#include "src/transport/virtual_network.h"

#include "bench/bench_util.h"

namespace et::bench {
namespace {

using namespace et::tracing;

constexpr int kTrials = 25;

struct TrialResult {
  RunningStats suspicion_ms;
  RunningStats failed_ms;
  RunningStats pings;
};

TrialResult run(bool adaptive) {
  TrialResult result;
  for (int trial = 0; trial < kTrials; ++trial) {
    transport::VirtualTimeNetwork net(1000 + trial);
    Rng rng(77 + trial);
    crypto::CertificateAuthority ca("ca", rng, 512);
    crypto::Identity tdn_id = crypto::Identity::create(
        "tdn-0", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    TrustAnchors anchors{ca.public_key(), tdn_id.keys.public_key};
    discovery::Tdn tdn(net, std::move(tdn_id), ca.public_key(), 4);

    TracingConfig config;
    config.ping_interval = 500 * kMillisecond;
    // Fixed mode: the floor equals the base period, so no shrink happens.
    config.min_ping_interval =
        adaptive ? 100 * kMillisecond : 500 * kMillisecond;
    config.suspicion_misses = 3;
    config.failed_misses = 6;
    config.gauge_interval = kSecond;
    config.metrics_interval = 10 * kSecond;
    config.delegate_key_bits = 512;

    transport::LinkParams lan = transport::LinkParams::ideal_profile();
    lan.base_latency = 1500;

    pubsub::Topology topo(net);
    auto brokers =
        topo.make_chain(1, lan, "broker", [&](const std::string&) {
          pubsub::Broker::Options o;
          install_trace_filter(o, anchors, net);
          return o;
        });
    TracingBrokerService service(*brokers[0], anchors, config, 9);

    const crypto::Identity entity_id = crypto::Identity::create(
        "entity", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    TracedEntity entity(net, entity_id, anchors, config, rng.next_u64());
    entity.attach_tdn(tdn.node(), lan);
    entity.connect_broker(brokers[0]->node(), lan);
    entity.start_tracing({}, [](const Status& s) {
      if (!s.is_ok()) std::abort();
    });
    net.run_for(200 * kMillisecond);

    // A tracker keeps change-notification interest alive and timestamps
    // the suspicion/failure traces.
    const crypto::Identity tracker_id = crypto::Identity::create(
        "tracker", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    Tracker tracker(net, tracker_id, anchors, rng.next_u64());
    tracker.attach_tdn(tdn.node(), lan);
    tracker.connect_broker(brokers[0]->node(), lan);
    TimePoint suspected_at = 0, failed_at = 0;
    tracker.track("entity", kCatChangeNotifications,
                  [&](const TracePayload& p, const pubsub::Message&) {
                    if (p.type == TraceType::kFailureSuspicion &&
                        suspected_at == 0) {
                      suspected_at = net.now();
                    }
                    if (p.type == TraceType::kFailed && failed_at == 0) {
                      failed_at = net.now();
                    }
                  });
    net.run_for(2 * kSecond);

    // Crash at a random phase within one ping period.
    net.run_for(static_cast<Duration>(rng.next_below(500 * 1000)));
    const std::uint64_t pings_before = service.stats().pings_sent;
    const TimePoint crash_at = net.now();
    entity.set_responsive(false);
    net.run_for(30 * kSecond);

    if (suspected_at == 0 || failed_at == 0) {
      std::fprintf(stderr, "FATAL: detection never completed\n");
      std::abort();
    }
    result.suspicion_ms.add(to_millis(suspected_at - crash_at));
    result.failed_ms.add(to_millis(failed_at - crash_at));
    result.pings.add(static_cast<double>(service.stats().pings_sent -
                                         pings_before));
  }
  return result;
}

// --- E13: recovery under loss + injected cuts ------------------------------

constexpr int kRecoveryTrials = 8;
constexpr Duration kSteadyWindow = 20 * kSecond;

struct RecoveryConfig {
  std::string label;
  double loss = 0.0;           // entity<->broker packet loss
  int suspicion_misses = 3;    // suspect threshold K
  Duration cut_length = 0;     // 0 = permanent (until recovery)
};

struct RecoveryResult {
  RunningStats detect_ms;       // cut -> FAILURE_SUSPICION at the tracker
  RunningStats rereg_ms;        // cut -> failover completed at the entity
  RunningStats false_per_min;   // suspicions during the healthy window
  RunningStats suspected;       // fraction of trials that reached suspicion
  RunningStats recovered;       // fraction of trials that re-registered
};

RecoveryResult run_recovery(const RecoveryConfig& cfg) {
  RecoveryResult result;
  for (int trial = 0; trial < kRecoveryTrials; ++trial) {
    transport::VirtualTimeNetwork net(5000 + trial);
    Rng rng(900 + trial);
    crypto::CertificateAuthority ca("ca", rng, 512);
    crypto::Identity tdn_id = crypto::Identity::create(
        "tdn-0", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    TrustAnchors anchors{ca.public_key(), tdn_id.keys.public_key};
    discovery::Tdn tdn(net, std::move(tdn_id), ca.public_key(), 4);

    TracingConfig config;
    config.ping_interval = 500 * kMillisecond;
    config.min_ping_interval = 100 * kMillisecond;
    config.suspicion_misses = cfg.suspicion_misses;
    config.failed_misses = cfg.suspicion_misses + 3;
    config.disconnect_misses = cfg.suspicion_misses + 6;
    config.broker_silence_timeout = 3 * kSecond;
    RetryPolicy retry;
    retry.max_attempts = 0;
    retry.initial_backoff = 100 * kMillisecond;
    retry.max_backoff = kSecond;
    retry.deadline = 10 * kSecond;
    config.retry = retry;
    config.gauge_interval = kSecond;
    config.metrics_interval = 10 * kSecond;
    config.delegate_key_bits = 512;

    transport::LinkParams lan = transport::LinkParams::ideal_profile();
    lan.base_latency = 1500;
    // The entity's access link drops packets for real (UDP-like).
    transport::LinkParams lossy = lan;
    lossy.reliable = false;
    lossy.loss_probability = cfg.loss;

    pubsub::Topology topo(net);
    auto brokers =
        topo.make_chain(2, lan, "broker", [&](const std::string& name) {
          pubsub::Broker::Options o;
          o.name = name;
          install_trace_filter(o, anchors, net);
          return o;
        });
    std::vector<std::unique_ptr<TracingBrokerService>> services;
    for (auto* b : brokers) {
      services.push_back(
          std::make_unique<TracingBrokerService>(*b, anchors, config, 9));
    }
    discovery::DiscoveryClient registrar(
        net, crypto::Identity::create("registrar", ca, rng, net.now(),
                                      24 * 3600 * kSecond, 512));
    registrar.attach_tdn(tdn.node(), lan);
    for (auto* b : brokers) {
      registrar.register_broker(
          b->name(), b->node(),
          crypto::Identity::create(b->name(), ca, rng, net.now(),
                                   24 * 3600 * kSecond, 512)
              .credential);
    }

    const crypto::Identity entity_id = crypto::Identity::create(
        "entity", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    TracedEntity entity(net, entity_id, anchors, config, rng.next_u64());
    entity.attach_tdn(tdn.node(), lan);
    entity.connect_broker(brokers[0]->node(), lossy);
    entity.start_tracing({}, [](const Status& s) {
      if (!s.is_ok()) std::abort();
    });
    net.run_for(500 * kMillisecond);

    const crypto::Identity tracker_id = crypto::Identity::create(
        "tracker", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    Tracker tracker(net, tracker_id, anchors, rng.next_u64());
    tracker.attach_tdn(tdn.node(), lan);
    tracker.connect_broker(brokers[1]->node(), lan);
    int suspicions_before_cut = 0;
    TimePoint cut_at = 0, suspected_at = 0;
    tracker.track("entity", kCatChangeNotifications,
                  [&](const TracePayload& p, const pubsub::Message&) {
                    if (p.type != TraceType::kFailureSuspicion) return;
                    if (cut_at == 0) {
                      ++suspicions_before_cut;
                    } else if (suspected_at == 0) {
                      suspected_at = net.now();
                    }
                  });
    net.run_for(2 * kSecond);

    // Healthy window: any suspicion here is a false positive caused by
    // link loss alone.
    net.run_for(kSteadyWindow);

    cut_at = net.now();
    net.faults().blackhole(entity.client().node(), brokers[0]->node());
    if (cfg.cut_length > 0) {
      net.run_for(cfg.cut_length);
      net.faults().restore(entity.client().node(), brokers[0]->node());
    }
    const Duration budget = cfg.cut_length > 0 ? 10 * kSecond : 60 * kSecond;
    TimePoint recovered_at = 0;
    while (net.now() - cut_at < budget) {
      net.run_for(200 * kMillisecond);
      if (entity.stats().failovers >= 1) {
        recovered_at = net.now();
        break;
      }
    }

    result.false_per_min.add(suspicions_before_cut * 60.0 /
                             to_millis(kSteadyWindow) * 1000.0);
    result.suspected.add(suspected_at != 0 ? 1.0 : 0.0);
    result.recovered.add(recovered_at != 0 ? 1.0 : 0.0);
    if (suspected_at != 0) {
      result.detect_ms.add(to_millis(suspected_at - cut_at));
    }
    if (recovered_at != 0) {
      result.rereg_ms.add(to_millis(recovered_at - cut_at));
    }
  }
  return result;
}

void print_recovery(const RecoveryConfig& cfg) {
  const RecoveryResult r = run_recovery(cfg);
  PaperTable t(cfg.label);
  t.add_row("time to FAILURE_SUSPICION after cut (ms)", r.detect_ms);
  t.add_row("time to completed re-registration (ms)", r.rereg_ms);
  t.add_row("false suspicions per minute (healthy)", r.false_per_min);
  t.add_row("fraction of trials suspected", r.suspected);
  t.add_row("fraction of trials re-registered", r.recovered);
  t.print();
  t.print_json("failure_recovery");
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E8 (ablation): adaptive vs fixed ping interval (section 3.3)\n"
      "Base period 500 ms, suspicion after 3 misses, FAILED after 6.\n"
      "%d trials each; crash injected at a random ping phase.\n",
      et::bench::kTrials);
  const auto adaptive = et::bench::run(true);
  const auto fixed = et::bench::run(false);

  et::bench::PaperTable t1("Adaptive interval (floor 100 ms)");
  t1.add_row("time to FAILURE_SUSPICION (ms)", adaptive.suspicion_ms);
  t1.add_row("time to FAILED (ms)", adaptive.failed_ms);
  t1.add_row("pings sent during detection", adaptive.pings);
  t1.print();

  et::bench::PaperTable t2("Fixed interval (500 ms)");
  t2.add_row("time to FAILURE_SUSPICION (ms)", fixed.suspicion_ms);
  t2.add_row("time to FAILED (ms)", fixed.failed_ms);
  t2.add_row("pings sent during detection", fixed.pings);
  t2.print();

  std::printf(
      "\nE13: end-to-end failure recovery (DESIGN.md section 11)\n"
      "2-broker chain, lossy entity access link, broker-silence failover\n"
      "(watchdog 3 s), %d trials per configuration.\n",
      et::bench::kRecoveryTrials);
  // Loss sweep at K=3, permanent cut: detection + recovery under loss.
  for (const double loss : {0.0, 0.005, 0.05}) {
    et::bench::RecoveryConfig c;
    char label[96];
    std::snprintf(label, sizeof label,
                  "E13 loss sweep: loss %.1f%%, K=3, permanent cut",
                  loss * 100.0);
    c.label = label;
    c.loss = loss;
    et::bench::print_recovery(c);
  }
  // Cut-length sweep at 0.5% loss: short glitches must not trigger
  // recovery machinery.
  for (const et::Duration len :
       {300 * et::kMillisecond, et::kSecond, et::Duration{0}}) {
    et::bench::RecoveryConfig c;
    char label[96];
    if (len > 0) {
      std::snprintf(label, sizeof label,
                    "E13 cut-length sweep: %lld ms cut, loss 0.5%%, K=3",
                    static_cast<long long>(len / et::kMillisecond));
    } else {
      std::snprintf(label, sizeof label,
                    "E13 cut-length sweep: permanent cut, loss 0.5%%, K=3");
    }
    c.label = label;
    c.loss = 0.005;
    c.cut_length = len;
    et::bench::print_recovery(c);
  }
  // Suspect-threshold sweep at 5% loss: K trades detection latency
  // against false suspicion.
  for (const int k : {2, 3, 5}) {
    et::bench::RecoveryConfig c;
    char label[96];
    std::snprintf(label, sizeof label,
                  "E13 threshold sweep: K=%d, loss 5%%, permanent cut", k);
    c.label = label;
    c.loss = 0.05;
    c.suspicion_misses = k;
    et::bench::print_recovery(c);
  }
  return 0;
}
