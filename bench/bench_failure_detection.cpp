// Experiment E8 (ablation) — adaptive vs fixed ping interval (§3.3): "if
// consecutive pings do not have responses associated with them, the ping
// interval is reduced to hasten the failure detection of the entity."
//
// A traced entity is crashed at a random phase of the ping cycle; we
// measure time-to-FAILURE_SUSPICION and time-to-FAILED plus the pings
// spent, with and without the adaptive shrink, across many trials on the
// deterministic virtual-time backend.
#include <cstdio>
#include <memory>

#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/config.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

#include "bench/bench_util.h"

namespace et::bench {
namespace {

using namespace et::tracing;

constexpr int kTrials = 25;

struct TrialResult {
  RunningStats suspicion_ms;
  RunningStats failed_ms;
  RunningStats pings;
};

TrialResult run(bool adaptive) {
  TrialResult result;
  for (int trial = 0; trial < kTrials; ++trial) {
    transport::VirtualTimeNetwork net(1000 + trial);
    Rng rng(77 + trial);
    crypto::CertificateAuthority ca("ca", rng, 512);
    crypto::Identity tdn_id = crypto::Identity::create(
        "tdn-0", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    TrustAnchors anchors{ca.public_key(), tdn_id.keys.public_key};
    discovery::Tdn tdn(net, std::move(tdn_id), ca.public_key(), 4);

    TracingConfig config;
    config.ping_interval = 500 * kMillisecond;
    // Fixed mode: the floor equals the base period, so no shrink happens.
    config.min_ping_interval =
        adaptive ? 100 * kMillisecond : 500 * kMillisecond;
    config.suspicion_misses = 3;
    config.failed_misses = 6;
    config.gauge_interval = kSecond;
    config.metrics_interval = 10 * kSecond;
    config.delegate_key_bits = 512;

    transport::LinkParams lan = transport::LinkParams::ideal_profile();
    lan.base_latency = 1500;

    pubsub::Topology topo(net);
    auto brokers =
        topo.make_chain(1, lan, "broker", [&](const std::string&) {
          pubsub::Broker::Options o;
          install_trace_filter(o, anchors, net);
          return o;
        });
    TracingBrokerService service(*brokers[0], anchors, config, 9);

    const crypto::Identity entity_id = crypto::Identity::create(
        "entity", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    TracedEntity entity(net, entity_id, anchors, config, rng.next_u64());
    entity.attach_tdn(tdn.node(), lan);
    entity.connect_broker(brokers[0]->node(), lan);
    entity.start_tracing({}, [](const Status& s) {
      if (!s.is_ok()) std::abort();
    });
    net.run_for(200 * kMillisecond);

    // A tracker keeps change-notification interest alive and timestamps
    // the suspicion/failure traces.
    const crypto::Identity tracker_id = crypto::Identity::create(
        "tracker", ca, rng, net.now(), 24 * 3600 * kSecond, 512);
    Tracker tracker(net, tracker_id, anchors, rng.next_u64());
    tracker.attach_tdn(tdn.node(), lan);
    tracker.connect_broker(brokers[0]->node(), lan);
    TimePoint suspected_at = 0, failed_at = 0;
    tracker.track("entity", kCatChangeNotifications,
                  [&](const TracePayload& p, const pubsub::Message&) {
                    if (p.type == TraceType::kFailureSuspicion &&
                        suspected_at == 0) {
                      suspected_at = net.now();
                    }
                    if (p.type == TraceType::kFailed && failed_at == 0) {
                      failed_at = net.now();
                    }
                  });
    net.run_for(2 * kSecond);

    // Crash at a random phase within one ping period.
    net.run_for(static_cast<Duration>(rng.next_below(500 * 1000)));
    const std::uint64_t pings_before = service.stats().pings_sent;
    const TimePoint crash_at = net.now();
    entity.set_responsive(false);
    net.run_for(30 * kSecond);

    if (suspected_at == 0 || failed_at == 0) {
      std::fprintf(stderr, "FATAL: detection never completed\n");
      std::abort();
    }
    result.suspicion_ms.add(to_millis(suspected_at - crash_at));
    result.failed_ms.add(to_millis(failed_at - crash_at));
    result.pings.add(static_cast<double>(service.stats().pings_sent -
                                         pings_before));
  }
  return result;
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E8 (ablation): adaptive vs fixed ping interval (section 3.3)\n"
      "Base period 500 ms, suspicion after 3 misses, FAILED after 6.\n"
      "%d trials each; crash injected at a random ping phase.\n",
      et::bench::kTrials);
  const auto adaptive = et::bench::run(true);
  const auto fixed = et::bench::run(false);

  et::bench::PaperTable t1("Adaptive interval (floor 100 ms)");
  t1.add_row("time to FAILURE_SUSPICION (ms)", adaptive.suspicion_ms);
  t1.add_row("time to FAILED (ms)", adaptive.failed_ms);
  t1.add_row("pings sent during detection", adaptive.pings);
  t1.print();

  et::bench::PaperTable t2("Fixed interval (500 ms)");
  t2.add_row("time to FAILURE_SUSPICION (ms)", fixed.suspicion_ms);
  t2.add_row("time to FAILED (ms)", fixed.failed_ms);
  t2.add_row("pings sent during detection", fixed.pings);
  t2.print();
  return 0;
}
