// Experiment E4 — paper Figure 4: trace time while increasing the number
// of trackers, added in groups of 10.
//
// Topology per paper Figure 3: a star of brokers around the traced
// entity's hub broker; tracker groups land on different leaf brokers
// ("the groups of 10 trackers were hosted on different machines"). The
// measuring tracker reports end-to-end trace latency; the expectation is
// a near-flat curve ("the trace time increases very slowly with an
// increase in the number of trackers").
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace et::bench {
namespace {

constexpr std::size_t kLeafBrokers = 3;
constexpr std::size_t kGroupSize = 10;
constexpr std::size_t kMaxTrackers = 60;
constexpr std::size_t kRounds = 30;

void run() {
  tracing::TracingConfig config = paper_config();
  config.secure_traces = true;  // the paper's full configuration

  // Star: broker 0 is the hub (hosts the traced entity); leaves 1..k.
  Deployment dep(kLeafBrokers + 1, transport::LinkParams::tcp_profile(),
                 config, Deployment::Shape::kStar);
  auto entity = dep.make_entity("popular-entity", 0);
  dep.start_tracing(*entity);

  // The measuring tracker is the first of the first group.
  Latch received;
  auto measuring = dep.make_tracker("measuring-tracker", 1);
  dep.track(*measuring, "popular-entity", tracing::kCatStateTransitions,
            [&](const tracing::TracePayload& p, const pubsub::Message&) {
              if (p.state) received.hit();
            });

  std::vector<std::unique_ptr<tracing::Tracker>> trackers;
  PaperTable table("Trace time vs number of trackers (Figure 4)");
  for (std::size_t count = kGroupSize; count <= kMaxTrackers;
       count += kGroupSize) {
    // Top up to `count` trackers (the measuring one included), spreading
    // groups across leaf brokers.
    while (trackers.size() + 1 < count) {
      const std::size_t idx = trackers.size() + 1;
      const std::size_t leaf = 1 + (idx / kGroupSize) % kLeafBrokers;
      trackers.push_back(
          dep.make_tracker("tracker-" + std::to_string(idx), leaf));
      dep.track(*trackers.back(), "popular-entity",
                tracing::kCatStateTransitions,
                [](const tracing::TracePayload&, const pubsub::Message&) {});
    }
    const RunningStats stats =
        measure_state_trace_latency(dep, *entity, received, kRounds);
    table.add_row(std::to_string(count) + " trackers", stats);
  }
  table.print();
  dep.net.stop();
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E4: Trace time while increasing trackers (paper Figure 4)\n"
      "Units: milliseconds. Star topology (hub + %zu leaf brokers),\n"
      "trackers added in groups of %zu up to %zu, authorization+security,\n"
      "%zu traces measured per point at the measuring tracker.\n",
      et::bench::kLeafBrokers, et::bench::kGroupSize,
      et::bench::kMaxTrackers, et::bench::kRounds);
  et::bench::run();
  return 0;
}
