// Shared infrastructure for the paper-reproduction benchmarks.
//
// Builds full tracing deployments on the wall-clock RealTimeNetwork with
// the paper's cryptographic configuration (RSA-1024 + SHA-1 + PKCS#1,
// AES-192) and link profiles modelled on its testbed (100 Mbps LAN,
// 1-2 ms/hop). Prints tables in the paper's format: mean, standard
// deviation, standard error — all in milliseconds.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/config.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/realtime_network.h"

namespace et::bench {

/// Counting latch for synchronizing measurement rounds with asynchronous
/// deliveries.
class Latch {
 public:
  void hit() {
    {
      std::lock_guard lock(mu_);
      ++count_;
    }
    cv_.notify_all();
  }

  /// Waits until at least `target` hits; false on timeout.
  bool wait_for(std::uint64_t target, Duration timeout) {
    std::unique_lock lock(mu_);
    return cv_.wait_for(lock, std::chrono::microseconds(timeout),
                        [&] { return count_ >= target; });
  }

  [[nodiscard]] std::uint64_t count() {
    std::lock_guard lock(mu_);
    return count_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t count_ = 0;
};

/// Paper-style results table.
class PaperTable {
 public:
  explicit PaperTable(std::string title) : title_(std::move(title)) {}

  void add_row(const std::string& label, const RunningStats& stats) {
    rows_.push_back({label, stats});
  }

  void print() const {
    std::printf("\n%s\n", title_.c_str());
    std::printf("%-34s %10s %12s %12s\n", "Operation", "Mean",
                "Std Dev", "Std Error");
    for (const auto& [label, s] : rows_) {
      std::printf("%-34s %10.2f %12.2f %12.2f\n", label.c_str(), s.mean(),
                  s.stddev(), s.stderr_of_mean());
    }
    std::fflush(stdout);
  }

  /// Machine-readable mirror of print(): one JSON object per line, so a
  /// BENCH_<name>.json trajectory can be scraped from stdout. All values
  /// are milliseconds.
  void print_json(const std::string& bench) const {
    std::printf("{\"bench\":\"%s\",\"title\":\"%s\",\"rows\":[",
                bench.c_str(), title_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const auto& [label, s] = rows_[i];
      std::printf(
          "%s{\"label\":\"%s\",\"mean_ms\":%.6f,\"stddev_ms\":%.6f,"
          "\"stderr_ms\":%.6f,\"n\":%zu}",
          i ? "," : "", label.c_str(), s.mean(), s.stddev(),
          s.stderr_of_mean(), s.count());
    }
    std::printf("]}\n");
    std::fflush(stdout);
  }

 private:
  std::string title_;
  std::vector<std::pair<std::string, RunningStats>> rows_;
};

/// Paper §6.1 crypto configuration.
inline tracing::TracingConfig paper_config() {
  tracing::TracingConfig c;
  c.ping_interval = 500 * kMillisecond;
  c.gauge_interval = 5 * kSecond;
  c.metrics_interval = 5 * kSecond;
  c.delegate_key_bits = 1024;
  c.symmetric_alg = crypto::SymmetricAlg::kAes192Cbc;
  return c;
}

/// A complete real-time deployment: CA + TDN + broker chain/star with
/// tracing services and filters on every broker.
class Deployment {
 public:
  enum class Shape { kChain, kStar };

  Deployment(std::size_t broker_count, const transport::LinkParams& link,
             tracing::TracingConfig config, Shape shape = Shape::kChain,
             std::uint64_t seed = 4242, int match_threads = 0)
      : net(seed),
        link_(link),
        config_(config),
        rng_(seed),
        ca_("bench-ca", rng_, 1024),
        // One long-term keypair shared by all bench identities: key
        // generation cost is excluded from protocol measurements (the
        // paper's identities pre-exist too).
        shared_keys_(crypto::rsa_generate(rng_, 1024)) {
    crypto::Identity tdn_identity;
    tdn_identity.id = "tdn-0";
    tdn_identity.keys = crypto::rsa_generate(rng_, 1024);
    tdn_identity.credential =
        ca_.issue("tdn-0", tdn_identity.keys.public_key, net.now(),
                  24 * 3600 * kSecond);
    anchors_.ca_key = ca_.public_key();
    anchors_.tdn_key = tdn_identity.keys.public_key;
    tdn_ = std::make_unique<discovery::Tdn>(net, std::move(tdn_identity),
                                            ca_.public_key(), seed + 1);

    topology_ = std::make_unique<pubsub::Topology>(net);
    // Filters ride the broker construction path (Broker::Options).
    const pubsub::BrokerOptionsFn opts = [&](const std::string& name) {
      pubsub::Broker::Options o;
      o.name = name;
      o.match_threads = match_threads;
      filters_.push_back(
          tracing::install_trace_filter(o, anchors_, net, config_));
      token_caches_.push_back(filters_.back().cache());
      return o;
    };
    brokers_ = (shape == Shape::kChain)
                   ? topology_->make_chain(broker_count, link_, "broker", opts)
                   : topology_->make_star(broker_count - 1, link_, "broker",
                                          opts);
    for (std::size_t i = 0; i < brokers_.size(); ++i) {
      services_.push_back(std::make_unique<tracing::TracingBrokerService>(
          *brokers_[i], anchors_, config_, seed + 100 + i));
    }
  }

  crypto::Identity make_identity(const std::string& id) {
    crypto::Identity ident;
    ident.id = id;
    ident.keys = shared_keys_;
    ident.credential = ca_.issue(id, shared_keys_.public_key, net.now(),
                                 24 * 3600 * kSecond);
    return ident;
  }

  std::unique_ptr<tracing::TracedEntity> make_entity(
      const std::string& id, std::size_t broker_index = 0) {
    auto e = std::make_unique<tracing::TracedEntity>(
        net, make_identity(id), anchors_, config_, rng_.next_u64());
    e->attach_tdn(tdn_->node(), link_);
    e->connect_broker(brokers_.at(broker_index)->node(), link_);
    // Fixed settle instead of drain(): periodic ping timers leave no
    // quiescent window once sessions exist, but the connect handshake
    // completes within a few link RTTs.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return e;
  }

  std::unique_ptr<tracing::Tracker> make_tracker(
      const std::string& id, std::size_t broker_index = 0) {
    auto t = std::make_unique<tracing::Tracker>(net, make_identity(id),
                                                anchors_, rng_.next_u64());
    t->attach_tdn(tdn_->node(), link_);
    t->connect_broker(brokers_.at(broker_index)->node(), link_);
    // Fixed settle instead of drain(): periodic ping timers leave no
    // quiescent window once sessions exist, but the connect handshake
    // completes within a few link RTTs.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return t;
  }

  /// Blocking start_tracing; aborts the process on failure.
  void start_tracing(tracing::TracedEntity& e) {
    Latch done;
    Status result = internal_error("never ran");
    e.start_tracing({}, [&](const Status& s) {
      result = s;
      done.hit();
    });
    if (!done.wait_for(1, 30 * kSecond) || !result.is_ok()) {
      std::fprintf(stderr,
                   "FATAL: start_tracing(%s) failed: %s "
                   "(topic_nil=%d session_nil=%d active=%d)\n",
                   e.entity_id().c_str(), result.to_string().c_str(),
                   e.trace_topic().is_nil(), e.session_id().is_nil(),
                   e.tracing_active());
      std::abort();
    }
  }

  /// Blocking track(); aborts on failure.
  void track(tracing::Tracker& t, const std::string& entity_id,
             std::uint8_t categories, tracing::Tracker::TraceHandler handler) {
    Latch done;
    Status result = internal_error("never ran");
    t.track(entity_id, categories, std::move(handler), [&](const Status& s) {
      result = s;
      done.hit();
    });
    if (!done.wait_for(1, 30 * kSecond) || !result.is_ok()) {
      std::fprintf(stderr, "FATAL: track failed: %s\n",
                   result.to_string().c_str());
      std::abort();
    }
    // Fixed settle instead of drain(): periodic ping timers leave no
    // quiescent window once sessions exist, but the connect handshake
    // completes within a few link RTTs.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
  [[nodiscard]] pubsub::Broker& broker(std::size_t i) { return *brokers_[i]; }
  [[nodiscard]] tracing::TracingBrokerService& service(std::size_t i) {
    return *services_[i];
  }
  /// Broker i's token-verification cache (nullptr when disabled).
  [[nodiscard]] const std::shared_ptr<tracing::TokenVerifyCache>&
  token_cache(std::size_t i) const {
    return token_caches_.at(i);
  }
  /// Broker i's trace-filter handle (verdict counters + cache stats).
  [[nodiscard]] const tracing::TraceFilterHandle& filter(
      std::size_t i) const {
    return filters_.at(i);
  }
  [[nodiscard]] const tracing::TrustAnchors& anchors() const {
    return anchors_;
  }
  [[nodiscard]] const crypto::RsaKeyPair& shared_keys() const {
    return shared_keys_;
  }

  /// Must be called when measurement ends, while every entity/tracker
  /// created from this deployment is still alive: it halts all network
  /// threads so no timer can fire into an actor mid-destruction.
  ~Deployment() { net.stop(); }

  transport::RealTimeNetwork net;

 private:
  transport::LinkParams link_;
  tracing::TracingConfig config_;
  Rng rng_;
  crypto::CertificateAuthority ca_;
  crypto::RsaKeyPair shared_keys_;
  tracing::TrustAnchors anchors_;
  std::unique_ptr<discovery::Tdn> tdn_;
  std::unique_ptr<pubsub::Topology> topology_;
  std::vector<pubsub::Broker*> brokers_;
  std::vector<std::unique_ptr<tracing::TracingBrokerService>> services_;
  std::vector<tracing::TraceFilterHandle> filters_;
  std::vector<std::shared_ptr<tracing::TokenVerifyCache>> token_caches_;
};

/// Measures end-to-end trace latency: the entity flips its state, and we
/// time until the (verified, possibly decrypted) trace reaches the
/// tracker's handler. Returns stats in milliseconds over `rounds`.
inline RunningStats measure_state_trace_latency(
    Deployment& /*dep*/, tracing::TracedEntity& entity, Latch& received,
    std::size_t rounds, Duration per_round_timeout = 2 * kSecond) {
  RunningStats stats;
  SystemClock clock;
  std::uint64_t baseline = received.count();
  bool ready = true;
  for (std::size_t i = 0; i < rounds; ++i) {
    const tracing::EntityState next = ready ? tracing::EntityState::kReady
                                            : tracing::EntityState::kRecovering;
    ready = !ready;
    const TimePoint t0 = clock.now();
    entity.set_state(next);
    if (!received.wait_for(baseline + 1, per_round_timeout)) {
      // Lost on an unreliable link: skip the sample.
      baseline = received.count();
      continue;
    }
    const TimePoint t1 = clock.now();
    baseline = received.count();
    stats.add(to_millis(t1 - t0));
  }
  return stats;
}

}  // namespace et::bench
