// E12 — batched per-hop verification pipeline (verify_pipeline.h).
//
// The same burst of signed trace publications is pushed through the two
// filter implementations:
//   * inline reference filter — every message pays the full token chain
//     (TDN + CA + owner signatures) plus a delegate-signature verify;
//   * batched pipeline — messages are admitted into the per-broker queue
//     and drained in key-grouped batches: the chain and the delegate
//     key's Montgomery context are built once per key per drain, each
//     message then pays one context-amortized signature verify.
// Caching is disabled on both sides so the measurement isolates the
// batching/amortization win (E10 measures the token-verdict cache).
//
// Sweeps burst size x distinct delegate keys x drain threads, a batch_max
// sweep at fixed burst, and the single-message path (batch size 1) where
// the pipeline must not regress against the inline filter. Emits paper
// tables plus JSON rows/counters (speedup_* keys) for trajectories.
#include <atomic>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/verify_pipeline.h"

namespace et::bench {
namespace {

constexpr std::size_t kKeyBits = 1024;  // paper §6.1 configuration

/// One trace topic, K delegate keys with tokens over it, signed bursts,
/// and a host broker to resolve deferred verdicts against.
class PipelineBench {
 public:
  PipelineBench() : rng_(4242), ca_("bench-ca", rng_, kKeyBits) {
    t0_ = net_.now();
    owner_ = crypto::Identity::create("owner", ca_, rng_, t0_,
                                      24 * 3600 * kSecond, kKeyBits);
    tdn_ = crypto::rsa_generate(rng_, kKeyBits);
    anchors_.ca_key = ca_.public_key();
    anchors_.tdn_key = tdn_.public_key;
    const Uuid topic = Uuid::generate(rng_);
    discovery::TopicAdvertisement unsigned_ad(
        topic, "Availability/Traces/owner", owner_.credential, {}, t0_,
        t0_ + 24 * 3600 * kSecond, "tdn-0", {});
    ad_ = discovery::TopicAdvertisement(
        topic, "Availability/Traces/owner", owner_.credential, {}, t0_,
        t0_ + 24 * 3600 * kSecond, "tdn-0",
        tdn_.private_key.sign(unsigned_ad.tbs()));
  }

  /// `count` messages round-robin over `keys` distinct delegate keys, all
  /// on the one trace topic (the paper's burst shape: a few hosting
  /// brokers, many traces).
  std::vector<pubsub::Message> make_messages(std::size_t count,
                                             std::size_t keys) {
    std::vector<crypto::RsaKeyPair> delegates;
    std::vector<tracing::AuthorizationToken> tokens;
    for (std::size_t k = 0; k < keys; ++k) {
      delegates.push_back(crypto::rsa_generate(rng_, kKeyBits));
      tokens.push_back(tracing::AuthorizationToken::create(
          ad_, delegates.back().public_key, tracing::TokenRights::kPublish,
          t0_, t0_ + 24 * 3600 * kSecond, owner_.keys.private_key));
    }
    tracing::TracePayload p;
    p.type = tracing::TraceType::kAllsWell;
    p.entity_id = "owner";
    std::vector<pubsub::Message> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t k = i % keys;
      pubsub::Message m;
      m.topic = pubsub::trace_topics::trace_publication(
          ad_.topic().to_string(), "AllUpdates");
      m.payload = p.serialize();
      m.publisher = "upstream-broker";
      m.sequence = i + 1;
      m.timestamp = net_.now();
      m.auth_token = tokens[k].serialize();
      m.signature = delegates[k].private_key.sign(m.signable_bytes());
      out.push_back(std::move(m));
    }
    return out;
  }

  /// Mean ms per burst through the inline (uncached) reference filter.
  double time_inline(const std::vector<pubsub::Message>& msgs,
                     std::size_t rounds, PaperTable& table,
                     const std::string& label) {
    const pubsub::MessageFilter filter =
        tracing::make_trace_filter(anchors_, net_);
    SystemClock clock;
    RunningStats stats;
    for (std::size_t r = 0; r <= rounds; ++r) {
      const TimePoint a = clock.now();
      for (const auto& m : msgs) {
        if (!filter(host_, m.as_view(), peer_.node()).accepted()) std::abort();
      }
      const TimePoint b = clock.now();
      if (r > 0) stats.add(to_millis(b - a));  // round 0 warms up
    }
    table.add_row(label, stats);
    return stats.mean();
  }

  /// Mean ms per burst through the batched pipeline: admit everything,
  /// wait for the last deferred verdict. A fresh (cacheless) pipeline per
  /// round keys every drain cold, mirroring time_inline.
  double time_pipeline(const std::vector<pubsub::Message>& msgs, int threads,
                       std::size_t batch_max, std::size_t rounds,
                       PaperTable& table, const std::string& label) {
    const std::string expected = ad_.topic().to_string();
    SystemClock clock;
    RunningStats stats;
    for (std::size_t r = 0; r <= rounds; ++r) {
      tracing::TracingConfig::Verification v;
      v.cache_capacity = 0;
      v.threads = threads;
      v.batch_max = batch_max;
      std::atomic<std::size_t> done{0};
      tracing::VerifyPipeline pipe(
          anchors_, net_, nullptr, v, [&done](bool accepted) {
            if (!accepted) std::abort();
            done.fetch_add(1, std::memory_order_relaxed);
          });
      const TimePoint a = clock.now();
      for (const auto& m : msgs) {
        pipe.admit(host_, m, expected, peer_.node());
      }
      while (done.load(std::memory_order_relaxed) < msgs.size() ||
             !pipe.idle()) {
        std::this_thread::yield();
      }
      const TimePoint b = clock.now();
      if (r > 0) stats.add(to_millis(b - a));
    }
    table.add_row(label, stats);
    return stats.mean();
  }

  /// Mean ms from publish at the upstream broker to local delivery at the
  /// filtering broker over one paper-profile TCP hop, one trace in flight
  /// at a time — the deployment view of "batch size 1". `use_pipeline`
  /// picks the downstream broker's filter implementation.
  double time_hop(bool use_pipeline, std::size_t rounds, PaperTable& table,
                  const std::string& label) {
    const std::string tag = use_pipeline ? "pipe" : "inline";
    pubsub::Broker::Options o{.name = "hop-down-" + tag};
    tracing::TraceFilterHandle handle;
    if (use_pipeline) {
      handle = tracing::install_trace_filter(o, anchors_, net_);
    } else {
      o.message_filter = tracing::make_trace_filter(anchors_, net_);
    }
    pubsub::Broker& up = topo_.add_broker({.name = "hop-up-" + tag});
    pubsub::Broker& down = topo_.add_broker(std::move(o));
    topo_.connect_brokers(up, down, transport::LinkParams::tcp_profile());
    Latch got;
    down.subscribe_local(pubsub::trace_topics::trace_publication(
                             ad_.topic().to_string(), "AllUpdates"),
                         [&](const pubsub::Message&) { got.hit(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const auto msgs = make_messages(rounds + 1, 1);
    SystemClock clock;
    RunningStats stats;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      const pubsub::Message& m = msgs[i];
      const TimePoint a = clock.now();
      net_.post(up.node(), [&up, m]() mutable {
        up.publish_from_broker(std::move(m));
      });
      if (!got.wait_for(i + 1, 2 * kSecond)) std::abort();
      const TimePoint b = clock.now();
      if (i > 0) stats.add(to_millis(b - a));
    }
    table.add_row(label, stats);
    return stats.mean();
  }

  void stop() { net_.stop(); }

 private:
  transport::RealTimeNetwork net_;
  Rng rng_;
  crypto::CertificateAuthority ca_;
  TimePoint t0_ = 0;
  crypto::Identity owner_;
  crypto::RsaKeyPair tdn_;
  discovery::TopicAdvertisement ad_;
  tracing::TrustAnchors anchors_;
  pubsub::Broker host_{net_, {.name = "bench-host"}};
  pubsub::Broker peer_{net_, {.name = "bench-peer"}};
  pubsub::Topology topo_{net_};  // owns the per-hop comparison brokers
};

}  // namespace
}  // namespace et::bench

int main() {
  using et::bench::PaperTable;
  std::printf(
      "E12: Batched verification pipeline vs inline trace filter\n"
      "Units: milliseconds per burst (tables 1-2), per message (table 3).\n");
  et::bench::PipelineBench fx;
  std::map<std::string, double> mean;  // label -> ms, for speedup counters

  {
    PaperTable table("Burst verification wall time (cache off)");
    const auto msgs4 = fx.make_messages(256, 4);
    const auto msgs1 = fx.make_messages(64, 1);
    for (const std::size_t burst : {std::size_t{64}, std::size_t{256}}) {
      const std::vector<et::pubsub::Message> slice(msgs4.begin(),
                                                   msgs4.begin() + burst);
      const std::string suffix =
          " " + std::to_string(burst) + "msg/4key";
      mean["inline" + suffix] =
          fx.time_inline(slice, 6, table, "inline," + suffix);
      for (const int threads : {0, 2, 4}) {
        mean["pipe_t" + std::to_string(threads) + suffix] = fx.time_pipeline(
            slice, threads, 64, 6, table,
            "pipeline t" + std::to_string(threads) + "," + suffix);
      }
    }
    mean["inline 64msg/1key"] =
        fx.time_inline(msgs1, 6, table, "inline, 64msg/1key");
    mean["pipe_t0 64msg/1key"] =
        fx.time_pipeline(msgs1, 0, 64, 6, table, "pipeline t0, 64msg/1key");
    table.print();
    table.print_json("verify_pipeline");
  }

  {
    PaperTable table("batch_max sweep, 256-msg burst, 4 keys, threads=2");
    const auto msgs = fx.make_messages(256, 4);
    for (const std::size_t bm :
         {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
      fx.time_pipeline(msgs, 2, bm, 4, table,
                       "pipeline batch_max=" + std::to_string(bm));
    }
    table.print();
    table.print_json("verify_pipeline");
  }

  {
    PaperTable table("Single message (batch size 1), cache off");
    const auto one = fx.make_messages(1, 1);
    mean["inline single"] = fx.time_inline(one, 40, table, "inline, 1 msg");
    mean["pipe single"] =
        fx.time_pipeline(one, 0, 64, 40, table, "pipeline t0, 1 msg");
    table.print();
    table.print_json("verify_pipeline");
  }

  {
    PaperTable table("Per-hop latency, 1.5ms TCP link, one trace in flight");
    mean["hop inline"] = fx.time_hop(false, 30, table, "inline filter hop");
    mean["hop pipeline"] = fx.time_hop(true, 30, table, "pipeline hop");
    table.print();
    table.print_json("verify_pipeline");
  }

  const double speedup64 =
      mean["pipe_t0 64msg/4key"] > 0
          ? mean["inline 64msg/4key"] / mean["pipe_t0 64msg/4key"]
          : 0.0;
  const double speedup256 =
      mean["pipe_t0 256msg/4key"] > 0
          ? mean["inline 256msg/4key"] / mean["pipe_t0 256msg/4key"]
          : 0.0;
  const double single_ratio = mean["pipe single"] > 0
                                  ? mean["inline single"] / mean["pipe single"]
                                  : 0.0;
  std::printf(
      "{\"bench\":\"verify_pipeline\",\"counters\":{"
      "\"speedup_burst64_4keys\":%.2f,\"speedup_burst256_4keys\":%.2f,"
      "\"single_msg_inline_over_pipeline\":%.2f,"
      "\"hop_latency_inline_ms\":%.3f,\"hop_latency_pipeline_ms\":%.3f,"
      "\"batch1_added_hop_latency_ms\":%.3f}}\n",
      speedup64, speedup256, single_ratio, mean["hop inline"],
      mean["hop pipeline"], mean["hop pipeline"] - mean["hop inline"]);
  fx.stop();
  return 0;
}
