// E14: detection latency, false-suspicion rate and availability error as
// a function of overlay diameter (DESIGN.md experiment index, ROADMAP
// "large-scale topology sweeps on the fault layer").
//
// Sweeps overlay shapes (chain, balanced tree, cluster-of-stars at 32 and
// 128 brokers) against three failure schedules:
//
//   * hosting-crash — the entity's hosting broker dies and later returns;
//     detection surfaces through failover + the post-recovery RECOVERING
//     announcement, so latency includes broker re-discovery;
//   * entity-silence — the entity's access link is black-holed; the
//     hosting broker's K-missed-pings detector escalates and the
//     suspicion traces cross the full overlay to the tracker — the purest
//     diameter-vs-latency signal;
//   * link-flap — a duty-cycled fault on the entity's first overlay hop;
//     measures how much flapping distorts observed availability and
//     whether it ever induces false suspicions.
//
// Runs on VirtualTimeNetwork: deterministic, and 128-broker cells cost
// seconds instead of minutes. Each cell runs over several seeds; the
// paper-style table reports tracker-observed detection latency, and the
// detail table adds false suspicions and availability error per cell.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/oracle.h"
#include "src/chaos/scenario.h"
#include "src/chaos/schedule.h"
#include "src/common/stats.h"
#include "src/transport/fault_injector.h"
#include "src/transport/virtual_network.h"

namespace et::chaos {
namespace {

using transport::VirtualTimeNetwork;

/// One overlay shape under test: where the entity and tracker live and
/// which overlay edge carries the entity's first hop (flap target).
struct ShapeCell {
  std::string label;
  OverlaySpec overlay;
  std::size_t entity_broker;
  std::size_t tracker_broker;
  std::size_t first_hop_a;  // overlay edge hosting-broker <-> parent
  std::size_t first_hop_b;
};

enum class ScheduleKind { kHostingCrash, kEntitySilence, kLinkFlap };

const char* schedule_name(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::kHostingCrash: return "hosting-crash";
    case ScheduleKind::kEntitySilence: return "entity-silence";
    case ScheduleKind::kLinkFlap: return "link-flap";
  }
  return "?";
}

struct CellResult {
  std::size_t diameter = 0;
  RunningStats detection_ms;      // per-seed mean detection latency
  RunningStats availability_err;  // per-seed |observed - truth|
  std::uint64_t false_suspicions = 0;
  std::uint64_t detected_edges = 0;
  std::uint64_t truth_edges = 0;
};

void drive(VirtualTimeNetwork& net, bool& done) {
  for (int i = 0; i < 100 && !done; ++i) net.run_for(50 * kMillisecond);
}

/// Runs one (shape, schedule, seed) scenario for 14 s of virtual time and
/// folds the oracle's pair report into `out`.
void run_cell(const ShapeCell& cell, ScheduleKind kind, std::uint64_t seed,
              CellResult& out) {
  VirtualTimeNetwork net(seed);
  ScenarioDeployment::Options opts;
  opts.overlay = cell.overlay;
  opts.seed = seed;
  ScenarioDeployment dep(net, opts);
  dep.register_brokers();
  net.run_for(20 * kMillisecond);

  tracing::TracedEntity& entity = dep.add_entity("entity", cell.entity_broker);
  net.run_for(20 * kMillisecond);
  tracing::Tracker& tracker = dep.add_tracker("tracker", cell.tracker_broker);
  net.run_for(20 * kMillisecond);

  bool started = false;
  entity.start_tracing({}, [&](const Status& s) { started = s.is_ok(); });
  drive(net, started);
  if (!started) {
    std::fprintf(stderr, "FATAL: start_tracing failed in %s\n",
                 cell.label.c_str());
    std::abort();
  }
  AvailabilityOracle oracle;
  bool tracked = false;
  tracker.track(entity.entity_id(), tracing::kCatAll,
                oracle.tap(tracker.tracker_id(), entity.entity_id(), net),
                [&](const Status& s) { tracked = s.is_ok(); });
  drive(net, tracked);
  if (!tracked) {
    std::fprintf(stderr, "FATAL: track failed in %s\n", cell.label.c_str());
    std::abort();
  }

  // Fault plan: injected at t+1s, cleared at t+6s, observed until t+14s.
  const transport::NodeId entity_node = entity.client().node();
  const transport::NodeId hosting = dep.broker(cell.entity_broker).node();
  ScheduleEngine engine(net, dep.topology());
  FailureSchedule schedule;
  switch (kind) {
    case ScheduleKind::kHostingCrash:
      schedule.crash(1 * kSecond, {cell.entity_broker})
          .restart(6 * kSecond, {cell.entity_broker});
      break;
    case ScheduleKind::kEntitySilence:
      break;  // access-link fault, driven below (entities aren't brokers)
    case ScheduleKind::kLinkFlap:
      schedule.flapping_link(1 * kSecond, cell.first_hop_a, cell.first_hop_b,
                             350 * kMillisecond, 650 * kMillisecond,
                             5 * kSecond);
      break;
  }
  engine.run(schedule);

  const Duration slice = 50 * kMillisecond;
  dep.sample_truth(oracle, net.now());
  for (Duration t = 0; t < 14 * kSecond; t += slice) {
    if (kind == ScheduleKind::kEntitySilence) {
      if (t == 1 * kSecond) net.faults().blackhole(entity_node, hosting);
      if (t == 6 * kSecond) net.faults().restore(entity_node, hosting);
    }
    net.run_for(slice);
    dep.sample_truth(oracle, net.now());
  }

  const OracleReport report = oracle.report(net.now(), 2 * kSecond);
  out.diameter = dep.topology().diameter();
  for (const PairReport& p : report.pairs) {
    if (p.detected_down_edges > 0) {
      out.detection_ms.add(p.mean_detection_latency_us / 1000.0);
    }
    out.availability_err.add(p.availability_error);
    out.false_suspicions += p.false_suspicions;
    out.detected_edges += p.detected_down_edges;
    out.truth_edges += p.truth_down_edges;
  }
}

}  // namespace
}  // namespace et::chaos

int main() {
  using namespace et;
  using namespace et::chaos;

  std::vector<ShapeCell> shapes;
  {
    ShapeCell c;
    c.label = "chain-16";
    c.overlay.shape = OverlaySpec::Shape::kChain;
    c.overlay.brokers = 16;
    c.entity_broker = 0;
    c.tracker_broker = 15;
    c.first_hop_a = 0;
    c.first_hop_b = 1;
    shapes.push_back(c);
  }
  {
    ShapeCell c;
    c.label = "tree-31";
    c.overlay.shape = OverlaySpec::Shape::kTree;
    c.overlay.brokers = 31;
    c.overlay.arity = 2;
    c.entity_broker = 15;   // leftmost leaf
    c.tracker_broker = 30;  // rightmost leaf, across the root
    c.first_hop_a = 7;      // parent of 15
    c.first_hop_b = 15;
    shapes.push_back(c);
  }
  {
    ShapeCell c;
    c.label = "clusters-32";
    c.overlay.shape = OverlaySpec::Shape::kClusters;
    c.overlay.brokers = 32;  // 8 cores x (1 + 3 leaves)
    c.overlay.leaves_per_core = 3;
    c.entity_broker = 8;     // first leaf of rack 0
    c.tracker_broker = 29;   // first leaf of rack 7
    c.first_hop_a = 0;       // core 0 <-> its first leaf
    c.first_hop_b = 8;
    shapes.push_back(c);
  }
  {
    ShapeCell c;
    c.label = "clusters-128";
    c.overlay.shape = OverlaySpec::Shape::kClusters;
    c.overlay.brokers = 128;  // 32 cores x (1 + 3 leaves)
    c.overlay.leaves_per_core = 3;
    c.entity_broker = 32;     // first leaf of rack 0
    c.tracker_broker = 125;   // first leaf of rack 31
    c.first_hop_a = 0;
    c.first_hop_b = 32;
    shapes.push_back(c);
  }
  const ScheduleKind kinds[] = {ScheduleKind::kHostingCrash,
                                ScheduleKind::kEntitySilence,
                                ScheduleKind::kLinkFlap};
  const std::uint64_t seeds[] = {101, 202, 303};

  struct Row {
    std::string label;
    CellResult r;
  };
  std::vector<Row> rows;
  bench::PaperTable table(
      "E14: tracker-observed detection latency vs overlay diameter (ms)");
  for (const ShapeCell& shape : shapes) {
    for (const ScheduleKind kind : kinds) {
      CellResult r;
      for (const std::uint64_t seed : seeds) run_cell(shape, kind, seed, r);
      const std::string label = shape.label + " d=" +
                                std::to_string(r.diameter) + " " +
                                schedule_name(kind);
      table.add_row(label, r.detection_ms);
      rows.push_back({label, r});
      std::fprintf(stderr, "done: %s\n", label.c_str());
    }
  }

  table.print();
  table.print_json("topology_sweep");

  std::printf("\nE14 detail (per cell, %zu seeds)\n",
              std::size(seeds));
  std::printf("%-34s %9s %9s %12s %10s\n", "Cell", "detected", "false-sus",
              "avail-error", "diameter");
  for (const Row& row : rows) {
    std::printf("%-34s %5llu/%-3llu %9llu %12.3f %10zu\n", row.label.c_str(),
                static_cast<unsigned long long>(row.r.detected_edges),
                static_cast<unsigned long long>(row.r.truth_edges),
                static_cast<unsigned long long>(row.r.false_suspicions),
                row.r.availability_err.mean(), row.r.diameter);
  }
  std::printf("{\"bench\":\"topology_sweep_detail\",\"rows\":[");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf(
        "%s{\"label\":\"%s\",\"diameter\":%zu,\"detected\":%llu,"
        "\"truth_edges\":%llu,\"false_suspicions\":%llu,"
        "\"availability_error\":%.6f}",
        i ? "," : "", row.label.c_str(), row.r.diameter,
        static_cast<unsigned long long>(row.r.detected_edges),
        static_cast<unsigned long long>(row.r.truth_edges),
        static_cast<unsigned long long>(row.r.false_suspicions),
        row.r.availability_err.mean());
  }
  std::printf("]}\n");
  return 0;
}
