// E15: socket transport on loopback vs the simulated backends.
//
// Builds the same 3-broker chain (publisher client at one end, subscriber
// at the other: client -> b0 -> b1 -> b2 -> client, three broker hops) on
// each NetworkBackend and reports:
//
//   - 3-hop publish latency (wall-clock for SocketNetwork/RealTimeNetwork,
//     modelled virtual time for VirtualTimeNetwork),
//   - sustained throughput in msgs/sec/broker (wall-clock for all three),
//   - the copies-per-hop accounting: BrokerStats::materialized across the
//     chain, which the view-codec redesign keeps at ZERO on pure-forward
//     hops (every hop re-sends the original wire bytes).
//
// JSON rows land on stdout for the BENCH_socket_loopback.json trajectory.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "bench/bench_util.h"
#include "src/pubsub/client.h"
#include "src/pubsub/topology.h"
#include "src/transport/realtime_network.h"
#include "src/transport/socket_network.h"
#include "src/transport/virtual_network.h"

namespace et::bench {
namespace {

constexpr std::size_t kBrokers = 3;
constexpr std::size_t kLatencyRounds = 200;
constexpr std::size_t kThroughputMsgs = 2000;
constexpr char kTopic[] = "e15/stream";

transport::LinkParams loopback_link() {
  transport::LinkParams p;
  p.base_latency = 200 * kMicrosecond;
  p.jitter_stddev = 0;
  return p;
}

template <typename Net>
constexpr bool is_virtual = std::is_same_v<Net, transport::VirtualTimeNetwork>;

/// One backend's chain deployment plus the measurement drivers.
template <typename Net>
class Chain {
 public:
  Chain()
      : topo_(net_),
        brokers_(topo_.make_chain(kBrokers, loopback_link(), "broker")),
        pub_(net_, "publisher"),
        sub_(net_, "subscriber") {
    pub_.connect(brokers_.front()->node(), loopback_link());
    sub_.connect(brokers_.back()->node(), loopback_link());
    settle();
    sub_.subscribe(kTopic, [this](const pubsub::Message&) {
      received_.fetch_add(1, std::memory_order_relaxed);
    });
    settle();  // interest propagates back along the chain
  }

  /// Mean single-message 3-hop latency (ms).
  RunningStats latency() {
    RunningStats stats;
    for (std::size_t i = 0; i < kLatencyRounds; ++i) {
      const std::uint64_t before = received_.load();
      if constexpr (is_virtual<Net>) {
        const TimePoint t0 = net_.now();
        pub_.publish(kTopic, to_bytes("ping"));
        net_.run_until_idle();
        stats.add(to_millis(net_.now() - t0));
      } else {
        SystemClock clock;
        const TimePoint t0 = clock.now();
        pub_.publish(kTopic, to_bytes("ping"));
        if (!wait_received(before + 1, 2 * kSecond)) continue;  // lost round
        stats.add(to_millis(clock.now() - t0));
      }
    }
    return stats;
  }

  /// Wall-clock sustained throughput, normalized per broker.
  double throughput_msgs_per_sec_per_broker() {
    const std::uint64_t before = received_.load();
    SystemClock clock;
    const TimePoint t0 = clock.now();
    for (std::size_t i = 0; i < kThroughputMsgs; ++i) {
      pub_.publish(kTopic, to_bytes("burst-" + std::to_string(i)));
      if constexpr (is_virtual<Net>) {
        // Inline drain keeps the virtual event queue bounded.
        if (i % 64 == 0) net_.run_until_idle();
      }
    }
    if constexpr (is_virtual<Net>) {
      net_.run_until_idle();
    } else if (!wait_received(before + kThroughputMsgs, 30 * kSecond)) {
      std::fprintf(stderr, "throughput: only %llu of %zu delivered\n",
                   static_cast<unsigned long long>(received_.load() - before),
                   kThroughputMsgs);
    }
    const double secs = to_millis(clock.now() - t0) / 1e3;
    const auto delivered =
        static_cast<double>(received_.load() - before);
    return delivered / secs / static_cast<double>(kBrokers);
  }

  /// Owning Message copies the chain's brokers made, and the wire-bytes
  /// forwards they made instead. Pure-forward traffic must show 0 copies.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> copy_counters() const {
    std::uint64_t materialized = 0;
    std::uint64_t view_forwards = 0;
    for (const auto* b : brokers_) {
      const pubsub::BrokerStats s = b->stats();
      materialized += s.materialized;
      view_forwards += s.view_forwards;
    }
    return {materialized, view_forwards};
  }

 private:
  void settle() {
    if constexpr (is_virtual<Net>) {
      net_.run_until_idle();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  bool wait_received(std::uint64_t target, Duration timeout) {
    SystemClock clock;
    const TimePoint deadline = clock.now() + timeout;
    while (received_.load() < target) {
      if (clock.now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
  }

  Net net_{77};
  pubsub::Topology topo_;
  std::vector<pubsub::Broker*> brokers_;
  pubsub::Client pub_;
  pubsub::Client sub_;
  std::atomic<std::uint64_t> received_{0};
};

template <typename Net>
void run_backend(const std::string& label, PaperTable& latency_table,
                 PaperTable& throughput_table, PaperTable& copies_table) {
  Chain<Net> chain;
  latency_table.add_row(label + " 3-hop latency", chain.latency());

  const double rate = chain.throughput_msgs_per_sec_per_broker();
  RunningStats rate_stats;
  rate_stats.add(rate);
  throughput_table.add_row(label + " msgs/sec/broker", rate_stats);

  const auto [materialized, view_forwards] = chain.copy_counters();
  RunningStats copies;
  copies.add(static_cast<double>(materialized));
  copies_table.add_row(label + " owning copies (want 0)", copies);
  RunningStats forwards;
  forwards.add(static_cast<double>(view_forwards));
  copies_table.add_row(label + " wire-view forwards", forwards);
  if (materialized != 0) {
    std::fprintf(stderr,
                 "E15 REGRESSION [%s]: %llu owning Message copies on a "
                 "pure-forward workload (view codec should make this 0)\n",
                 label.c_str(),
                 static_cast<unsigned long long>(materialized));
  }
}

}  // namespace
}  // namespace et::bench

int main() {
  using namespace et::bench;
  PaperTable latency("E15: 3-hop publish latency, 3-broker chain (ms)");
  PaperTable throughput("E15: sustained throughput (msgs/sec/broker)");
  PaperTable copies("E15: copies-per-hop accounting (counts, not ms)");

  run_backend<et::transport::VirtualTimeNetwork>("virtual", latency,
                                                 throughput, copies);
  run_backend<et::transport::RealTimeNetwork>("realtime", latency, throughput,
                                              copies);
  run_backend<et::transport::SocketNetwork>("socket-loopback", latency,
                                            throughput, copies);

  latency.print();
  throughput.print();
  copies.print();
  latency.print_json("socket_loopback_latency");
  throughput.print_json("socket_loopback_throughput");
  copies.print_json("socket_loopback_copies");
  return 0;
}
