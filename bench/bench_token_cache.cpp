// E10 — per-hop verification fast path (token-verification cache).
//
// Two views of the same optimization:
//   1. Filter microbench: the broker-side trace filter invoked directly,
//      cold (every message pays the full RSA chain) vs warm (chain runs
//      once per token; messages pay fingerprint + delegate verify only),
//      at 1 / 10 / 100 distinct tokens in flight.
//   2. Deployment bench: paper-style 3-broker TCP chain, end-to-end trace
//      latency with the cache disabled vs enabled, plus the steady-state
//      hit rate observed at the downstream brokers.
//
// Emits the human-readable tables of the other benches plus one JSON
// object per table (see PaperTable::print_json) so a BENCH_token_cache
// trajectory can be tracked across PRs.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/tracing/token_verify_cache.h"
#include "src/transport/virtual_network.h"

namespace et::bench {
namespace {

constexpr std::size_t kKeyBits = 1024;  // paper §6.1 configuration
constexpr std::size_t kWarmRounds = 1000;
constexpr std::size_t kColdRounds = 20;

/// Direct-invocation fixture: one owner identity, D distinct tokens
/// (distinct TDN advertisements), one signed trace message per token.
class FilterMicro {
 public:
  FilterMicro()
      : rng_(4242), ca_("bench-ca", rng_, kKeyBits), net_(1) {
    owner_ = crypto::Identity::create("owner", ca_, rng_, 0,
                                      24 * 3600 * kSecond, kKeyBits);
    tdn_ = crypto::rsa_generate(rng_, kKeyBits);
    delegate_ = crypto::rsa_generate(rng_, kKeyBits);
    anchors_.ca_key = ca_.public_key();
    anchors_.tdn_key = tdn_.public_key;
  }

  /// Builds D token/message pairs, all valid for an hour.
  std::vector<pubsub::Message> make_messages(std::size_t count) {
    std::vector<pubsub::Message> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const Uuid topic = Uuid::generate(rng_);
      discovery::TopicAdvertisement unsigned_ad(
          topic, "Availability/Traces/owner", owner_.credential, {}, 0,
          3600 * kSecond, "tdn-0", {});
      const discovery::TopicAdvertisement ad(
          topic, "Availability/Traces/owner", owner_.credential, {}, 0,
          3600 * kSecond, "tdn-0",
          tdn_.private_key.sign(unsigned_ad.tbs()));
      const auto token = tracing::AuthorizationToken::create(
          ad, delegate_.public_key, tracing::TokenRights::kPublish, 0,
          3600 * kSecond, owner_.keys.private_key);

      tracing::TracePayload p;
      p.type = tracing::TraceType::kAllsWell;
      p.entity_id = "owner";
      pubsub::Message m;
      m.topic = pubsub::trace_topics::trace_publication(topic.to_string(),
                                                        "AllUpdates");
      m.payload = p.serialize();
      m.publisher = "broker-x";
      m.sequence = i + 1;
      m.auth_token = token.serialize();
      m.signature = delegate_.private_key.sign(m.signable_bytes());
      out.push_back(std::move(m));
    }
    return out;
  }

  pubsub::MessageFilter make_filter(
      std::shared_ptr<tracing::TokenVerifyCache> cache) {
    return tracing::make_trace_filter(anchors_, net_, std::move(cache));
  }

  /// Drives the filter the way a broker would (the inline filter never
  /// defers); the filter sees a view of `m`, as it would a wire frame.
  bool accepts(const pubsub::MessageFilter& f, const pubsub::Message& m) {
    return f(broker_, m.as_view(), 0).accepted();
  }

 private:
  Rng rng_;
  crypto::CertificateAuthority ca_;
  transport::VirtualTimeNetwork net_;
  crypto::Identity owner_;
  crypto::RsaKeyPair tdn_;
  crypto::RsaKeyPair delegate_;
  tracing::TrustAnchors anchors_;
  pubsub::Broker broker_{net_, {.name = "bench-filter-host"}};
};

double run_micro(FilterMicro& fixture, std::size_t distinct_tokens,
                 PaperTable& table) {
  const auto messages = fixture.make_messages(distinct_tokens);
  SystemClock clock;
  const std::string suffix =
      " (" + std::to_string(distinct_tokens) + " tokens)";

  // Cold: a fresh cache per round, every message pays the full chain.
  RunningStats cold;
  for (std::size_t r = 0; r < kColdRounds; ++r) {
    auto cache = std::make_shared<tracing::TokenVerifyCache>(
        1024, 3600 * kSecond);
    auto filter = fixture.make_filter(cache);
    const TimePoint t0 = clock.now();
    for (const auto& m : messages) {
      if (!fixture.accepts(filter, m)) std::abort();
    }
    const TimePoint t1 = clock.now();
    cold.add(to_millis(t1 - t0) /
             static_cast<double>(messages.size()));
  }
  table.add_row("cold verify / msg" + suffix, cold);

  // Warm: one shared cache; after a priming pass every message is a hit.
  auto cache =
      std::make_shared<tracing::TokenVerifyCache>(1024, 3600 * kSecond);
  auto filter = fixture.make_filter(cache);
  for (const auto& m : messages) {
    if (!fixture.accepts(filter, m)) std::abort();
  }
  RunningStats warm;
  for (std::size_t r = 0; r < kWarmRounds; ++r) {
    const auto& m = messages[r % messages.size()];
    const TimePoint t0 = clock.now();
    if (!fixture.accepts(filter, m)) std::abort();
    const TimePoint t1 = clock.now();
    warm.add(to_millis(t1 - t0));
  }
  table.add_row("warm verify / msg" + suffix, warm);

  const double hit_rate = cache->stats().hit_rate();
  std::printf(
      "{\"bench\":\"token_cache\",\"counters\":{\"distinct_tokens\":%zu,"
      "\"hits\":%llu,\"misses\":%llu,\"hit_rate_pct\":%.2f}}\n",
      distinct_tokens,
      static_cast<unsigned long long>(cache->stats().hits),
      static_cast<unsigned long long>(cache->stats().misses),
      100.0 * hit_rate);
  return hit_rate;
}

/// Paper-style 3-broker TCP chain, cache off vs on.
void run_deployment(PaperTable& table) {
  const auto link = transport::LinkParams::tcp_profile();
  constexpr std::size_t kHops = 3;
  constexpr std::size_t kRounds = 40;

  for (const bool cached : {false, true}) {
    tracing::TracingConfig config = paper_config();
    config.verification.cache_capacity = cached ? 1024 : 0;

    Deployment dep(kHops, link, config);
    auto entity = dep.make_entity("traced-entity", 0);
    dep.start_tracing(*entity);
    auto tracker = dep.make_tracker("measuring-tracker", kHops - 1);
    Latch received;
    dep.track(*tracker, "traced-entity", tracing::kCatStateTransitions,
              [&](const tracing::TracePayload& p, const pubsub::Message&) {
                if (p.state) received.hit();
              });

    RunningStats stats =
        measure_state_trace_latency(dep, *entity, received, kRounds);
    table.add_row(cached ? "3 hops TCP, cache on" : "3 hops TCP, cache off",
                  stats);

    if (cached) {
      // Downstream brokers (1..H-1) verify every routed trace; the
      // hosting broker's own publications bypass its filter.
      std::uint64_t hits = 0, misses = 0, expired = 0;
      for (std::size_t i = 1; i < dep.broker_count(); ++i) {
        const auto& cache = dep.token_cache(i);
        if (!cache) continue;
        hits += cache->stats().hits;
        misses += cache->stats().misses;
        expired += cache->stats().expired;
      }
      const double rate =
          hits + misses + expired
              ? 100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses + expired)
              : 0.0;
      std::printf(
          "{\"bench\":\"token_cache\",\"counters\":{\"deployment\":"
          "\"3hop_tcp\",\"hits\":%llu,\"misses\":%llu,\"expired\":%llu,"
          "\"hit_rate_pct\":%.2f}}\n",
          static_cast<unsigned long long>(hits),
          static_cast<unsigned long long>(misses),
          static_cast<unsigned long long>(expired), rate);
    }
    dep.net.stop();
  }
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E10: Per-hop token-verification cache (cold vs warm, hit rates)\n"
      "Units: milliseconds.\n");
  {
    et::bench::PaperTable table("Trace filter cost per message (direct)");
    et::bench::FilterMicro fixture;
    for (const std::size_t d : {1u, 10u, 100u}) {
      et::bench::run_micro(fixture, d, table);
    }
    table.print();
    table.print_json("token_cache");
  }
  {
    et::bench::PaperTable table(
        "End-to-end trace latency, 3-broker TCP chain");
    et::bench::run_deployment(table);
    table.print();
    table.print_json("token_cache");
  }
  return 0;
}
