// Experiment E2 — paper Table 3, "Security and Authorization related
// Costs": token generation+signing, token verification, trace-message
// encryption/decryption, and signing/verifying plain and encrypted trace
// messages. Configuration per §6.1: RSA-1024 + SHA-1 + PKCS#1, AES-192.
#include <cstdio>

#include "bench/bench_util.h"

namespace et::bench {
namespace {

constexpr int kIterations = 100;
constexpr std::size_t kTraceBytes = 512;

void run() {
  Rng rng(99);
  SystemClock clock;
  crypto::CertificateAuthority ca("ca", rng, 1024);
  const crypto::Identity owner =
      crypto::Identity::create("owner", ca, rng, clock.now(),
                               24 * 3600 * kSecond, 1024);
  const crypto::RsaKeyPair tdn_keys = crypto::rsa_generate(rng, 1024);

  // TDN-signed advertisement establishing the trace topic. The timestamps
  // must be captured once: tbs() covers them, so the signed copy has to
  // carry the exact same values.
  const Uuid topic = Uuid::generate(rng);
  const TimePoint issued = clock.now();
  const TimePoint expires = issued + 24 * 3600 * kSecond;
  discovery::TopicAdvertisement unsigned_ad(
      topic, "Availability/Traces/owner", owner.credential, {}, issued,
      expires, "tdn-0", {});
  const discovery::TopicAdvertisement ad(
      topic, "Availability/Traces/owner", owner.credential, {}, issued,
      expires, "tdn-0", tdn_keys.private_key.sign(unsigned_ad.tbs()));

  const crypto::SecretKey trace_key = crypto::SecretKey::generate(rng);
  const Bytes trace_body = rng.next_bytes(kTraceBytes);

  auto timed = [&clock](auto&& fn) {
    const TimePoint t0 = clock.now();
    fn();
    return to_millis(clock.now() - t0);
  };

  RunningStats token_gen, token_verify, encrypt, decrypt;
  RunningStats sign_plain, verify_plain, sign_encrypted, verify_encrypted;

  tracing::AuthorizationToken token;  // last one generated, reused below
  crypto::RsaKeyPair delegate;
  for (int i = 0; i < kIterations; ++i) {
    // Token generation and signing = fresh delegate pair + signed token
    // (§4.3: "the entity also generates an asymmetric key pair" and signs
    // the token).
    token_gen.add(timed([&] {
      delegate = crypto::rsa_generate(rng, 1024);
      token = tracing::AuthorizationToken::create(
          ad, delegate.public_key, tracing::TokenRights::kPublish,
          clock.now(), clock.now() + 600 * kSecond, owner.keys.private_key);
    }));

    token_verify.add(timed([&] {
      const Status s = token.verify(tdn_keys.public_key, ca.public_key(),
                                    clock.now());
      if (!s.is_ok()) { std::fprintf(stderr, "token verify failed: %s\n", s.to_string().c_str()); std::abort(); }
    }));

    Bytes ciphertext;
    encrypt.add(timed([&] {
      ciphertext = trace_key.encrypt(trace_body, rng);
    }));
    decrypt.add(timed([&] {
      if (trace_key.decrypt(ciphertext) != trace_body) { std::fprintf(stderr, "decrypt mismatch\n"); std::abort(); }
    }));

    // Plain trace message: sign / verify with the delegate key.
    pubsub::Message plain;
    plain.topic = pubsub::trace_topics::trace_publication(
        topic.to_string(), "AllUpdates");
    plain.payload = trace_body;
    plain.publisher = "broker-0";
    plain.sequence = static_cast<std::uint64_t>(i) + 1;
    plain.timestamp = clock.now();
    plain.auth_token = token.serialize();
    sign_plain.add(timed([&] {
      plain.signature = delegate.private_key.sign(plain.signable_bytes());
    }));
    verify_plain.add(timed([&] {
      if (!token.verify_delegate_signature(plain.signable_bytes(),
                                           plain.signature)) {
        std::abort();
      }
    }));

    // Encrypted trace message.
    pubsub::Message enc = plain;
    enc.payload = ciphertext;
    enc.encrypted = true;
    sign_encrypted.add(timed([&] {
      enc.signature = delegate.private_key.sign(enc.signable_bytes());
    }));
    verify_encrypted.add(timed([&] {
      if (!token.verify_delegate_signature(enc.signable_bytes(),
                                           enc.signature)) {
        std::abort();
      }
    }));
  }

  PaperTable table("Security and Authorization related Costs (Table 3)");
  table.add_row("Token Generation and Signing", token_gen);
  table.add_row("Verifying Authorization Token", token_verify);
  table.add_row("Encrypting Trace Message", encrypt);
  table.add_row("Decrypting Trace Message", decrypt);
  table.add_row("Sign Trace Message", sign_plain);
  table.add_row("Verify Signature in Trace Message", verify_plain);
  table.add_row("Sign Encrypted Trace Message", sign_encrypted);
  table.add_row("Verify Signature in Encrypted Trace", verify_encrypted);
  table.print();
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E2: Security & authorization operation costs (paper Table 3)\n"
      "Units: milliseconds. %d iterations per operation, %zu-byte traces,\n"
      "RSA-1024 / SHA-1 / PKCS#1 signing, AES-192/CBC encryption.\n",
      et::bench::kIterations, et::bench::kTraceBytes);
  et::bench::run();
  return 0;
}
