// Experiment E16 — million-entity scale (DESIGN.md §14).
//
// Sweeps the tracked-entity population 10^3 -> 10^6 on a chain-8 broker
// network under virtual time, with the three §14 mechanisms enabled:
// hierarchical interest aggregation (summary depth 4), per-host ALLS_WELL
// digest coalescing, and the session timer wheel. Entities are packed
// onto EntityHosts (256 per host) so registration, delegation, pings and
// heartbeats are all O(hosts) while trackers keep exact per-entity
// semantics through digest expansion.
//
// Reported per population: broker RSS, roster bytes/entity, routing
// messages per virtual second, per-broker interest edges, armed backend
// timers, and digest compression. Compared against the paper's §1 strawman
// (baseline::AllPairsHeartbeat, N^2 messages) and gossip-style detection
// (baseline::GossipDetector) at the populations where running them is
// feasible.
//
// `--smoke` runs only the 10^5-entity cell and asserts the §14 acceptance
// floors: interest edges and armed timers each >= 100x fewer than the
// entity count, RSS under 512 MB. CI's `scale` stage runs this mode.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/allpairs_heartbeat.h"
#include "src/baseline/gossip_detector.h"
#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/entity_host.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

namespace et::bench {
namespace {

constexpr std::size_t kBrokers = 8;
constexpr std::size_t kEntitiesPerHost = 512;
constexpr std::size_t kTrackedHosts = 16;
constexpr std::size_t kKeyBits = 512;  // protocol logic is key-size blind
constexpr Duration kSteadyState = 10 * kSecond;  // virtual measurement span

/// Resident set size of this process, in bytes (/proc/self/statm).
std::size_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0, resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

tracing::TracingConfig scale_config() {
  tracing::TracingConfig c;
  c.ping_interval = 1 * kSecond;
  c.min_ping_interval = 250 * kMillisecond;
  // Gauge probes RSA-sign one message per session per round; at 10^6
  // entities that is thousands of signs per virtual round, which is not
  // what this experiment measures. Unsolicited interest responses (the
  // tracker announces on track()) make gauging unnecessary here.
  c.gauge_interval = 600 * kSecond;
  c.metrics_interval = 600 * kSecond;
  c.interest_ttl_rounds = 1 << 20;  // interest never decays mid-run
  c.signing_mode = tracing::EntitySigningMode::kSymmetricSession;
  c.delegate_key_bits = kKeyBits;
  c.token_lifetime = 7200 * kSecond;
  c.topic_lifetime = 7200 * kSecond;
  // The §14 levers.
  c.digest_interval = 1 * kSecond;          // one digest per host per round
  c.digest_max_entries = 2 * kEntitiesPerHost;
  c.timer_wheel_tick = 100 * kMillisecond;  // O(ticks) armed timers
  return c;
}

struct CellResult {
  std::size_t entities = 0;
  std::size_t hosts = 0;
  std::size_t rss = 0;                 // process RSS after steady state
  std::size_t roster_bytes = 0;        // arena bytes across brokers
  std::size_t interest_edges_max = 0;  // worst single broker
  std::size_t armed_timers = 0;        // backend timers across brokers
  std::size_t logical_timers = 0;      // wheel entries across brokers
  double msgs_per_sec = 0;             // routing entries per virtual second
  std::uint64_t digests = 0;           // digest messages published
  std::uint64_t digest_entries = 0;    // observations carried by them
  std::uint64_t expanded = 0;          // per-entity payloads at the tracker
};

CellResult run_cell(std::size_t entity_count) {
  const std::uint64_t seed = 20260809;
  transport::VirtualTimeNetwork net(seed);
  Rng rng(seed);
  crypto::CertificateAuthority ca("bench-ca", rng, kKeyBits);
  // One long-term keypair and one delegate pair shared by every identity:
  // RSA keygen is excluded from the measurement (identities pre-exist).
  const crypto::RsaKeyPair shared_keys = crypto::rsa_generate(rng, kKeyBits);
  const crypto::RsaKeyPair shared_delegate =
      crypto::rsa_generate(rng, kKeyBits);

  tracing::TracingConfig config = scale_config();
  tracing::TrustAnchors anchors;
  crypto::Identity tdn_identity;
  tdn_identity.id = "tdn-0";
  tdn_identity.keys = crypto::rsa_generate(rng, kKeyBits);
  tdn_identity.credential = ca.issue("tdn-0", tdn_identity.keys.public_key,
                                     net.now(), 24 * 3600 * kSecond);
  anchors.ca_key = ca.public_key();
  anchors.tdn_key = tdn_identity.keys.public_key;
  auto tdn = std::make_unique<discovery::Tdn>(net, std::move(tdn_identity),
                                              ca.public_key(), seed + 1);

  transport::LinkParams link = transport::LinkParams::ideal_profile();
  link.base_latency = 1 * kMillisecond;

  pubsub::Topology topology(net);
  std::vector<tracing::TraceFilterHandle> filters;
  std::vector<pubsub::Broker*> brokers = topology.make_chain(
      kBrokers, link, "broker", [&](const std::string& name) {
        pubsub::Broker::Options o;
        o.name = name;
        o.interest_summary_depth = 4;  // hierarchical aggregation (§14)
        filters.push_back(
            tracing::install_trace_filter(o, anchors, net, config));
        return o;
      });
  std::vector<std::unique_ptr<tracing::TracingBrokerService>> services;
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    services.push_back(std::make_unique<tracing::TracingBrokerService>(
        *brokers[i], anchors, config, seed + 100 + i));
  }

  auto make_identity = [&](const std::string& id) {
    crypto::Identity ident;
    ident.id = id;
    ident.keys = shared_keys;
    ident.credential = ca.issue(id, shared_keys.public_key, net.now(),
                                24 * 3600 * kSecond);
    return ident;
  };

  const std::size_t host_count =
      (entity_count + kEntitiesPerHost - 1) / kEntitiesPerHost;
  std::vector<std::unique_ptr<tracing::EntityHost>> hosts;
  hosts.reserve(host_count);
  std::size_t ready = 0, failed = 0;
  std::size_t remaining = entity_count;
  for (std::size_t h = 0; h < host_count; ++h) {
    const std::string hid = "h" + std::to_string(h);
    auto host = std::make_unique<tracing::EntityHost>(
        net, make_identity(hid), anchors, config, seed + 1000 + h);
    host->set_delegate_keys(shared_delegate);
    host->attach_tdn(tdn->node(), link);
    host->connect_broker(brokers[h % kBrokers]->node(), link);

    const std::size_t members = std::min(kEntitiesPerHost, remaining);
    remaining -= members;
    std::vector<std::string> ids;
    ids.reserve(members);
    for (std::size_t i = 0; i < members; ++i) {
      ids.push_back(hid + ".e" + std::to_string(i));  // fits SSO
    }
    host->register_entities({}, std::move(ids), [&](const Status& s) {
      s.is_ok() ? ++ready : ++failed;
    });
    hosts.push_back(std::move(host));
    // Pace the registration storm: a burst of create_topic round-trips
    // per wave keeps virtual queues shallow.
    if (h % 64 == 63) net.run_for(200 * kMillisecond);
  }
  for (int i = 0; i < 600 && ready + failed < host_count; ++i) {
    net.run_for(100 * kMillisecond);
  }
  if (ready != host_count) {
    std::fprintf(stderr, "FATAL: %zu/%zu hosts registered (%zu failed)\n",
                 ready, host_count, failed);
    std::abort();
  }

  // One tracker at the far end of the chain follows a sample of hosts —
  // per-entity semantics over coalesced digests, across 7 hops. The
  // remaining hosts have no interested tracker, so their heartbeats are
  // suppressed at the hosting broker (§3.5) while pings keep flowing.
  auto tracker = std::make_unique<tracing::Tracker>(
      net, make_identity("tr0"), anchors, seed + 7);
  tracker->attach_tdn(tdn->node(), link);
  tracker->connect_broker(brokers[kBrokers - 1]->node(), link);
  net.run_for(20 * kMillisecond);
  const std::size_t tracked = std::min(kTrackedHosts, host_count);
  std::size_t track_ready = 0;
  for (std::size_t t = 0; t < tracked; ++t) {
    const std::size_t h = t * (host_count / tracked);
    tracker->track_host(
        "h" + std::to_string(h), tracing::kCatAllUpdates,
        [](const tracing::TracePayload&, const pubsub::Message&) {},
        [&](const Status& s) {
          if (s.is_ok()) ++track_ready;
        });
  }
  for (int i = 0; i < 300 && track_ready < tracked; ++i) {
    net.run_for(100 * kMillisecond);
  }
  if (track_ready != tracked) {
    std::fprintf(stderr, "FATAL: %zu/%zu track_host calls completed\n",
                 track_ready, tracked);
    std::abort();
  }

  // Steady state: counters zeroed by delta, then one measured span.
  std::uint64_t before_msgs = 0;
  for (pubsub::Broker* b : brokers) {
    const pubsub::BrokerStats s = b->stats();
    before_msgs += s.published + s.forwarded + s.delivered_local;
  }
  const std::uint64_t before_expanded =
      tracker->stats().digest_entries_expanded;
  net.run_for(kSteadyState);

  CellResult r;
  r.entities = entity_count;
  r.hosts = host_count;
  std::uint64_t after_msgs = 0;
  for (pubsub::Broker* b : brokers) {
    const pubsub::BrokerStats s = b->stats();
    after_msgs += s.published + s.forwarded + s.delivered_local;
    r.interest_edges_max = std::max(r.interest_edges_max, b->interest_edges());
  }
  for (const auto& svc : services) {
    r.roster_bytes += svc->roster_bytes();
    const TimerWheel::Stats ws = svc->timer_stats();
    r.armed_timers += ws.armed_now;
    r.logical_timers += ws.pending;
    r.digests += svc->emitter_stats().digests_published;
    r.digest_entries += svc->emitter_stats().digest_entries;
  }
  r.msgs_per_sec = static_cast<double>(after_msgs - before_msgs) /
                   (static_cast<double>(kSteadyState) / kSecond);
  r.expanded = tracker->stats().digest_entries_expanded - before_expanded;
  r.rss = rss_bytes();
  return r;
}

void print_cell(const CellResult& r) {
  std::printf(
      "  %8zu entities  %5zu hosts  rss=%6.1f MB  roster=%5.1f B/entity  "
      "edges(max/broker)=%5zu  timers(armed=%zu logical=%zu)  "
      "msgs/s=%9.0f  digests=%llu (%.0fx coalesced)  expanded=%llu\n",
      r.entities, r.hosts, static_cast<double>(r.rss) / (1024.0 * 1024.0),
      static_cast<double>(r.roster_bytes) /
          static_cast<double>(r.entities),
      r.interest_edges_max, r.armed_timers, r.logical_timers, r.msgs_per_sec,
      static_cast<unsigned long long>(r.digests),
      r.digests ? static_cast<double>(r.digest_entries) /
                      static_cast<double>(r.digests)
                : 0.0,
      static_cast<unsigned long long>(r.expanded));
  std::printf(
      "{\"bench\":\"entity_scale\",\"entities\":%zu,\"hosts\":%zu,"
      "\"rss_bytes\":%zu,\"roster_bytes_per_entity\":%.2f,"
      "\"interest_edges_max\":%zu,\"armed_timers\":%zu,"
      "\"logical_timers\":%zu,\"msgs_per_sec\":%.1f,\"digests\":%llu,"
      "\"digest_entries\":%llu,\"expanded\":%llu}\n",
      r.entities, r.hosts, r.rss,
      static_cast<double>(r.roster_bytes) / static_cast<double>(r.entities),
      r.interest_edges_max, r.armed_timers, r.logical_timers, r.msgs_per_sec,
      static_cast<unsigned long long>(r.digests),
      static_cast<unsigned long long>(r.digest_entries),
      static_cast<unsigned long long>(r.expanded));
  std::fflush(stdout);
}

/// §1 strawman at population `n`: every entity heartbeats every other.
double run_allpairs(std::size_t n) {
  transport::VirtualTimeNetwork net(7);
  transport::LinkParams link = transport::LinkParams::ideal_profile();
  link.base_latency = 1 * kMillisecond;
  baseline::AllPairsSystem sys(net, n, 1 * kSecond, 5 * kSecond, link);
  sys.start();
  net.run_for(kSteadyState);
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < n; ++i) sent += sys.node(i).heartbeats_sent();
  return static_cast<double>(sent) /
         (static_cast<double>(kSteadyState) / kSecond);
}

double run_gossip(std::size_t n) {
  transport::VirtualTimeNetwork net(7);
  transport::LinkParams link = transport::LinkParams::ideal_profile();
  link.base_latency = 1 * kMillisecond;
  baseline::GossipSystem sys(net, n, 1 * kSecond, 5 * kSecond, /*fanout=*/3,
                             link, 7);
  sys.start();
  net.run_for(kSteadyState);
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < n; ++i) sent += sys.node(i).gossips_sent();
  return static_cast<double>(sent) /
         (static_cast<double>(kSteadyState) / kSecond);
}

int smoke() {
  std::printf("E16 smoke: 10^5 entities on chain-%zu (virtual time)\n",
              kBrokers);
  const CellResult r = run_cell(100000);
  print_cell(r);
  bool ok = true;
  const std::size_t edge_ceiling = r.entities / 100;
  if (r.interest_edges_max > edge_ceiling) {
    std::fprintf(stderr, "SMOKE FAIL: interest edges %zu > %zu (N/100)\n",
                 r.interest_edges_max, edge_ceiling);
    ok = false;
  }
  if (r.armed_timers > edge_ceiling) {
    std::fprintf(stderr, "SMOKE FAIL: armed timers %zu > %zu (N/100)\n",
                 r.armed_timers, edge_ceiling);
    ok = false;
  }
  constexpr std::size_t kRssCeiling = 512ull * 1024 * 1024;
  if (r.rss > kRssCeiling) {
    std::fprintf(stderr, "SMOKE FAIL: RSS %zu > %zu bytes\n", r.rss,
                 kRssCeiling);
    ok = false;
  }
  if (r.expanded == 0 || r.digests == 0) {
    std::fprintf(stderr,
                 "SMOKE FAIL: no digests flowed (digests=%llu expanded=%llu)\n",
                 static_cast<unsigned long long>(r.digests),
                 static_cast<unsigned long long>(r.expanded));
    ok = false;
  }
  std::printf("E16 smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int sweep() {
  std::printf(
      "E16: entity scale sweep on chain-%zu, %zu entities/host, digest\n"
      "coalescing + interest summarization (depth 4) + timer wheel.\n",
      kBrokers, kEntitiesPerHost);
  for (const std::size_t n : {std::size_t{1000}, std::size_t{10000},
                              std::size_t{100000}, std::size_t{1000000}}) {
    print_cell(run_cell(n));
  }
  std::printf("\nBaselines (messages per virtual second):\n");
  for (const std::size_t n : {std::size_t{128}, std::size_t{256}}) {
    std::printf("  all-pairs  N=%4zu: %10.0f msgs/s (N^2 growth)\n", n,
                run_allpairs(n));
  }
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024}}) {
    std::printf("  gossip     N=%4zu: %10.0f msgs/s (fanout 3)\n", n,
                run_gossip(n));
  }
  std::printf(
      "(all-pairs at 10^5+ is infeasible by construction: 10^10 "
      "msgs/interval)\n");
  return 0;
}

}  // namespace
}  // namespace et::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return et::bench::smoke();
  }
  return et::bench::sweep();
}
