// Experiment E7 (ablation) — message-count scalability: the naive
// all-pairs heartbeat scheme from the paper's introduction ("there would
// be N×(N−1) messages within the system every second") versus gossip
// (related work) versus this paper's broker-mediated tracing, on the
// deterministic virtual-time backend.
//
// Reported: total system messages per simulated second as N grows. The
// broker scheme's traffic is per-entity pings plus interest-gated traces —
// linear in N — while all-pairs grows quadratically.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/baseline/allpairs_heartbeat.h"
#include "src/baseline/gossip_detector.h"
#include "src/crypto/credential.h"
#include "src/discovery/tdn.h"
#include "src/pubsub/topology.h"
#include "src/tracing/config.h"
#include "src/tracing/trace_filter.h"
#include "src/tracing/traced_entity.h"
#include "src/tracing/tracing_broker.h"
#include "src/tracing/tracker.h"
#include "src/transport/virtual_network.h"

namespace et::bench {
namespace {

using namespace et::tracing;

constexpr Duration kInterval = 1 * kSecond;  // heartbeat/ping/gossip period
constexpr Duration kWindow = 10 * kSecond;   // measurement window

transport::LinkParams lan() {
  transport::LinkParams p = transport::LinkParams::ideal_profile();
  p.base_latency = 1500;  // 1.5 ms
  return p;
}

std::uint64_t run_allpairs(std::size_t n) {
  transport::VirtualTimeNetwork net(1);
  baseline::AllPairsSystem sys(net, n, kInterval, 5 * kInterval, lan());
  sys.start();
  net.run_for(kWindow);
  return net.packets_sent();
}

std::uint64_t run_gossip(std::size_t n) {
  transport::VirtualTimeNetwork net(2);
  baseline::GossipSystem sys(net, n, kInterval, 10 * kInterval, 2, lan(), 3);
  sys.start();
  net.run_for(kWindow);
  return net.packets_sent();
}

std::uint64_t run_tracing(std::size_t n) {
  transport::VirtualTimeNetwork net(3);
  Rng rng(3);
  // Small keys: E7 counts messages; crypto size is irrelevant here.
  crypto::CertificateAuthority ca("ca", rng, 512);
  crypto::Identity tdn_id =
      crypto::Identity::create("tdn-0", ca, rng, net.now(),
                               24 * 3600 * kSecond, 512);
  TrustAnchors anchors{ca.public_key(), tdn_id.keys.public_key};
  discovery::Tdn tdn(net, std::move(tdn_id), ca.public_key(), 4);

  TracingConfig config;
  config.ping_interval = kInterval;
  config.gauge_interval = 5 * kInterval;
  config.metrics_interval = 5 * kInterval;
  config.delegate_key_bits = 512;

  pubsub::Topology topo(net);
  auto brokers =
      topo.make_chain(4, lan(), "broker", [&](const std::string&) {
        pubsub::Broker::Options o;
        install_trace_filter(o, anchors, net);
        return o;
      });
  std::vector<std::unique_ptr<TracingBrokerService>> services;
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    services.push_back(std::make_unique<TracingBrokerService>(
        *brokers[i], anchors, config, 100 + i));
  }

  const crypto::RsaKeyPair shared = crypto::rsa_generate(rng, 512);
  auto identity = [&](const std::string& id) {
    crypto::Identity ident;
    ident.id = id;
    ident.keys = shared;
    ident.credential =
        ca.issue(id, shared.public_key, net.now(), 24 * 3600 * kSecond);
    return ident;
  };

  std::vector<std::unique_ptr<TracedEntity>> entities;
  for (std::size_t i = 0; i < n; ++i) {
    auto e = std::make_unique<TracedEntity>(
        net, identity("entity-" + std::to_string(i)), anchors, config,
        rng.next_u64());
    e->attach_tdn(tdn.node(), lan());
    e->connect_broker(brokers[i % brokers.size()]->node(), lan());
    e->start_tracing({}, [](const Status& s) {
      if (!s.is_ok()) std::abort();
    });
    entities.push_back(std::move(e));
    net.run_for(10 * kMillisecond);
  }
  // One tracker per 8 entities keeps change-notification interest alive
  // (real deployments have audiences; this is the expensive direction for
  // the scheme, so the comparison stays fair).
  std::vector<std::unique_ptr<Tracker>> trackers;
  for (std::size_t i = 0; i < n; i += 8) {
    auto t = std::make_unique<Tracker>(
        net, identity("tracker-" + std::to_string(i)), anchors,
        rng.next_u64());
    t->attach_tdn(tdn.node(), lan());
    t->connect_broker(brokers[(i + 2) % brokers.size()]->node(), lan());
    t->track("entity-" + std::to_string(i), kCatChangeNotifications,
             [](const TracePayload&, const pubsub::Message&) {});
    trackers.push_back(std::move(t));
    net.run_for(10 * kMillisecond);
  }

  const std::uint64_t before = net.packets_sent();
  net.run_for(kWindow);
  return net.packets_sent() - before;
}

void run() {
  std::printf("\n%-8s %16s %16s %16s\n", "N", "all-pairs msg/s",
              "gossip msg/s", "tracing msg/s");
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const double secs = to_millis(kWindow) / 1000.0;
    const double ap = static_cast<double>(run_allpairs(n)) / secs;
    const double go = static_cast<double>(run_gossip(n)) / secs;
    const double tr = static_cast<double>(run_tracing(n)) / secs;
    std::printf("%-8zu %16.1f %16.1f %16.1f\n", n, ap, go, tr);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace et::bench

int main() {
  std::printf(
      "E7 (ablation): system-wide message rate vs entity count\n"
      "All-pairs heartbeats (paper section 1 strawman) vs gossip (related\n"
      "work) vs this paper's broker-mediated tracing. Virtual-time\n"
      "simulation, %.1f s window, 1 s heartbeat/ping/gossip period.\n",
      et::to_millis(et::bench::kWindow) / 1000.0);
  et::bench::run();
  return 0;
}
