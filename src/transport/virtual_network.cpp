#include "src/transport/virtual_network.h"

#include <stdexcept>

#include "src/transport/fault_injector.h"

namespace et::transport {

VirtualTimeNetwork::VirtualTimeNetwork(std::uint64_t seed) : rng_(seed) {
  // One seed reproduces the whole run, injected faults included.
  faults_->reseed(seed ^ 0x9E3779B97F4A7C15ull);
}

NodeId VirtualTimeNetwork::add_node(std::string name, PacketHandler handler) {
  nodes_.push_back(Node{std::move(name), std::move(handler)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void VirtualTimeNetwork::link(NodeId a, NodeId b, const LinkParams& params) {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) {
    throw std::invalid_argument("VirtualTimeNetwork::link: bad node ids");
  }
  links_.insert_or_assign(key(a, b), LinkState(params));
  links_.insert_or_assign(key(b, a), LinkState(params));
}

void VirtualTimeNetwork::unlink(NodeId a, NodeId b) {
  links_.erase(key(a, b));
  links_.erase(key(b, a));
}

void VirtualTimeNetwork::detach(NodeId node) {
  if (node < nodes_.size()) {
    nodes_[node].handler = [](NodeId, BytesView) {};
  }
}

bool VirtualTimeNetwork::linked(NodeId a, NodeId b) const {
  return links_.contains(key(a, b));
}

std::string VirtualTimeNetwork::node_name(NodeId id) const {
  return id < nodes_.size() ? nodes_[id].name : "<invalid>";
}

Status VirtualTimeNetwork::send(NodeId from, NodeId to, SharedPayload payload) {
  const auto it = links_.find(key(from, to));
  if (it == links_.end()) {
    return unavailable("no link " + node_name(from) + " -> " + node_name(to));
  }
  ++sent_;
  bytes_sent_ += payload->size();
  bool duplicate = false;
  if (faults_->armed()) {
    // Injected drops are silent (return OK): a partitioned peer looks
    // exactly like a dead one, which is what the failure detector must see.
    const auto verdict = faults_->judge(from, to, now(), payload);
    if (!verdict.deliver) {
      ++lost_;
      return Status::ok();
    }
    duplicate = verdict.duplicate;
  }
  const Duration delay = it->second.sample_delay(payload->size(), now(), rng_);
  if (delay == kPacketLost) {
    ++lost_;
    return Status::ok();  // silent loss, like the wire
  }
  // The event holds a reference, not a copy; fan-out sends of the same
  // frame all share one buffer. The link may be removed before delivery.
  push_event(now() + delay, 0, [this, from, to, payload] {
    if (!links_.contains(key(from, to))) return;  // link went away in flight
    if (faults_->armed() && faults_->cut(from, to, now())) {
      ++lost_;  // partition started while the packet was in flight
      return;
    }
    ++delivered_;
    nodes_[to].handler(from, BytesView(*payload));
  });
  if (duplicate) {
    const Duration dup_delay =
        it->second.sample_delay(payload->size(), now(), rng_);
    if (dup_delay != kPacketLost) {
      push_event(now() + dup_delay, 0, [this, from, to, payload] {
        if (!links_.contains(key(from, to))) return;
        if (faults_->armed() && faults_->cut(from, to, now())) {
          ++lost_;
          return;
        }
        ++delivered_;
        nodes_[to].handler(from, BytesView(*payload));
      });
    }
  }
  return Status::ok();
}

void VirtualTimeNetwork::post(NodeId node, Task task) {
  if (node >= nodes_.size()) {
    throw std::invalid_argument("VirtualTimeNetwork::post: bad node id");
  }
  push_event(now(), 0, std::move(task));
}

TimerId VirtualTimeNetwork::schedule(NodeId node, Duration delay, Task task) {
  if (node >= nodes_.size()) {
    throw std::invalid_argument("VirtualTimeNetwork::schedule: bad node id");
  }
  const TimerId id = next_timer_++;
  push_event(now() + delay, id, std::move(task));
  return id;
}

void VirtualTimeNetwork::cancel(TimerId id) {
  if (id != 0) cancelled_[id] = true;
}

void VirtualTimeNetwork::push_event(TimePoint at, TimerId timer_id,
                                    Task task) {
  queue_.push(Event{at, next_seq_++, timer_id, std::move(task)});
}

bool VirtualTimeNetwork::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; copy the small fields, move via const_cast
    // is UB — instead pop into a local by re-pushing pattern. We store tasks
    // in shared_ptr-free Events, so copy the task (std::function copy).
    Event ev = queue_.top();
    queue_.pop();
    if (ev.timer_id != 0) {
      const auto it = cancelled_.find(ev.timer_id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;  // skip cancelled timer
      }
    }
    clock_.set(ev.at);
    ev.task();
    return true;
  }
  return false;
}

std::size_t VirtualTimeNetwork::run_until_idle() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t VirtualTimeNetwork::run_for(Duration d) {
  const TimePoint deadline = now() + d;
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++n;
  }
  clock_.set(deadline);
  return n;
}

}  // namespace et::transport
