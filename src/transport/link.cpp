#include "src/transport/link.h"

#include <algorithm>

namespace et::transport {

LinkParams LinkParams::tcp_profile() {
  LinkParams p;
  p.base_latency = 1500 * kMicrosecond;
  p.jitter_stddev = 120 * kMicrosecond;
  p.loss_probability = 0.005;  // surfaces as retransmit latency
  p.reliable = true;
  p.ordered = true;
  p.bytes_per_us = 12.5;  // 100 Mbps
  return p;
}

LinkParams LinkParams::udp_profile() {
  LinkParams p;
  p.base_latency = 1300 * kMicrosecond;
  p.jitter_stddev = 150 * kMicrosecond;
  p.loss_probability = 0.005;
  p.reliable = false;
  p.ordered = false;
  p.bytes_per_us = 12.5;
  return p;
}

LinkParams LinkParams::ideal_profile() {
  LinkParams p;
  p.base_latency = 0;
  p.jitter_stddev = 0;
  p.loss_probability = 0.0;
  p.reliable = true;
  p.ordered = true;
  p.bytes_per_us = 0.0;
  return p;
}

Duration LinkState::sample_delay(std::size_t size, TimePoint now, Rng& rng) {
  ++sent_;
  Duration delay = params_.base_latency;

  if (params_.bytes_per_us > 0.0) {
    delay += static_cast<Duration>(static_cast<double>(size) /
                                   params_.bytes_per_us);
  }
  if (params_.jitter_stddev > 0) {
    const double jitter = rng.next_gaussian(
        0.0, static_cast<double>(params_.jitter_stddev));
    delay += static_cast<Duration>(jitter);
    delay = std::max<Duration>(delay, params_.base_latency / 2);
  }
  if (params_.loss_probability > 0.0 &&
      rng.next_double() < params_.loss_probability) {
    if (!params_.reliable) {
      ++lost_;
      return kPacketLost;
    }
    // Reliable link: model one retransmission timeout.
    delay += params_.base_latency * 2;
  }

  if (params_.ordered) {
    const TimePoint delivery = std::max(now + delay, last_delivery_);
    last_delivery_ = delivery;
    return delivery - now;
  }
  return delay;
}

}  // namespace et::transport
