#include "src/transport/wire_framing.h"

#include <string>

namespace et::transport {

std::array<std::uint8_t, 4> frame_header(std::uint32_t len) {
  return {static_cast<std::uint8_t>(len >> 24),
          static_cast<std::uint8_t>(len >> 16),
          static_cast<std::uint8_t>(len >> 8), static_cast<std::uint8_t>(len)};
}

void FrameAssembler::feed(BytesView chunk,
                          const std::function<void(BytesView)>& sink) {
  arena_.insert(arena_.end(), chunk.begin(), chunk.end());
  for (;;) {
    const std::size_t avail = arena_.size() - pos_;
    if (avail < 4) break;  // truncated prefix: wait for more stream
    const std::uint32_t len =
        (static_cast<std::uint32_t>(arena_[pos_]) << 24) |
        (static_cast<std::uint32_t>(arena_[pos_ + 1]) << 16) |
        (static_cast<std::uint32_t>(arena_[pos_ + 2]) << 8) |
        static_cast<std::uint32_t>(arena_[pos_ + 3]);
    if (len > max_frame_) {
      throw SerializeError("framed length " + std::to_string(len) +
                           " exceeds max frame " + std::to_string(max_frame_));
    }
    if (avail - 4 < len) break;  // frame split across reads: keep buffering
    const std::size_t body = pos_ + 4;
    pos_ = body + len;
    sink(BytesView(arena_).subspan(body, len));
    // `sink` may have appended nothing — but it must not touch the arena;
    // re-read size each iteration anyway for clarity.
  }
  // Compact once per feed so a long session cannot grow the arena without
  // bound; memmove of the (usually tiny) partial tail, not per-frame.
  if (pos_ == arena_.size()) {
    arena_.clear();
    pos_ = 0;
  } else if (pos_ > 0) {
    arena_.erase(arena_.begin(),
                 arena_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace et::transport
