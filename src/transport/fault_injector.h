// Backend-agnostic fault plan for chaos testing the transport.
//
// The paper's system exists to report *availability*, so the reproduction
// must be able to take availability away: partitions, flapping links,
// packet corruption and node crashes. A `FaultInjector` holds the active
// fault plan for one backend; both `VirtualTimeNetwork` and
// `RealTimeNetwork` consult it on every send (drop / duplicate / corrupt)
// and again at delivery time (so a partition that starts while a packet is
// in flight still swallows it, like a cable pulled mid-transfer).
//
// Semantics are deliberately those of a real network, not an RPC stack:
// every injected fault is a *silent* drop — `send` still returns OK. Only
// an explicit `NetworkBackend::unlink` produces kUnavailable, because that
// models the peer actively tearing the connection down. Brokers rely on
// this distinction: kUnavailable triggers the client-unreachable teardown
// path, whereas a partitioned entity must be detected by missed pings.
//
// Determinism: all probabilistic decisions draw from the injector's own
// seeded Rng, and the Rng is consulted only for pairs that actually have a
// probabilistic fault configured, so arming a fault on link A↔B never
// perturbs the delay sampling of unrelated links. On VirtualTimeNetwork
// the same seed + the same fault schedule replays bit-for-bit.
//
// Thread-safety: all methods are safe from any thread (internal mutex).
// On RealTimeNetwork the backends call judge()/cut() while holding their
// link mutex; the lock order is always backend mutex -> injector mutex and
// the injector never calls back into the backend, so no cycle exists.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/random.h"

namespace et::transport {

using NodeId = std::uint32_t;  // mirrors network.h (kept header-cycle-free)
using SharedPayload = std::shared_ptr<const Bytes>;  // mirrors network.h

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x6661756C74u);

  /// Re-seeds the fault Rng (backends forward their own seed so one seed
  /// value reproduces the whole run, faults included).
  void reseed(std::uint64_t seed);

  // --- fault plan -------------------------------------------------------

  /// Splits the node set into isolated groups: packets crossing group
  /// boundaries are dropped both at send and at delivery (in-flight).
  /// Nodes not mentioned in any group are unrestricted: they reach every
  /// group (think brokers partitioned while their clients and the TDN
  /// keep their direct links). Replaces any previous partition.
  ///
  /// A single group isolates it from the rest of the network: packets
  /// between a listed and an unlisted node are dropped, listed-to-listed
  /// and unlisted-to-unlisted traffic flows. (Historically a one-group
  /// partition was a silent no-op — there was no boundary for
  /// listed-to-listed pairs to cross — which every caller that wanted
  /// isolation had to work around with crash().)
  void partition(std::vector<std::vector<NodeId>> groups);

  /// Convenience for the one-group case: cuts `nodes` off from every
  /// unlisted node while they keep reaching each other. Equivalent to
  /// partition({nodes}).
  void isolate(std::vector<NodeId> nodes);

  /// Removes the partition (only); per-link faults and crashes persist.
  void heal();

  /// Drops every packet between `a` and `b` (both directions) until
  /// restore(). The link itself stays up — `linked()` still reports true.
  void blackhole(NodeId a, NodeId b);

  /// Periodically blackholes a<->b: down for `down_for`, then up for
  /// `up_for`, phase-aligned to `start`. Before `start` the link is up.
  void flap(NodeId a, NodeId b, Duration down_for, Duration up_for,
            TimePoint start);

  /// Drops the next `n` packets between `a` and `b` (either direction).
  void drop_next(NodeId a, NodeId b, int n);

  /// Each a<->b packet is delivered twice with probability `p`.
  void duplicate_probability(NodeId a, NodeId b, double p);

  /// Each a<->b packet has its payload corrupted with probability `p`
  /// (1-4 byte flips; the payload is guaranteed to differ from the
  /// original). Wire decoders must reject, not crash.
  void corrupt_probability(NodeId a, NodeId b, double p);

  /// Clears every per-link fault on a<->b (blackhole, flap, burst,
  /// duplicate and corrupt probabilities).
  void restore(NodeId a, NodeId b);

  /// Isolates `node` entirely: every packet to or from it is dropped.
  /// Models a frozen/killed process whose host stays routable — timers and
  /// object state survive, so restart() resumes the node where it was.
  void crash(NodeId node);

  /// Reconnects a crashed node.
  void restart(NodeId node);

  [[nodiscard]] bool crashed(NodeId node) const;

  /// Removes every fault (partition, crashes, per-link faults).
  void clear();

  // --- backend hooks ----------------------------------------------------

  /// Cheap pre-check: false while no fault is configured, letting the
  /// backends skip the injector mutex entirely on the happy path.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_acquire);
  }

  struct Verdict {
    bool deliver = true;    // false: silently drop (send still returns OK)
    bool duplicate = false; // deliver a second, independently-delayed copy
  };

  /// Send-time decision for one packet; may mutate `payload` (corruption)
  /// and consumes Rng only for pairs with probabilistic faults configured.
  Verdict judge(NodeId from, NodeId to, TimePoint now, Bytes& payload);

  /// Shared-payload variant: the buffer behind `payload` is never mutated
  /// in place — when corruption fires, the pointer is swapped for a
  /// mutated private copy, so other deliveries sharing the original frame
  /// still see pristine bytes (copy-on-corrupt).
  Verdict judge(NodeId from, NodeId to, TimePoint now, SharedPayload& payload);

  /// Delivery-time re-check: true when the packet must be swallowed
  /// because a partition/blackhole/flap/crash now separates the pair.
  [[nodiscard]] bool cut(NodeId from, NodeId to, TimePoint now) const;

  struct Stats {
    std::uint64_t dropped = 0;     // send-time injected drops
    std::uint64_t duplicated = 0;  // extra copies scheduled
    std::uint64_t corrupted = 0;   // payloads mutated
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct PairFault {
    bool blackholed = false;
    Duration flap_down = 0;
    Duration flap_up = 0;
    TimePoint flap_start = 0;
    int drop_burst = 0;
    double duplicate_p = 0.0;
    double corrupt_p = 0.0;

    [[nodiscard]] bool empty() const {
      return !blackholed && flap_down == 0 && drop_burst == 0 &&
             duplicate_p == 0.0 && corrupt_p == 0.0;
    }
  };

  /// Undirected pair key: faults apply to both directions.
  static std::uint64_t pair_key(NodeId a, NodeId b) {
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  [[nodiscard]] bool cut_locked(NodeId from, NodeId to, TimePoint now) const;
  void rearm_locked();
  PairFault& pair_locked(NodeId a, NodeId b);
  void corrupt_locked(Bytes& payload);

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  Rng rng_;
  bool partitioned_ = false;
  /// Single-group partitions isolate: the boundary runs between listed
  /// and unlisted nodes instead of between groups.
  bool single_group_ = false;
  std::unordered_map<NodeId, std::uint32_t> group_;  // node -> group index
  std::unordered_set<NodeId> crashed_;
  std::unordered_map<std::uint64_t, PairFault> pairs_;
  Stats stats_;
};

}  // namespace et::transport
