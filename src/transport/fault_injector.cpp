#include "src/transport/fault_injector.h"

namespace et::transport {

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::reseed(std::uint64_t seed) {
  std::lock_guard lock(mu_);
  rng_ = Rng(seed);
}

void FaultInjector::partition(std::vector<std::vector<NodeId>> groups) {
  std::lock_guard lock(mu_);
  group_.clear();
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g]) group_[n] = g;
  }
  partitioned_ = !group_.empty();
  single_group_ = groups.size() == 1 && partitioned_;
  rearm_locked();
}

void FaultInjector::isolate(std::vector<NodeId> nodes) {
  partition({std::move(nodes)});
}

void FaultInjector::heal() {
  std::lock_guard lock(mu_);
  group_.clear();
  partitioned_ = false;
  single_group_ = false;
  rearm_locked();
}

FaultInjector::PairFault& FaultInjector::pair_locked(NodeId a, NodeId b) {
  return pairs_[pair_key(a, b)];
}

void FaultInjector::blackhole(NodeId a, NodeId b) {
  std::lock_guard lock(mu_);
  pair_locked(a, b).blackholed = true;
  rearm_locked();
}

void FaultInjector::flap(NodeId a, NodeId b, Duration down_for,
                         Duration up_for, TimePoint start) {
  std::lock_guard lock(mu_);
  PairFault& f = pair_locked(a, b);
  f.flap_down = down_for;
  f.flap_up = up_for;
  f.flap_start = start;
  rearm_locked();
}

void FaultInjector::drop_next(NodeId a, NodeId b, int n) {
  std::lock_guard lock(mu_);
  pair_locked(a, b).drop_burst += n;
  rearm_locked();
}

void FaultInjector::duplicate_probability(NodeId a, NodeId b, double p) {
  std::lock_guard lock(mu_);
  pair_locked(a, b).duplicate_p = p;
  rearm_locked();
}

void FaultInjector::corrupt_probability(NodeId a, NodeId b, double p) {
  std::lock_guard lock(mu_);
  pair_locked(a, b).corrupt_p = p;
  rearm_locked();
}

void FaultInjector::restore(NodeId a, NodeId b) {
  std::lock_guard lock(mu_);
  pairs_.erase(pair_key(a, b));
  rearm_locked();
}

void FaultInjector::crash(NodeId node) {
  std::lock_guard lock(mu_);
  crashed_.insert(node);
  rearm_locked();
}

void FaultInjector::restart(NodeId node) {
  std::lock_guard lock(mu_);
  crashed_.erase(node);
  rearm_locked();
}

bool FaultInjector::crashed(NodeId node) const {
  std::lock_guard lock(mu_);
  return crashed_.contains(node);
}

void FaultInjector::clear() {
  std::lock_guard lock(mu_);
  group_.clear();
  partitioned_ = false;
  crashed_.clear();
  pairs_.clear();
  rearm_locked();
}

void FaultInjector::rearm_locked() {
  bool armed = partitioned_ || !crashed_.empty();
  if (!armed) {
    for (const auto& [key, f] : pairs_) {
      if (!f.empty()) {
        armed = true;
        break;
      }
    }
  }
  armed_.store(armed, std::memory_order_release);
}

bool FaultInjector::cut_locked(NodeId from, NodeId to, TimePoint now) const {
  if (crashed_.contains(from) || crashed_.contains(to)) return true;
  if (partitioned_) {
    const auto a = group_.find(from);
    const auto b = group_.find(to);
    if (single_group_) {
      // Isolation: the boundary runs between the listed set and the rest
      // of the network.
      if ((a == group_.end()) != (b == group_.end())) return true;
    } else if (a != group_.end() && b != group_.end() &&
               a->second != b->second) {
      // Unlisted nodes are unrestricted; only listed-to-listed pairs in
      // different groups are severed.
      return true;
    }
  }
  const auto it = pairs_.find(pair_key(from, to));
  if (it != pairs_.end()) {
    const PairFault& f = it->second;
    if (f.blackholed) return true;
    if (f.flap_down > 0 && now >= f.flap_start) {
      const Duration period = f.flap_down + f.flap_up;
      if (period == 0 || (now - f.flap_start) % period < f.flap_down) {
        return true;
      }
    }
  }
  return false;
}

bool FaultInjector::cut(NodeId from, NodeId to, TimePoint now) const {
  std::lock_guard lock(mu_);
  return cut_locked(from, to, now);
}

void FaultInjector::corrupt_locked(Bytes& payload) {
  // Flip 1-4 consecutive (hence distinct) bytes, each XORed with a
  // non-zero mask, so the payload is guaranteed to differ.
  std::size_t flips = 1 + rng_.next_below(4);
  if (flips > payload.size()) flips = payload.size();
  const std::size_t base = rng_.next_below(payload.size());
  for (std::size_t i = 0; i < flips; ++i) {
    payload[(base + i) % payload.size()] ^=
        static_cast<std::uint8_t>(1 + rng_.next_below(255));
  }
  ++stats_.corrupted;
}

FaultInjector::Verdict FaultInjector::judge(NodeId from, NodeId to,
                                            TimePoint now, Bytes& payload) {
  std::lock_guard lock(mu_);
  Verdict v;
  if (cut_locked(from, to, now)) {
    ++stats_.dropped;
    v.deliver = false;
    return v;
  }
  const auto it = pairs_.find(pair_key(from, to));
  if (it == pairs_.end()) return v;
  PairFault& f = it->second;
  if (f.drop_burst > 0) {
    --f.drop_burst;
    ++stats_.dropped;
    v.deliver = false;
    return v;
  }
  if (f.corrupt_p > 0.0 && !payload.empty() &&
      rng_.next_double() < f.corrupt_p) {
    corrupt_locked(payload);
  }
  if (f.duplicate_p > 0.0 && rng_.next_double() < f.duplicate_p) {
    ++stats_.duplicated;
    v.duplicate = true;
  }
  return v;
}

FaultInjector::Verdict FaultInjector::judge(NodeId from, NodeId to,
                                            TimePoint now,
                                            SharedPayload& payload) {
  std::lock_guard lock(mu_);
  Verdict v;
  if (cut_locked(from, to, now)) {
    ++stats_.dropped;
    v.deliver = false;
    return v;
  }
  const auto it = pairs_.find(pair_key(from, to));
  if (it == pairs_.end()) return v;
  PairFault& f = it->second;
  if (f.drop_burst > 0) {
    --f.drop_burst;
    ++stats_.dropped;
    v.deliver = false;
    return v;
  }
  if (f.corrupt_p > 0.0 && payload && !payload->empty() &&
      rng_.next_double() < f.corrupt_p) {
    // Copy-on-corrupt: fan-out siblings sharing the frame stay pristine.
    auto mutated = std::make_shared<Bytes>(*payload);
    corrupt_locked(*mutated);
    payload = std::move(mutated);
  }
  if (f.duplicate_p > 0.0 && rng_.next_double() < f.duplicate_p) {
    ++stats_.duplicated;
    v.duplicate = true;
  }
  return v;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace et::transport
