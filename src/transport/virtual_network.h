// Deterministic discrete-event NetworkBackend.
//
// Single-threaded: `run_until_idle` / `run_for` pop events in (time, seq)
// order and execute them; simulated time jumps between events. Identical
// seeds produce identical executions, which the property tests rely on.
// Scales to thousands of nodes (no threads), powering the message-count
// experiments (E7/E8 in DESIGN.md) that go beyond the paper's testbed.
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/transport/network.h"

namespace et::transport {

class VirtualTimeNetwork final : public NetworkBackend {
 public:
  /// `seed` drives link jitter/loss sampling.
  explicit VirtualTimeNetwork(std::uint64_t seed = 42);

  NodeId add_node(std::string name, PacketHandler handler) override;
  void link(NodeId a, NodeId b, const LinkParams& params) override;
  void unlink(NodeId a, NodeId b) override;
  void detach(NodeId node) override;
  using NetworkBackend::send;
  Status send(NodeId from, NodeId to, SharedPayload payload) override;
  void post(NodeId node, Task task) override;
  TimerId schedule(NodeId node, Duration delay, Task task) override;
  void cancel(TimerId id) override;
  [[nodiscard]] TimePoint now() const override { return clock_.now(); }
  /// Single-threaded simulation: callers must not thread; inherits the
  /// base's `concurrent_dispatch() == false`, which brokers use to clamp
  /// match_threads to 0 and keep runs bit-for-bit deterministic.
  [[nodiscard]] bool linked(NodeId a, NodeId b) const override;
  [[nodiscard]] std::string node_name(NodeId id) const override;

  // --- simulation control -------------------------------------------------

  /// Processes events until the queue is empty. Returns events executed.
  std::size_t run_until_idle();

  /// Processes events with timestamp < now()+d, then sets time to now()+d.
  std::size_t run_for(Duration d);

  /// Processes exactly one event if available; returns false when idle.
  bool step();

  /// Total packets delivered (excludes drops).
  [[nodiscard]] std::uint64_t packets_delivered() const { return delivered_; }
  /// Total packets handed to send() (includes later drops).
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  /// Total packets lost on unreliable links.
  [[nodiscard]] std::uint64_t packets_lost() const { return lost_; }
  /// Sum of payload bytes handed to send().
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Node {
    std::string name;
    PacketHandler handler;
  };
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    TimerId timer_id;   // 0 when not cancellable
    Task task;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap
      return a.seq > b.seq;
    }
  };
  using LinkKey = std::uint64_t;
  static LinkKey key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void push_event(TimePoint at, TimerId timer_id, Task task);

  ManualClock clock_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::unordered_map<LinkKey, LinkState> links_;  // directed
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_map<TimerId, bool> cancelled_;  // sparse tombstones
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_ = 1;
  std::uint64_t delivered_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace et::transport
