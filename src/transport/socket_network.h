// Real-socket NetworkBackend: nonblocking TCP multiplexed on one epoll loop.
//
// The third backend (network.h): where VirtualTimeNetwork simulates and
// RealTimeNetwork thread-switches in-process, SocketNetwork pushes every
// frame through the kernel's TCP stack — length-prefixed framing with
// partial-read reassembly (wire_framing.h), per-peer write queues flushed
// with scatter-gather sendmsg, and timers multiplexed on the same loop via
// a timerfd. This is the backend the honest wire throughput/latency
// numbers come from (EXPERIMENTS.md E15), and the one that deploys a
// pubsub::Topology as separate processes: each process runs its own
// SocketNetwork, names remote peers with `add_remote`, and connections
// carry a small hello frame so the acceptor learns which node pair a
// socket serves.
//
// Threading model: ONE event-loop thread owns every socket, connection
// and write queue; no other thread ever touches an fd. Public entry
// points (`send`, `post`, `schedule`, topology mutation) stage work under
// a mutex and wake the loop through an eventfd, so all of them are safe
// from any thread (`concurrent_dispatch() == true`). Node handlers run on
// the loop thread, which trivially serializes them — the actor contract —
// at the cost that a handler that blocks stalls every node in this
// process (handlers here parse-and-return; heavy work goes to worker
// pools that `post` results back).
//
// Link model parity: `link` takes the same LinkParams as the simulated
// backends. Sends are held in a delayed-release queue for the sampled
// link latency before being written to the socket, and both the release
// point and the receive path re-check the link and the fault plan — so
// `unlink` drops in-flight frames and a partition that starts mid-flight
// swallows packets exactly as on the other two backends, and the whole
// fault-injector matrix (loss, corruption, partitions) applies unchanged.
// Corruption is injected at the framing layer: the mutated bytes really
// cross the socket, exercising the decoder against corrupted streams.
#pragma once

#include <netinet/in.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/transport/network.h"
#include "src/transport/wire_framing.h"

namespace et::transport {

class SocketNetwork final : public NetworkBackend {
 public:
  /// Opens a loopback listener on an ephemeral port (port 0) or a fixed
  /// one (multi-process wiring) and starts the event loop. `seed` drives
  /// link delay sampling and the fault injector, like the other backends.
  explicit SocketNetwork(std::uint64_t seed = 42, std::uint16_t port = 0);
  ~SocketNetwork() override;

  SocketNetwork(const SocketNetwork&) = delete;
  SocketNetwork& operator=(const SocketNetwork&) = delete;

  NodeId add_node(std::string name, PacketHandler handler) override;

  /// Registers a node living in another process, reachable at host:port
  /// (its SocketNetwork's listener). Sends to it dial out lazily on first
  /// release. Node names must be globally unique across the deployment.
  NodeId add_remote(std::string name, const std::string& host,
                    std::uint16_t port);

  /// Registers a remote node with no dialable address: the peer is
  /// expected to dial US (its `link` names this process's listener). Use
  /// on the passive side of a cross-process link.
  NodeId add_remote(std::string name);

  /// Eagerly dials the connection for (from, to) instead of waiting for
  /// the first frame. Lets a process that has nothing to say yet announce
  /// itself, so the passive side can flush any interest it parked for us.
  /// No-op when the pair is already connected or `to` is passive.
  void connect_peer(NodeId from, NodeId to);

  void link(NodeId a, NodeId b, const LinkParams& params) override;
  void unlink(NodeId a, NodeId b) override;
  void detach(NodeId node) override;
  using NetworkBackend::send;
  Status send(NodeId from, NodeId to, SharedPayload payload) override;
  void post(NodeId node, Task task) override;
  TimerId schedule(NodeId node, Duration delay, Task task) override;
  void cancel(TimerId id) override;
  [[nodiscard]] TimePoint now() const override { return clock_.now(); }
  /// send/post/schedule are thread-safe; brokers may run match pools.
  [[nodiscard]] bool concurrent_dispatch() const override { return true; }
  [[nodiscard]] bool linked(NodeId a, NodeId b) const override;
  [[nodiscard]] std::string node_name(NodeId id) const override;

  /// Actual TCP port the listener bound (for multi-process wiring when
  /// constructed with port 0).
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  /// Coarse quiescence helper (tests): blocks until no timer is due
  /// within `grace`, no frame is queued unwritten, and the loop has been
  /// observed idle. Cannot see the kernel's socket buffers, so a frame
  /// already written but not yet read extends the wait only via the
  /// double-check delay.
  void drain(Duration grace = 50 * kMillisecond);

  /// Stops the loop thread and closes every socket. Call BEFORE
  /// destroying objects whose handlers are registered here. Idempotent;
  /// the destructor calls it too.
  void stop();

  /// Frames handed to send() (including later drops).
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_.load(); }
  /// Frames delivered to a local handler.
  [[nodiscard]] std::uint64_t packets_delivered() const {
    return delivered_.load();
  }
  /// Sum of payload bytes handed to send().
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_.load(); }

 private:
  struct Node {
    std::string name;
    PacketHandler handler;  // null for remote nodes
    bool remote = false;
    bool has_addr = false;
    sockaddr_in addr{};
  };

  /// One frame queued on a connection: 4-byte header + shared body,
  /// written with scatter-gather so the payload is never copied into a
  /// contiguous send buffer. `off` advances through header-then-body.
  struct OutFrame {
    std::array<std::uint8_t, 4> hdr;
    SharedPayload body;
    std::size_t off = 0;
  };

  struct Conn {
    int fd = -1;
    NodeId local = kInvalidNode;  // node this end sends from / delivers to
    NodeId peer = kInvalidNode;
    bool peer_known = false;   // acceptor side: set once the hello arrives
    bool connecting = false;   // nonblocking connect() still in progress
    bool want_write = false;   // EPOLLOUT armed
    bool dead = false;         // deferred close (fd-reuse safety)
    FrameAssembler assembler;
    std::deque<OutFrame> outq;
  };

  struct TimedTask {
    TimePoint at;
    std::uint64_t seq;
    TimerId timer_id;
    std::shared_ptr<Task> task;
  };
  struct TimedOrder {
    bool operator()(const TimedTask& a, const TimedTask& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  using LinkKey = std::uint64_t;
  static LinkKey key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  NodeId register_node_locked(Node node);
  /// Pushes a loop-thread task (timer at `at`) and wakes the loop.
  void push_timer(TimePoint at, TimerId id, Task task);
  void wake();

  // --- loop-thread-only machinery ---------------------------------------
  void loop();
  void handle_event(std::uint32_t events, int fd);
  void accept_ready();
  void conn_readable(Conn* c);
  void conn_writable(Conn* c);
  void on_frame(Conn* c, BytesView frame);
  void handle_hello(Conn* c, BytesView frame);
  /// Latency-release point: re-checks link + fault plan, then queues the
  /// frame on the pair's connection (dialing lazily if needed).
  void queue_frame(NodeId from, NodeId to, SharedPayload payload);
  Conn* ensure_conn(NodeId from, NodeId to);
  Conn* dial(NodeId from, NodeId to, const sockaddr_in& addr);
  void flush(Conn* c);
  void update_interest(Conn* c);
  void close_conn(Conn* c);  // defers ::close to end of event batch
  void reap_doomed();
  void arm_timerfd(TimePoint next);

  SystemClock clock_;

  mutable std::mutex mu_;
  Rng rng_;  // guarded by mu_
  std::vector<Node> nodes_;
  std::unordered_map<std::string, NodeId> names_;
  std::unordered_map<LinkKey, LinkState> links_;  // directed
  std::priority_queue<TimedTask, std::vector<TimedTask>, TimedOrder> timers_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_ = 1;
  bool stopping_ = false;

  /// Nonzero while the loop runs timers, commands or socket events —
  /// drain() must not report idle then.
  std::atomic<int> dispatching_{0};
  /// Frames queued on a connection but not yet fully written.
  std::atomic<std::int64_t> pending_out_{0};
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};

  // Loop-thread-only (created before the thread starts, torn down after
  // it joins).
  int epfd_ = -1;
  int wake_fd_ = -1;
  int timer_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::unordered_map<LinkKey, int> pair_conns_;  // directed (from,to) -> fd
  /// Frames for a passive remote that has not dialed in yet, flushed when
  /// its hello lands. Bounded per pair; overflow drops like a lost packet.
  std::unordered_map<LinkKey, std::vector<OutFrame>> parked_;
  std::vector<int> doomed_;
  std::thread loop_thread_;
};

}  // namespace et::transport
