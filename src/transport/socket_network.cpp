#include "src/transport/socket_network.h"

#include <arpa/inet.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "src/common/serialize.h"
#include "src/transport/fault_injector.h"

namespace et::transport {

namespace {

// First frame on every connection: identifies which node pair the socket
// serves. "ETSK" = Entity Tracking SocKet.
constexpr std::array<std::uint8_t, 4> kHelloMagic = {'E', 'T', 'S', 'K'};
constexpr std::uint16_t kHelloVersion = 1;

Bytes encode_hello(const std::string& from, const std::string& to) {
  Writer w;
  w.reserve(4 + 2 + 8 + from.size() + to.size());
  w.raw(BytesView(kHelloMagic));
  w.u16(kHelloVersion);
  w.str(from);
  w.str(to);
  return std::move(w).take();
}

void set_nonblocking_nodelay(int fd) {
  int one = 1;
  // Nagle would batch our small frames behind delayed ACKs; the latency
  // model already decides when bytes hit the wire.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

SocketNetwork::SocketNetwork(std::uint64_t seed, std::uint16_t port)
    : rng_(seed) {
  faults_->reseed(seed ^ 0x9E3779B97F4A7C15ull);

  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (epfd_ < 0 || wake_fd_ < 0 || timer_fd_ < 0 || listen_fd_ < 0) {
    throw std::runtime_error("SocketNetwork: fd setup failed: " +
                             std::string(std::strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    throw std::runtime_error("SocketNetwork: bind/listen failed: " +
                             std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_port_ = ntohs(addr.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.data.fd = timer_fd_;
  (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, timer_fd_, &ev);
  ev.data.fd = listen_fd_;
  (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  loop_thread_ = std::thread([this] { loop(); });
}

SocketNetwork::~SocketNetwork() { stop(); }

void SocketNetwork::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_ && !loop_thread_.joinable()) return;
    stopping_ = true;
  }
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  for (auto& [fd, conn] : conns_) (void)::close(fd);
  conns_.clear();
  pair_conns_.clear();
  for (int fd : doomed_) (void)::close(fd);
  doomed_.clear();
  for (int* fd : {&listen_fd_, &timer_fd_, &wake_fd_, &epfd_}) {
    if (*fd >= 0) {
      (void)::close(*fd);
      *fd = -1;
    }
  }
}

void SocketNetwork::wake() {
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

NodeId SocketNetwork::register_node_locked(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  names_[node.name] = id;
  nodes_.push_back(std::move(node));
  return id;
}

NodeId SocketNetwork::add_node(std::string name, PacketHandler handler) {
  std::lock_guard lock(mu_);
  Node n;
  n.name = std::move(name);
  n.handler = std::move(handler);
  return register_node_locked(std::move(n));
}

NodeId SocketNetwork::add_remote(std::string name, const std::string& host,
                                 std::uint16_t port) {
  std::lock_guard lock(mu_);
  Node n;
  n.name = std::move(name);
  n.remote = true;
  n.has_addr = true;
  n.addr = loopback_addr(port);
  if (::inet_pton(AF_INET, host.c_str(), &n.addr.sin_addr) != 1) {
    throw std::invalid_argument("SocketNetwork::add_remote: bad host " + host);
  }
  return register_node_locked(std::move(n));
}

NodeId SocketNetwork::add_remote(std::string name) {
  std::lock_guard lock(mu_);
  Node n;
  n.name = std::move(name);
  n.remote = true;
  return register_node_locked(std::move(n));
}

void SocketNetwork::link(NodeId a, NodeId b, const LinkParams& params) {
  std::lock_guard lock(mu_);
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) {
    throw std::invalid_argument("SocketNetwork::link: bad node ids");
  }
  // Connections are dialed lazily at the first frame release; link() only
  // records the latency/loss model, mirroring the simulated backends.
  links_.insert_or_assign(key(a, b), LinkState(params));
  links_.insert_or_assign(key(b, a), LinkState(params));
}

void SocketNetwork::unlink(NodeId a, NodeId b) {
  {
    std::lock_guard lock(mu_);
    links_.erase(key(a, b));
    links_.erase(key(b, a));
    if (stopping_) return;
  }
  // Tear the sockets down on the loop thread; frames still queued or in
  // the kernel are dropped, and the receive path's link re-check swallows
  // anything that slips through first.
  push_timer(now(), 0, [this, a, b] {
    for (const LinkKey k : {key(a, b), key(b, a)}) {
      const auto it = pair_conns_.find(k);
      if (it == pair_conns_.end()) continue;
      const auto cit = conns_.find(it->second);
      if (cit != conns_.end()) close_conn(cit->second.get());
    }
  });
}

void SocketNetwork::detach(NodeId node) {
  {
    std::lock_guard lock(mu_);
    if (node >= nodes_.size()) return;
    nodes_[node].handler = [](NodeId, BytesView) {};
  }
  // Wait until the loop is not mid-dispatch so a handler copied before
  // the swap cannot still be running when we return. Must not be called
  // from the loop thread itself (it would self-wait).
  if (std::this_thread::get_id() == loop_thread_.get_id()) return;
  while (dispatching_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

bool SocketNetwork::linked(NodeId a, NodeId b) const {
  std::lock_guard lock(mu_);
  return links_.contains(key(a, b));
}

std::string SocketNetwork::node_name(NodeId id) const {
  std::lock_guard lock(mu_);
  return id < nodes_.size() ? nodes_[id].name : "<invalid>";
}

Status SocketNetwork::send(NodeId from, NodeId to, SharedPayload payload) {
  Duration delay;
  Duration dup_delay = kPacketLost;
  TimePoint sent_at;
  {
    std::lock_guard lock(mu_);
    const auto it = links_.find(key(from, to));
    if (it == links_.end()) {
      return unavailable("no link " + std::to_string(from) + " -> " +
                         std::to_string(to));
    }
    sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(payload->size(), std::memory_order_relaxed);
    sent_at = now();
    if (faults_->armed()) {
      // Silent injected drop: send still returns OK (fault_injector.h).
      // Corruption swaps `payload` for a mutated copy here, before the
      // frame is queued — the corrupted bytes really cross the socket.
      const auto verdict = faults_->judge(from, to, sent_at, payload);
      if (!verdict.deliver) return Status::ok();
      if (verdict.duplicate) {
        dup_delay = it->second.sample_delay(payload->size(), sent_at, rng_);
      }
    }
    delay = it->second.sample_delay(payload->size(), sent_at, rng_);
  }
  if (delay == kPacketLost) return Status::ok();  // modeled loss, like the wire

  // Delayed release: the frame is held for the sampled link latency, then
  // written to the socket — so unlink/partition mid-flight still swallow
  // it, and modeled latency dominates the (much smaller) loopback RTT.
  if (dup_delay != kPacketLost) {
    SharedPayload copy = payload;
    push_timer(sent_at + dup_delay, 0, [this, from, to, copy] {
      queue_frame(from, to, copy);
    });
  }
  push_timer(sent_at + delay, 0,
             [this, from, to, payload] { queue_frame(from, to, payload); });
  return Status::ok();
}

void SocketNetwork::connect_peer(NodeId from, NodeId to) {
  // ensure_conn touches loop-thread-only state; run it there.
  post(from, [this, from, to] { (void)ensure_conn(from, to); });
}

void SocketNetwork::post(NodeId node, Task task) {
  (void)node;  // all node contexts share the loop thread
  push_timer(now(), 0, std::move(task));
}

TimerId SocketNetwork::schedule(NodeId node, Duration delay, Task task) {
  (void)node;
  TimerId id;
  {
    std::lock_guard lock(mu_);
    id = next_timer_++;
  }
  push_timer(now() + delay, id, std::move(task));
  return id;
}

void SocketNetwork::cancel(TimerId id) {
  if (id == 0) return;
  std::lock_guard lock(mu_);
  cancelled_.insert(id);
}

void SocketNetwork::push_timer(TimePoint at, TimerId id, Task task) {
  {
    std::lock_guard lock(mu_);
    timers_.push(
        TimedTask{at, next_seq_++, id, std::make_shared<Task>(std::move(task))});
  }
  wake();
}

// --- event loop -----------------------------------------------------------

void SocketNetwork::arm_timerfd(TimePoint next) {
  itimerspec spec{};
  if (next >= 0) {
    Duration delta = next - now();
    if (delta < 1) delta = 1;  // 0 disarms; fire "immediately" instead
    spec.it_value.tv_sec = delta / kSecond;
    spec.it_value.tv_nsec = (delta % kSecond) * 1000;
  }
  (void)::timerfd_settime(timer_fd_, 0, &spec, nullptr);
}

void SocketNetwork::loop() {
  std::array<epoll_event, 64> events{};
  std::vector<std::shared_ptr<Task>> due;
  for (;;) {
    TimePoint next = -1;
    {
      std::lock_guard lock(mu_);
      if (stopping_) return;
      const TimePoint current = clock_.now();
      while (!timers_.empty() && timers_.top().at <= current) {
        TimedTask t = timers_.top();
        timers_.pop();
        if (t.timer_id != 0) {
          const auto it = cancelled_.find(t.timer_id);
          if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
          }
        }
        due.push_back(std::move(t.task));
      }
      if (!timers_.empty()) next = timers_.top().at;
    }
    if (!due.empty()) {
      dispatching_.fetch_add(1, std::memory_order_acq_rel);
      for (auto& t : due) (*t)();
      reap_doomed();
      dispatching_.fetch_sub(1, std::memory_order_acq_rel);
      due.clear();
      continue;  // tasks may have queued earlier timers or writes
    }
    arm_timerfd(next);
    const int n = ::epoll_wait(epfd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: stop() is tearing us down
    }
    if (n > 0) {
      dispatching_.fetch_add(1, std::memory_order_acq_rel);
      for (int i = 0; i < n; ++i) {
        handle_event(events[static_cast<std::size_t>(i)].events,
                     events[static_cast<std::size_t>(i)].data.fd);
      }
      reap_doomed();
      dispatching_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

void SocketNetwork::handle_event(std::uint32_t ev, int fd) {
  if (fd == wake_fd_) {
    std::uint64_t junk;
    while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
    }
    return;
  }
  if (fd == timer_fd_) {
    std::uint64_t junk;
    while (::read(timer_fd_, &junk, sizeof(junk)) > 0) {
    }
    return;
  }
  if (fd == listen_fd_) {
    accept_ready();
    return;
  }
  const auto it = conns_.find(fd);
  if (it == conns_.end() || it->second->dead) return;
  Conn* c = it->second.get();
  if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(c);
    return;
  }
  if ((ev & EPOLLOUT) != 0) conn_writable(c);
  if (c->dead) return;
  if ((ev & EPOLLIN) != 0) conn_readable(c);
}

void SocketNetwork::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next event
    set_nonblocking_nodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    // Identity arrives with the hello frame; until then the conn only
    // reads.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(fd, std::move(conn));
  }
}

SocketNetwork::Conn* SocketNetwork::dial(NodeId from, NodeId to,
                                         const sockaddr_in& addr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  set_nonblocking_nodelay(fd);
  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    (void)::close(fd);
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  Conn* c = conn.get();
  c->fd = fd;
  c->local = from;
  c->peer = to;
  c->peer_known = true;  // dialer knows both ends
  c->connecting = (rc != 0);
  std::string from_name;
  std::string to_name;
  {
    std::lock_guard lock(mu_);
    from_name = nodes_[from].name;
    to_name = nodes_[to].name;
  }
  Bytes hello = encode_hello(from_name, to_name);
  OutFrame f;
  f.hdr = frame_header(static_cast<std::uint32_t>(hello.size()));
  f.body = share_payload(std::move(hello));
  c->outq.push_back(std::move(f));
  pending_out_.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  c->want_write = true;
  (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  conns_.emplace(fd, std::move(conn));
  pair_conns_.emplace(key(from, to), fd);
  return c;
}

SocketNetwork::Conn* SocketNetwork::ensure_conn(NodeId from, NodeId to) {
  const auto it = pair_conns_.find(key(from, to));
  if (it != pair_conns_.end()) {
    const auto cit = conns_.find(it->second);
    if (cit != conns_.end() && !cit->second->dead) return cit->second.get();
    pair_conns_.erase(it);
  }
  sockaddr_in addr{};
  {
    std::lock_guard lock(mu_);
    if (to >= nodes_.size()) return nullptr;
    const Node& dst = nodes_[to];
    if (!dst.remote) {
      addr = loopback_addr(listen_port_);  // in-process: dial ourselves
    } else if (dst.has_addr) {
      addr = dst.addr;
    } else {
      return nullptr;  // passive remote: it must dial us
    }
  }
  return dial(from, to, addr);
}

void SocketNetwork::queue_frame(NodeId from, NodeId to, SharedPayload payload) {
  {
    std::lock_guard lock(mu_);
    if (!links_.contains(key(from, to))) return;  // unlinked in flight
  }
  if (faults_->armed() && faults_->cut(from, to, now())) return;
  OutFrame f;
  f.hdr = frame_header(static_cast<std::uint32_t>(payload->size()));
  f.body = std::move(payload);
  Conn* c = ensure_conn(from, to);
  if (c == nullptr) {
    // A passive remote we cannot dial: park the frame until its hello
    // lands (control traffic like interest propagation would otherwise be
    // lost forever to a peer that is merely slow to start). Bounded; a
    // genuine dial failure still drops like a lost packet.
    bool passive;
    {
      std::lock_guard lock(mu_);
      passive = to < nodes_.size() && nodes_[to].remote && !nodes_[to].has_addr;
    }
    if (passive) {
      auto& parked = parked_[key(from, to)];
      constexpr std::size_t kMaxParkedPerPeer = 1024;
      if (parked.size() < kMaxParkedPerPeer) parked.push_back(std::move(f));
    }
    return;
  }
  c->outq.push_back(std::move(f));
  pending_out_.fetch_add(1, std::memory_order_relaxed);
  if (!c->connecting) flush(c);
}

void SocketNetwork::flush(Conn* c) {
  while (!c->outq.empty()) {
    std::array<iovec, 32> iov{};
    std::size_t niov = 0;
    for (const OutFrame& f : c->outq) {
      if (niov + 2 > iov.size()) break;
      std::size_t off = f.off;
      if (off < f.hdr.size()) {
        iov[niov].iov_base =
            const_cast<std::uint8_t*>(f.hdr.data()) + off;
        iov[niov].iov_len = f.hdr.size() - off;
        ++niov;
        off = 0;
      } else {
        off -= f.hdr.size();
      }
      if (off < f.body->size()) {
        iov[niov].iov_base = const_cast<std::uint8_t*>(f.body->data()) + off;
        iov[niov].iov_len = f.body->size() - off;
        ++niov;
      }
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(c->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_conn(c);
      return;
    }
    std::size_t written = static_cast<std::size_t>(n);
    while (written > 0 && !c->outq.empty()) {
      OutFrame& f = c->outq.front();
      const std::size_t total = f.hdr.size() + f.body->size();
      const std::size_t rem = total - f.off;
      if (written >= rem) {
        written -= rem;
        c->outq.pop_front();
        pending_out_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        f.off += written;
        written = 0;
      }
    }
  }
  update_interest(c);
}

void SocketNetwork::update_interest(Conn* c) {
  const bool want = !c->outq.empty() || c->connecting;
  if (want == c->want_write) return;
  c->want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = c->fd;
  (void)::epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void SocketNetwork::conn_writable(Conn* c) {
  if (c->connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    (void)::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close_conn(c);
      return;
    }
    c->connecting = false;
  }
  flush(c);
}

void SocketNetwork::conn_readable(Conn* c) {
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::recv(c->fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      try {
        c->assembler.feed(BytesView(buf.data(), static_cast<std::size_t>(n)),
                          [this, c](BytesView frame) { on_frame(c, frame); });
      } catch (const SerializeError&) {
        // Oversized header or malformed hello: the stream lost sync or
        // the peer is misbehaving; there is no way to resynchronize.
        close_conn(c);
        return;
      }
      if (c->dead) return;
      continue;
    }
    if (n == 0) {
      close_conn(c);  // orderly shutdown from the peer
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_conn(c);
    return;
  }
}

void SocketNetwork::on_frame(Conn* c, BytesView frame) {
  if (!c->peer_known) {
    handle_hello(c, frame);  // throws SerializeError on a bad hello
    return;
  }
  const NodeId from = c->peer;
  const NodeId to = c->local;
  PacketHandler handler;
  {
    std::lock_guard lock(mu_);
    // Same delivery-time re-checks as the simulated backends: the link
    // may have been removed or a partition begun while the frame sat in
    // the kernel's buffers.
    if (!links_.contains(key(from, to))) return;
    if (to >= nodes_.size() || !nodes_[to].handler) return;
    handler = nodes_[to].handler;
  }
  if (faults_->armed() && faults_->cut(from, to, now())) return;
  delivered_.fetch_add(1, std::memory_order_relaxed);
  // Zero-copy handoff: `frame` borrows the connection's reassembly arena
  // for the duration of the call (network.h handler contract).
  handler(from, frame);
}

void SocketNetwork::handle_hello(Conn* c, BytesView frame) {
  Reader r(frame);
  const BytesView magic = r.raw_view(4);
  if (!std::equal(magic.begin(), magic.end(), kHelloMagic.begin())) {
    throw SerializeError("socket hello: bad magic");
  }
  if (r.u16() != kHelloVersion) {
    throw SerializeError("socket hello: unsupported version");
  }
  const std::string from_name{r.str()};
  const std::string to_name{r.str()};
  r.expect_done();
  NodeId from;
  NodeId to;
  {
    std::lock_guard lock(mu_);
    const auto tit = names_.find(to_name);
    if (tit == names_.end() || nodes_[tit->second].remote) {
      throw SerializeError("socket hello: unknown local node " + to_name);
    }
    to = tit->second;
    const auto fit = names_.find(from_name);
    if (fit != names_.end()) {
      from = fit->second;
    } else {
      // First contact from an unannounced process: auto-register so the
      // handler sees a stable NodeId and node_name() resolves.
      Node n;
      n.name = from_name;
      n.remote = true;
      from = register_node_locked(std::move(n));
    }
  }
  c->local = to;
  c->peer = from;
  c->peer_known = true;
  // Replies to the dialer reuse this socket (first conn for a pair wins).
  pair_conns_.emplace(key(to, from), c->fd);
  // Frames parked while this peer was passive-and-unconnected go out now.
  if (const auto pit = parked_.find(key(to, from)); pit != parked_.end()) {
    for (OutFrame& f : pit->second) {
      c->outq.push_back(std::move(f));
      pending_out_.fetch_add(1, std::memory_order_relaxed);
    }
    parked_.erase(pit);
    flush(c);
  }
}

void SocketNetwork::close_conn(Conn* c) {
  if (c->dead) return;
  c->dead = true;
  pending_out_.fetch_sub(static_cast<std::int64_t>(c->outq.size()),
                         std::memory_order_relaxed);
  c->outq.clear();
  for (auto it = pair_conns_.begin(); it != pair_conns_.end();) {
    it = it->second == c->fd ? pair_conns_.erase(it) : std::next(it);
  }
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd, nullptr);
  // Defer ::close to the end of the event batch so a stale event in the
  // same epoll_wait return cannot hit a recycled fd.
  doomed_.push_back(c->fd);
}

void SocketNetwork::reap_doomed() {
  for (const int fd : doomed_) {
    (void)::close(fd);
    conns_.erase(fd);
  }
  doomed_.clear();
}

void SocketNetwork::drain(Duration grace) {
  const auto quiet = [&] {
    if (dispatching_.load(std::memory_order_acquire) != 0) return false;
    if (pending_out_.load(std::memory_order_acquire) != 0) return false;
    std::lock_guard lock(mu_);
    return timers_.empty() || timers_.top().at > clock_.now() + grace;
  };
  for (;;) {
    if (quiet()) {
      // Frames already written may still sit in the kernel's loopback
      // buffer; give the receive path a beat, then confirm.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (quiet()) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace et::transport
