// Link model: latency, jitter, loss, ordering and bandwidth.
//
// The paper's brokers were "hosted on a 100 Mbps LAN" with "per-hop
// communications latency around 1-2 milliseconds in cluster settings"
// (§6.1). A `LinkParams` captures one directed link's behaviour; the
// `tcp_profile()` / `udp_profile()` constructors mirror the two transports
// the paper benchmarks:
//   * TCP-like — reliable and ordered; losses surface as retransmission
//     latency rather than drops; slightly higher base latency.
//   * UDP-like — unreliable and unordered; packets may be dropped or
//     reordered by jitter; slightly lower base latency.
#pragma once

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/random.h"

namespace et::transport {

/// Behavioural parameters for a directed link.
struct LinkParams {
  /// Fixed one-way propagation delay.
  Duration base_latency = 1500 * kMicrosecond;
  /// Gaussian jitter stddev added to each packet's delay (clamped >= 0).
  Duration jitter_stddev = 120 * kMicrosecond;
  /// Probability a packet is lost (unreliable links only).
  double loss_probability = 0.0;
  /// Reliable links never drop; a "lost" packet instead costs an extra
  /// retransmission delay (latency doubles for that packet).
  bool reliable = true;
  /// Ordered links deliver FIFO per direction (delivery times are clamped
  /// to be non-decreasing). Unordered links may reorder under jitter.
  bool ordered = true;
  /// Throughput model: transmission delay = bytes / bytes_per_us.
  /// 100 Mbps = 12.5 bytes/us. Zero disables the bandwidth term.
  double bytes_per_us = 12.5;

  /// Paper-faithful TCP-like profile (1.5 ms/hop nominal).
  static LinkParams tcp_profile();
  /// Paper-faithful UDP-like profile (slightly faster, 0.5% loss).
  static LinkParams udp_profile();
  /// Zero-latency lossless profile for logic-only unit tests.
  static LinkParams ideal_profile();
};

/// Per-direction mutable link state: computes each packet's delivery delay.
class LinkState {
 public:
  explicit LinkState(LinkParams params) : params_(params) {}

  /// Samples the delay for a packet of `size` bytes sent at `now`.
  /// Returns a negative duration when the packet is lost (unreliable link).
  [[nodiscard]] Duration sample_delay(std::size_t size, TimePoint now,
                                      Rng& rng);

  [[nodiscard]] const LinkParams& params() const { return params_; }

  /// Running delivery statistics (used by NETWORK_METRICS traces).
  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_lost() const { return lost_; }

 private:
  LinkParams params_;
  TimePoint last_delivery_ = 0;  // FIFO clamp for ordered links
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
};

/// Sentinel returned by LinkState::sample_delay for dropped packets.
constexpr Duration kPacketLost = -1;

}  // namespace et::transport
