// The transport-independence boundary.
//
// "Entities do not have to deal with the complexity of the underlying
// transports" (paper §1, characteristic 2). Everything above this layer —
// brokers, TDNs, traced entities, trackers — talks to a `NetworkBackend`
// and never to sockets or event queues directly. Two interchangeable
// backends exist:
//
//   * RealTimeNetwork — every node gets an executor thread (actor model);
//     a timer thread delivers packets after their sampled link delay. Used
//     by the latency benchmarks, which measure wall-clock time.
//   * VirtualTimeNetwork — single-threaded deterministic discrete-event
//     simulation; time advances only through the event queue. Used by unit
//     tests, property tests and large-scale message-count experiments.
//   * SocketNetwork — real nonblocking TCP over OS sockets with an epoll
//     readiness loop (socket_network.h); the backend the honest wire
//     throughput/latency numbers come from, deployable multi-process.
//
// Payload ownership: `send` takes a `std::shared_ptr<const Bytes>` so one
// serialized frame can fan out to N destinations without N deep copies —
// backends hold a reference per in-flight delivery instead of a buffer.
// Handlers receive a `BytesView` borrowed for the duration of the call
// (the view points into the backend's delivery buffer or receive arena);
// a handler that needs the bytes past its return must copy them.
//
// Nodes are actors: every handler and timer callback for a node runs in
// that node's execution context, serialized — node-local state needs no
// locking.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/transport/link.h"

namespace et::transport {

class FaultInjector;

/// Opaque node handle assigned by the backend.
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Invoked in the destination node's context when a packet arrives. The
/// payload view is valid only for the duration of the call.
using PacketHandler = std::function<void(NodeId from, BytesView payload)>;

/// Immutable wire payload shared across fan-out sends and in-flight
/// duplicates.
using SharedPayload = std::shared_ptr<const Bytes>;

/// Wraps an owning buffer for the shared-payload send path.
inline SharedPayload share_payload(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

/// Deferred work in a node's context.
using Task = std::function<void()>;

/// Cancellation handle for a scheduled timer. 0 is "none".
using TimerId = std::uint64_t;

/// Abstract message-passing substrate. Thread-safety: `send`, `post` and
/// `schedule` may be called from any node context; topology mutation
/// (`add_node`, `link`) must happen before traffic starts.
class NetworkBackend {
 public:
  NetworkBackend();
  virtual ~NetworkBackend();

  /// Registers a node; `handler` runs in the node's context per packet.
  virtual NodeId add_node(std::string name, PacketHandler handler) = 0;

  /// Creates a bidirectional link with symmetric parameters.
  virtual void link(NodeId a, NodeId b, const LinkParams& params) = 0;

  /// Removes the link (models a disconnect); in-flight packets are dropped.
  virtual void unlink(NodeId a, NodeId b) = 0;

  /// Replaces `node`'s packet handler with a no-op. Actors call this from
  /// their destructors so packets still in flight cannot invoke a dangling
  /// callback. (Timers the actor scheduled must be cancelled separately.)
  virtual void detach(NodeId node) = 0;

  /// Sends a packet along an existing link. Unlinked destinations return
  /// kUnavailable. Loss on unreliable links is silent (returns OK). The
  /// payload is shared, not copied: callers fanning one frame out to many
  /// destinations serialize once and pass the same pointer to each send.
  /// Backends never mutate the buffer (injected corruption copies first).
  virtual Status send(NodeId from, NodeId to, SharedPayload payload) = 0;

  /// Owning-buffer convenience over the shared-payload path.
  Status send(NodeId from, NodeId to, Bytes payload) {
    return send(from, to, share_payload(std::move(payload)));
  }

  /// Runs `task` in `node`'s context as soon as possible.
  virtual void post(NodeId node, Task task) = 0;

  /// Runs `task` in `node`'s context after `delay`. Returns a cancellable
  /// timer id.
  virtual TimerId schedule(NodeId node, Duration delay, Task task) = 0;

  /// Best-effort timer cancellation (a timer already fired is a no-op).
  virtual void cancel(TimerId id) = 0;

  /// Current time on this backend's clock.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// True when this backend runs node contexts on real threads and its
  /// `send`/`post`/`schedule` entry points are safe from any thread —
  /// i.e. callers may stand up their own worker threads and post results
  /// back into a node's context. Brokers consult this before enabling
  /// their match worker pool (Broker::Options::match_threads); the
  /// single-threaded VirtualTimeNetwork reports false so deterministic
  /// simulations can never be perturbed by caller-side threading.
  [[nodiscard]] virtual bool concurrent_dispatch() const { return false; }

  /// True when the two nodes are directly linked.
  [[nodiscard]] virtual bool linked(NodeId a, NodeId b) const = 0;

  /// Human-readable node name (diagnostics).
  [[nodiscard]] virtual std::string node_name(NodeId id) const = 0;

  /// The backend's fault plan (chaos testing). Both backends consult it on
  /// every send and delivery; see fault_injector.h for semantics. Safe to
  /// mutate from any thread at any time.
  [[nodiscard]] FaultInjector& faults() { return *faults_; }
  [[nodiscard]] const FaultInjector& faults() const { return *faults_; }

 protected:
  std::shared_ptr<FaultInjector> faults_;
};

}  // namespace et::transport
