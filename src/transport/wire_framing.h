// Length-prefixed stream framing for the socket transport.
//
// TCP is a byte stream: one `write` on the sender can surface as several
// `read`s on the receiver (and vice versa), so the socket backend brackets
// every frame with a 4-byte big-endian length prefix. `FrameAssembler`
// performs the inverse — it accepts arbitrary stream fragments and emits
// complete frames — and is deliberately socket-free so the codec-edge
// tests (truncated prefix, frames split at every byte boundary, overlong
// declared lengths, injected corruption) can drive it directly under
// AddressSanitizer without opening a single fd.
//
// Safety contract: a malformed stream NEVER crashes or over-reads. A
// declared length above `max_frame` throws SerializeError, which the
// socket backend treats as a poisoned connection (close it; the peer is
// misbehaving or the stream lost sync — there is no way to resynchronize
// a length-prefixed stream after a bad header).
//
// Frames emitted by `feed` are views into the assembler's internal
// reassembly arena, valid only during the sink callback — the zero-copy
// handoff the packet-handler API (network.h) is specified around.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "src/common/bytes.h"
#include "src/common/serialize.h"

namespace et::transport {

/// Upper bound on one framed payload. Matches the spirit of the Reader's
/// per-field sanity cap: nothing in this system sends frames this large;
/// a bigger header is corruption, an attack, or lost stream sync.
constexpr std::uint32_t kMaxWireFrame = 64u * 1024u * 1024u;

/// Encodes the 4-byte big-endian length prefix for a `len`-byte payload.
[[nodiscard]] std::array<std::uint8_t, 4> frame_header(std::uint32_t len);

/// Incremental decoder: buffers stream fragments and emits each complete
/// length-prefixed frame exactly once, in order.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_frame = kMaxWireFrame)
      : max_frame_(max_frame) {}

  /// Consumes one stream fragment, invoking `sink(payload)` once per
  /// completed frame. The payload view borrows the assembler's arena and
  /// is invalidated by the next `feed` (or `reset`). Throws
  /// SerializeError if a header declares a length above `max_frame`; the
  /// assembler is unusable afterwards until `reset`.
  void feed(BytesView chunk, const std::function<void(BytesView)>& sink);

  /// Bytes buffered waiting for the rest of a frame (0 when aligned).
  [[nodiscard]] std::size_t pending() const { return arena_.size() - pos_; }

  /// Discards any partial frame (connection teardown / reuse).
  void reset() {
    arena_.clear();
    pos_ = 0;
  }

 private:
  std::size_t max_frame_;
  Bytes arena_;       // unconsumed stream bytes [pos_, arena_.size())
  std::size_t pos_ = 0;
};

}  // namespace et::transport
