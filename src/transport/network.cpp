#include "src/transport/network.h"

#include "src/transport/fault_injector.h"

namespace et::transport {

NetworkBackend::NetworkBackend()
    : faults_(std::make_shared<FaultInjector>()) {}

NetworkBackend::~NetworkBackend() = default;

}  // namespace et::transport
