#include "src/transport/network.h"

// Interface-only translation unit; anchors the NetworkBackend vtable.

namespace et::transport {}  // namespace et::transport
