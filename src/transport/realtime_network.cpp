#include "src/transport/realtime_network.h"

#include <chrono>
#include <stdexcept>

#include "src/transport/fault_injector.h"

namespace et::transport {

RealTimeNetwork::RealTimeNetwork(std::uint64_t seed) : rng_(seed) {
  faults_->reseed(seed ^ 0x9E3779B97F4A7C15ull);
  timer_thread_ = std::thread([this] { timer_loop(); });
}

RealTimeNetwork::~RealTimeNetwork() { stop(); }

void RealTimeNetwork::stop() {
  {
    std::lock_guard lock(timer_mu_);
    stopping_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();

  // Stop node workers after the timer thread so no new tasks arrive.
  std::vector<NodeActor*> actors;
  {
    std::lock_guard lock(nodes_mu_);
    for (auto& n : nodes_) actors.push_back(n.get());
  }
  for (auto* a : actors) {
    {
      std::lock_guard lock(a->mu);
      a->stopping = true;
      a->inbox.clear();  // queued tasks may capture soon-dead objects
    }
    a->cv.notify_all();
  }
  for (auto* a : actors) {
    if (a->worker.joinable()) a->worker.join();
  }
}

NodeId RealTimeNetwork::add_node(std::string name, PacketHandler handler) {
  std::lock_guard lock(nodes_mu_);
  auto actor = std::make_unique<NodeActor>();
  actor->name = std::move(name);
  actor->handler = std::move(handler);
  NodeActor* raw = actor.get();
  actor->worker = std::thread([this, raw] { node_loop(raw); });
  nodes_.push_back(std::move(actor));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void RealTimeNetwork::node_loop(NodeActor* actor) {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(actor->mu);
      actor->cv.wait(lock,
                     [&] { return actor->stopping || !actor->inbox.empty(); });
      if (actor->stopping && actor->inbox.empty()) return;
      task = std::move(actor->inbox.front());
      actor->inbox.pop_front();
      actor->busy = true;
    }
    task();
    {
      std::lock_guard lock(actor->mu);
      actor->busy = false;
    }
    actor->cv.notify_all();  // wake drain() waiters
  }
}

void RealTimeNetwork::enqueue(NodeId node, Task task) {
  NodeActor* actor;
  {
    std::lock_guard lock(nodes_mu_);
    if (node >= nodes_.size()) return;  // node gone; drop silently
    actor = nodes_[node].get();
  }
  {
    std::lock_guard lock(actor->mu);
    if (actor->stopping) return;
    actor->inbox.push_back(std::move(task));
  }
  actor->cv.notify_one();
}

void RealTimeNetwork::link(NodeId a, NodeId b, const LinkParams& params) {
  if (a == b) throw std::invalid_argument("RealTimeNetwork::link: self link");
  std::lock_guard lock(links_mu_);
  links_.insert_or_assign(key(a, b), LinkState(params));
  links_.insert_or_assign(key(b, a), LinkState(params));
}

void RealTimeNetwork::unlink(NodeId a, NodeId b) {
  std::lock_guard lock(links_mu_);
  links_.erase(key(a, b));
  links_.erase(key(b, a));
}

void RealTimeNetwork::detach(NodeId node) {
  // Swap the handler under nodes_mu_ (delivery tasks copy it under the
  // same lock), then wait until the node's worker finishes any handler
  // invocation already in progress.
  NodeActor* actor = nullptr;
  {
    std::lock_guard lock(nodes_mu_);
    if (node >= nodes_.size()) return;
    nodes_[node]->handler = [](NodeId, BytesView) {};
    actor = nodes_[node].get();
  }
  // Must not be called from the node's own context (it would self-wait).
  for (;;) {
    {
      std::lock_guard lock(actor->mu);
      if (!actor->busy) {
        // Queued tasks may capture the retiring actor; drop them too.
        actor->inbox.clear();
        return;
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

bool RealTimeNetwork::linked(NodeId a, NodeId b) const {
  std::lock_guard lock(links_mu_);
  return links_.contains(key(a, b));
}

std::string RealTimeNetwork::node_name(NodeId id) const {
  std::lock_guard lock(nodes_mu_);
  return id < nodes_.size() ? nodes_[id]->name : "<invalid>";
}

Status RealTimeNetwork::send(NodeId from, NodeId to, SharedPayload payload) {
  // The delivery timestamp must be computed exactly once against the same
  // clock reading the link's FIFO clamp used: re-reading the clock when
  // scheduling would let a preempted sender invert the order of two
  // packets on an ordered link.
  Duration delay;
  Duration dup_delay = kPacketLost;
  TimePoint sent_at;
  {
    std::lock_guard lock(links_mu_);
    const auto it = links_.find(key(from, to));
    if (it == links_.end()) {
      return unavailable("no link " + std::to_string(from) + " -> " +
                         std::to_string(to));
    }
    sent_at = now();
    if (faults_->armed()) {
      // Lock order is always links_mu_ -> injector mutex; the injector
      // never calls back into the backend, so the order cannot invert.
      const auto verdict = faults_->judge(from, to, sent_at, payload);
      if (!verdict.deliver) return Status::ok();  // silent injected drop
      if (verdict.duplicate) {
        dup_delay = it->second.sample_delay(payload->size(), sent_at, rng_);
      }
    }
    delay = it->second.sample_delay(payload->size(), sent_at, rng_);
  }
  if (delay == kPacketLost) return Status::ok();

  auto make_deliver = [this, from, to](SharedPayload body) {
    return [this, from, to, body] {
      PacketHandler handler;
      {
        std::lock_guard lock(nodes_mu_);
        if (to >= nodes_.size()) return;
        handler = nodes_[to]->handler;
      }
      {
        // Link may have been removed while in flight (disconnect
        // semantics), or a partition may have started since the send.
        std::lock_guard lock(links_mu_);
        if (!links_.contains(key(from, to))) return;
      }
      if (faults_->armed() && faults_->cut(from, to, now())) return;
      handler(from, BytesView(*body));
    };
  };
  if (dup_delay != kPacketLost) {
    // The duplicate shares the sender's buffer too — no deep copy.
    schedule_at(to, sent_at + dup_delay, make_deliver(payload), 0);
  }
  schedule_at(to, sent_at + delay, make_deliver(std::move(payload)), 0);
  return Status::ok();
}

void RealTimeNetwork::post(NodeId node, Task task) {
  enqueue(node, std::move(task));
}

TimerId RealTimeNetwork::schedule(NodeId node, Duration delay, Task task) {
  TimerId id;
  {
    std::lock_guard lock(timer_mu_);
    id = next_timer_++;
  }
  return schedule_at(node, now() + delay, std::move(task), id);
}

TimerId RealTimeNetwork::schedule_at(NodeId node, TimePoint at, Task task,
                                     TimerId id) {
  {
    std::lock_guard lock(timer_mu_);
    timers_.push(TimedTask{at, next_seq_++, id, node,
                           std::make_shared<Task>(std::move(task))});
  }
  timer_cv_.notify_all();
  return id;
}

void RealTimeNetwork::cancel(TimerId id) {
  if (id == 0) return;
  std::lock_guard lock(timer_mu_);
  cancelled_.insert(id);
}

void RealTimeNetwork::timer_loop() {
  std::unique_lock lock(timer_mu_);
  for (;;) {
    if (stopping_) return;
    if (timers_.empty()) {
      timer_cv_.wait(lock, [&] { return stopping_ || !timers_.empty(); });
      continue;
    }
    const TimePoint due = timers_.top().at;
    const TimePoint current = clock_.now();
    if (current < due) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(due - current));
      continue;  // re-check: new earlier timer or stop may have arrived
    }
    TimedTask t = timers_.top();
    timers_.pop();
    if (t.timer_id != 0) {
      const auto it = cancelled_.find(t.timer_id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
    }
    dispatching_.fetch_add(1, std::memory_order_acq_rel);
    lock.unlock();
    enqueue(t.node, std::move(*t.task));
    dispatching_.fetch_sub(1, std::memory_order_acq_rel);
    lock.lock();
  }
}

void RealTimeNetwork::drain(Duration grace) {
  for (;;) {
    bool idle = dispatching_.load(std::memory_order_acquire) == 0;
    if (idle) {
      std::lock_guard tlock(timer_mu_);
      if (!timers_.empty() && timers_.top().at <= clock_.now() + grace) {
        idle = false;
      }
    }
    if (idle) {
      std::lock_guard lock(nodes_mu_);
      for (auto& n : nodes_) {
        std::lock_guard nlock(n->mu);
        if (!n->inbox.empty() || n->busy) {
          idle = false;
          break;
        }
      }
    }
    if (idle) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace et::transport
