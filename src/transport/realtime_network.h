// Wall-clock NetworkBackend: actor threads + a timed delivery thread.
//
// Every node owns an executor thread draining an inbox, so node handlers
// run serialized per node but concurrently across nodes — matching the
// paper's testbed where brokers/entities were separate processes on
// separate machines. One timer thread sleeps until the earliest pending
// delivery/timer and then posts the task into the target node's inbox.
// Latency benchmarks (Table 3, Figures 2/4/5) run on this backend because
// they measure real elapsed time including real crypto cost.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/transport/network.h"

namespace et::transport {

class RealTimeNetwork final : public NetworkBackend {
 public:
  explicit RealTimeNetwork(std::uint64_t seed = 42);
  ~RealTimeNetwork() override;

  RealTimeNetwork(const RealTimeNetwork&) = delete;
  RealTimeNetwork& operator=(const RealTimeNetwork&) = delete;

  NodeId add_node(std::string name, PacketHandler handler) override;
  void link(NodeId a, NodeId b, const LinkParams& params) override;
  void unlink(NodeId a, NodeId b) override;
  void detach(NodeId node) override;
  using NetworkBackend::send;
  Status send(NodeId from, NodeId to, SharedPayload payload) override;
  void post(NodeId node, Task task) override;
  TimerId schedule(NodeId node, Duration delay, Task task) override;
  void cancel(TimerId id) override;
  [[nodiscard]] TimePoint now() const override { return clock_.now(); }
  /// All entry points here are thread-safe; brokers may run match worker
  /// pools on this backend.
  [[nodiscard]] bool concurrent_dispatch() const override { return true; }
  [[nodiscard]] bool linked(NodeId a, NodeId b) const override;
  [[nodiscard]] std::string node_name(NodeId id) const override;

  /// Blocks until all node inboxes are momentarily empty and no timer is
  /// due within `grace`. Coarse quiescence helper for tests.
  void drain(Duration grace = 50 * kMillisecond);

  /// Permanently stops the timer thread and every node worker. Call this
  /// BEFORE destroying objects whose handlers are registered here —
  /// otherwise an in-flight timer (e.g. a ping) can invoke a dangling
  /// callback. Idempotent; the destructor calls it too.
  void stop();

 private:
  struct NodeActor {
    std::string name;
    PacketHandler handler;
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> inbox;
    bool stopping = false;
    bool busy = false;
  };

  struct TimedTask {
    TimePoint at;
    std::uint64_t seq;
    TimerId timer_id;
    NodeId node;
    std::shared_ptr<Task> task;
  };
  struct TimedOrder {
    bool operator()(const TimedTask& a, const TimedTask& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  using LinkKey = std::uint64_t;
  static LinkKey key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void node_loop(NodeActor* actor);
  void timer_loop();
  void enqueue(NodeId node, Task task);
  TimerId schedule_at(NodeId node, TimePoint at, Task task, TimerId id);

  SystemClock clock_;

  mutable std::mutex links_mu_;
  Rng rng_;  // guarded by links_mu_
  std::unordered_map<LinkKey, LinkState> links_;

  mutable std::mutex nodes_mu_;
  std::vector<std::unique_ptr<NodeActor>> nodes_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<TimedTask, std::vector<TimedTask>, TimedOrder> timers_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_ = 1;
  bool stopping_ = false;
  /// Nonzero while the timer thread is between popping a due task and
  /// handing it to the target inbox — drain() must not report idle then.
  std::atomic<int> dispatching_{0};
  std::thread timer_thread_;
};

}  // namespace et::transport
