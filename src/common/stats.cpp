#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace et {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunningStats::stderr_of_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "mean=" << mean() << " sd=" << stddev() << " se=" << stderr_of_mean()
     << " n=" << count();
  return os.str();
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::sort(samples_.begin(), samples_.end());
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace et
