#include "src/common/serialize.h"

#include <bit>
#include <cstring>

namespace et {

namespace {
// Sanity cap on length prefixes: no single field in this system approaches
// 64 MiB; anything larger is corruption or an attack.
constexpr std::uint32_t kMaxFieldLength = 64u * 1024u * 1024u;
}  // namespace

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::bytes(BytesView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw SerializeError("truncated input: need " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(buf_[pos_]) << 8) | buf_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | buf_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf_[pos_ + i];
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::boolean() { return u8() != 0; }

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  if (n > kMaxFieldLength) {
    throw SerializeError("field length " + std::to_string(n) +
                         " exceeds sanity cap");
  }
  return raw(n);
}

std::string Reader::str() {
  const Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

BytesView Reader::bytes_view() {
  const std::uint32_t n = u32();
  if (n > kMaxFieldLength) {
    throw SerializeError("field length " + std::to_string(n) +
                         " exceeds sanity cap");
  }
  return raw_view(n);
}

std::string_view Reader::str_view() {
  const BytesView b = bytes_view();
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

BytesView Reader::raw_view(std::size_t n) {
  need(n);
  const BytesView out = buf_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void Reader::expect_done() const {
  if (!done()) {
    throw SerializeError("trailing bytes after message: " +
                         std::to_string(remaining()));
  }
}

}  // namespace et
