// Error handling primitives.
//
// Protocol layers report recoverable failures (verification failures,
// unauthorized actions, unknown topics) as values, not exceptions: a broker
// must keep serving after rejecting a bogus message. `Status` carries a
// code + message; `Result<T>` is Status-or-value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace et {

/// Coarse failure categories shared across the library.
enum class Code : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // malformed input from the caller
  kNotFound,          // unknown topic / entity / session
  kPermissionDenied,  // authorization check failed
  kUnauthenticated,   // signature / credential verification failed
  kExpired,           // token / advertisement / lease past lifetime
  kAlreadyExists,     // duplicate registration
  kUnavailable,       // endpoint disconnected or blacklisted
  kInternal,          // bug or broken invariant
};

/// Human-readable name of a code ("PERMISSION_DENIED", ...).
std::string_view code_name(Code c);

/// A success-or-error value; cheap to copy on the success path.
class Status {
 public:
  Status() = default;  // OK
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  [[nodiscard]] std::string to_string() const;

  explicit operator bool() const { return is_ok(); }

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

/// Convenience constructors.
Status invalid_argument(std::string msg);
Status not_found(std::string msg);
Status permission_denied(std::string msg);
Status unauthenticated(std::string msg);
Status expired(std::string msg);
Status already_exists(std::string msg);
Status unavailable(std::string msg);
Status internal_error(std::string msg);

/// Status-or-value. Check `ok()` before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {}       // NOLINT(implicit)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }

  [[nodiscard]] const T& value() const& { return std::get<T>(v_); }
  [[nodiscard]] T& value() & { return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(v_)); }

  /// The error; only valid when !ok().
  [[nodiscard]] const Status& status() const { return std::get<Status>(v_); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace et
