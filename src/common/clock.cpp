#include "src/common/clock.h"

// Header-only implementations; this translation unit anchors the vtables.

namespace et {}  // namespace et
