#include "src/common/uuid.h"

#include <algorithm>
#include <stdexcept>

namespace et {

Uuid Uuid::generate(Rng& rng) {
  Uuid u;
  const Bytes b = rng.next_bytes(16);
  std::copy(b.begin(), b.end(), u.octets_.begin());
  // RFC 4122 version 4, variant 1.
  u.octets_[6] = static_cast<std::uint8_t>((u.octets_[6] & 0x0F) | 0x40);
  u.octets_[8] = static_cast<std::uint8_t>((u.octets_[8] & 0x3F) | 0x80);
  return u;
}

Uuid Uuid::from_bytes(BytesView b) {
  if (b.size() != 16) {
    throw std::invalid_argument("Uuid::from_bytes: need 16 octets");
  }
  Uuid u;
  std::copy(b.begin(), b.end(), u.octets_.begin());
  return u;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Uuid Uuid::parse(std::string_view text) {
  // Canonical form: 8-4-4-4-12 (36 chars, dashes at 8,13,18,23).
  if (text.size() != 36 || text[8] != '-' || text[13] != '-' ||
      text[18] != '-' || text[23] != '-') {
    throw std::invalid_argument("Uuid::parse: malformed UUID text");
  }
  Uuid u;
  std::size_t oi = 0;
  for (std::size_t i = 0; i < 36;) {
    if (text[i] == '-') {
      ++i;
      continue;
    }
    const int hi = hex_nibble(text[i]);
    const int lo = hex_nibble(text[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("Uuid::parse: non-hex character");
    }
    u.octets_[oi++] = static_cast<std::uint8_t>((hi << 4) | lo);
    i += 2;
  }
  return u;
}

std::string Uuid::to_string() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(36);
  for (std::size_t i = 0; i < 16; ++i) {
    if (i == 4 || i == 6 || i == 8 || i == 10) out.push_back('-');
    out.push_back(kDigits[octets_[i] >> 4]);
    out.push_back(kDigits[octets_[i] & 0x0F]);
  }
  return out;
}

Bytes Uuid::to_bytes() const {
  return Bytes(octets_.begin(), octets_.end());
}

bool Uuid::is_nil() const {
  return std::all_of(octets_.begin(), octets_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::uint64_t Uuid::hash() const {
  // FNV-1a over the octets.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : octets_) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace et
