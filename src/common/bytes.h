// Byte-buffer primitives shared by every module.
//
// `Bytes` is the universal octet container used for wire payloads, digests,
// keys and ciphertexts. Helpers here convert between Bytes, std::string and
// hexadecimal text, and provide constant-time comparison for secret material.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace et {

/// Contiguous, owning octet buffer.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view of octets.
using BytesView = std::span<const std::uint8_t>;

/// Copies a string's characters into a fresh byte buffer.
Bytes to_bytes(std::string_view s);

/// Reinterprets a byte buffer as text (bytes are copied verbatim).
std::string to_string(BytesView b);

/// Lower-case hexadecimal encoding, two characters per byte.
std::string hex_encode(BytesView b);

/// Parses hexadecimal text produced by hex_encode (case-insensitive).
/// Throws std::invalid_argument on odd length or non-hex characters.
Bytes hex_decode(std::string_view hex);

/// Comparison that does not short-circuit on the first mismatching byte.
/// Use for MACs, digests and other secret-derived values.
bool constant_time_equal(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of buffers into one.
Bytes concat(std::initializer_list<BytesView> parts);

}  // namespace et
