#include "src/common/retry.h"

namespace et {

bool RetryState::next_delay(TimePoint now, Rng& rng, Duration* delay) {
  if (policy_.max_attempts > 0 && attempts_ >= policy_.max_attempts) {
    return false;
  }
  if (policy_.deadline > 0 && now >= started_at_ + policy_.deadline) {
    return false;
  }
  // Decorrelated jitter: uniform in [base, max(base, 3 * previous)],
  // clamped to max_backoff. First retry waits exactly the base delay.
  Duration d = policy_.initial_backoff;
  if (prev_ > 0) {
    const Duration hi = prev_ * 3;
    if (hi > d) {
      d += static_cast<Duration>(
          rng.next_below(static_cast<std::uint64_t>(hi - d) + 1));
    }
  }
  if (d > policy_.max_backoff) d = policy_.max_backoff;
  if (d < 1) d = 1;
  // Never sleep past the deadline: the final attempt fires right at it.
  if (policy_.deadline > 0) {
    const TimePoint cutoff = started_at_ + policy_.deadline;
    if (now + d > cutoff) d = cutoff - now;
    if (d < 1) return false;
  }
  prev_ = d;
  ++attempts_;
  *delay = d;
  return true;
}

}  // namespace et
