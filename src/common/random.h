// Seedable random number generation.
//
// A single `Rng` type (xoshiro256**) backs everything random in the system:
// UUID minting, cryptographic key generation, link-loss decisions and
// workload generators. Crypto callers seed it from the OS entropy pool via
// `Rng::from_entropy()`; tests and simulations seed it with a constant for
// reproducibility. The generator is NOT thread-safe; each actor owns one.
#pragma once

#include <cstdint>
#include <limits>

#include "src/common/bytes.h"

namespace et {

/// xoshiro256** PRNG with splitmix64 seeding.
class Rng {
 public:
  /// Deterministic construction from a 64-bit seed.
  explicit Rng(std::uint64_t seed);

  /// Seeds from std::random_device (OS entropy).
  static Rng from_entropy();

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform integer in [0, bound) using rejection sampling; bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Gaussian (mean, stddev) via Box-Muller.
  double next_gaussian(double mean, double stddev);

  /// Fills `out` with `n` random octets.
  Bytes next_bytes(std::size_t n);

  // UniformRandomBitGenerator interface, so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace et
