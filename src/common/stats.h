// Streaming statistics used by the benchmark harness.
//
// The paper reports every experiment as (mean, standard deviation, standard
// error) in milliseconds — see Tables 3 and 4. `RunningStats` accumulates
// those with Welford's numerically stable online algorithm; `Histogram`
// supports percentile reporting for the ablation benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace et {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator).
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n).
  [[nodiscard]] double stderr_of_mean() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  /// "mean=… sd=… se=… n=…" one-liner for logs.
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sample reservoir with exact percentiles (sorts on query).
class Histogram {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// p in [0,100]; nearest-rank percentile. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
};

}  // namespace et
