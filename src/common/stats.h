// Streaming statistics used by the benchmark harness.
//
// The paper reports every experiment as (mean, standard deviation, standard
// error) in milliseconds — see Tables 3 and 4. `RunningStats` accumulates
// those with Welford's numerically stable online algorithm; `Histogram`
// supports percentile reporting for the ablation benches.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace et {

/// Monotonic event counter readable from any thread.
///
/// Stats structs (BrokerStats, trace-filter counters) are incremented from
/// a node's execution context but read by benchmarks and tests from the
/// main thread while the network is still running. Relaxed atomics make
/// those cross-thread reads well-defined without imposing ordering on the
/// hot path; counters are independent, so callers wanting one coherent
/// view take a snapshot struct of plain integers.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  /// Copying snapshots the current value (for aggregate/snapshot structs).
  RelaxedCounter(const RelaxedCounter& other) : v_(other.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Monotonic high-water mark readable from any thread (e.g. the deepest
/// verification backlog a drain pass has observed). Same memory-order
/// contract as RelaxedCounter: relaxed CAS, no ordering imposed on the
/// writer's hot path.
class RelaxedMaxGauge {
 public:
  RelaxedMaxGauge() = default;
  RelaxedMaxGauge(const RelaxedMaxGauge& other) : v_(other.get()) {}
  RelaxedMaxGauge& operator=(const RelaxedMaxGauge& other) {
    v_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }

  /// Raises the recorded maximum to `candidate` if it is larger.
  void observe(std::uint64_t candidate) {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !v_.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator).
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n).
  [[nodiscard]] double stderr_of_mean() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

  /// "mean=… sd=… se=… n=…" one-liner for logs.
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sample reservoir with exact percentiles (sorts on query).
class Histogram {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// p in [0,100]; nearest-rank percentile. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
};

}  // namespace et
