// Slab arena with stable 32-bit index handles.
//
// Broker-side per-entity records (sessions, interest rows, roster slots)
// used to be node-allocated map entries — one allocation and ~100 bytes of
// bookkeeping per entity, which is what caps the virtual-time sweeps well
// short of the paper's "millions of entities" claim. `SlotArena` packs
// them into fixed-size slabs addressed by index handles instead:
//
//   * O(1) emplace/erase through an intrusive free list,
//   * handles stay valid across any sequence of other insertions/erasures
//     (slabs never move or shrink),
//   * `bytes()` reports the arena's true footprint so benches can state
//     broker memory in bytes/entity rather than allocations/entity.
//
// Handles are indices, not pointers: 4 bytes each, trivially serializable,
// and safe to store inside other arena records (SoA cross-links). A handle
// is NOT generation-checked — erasing a slot and reusing it hands out the
// same handle value again, so owners must not retain handles past erase
// (the same discipline the session maps already required for ids).
//
// Not thread-safe; confine each arena to one node context like any other
// actor state.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace et {

template <typename T>
class SlotArena {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNullHandle = 0xFFFFFFFFu;

  explicit SlotArena(std::size_t slab_capacity = 1024)
      : slab_capacity_(slab_capacity ? slab_capacity : 1) {}

  SlotArena(const SlotArena&) = delete;
  SlotArena& operator=(const SlotArena&) = delete;
  SlotArena(SlotArena&&) = default;
  SlotArena& operator=(SlotArena&&) = default;

  ~SlotArena() { clear(); }

  /// Constructs a T in a free slot and returns its handle.
  template <typename... Args>
  Handle emplace(Args&&... args) {
    Handle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
    } else {
      if (next_ == slabs_.size() * slab_capacity_) {
        slabs_.push_back(std::make_unique<Slot[]>(slab_capacity_));
      }
      h = static_cast<Handle>(next_++);
    }
    Slot& s = slot(h);
    ::new (static_cast<void*>(s.storage)) T(std::forward<Args>(args)...);
    s.occupied = true;
    ++live_;
    return h;
  }

  /// Destroys the record at `h` and recycles the slot. `h` must be live.
  void erase(Handle h) {
    Slot& s = slot(h);
    assert(s.occupied && "SlotArena::erase on a dead handle");
    std::launder(reinterpret_cast<T*>(s.storage))->~T();
    s.occupied = false;
    --live_;
    free_.push_back(h);
  }

  [[nodiscard]] T& operator[](Handle h) {
    Slot& s = slot(h);
    assert(s.occupied && "SlotArena access on a dead handle");
    return *std::launder(reinterpret_cast<T*>(s.storage));
  }
  [[nodiscard]] const T& operator[](Handle h) const {
    const Slot& s = slot(h);
    assert(s.occupied && "SlotArena access on a dead handle");
    return *std::launder(reinterpret_cast<const T*>(s.storage));
  }

  /// True when `h` names a currently-live slot. A recycled handle reads as
  /// live again — see the header comment on handle discipline.
  [[nodiscard]] bool contains(Handle h) const {
    return h < next_ && slot(h).occupied;
  }

  /// Live record count.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Slots allocated (live + free-listed).
  [[nodiscard]] std::size_t capacity() const {
    return slabs_.size() * slab_capacity_;
  }

  /// Total heap footprint of the arena: slab storage plus free-list and
  /// slab-table overhead. This is the number benches divide by entity
  /// count.
  [[nodiscard]] std::size_t bytes() const {
    return slabs_.size() * slab_capacity_ * sizeof(Slot) +
           free_.capacity() * sizeof(Handle) +
           slabs_.capacity() * sizeof(std::unique_ptr<Slot[]>);
  }

  /// Visits every live record as f(handle, T&). Erasing the *visited*
  /// record from inside `f` is allowed; erasing others is not.
  template <typename F>
  void for_each(F&& f) {
    for (Handle h = 0; h < next_; ++h) {
      if (slot(h).occupied) f(h, (*this)[h]);
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (Handle h = 0; h < next_; ++h) {
      if (slot(h).occupied) f(h, (*this)[h]);
    }
  }

  /// Destroys every live record; slabs are released.
  void clear() {
    for (Handle h = 0; h < next_; ++h) {
      Slot& s = slot(h);
      if (s.occupied) {
        std::launder(reinterpret_cast<T*>(s.storage))->~T();
        s.occupied = false;
      }
    }
    slabs_.clear();
    free_.clear();
    next_ = 0;
    live_ = 0;
  }

 private:
  struct Slot {
    alignas(T) std::byte storage[sizeof(T)];
    bool occupied = false;
  };

  [[nodiscard]] Slot& slot(Handle h) {
    assert(h < next_ && "SlotArena handle out of range");
    return slabs_[h / slab_capacity_][h % slab_capacity_];
  }
  [[nodiscard]] const Slot& slot(Handle h) const {
    assert(h < next_ && "SlotArena handle out of range");
    return slabs_[h / slab_capacity_][h % slab_capacity_];
  }

  std::size_t slab_capacity_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<Handle> free_;
  std::size_t next_ = 0;  // high-water slot index
  std::size_t live_ = 0;
};

}  // namespace et
