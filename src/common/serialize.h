// Binary wire format used by every protocol message in the repository.
//
// The format is deliberately simple and explicit: fixed-width big-endian
// integers, length-prefixed strings/buffers, and no implicit alignment.
// `Writer` builds a buffer; `Reader` consumes one and throws
// `SerializeError` on any malformed input (truncation, overlong lengths),
// which protocol code treats as a tamper/verification failure.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace et {

/// Raised by Reader when the input is truncated or structurally invalid.
class SerializeError : public std::runtime_error {
 public:
  explicit SerializeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends typed values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Pre-sizes the underlying buffer. Encoders that know (or can bound)
  /// their encoded size call this once up front so the hot path appends
  /// without repeated geometric growth.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);

  /// Length-prefixed (u32) octet string.
  void bytes(BytesView b);
  /// Length-prefixed (u32) character string.
  void str(std::string_view s);
  /// Raw append without a length prefix (fixed-size fields, digests).
  void raw(BytesView b);

  /// Finishes and returns the built buffer.
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& view() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes typed values from a byte buffer. All reads bounds-check and
/// throw SerializeError past the end.
class Reader {
 public:
  explicit Reader(BytesView b) : buf_(b) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();

  /// Length-prefixed octet string.
  Bytes bytes();
  /// Length-prefixed character string.
  std::string str();
  /// Exactly `n` raw octets.
  Bytes raw(std::size_t n);

  // --- borrowed reads (zero-copy decode layer) ---------------------------
  // View variants return spans/string_views into the Reader's underlying
  // buffer — typically a receive arena — instead of owning copies. They are
  // valid only as long as that buffer is; decoders that outlive the buffer
  // must materialize (see pubsub::MessageView::materialize).

  /// Length-prefixed octet string as a borrowed view.
  BytesView bytes_view();
  /// Length-prefixed character string as a borrowed view.
  std::string_view str_view();
  /// Exactly `n` raw octets as a borrowed view.
  BytesView raw_view(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  /// Throws unless the whole buffer has been consumed; call at the end of
  /// a message parse to reject trailing garbage.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView buf_;
  std::size_t pos_ = 0;
};

}  // namespace et
