// Minimal leveled logger.
//
// Thread-safe, writes to stderr, off by default above WARN so tests and
// benchmarks stay quiet. Components log through `ET_LOG(level) << ...`.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace et {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace log_internal {

/// Collects one log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace log_internal
}  // namespace et

#define ET_LOG(level) \
  ::et::log_internal::LogLine(::et::LogLevel::level, __FILE__, __LINE__)
