#include "src/common/timer_wheel.h"

#include <utility>

namespace et {

TimerWheel::TimerWheel(Scheduler scheduler, Duration tick)
    : scheduler_(std::move(scheduler)), tick_(tick < 0 ? 0 : tick) {}

TimerWheel::~TimerWheel() {
  alive_.reset();  // pending scheduler callbacks become no-ops
  if (armed_backend_id_ != 0) scheduler_.cancel(armed_backend_id_);
  for (auto& [id, e] : entries_) {
    if (e.backend_id != 0) scheduler_.cancel(e.backend_id);
  }
}

TimerWheel::WheelId TimerWheel::schedule(Duration delay, Callback cb) {
  if (delay < 0) delay = 0;
  const WheelId id = next_id_++;
  ++scheduled_total_;

  if (tick_ == 0) {
    // Passthrough: 1:1 onto the scheduler, identical firing time.
    Entry e;
    e.cb = std::move(cb);
    std::weak_ptr<int> alive = alive_;
    e.backend_id = scheduler_.schedule(delay, [this, alive, id] {
      if (alive.expired()) return;
      auto it = entries_.find(id);
      if (it == entries_.end()) return;
      Callback run = std::move(it->second.cb);
      entries_.erase(it);
      --passthrough_armed_;
      ++fired_total_;
      run();
    });
    ++armed_total_;
    ++passthrough_armed_;
    entries_.emplace(id, std::move(e));
    return id;
  }

  // Quantize up to the next tick boundary so timers never fire early.
  const TimePoint deadline = scheduler_.now() + delay;
  const TimePoint bucket = ((deadline + tick_ - 1) / tick_) * tick_;
  Entry e;
  e.cb = std::move(cb);
  e.bucket = bucket;
  entries_.emplace(id, std::move(e));
  buckets_[bucket].push_back(id);
  if (!draining_ && (armed_backend_id_ == 0 || bucket < armed_deadline_)) {
    arm_for(bucket);
  }
  return id;
}

void TimerWheel::cancel(WheelId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (it->second.backend_id != 0) {
    scheduler_.cancel(it->second.backend_id);
    --passthrough_armed_;
  }
  // Wheel mode: the id stays in its bucket vector; fire skips dead ids.
  entries_.erase(it);
  ++cancelled_total_;
}

void TimerWheel::arm_for(TimePoint bucket_deadline) {
  if (armed_backend_id_ != 0) scheduler_.cancel(armed_backend_id_);
  armed_deadline_ = bucket_deadline;
  Duration delay = bucket_deadline - scheduler_.now();
  if (delay < 0) delay = 0;
  std::weak_ptr<int> alive = alive_;
  armed_backend_id_ = scheduler_.schedule(delay, [this, alive] {
    if (alive.expired()) return;
    on_fire();
  });
  ++armed_total_;
}

void TimerWheel::on_fire() {
  armed_backend_id_ = 0;
  draining_ = true;
  const TimePoint now = scheduler_.now();
  while (!buckets_.empty() && buckets_.begin()->first <= now) {
    std::vector<WheelId> due = std::move(buckets_.begin()->second);
    buckets_.erase(buckets_.begin());
    for (WheelId id : due) {
      auto it = entries_.find(id);
      if (it == entries_.end()) continue;  // cancelled after bucketing
      Callback run = std::move(it->second.cb);
      entries_.erase(it);
      ++fired_total_;
      run();  // may schedule()/cancel(); draining_ defers re-arming
    }
  }
  draining_ = false;
  if (!buckets_.empty()) arm_for(buckets_.begin()->first);
}

TimerWheel::Stats TimerWheel::stats() const {
  Stats s;
  s.scheduled = scheduled_total_;
  s.fired = fired_total_;
  s.cancelled = cancelled_total_;
  s.armed = armed_total_;
  s.pending = entries_.size();
  s.armed_now =
      tick_ == 0 ? passthrough_armed_ : (armed_backend_id_ != 0 ? 1 : 0);
  return s;
}

}  // namespace et
