// Hierarchical "/"-separated topic paths.
//
// Topics in the publish/subscribe substrate are strings like
// `StockQuotes/Companies/Adobe` or
// `/Constrained/Traces/Broker/Publish-Only/<uuid>/ChangeNotifications`.
// This module provides splitting, joining, normalization and prefix /
// wildcard matching. The constrained-topic *grammar* (element defaults,
// allowed actions) lives in src/pubsub/constrained_topic.h; this file is
// pure string mechanics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace et {

/// Splits on '/', dropping empty segments (so a leading '/' is ignored and
/// `a//b` equals `a/b`).
std::vector<std::string> split_topic(std::string_view topic);

/// Joins segments with '/' (no leading slash).
std::string join_topic(const std::vector<std::string>& segments);

/// Canonical form: segments joined with '/', no leading/trailing slash.
std::string normalize_topic(std::string_view topic);

/// True when `topic` equals or is hierarchically below `prefix`
/// (segment-wise; "a/b" is under "a", "ab" is not).
bool topic_has_prefix(std::string_view topic, std::string_view prefix);

/// Subscription matching with wildcards:
///   `*`  matches exactly one segment,
///   `#`  (only as the last segment) matches zero or more segments.
/// Exact segments match case-sensitively.
bool topic_matches(std::string_view pattern, std::string_view topic);

/// True when every segment is non-empty printable ASCII without whitespace.
bool is_valid_topic(std::string_view topic);

}  // namespace et
