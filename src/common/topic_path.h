// Hierarchical "/"-separated topic paths.
//
// Topics in the publish/subscribe substrate are strings like
// `StockQuotes/Companies/Adobe` or
// `/Constrained/Traces/Broker/Publish-Only/<uuid>/ChangeNotifications`.
// This module provides splitting, joining, normalization and prefix /
// wildcard matching. The constrained-topic *grammar* (element defaults,
// allowed actions) lives in src/pubsub/constrained_topic.h; this file is
// pure string mechanics.
//
// Hot-path note: matching a topic against N registered patterns used to
// re-split the topic string N times. `TopicPath` is the split-once form —
// brokers parse each inbound topic (and each registered pattern) exactly
// once and match segment vectors from then on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace et {

/// Wildcard segment literals recognized by topic_matches.
inline constexpr std::string_view kSingleLevelWildcard = "*";
inline constexpr std::string_view kMultiLevelWildcard = "#";

/// True when `segment` is one of the wildcard literals. A pattern whose
/// FIRST segment is a wildcard can match topics under any top-level
/// segment, which is what decides wildcard-bucket placement in sharded
/// subscription tables.
[[nodiscard]] inline bool is_wildcard_segment(std::string_view segment) {
  return segment == kSingleLevelWildcard || segment == kMultiLevelWildcard;
}

/// Deterministic FNV-1a hash of one topic segment. Stable across runs,
/// platforms and library versions (unlike std::hash), so structures
/// sharded on it — and any execution order derived from them — stay
/// reproducible in the deterministic virtual-time simulations.
[[nodiscard]] std::uint64_t segment_hash(std::string_view segment);

/// Splits on '/', dropping empty segments (so a leading '/' is ignored and
/// `a//b` equals `a/b`).
std::vector<std::string> split_topic(std::string_view topic);

/// Joins segments with '/' (no leading slash).
std::string join_topic(const std::vector<std::string>& segments);

/// Canonical form: segments joined with '/', no leading/trailing slash.
std::string normalize_topic(std::string_view topic);

/// A topic (or subscription pattern) split into segments exactly once.
/// Equal topics have equal segment vectors regardless of leading/doubled
/// slashes in the source string.
class TopicPath {
 public:
  TopicPath() = default;
  explicit TopicPath(std::string_view topic) : segments_(split_topic(topic)) {}
  explicit TopicPath(std::vector<std::string> segments)
      : segments_(std::move(segments)) {}

  [[nodiscard]] const std::vector<std::string>& segments() const {
    return segments_;
  }
  [[nodiscard]] std::size_t size() const { return segments_.size(); }
  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] const std::string& operator[](std::size_t i) const {
    return segments_[i];
  }

  /// Canonical string form (equals normalize_topic of the source).
  [[nodiscard]] std::string canonical() const { return join_topic(segments_); }

  friend bool operator==(const TopicPath&, const TopicPath&) = default;

 private:
  std::vector<std::string> segments_;
};

/// True when `topic` equals or is hierarchically below `prefix`
/// (segment-wise; "a/b" is under "a", "ab" is not).
bool topic_has_prefix(std::string_view topic, std::string_view prefix);

/// Subscription matching with wildcards:
///   `*`  matches exactly one segment,
///   `#`  (only as the last segment) matches zero or more segments.
/// Exact segments match case-sensitively.
bool topic_matches(const TopicPath& pattern, const TopicPath& topic);
bool topic_matches(std::string_view pattern, std::string_view topic);

/// True when every segment is non-empty printable ASCII without whitespace.
bool is_valid_topic(std::string_view topic);

}  // namespace et
