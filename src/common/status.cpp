#include "src/common/status.h"

namespace et {

std::string_view code_name(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kPermissionDenied: return "PERMISSION_DENIED";
    case Code::kUnauthenticated: return "UNAUTHENTICATED";
    case Code::kExpired: return "EXPIRED";
    case Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  return std::string(code_name(code_)) + ": " + message_;
}

Status invalid_argument(std::string msg) {
  return {Code::kInvalidArgument, std::move(msg)};
}
Status not_found(std::string msg) { return {Code::kNotFound, std::move(msg)}; }
Status permission_denied(std::string msg) {
  return {Code::kPermissionDenied, std::move(msg)};
}
Status unauthenticated(std::string msg) {
  return {Code::kUnauthenticated, std::move(msg)};
}
Status expired(std::string msg) { return {Code::kExpired, std::move(msg)}; }
Status already_exists(std::string msg) {
  return {Code::kAlreadyExists, std::move(msg)};
}
Status unavailable(std::string msg) {
  return {Code::kUnavailable, std::move(msg)};
}
Status internal_error(std::string msg) {
  return {Code::kInternal, std::move(msg)};
}

}  // namespace et
