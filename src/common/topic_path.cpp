#include "src/common/topic_path.h"

namespace et {

std::uint64_t segment_hash(std::string_view segment) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64-bit offset basis
  for (const char c : segment) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV-1a 64-bit prime
  }
  return h;
}

std::vector<std::string> split_topic(std::string_view topic) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= topic.size()) {
    const std::size_t slash = topic.find('/', start);
    const std::size_t end = (slash == std::string_view::npos) ? topic.size()
                                                              : slash;
    if (end > start) {
      out.emplace_back(topic.substr(start, end - start));
    }
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return out;
}

std::string join_topic(const std::vector<std::string>& segments) {
  std::string out;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i) out.push_back('/');
    out += segments[i];
  }
  return out;
}

std::string normalize_topic(std::string_view topic) {
  return join_topic(split_topic(topic));
}

bool topic_has_prefix(std::string_view topic, std::string_view prefix) {
  const auto t = split_topic(topic);
  const auto p = split_topic(prefix);
  if (p.size() > t.size()) return false;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (t[i] != p[i]) return false;
  }
  return true;
}

bool topic_matches(const TopicPath& pattern, const TopicPath& topic) {
  const auto& p = pattern.segments();
  const auto& t = topic.segments();
  std::size_t i = 0;
  for (; i < p.size(); ++i) {
    if (p[i] == "#") {
      // Multi-segment wildcard is only meaningful as the final segment;
      // it matches the remainder (possibly empty).
      return i + 1 == p.size();
    }
    if (i >= t.size()) return false;
    if (p[i] == "*") continue;
    if (p[i] != t[i]) return false;
  }
  return i == t.size();
}

bool topic_matches(std::string_view pattern, std::string_view topic) {
  return topic_matches(TopicPath(pattern), TopicPath(topic));
}

bool is_valid_topic(std::string_view topic) {
  const auto segs = split_topic(topic);
  if (segs.empty()) return false;
  for (const auto& s : segs) {
    for (char c : s) {
      if (c <= ' ' || c > '~') return false;  // control, space or non-ASCII
    }
  }
  return true;
}

}  // namespace et
