#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace et {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace log_internal {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()), level_(level) {
  if (enabled_) {
    os_ << "[" << level_tag(level) << "] " << basename_of(file) << ":" << line
        << " ";
  }
}

LogLine::~LogLine() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fputs(os_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace log_internal
}  // namespace et
