// 128-bit universally unique identifiers.
//
// Trace topics in the tracing scheme are UUIDs minted by Topic Discovery
// Nodes: "a 128-bit identifier that is guaranteed to be unique in space and
// time" (paper §3.1). We implement RFC 4122 version-4 (random) UUIDs drawn
// from a caller-supplied RNG so tests can be deterministic.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace et {

/// Value-type 128-bit UUID.
class Uuid {
 public:
  /// The all-zero UUID; used as "absent".
  Uuid() = default;

  /// Generates a version-4 (random) UUID from `rng`.
  static Uuid generate(Rng& rng);

  /// Constructs from 16 raw octets. Throws std::invalid_argument otherwise.
  static Uuid from_bytes(BytesView b);

  /// Parses the canonical 8-4-4-4-12 hex form. Throws on malformed input.
  static Uuid parse(std::string_view text);

  /// Canonical lower-case 8-4-4-4-12 representation.
  [[nodiscard]] std::string to_string() const;

  /// The 16 raw octets.
  [[nodiscard]] Bytes to_bytes() const;

  [[nodiscard]] bool is_nil() const;

  friend auto operator<=>(const Uuid&, const Uuid&) = default;

  /// Stable 64-bit hash (for unordered containers).
  [[nodiscard]] std::uint64_t hash() const;

 private:
  std::array<std::uint8_t, 16> octets_{};
};

}  // namespace et

template <>
struct std::hash<et::Uuid> {
  std::size_t operator()(const et::Uuid& u) const noexcept {
    return static_cast<std::size_t>(u.hash());
  }
};
