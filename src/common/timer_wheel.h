// Coalescing timer wheel: many logical deadlines, one armed timer.
//
// Per-entity ping/gauge/metrics timers are what make broker timer state
// O(entities): every traced entity used to hold its own backend timer.
// `TimerWheel` multiplexes any number of logical one-shot timers onto a
// single armed timer in the underlying scheduler. Deadlines are quantized
// *up* to the next `tick` boundary, so co-scheduled work (the ALLS_WELL
// digests for all hosts on a broker, say) lands in the same bucket and is
// drained in one wakeup — timers fire never early and at most one tick
// late, which the tracing layer absorbs into its miss-grace windows.
//
// With `tick == 0` the wheel is a pure passthrough: every logical timer
// maps 1:1 onto a scheduler timer with identical firing times. That makes
// migration mechanical — existing timing-sensitive code moves onto the
// wheel with zero behaviour change, and deployments opt into coalescing by
// setting a tick.
//
// The wheel is scheduler-agnostic (this layer sits below the transport):
// callers supply schedule/cancel/now functions, typically adapted from a
// NetworkBackend node context. All wheel methods and all callbacks run in
// that one context; the wheel is not thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"

namespace et {

class TimerWheel {
 public:
  using Callback = std::function<void()>;
  /// Logical timer id; 0 is "none".
  using WheelId = std::uint64_t;

  /// The underlying one-shot scheduler the wheel arms its real timer on.
  /// `schedule(delay, fn)` returns a cancellable id; `cancel` is
  /// best-effort (cancelling a fired timer is a no-op); `now` is the
  /// scheduler's clock.
  struct Scheduler {
    std::function<std::uint64_t(Duration, std::function<void()>)> schedule;
    std::function<void(std::uint64_t)> cancel;
    std::function<TimePoint()> now;
  };

  struct Stats {
    std::uint64_t scheduled = 0;      // logical timers ever scheduled
    std::uint64_t fired = 0;          // logical timers delivered
    std::uint64_t cancelled = 0;      // logical timers cancelled in time
    std::uint64_t armed = 0;          // scheduler timers ever armed
    std::size_t pending = 0;          // logical timers outstanding
    std::size_t armed_now = 0;        // scheduler timers outstanding
  };

  /// `tick == 0` disables coalescing (1:1 passthrough; see header).
  explicit TimerWheel(Scheduler scheduler, Duration tick = 0);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Schedules `cb` to run after at least `delay`; with a nonzero tick the
  /// callback may run up to one tick later than asked. Returns the logical
  /// timer id.
  WheelId schedule(Duration delay, Callback cb);

  /// Best-effort cancellation; a timer already fired is a no-op.
  void cancel(WheelId id);

  /// Scheduler clock passthrough.
  [[nodiscard]] TimePoint now() const { return scheduler_.now(); }

  [[nodiscard]] Duration tick() const { return tick_; }
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    Callback cb;
    TimePoint bucket = 0;          // coalesced deadline (wheel mode)
    std::uint64_t backend_id = 0;  // scheduler timer (passthrough mode)
  };

  void arm_for(TimePoint bucket_deadline);
  void on_fire();

  Scheduler scheduler_;
  Duration tick_;
  WheelId next_id_ = 1;
  std::unordered_map<WheelId, Entry> entries_;
  /// bucket deadline -> logical ids coalesced into it (may contain ids
  /// already cancelled; fire skips them).
  std::map<TimePoint, std::vector<WheelId>> buckets_;
  std::uint64_t armed_backend_id_ = 0;
  TimePoint armed_deadline_ = 0;
  bool draining_ = false;
  std::uint64_t scheduled_total_ = 0;
  std::uint64_t fired_total_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::uint64_t armed_total_ = 0;
  /// Outstanding scheduler timers in passthrough mode.
  std::size_t passthrough_armed_ = 0;
  /// Destructor/fire guard: scheduler callbacks bind a weak_ptr to this
  /// token and become no-ops once the wheel is gone.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace et
