// Shared retry policy: exponential backoff with decorrelated jitter.
//
// Used wherever the system re-attempts an operation against a possibly
// partitioned or crashed peer — TDN queries, broker registration, entity
// failover. The jitter follows the "decorrelated" scheme (each delay is
// uniform in [base, 3 * previous]), which avoids synchronized retry storms
// when many entities lose the same broker at once while still growing the
// delay exponentially in expectation.
#pragma once

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/random.h"

namespace et {

struct RetryPolicy {
  /// Total attempts allowed (the first try counts). <= 0 means unbounded.
  int max_attempts = 1;
  /// First backoff delay, and the floor of every jittered delay.
  Duration initial_backoff = 200 * kMillisecond;
  /// Ceiling on any single backoff delay.
  Duration max_backoff = 5 * kSecond;
  /// Overall deadline measured from RetryState construction; once elapsed
  /// no further attempt is scheduled. 0 means no deadline.
  Duration deadline = 0;

  /// Single attempt, no retries — the pre-retry behaviour.
  static RetryPolicy none() { return RetryPolicy{}; }

  /// Sensible default for discovery/registration traffic: retry for up to
  /// ~30 s with delays growing 200 ms -> 5 s.
  static RetryPolicy standard() {
    RetryPolicy p;
    p.max_attempts = 0;
    p.initial_backoff = 200 * kMillisecond;
    p.max_backoff = 5 * kSecond;
    p.deadline = 30 * kSecond;
    return p;
  }
};

/// Per-operation retry progress. Construct when the operation starts;
/// call `next_delay` after each failed attempt.
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, TimePoint started_at)
      : policy_(policy), started_at_(started_at), prev_(0) {}

  /// Decides whether another attempt may run. Returns false when the
  /// attempt cap or the deadline is exhausted; otherwise stores the next
  /// backoff delay (decorrelated jitter, clamped to the deadline) in
  /// `*delay` and returns true.
  bool next_delay(TimePoint now, Rng& rng, Duration* delay);

  /// Attempts started so far (the caller's first attempt counts once
  /// next_delay has been consulted for it).
  [[nodiscard]] int attempts() const { return attempts_; }

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] TimePoint started_at() const { return started_at_; }

 private:
  RetryPolicy policy_;
  TimePoint started_at_;
  Duration prev_;  // previous delay, drives the decorrelated jitter
  int attempts_ = 1;
};

}  // namespace et
