// Atomic shared_ptr slot: lock-free in normal builds, mutex under TSan.
//
// libstdc++'s std::atomic<std::shared_ptr<T>> (_Sp_atomic, GCC 12)
// packs a spin lock into the control-block pointer's low bit and
// unlocks the read side with a *relaxed* RMW, so the plain read of the
// guarded pointer has no formal happens-before edge to the next
// writer's store. That is correct on real hardware but ThreadSanitizer
// (which checks the formal model) reports the library-internal access
// as a data race on every concurrent load/store pair. Under
// -fsanitize=thread this wrapper substitutes a plain mutex — which TSan
// models exactly, keeping it effective on *our* code (races on the
// pointed-to data are still caught) — while every other build keeps the
// lock-free fast path the RCU-style readers rely on.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

#if defined(__SANITIZE_THREAD__)
#define ET_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ET_TSAN 1
#endif
#endif

#ifdef ET_TSAN
#include <mutex>
#endif

namespace et {

/// Holder for an RCU-style published pointer: writers `store` a new
/// immutable object, readers `load` the current one with one atomic op.
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

#ifdef ET_TSAN
  [[nodiscard]] std::shared_ptr<T> load(
      std::memory_order = std::memory_order_acquire) const {
    std::lock_guard lock(mu_);
    return ptr_;
  }
  void store(std::shared_ptr<T> p,
             std::memory_order = std::memory_order_release) {
    std::lock_guard lock(mu_);
    ptr_ = std::move(p);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> ptr_;
#else
  [[nodiscard]] std::shared_ptr<T> load(
      std::memory_order order = std::memory_order_acquire) const {
    return ptr_.load(order);
  }
  void store(std::shared_ptr<T> p,
             std::memory_order order = std::memory_order_release) {
    ptr_.store(std::move(p), order);
  }

 private:
  std::atomic<std::shared_ptr<T>> ptr_;
#endif
};

}  // namespace et
