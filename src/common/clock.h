// Time sources.
//
// All protocol code reads time through the `Clock` interface so the same
// brokers/entities run unchanged on wall-clock time (RealTimeNetwork) and on
// simulated time (VirtualTimeNetwork). Timestamps are microseconds since an
// arbitrary epoch; durations are microseconds.
//
// The paper relies on NTP-synchronized timestamps being "within 30-100
// milliseconds of each other" for token-expiry checks (§4.3); `SkewedClock`
// models that bounded skew for tests.
#pragma once

#include <chrono>
#include <cstdint>

namespace et {

/// Microseconds since an arbitrary epoch.
using TimePoint = std::int64_t;
/// Microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;

/// Converts microseconds to fractional milliseconds (for reporting).
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Abstract monotonic-ish time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time, microseconds since this clock's epoch.
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Wall-clock backed by std::chrono::steady_clock.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for discrete-event simulation and tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) : now_(start) {}
  [[nodiscard]] TimePoint now() const override { return now_; }
  void advance(Duration d) { now_ += d; }
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

/// Views another clock through a fixed offset — models NTP skew between
/// hosts (paper §4.3 assumes skew bounded by 30-100 ms).
class SkewedClock final : public Clock {
 public:
  SkewedClock(const Clock& base, Duration skew) : base_(base), skew_(skew) {}
  [[nodiscard]] TimePoint now() const override { return base_.now() + skew_; }

 private:
  const Clock& base_;
  Duration skew_;
};

}  // namespace et
