#include "src/common/random.h"

#include <cmath>
#include <numbers>
#include <random>

namespace et {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::from_entropy() {
  std::random_device rd;
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^ 0xA5A5A5A5A5A5A5A5ULL;
  return Rng(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint32_t Rng::next_u32() {
  return static_cast<std::uint32_t>(next_u64() >> 32);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 uniform bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian(double mean, double stddev) {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = next_u64();
    for (int k = 0; k < 8; ++k) {
      out[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = next_u64();
    for (std::size_t k = 0; i + k < n; ++k) {
      out[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  }
  return out;
}

}  // namespace et
