// Trace payloads and session-channel messages.
//
// Two payload families travel through the system:
//   * `TracePayload` — broker -> trackers, published on the per-category
//     derived topics (the actual traces of Table 1);
//   * `SessionMessage` — traced entity <-> hosting broker over the two
//     session topics of §3.2 (pings, ping responses, state/load reports,
//     delegation-token and trace-key delivery).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/serialize.h"
#include "src/tracing/trace_types.h"

namespace et::tracing {

/// CPU / memory / workload snapshot (paper Table 1, LOAD_INFORMATION).
struct LoadInfo {
  double cpu_utilization = 0.0;     // [0,1]
  double memory_utilization = 0.0;  // [0,1]
  std::uint32_t workload = 0;       // queued work items

  void encode(Writer& w) const;
  static LoadInfo decode(Reader& r);
  friend bool operator==(const LoadInfo&, const LoadInfo&) = default;
};

/// Loss/latency/bandwidth of the broker-entity link (NETWORK_METRICS).
struct NetworkMetrics {
  double loss_rate = 0.0;           // fraction of pings unanswered
  double mean_rtt_ms = 0.0;         // round-trip over the window
  double out_of_order_rate = 0.0;   // reordered ping responses
  double bandwidth_bytes_per_us = 0.0;

  void encode(Writer& w) const;
  static NetworkMetrics decode(Reader& r);
  friend bool operator==(const NetworkMetrics&, const NetworkMetrics&) =
      default;
};

/// One published trace (the payload of a pubsub::Message on a trace topic).
struct TracePayload {
  TraceType type = TraceType::kAllsWell;
  std::string entity_id;
  TimePoint issued_at = 0;
  /// Optional details by type.
  std::optional<EntityState> state;           // state transitions
  std::optional<LoadInfo> load;               // LOAD_INFORMATION
  std::optional<NetworkMetrics> metrics;      // NETWORK_METRICS
  /// GAUGE_INTEREST: traces will be encrypted; trackers must run the key
  /// exchange before subscribing pays off (§5.1).
  bool secured = false;
  /// Free-form detail (diagnostics; FAILURE reasons).
  std::string detail;

  [[nodiscard]] Bytes serialize() const;
  static TracePayload deserialize(BytesView b);
};

/// Verbs on the entity<->broker session topics.
enum class SessionMsgType : std::uint8_t {
  kPing = 1,           // broker -> entity
  kPingResponse = 2,   // entity -> broker (echoes number + timestamp)
  kStateReport = 3,    // entity -> broker
  kLoadReport = 4,     // entity -> broker
  kTokenDelivery = 5,  // entity -> broker: delegation token + delegate key
  kTraceKeyDelivery = 6,  // entity -> broker: secret trace key (§5.1)
  kSilentMode = 7,     // entity -> broker: stop tracing me
};

/// One session-channel message. Pings carry "a monotonically increasing
/// message number and the timestamp at which it was issued"; responses
/// "must include both" (§3.3).
struct SessionMessage {
  SessionMsgType type = SessionMsgType::kPing;
  std::uint64_t ping_number = 0;
  TimePoint ping_timestamp = 0;
  std::optional<EntityState> state;
  std::optional<LoadInfo> load;
  /// kTokenDelivery: serialized AuthorizationToken.
  Bytes token;
  /// kTokenDelivery: the serialized delegate RSA private key the broker
  /// signs traces with. Only ever sent over the encrypted session channel.
  Bytes delegate_secret;
  /// kTraceKeyDelivery: serialized crypto::SecretKey.
  Bytes trace_key;
  /// kPingResponse from an EntityHost: per-member responsiveness bitmap
  /// (bit i = member i of the batch registration order is responsive).
  /// Empty for single-entity sessions.
  Bytes liveness;

  [[nodiscard]] Bytes serialize() const;
  static SessionMessage deserialize(BytesView b);
};

}  // namespace et::tracing
