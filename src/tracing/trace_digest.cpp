#include "src/tracing/trace_digest.h"

#include "src/common/serialize.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {

Bytes TraceDigest::serialize() const {
  Writer w;
  w.str(host_id);
  w.u64(round);
  w.i64(issued_at);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const DigestEntry& e : entries) {
    w.str(e.entity_id);
    w.u8(static_cast<std::uint8_t>(e.type));
    w.boolean(e.state.has_value());
    if (e.state) w.u8(static_cast<std::uint8_t>(*e.state));
  }
  return std::move(w).take();
}

TraceDigest TraceDigest::deserialize(BytesView b) {
  Reader r(b);
  TraceDigest out;
  out.host_id = r.str();
  out.round = r.u64();
  out.issued_at = r.i64();
  const std::uint32_t count = r.u32();
  out.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DigestEntry e;
    e.entity_id = r.str();
    e.type = static_cast<TraceType>(r.u8());
    if (e.type < TraceType::kInitializing || e.type > TraceType::kDigest) {
      throw SerializeError("unknown trace type in digest entry");
    }
    if (r.boolean()) e.state = static_cast<EntityState>(r.u8());
    out.entries.push_back(std::move(e));
  }
  r.expect_done();
  return out;
}

std::vector<TracePayload> TraceDigest::expand() const {
  std::vector<TracePayload> out;
  out.reserve(entries.size());
  for (const DigestEntry& e : entries) {
    TracePayload p;
    p.type = e.type;
    p.entity_id = e.entity_id;
    p.issued_at = issued_at;
    p.state = e.state;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace et::tracing
