#include "src/tracing/trace_emitter.h"

#include <utility>

#include "src/pubsub/constrained_topic.h"

namespace et::tracing {

namespace tt = pubsub::trace_topics;

TraceEmitter::TraceEmitter(pubsub::Broker& broker, Rng& rng, Options options,
                           TimerWheel* wheel)
    : broker_(broker), rng_(rng), options_(options), wheel_(wheel) {}

TraceEmitter::~TraceEmitter() {
  // Pending digests die with the emitter; publishing from a destructor
  // would race broker teardown.
  for (auto& entry : pending_) {
    if (wheel_ != nullptr && entry.second.flush_timer != 0) {
      wheel_->cancel(entry.second.flush_timer);
    }
  }
}

void TraceEmitter::publish_signed(std::string topic, Bytes body, bool encrypt,
                                  const crypto::SecretKey& trace_key,
                                  const AuthorizationToken& token,
                                  const crypto::RsaPrivateKey& delegate_key,
                                  const LedgerMeta* meta) {
  const bool ledgered = ledger_ != nullptr && meta != nullptr;
  pubsub::Message m;
  m.topic = std::move(topic);
  Bytes plain;  // pre-encryption body, kept only for the ledger
  if (ledgered && encrypt) plain = body;
  if (encrypt) {
    m.payload = trace_key.encrypt(body, rng_);
    m.encrypted = true;
  } else {
    m.payload = std::move(body);
  }
  m.publisher = broker_.name();
  m.sequence = ++sequence_;
  m.timestamp = broker_.backend().now();
  m.auth_token = token.serialize();
  // §4.3: broker-generated traces are signed with the delegate key so any
  // routing broker can verify authorization without learning which broker
  // hosts the entity.
  m.signature = delegate_key.sign(m.signable_bytes());
  if (ledgered) {
    // Chain the publication before it enters routing: once a subscriber
    // can have seen the trace, it is already un-droppable history.
    (void)ledger_->append(m.topic, meta->entity_id, meta->trace_type,
                          meta->issued_at, encrypt ? plain : m.payload,
                          m.signature);
  }
  broker_.publish_from_broker(std::move(m));
}

void TraceEmitter::trace(const Signing& signing, const std::string& host_id,
                         TracePayload payload) {
  payload.issued_at = broker_.backend().now();
  payload.secured = signing.secure;

  // Only plain heartbeats coalesce. An ALLS_WELL carrying detail ends a
  // suspicion ("entity responsive again") and must travel urgently like
  // every other lifecycle trace.
  const bool coalescible = options_.digest_interval > 0 && wheel_ != nullptr &&
                           payload.type == TraceType::kAllsWell &&
                           payload.detail.empty();
  if (!coalescible) {
    // Ordering: the heartbeats observed before this trace must not arrive
    // after it.
    flush(host_id);
    const std::uint8_t category = category_of(payload.type);
    Bytes body = payload.serialize();
    const LedgerMeta meta{payload.entity_id,
                          static_cast<std::uint8_t>(payload.type),
                          payload.issued_at};
    publish_signed(
        tt::trace_publication(signing.trace_topic, category_suffix(category)),
        std::move(body), signing.secure, *signing.trace_key, *signing.token,
        *signing.delegate_key, &meta);
    ++stats_.traces_published;
    return;
  }

  auto it = pending_.find(host_id);
  if (it == pending_.end()) {
    Pending p;
    p.digest.host_id = host_id;
    p.digest.round = ++rounds_[host_id];
    // Copy the signing material: the session may be torn down before the
    // flush timer fires.
    p.trace_topic = signing.trace_topic;
    p.token = *signing.token;
    p.delegate_key = *signing.delegate_key;
    p.trace_key = *signing.trace_key;
    p.secure = signing.secure;
    p.flush_timer = wheel_->schedule(options_.digest_interval,
                                     [this, host_id] { flush(host_id); });
    it = pending_.emplace(host_id, std::move(p)).first;
  }
  Pending& p = it->second;
  p.digest.issued_at = payload.issued_at;
  p.digest.entries.push_back(
      DigestEntry{payload.entity_id, payload.type, payload.state});
  if (p.digest.entries.size() >= options_.digest_max_entries) flush(host_id);
}

void TraceEmitter::publish_raw(const Signing& signing, std::string topic,
                               Bytes payload) {
  publish_signed(std::move(topic), std::move(payload), /*encrypt=*/false,
                 *signing.trace_key, *signing.token, *signing.delegate_key);
}

void TraceEmitter::flush(const std::string& host_id) {
  const auto it = pending_.find(host_id);
  if (it == pending_.end()) return;
  // Detach before publishing: the publish can reentrantly observe the
  // emitter (a local subscriber's handler may trace again), and the
  // pending entry must not be visible twice.
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (wheel_ != nullptr && p.flush_timer != 0) wheel_->cancel(p.flush_timer);
  stats_.digest_entries += p.digest.entries.size();
  ++stats_.digests_published;
  const LedgerMeta meta{p.digest.host_id,
                        static_cast<std::uint8_t>(TraceType::kDigest),
                        p.digest.issued_at};
  publish_signed(tt::trace_publication(p.trace_topic, tt::kDigest),
                 p.digest.serialize(), p.secure, p.trace_key, p.token,
                 p.delegate_key, &meta);
}

void TraceEmitter::flush_all() {
  while (!pending_.empty()) flush(pending_.begin()->first);
}

void publish_signed(pubsub::Client& client, pubsub::Message m,
                    const crypto::RsaPrivateKey& key, std::uint64_t& sequence,
                    TimePoint now) {
  m.sequence = ++sequence;
  m.timestamp = now;
  m.signature = key.sign(m.signable_bytes());
  client.publish(std::move(m));
}

}  // namespace et::tracing
