// The traced-entity client (paper §3.1/§3.2, §4.2, §4.3, §6.3).
//
// An entity that wants to be traced composes a pub/sub client and a
// discovery client and walks the paper's sequence:
//   1. create the trace topic at a TDN (credential + descriptor
//      `Availability/Traces/<entity-id>` + discovery restrictions +
//      lifetime) and receive the signed advertisement;
//   2. register with its broker over the Registration constrained topic —
//      the request carries the advertisement and is signed to prove
//      private-key possession;
//   3. decrypt the hybrid-encrypted registration response (session id +
//      session key), subscribe to the ping topic;
//   4. generate a fresh delegate key pair, mint the authorization token
//      and deliver {token, delegate private key} to the broker over the
//      encrypted session channel — plus the secret trace key when
//      confidential traces are requested (§5.1);
//   5. answer pings and push state/load reports, signing every message
//      (§4.2) or encrypting with the session key instead (§6.3 mode).
#pragma once

#include <functional>
#include <string>

#include "src/crypto/credential.h"
#include "src/crypto/secret_key.h"
#include "src/discovery/discovery_client.h"
#include "src/pubsub/client.h"
#include "src/tracing/authorization_token.h"
#include "src/tracing/config.h"
#include "src/tracing/registration.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {

/// Counters for tests/benches.
struct TracedEntityStats {
  std::uint64_t pings_received = 0;
  std::uint64_t pings_answered = 0;
  std::uint64_t reports_sent = 0;
  std::uint64_t failover_attempts = 0;  // find_broker rounds started
  std::uint64_t failovers = 0;          // completed re-registrations
};

class TracedEntity {
 public:
  TracedEntity(transport::NetworkBackend& backend, crypto::Identity identity,
               TrustAnchors anchors, TracingConfig config, std::uint64_t seed);

  TracedEntity(const TracedEntity&) = delete;
  TracedEntity& operator=(const TracedEntity&) = delete;

  /// Cancels the token-renewal timer; member clients detach their nodes.
  ~TracedEntity();

  /// Links the discovery client to a TDN.
  void attach_tdn(transport::NodeId tdn, const transport::LinkParams& params);

  /// Connects the pub/sub client to a broker.
  void connect_broker(transport::NodeId broker,
                      const transport::LinkParams& params);

  using ReadyCallback = std::function<void(const Status&)>;

  /// Runs steps 1-4 above. `restrictions` controls who may discover the
  /// trace topic. `on_ready` fires once the delegation is delivered (or
  /// with the first error).
  void start_tracing(discovery::DiscoveryRestrictions restrictions,
                     ReadyCallback on_ready);

  /// §3.3 "disable tracing": tells the broker to publish
  /// REVERTING_TO_SILENT_MODE and drop the session.
  void stop_tracing();

  /// Abrupt departure: severs the broker link without notice. The hosting
  /// broker publishes a DISCONNECT trace when it next fails to reach us.
  void disconnect();

  /// Re-delegates immediately: fresh delegate key pair + token delivered
  /// to the broker (§4.3 token renewal). Runs automatically near expiry
  /// when TracingConfig::auto_renew_tokens is set.
  void renew_token();

  /// Reports a state transition (broker republishes on StateTransitions).
  void set_state(EntityState state);

  /// Reports load (broker republishes on Load).
  void report_load(const LoadInfo& load);

  /// Failure injection: while false, pings are swallowed, which drives the
  /// broker's suspicion/failure escalation.
  void set_responsive(bool responsive);

  /// True while the entity is hunting for a replacement broker after its
  /// hosting broker went silent (TracingConfig::broker_silence_timeout).
  [[nodiscard]] bool failing_over() const { return failing_over_; }

  [[nodiscard]] const std::string& entity_id() const { return identity_.id; }
  [[nodiscard]] const Uuid& trace_topic() const { return trace_topic_; }
  [[nodiscard]] const Uuid& session_id() const { return session_id_; }
  [[nodiscard]] bool tracing_active() const { return active_; }
  [[nodiscard]] const discovery::TopicAdvertisement& advertisement() const {
    return advertisement_;
  }
  [[nodiscard]] EntityState state() const { return state_; }
  [[nodiscard]] const TracedEntityStats& stats() const { return stats_; }
  [[nodiscard]] pubsub::Client& client() { return client_; }

 private:
  void register_with_broker(ReadyCallback on_ready);
  void on_registration_response(const pubsub::Message& m);
  void deliver_delegation(ReadyCallback on_ready);
  void on_ping(const pubsub::Message& m);
  // Broker-silence failover (DESIGN.md §11). All run in the client context.
  void arm_watchdog();
  void on_watchdog();
  void begin_failover();
  void attempt_failover();
  void failover_backoff();
  void finish_failover();
  /// Sends a session message, authenticated per the configured mode.
  /// Token/key deliveries are always encrypted regardless of mode.
  void send_session_message(const SessionMessage& sm, bool force_encrypt);

  transport::NetworkBackend& backend_;
  crypto::Identity identity_;
  TrustAnchors anchors_;
  TracingConfig config_;
  Rng rng_;
  pubsub::Client client_;
  discovery::DiscoveryClient disc_;

  discovery::TopicAdvertisement advertisement_;
  Uuid trace_topic_;
  Uuid session_id_;
  crypto::SecretKey session_key_;
  crypto::SecretKey trace_key_;
  std::uint64_t registration_request_id_ = 0;
  /// Completion callback of the registration in flight; consumed exactly
  /// once per attempt (re-registration replaces it).
  ReadyCallback pending_ready_;
  bool registration_subscribed_ = false;
  std::uint64_t sequence_ = 0;
  transport::TimerId renewal_timer_ = 0;
  bool active_ = false;
  bool responsive_ = true;
  // Failover state. `failover_gen_` versions the in-flight attempt so
  // stale discovery/connect/registration callbacks are ignored.
  transport::LinkParams broker_params_{};
  TimePoint last_broker_activity_ = 0;
  transport::TimerId watchdog_timer_ = 0;
  transport::TimerId failover_timer_ = 0;  // backoff OR per-attempt timeout
  bool failing_over_ = false;
  std::uint64_t failover_gen_ = 0;
  RetryState failover_retry_ = RetryState(RetryPolicy::none(), 0);
  EntityState state_ = EntityState::kInitializing;
  TracedEntityStats stats_;
};

}  // namespace et::tracing
