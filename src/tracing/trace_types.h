// Trace vocabulary (paper Tables 1 and 2).
//
// A *trace* encapsulates one observation about a traced entity. Traces are
// grouped into categories, each published on its own derived constrained
// topic so trackers subscribe selectively (§3.3, "Publishing Trace
// Information"). The paper spells GAUGE_INTEREST as "GUAGE_INTEREST"; we
// use the corrected spelling.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace et::tracing {

/// Every trace type from paper Table 1.
enum class TraceType : std::uint8_t {
  // State information reported by a traced entity.
  kInitializing = 1,
  kRecovering = 2,
  kReady = 3,
  kShutdown = 4,
  // Broker-generated failure detection.
  kFailureSuspicion = 5,
  kFailed = 6,
  kDisconnect = 7,
  // Interest gauging.
  kGaugeInterest = 8,
  // Tracing lifecycle.
  kJoin = 9,
  kRevertingToSilentMode = 10,
  // Heartbeat while the entity responds to pings.
  kAllsWell = 11,
  // Entity-reported load.
  kLoadInformation = 12,
  // Broker-measured link behaviour.
  kNetworkMetrics = 13,
  // Coalesced per-host availability digest (DESIGN.md §14): one signed
  // trace carrying ALLS_WELL observations for every co-hosted entity,
  // expanded back to per-entity traces at the tracker edge.
  kDigest = 14,
};

/// Wire/diagnostic name ("FAILURE_SUSPICION", ...).
std::string_view trace_type_name(TraceType t);

/// Trace categories = the per-type publication topics of Table 2.
/// Bitmask so trackers can register interest in any combination (§3.5).
enum TraceCategory : std::uint8_t {
  kCatChangeNotifications = 1u << 0,  // JOIN, FAILURE_SUSPICION, FAILED,
                                      // DISCONNECT, REVERTING_TO_SILENT_MODE
  kCatAllUpdates = 1u << 1,           // ALLS_WELL heartbeats
  kCatStateTransitions = 1u << 2,     // INITIALIZING/RECOVERING/READY/SHUTDOWN
  kCatLoad = 1u << 3,                 // LOAD_INFORMATION
  kCatNetworkMetrics = 1u << 4,       // NETWORK_METRICS
};

/// All categories.
inline constexpr std::uint8_t kCatAll =
    kCatChangeNotifications | kCatAllUpdates | kCatStateTransitions |
    kCatLoad | kCatNetworkMetrics;

/// The category a trace type is published under (Table 2 row).
/// kGaugeInterest maps to no category (it rides the Interest topic).
std::uint8_t category_of(TraceType t);

/// Topic suffix for a category ("ChangeNotifications", ...).
std::string_view category_suffix(std::uint8_t category_bit);

/// Entity lifecycle states (the state-information trace types).
enum class EntityState : std::uint8_t {
  kInitializing = 1,
  kRecovering = 2,
  kReady = 3,
  kShutdown = 4,
};

/// Trace type announcing a transition into `s`.
TraceType state_trace_type(EntityState s);
std::string_view entity_state_name(EntityState s);

}  // namespace et::tracing
