// Tracing configuration and deployment-wide trust anchors.
#pragma once

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/retry.h"
#include "src/crypto/rsa.h"
#include "src/crypto/secret_key.h"

namespace et::tracing {

/// Public keys every participant trusts: the certificate authority that
/// issues credentials and the TDN key that signs topic advertisements.
/// (A deployment may run several TDNs sharing one signing identity; the
/// multi-TDN tests exercise replication with a shared key.)
struct TrustAnchors {
  crypto::RsaPublicKey ca_key;
  crypto::RsaPublicKey tdn_key;
};

/// How a traced entity authenticates its messages to the hosting broker.
enum class EntitySigningMode : std::uint8_t {
  /// §4.2: every entity-initiated message (including ping responses)
  /// carries an RSA signature.
  kSignEachMessage = 1,
  /// §6.3 optimization: messages are AES-encrypted with the session key
  /// instead; possession of the key authenticates the sender.
  kSymmetricSession = 2,
};

/// Knobs of the tracing scheme. Defaults follow the paper's setup where
/// specified and sensible cluster values elsewhere.
struct TracingConfig {
  /// Base broker->entity ping period.
  Duration ping_interval = 500 * kMillisecond;
  /// Floor the adaptive scheduler may shrink the period to when responses
  /// go missing ("the ping interval is reduced to hasten the failure
  /// detection", §3.3).
  Duration min_ping_interval = 100 * kMillisecond;
  /// Consecutive unanswered pings before FAILURE_SUSPICION.
  int suspicion_misses = 3;
  /// Consecutive unanswered pings before FAILED.
  int failed_misses = 6;
  /// Sliding window of ping records kept per session (paper: 10).
  int ping_history = 10;
  /// Period of GAUGE_INTEREST probes (§3.5).
  Duration gauge_interval = 3 * kSecond;
  /// A tracker's interest registration stays fresh for this many gauge
  /// rounds without a renewed response.
  int interest_ttl_rounds = 3;
  /// Period of NETWORK_METRICS publications.
  Duration metrics_interval = 2 * kSecond;
  /// §5.1: encrypt traces with an entity-provided secret trace key.
  bool secure_traces = false;
  /// §6.3 signing-cost optimization toggle.
  EntitySigningMode signing_mode = EntitySigningMode::kSignEachMessage;
  /// Symmetric algorithm for session/trace keys (paper: AES-192).
  crypto::SymmetricAlg symmetric_alg = crypto::SymmetricAlg::kAes192Cbc;
  /// Delegate key size for authorization tokens (paper: 1024-bit RSA).
  std::size_t delegate_key_bits = 1024;
  /// Token validity window ("typically ... short enough to correspond to
  /// its expected presence within the system", §4.3).
  Duration token_lifetime = 600 * kSecond;
  /// §4.3: "An entity can generate a new token, once a token is closer to
  /// expiration." When true, the entity re-delegates (fresh key pair +
  /// token) at 3/4 of the token lifetime, keeping traces verifiable
  /// indefinitely.
  bool auto_renew_tokens = true;
  /// Trace-topic advertisement lifetime at the TDN.
  Duration topic_lifetime = 3600 * kSecond;

  // --- failure recovery (DESIGN.md §11) ---------------------------------

  /// Broker-side final escalation: total consecutive unanswered pings
  /// after which a FAILED entity is presumed departed — the broker
  /// publishes DISCONNECT and drops the session, forcing an explicit
  /// re-registration (RECOVERING -> READY) instead of a silent revival.
  /// Must exceed failed_misses to fire after the FAILED stage. 0 (the
  /// default) keeps the pre-recovery behaviour: probe forever.
  int disconnect_misses = 0;

  /// Entity-side broker-silence watchdog: when no broker traffic (pings,
  /// registration responses) has arrived for this long, the entity
  /// presumes its hosting broker dead and fails over — re-runs
  /// find_broker, re-registers and re-mints its delegation under `retry`.
  /// 0 (the default) disables failover.
  Duration broker_silence_timeout = 0;

  /// Retry policy installed on the entity's discovery client and used to
  /// pace the failover loop. The default single-attempt policy preserves
  /// the paper's fire-and-wait discovery behaviour; deployments that
  /// enable failover typically install RetryPolicy::standard().
  RetryPolicy retry = RetryPolicy::none();

  /// After a completed failover the entity announces RECOVERING at once
  /// but holds the resumed (READY) report for this long, giving trackers
  /// a gauge round to register interest with the new hosting broker and
  /// observe the RECOVERING -> READY transition. 0 = announce both
  /// back-to-back.
  Duration recovery_announce_delay = 0;

  // --- million-entity scale (DESIGN.md §14) -----------------------------

  /// ALLS_WELL coalescing window: plain heartbeats from co-hosted entities
  /// accumulate into one signed per-host digest flushed on this period
  /// (trackers expand the digest back to per-entity traces). 0 (the
  /// default) publishes every heartbeat per-entity, unchanged.
  Duration digest_interval = 0;
  /// Flush a pending digest early once it carries this many entries.
  std::size_t digest_max_entries = 256;
  /// Coalescing granularity of the broker's session timer wheel: all
  /// session timers (ping/gauge/metrics/digest-flush) due within one tick
  /// share a single armed backend timer, collapsing O(entities) armed
  /// timers into O(ticks). Timers fire never early and at most one tick
  /// late, which the miss-grace windows absorb. 0 (the default) keeps the
  /// 1:1 passthrough.
  Duration timer_wheel_tick = 0;

  /// Per-hop verification knobs: the token-verdict cache plus the batched
  /// verification pipeline that drains each broker's trace backlog in
  /// key-grouped passes (DESIGN.md §10).
  struct Verification {
    /// Token-verification cache capacity (distinct tokens). The paper
    /// notes brokers may "keep track of previously computed verifications"
    /// (§4.3); 0 disables the cache and every trace pays the full RSA
    /// chain again.
    std::size_t cache_capacity = 1024;
    /// Upper bound on reusing a cached verification verdict without
    /// re-running the full chain. Bounds the window during which an
    /// advertisement or credential that expired *after* the token was
    /// verified could still be honoured; token windows themselves are
    /// re-checked on every hit.
    Duration cache_ttl = 60 * kSecond;
    /// Worker threads for the pipeline's drain stage. Honoured only on
    /// backends reporting concurrent_dispatch() (RealTimeNetwork); on
    /// VirtualTimeNetwork the queue drains inline in the broker's node
    /// context at the same virtual timestamp, so simulations stay
    /// bit-for-bit deterministic. 0 = drain in the node context.
    int threads = 0;
    /// Most messages one drain pass takes off the queue; on concurrent
    /// backends reaching this backlog triggers an immediate drain.
    std::size_t batch_max = 64;
    /// Accumulation window on concurrent backends. 0 (default) drains as
    /// soon as the stage is idle — sparse traffic pays no added wait, and
    /// bursts still batch because messages arriving while a drain is busy
    /// queue up for the next pass (group-commit style). A positive value
    /// deliberately holds the queue up to this long to build deeper
    /// batches; it bounds the extra latency a queued trace can see.
    Duration batch_delay = 0;
  };
  Verification verification;
};

}  // namespace et::tracing
