#include "src/tracing/verify_pipeline.h"

#include <atomic>
#include <condition_variable>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/crypto/fingerprint.h"
#include "src/crypto/rsa.h"
#include "src/tracing/authorization_token.h"

namespace et::tracing {

namespace {

// May this rejection be replayed for a byte-identical resend? Same rule as
// the inline filter: signature-chain failures are deterministic over the
// bytes and the (fixed) trust anchors; of the time-dependent kExpired
// rejections only a definitively lapsed token window is monotonic.
bool rejection_is_deterministic(const Status& s, const AuthorizationToken& t,
                                TimePoint now, Duration skew) {
  if (s.code() != Code::kExpired) return true;
  return now - skew >= t.valid_until();
}

}  // namespace

/// One batch slice sharing a token fingerprint: the chain verdict, the
/// parsed token and the delegate-key verification context are computed
/// once for every message in `items`.
struct VerifyPipeline::Group {
  crypto::Fingerprint256 fp;
  std::vector<std::size_t> items;  // indices into the batch, admission order

  // Resolution state, written by verify_group (disjoint per group, so
  // groups may resolve on different pool workers):
  const AuthorizationToken* token = nullptr;  // cache entry or &parsed
  AuthorizationToken parsed;                  // cache-miss storage
  Status chain = Status::ok();                // per-key chain verdict
  bool from_cache = false;                    // token/chain came from cache
  bool store_ok = false;                      // commit positive entry
  bool cacheable_reject = false;              // commit negative entry
};

/// Drain worker pool: same shape as Broker's match pool — a mutex/condvar
/// task queue drained by `threads` joinable workers.
class VerifyPipeline::Pool {
 public:
  explicit Pool(int threads) {
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

VerifyPipeline::VerifyPipeline(TrustAnchors anchors,
                               transport::NetworkBackend& backend,
                               std::shared_ptr<TokenVerifyCache> cache,
                               TracingConfig::Verification config,
                               VerdictHook on_verdict)
    : anchors_(std::move(anchors)),
      backend_(backend),
      cache_(std::move(cache)),
      config_([&config] {
        if (config.batch_max == 0) config.batch_max = 1;
        return config;
      }()),
      on_verdict_(std::move(on_verdict)),
      concurrent_(backend.concurrent_dispatch()) {
  // Worker threads only make sense when the backend tolerates posts from
  // foreign threads; clamping (rather than rejecting) mirrors
  // Broker::Options::match_threads so one config runs on both backends.
  pool_threads_ = concurrent_ && config_.threads > 0 ? config_.threads : 0;
  if (pool_threads_ > 0) pool_ = std::make_unique<Pool>(pool_threads_);
}

VerifyPipeline::~VerifyPipeline() {
  transport::TimerId timer = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    timer = delay_timer_;
    delay_timer_ = 0;
  }
  if (timer != 0) backend_.cancel(timer);
  pool_.reset();  // joins workers; any in-flight drain completes first
}

void VerifyPipeline::admit(pubsub::Broker& self, pubsub::Message m,
                           std::string expected_topic,
                           transport::NodeId from) {
  if (broker_ == nullptr) {  // node context: no publication precedes this
    broker_ = &self;
    node_ = self.node();
  }
  counters_.queued.inc();
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back({std::move(m), from, std::move(expected_topic)});
  maybe_start_drain(lock);
}

void VerifyPipeline::maybe_start_drain(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty() || drain_active_) return;
  if (!concurrent_) {
    // Virtual time: drain as soon as possible — the backend runs the task
    // at the same virtual timestamp, after any publications already
    // enqueued there, so same-timestamp arrivals still batch.
    start_drain_locked(lock);
    return;
  }
  if (queue_.size() >= config_.batch_max || config_.batch_delay == 0) {
    // Full batch, or no accumulation window configured: drain now. With
    // batch_delay == 0 batching still happens under load — everything
    // admitted while this drain is busy forms the next batch.
    start_drain_locked(lock);
    return;
  }
  if (delay_timer_ == 0) {
    // Latency bound: the oldest queued message waits at most batch_delay.
    delay_timer_ = backend_.schedule(node_, config_.batch_delay, [this] {
      std::unique_lock<std::mutex> relock(mu_);
      delay_timer_ = 0;
      if (!queue_.empty() && !drain_active_) start_drain_locked(relock);
    });
  }
}

void VerifyPipeline::start_drain_locked(std::unique_lock<std::mutex>& lock) {
  drain_active_ = true;
  lock.unlock();
  if (pool_) {
    pool_->submit([this] { run_drain(); });
  } else {
    backend_.post(node_, [this] { run_drain(); });
  }
}

void VerifyPipeline::run_drain() {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.max_drain_depth.observe(queue_.size());
    // Real-time drains are bounded so the latency of the first message is
    // not hostage to a flood behind it; virtual-time drains take the whole
    // queue (time does not advance while we verify).
    const std::size_t take =
        concurrent_ ? std::min(queue_.size(), config_.batch_max)
                    : queue_.size();
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  counters_.drains.inc();
  counters_.batched.inc(batch.size());

  const TimePoint now = backend_.now();

  // Group the batch by token fingerprint. Admission order is preserved
  // both across the batch (verdicts index it) and within each group.
  std::vector<Group> groups;
  {
    std::unordered_map<crypto::Fingerprint256, std::size_t,
                       crypto::Fingerprint256Hash>
        by_fp;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const crypto::Fingerprint256 fp =
          crypto::fingerprint(batch[i].msg.auth_token);
      const auto [it, inserted] = by_fp.emplace(fp, groups.size());
      if (inserted) {
        groups.push_back(Group{});
        groups.back().fp = fp;
      }
      groups[it->second].items.push_back(i);
    }
  }
  counters_.keys_deduped.inc(batch.size() - groups.size());

  // Cache lookups stay on the coordinator: drains are serialized, so the
  // cache never sees two threads (see header). Entry pointers stay valid
  // across lookups of distinct fingerprints — stores are deferred below.
  if (cache_) {
    for (Group& g : groups) {
      const TokenVerifyCache::Lookup cached = cache_->lookup(g.fp, now);
      if (cached.kind == TokenVerifyCache::Lookup::Kind::kOk) {
        g.token = cached.token;
        g.from_cache = true;
      } else if (cached.kind == TokenVerifyCache::Lookup::Kind::kRejected) {
        g.chain = cached.status;
        g.from_cache = true;
      }
    }
  }

  // Resolve the groups — fanned out over the pool when it has spare
  // workers, with the coordinator pulling from the same index so it never
  // blocks on work it could do itself.
  std::vector<Status> verdicts(batch.size(), Status::ok());
  const std::size_t helpers =
      pool_threads_ > 1 && groups.size() > 1
          ? std::min<std::size_t>(static_cast<std::size_t>(pool_threads_) - 1,
                                  groups.size() - 1)
          : 0;
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    for (std::size_t i = 0; (i = next.fetch_add(1)) < groups.size();) {
      verify_group(groups[i], batch, verdicts, now);
    }
  };
  if (helpers == 0) {
    work();
  } else {
    std::mutex join_mu;
    std::condition_variable join_cv;
    std::size_t done = 0;
    for (std::size_t h = 0; h < helpers; ++h) {
      pool_->submit([&] {
        work();
        // Notify while holding the lock: the coordinator destroys these
        // stack-local join primitives as soon as its wait returns, so the
        // notify must complete before the mutex is released.
        std::lock_guard<std::mutex> lock(join_mu);
        ++done;
        join_cv.notify_one();
      });
    }
    work();
    std::unique_lock<std::mutex> lock(join_mu);
    join_cv.wait(lock, [&] { return done == helpers; });
  }

  // Commit cache stores (coordinator only, after the join — group tokens
  // may point into the cache until here).
  if (cache_) {
    for (Group& g : groups) {
      if (g.from_cache) continue;
      if (g.store_ok) {
        cache_->store_ok(g.fp, std::move(g.parsed), now);
      } else if (g.cacheable_reject) {
        cache_->store_rejected(g.fp, g.chain, now);
      }
    }
  }

  if (pool_) {
    backend_.post(node_, [this, batch = std::move(batch),
                          verdicts = std::move(verdicts)]() mutable {
      apply(batch, verdicts);
    });
  } else {
    apply(batch, verdicts);  // already in the node context
  }
}

void VerifyPipeline::verify_group(Group& g, const std::vector<Pending>& batch,
                                  std::vector<Status>& verdicts,
                                  TimePoint now) const {
  if (g.token == nullptr && g.chain.is_ok()) {
    // Cache miss: run the full chain once for this key group.
    try {
      g.parsed =
          AuthorizationToken::deserialize(batch[g.items.front()].msg.auth_token);
    } catch (const SerializeError& e) {
      // Malformed bytes are never cached (same rule as the inline filter).
      g.chain = unauthenticated(std::string("malformed token: ") + e.what());
    }
    if (g.chain.is_ok()) {
      g.chain = g.parsed.verify(anchors_.tdn_key, anchors_.ca_key, now);
      if (g.chain.is_ok()) {
        g.token = &g.parsed;
        g.store_ok = true;
      } else {
        g.cacheable_reject = rejection_is_deterministic(
            g.chain, g.parsed, now, kDefaultSkewAllowance);
      }
    }
  }
  if (g.token == nullptr) {
    for (const std::size_t i : g.items) verdicts[i] = g.chain;
    return;
  }

  // Per-key amortization: the topic string, the rights check and the
  // delegate-key Montgomery context are computed once per group.
  const std::string topic = g.token->trace_topic().to_string();
  const bool rights_ok = g.token->rights() == TokenRights::kPublish;
  const crypto::RsaVerifyContext ctx(g.token->delegate_key());
  for (const std::size_t i : g.items) {
    const Pending& p = batch[i];
    if (!rights_ok) {
      verdicts[i] = permission_denied("token does not grant publish rights");
    } else if (p.expected_topic != topic) {
      verdicts[i] = permission_denied("token is for a different trace topic");
    } else if (!ctx.verify(p.msg.signable_bytes(), p.msg.signature)) {
      verdicts[i] =
          unauthenticated("trace message not signed by the delegate key");
    } else {
      verdicts[i] = Status::ok();
    }
  }
}

void VerifyPipeline::apply(std::vector<Pending>& batch,
                           const std::vector<Status>& verdicts) {
  // Node context. Verdicts land in admission order, so an accepted trace
  // can never be overtaken by one admitted after it.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const bool accepted = verdicts[i].is_ok();
    if (on_verdict_) on_verdict_(accepted);
    if (accepted) {
      broker_->release_deferred(std::move(batch[i].msg), batch[i].from);
    } else {
      broker_->reject_deferred(batch[i].from, verdicts[i]);
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  drain_active_ = false;
  maybe_start_drain(lock);  // anything queued while we verified
}

bool VerifyPipeline::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() && !drain_active_;
}

}  // namespace et::tracing
