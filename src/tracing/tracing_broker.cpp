#include "src/tracing/tracing_broker.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/pubsub/constrained_topic.h"

namespace et::tracing {

namespace tt = pubsub::trace_topics;

TracingBrokerService::TracingBrokerService(pubsub::Broker& broker,
                                           TrustAnchors anchors,
                                           TracingConfig config,
                                           std::uint64_t seed)
    : broker_(broker),
      anchors_(std::move(anchors)),
      config_(config),
      rng_(seed),
      wheel_(TimerWheel::Scheduler{
                 [this](Duration d, std::function<void()> f) {
                   return broker_.backend().schedule(broker_.node(), d,
                                                     std::move(f));
                 },
                 [this](std::uint64_t id) { broker_.backend().cancel(id); },
                 [this] { return broker_.backend().now(); }},
             config.timer_wheel_tick),
      emitter_(broker, rng_,
               TraceEmitter::Options{config.digest_interval,
                                     config.digest_max_entries},
               &wheel_) {
  // §3.2: entities register with THE broker they are connected to, so the
  // registration subscriptions must not propagate — otherwise every broker
  // in the network would mint a (phantom) session for every entity.
  broker_.subscribe_local(
      tt::registration(),
      [this](const pubsub::Message& m) { handle_registration(m); },
      /*local_only=*/true);
  broker_.subscribe_local(
      tt::registration_batch(),
      [this](const pubsub::Message& m) { handle_batch_registration(m); },
      /*local_only=*/true);
  // A client whose link vanished without a silent-mode request gets a
  // DISCONNECT trace (paper Table 1) and its session torn down. For a host
  // session every roster member is disconnected individually so trackers
  // keep per-entity semantics.
  broker_.add_client_unreachable_listener([this](const std::string& entity) {
    const auto it = by_entity_.find(entity);
    if (it == by_entity_.end()) return;
    const auto sit = sessions_.find(it->second);
    if (sit == sessions_.end()) return;
    Session& s = sit->second;
    const Uuid sid = s.session_id;
    if (s.is_host()) {
      const auto members = s.members;
      for (const auto h : members) {
        if (!sessions_.contains(sid)) return;
        if (!roster_.contains(h)) continue;
        TracePayload p;
        p.type = TraceType::kDisconnect;
        p.entity_id = roster_[h].entity_id;
        p.detail = "client link lost";
        publish_trace(s, std::move(p));
      }
    } else {
      TracePayload p;
      p.type = TraceType::kDisconnect;
      p.entity_id = entity;
      p.detail = "client link lost";
      publish_trace(s, std::move(p));
    }
    if (sessions_.contains(sid)) erase_session(s);
  });
}

bool TracingBrokerService::has_session_for(const std::string& entity_id) const {
  return by_entity_.contains(entity_id);
}

TracingBrokerService::SessionView TracingBrokerService::session_view(
    const std::string& entity_id) const {
  SessionView v;
  const auto it = by_entity_.find(entity_id);
  if (it == by_entity_.end()) return v;
  const auto sit = sessions_.find(it->second);
  if (sit == sessions_.end()) return v;
  const Session& s = sit->second;
  v.exists = true;
  v.current_ping_interval = s.ping_interval;
  v.effective_interest = effective_interest(s);
  v.secure = s.secure;
  if (s.entity_id == entity_id || !s.is_host()) {
    v.suspected = s.suspected;
    v.failed = s.failed;
    return v;
  }
  for (const auto h : s.members) {
    if (!roster_.contains(h)) continue;
    const MemberRecord& rec = roster_[h];
    if (rec.entity_id != entity_id) continue;
    v.suspected = rec.suspected;
    v.failed = rec.failed;
    break;
  }
  return v;
}

TraceEmitter::Signing TracingBrokerService::signing(const Session& s) const {
  return TraceEmitter::Signing{s.trace_topic, &s.token, &s.delegate_key,
                               &s.trace_key, s.secure};
}

void TracingBrokerService::publish_registration_error(
    const std::string& entity_id, std::uint64_t request_id,
    const std::string& error) {
  // Plaintext error marker on the entity's response topic (§3.2: "an
  // error message is returned back to the entity").
  Writer w;
  w.u64(request_id);
  w.str(error);
  pubsub::Message m;
  m.topic = "Constrained/Traces/" + entity_id +
            "/Subscribe-Only/RegistrationResponse";
  m.payload = std::move(w).take();
  m.encrypted = false;
  broker_.publish_from_broker(std::move(m));
}

bool TracingBrokerService::verify_registration(
    const pubsub::Message& m, const std::string& id,
    const crypto::Credential& credential,
    const discovery::TopicAdvertisement& advertisement,
    std::uint64_t request_id) {
  const TimePoint now = broker_.backend().now();

  // Credential must chain to the CA.
  if (const Status s = credential.verify(anchors_.ca_key, now); !s.is_ok()) {
    ++stats_.rejected_registrations;
    publish_registration_error(id, request_id, s.to_string());
    return false;
  }
  // Proof of possession: message signed with the credential's key (§3.2).
  if (!credential.public_key().verify(m.signable_bytes(), m.signature)) {
    ++stats_.rejected_registrations;
    publish_registration_error(id, request_id,
                               "registration signature invalid");
    return false;
  }
  // Identity consistency.
  if (credential.subject() != id) {
    ++stats_.rejected_registrations;
    publish_registration_error(id, request_id, "credential subject mismatch");
    return false;
  }
  // Trace-topic provenance: TDN-signed advertisement owned by this entity.
  if (const Status s = advertisement.verify(anchors_.tdn_key, now);
      !s.is_ok()) {
    ++stats_.rejected_registrations;
    publish_registration_error(id, request_id, s.to_string());
    return false;
  }
  if (advertisement.owner().subject() != id) {
    ++stats_.rejected_registrations;
    publish_registration_error(id, request_id,
                               "advertisement owned by someone else");
    return false;
  }
  return true;
}

void TracingBrokerService::mint_session(const std::string& id,
                                        const crypto::Credential& cred,
                                        const discovery::TopicAdvertisement& ad,
                                        std::uint64_t request_id,
                                        std::vector<std::string> member_ids) {
  // Replace any existing session claiming this id or one of its members
  // (re-registration; a member migrating between hosts follows its newest
  // registration).
  auto replace = [this](const std::string& entity) {
    const auto it = by_entity_.find(entity);
    if (it == by_entity_.end()) return;
    const auto sit = sessions_.find(it->second);
    if (sit != sessions_.end()) {
      erase_session(sit->second);
    } else {
      by_entity_.erase(it);
    }
  };
  replace(id);
  for (const std::string& member : member_ids) replace(member);

  Session s;
  s.session_id = Uuid::generate(rng_);
  s.entity_id = id;
  s.trace_topic = ad.topic().to_string();
  s.credential = cred;
  s.advertisement = ad;
  s.session_key = crypto::SecretKey::generate(rng_, config_.symmetric_alg);
  s.ping_interval = config_.ping_interval;
  s.members.reserve(member_ids.size());
  for (std::string& member : member_ids) {
    s.members.push_back(roster_.emplace(MemberRecord{std::move(member)}));
  }
  const Uuid sid = s.session_id;

  // Broker subscribes to the entity->broker session topic (§3.2). The
  // entity is connected here, so the subscription stays local.
  broker_.subscribe_local(
      tt::entity_to_broker(s.trace_topic, sid.to_string()),
      [this, sid](const pubsub::Message& msg) {
        handle_session_message(sid, msg);
      },
      /*local_only=*/true);
  // ... and to the interest-response topic for this trace topic (§3.5).
  broker_.subscribe_local(
      tt::interest_response(s.trace_topic),
      [this, sid](const pubsub::Message& msg) {
        handle_interest_response(sid, msg);
      });

  // Hybrid-encrypted response: only the registering entity can read it.
  RegistrationResponse resp;
  resp.request_id = request_id;
  resp.session_id = sid;
  resp.session_key = s.session_key.serialize();
  resp.broker_name = broker_.name();
  const SealedEnvelope env = SealedEnvelope::seal(
      resp.serialize(), cred.public_key(), rng_, config_.symmetric_alg);
  pubsub::Message out;
  out.topic =
      "Constrained/Traces/" + id + "/Subscribe-Only/RegistrationResponse";
  out.payload = env.serialize();
  out.encrypted = true;
  broker_.publish_from_broker(std::move(out));

  // Start pulling (§3.3). Trace publication waits for the token.
  s.ping_timer =
      wheel_.schedule(s.ping_interval, [this, sid] { on_ping_timer(sid); });
  s.metrics_timer = wheel_.schedule(config_.metrics_interval,
                                    [this, sid] { on_metrics_timer(sid); });

  by_entity_[s.entity_id] = sid;
  for (const auto h : s.members) by_entity_[roster_[h].entity_id] = sid;
  sessions_.emplace(sid, std::move(s));
  ++stats_.registrations;
}

void TracingBrokerService::handle_registration(const pubsub::Message& m) {
  RegistrationRequest req;
  try {
    req = RegistrationRequest::deserialize(m.payload);
  } catch (const SerializeError&) {
    ++stats_.rejected_registrations;
    return;
  }
  if (!verify_registration(m, req.entity_id, req.credential,
                           req.advertisement, req.request_id)) {
    return;
  }
  mint_session(req.entity_id, req.credential, req.advertisement,
               req.request_id, {});
}

void TracingBrokerService::handle_batch_registration(const pubsub::Message& m) {
  BatchRegistrationRequest req;
  try {
    req = BatchRegistrationRequest::deserialize(m.payload);
  } catch (const SerializeError&) {
    ++stats_.rejected_registrations;
    return;
  }
  if (req.entity_ids.empty()) {
    ++stats_.rejected_registrations;
    publish_registration_error(req.host_id, req.request_id,
                               "batch registration without entities");
    return;
  }
  if (!verify_registration(m, req.host_id, req.credential, req.advertisement,
                           req.request_id)) {
    return;
  }
  mint_session(req.host_id, req.credential, req.advertisement, req.request_id,
               std::move(req.entity_ids));
  ++stats_.batch_registrations;
}

Result<SessionMessage> TracingBrokerService::authenticate_session_message(
    Session& s, const pubsub::Message& m) const {
  if (m.encrypted) {
    // §6.3: possession of the session key authenticates the entity.
    try {
      return SessionMessage::deserialize(s.session_key.decrypt(m.payload));
    } catch (const std::exception& e) {
      return unauthenticated(std::string("session decrypt failed: ") +
                             e.what());
    }
  }
  // §4.2: every entity-initiated message is signed.
  if (!s.credential.public_key().verify(m.signable_bytes(), m.signature)) {
    return unauthenticated("session message signature invalid");
  }
  try {
    return SessionMessage::deserialize(m.payload);
  } catch (const SerializeError& e) {
    return invalid_argument(std::string("malformed session message: ") +
                            e.what());
  }
}

void TracingBrokerService::handle_session_message(const Uuid& session_id,
                                                  const pubsub::Message& m) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;

  Result<SessionMessage> sm = authenticate_session_message(s, m);
  if (!sm.ok()) {
    ++stats_.rejected_session_messages;
    ET_LOG(kDebug) << broker_.name() << ": dropped session message from "
                   << s.entity_id << ": " << sm.status().to_string();
    return;
  }

  switch (sm->type) {
    case SessionMsgType::kPingResponse:
      handle_ping_response(s, *sm);
      break;
    case SessionMsgType::kStateReport: {
      if (!sm->state) break;
      s.last_state = sm->state;
      TracePayload p;
      p.type = state_trace_type(*sm->state);
      p.entity_id = s.entity_id;
      p.state = sm->state;
      publish_trace(s, std::move(p));
      break;
    }
    case SessionMsgType::kLoadReport: {
      if (!sm->load) break;
      TracePayload p;
      p.type = TraceType::kLoadInformation;
      p.entity_id = s.entity_id;
      p.load = sm->load;
      publish_trace(s, std::move(p));
      break;
    }
    case SessionMsgType::kTokenDelivery:
      handle_token_delivery(s, *sm);
      break;
    case SessionMsgType::kTraceKeyDelivery: {
      try {
        s.trace_key = crypto::SecretKey::deserialize(sm->trace_key);
        s.secure = true;
      } catch (const std::exception&) {
        ++stats_.rejected_session_messages;
      }
      break;
    }
    case SessionMsgType::kSilentMode: {
      TracePayload p;
      p.type = TraceType::kRevertingToSilentMode;
      p.entity_id = s.entity_id;
      publish_trace(s, std::move(p));
      // The publish may reentrantly tear down this session (see
      // on_ping_timer); only tear down here if it is still live.
      if (sessions_.contains(session_id)) erase_session(s);
      break;
    }
    default:
      break;
  }
}

void TracingBrokerService::handle_token_delivery(Session& s,
                                                 const SessionMessage& sm) {
  AuthorizationToken token;
  crypto::RsaPrivateKey delegate;
  try {
    token = AuthorizationToken::deserialize(sm.token);
    delegate = crypto::RsaPrivateKey::deserialize(sm.delegate_secret);
  } catch (const std::exception&) {
    ++stats_.rejected_session_messages;
    return;
  }
  const TimePoint now = broker_.backend().now();
  if (const Status st = token.verify(anchors_.tdn_key, anchors_.ca_key, now);
      !st.is_ok()) {
    ++stats_.rejected_session_messages;
    ET_LOG(kDebug) << broker_.name() << ": rejected token from "
                   << s.entity_id << ": " << st.to_string();
    return;
  }
  if (token.trace_topic().to_string() != s.trace_topic ||
      token.rights() != TokenRights::kPublish) {
    ++stats_.rejected_session_messages;
    return;
  }
  if (!(delegate.public_key() == token.delegate_key())) {
    ++stats_.rejected_session_messages;
    return;
  }
  s.token = std::move(token);
  s.delegate_key = std::move(delegate);

  if (!s.join_published) {
    // "The first time a traced entity registers with a broker, the broker
    // issues a JOIN trace." Publication needs the token, so JOIN goes out
    // as soon as the delegation lands. One JOIN per session — a host's
    // roster is announced by its first digest/heartbeats.
    s.join_published = true;
    TracePayload p;
    p.type = TraceType::kJoin;
    p.entity_id = s.entity_id;
    publish_trace(s, std::move(p));
  }
  if (s.gauge_timer == 0) {
    const Uuid sid = s.session_id;
    s.gauge_timer = wheel_.schedule(config_.gauge_interval,
                                    [this, sid] { on_gauge_timer(sid); });
  }
}

void TracingBrokerService::member_miss(Session& s, MemberRecord& rec) {
  ++rec.consecutive_misses;
  if (!rec.failed && rec.consecutive_misses >= config_.failed_misses) {
    rec.failed = true;
    ++stats_.failures;
    TracePayload p;
    p.type = TraceType::kFailed;
    p.entity_id = rec.entity_id;
    p.detail = "no ping response after " +
               std::to_string(rec.consecutive_misses) + " attempts";
    publish_trace(s, std::move(p));
  } else if (!rec.suspected &&
             rec.consecutive_misses >= config_.suspicion_misses) {
    rec.suspected = true;
    ++stats_.suspicions;
    TracePayload p;
    p.type = TraceType::kFailureSuspicion;
    p.entity_id = rec.entity_id;
    p.detail = std::to_string(rec.consecutive_misses) +
               " consecutive pings unanswered";
    publish_trace(s, std::move(p));
  }
}

void TracingBrokerService::member_alive(Session& s, MemberRecord& rec) {
  const bool was_down = rec.suspected || rec.failed;
  rec.consecutive_misses = 0;
  rec.suspected = false;
  rec.failed = false;
  TracePayload p;
  p.type = TraceType::kAllsWell;
  p.entity_id = rec.entity_id;
  // Recovery ALLS_WELLs carry detail so they travel urgently (ending a
  // suspicion must not wait for the next digest flush).
  if (was_down) p.detail = "entity responsive again";
  publish_trace(s, std::move(p));
}

void TracingBrokerService::on_ping_timer(const Uuid& session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  const TimePoint now = broker_.backend().now();

  // Account for the previous ping if it is still outstanding.
  if (!s.outstanding.empty()) {
    ++s.consecutive_misses;
    // Hasten detection: shrink the interval (§3.3).
    s.ping_interval = std::max(config_.min_ping_interval, s.ping_interval / 2);
    if (s.is_host()) {
      // Whole-host miss: every member accrues one miss and escalates on
      // its own thresholds. Session-level flags track the host for the
      // disconnect escalation below; no host-level trace is published —
      // trackers observe per-member suspicions.
      s.suspected = s.consecutive_misses >= config_.suspicion_misses;
      s.failed = s.consecutive_misses >= config_.failed_misses;
      const auto members = s.members;
      for (const auto h : members) {
        if (!sessions_.contains(session_id)) return;
        if (!roster_.contains(h)) continue;
        member_miss(s, roster_[h]);
      }
      if (!sessions_.contains(session_id)) return;
    } else if (!s.failed && s.consecutive_misses >= config_.failed_misses) {
      s.failed = true;
      ++stats_.failures;
      TracePayload p;
      p.type = TraceType::kFailed;
      p.entity_id = s.entity_id;
      p.detail = "no ping response after " +
                 std::to_string(s.consecutive_misses) + " attempts";
      publish_trace(s, std::move(p));
    } else if (!s.suspected &&
               s.consecutive_misses >= config_.suspicion_misses) {
      s.suspected = true;
      ++stats_.suspicions;
      TracePayload p;
      p.type = TraceType::kFailureSuspicion;
      p.entity_id = s.entity_id;
      p.detail = std::to_string(s.consecutive_misses) +
                 " consecutive pings unanswered";
      publish_trace(s, std::move(p));
    }
  }

  // Final escalation: once an entity has stayed FAILED long enough
  // (disconnect_misses total consecutive misses), presume departure —
  // publish DISCONNECT and drop the session instead of probing forever.
  // The entity must then re-register, so trackers observe an explicit
  // RECOVERING -> READY transition rather than an unexplained revival.
  if (config_.disconnect_misses > 0 && s.failed &&
      s.consecutive_misses >= config_.disconnect_misses) {
    ++stats_.disconnects;
    if (s.is_host()) {
      const auto members = s.members;
      for (const auto h : members) {
        if (!sessions_.contains(session_id)) return;
        if (!roster_.contains(h)) continue;
        TracePayload p;
        p.type = TraceType::kDisconnect;
        p.entity_id = roster_[h].entity_id;
        p.detail = "presumed departed: " +
                   std::to_string(s.consecutive_misses) +
                   " consecutive pings unanswered";
        publish_trace(s, std::move(p));
      }
    } else {
      TracePayload p;
      p.type = TraceType::kDisconnect;
      p.entity_id = s.entity_id;
      p.detail = "presumed departed: " + std::to_string(s.consecutive_misses) +
                 " consecutive pings unanswered";
      publish_trace(s, std::move(p));
    }
    // The publish may have reentrantly torn the session down already.
    const auto sit = sessions_.find(session_id);
    if (sit != sessions_.end()) erase_session(sit->second);
    return;
  }

  // Issue the next ping (§3.3: monotonically increasing number + broker
  // timestamp). A FAILED entity keeps getting probed — at the relaxed base
  // rate — so recovery is eventually observed. One ping covers a host's
  // whole roster; the response's liveness bitmap fans it back out.
  SessionMessage ping;
  ping.type = SessionMsgType::kPing;
  ping.ping_number = s.next_ping_number++;
  ping.ping_timestamp = now;

  pubsub::Message m;
  m.topic = tt::broker_to_entity(s.entity_id, s.trace_topic,
                                 s.session_id.to_string());
  m.payload = ping.serialize();
  broker_.publish_from_broker(std::move(m));
  ++stats_.pings_sent;

  // Delivering to a client whose link just vanished reentrantly fires the
  // unreachable handler, which may erase this very session; `s` would
  // dangle (other map entries are unaffected — std::map references are
  // stable across foreign erases).
  if (!sessions_.contains(session_id)) return;

  s.outstanding[ping.ping_number] = now;
  s.window.push_back(PingRecord{ping.ping_number, now, false, 0, false});
  while (s.window.size() > static_cast<std::size_t>(config_.ping_history)) {
    s.outstanding.erase(s.window.front().number);
    s.window.pop_front();
  }

  const Duration next = s.failed ? config_.ping_interval : s.ping_interval;
  const Uuid sid = s.session_id;
  s.ping_timer = wheel_.schedule(next, [this, sid] { on_ping_timer(sid); });
}

void TracingBrokerService::handle_ping_response(Session& s,
                                                const SessionMessage& sm) {
  const auto out = s.outstanding.find(sm.ping_number);
  if (out == s.outstanding.end()) return;  // stale/duplicate response
  const TimePoint now = broker_.backend().now();
  const Duration rtt = now - sm.ping_timestamp;
  s.outstanding.erase(out);
  ++stats_.ping_responses;

  const bool out_of_order = sm.ping_number < s.last_responded;
  s.last_responded = std::max(s.last_responded, sm.ping_number);
  for (auto& rec : s.window) {
    if (rec.number == sm.ping_number) {
      rec.responded = true;
      rec.rtt = rtt;
      rec.out_of_order = out_of_order;
      break;
    }
  }

  s.consecutive_misses = 0;
  // Relax the interval back toward the configured base.
  s.ping_interval = std::min(config_.ping_interval, s.ping_interval * 2);
  const bool was_down = s.suspected || s.failed;
  s.suspected = false;
  s.failed = false;

  if (s.is_host()) {
    // Fan the liveness bitmap back out: bit i covers roster member i.
    // A responsive host answers for its members; a clear bit is a
    // per-member miss even though the host itself is up.
    const Uuid sid = s.session_id;
    const auto members = s.members;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!sessions_.contains(sid)) return;
      if (!roster_.contains(members[i])) continue;
      const bool alive = i / 8 < sm.liveness.size() &&
                         ((sm.liveness[i / 8] >> (i % 8)) & 1u) != 0;
      if (alive) {
        member_alive(s, roster_[members[i]]);
      } else {
        member_miss(s, roster_[members[i]]);
      }
    }
    return;
  }

  TracePayload p;
  p.type = TraceType::kAllsWell;
  p.entity_id = s.entity_id;
  if (was_down) p.detail = "entity responsive again";
  publish_trace(s, std::move(p));
}

void TracingBrokerService::on_metrics_timer(const Uuid& session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;

  if (!s.window.empty()) {
    NetworkMetrics metrics;
    std::size_t responded = 0, ooo = 0;
    double rtt_sum = 0;
    for (const auto& rec : s.window) {
      // Pings still outstanding aren't losses yet.
      if (rec.responded) {
        ++responded;
        rtt_sum += to_millis(rec.rtt);
        if (rec.out_of_order) ++ooo;
      }
    }
    const std::size_t settled =
        s.window.size() - s.outstanding.size();
    if (settled > 0) {
      metrics.loss_rate =
          static_cast<double>(settled - responded) / settled;
    }
    if (responded > 0) {
      metrics.mean_rtt_ms = rtt_sum / static_cast<double>(responded);
      metrics.out_of_order_rate =
          static_cast<double>(ooo) / static_cast<double>(responded);
    }

    TracePayload p;
    p.type = TraceType::kNetworkMetrics;
    p.entity_id = s.entity_id;
    p.metrics = metrics;
    publish_trace(s, std::move(p));
    // The publish may reentrantly tear down this session (see
    // on_ping_timer); do not touch `s` again if it did.
    if (!sessions_.contains(session_id)) return;
  }

  const Uuid sid = s.session_id;
  s.metrics_timer = wheel_.schedule(config_.metrics_interval,
                                    [this, sid] { on_metrics_timer(sid); });
}

void TracingBrokerService::on_gauge_timer(const Uuid& session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  ++s.gauge_round;

  TracePayload p;
  p.type = TraceType::kGaugeInterest;
  p.entity_id = s.entity_id;
  p.secured = s.secure;  // §5.1: flag that traces will be encrypted
  // The gauge probe itself rides the Interest topic unencrypted and, like
  // all broker-generated traces, carries the token (§5.1).
  emitter_.publish_raw(signing(s), tt::gauge_interest(s.trace_topic),
                       p.serialize());
  // The publish may reentrantly tear down this session (see
  // on_ping_timer); do not touch `s` again if it did.
  if (!sessions_.contains(session_id)) return;

  const Uuid sid = s.session_id;
  s.gauge_timer = wheel_.schedule(config_.gauge_interval,
                                  [this, sid] { on_gauge_timer(sid); });
}

void TracingBrokerService::handle_interest_response(const Uuid& session_id,
                                                    const pubsub::Message& m) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;

  InterestResponse resp;
  try {
    resp = InterestResponse::deserialize(m.payload);
  } catch (const SerializeError&) {
    return;
  }
  const TimePoint now = broker_.backend().now();
  // Trackers authenticate their interest (§5.1: "interested trackers ...
  // respond ... by including their credentials").
  if (!resp.credential.verify(anchors_.ca_key, now).is_ok() ||
      resp.credential.subject() != resp.tracker_id ||
      !resp.credential.public_key().verify(m.signable_bytes(), m.signature)) {
    return;
  }
  ++stats_.interest_responses;
  const bool first_interest = effective_interest(s) == 0;
  s.interests[resp.tracker_id] =
      TrackerInterest{resp.categories, s.gauge_round};

  // Interest edge 0 -> nonzero: replay the entity's current state so a
  // tracker that registers after a suppressed report (typically the
  // RECOVERING announcement of a failed-over session) still observes it.
  if (first_interest && s.last_state &&
      (effective_interest(s) & kCatStateTransitions) != 0) {
    TracePayload p;
    p.type = state_trace_type(*s.last_state);
    p.entity_id = s.entity_id;
    p.state = s.last_state;
    p.detail = "state replayed on interest";
    publish_trace(s, std::move(p));
  }

  if (s.secure && !resp.key_delivery_topic.empty() && !s.trace_key.empty()) {
    deliver_trace_key(s, resp);
  }
}

void TracingBrokerService::deliver_trace_key(Session& s,
                                             const InterestResponse& resp) {
  // §5.1: seal {key, algorithm, padding} to the tracker's credential.
  const SealedEnvelope env =
      SealedEnvelope::seal(s.trace_key.serialize(),
                           resp.credential.public_key(), rng_,
                           config_.symmetric_alg);
  pubsub::Message m;
  m.topic = resp.key_delivery_topic;
  m.payload = env.serialize();
  m.encrypted = true;
  broker_.publish_from_broker(std::move(m));
  ++stats_.keys_distributed;
}

std::uint8_t TracingBrokerService::effective_interest(
    const Session& s) const {
  std::uint8_t mask = 0;
  for (const auto& [tracker, rec] : s.interests) {
    if (rec.last_round + config_.interest_ttl_rounds >= s.gauge_round) {
      mask |= rec.mask;
    }
  }
  return mask;
}

void TracingBrokerService::publish_trace(Session& s, TracePayload payload) {
  if (s.token.empty()) return;  // delegation not complete yet
  const std::uint8_t category = category_of(payload.type);
  if (category == 0) return;  // GAUGE_INTEREST goes through on_gauge_timer
  // §3.5: traces are issued only when some tracker wants the category.
  if ((effective_interest(s) & category) == 0) {
    ++stats_.traces_suppressed_no_interest;
    return;
  }
  // The emitter owns the signing ritual (and, with digests enabled, the
  // coalescing choice). The pending digest is keyed by the session's
  // entity id — the host for batch sessions.
  emitter_.trace(signing(s), s.entity_id, std::move(payload));
  ++stats_.traces_published;
}

void TracingBrokerService::erase_session(Session& s) {
  // Extract first: any reentrant lookup (a flush's publish can fire the
  // client-unreachable listener) must no longer find this session.
  auto node = sessions_.extract(s.session_id);
  if (node.empty()) return;
  Session& dead = node.mapped();
  wheel_.cancel(dead.ping_timer);
  wheel_.cancel(dead.gauge_timer);
  wheel_.cancel(dead.metrics_timer);
  by_entity_.erase(dead.entity_id);
  for (const auto h : dead.members) {
    if (!roster_.contains(h)) continue;
    by_entity_.erase(roster_[h].entity_id);
    roster_.erase(h);
  }
  dead.members.clear();
  // Ship any heartbeats observed before teardown.
  emitter_.flush(dead.entity_id);
}

}  // namespace et::tracing
