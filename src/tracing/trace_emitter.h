// One emission path for every signed trace publication.
//
// Every trace a hosting broker publishes goes through the same ritual:
// stamp publisher/sequence/timestamp, attach the entity's authorization
// token, sign with the delegate key (§4.3), optionally encrypt with the
// trace key (§5.1), hand to the broker. That ritual used to be duplicated
// across publish_trace, the gauge probe, and the per-entity heartbeat
// path; `TraceEmitter` folds it into one place and makes digest-vs-
// per-entity emission a configuration choice instead of a call-site fork.
//
// With `Options::digest_interval == 0` the emitter is a pure passthrough:
// every trace() publishes one per-entity message immediately — byte-
// identical to the historical behaviour. With a nonzero interval,
// coalescible traces (plain ALLS_WELL heartbeats) are appended to a
// per-host pending `TraceDigest` and flushed as one signed digest message
// per interval (or early when the digest fills up). Urgent traces —
// suspicions, failures, state transitions, recovery ALLS_WELLs carrying
// detail — always publish immediately, after flushing the host's pending
// digest so trackers never observe a recovery before the heartbeats that
// preceded it.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/timer_wheel.h"
#include "src/crypto/rsa.h"
#include "src/crypto/secret_key.h"
#include "src/persist/ledger.h"
#include "src/pubsub/broker.h"
#include "src/pubsub/client.h"
#include "src/tracing/authorization_token.h"
#include "src/tracing/trace_digest.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {

class TraceEmitter {
 public:
  struct Options {
    /// 0 = per-entity passthrough; > 0 = coalesce plain ALLS_WELL traces
    /// into one digest per host per interval.
    Duration digest_interval = 0;
    /// Flush a pending digest early once it holds this many entries.
    std::size_t digest_max_entries = 256;
  };

  /// Borrowed signing material for one session; valid for the duration of
  /// the call only (the emitter copies what it must keep for pending
  /// digests).
  struct Signing {
    std::string trace_topic;  // UUID string minted by the TDN
    const AuthorizationToken* token = nullptr;
    const crypto::RsaPrivateKey* delegate_key = nullptr;
    const crypto::SecretKey* trace_key = nullptr;
    bool secure = false;
  };

  struct Stats {
    std::uint64_t traces_published = 0;   // per-entity messages
    std::uint64_t digests_published = 0;  // digest messages
    std::uint64_t digest_entries = 0;     // observations carried in digests
  };

  /// `wheel` is required when `options.digest_interval > 0` (flush timers
  /// ride the coalescing wheel); it may be null in passthrough mode.
  TraceEmitter(pubsub::Broker& broker, Rng& rng, Options options,
               TimerWheel* wheel = nullptr);
  /// Passthrough emitter: per-entity publication, no coalescing.
  TraceEmitter(pubsub::Broker& broker, Rng& rng)
      : TraceEmitter(broker, rng, Options()) {}
  ~TraceEmitter();

  TraceEmitter(const TraceEmitter&) = delete;
  TraceEmitter& operator=(const TraceEmitter&) = delete;

  /// Publishes one observation. `host_id` keys the pending digest (the
  /// traced host for batch sessions; the entity itself otherwise). The
  /// payload's issued_at/secured fields are stamped here.
  void trace(const Signing& signing, const std::string& host_id,
             TracePayload payload);

  /// Publishes an already-serialized payload on an explicit topic with the
  /// standard token + delegate signature, never encrypted or coalesced
  /// (gauge probes ride the Interest topic in the clear, §5.1).
  void publish_raw(const Signing& signing, std::string topic, Bytes payload);

  /// Publishes `host_id`'s pending digest now, if any.
  void flush(const std::string& host_id);
  void flush_all();

  [[nodiscard]] std::size_t pending_digests() const {
    return pending_.size();
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Attaches a tamper-evident ledger (DESIGN.md §16): every signed trace
  /// and digest publication is appended to its publication topic's hash
  /// chain — pre-encryption body plus the delegate signature — before the
  /// message enters routing. Gauge probes (publish_raw) are not ledgered:
  /// they are periodic cleartext measurements, not availability history.
  /// Null detaches. The ledger must outlive the emitter.
  void set_ledger(persist::TraceLedger* ledger) { ledger_ = ledger; }

 private:
  /// One host's accumulating digest plus owned copies of its signing
  /// material (the session may be gone by flush time).
  struct Pending {
    TraceDigest digest;
    std::string trace_topic;
    AuthorizationToken token;
    crypto::RsaPrivateKey delegate_key;
    crypto::SecretKey trace_key;
    bool secure = false;
    TimerWheel::WheelId flush_timer = 0;
  };

  /// Ledger metadata for one publication; null skips the ledger (gauge
  /// probes).
  struct LedgerMeta {
    std::string entity_id;
    std::uint8_t trace_type = 0;
    TimePoint issued_at = 0;
  };

  void publish_signed(std::string topic, Bytes body, bool encrypt,
                      const crypto::SecretKey& trace_key,
                      const AuthorizationToken& token,
                      const crypto::RsaPrivateKey& delegate_key,
                      const LedgerMeta* meta = nullptr);

  pubsub::Broker& broker_;
  Rng& rng_;
  Options options_;
  TimerWheel* wheel_;
  std::uint64_t sequence_ = 0;
  std::map<std::string, Pending> pending_;
  std::map<std::string, std::uint64_t> rounds_;  // per-host digest rounds
  Stats stats_;
  persist::TraceLedger* ledger_ = nullptr;
};

/// Client-side counterpart of the emitter's signing tail: stamp
/// publisher/sequence/timestamp, sign with `key`, publish through
/// `client`. Shared by the tracker's interest responses and the traced
/// entity's registration/session messages.
void publish_signed(pubsub::Client& client, pubsub::Message m,
                    const crypto::RsaPrivateKey& key, std::uint64_t& sequence,
                    TimePoint now);

}  // namespace et::tracing
