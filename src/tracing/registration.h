// Registration handshake payloads (paper §3.2) and interest responses
// (§3.5), plus the secure key-distribution payload (§5.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/serialize.h"
#include "src/common/uuid.h"
#include "src/crypto/credential.h"
#include "src/crypto/secret_key.h"
#include "src/discovery/advertisement.h"

namespace et::tracing {

/// Entity -> broker over the Registration constrained topic. The pubsub
/// message's `signature` field carries the proof-of-possession signature
/// over Message::signable_bytes() (§3.2 item 4).
struct RegistrationRequest {
  std::string entity_id;
  crypto::Credential credential;
  discovery::TopicAdvertisement advertisement;  // trace-topic provenance
  std::uint64_t request_id = 0;

  [[nodiscard]] Bytes serialize() const;
  static RegistrationRequest deserialize(BytesView b);
};

/// EntityHost -> broker over the RegistrationBatch constrained topic
/// (DESIGN.md §14): registers every co-hosted entity in one round-trip.
/// The host authenticates once — credential, advertisement provenance and
/// proof of possession are checked against `host_id` exactly as for a
/// single-entity registration — and the resulting session carries the
/// whole member roster. One delegation round then covers the batch.
struct BatchRegistrationRequest {
  std::string host_id;
  crypto::Credential credential;
  discovery::TopicAdvertisement advertisement;  // trace-topic provenance
  std::uint64_t request_id = 0;
  /// Co-hosted entity ids; bit i of a ping-response liveness bitmap
  /// refers to entity_ids[i].
  std::vector<std::string> entity_ids;

  [[nodiscard]] Bytes serialize() const;
  static BatchRegistrationRequest deserialize(BytesView b);
};

/// Broker -> entity, hybrid-encrypted (§3.2): the plaintext below is
/// AES-encrypted with a random secret key, which is itself RSA-encrypted
/// with the entity's public key so "only the entity in question is able to
/// decipher the contents".
struct RegistrationResponse {
  std::uint64_t request_id = 0;
  Uuid session_id;
  /// Serialized crypto::SecretKey: the session key used for the §6.3
  /// symmetric mode and for confidential token delivery.
  Bytes session_key;
  std::string broker_name;

  [[nodiscard]] Bytes serialize() const;
  static RegistrationResponse deserialize(BytesView b);
};

/// A hybrid-encrypted envelope: RSA-wrapped content key + AES ciphertext.
/// Used for registration responses and trace-key distribution ("the broker
/// uses a combination of the tracker's credential and a randomly generated
/// secret key to secure the payload", §5.1).
struct SealedEnvelope {
  Bytes wrapped_key;  // RSAES-PKCS1 of the content SecretKey material
  Bytes ciphertext;   // AES-CBC of the payload

  [[nodiscard]] Bytes serialize() const;
  static SealedEnvelope deserialize(BytesView b);

  /// Seals `plaintext` for the holder of `recipient`.
  static SealedEnvelope seal(BytesView plaintext,
                             const crypto::RsaPublicKey& recipient, Rng& rng,
                             crypto::SymmetricAlg alg);

  /// Opens with the recipient's private key. Throws std::invalid_argument
  /// on any mismatch (treat as tampering).
  [[nodiscard]] Bytes open(const crypto::RsaPrivateKey& key) const;
};

/// Tracker -> broker on the interest-response topic (§3.5). The pubsub
/// message signature carries the tracker's proof of possession.
struct InterestResponse {
  std::string tracker_id;
  crypto::Credential credential;
  std::uint8_t categories = 0;  // TraceCategory bitmask
  /// Topic the tracker expects the sealed trace key on (§5.1); empty when
  /// the tracker doesn't need the key.
  std::string key_delivery_topic;

  [[nodiscard]] Bytes serialize() const;
  static InterestResponse deserialize(BytesView b);
};

}  // namespace et::tracing
