#include "src/tracing/registration.h"

#include "src/crypto/secret_key.h"

namespace et::tracing {

Bytes RegistrationRequest::serialize() const {
  Writer w;
  w.str(entity_id);
  w.bytes(credential.serialize());
  w.bytes(advertisement.serialize());
  w.u64(request_id);
  return std::move(w).take();
}

RegistrationRequest RegistrationRequest::deserialize(BytesView b) {
  Reader r(b);
  RegistrationRequest out;
  out.entity_id = r.str();
  out.credential = crypto::Credential::deserialize(r.bytes());
  out.advertisement = discovery::TopicAdvertisement::deserialize(r.bytes());
  out.request_id = r.u64();
  r.expect_done();
  return out;
}

Bytes BatchRegistrationRequest::serialize() const {
  Writer w;
  w.str(host_id);
  w.bytes(credential.serialize());
  w.bytes(advertisement.serialize());
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(entity_ids.size()));
  for (const std::string& id : entity_ids) w.str(id);
  return std::move(w).take();
}

BatchRegistrationRequest BatchRegistrationRequest::deserialize(BytesView b) {
  Reader r(b);
  BatchRegistrationRequest out;
  out.host_id = r.str();
  out.credential = crypto::Credential::deserialize(r.bytes());
  out.advertisement = discovery::TopicAdvertisement::deserialize(r.bytes());
  out.request_id = r.u64();
  const std::uint32_t count = r.u32();
  out.entity_ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.entity_ids.push_back(r.str());
  r.expect_done();
  return out;
}

Bytes RegistrationResponse::serialize() const {
  Writer w;
  w.u64(request_id);
  w.raw(session_id.to_bytes());
  w.bytes(session_key);
  w.str(broker_name);
  return std::move(w).take();
}

RegistrationResponse RegistrationResponse::deserialize(BytesView b) {
  Reader r(b);
  RegistrationResponse out;
  out.request_id = r.u64();
  out.session_id = Uuid::from_bytes(r.raw(16));
  out.session_key = r.bytes();
  out.broker_name = r.str();
  r.expect_done();
  return out;
}

Bytes SealedEnvelope::serialize() const {
  Writer w;
  w.bytes(wrapped_key);
  w.bytes(ciphertext);
  return std::move(w).take();
}

SealedEnvelope SealedEnvelope::deserialize(BytesView b) {
  Reader r(b);
  SealedEnvelope out;
  out.wrapped_key = r.bytes();
  out.ciphertext = r.bytes();
  r.expect_done();
  return out;
}

SealedEnvelope SealedEnvelope::seal(BytesView plaintext,
                                    const crypto::RsaPublicKey& recipient,
                                    Rng& rng, crypto::SymmetricAlg alg) {
  const crypto::SecretKey content_key = crypto::SecretKey::generate(rng, alg);
  SealedEnvelope env;
  env.wrapped_key = recipient.encrypt(content_key.serialize(), rng);
  env.ciphertext = content_key.encrypt(plaintext, rng);
  return env;
}

Bytes SealedEnvelope::open(const crypto::RsaPrivateKey& key) const {
  const crypto::SecretKey content_key =
      crypto::SecretKey::deserialize(key.decrypt(wrapped_key));
  return content_key.decrypt(ciphertext);
}

Bytes InterestResponse::serialize() const {
  Writer w;
  w.str(tracker_id);
  w.bytes(credential.serialize());
  w.u8(categories);
  w.str(key_delivery_topic);
  return std::move(w).take();
}

InterestResponse InterestResponse::deserialize(BytesView b) {
  Reader r(b);
  InterestResponse out;
  out.tracker_id = r.str();
  out.credential = crypto::Credential::deserialize(r.bytes());
  out.categories = r.u8();
  out.key_delivery_topic = r.str();
  r.expect_done();
  return out;
}

}  // namespace et::tracing
