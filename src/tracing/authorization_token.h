// Authorization tokens (paper §4.3).
//
// A traced entity delegates the right to publish its traces to its hosting
// broker: it generates a fresh key pair, embeds the *public* half in a
// token listing the trace topic, the granted rights and a validity window,
// signs the token with its long-term key, and hands the *private* half to
// the broker over the encrypted session channel.
//
// "One reason why we use randomly generated key-pairs within the token is
// to ensure that no other broker within the network is aware of the broker
// that a given traced entity is connected to."
//
// Verification chain (run by every broker that routes a trace, and by
// trackers):
//   1. the embedded topic advertisement carries the TDN signature binding
//      the trace topic to the owner's credential;
//   2. the owner's credential chains to the trusted CA;
//   3. the token is signed by the owner's key;
//   4. the token has not expired — with an allowance for NTP-bounded clock
//      skew ("use of NTP timestamps ensures that timestamps are within
//      30-100 milliseconds of each other");
//   5. the trace message's signature verifies against the delegate key.
#pragma once

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/crypto/rsa.h"
#include "src/discovery/advertisement.h"

namespace et::tracing {

/// Rights grantable through a token.
enum class TokenRights : std::uint8_t {
  kPublish = 1,    // broker delegation (the normal case)
  kSubscribe = 2,
};

/// Default skew allowance applied to token validity checks (upper end of
/// the paper's 30-100 ms NTP bound).
inline constexpr Duration kDefaultSkewAllowance = 100 * kMillisecond;

class AuthorizationToken {
 public:
  AuthorizationToken() = default;

  /// Assembles and signs a token. `advertisement` binds the topic to the
  /// owner; `owner_key` must be the private key matching the
  /// advertisement's owner credential; `delegate_key` is the fresh public
  /// half whose private half goes to the broker.
  static AuthorizationToken create(
      const discovery::TopicAdvertisement& advertisement,
      const crypto::RsaPublicKey& delegate_key, TokenRights rights,
      TimePoint valid_from, TimePoint valid_until,
      const crypto::RsaPrivateKey& owner_key);

  [[nodiscard]] const Uuid& trace_topic() const {
    return advertisement_.topic();
  }
  [[nodiscard]] const discovery::TopicAdvertisement& advertisement() const {
    return advertisement_;
  }
  [[nodiscard]] const crypto::RsaPublicKey& delegate_key() const {
    return delegate_key_;
  }
  [[nodiscard]] TokenRights rights() const { return rights_; }
  [[nodiscard]] TimePoint valid_from() const { return valid_from_; }
  [[nodiscard]] TimePoint valid_until() const { return valid_until_; }
  [[nodiscard]] bool empty() const { return advertisement_.empty(); }

  /// Steps 1-4 of the verification chain. `tdn_key`/`ca_key` anchor trust;
  /// `skew` loosens the expiry bounds.
  [[nodiscard]] Status verify(const crypto::RsaPublicKey& tdn_key,
                              const crypto::RsaPublicKey& ca_key,
                              TimePoint now,
                              Duration skew = kDefaultSkewAllowance) const;

  /// Step 5: does `signature` over `message` come from the delegate?
  [[nodiscard]] bool verify_delegate_signature(BytesView message,
                                               BytesView signature) const;

  [[nodiscard]] Bytes tbs() const;
  [[nodiscard]] Bytes serialize() const;
  static AuthorizationToken deserialize(BytesView b);

 private:
  discovery::TopicAdvertisement advertisement_;
  crypto::RsaPublicKey delegate_key_;
  TokenRights rights_ = TokenRights::kPublish;
  TimePoint valid_from_ = 0;
  TimePoint valid_until_ = 0;
  Bytes owner_signature_;
};

}  // namespace et::tracing
