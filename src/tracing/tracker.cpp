#include "src/tracing/tracker.h"

#include "src/common/logging.h"
#include "src/pubsub/constrained_topic.h"
#include "src/tracing/trace_digest.h"
#include "src/tracing/trace_emitter.h"

namespace et::tracing {

namespace tt = pubsub::trace_topics;

Tracker::Tracker(transport::NetworkBackend& backend, crypto::Identity identity,
                 TrustAnchors anchors, std::uint64_t seed)
    : backend_(backend),
      identity_(std::move(identity)),
      anchors_(std::move(anchors)),
      rng_(seed),
      client_(backend, identity_.id),
      disc_(backend, identity_) {}

void Tracker::attach_tdn(transport::NodeId tdn,
                         const transport::LinkParams& params) {
  disc_.attach_tdn(tdn, params);
}

void Tracker::connect_broker(transport::NodeId broker,
                             const transport::LinkParams& params) {
  client_.connect(broker, params);
}

std::string Tracker::key_topic_for(const Tracked& t) const {
  return "Constrained/Traces/" + identity_.id + "/Subscribe-Only/TraceKeys/" +
         t.trace_topic;
}

void Tracker::track(const std::string& entity_id, std::uint8_t categories,
                    TraceHandler handler, ReadyCallback on_ready) {
  // §3.4: authorized discovery by entity id.
  disc_.discover(
      "Liveness/" + entity_id,
      [this, entity_id, categories, handler = std::move(handler),
       on_ready = std::move(on_ready)](
          Result<std::vector<discovery::TopicAdvertisement>> result) mutable {
        backend_.post(client_.node(), [this, entity_id, categories,
                                       handler = std::move(handler),
                                       on_ready = std::move(on_ready),
                                       result = std::move(result)]() mutable {
          if (!result.ok()) {
            if (on_ready) on_ready(result.status());
            return;
          }
          if (result->empty()) {
            if (on_ready) on_ready(not_found("no advertisement returned"));
            return;
          }
          // Verify provenance before trusting the advertisement.
          const discovery::TopicAdvertisement& ad = result->front();
          if (const Status s = ad.verify(anchors_.tdn_key, backend_.now());
              !s.is_ok()) {
            if (on_ready) on_ready(s);
            return;
          }
          Tracked t;
          t.entity_id = entity_id;
          t.advertisement = ad;
          t.trace_topic = ad.topic().to_string();
          t.categories = categories;
          t.handler = std::move(handler);
          begin_subscriptions(std::move(t), std::move(on_ready));
        });
      });
}

void Tracker::begin_subscriptions(Tracked t, ReadyCallback on_ready) {
  const std::string trace_topic = t.trace_topic;

  // Per-category derived topics (§3.3 Table 2): subscribe selectively.
  for (const std::uint8_t bit :
       {std::uint8_t(kCatChangeNotifications), std::uint8_t(kCatAllUpdates),
        std::uint8_t(kCatStateTransitions), std::uint8_t(kCatLoad),
        std::uint8_t(kCatNetworkMetrics)}) {
    if ((t.categories & bit) == 0) continue;
    client_.subscribe(
        tt::trace_publication(trace_topic, category_suffix(bit)),
        [this, trace_topic](const pubsub::Message& m) {
          on_trace(trace_topic, m);
        });
  }
  // Coalesced per-host digests (DESIGN.md §14) ride their own kind topic;
  // they carry ALLS_WELL observations, so they follow AllUpdates interest.
  if ((t.categories & kCatAllUpdates) != 0) {
    client_.subscribe(tt::trace_publication(trace_topic, tt::kDigest),
                      [this, trace_topic](const pubsub::Message& m) {
                        on_digest(trace_topic, m);
                      });
  }
  // GAUGE_INTEREST probes (§3.5).
  client_.subscribe(tt::gauge_interest(trace_topic),
                    [this, trace_topic](const pubsub::Message& m) {
                      on_trace(trace_topic, m);
                    });
  // Sealed trace-key deliveries (§5.1).
  client_.subscribe(key_topic_for(t),
                    [this, trace_topic](const pubsub::Message& m) {
                      on_key_delivery(trace_topic, m);
                    });

  tracked_.emplace(trace_topic, std::move(t));

  // Announce interest immediately rather than waiting for the next gauge
  // round (accepted by the broker as an unsolicited interest response —
  // extension documented in DESIGN.md).
  auto& entry = tracked_.at(trace_topic);
  respond_interest(entry, /*secured=*/true);

  if (on_ready) on_ready(Status::ok());
}

void Tracker::untrack(const std::string& entity_id) {
  backend_.post(client_.node(), [this, entity_id] {
    for (auto it = tracked_.begin(); it != tracked_.end(); ++it) {
      if (it->second.entity_id != entity_id) continue;
      const Tracked& t = it->second;
      for (const std::uint8_t bit :
           {std::uint8_t(kCatChangeNotifications),
            std::uint8_t(kCatAllUpdates), std::uint8_t(kCatStateTransitions),
            std::uint8_t(kCatLoad), std::uint8_t(kCatNetworkMetrics)}) {
        if ((t.categories & bit) == 0) continue;
        client_.unsubscribe(
            tt::trace_publication(t.trace_topic, category_suffix(bit)));
      }
      if ((t.categories & kCatAllUpdates) != 0) {
        client_.unsubscribe(tt::trace_publication(t.trace_topic, tt::kDigest));
      }
      client_.unsubscribe(tt::gauge_interest(t.trace_topic));
      client_.unsubscribe(key_topic_for(t));
      tracked_.erase(it);
      return;
    }
  });
}

std::optional<Bytes> Tracker::verify_and_open(Tracked& t,
                                              const std::string& trace_topic,
                                              const pubsub::Message& m) {
  // End-to-end verification (§4.3): token chain + delegate signature. The
  // broker network already filtered, but a tracker must not trust its
  // access link.
  AuthorizationToken token;
  try {
    token = AuthorizationToken::deserialize(m.auth_token);
  } catch (const std::exception&) {
    ++stats_.traces_rejected;
    return std::nullopt;
  }
  if (!token.verify(anchors_.tdn_key, anchors_.ca_key, backend_.now())
           .is_ok() ||
      token.trace_topic().to_string() != trace_topic ||
      !token.verify_delegate_signature(m.signable_bytes(), m.signature)) {
    ++stats_.traces_rejected;
    return std::nullopt;
  }

  Bytes body = m.payload;
  if (m.encrypted) {
    if (t.trace_key.empty()) {
      ++stats_.undecryptable;
      return std::nullopt;
    }
    try {
      body = t.trace_key.decrypt(body);
    } catch (const std::exception&) {
      ++stats_.undecryptable;
      return std::nullopt;
    }
  }
  return body;
}

void Tracker::on_trace(const std::string& trace_topic,
                       const pubsub::Message& m) {
  const auto it = tracked_.find(trace_topic);
  if (it == tracked_.end()) return;
  Tracked& t = it->second;

  const std::optional<Bytes> body = verify_and_open(t, trace_topic, m);
  if (!body) return;
  TracePayload payload;
  try {
    payload = TracePayload::deserialize(*body);
  } catch (const SerializeError&) {
    ++stats_.traces_rejected;
    return;
  }

  if (payload.type == TraceType::kGaugeInterest) {
    ++stats_.gauges_answered;
    respond_interest(t, payload.secured);
    return;
  }
  ++stats_.traces_received;
  if (t.handler) t.handler(payload, m);
}

void Tracker::on_digest(const std::string& trace_topic,
                        const pubsub::Message& m) {
  const auto it = tracked_.find(trace_topic);
  if (it == tracked_.end()) return;
  Tracked& t = it->second;

  const std::optional<Bytes> body = verify_and_open(t, trace_topic, m);
  if (!body) return;
  TraceDigest digest;
  try {
    digest = TraceDigest::deserialize(*body);
  } catch (const SerializeError&) {
    ++stats_.traces_rejected;
    return;
  }
  ++stats_.digests_received;

  // Expansion restores per-entity semantics: the handler observes the
  // same payload stream it would have without coalescing.
  for (const TracePayload& payload : digest.expand()) {
    ++stats_.digest_entries_expanded;
    ++stats_.traces_received;
    if (t.handler) t.handler(payload, m);
  }
}

void Tracker::respond_interest(Tracked& t, bool secured) {
  // §3.5/§5.1: outline our interests; include credential and (for secured
  // sessions) the topic we expect the sealed key on.
  InterestResponse resp;
  resp.tracker_id = identity_.id;
  resp.credential = identity_.credential;
  resp.categories = t.categories;
  if (secured && t.trace_key.empty()) {
    resp.key_delivery_topic = key_topic_for(t);
  }

  pubsub::Message m;
  m.topic = tt::interest_response(t.trace_topic);
  m.payload = resp.serialize();
  m.publisher = identity_.id;
  publish_signed(client_, std::move(m), identity_.keys.private_key, sequence_,
                 backend_.now());
}

void Tracker::on_key_delivery(const std::string& trace_topic,
                              const pubsub::Message& m) {
  const auto it = tracked_.find(trace_topic);
  if (it == tracked_.end()) return;
  try {
    const SealedEnvelope env = SealedEnvelope::deserialize(m.payload);
    it->second.trace_key =
        crypto::SecretKey::deserialize(env.open(identity_.keys.private_key));
    ++stats_.keys_received;
  } catch (const std::exception& e) {
    ET_LOG(kDebug) << identity_.id << ": bad key delivery: " << e.what();
  }
}

}  // namespace et::tracing
