// Per-hop token-verification cache (paper §4.3/§5.2).
//
// Every broker verifies the authorization token attached to every trace it
// routes. The expensive part of that check — the TDN-signed advertisement,
// the owner credential's CA chain and the owner's token signature, three
// RSA verifications plus a deserialization — depends only on the token
// *bytes*, which are identical for every trace a hosting broker emits
// during one validity window. The paper notes brokers may "keep track of
// previously computed verifications"; this cache is that bookkeeping, the
// same amortization trick as TLS session resumption and SPKI chain caches.
//
// Design rules (see DESIGN.md "Token-verification cache"):
//   * Keys are SHA-256 fingerprints of the raw serialized token, so a
//     cached verdict can only ever be replayed for byte-identical input —
//     flipping any bit of a token (signature included) changes the key.
//   * A cached OK stores the parsed token plus its validity window; every
//     lookup re-evaluates the window against the caller's clock, so a
//     cached OK is dead the instant the token expires. Entries also carry
//     a TTL so a revoked-upstream advertisement or credential cannot be
//     honoured for longer than `ttl` after its last full verification.
//   * Negative verdicts are cached only for *deterministic* rejections
//     (signature-chain failures, definitively lapsed windows) — never for
//     malformed input, which is rejected cheaply upstream and must not be
//     able to thrash the LRU, and never for not-yet-valid tokens, which
//     become good later.
//   * Bounded LRU: at capacity the least-recently-used entry is evicted.
//     Eviction is purely a performance event — a re-presented evicted
//     token simply runs the full chain again.
//
// Threading: like pubsub::Broker, a cache instance is owned by one broker
// and touched only from that broker's node context; it is not internally
// synchronized.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/crypto/fingerprint.h"
#include "src/tracing/authorization_token.h"

namespace et::tracing {

/// Counter snapshot exported alongside BrokerStats for benches and tests.
/// Returned by value from TokenVerifyCache::stats(), which may be called
/// from any thread while the owning broker keeps verifying (the counters
/// are relaxed atomics, same discipline as internal::FilterCounters).
struct TokenCacheStats {
  std::uint64_t hits = 0;           // cached OK served
  std::uint64_t negative_hits = 0;  // cached rejection served
  std::uint64_t misses = 0;         // no entry; full verification ran
  std::uint64_t expired = 0;        // entry found but stale or lapsed
  std::uint64_t insertions = 0;     // verdicts stored
  std::uint64_t evictions = 0;      // LRU capacity evictions

  /// Fraction of lookups answered from the cache, in [0, 1].
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + negative_hits + misses + expired;
    return total == 0
               ? 0.0
               : static_cast<double>(hits + negative_hits) /
                     static_cast<double>(total);
  }
};

class TokenVerifyCache {
 public:
  /// `capacity` == 0 disables storage (every lookup misses). `ttl` bounds
  /// how long any verdict may be reused after the full chain last ran.
  TokenVerifyCache(std::size_t capacity, Duration ttl)
      : capacity_(capacity), ttl_(ttl) {}

  struct Lookup {
    enum class Kind {
      kMiss,      // no usable entry; run the full chain
      kOk,        // chain verified and window still open: `token` is set
      kRejected,  // deterministic rejection: `status` is the cached verdict
    };
    Kind kind = Kind::kMiss;
    /// Parsed token of a positive entry. Owned by the cache; valid until
    /// the next lookup/store/evict call.
    const AuthorizationToken* token = nullptr;
    Status status = Status::ok();
  };

  /// Consults the cache. `now` is the verifying broker's clock; `skew` is
  /// the NTP allowance applied to the token's validity window, matching
  /// AuthorizationToken::verify. Entries whose TTL or window has lapsed
  /// are dropped and reported as misses (counted in `expired`).
  Lookup lookup(const crypto::Fingerprint256& fp, TimePoint now,
                Duration skew = kDefaultSkewAllowance);

  /// Stores a chain-verified token. Returns a pointer to the stored copy
  /// (valid until the next mutating call) so the caller can continue with
  /// per-message checks without re-parsing.
  const AuthorizationToken* store_ok(const crypto::Fingerprint256& fp,
                                     AuthorizationToken token, TimePoint now);

  /// Stores a deterministic rejection for these exact bytes. Callers must
  /// only pass verdicts that can never change for a byte-identical resend
  /// (signature-chain failures, definitively lapsed validity windows).
  void store_rejected(const crypto::Fingerprint256& fp, Status verdict,
                      TimePoint now);

  /// Snapshot of the counters. Safe to call from any thread (counters are
  /// relaxed atomics); the structural accessors below are still
  /// single-context like the rest of the cache.
  [[nodiscard]] TokenCacheStats stats() const {
    TokenCacheStats s;
    s.hits = counters_.hits.get();
    s.negative_hits = counters_.negative_hits.get();
    s.misses = counters_.misses.get();
    s.expired = counters_.expired.get();
    s.insertions = counters_.insertions.get();
    s.evictions = counters_.evictions.get();
    return s;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    crypto::Fingerprint256 fp;
    bool ok = false;
    AuthorizationToken token;  // parsed form, positive entries only
    Status verdict = Status::ok();
    TimePoint stale_at = 0;  // full verification required after this
  };

  /// Live counters; relaxed because each is independent and readers only
  /// ever want monotonic totals.
  struct Counters {
    RelaxedCounter hits;
    RelaxedCounter negative_hits;
    RelaxedCounter misses;
    RelaxedCounter expired;
    RelaxedCounter insertions;
    RelaxedCounter evictions;
  };

  using Lru = std::list<Entry>;

  void evict_to_capacity();

  std::size_t capacity_;
  Duration ttl_;
  Lru entries_;  // front = most recently used
  std::unordered_map<crypto::Fingerprint256, Lru::iterator,
                     crypto::Fingerprint256Hash>
      index_;
  Counters counters_;
};

}  // namespace et::tracing
