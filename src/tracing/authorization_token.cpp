#include "src/tracing/authorization_token.h"

#include "src/common/serialize.h"

namespace et::tracing {

AuthorizationToken AuthorizationToken::create(
    const discovery::TopicAdvertisement& advertisement,
    const crypto::RsaPublicKey& delegate_key, TokenRights rights,
    TimePoint valid_from, TimePoint valid_until,
    const crypto::RsaPrivateKey& owner_key) {
  AuthorizationToken t;
  t.advertisement_ = advertisement;
  t.delegate_key_ = delegate_key;
  t.rights_ = rights;
  t.valid_from_ = valid_from;
  t.valid_until_ = valid_until;
  t.owner_signature_ = owner_key.sign(t.tbs());
  return t;
}

Bytes AuthorizationToken::tbs() const {
  Writer w;
  w.bytes(advertisement_.serialize());
  w.bytes(delegate_key_.serialize());
  w.u8(static_cast<std::uint8_t>(rights_));
  w.i64(valid_from_);
  w.i64(valid_until_);
  return std::move(w).take();
}

Bytes AuthorizationToken::serialize() const {
  Writer w;
  w.bytes(tbs());
  w.bytes(owner_signature_);
  return std::move(w).take();
}

AuthorizationToken AuthorizationToken::deserialize(BytesView b) {
  Reader outer(b);
  const Bytes tbs_bytes = outer.bytes();
  Bytes sig = outer.bytes();
  outer.expect_done();

  Reader r(tbs_bytes);
  AuthorizationToken t;
  t.advertisement_ = discovery::TopicAdvertisement::deserialize(r.bytes());
  t.delegate_key_ = crypto::RsaPublicKey::deserialize(r.bytes());
  t.rights_ = static_cast<TokenRights>(r.u8());
  t.valid_from_ = r.i64();
  t.valid_until_ = r.i64();
  r.expect_done();
  t.owner_signature_ = std::move(sig);
  return t;
}

Status AuthorizationToken::verify(const crypto::RsaPublicKey& tdn_key,
                                  const crypto::RsaPublicKey& ca_key,
                                  TimePoint now, Duration skew) const {
  if (empty()) return unauthenticated("token: empty");

  // 1. TDN-signed advertisement establishes topic ownership. Lifetimes of
  //    advertisements and credentials are hours-long, far beyond the NTP
  //    bound, so they are checked at `now`; the skew allowance applies to
  //    the token's own (short) validity window below.
  if (const Status s = advertisement_.verify(tdn_key, now); !s.is_ok()) {
    return s;
  }
  // 2. Owner credential chains to the CA.
  const crypto::Credential& owner = advertisement_.owner();
  if (const Status s = owner.verify(ca_key, now); !s.is_ok()) {
    return s;
  }
  // 3. Token signed by the topic owner.
  if (!owner.public_key().verify(tbs(), owner_signature_)) {
    return unauthenticated("token: not signed by the trace-topic owner");
  }
  // 4. Validity window with skew allowance on both edges.
  if (now + skew < valid_from_) {
    return expired("token: not yet valid");
  }
  if (now - skew >= valid_until_) {
    return expired("token: expired");
  }
  return Status::ok();
}

bool AuthorizationToken::verify_delegate_signature(BytesView message,
                                                   BytesView signature) const {
  return delegate_key_.verify(message, signature);
}

}  // namespace et::tracing
