// Coalesced availability digests (DESIGN.md §14).
//
// Co-hosted entities share one heartbeat cadence: instead of the hosting
// broker publishing N per-entity ALLS_WELL traces per round, it folds the
// round's observations into a single `TraceDigest`, signs and (optionally)
// encrypts it once, and publishes it on the host's Digest kind topic. The
// tracker edge expands the digest back into per-entity `TracePayload`s, so
// tracker-facing semantics are unchanged — the coalescing is invisible
// above the subscription API. Urgent traces (suspicions, failures, state
// transitions) never ride a digest; they are published per-entity
// immediately, after any pending digest for the host is flushed so
// ordering is preserved.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/tracing/trace_types.h"

namespace et::tracing {

struct TracePayload;

/// One coalesced observation: entity + trace type (+ state detail).
struct DigestEntry {
  std::string entity_id;
  TraceType type = TraceType::kAllsWell;
  std::optional<EntityState> state;

  friend bool operator==(const DigestEntry&, const DigestEntry&) = default;
};

/// A signed batch of per-entity observations from one host's round.
struct TraceDigest {
  std::string host_id;
  std::uint64_t round = 0;
  TimePoint issued_at = 0;
  std::vector<DigestEntry> entries;

  [[nodiscard]] Bytes serialize() const;
  static TraceDigest deserialize(BytesView b);

  /// Expands back into the per-entity payloads a tracker would have seen
  /// without coalescing (type/entity_id/issued_at/state carried over).
  [[nodiscard]] std::vector<TracePayload> expand() const;

  friend bool operator==(const TraceDigest&, const TraceDigest&) = default;
};

}  // namespace et::tracing
