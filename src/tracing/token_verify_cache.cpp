#include "src/tracing/token_verify_cache.h"

namespace et::tracing {

TokenVerifyCache::Lookup TokenVerifyCache::lookup(
    const crypto::Fingerprint256& fp, TimePoint now, Duration skew) {
  Lookup out;
  const auto it = index_.find(fp);
  if (it == index_.end()) {
    counters_.misses.inc();
    return out;
  }
  Entry& e = *it->second;
  // TTL bound: after `stale_at` the verdict must be recomputed from
  // scratch (bounds how long an upstream revocation can be missed).
  if (now >= e.stale_at) {
    counters_.expired.inc();
    entries_.erase(it->second);
    index_.erase(it);
    return out;
  }
  if (e.ok) {
    // The token's own validity window is re-evaluated on every hit with
    // the same skew rule as AuthorizationToken::verify. A lapsed window
    // drops the entry: the caller's full re-verification produces the
    // authoritative "expired" rejection.
    if (now + skew < e.token.valid_from() ||
        now - skew >= e.token.valid_until()) {
      counters_.expired.inc();
      entries_.erase(it->second);
      index_.erase(it);
      return out;
    }
    counters_.hits.inc();
    entries_.splice(entries_.begin(), entries_, it->second);  // touch LRU
    out.kind = Lookup::Kind::kOk;
    out.token = &entries_.front().token;
    return out;
  }
  counters_.negative_hits.inc();
  entries_.splice(entries_.begin(), entries_, it->second);
  out.kind = Lookup::Kind::kRejected;
  out.status = entries_.front().verdict;
  return out;
}

const AuthorizationToken* TokenVerifyCache::store_ok(
    const crypto::Fingerprint256& fp, AuthorizationToken token,
    TimePoint now) {
  if (capacity_ == 0) return nullptr;
  Entry e;
  e.fp = fp;
  e.ok = true;
  e.token = std::move(token);
  e.stale_at = now + ttl_;
  if (const auto it = index_.find(fp); it != index_.end()) {
    entries_.erase(it->second);
    index_.erase(it);
  }
  entries_.push_front(std::move(e));
  index_[fp] = entries_.begin();
  counters_.insertions.inc();
  evict_to_capacity();
  return &entries_.front().token;
}

void TokenVerifyCache::store_rejected(const crypto::Fingerprint256& fp,
                                      Status verdict, TimePoint now) {
  if (capacity_ == 0) return;
  Entry e;
  e.fp = fp;
  e.ok = false;
  e.verdict = std::move(verdict);
  e.stale_at = now + ttl_;
  if (const auto it = index_.find(fp); it != index_.end()) {
    entries_.erase(it->second);
    index_.erase(it);
  }
  entries_.push_front(std::move(e));
  index_[fp] = entries_.begin();
  counters_.insertions.inc();
  evict_to_capacity();
}

void TokenVerifyCache::evict_to_capacity() {
  while (entries_.size() > capacity_) {
    index_.erase(entries_.back().fp);
    entries_.pop_back();
    counters_.evictions.inc();
  }
}

}  // namespace et::tracing
