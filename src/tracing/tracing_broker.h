// The tracing service hosted on a broker (paper §3.2/§3.3/§3.5/§5.1).
//
// "In addition to the traced entity and the trackers ... there is an
// additional component: the broker which the traced entity is connected
// to. This broker is responsible for polling — the pull part — the traced
// entity at regular intervals and for generating — the push part — traces
// for the traced entity."
//
// Attach a TracingBrokerService to any pubsub::Broker to make it a hosting
// broker. The service:
//   * verifies trace registrations (credential chain + proof of
//     possession + advertisement provenance) and mints sessions with
//     hybrid-encrypted responses (§3.2); batch registrations mint one
//     session for a whole co-hosted entity roster (DESIGN.md §14);
//   * pings each traced entity on an adaptive interval, maintains the
//     last-10-pings window, and escalates FAILURE_SUSPICION -> FAILED on
//     consecutive misses (§3.3); for host sessions one ping covers the
//     roster and the response's liveness bitmap drives per-member
//     escalation;
//   * publishes traces on the per-category derived topics through a
//     TraceEmitter, every one carrying the entity's authorization token
//     and a delegate-key signature (§4.3); with digests enabled, plain
//     heartbeats coalesce into one signed digest per host per interval;
//   * gauges tracker interest periodically and publishes a category only
//     while some tracker wants it (§3.5); unsolicited interest responses
//     are also accepted (extension, documented in DESIGN.md);
//   * distributes the secret trace key to authorized trackers via sealed
//     envelopes and encrypts traces with it when the entity asked for
//     confidentiality (§5.1).
//
// All session timers ride a coalescing TimerWheel, so armed backend
// timers are O(distinct deadlines), not O(sessions), once
// TracingConfig::timer_wheel_tick is set. Member records live in a
// SlotArena so broker memory per entity is a measured constant.
//
// All state is touched in the broker's node context only.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/random.h"
#include "src/common/timer_wheel.h"
#include "src/common/uuid.h"
#include "src/pubsub/broker.h"
#include "src/tracing/authorization_token.h"
#include "src/tracing/config.h"
#include "src/tracing/registration.h"
#include "src/tracing/trace_emitter.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {

/// Counters for tests and benchmarks.
struct TracingBrokerStats {
  std::uint64_t registrations = 0;
  std::uint64_t batch_registrations = 0;  // batch requests (not members)
  std::uint64_t rejected_registrations = 0;
  std::uint64_t pings_sent = 0;
  std::uint64_t ping_responses = 0;
  std::uint64_t rejected_session_messages = 0;
  std::uint64_t traces_published = 0;  // observations (digest entries count)
  std::uint64_t traces_suppressed_no_interest = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t failures = 0;
  std::uint64_t disconnects = 0;  // ping-loop "presumed departed" teardowns
  std::uint64_t keys_distributed = 0;
  std::uint64_t interest_responses = 0;
};

class TracingBrokerService {
 public:
  TracingBrokerService(pubsub::Broker& broker, TrustAnchors anchors,
                       TracingConfig config, std::uint64_t seed);

  TracingBrokerService(const TracingBrokerService&) = delete;
  TracingBrokerService& operator=(const TracingBrokerService&) = delete;

  [[nodiscard]] const TracingBrokerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_sessions() const { return sessions_.size(); }
  [[nodiscard]] bool has_session_for(const std::string& entity_id) const;

  /// Message-level emission counters (digests vs per-entity traces).
  [[nodiscard]] const TraceEmitter::Stats& emitter_stats() const {
    return emitter_.stats();
  }

  /// Attaches a tamper-evident trace ledger to this broker's emission
  /// path (DESIGN.md §16); null detaches. The ledger must outlive the
  /// service. Install before traffic, like other setup calls.
  void set_trace_ledger(persist::TraceLedger* ledger) {
    emitter_.set_ledger(ledger);
  }
  /// Logical-vs-armed timer accounting for the session timer wheel.
  [[nodiscard]] TimerWheel::Stats timer_stats() const {
    return wheel_.stats();
  }
  /// Heap footprint of the member roster arena (bytes/entity accounting).
  [[nodiscard]] std::size_t roster_bytes() const { return roster_.bytes(); }
  [[nodiscard]] std::size_t roster_size() const { return roster_.size(); }

  /// Ping-window diagnostics for one traced entity (tests). For a batch
  /// member the flags come from its roster record; interval/interest are
  /// the host session's.
  struct SessionView {
    bool exists = false;
    bool suspected = false;
    bool failed = false;
    Duration current_ping_interval = 0;
    std::uint8_t effective_interest = 0;
    bool secure = false;
  };
  [[nodiscard]] SessionView session_view(const std::string& entity_id) const;

 private:
  struct PingRecord {
    std::uint64_t number = 0;
    TimePoint sent_at = 0;
    bool responded = false;
    Duration rtt = 0;
    bool out_of_order = false;
  };
  struct TrackerInterest {
    std::uint8_t mask = 0;
    std::uint64_t last_round = 0;
  };
  /// One co-hosted entity of a batch session. Lives in the roster arena;
  /// the session holds handles in registration order (= liveness bit
  /// order).
  struct MemberRecord {
    std::string entity_id;
    int consecutive_misses = 0;
    bool suspected = false;
    bool failed = false;
  };
  struct Session {
    Uuid session_id;
    std::string entity_id;  // the host id for batch sessions
    std::string trace_topic;  // UUID string
    crypto::Credential credential;
    discovery::TopicAdvertisement advertisement;
    crypto::SecretKey session_key;
    AuthorizationToken token;
    crypto::RsaPrivateKey delegate_key;
    crypto::SecretKey trace_key;
    bool secure = false;
    bool join_published = false;
    /// Last state the entity reported; replayed to the first tracker whose
    /// interest arrives after the report was suppressed (a session minted
    /// by broker failover has no recorded interest yet, and its
    /// RECOVERING announcement must not vanish).
    std::optional<EntityState> last_state;
    /// Batch-session roster handles, in liveness-bit order. Empty for
    /// single-entity sessions.
    std::vector<SlotArena<MemberRecord>::Handle> members;

    Duration ping_interval = 0;
    std::uint64_t next_ping_number = 1;
    std::uint64_t last_responded = 0;
    int consecutive_misses = 0;
    bool suspected = false;
    bool failed = false;
    std::deque<PingRecord> window;  // last N pings
    std::map<std::uint64_t, TimePoint> outstanding;

    std::uint64_t gauge_round = 0;
    std::map<std::string, TrackerInterest> interests;

    TimerWheel::WheelId ping_timer = 0;
    TimerWheel::WheelId gauge_timer = 0;
    TimerWheel::WheelId metrics_timer = 0;

    [[nodiscard]] bool is_host() const { return !members.empty(); }
  };

  void handle_registration(const pubsub::Message& m);
  void handle_batch_registration(const pubsub::Message& m);
  /// The shared verification steps of §3.2 (credential chain, proof of
  /// possession, subject match, advertisement provenance + ownership).
  /// Publishes the error and bumps the reject counter on failure.
  bool verify_registration(const pubsub::Message& m, const std::string& id,
                           const crypto::Credential& credential,
                           const discovery::TopicAdvertisement& advertisement,
                           std::uint64_t request_id);
  /// Mints the session, wires its topics/timers and sends the sealed
  /// response. `member_ids` non-empty makes it a batch (host) session.
  void mint_session(const std::string& id, const crypto::Credential& cred,
                    const discovery::TopicAdvertisement& ad,
                    std::uint64_t request_id,
                    std::vector<std::string> member_ids);
  void handle_session_message(const Uuid& session_id,
                              const pubsub::Message& m);
  void handle_interest_response(const Uuid& session_id,
                                const pubsub::Message& m);
  void on_ping_timer(const Uuid& session_id);
  void on_gauge_timer(const Uuid& session_id);
  void on_metrics_timer(const Uuid& session_id);
  void handle_ping_response(Session& s, const SessionMessage& sm);
  void handle_token_delivery(Session& s, const SessionMessage& sm);
  void deliver_trace_key(Session& s, const InterestResponse& resp);
  void publish_trace(Session& s, TracePayload payload);
  /// Per-member miss/recovery escalation for host sessions. Both may
  /// reentrantly tear the session down; callers re-check liveness.
  void member_miss(Session& s, MemberRecord& rec);
  void member_alive(Session& s, MemberRecord& rec);
  void publish_registration_error(const std::string& entity_id,
                                  std::uint64_t request_id,
                                  const std::string& error);
  /// Tears a session down: cancels its timers, frees roster records,
  /// erases every by_entity_ alias and flushes its pending digest. `s`
  /// must belong to sessions_; the reference is dead afterwards.
  void erase_session(Session& s);
  [[nodiscard]] std::uint8_t effective_interest(const Session& s) const;
  [[nodiscard]] TraceEmitter::Signing signing(const Session& s) const;

  /// Decrypts/authenticates an entity->broker session message per the
  /// configured signing mode. Returns the decoded message or an error.
  Result<SessionMessage> authenticate_session_message(
      Session& s, const pubsub::Message& m) const;

  pubsub::Broker& broker_;
  TrustAnchors anchors_;
  TracingConfig config_;
  Rng rng_;
  TimerWheel wheel_;
  TraceEmitter emitter_;
  std::map<Uuid, Session> sessions_;
  /// entity id -> session; batch members alias their host's session.
  std::map<std::string, Uuid> by_entity_;
  SlotArena<MemberRecord> roster_;
  TracingBrokerStats stats_;
};

}  // namespace et::tracing
