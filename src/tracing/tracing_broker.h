// The tracing service hosted on a broker (paper §3.2/§3.3/§3.5/§5.1).
//
// "In addition to the traced entity and the trackers ... there is an
// additional component: the broker which the traced entity is connected
// to. This broker is responsible for polling — the pull part — the traced
// entity at regular intervals and for generating — the push part — traces
// for the traced entity."
//
// Attach a TracingBrokerService to any pubsub::Broker to make it a hosting
// broker. The service:
//   * verifies trace registrations (credential chain + proof of
//     possession + advertisement provenance) and mints sessions with
//     hybrid-encrypted responses (§3.2);
//   * pings each traced entity on an adaptive interval, maintains the
//     last-10-pings window, and escalates FAILURE_SUSPICION -> FAILED on
//     consecutive misses (§3.3);
//   * publishes traces on the per-category derived topics, every one
//     carrying the entity's authorization token and a delegate-key
//     signature (§4.3);
//   * gauges tracker interest periodically and publishes a category only
//     while some tracker wants it (§3.5); unsolicited interest responses
//     are also accepted (extension, documented in DESIGN.md);
//   * distributes the secret trace key to authorized trackers via sealed
//     envelopes and encrypts traces with it when the entity asked for
//     confidentiality (§5.1).
//
// All state is touched in the broker's node context only.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/common/random.h"
#include "src/common/uuid.h"
#include "src/pubsub/broker.h"
#include "src/tracing/authorization_token.h"
#include "src/tracing/config.h"
#include "src/tracing/registration.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {

/// Counters for tests and benchmarks.
struct TracingBrokerStats {
  std::uint64_t registrations = 0;
  std::uint64_t rejected_registrations = 0;
  std::uint64_t pings_sent = 0;
  std::uint64_t ping_responses = 0;
  std::uint64_t rejected_session_messages = 0;
  std::uint64_t traces_published = 0;
  std::uint64_t traces_suppressed_no_interest = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t failures = 0;
  std::uint64_t disconnects = 0;  // ping-loop "presumed departed" teardowns
  std::uint64_t keys_distributed = 0;
  std::uint64_t interest_responses = 0;
};

class TracingBrokerService {
 public:
  TracingBrokerService(pubsub::Broker& broker, TrustAnchors anchors,
                       TracingConfig config, std::uint64_t seed);

  TracingBrokerService(const TracingBrokerService&) = delete;
  TracingBrokerService& operator=(const TracingBrokerService&) = delete;

  [[nodiscard]] const TracingBrokerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t active_sessions() const { return sessions_.size(); }
  [[nodiscard]] bool has_session_for(const std::string& entity_id) const;

  /// Ping-window diagnostics for one traced entity (tests).
  struct SessionView {
    bool exists = false;
    bool suspected = false;
    bool failed = false;
    Duration current_ping_interval = 0;
    std::uint8_t effective_interest = 0;
    bool secure = false;
  };
  [[nodiscard]] SessionView session_view(const std::string& entity_id) const;

 private:
  struct PingRecord {
    std::uint64_t number = 0;
    TimePoint sent_at = 0;
    bool responded = false;
    Duration rtt = 0;
    bool out_of_order = false;
  };
  struct TrackerInterest {
    std::uint8_t mask = 0;
    std::uint64_t last_round = 0;
  };
  struct Session {
    Uuid session_id;
    std::string entity_id;
    std::string trace_topic;  // UUID string
    crypto::Credential credential;
    discovery::TopicAdvertisement advertisement;
    crypto::SecretKey session_key;
    AuthorizationToken token;
    crypto::RsaPrivateKey delegate_key;
    crypto::SecretKey trace_key;
    bool secure = false;
    bool join_published = false;
    /// Last state the entity reported; replayed to the first tracker whose
    /// interest arrives after the report was suppressed (a session minted
    /// by broker failover has no recorded interest yet, and its
    /// RECOVERING announcement must not vanish).
    std::optional<EntityState> last_state;

    Duration ping_interval = 0;
    std::uint64_t next_ping_number = 1;
    std::uint64_t last_responded = 0;
    int consecutive_misses = 0;
    bool suspected = false;
    bool failed = false;
    std::deque<PingRecord> window;  // last N pings
    std::map<std::uint64_t, TimePoint> outstanding;

    std::uint64_t gauge_round = 0;
    std::map<std::string, TrackerInterest> interests;

    transport::TimerId ping_timer = 0;
    transport::TimerId gauge_timer = 0;
    transport::TimerId metrics_timer = 0;
  };

  void handle_registration(const pubsub::Message& m);
  void handle_session_message(const Uuid& session_id,
                              const pubsub::Message& m);
  void handle_interest_response(const Uuid& session_id,
                                const pubsub::Message& m);
  void on_ping_timer(const Uuid& session_id);
  void on_gauge_timer(const Uuid& session_id);
  void on_metrics_timer(const Uuid& session_id);
  void handle_ping_response(Session& s, const SessionMessage& sm);
  void handle_token_delivery(Session& s, const SessionMessage& sm);
  void deliver_trace_key(Session& s, const InterestResponse& resp);
  void publish_trace(Session& s, TracePayload payload);
  void publish_registration_error(const std::string& entity_id,
                                  std::uint64_t request_id,
                                  const std::string& error);
  void remove_session(Session& s);
  [[nodiscard]] std::uint8_t effective_interest(const Session& s) const;

  /// Decrypts/authenticates an entity->broker session message per the
  /// configured signing mode. Returns the decoded message or an error.
  Result<SessionMessage> authenticate_session_message(
      Session& s, const pubsub::Message& m) const;

  pubsub::Broker& broker_;
  TrustAnchors anchors_;
  TracingConfig config_;
  Rng rng_;
  std::map<Uuid, Session> sessions_;
  std::map<std::string, Uuid> by_entity_;
  TracingBrokerStats stats_;
  std::uint64_t trace_sequence_ = 0;
};

}  // namespace et::tracing
