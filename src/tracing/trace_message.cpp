#include "src/tracing/trace_message.h"

namespace et::tracing {

void LoadInfo::encode(Writer& w) const {
  w.f64(cpu_utilization);
  w.f64(memory_utilization);
  w.u32(workload);
}

LoadInfo LoadInfo::decode(Reader& r) {
  LoadInfo out;
  out.cpu_utilization = r.f64();
  out.memory_utilization = r.f64();
  out.workload = r.u32();
  return out;
}

void NetworkMetrics::encode(Writer& w) const {
  w.f64(loss_rate);
  w.f64(mean_rtt_ms);
  w.f64(out_of_order_rate);
  w.f64(bandwidth_bytes_per_us);
}

NetworkMetrics NetworkMetrics::decode(Reader& r) {
  NetworkMetrics out;
  out.loss_rate = r.f64();
  out.mean_rtt_ms = r.f64();
  out.out_of_order_rate = r.f64();
  out.bandwidth_bytes_per_us = r.f64();
  return out;
}

Bytes TracePayload::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.str(entity_id);
  w.i64(issued_at);
  w.boolean(state.has_value());
  if (state) w.u8(static_cast<std::uint8_t>(*state));
  w.boolean(load.has_value());
  if (load) load->encode(w);
  w.boolean(metrics.has_value());
  if (metrics) metrics->encode(w);
  w.boolean(secured);
  w.str(detail);
  return std::move(w).take();
}

TracePayload TracePayload::deserialize(BytesView b) {
  Reader r(b);
  TracePayload out;
  out.type = static_cast<TraceType>(r.u8());
  if (out.type < TraceType::kInitializing ||
      out.type > TraceType::kDigest) {
    throw SerializeError("unknown trace type");
  }
  out.entity_id = r.str();
  out.issued_at = r.i64();
  if (r.boolean()) out.state = static_cast<EntityState>(r.u8());
  if (r.boolean()) out.load = LoadInfo::decode(r);
  if (r.boolean()) out.metrics = NetworkMetrics::decode(r);
  out.secured = r.boolean();
  out.detail = r.str();
  r.expect_done();
  return out;
}

Bytes SessionMessage::serialize() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(ping_number);
  w.i64(ping_timestamp);
  w.boolean(state.has_value());
  if (state) w.u8(static_cast<std::uint8_t>(*state));
  w.boolean(load.has_value());
  if (load) load->encode(w);
  w.bytes(token);
  w.bytes(delegate_secret);
  w.bytes(trace_key);
  w.bytes(liveness);
  return std::move(w).take();
}

SessionMessage SessionMessage::deserialize(BytesView b) {
  Reader r(b);
  SessionMessage out;
  out.type = static_cast<SessionMsgType>(r.u8());
  if (out.type < SessionMsgType::kPing ||
      out.type > SessionMsgType::kSilentMode) {
    throw SerializeError("unknown session message type");
  }
  out.ping_number = r.u64();
  out.ping_timestamp = r.i64();
  if (r.boolean()) out.state = static_cast<EntityState>(r.u8());
  if (r.boolean()) out.load = LoadInfo::decode(r);
  out.token = r.bytes();
  out.delegate_secret = r.bytes();
  out.trace_key = r.bytes();
  out.liveness = r.bytes();
  r.expect_done();
  return out;
}

}  // namespace et::tracing
