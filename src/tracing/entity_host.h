// The entity-host client (DESIGN.md §14): batch-first registration for
// co-hosted entities.
//
// A host process running many entities (a container runtime, an actor
// system, a service mesh sidecar) registers them with ONE round-trip:
//   1. mint a single trace topic `Availability/Traces/<host-id>` at the
//      TDN — trackers discover members through the host topic;
//   2. send one signed BatchRegistrationRequest naming every member over
//      the RegistrationBatch constrained topic;
//   3. decrypt one registration response, subscribe to one session
//      topic, deliver ONE delegation (token + delegate key) covering the
//      whole roster — the re-mint round-trips collapse from O(entities)
//      to O(1) per host;
//   4. answer each broker ping with a liveness bitmap (bit i = member i
//      of the registration order), so one ping/response pair carries the
//      whole roster's availability.
//
// The broker fans the bitmap back out into per-member observations and
// (when digests are enabled) coalesces the resulting ALLS_WELLs, so
// trackers keep exact per-entity semantics.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/credential.h"
#include "src/crypto/secret_key.h"
#include "src/discovery/discovery_client.h"
#include "src/pubsub/client.h"
#include "src/tracing/authorization_token.h"
#include "src/tracing/config.h"
#include "src/tracing/registration.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {

/// Counters for tests/benches.
struct EntityHostStats {
  std::uint64_t pings_received = 0;
  std::uint64_t pings_answered = 0;
  std::uint64_t registrations = 0;  // completed batch registrations
  std::uint64_t failover_attempts = 0;  // find_broker rounds started
  std::uint64_t failovers = 0;          // completed re-registrations
};

class EntityHost {
 public:
  EntityHost(transport::NetworkBackend& backend, crypto::Identity identity,
             TrustAnchors anchors, TracingConfig config, std::uint64_t seed);

  EntityHost(const EntityHost&) = delete;
  EntityHost& operator=(const EntityHost&) = delete;

  /// Cancels the token-renewal timer; member clients detach their nodes.
  ~EntityHost();

  /// Links the discovery client to a TDN.
  void attach_tdn(transport::NodeId tdn, const transport::LinkParams& params);

  /// Connects the pub/sub client to a broker.
  void connect_broker(transport::NodeId broker,
                      const transport::LinkParams& params);

  /// Bench hook: pre-generated delegate key pair to reuse instead of
  /// minting a fresh one per delegation. RSA keygen dominates setup time
  /// at bench scale and is not what E16 measures. Must be called before
  /// register_entities(); production callers should not use it (a fresh
  /// delegate pair per delegation is the §4.3 hygiene).
  void set_delegate_keys(crypto::RsaKeyPair keys);

  using ReadyCallback = std::function<void(const Status&)>;

  /// Runs steps 1-3 above for `entity_ids` (the batch registration
  /// order — liveness bitmap bit i refers to entity_ids[i] forever
  /// after). `restrictions` controls who may discover the host topic.
  /// `on_ready` fires once the delegation is delivered (or with the
  /// first error). Registering again replaces the previous roster.
  void register_entities(discovery::DiscoveryRestrictions restrictions,
                         std::vector<std::string> entity_ids,
                         ReadyCallback on_ready);

  /// §3.3 "disable tracing" for the whole roster: the broker publishes
  /// REVERTING_TO_SILENT_MODE and drops the host session.
  void stop_tracing();

  /// Abrupt departure: severs the broker link without notice. The broker
  /// publishes per-member DISCONNECT traces when it notices.
  void disconnect();

  /// Failure injection for one member: while false, its liveness bit
  /// stays clear, driving per-member suspicion/failure at the broker
  /// while the rest of the roster keeps reporting healthy.
  void set_responsive(const std::string& entity_id, bool responsive);

  /// Failure injection for the whole host: while false, pings are
  /// swallowed entirely (hung host), driving whole-roster escalation.
  void set_all_responsive(bool responsive);

  /// True while the host is hunting for a replacement broker after its
  /// hosting broker went silent (TracingConfig::broker_silence_timeout).
  /// One failover re-homes the entire roster: one find_broker round, one
  /// batch re-registration, one re-minted delegation.
  [[nodiscard]] bool failing_over() const { return failing_over_; }

  [[nodiscard]] const std::string& host_id() const { return identity_.id; }
  [[nodiscard]] std::size_t entity_count() const { return entity_ids_.size(); }
  [[nodiscard]] const Uuid& trace_topic() const { return trace_topic_; }
  [[nodiscard]] const Uuid& session_id() const { return session_id_; }
  [[nodiscard]] bool tracing_active() const { return active_; }
  [[nodiscard]] const discovery::TopicAdvertisement& advertisement() const {
    return advertisement_;
  }
  [[nodiscard]] const EntityHostStats& stats() const { return stats_; }
  [[nodiscard]] pubsub::Client& client() { return client_; }

 private:
  void register_with_broker(ReadyCallback on_ready);
  void on_registration_response(const pubsub::Message& m);
  void deliver_delegation(ReadyCallback on_ready);
  void on_ping(const pubsub::Message& m);
  // Broker-silence failover, mirroring TracedEntity (DESIGN.md §11) with
  // the batch twist: one re-registration re-homes the whole roster. All
  // run in the client context.
  void arm_watchdog();
  void on_watchdog();
  void begin_failover();
  void attempt_failover();
  void failover_backoff();
  void finish_failover();
  /// Sends a session message, authenticated per the configured mode.
  /// Token/key deliveries are always encrypted regardless of mode.
  void send_session_message(const SessionMessage& sm, bool force_encrypt);

  transport::NetworkBackend& backend_;
  crypto::Identity identity_;
  TrustAnchors anchors_;
  TracingConfig config_;
  Rng rng_;
  pubsub::Client client_;
  discovery::DiscoveryClient disc_;

  discovery::TopicAdvertisement advertisement_;
  Uuid trace_topic_;
  Uuid session_id_;
  crypto::SecretKey session_key_;
  crypto::SecretKey trace_key_;
  std::optional<crypto::RsaKeyPair> preset_delegate_;
  std::vector<std::string> entity_ids_;   // batch registration order
  std::vector<std::uint8_t> responsive_;  // parallel to entity_ids_
  std::map<std::string, std::size_t> index_of_;
  std::uint64_t registration_request_id_ = 0;
  /// Completion callback of the registration in flight; consumed exactly
  /// once per attempt (re-registration replaces it).
  ReadyCallback pending_ready_;
  bool registration_subscribed_ = false;
  std::uint64_t sequence_ = 0;
  transport::TimerId renewal_timer_ = 0;
  bool active_ = false;
  bool host_responsive_ = true;
  // Failover state. `failover_gen_` versions the in-flight attempt so
  // stale discovery/connect/registration callbacks are ignored.
  transport::LinkParams broker_params_{};
  TimePoint last_broker_activity_ = 0;
  transport::TimerId watchdog_timer_ = 0;
  transport::TimerId failover_timer_ = 0;  // backoff OR per-attempt timeout
  bool failing_over_ = false;
  std::uint64_t failover_gen_ = 0;
  RetryState failover_retry_ = RetryState(RetryPolicy::none(), 0);
  EntityHostStats stats_;
};

}  // namespace et::tracing
