#include "src/tracing/entity_host.h"

#include <utility>

#include "src/common/logging.h"
#include "src/pubsub/constrained_topic.h"
#include "src/tracing/trace_emitter.h"

namespace et::tracing {

namespace tt = pubsub::trace_topics;

EntityHost::EntityHost(transport::NetworkBackend& backend,
                       crypto::Identity identity, TrustAnchors anchors,
                       TracingConfig config, std::uint64_t seed)
    : backend_(backend),
      identity_(std::move(identity)),
      anchors_(std::move(anchors)),
      config_(config),
      rng_(seed),
      client_(backend, identity_.id),
      disc_(backend, identity_) {
  disc_.set_retry_policy(config_.retry);
}

EntityHost::~EntityHost() {
  backend_.cancel(renewal_timer_);
  backend_.cancel(watchdog_timer_);
  backend_.cancel(failover_timer_);
}

void EntityHost::attach_tdn(transport::NodeId tdn,
                            const transport::LinkParams& params) {
  disc_.attach_tdn(tdn, params);
}

void EntityHost::connect_broker(transport::NodeId broker,
                                const transport::LinkParams& params) {
  broker_params_ = params;  // reused when failing over to a new broker
  last_broker_activity_ = backend_.now();
  client_.connect(broker, params);
}

void EntityHost::set_delegate_keys(crypto::RsaKeyPair keys) {
  backend_.post(client_.node(), [this, keys = std::move(keys)]() mutable {
    preset_delegate_ = std::move(keys);
  });
}

void EntityHost::register_entities(
    discovery::DiscoveryRestrictions restrictions,
    std::vector<std::string> entity_ids, ReadyCallback on_ready) {
  // Step 1: one trace topic for the whole roster, minted under the host's
  // id. Tracking a member means tracking its host topic (§14).
  disc_.create_topic(
      "Availability/Traces/" + identity_.id, std::move(restrictions),
      config_.topic_lifetime,
      [this, entity_ids = std::move(entity_ids), on_ready = std::move(
          on_ready)](Result<discovery::TopicAdvertisement> result) mutable {
        backend_.post(client_.node(), [this, entity_ids = std::move(entity_ids),
                                       result = std::move(result),
                                       on_ready =
                                           std::move(on_ready)]() mutable {
          if (!result.ok()) {
            if (on_ready) on_ready(result.status());
            return;
          }
          advertisement_ = std::move(result).value();
          trace_topic_ = advertisement_.topic();
          active_ = false;  // (re-)registration in progress
          entity_ids_ = std::move(entity_ids);
          responsive_.assign(entity_ids_.size(), 1);
          index_of_.clear();
          for (std::size_t i = 0; i < entity_ids_.size(); ++i) {
            index_of_[entity_ids_[i]] = i;
          }
          register_with_broker(std::move(on_ready));
        });
      });
}

void EntityHost::register_with_broker(ReadyCallback on_ready) {
  pending_ready_ = std::move(on_ready);
  // Subscribe once — the client keeps every handler ever registered for a
  // pattern, so re-subscribing would replay responses into stale
  // callbacks (same discipline as TracedEntity).
  if (!registration_subscribed_) {
    registration_subscribed_ = true;
    const std::string response_topic = "Constrained/Traces/" + identity_.id +
                                       "/Subscribe-Only/RegistrationResponse";
    client_.subscribe(response_topic, [this](const pubsub::Message& m) {
      on_registration_response(m);
    });
  }

  // Step 2: ONE signed request names the whole roster.
  BatchRegistrationRequest req;
  req.host_id = identity_.id;
  req.credential = identity_.credential;
  req.advertisement = advertisement_;
  req.request_id = rng_.next_u64() | 1;
  req.entity_ids = entity_ids_;
  registration_request_id_ = req.request_id;

  pubsub::Message m;
  m.topic = tt::registration_batch();
  m.payload = req.serialize();
  m.publisher = identity_.id;
  // §3.2 item 4: demonstrate possession by signing the message.
  publish_signed(client_, std::move(m), identity_.keys.private_key, sequence_,
                 backend_.now());
}

void EntityHost::on_registration_response(const pubsub::Message& m) {
  last_broker_activity_ = backend_.now();
  if (active_) return;  // duplicate delivery after success
  if (!m.encrypted) {
    // Plaintext responses are error reports {request_id, message}.
    try {
      Reader r(m.payload);
      const std::uint64_t req_id = r.u64();
      const std::string error = r.str();
      if (req_id != registration_request_id_) return;
      ET_LOG(kInfo) << identity_.id
                    << ": batch registration rejected: " << error;
      if (auto cb = std::exchange(pending_ready_, nullptr)) {
        cb(unauthenticated(error));
      }
    } catch (const SerializeError&) {
    }
    return;
  }
  RegistrationResponse resp;
  try {
    const SealedEnvelope env = SealedEnvelope::deserialize(m.payload);
    resp = RegistrationResponse::deserialize(
        env.open(identity_.keys.private_key));
  } catch (const std::exception& e) {
    ET_LOG(kDebug) << identity_.id
                   << ": undecipherable registration response: " << e.what();
    return;
  }
  if (resp.request_id != registration_request_id_) return;

  session_id_ = resp.session_id;
  session_key_ = crypto::SecretKey::deserialize(resp.session_key);

  // Step 3: one session topic covers the roster.
  client_.subscribe(
      tt::broker_to_entity(identity_.id, trace_topic_.to_string(),
                           session_id_.to_string()),
      [this](const pubsub::Message& ping) { on_ping(ping); });

  deliver_delegation(std::exchange(pending_ready_, nullptr));
}

void EntityHost::deliver_delegation(ReadyCallback on_ready) {
  // §4.3 with one twist: ONE delegate pair + token authorizes traces for
  // the entire roster (they all share the host's trace topic), so the
  // re-mint cost is O(hosts), not O(entities).
  const crypto::RsaKeyPair delegate =
      preset_delegate_ ? *preset_delegate_
                       : crypto::rsa_generate(rng_, config_.delegate_key_bits);
  const TimePoint now = backend_.now();
  const AuthorizationToken token = AuthorizationToken::create(
      advertisement_, delegate.public_key, TokenRights::kPublish, now,
      now + config_.token_lifetime, identity_.keys.private_key);

  SessionMessage sm;
  sm.type = SessionMsgType::kTokenDelivery;
  sm.token = token.serialize();
  sm.delegate_secret = delegate.private_key.serialize();
  send_session_message(sm, /*force_encrypt=*/true);

  if (config_.auto_renew_tokens) {
    backend_.cancel(renewal_timer_);
    renewal_timer_ = backend_.schedule(
        client_.node(), config_.token_lifetime * 3 / 4, [this] {
          if (active_) deliver_delegation(nullptr);
        });
  }

  if (config_.secure_traces) {
    if (trace_key_.empty()) {
      trace_key_ = crypto::SecretKey::generate(rng_, config_.symmetric_alg);
    }
    SessionMessage key_msg;
    key_msg.type = SessionMsgType::kTraceKeyDelivery;
    key_msg.trace_key = trace_key_.serialize();
    send_session_message(key_msg, /*force_encrypt=*/true);
  }

  active_ = true;
  ++stats_.registrations;
  arm_watchdog();
  if (on_ready) on_ready(Status::ok());
}

void EntityHost::on_ping(const pubsub::Message& m) {
  // Any broker traffic proves the broker alive — even pings we choose not
  // to answer (set_all_responsive(false) simulates a hung host, not a
  // dead broker), so the silence watchdog must not fail over then.
  last_broker_activity_ = backend_.now();
  SessionMessage ping;
  try {
    ping = SessionMessage::deserialize(m.payload);
  } catch (const SerializeError&) {
    return;
  }
  if (ping.type != SessionMsgType::kPing) return;
  ++stats_.pings_received;
  if (!host_responsive_) return;  // injected failure: whole host silent

  // §3.3 response, batch form: echo number+timestamp and pack the
  // roster's responsiveness into the liveness bitmap — bit i of byte i/8
  // covers entity_ids_[i] (the batch registration order).
  SessionMessage resp;
  resp.type = SessionMsgType::kPingResponse;
  resp.ping_number = ping.ping_number;
  resp.ping_timestamp = ping.ping_timestamp;
  resp.liveness.assign((entity_ids_.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < entity_ids_.size(); ++i) {
    if (responsive_[i]) {
      resp.liveness[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  send_session_message(resp, /*force_encrypt=*/false);
  ++stats_.pings_answered;
}

void EntityHost::send_session_message(const SessionMessage& sm,
                                      bool force_encrypt) {
  pubsub::Message m;
  m.topic = tt::entity_to_broker(trace_topic_.to_string(),
                                 session_id_.to_string());
  m.publisher = identity_.id;

  const bool encrypt =
      force_encrypt ||
      config_.signing_mode == EntitySigningMode::kSymmetricSession;
  if (encrypt) {
    // §6.3: possession of the session key authenticates the host.
    m.payload = session_key_.encrypt(sm.serialize(), rng_);
    m.encrypted = true;
    m.sequence = ++sequence_;
    m.timestamp = backend_.now();
    client_.publish(std::move(m));
    return;
  }
  // §4.2: sign every message, including ping responses.
  m.payload = sm.serialize();
  publish_signed(client_, std::move(m), identity_.keys.private_key, sequence_,
                 backend_.now());
}

void EntityHost::stop_tracing() {
  backend_.post(client_.node(), [this] {
    if (!active_) return;
    SessionMessage sm;
    sm.type = SessionMsgType::kSilentMode;
    send_session_message(sm, false);
    active_ = false;
    backend_.cancel(renewal_timer_);
  });
}

void EntityHost::disconnect() {
  backend_.post(client_.node(), [this] {
    active_ = false;
    backend_.cancel(renewal_timer_);
    if (client_.broker() != transport::kInvalidNode) {
      backend_.unlink(client_.node(), client_.broker());
    }
  });
}

// --- broker-silence failover (DESIGN.md §11, batch form) ------------------

void EntityHost::arm_watchdog() {
  if (config_.broker_silence_timeout <= 0) return;
  backend_.cancel(watchdog_timer_);
  const Duration interval =
      std::max<Duration>(1, config_.broker_silence_timeout / 2);
  watchdog_timer_ =
      backend_.schedule(client_.node(), interval, [this] { on_watchdog(); });
}

void EntityHost::on_watchdog() {
  watchdog_timer_ = 0;
  if (!active_ || failing_over_) return;
  if (backend_.now() - last_broker_activity_ >=
      config_.broker_silence_timeout) {
    ET_LOG(kInfo) << identity_.id
                  << ": hosting broker silent; starting batch failover";
    begin_failover();
    return;
  }
  arm_watchdog();
}

void EntityHost::begin_failover() {
  failing_over_ = true;
  active_ = false;
  backend_.cancel(renewal_timer_);
  backend_.cancel(watchdog_timer_);
  watchdog_timer_ = 0;
  // Sever the dead broker's link: if it is in fact alive (we were merely
  // partitioned), its next ping send gets kUnavailable and it tears the
  // stale session down with per-member DISCONNECT traces — exactly the
  // bookkeeping we want for a session we are abandoning.
  if (client_.broker() != transport::kInvalidNode &&
      backend_.linked(client_.node(), client_.broker())) {
    backend_.unlink(client_.node(), client_.broker());
  }
  failover_retry_ = RetryState(config_.retry, backend_.now());
  attempt_failover();
}

void EntityHost::attempt_failover() {
  const std::uint64_t gen = ++failover_gen_;
  ++stats_.failover_attempts;
  // One attempt = find_broker -> connect -> resubscribe -> ONE batch
  // re-registration covering the whole roster -> one re-minted
  // delegation. The tail after find_broker runs under one timeout; a TDN
  // may hand us a broker that crashed after registering.
  const Duration step_timeout =
      std::max<Duration>(100 * kMillisecond, config_.broker_silence_timeout);
  disc_.find_broker(
      [this, gen](Result<discovery::BrokerLocation> r) {
        backend_.post(client_.node(), [this, gen, r = std::move(r)]() mutable {
          if (gen != failover_gen_ || !failing_over_) return;
          if (!r.ok()) {
            failover_backoff();
            return;
          }
          const discovery::BrokerLocation loc = std::move(r).value();
          const Duration attempt_timeout = std::max<Duration>(
              100 * kMillisecond, config_.broker_silence_timeout);
          failover_timer_ =
              backend_.schedule(client_.node(), attempt_timeout, [this, gen] {
                if (gen != failover_gen_ || !failing_over_) return;
                failover_timer_ = 0;
                pending_ready_ = nullptr;  // abandon the in-flight attempt
                if (client_.broker() != transport::kInvalidNode &&
                    backend_.linked(client_.node(), client_.broker())) {
                  backend_.unlink(client_.node(), client_.broker());
                }
                failover_backoff();
              });
          client_.connect(loc.node, broker_params_, [this,
                                                     gen](const Status& s) {
            if (gen != failover_gen_ || !failing_over_) return;
            if (!s.is_ok()) return;  // the per-attempt timeout handles it
            // The new broker knows none of our subscriptions (broker-side
            // state is per-broker): replay them, then re-register the
            // batch. The subscribe frames travel the same ordered link
            // first, so the registration response cannot outrun its
            // subscription.
            client_.resubscribe_all();
            register_with_broker([this, gen](const Status& rs) {
              if (gen != failover_gen_ || !failing_over_) return;
              backend_.cancel(failover_timer_);
              failover_timer_ = 0;
              if (!rs.is_ok()) {
                failover_backoff();
                return;
              }
              finish_failover();
            });
          });
        });
      },
      step_timeout);
}

void EntityHost::failover_backoff() {
  Duration delay = 0;
  if (!failover_retry_.next_delay(backend_.now(), rng_, &delay)) {
    // An availability reporter must never stop trying to report: once the
    // policy's budget is spent, restart the schedule at max-backoff
    // cadence instead of giving up.
    failover_retry_ = RetryState(config_.retry, backend_.now());
    delay = std::max<Duration>(1, config_.retry.max_backoff);
  }
  failover_timer_ = backend_.schedule(client_.node(), delay, [this] {
    failover_timer_ = 0;
    if (failing_over_) attempt_failover();
  });
}

void EntityHost::finish_failover() {
  failing_over_ = false;
  ++stats_.failovers;
  last_broker_activity_ = backend_.now();
  ET_LOG(kInfo) << identity_.id << ": batch failover complete, session "
                << session_id_.to_string();
  // Unlike TracedEntity there is no RECOVERING announcement: hosts carry
  // no per-member state machine, and the broker's next ping round
  // re-establishes every member's liveness from the bitmap.
}

void EntityHost::set_responsive(const std::string& entity_id,
                                bool responsive) {
  backend_.post(client_.node(), [this, entity_id, responsive] {
    const auto it = index_of_.find(entity_id);
    if (it == index_of_.end()) return;
    responsive_[it->second] = responsive ? 1 : 0;
  });
}

void EntityHost::set_all_responsive(bool responsive) {
  backend_.post(client_.node(), [this, responsive] {
    host_responsive_ = responsive;
  });
}

}  // namespace et::tracing
