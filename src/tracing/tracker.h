// The tracker client (paper §3.4/§3.5/§5.1).
//
// "Trackers interested in receiving traces corresponding to an entity must
// first discover the trace topic that has been registered by that entity."
// A tracker:
//   * runs the authorized discovery query (/Liveness/<entity-id>) — if it
//     is not on the entity's discovery-restriction list the TDN stays
//     silent and tracking fails with kNotFound;
//   * subscribes selectively to the per-category derived topics;
//   * verifies every received trace end-to-end (token chain + delegate
//     signature) before surfacing it;
//   * answers GAUGE_INTEREST probes with its interest set and credential,
//     and requests/uses the sealed trace key when traces are encrypted.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "src/crypto/credential.h"
#include "src/crypto/secret_key.h"
#include "src/discovery/discovery_client.h"
#include "src/pubsub/client.h"
#include "src/tracing/authorization_token.h"
#include "src/tracing/config.h"
#include "src/tracing/registration.h"
#include "src/tracing/trace_message.h"

namespace et::tracing {

/// Counters for tests/benches.
struct TrackerStats {
  std::uint64_t traces_received = 0;   // after verification (incl. expanded)
  std::uint64_t traces_rejected = 0;   // failed token/signature checks
  std::uint64_t undecryptable = 0;     // encrypted, no (valid) key yet
  std::uint64_t gauges_answered = 0;
  std::uint64_t keys_received = 0;
  std::uint64_t digests_received = 0;  // verified digest messages
  std::uint64_t digest_entries_expanded = 0;  // per-entity payloads from them
};

class Tracker {
 public:
  /// Delivered for every verified (and, when needed, decrypted) trace.
  using TraceHandler =
      std::function<void(const TracePayload&, const pubsub::Message&)>;

  Tracker(transport::NetworkBackend& backend, crypto::Identity identity,
          TrustAnchors anchors, std::uint64_t seed);

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  void attach_tdn(transport::NodeId tdn, const transport::LinkParams& params);
  void connect_broker(transport::NodeId broker,
                      const transport::LinkParams& params);

  using ReadyCallback = std::function<void(const Status&)>;

  /// Starts tracking `entity_id` for the given TraceCategory mask.
  /// Discovery failure (unauthorized/unknown) reports kNotFound.
  void track(const std::string& entity_id, std::uint8_t categories,
             TraceHandler handler, ReadyCallback on_ready = nullptr);

  /// Tracks an EntityHost's batch session (DESIGN.md §14). Identical to
  /// track(host_id, ...) — the name documents the semantics: the handler
  /// fires once per *member entity* observation; coalesced digests are
  /// verified, decrypted and expanded before delivery, so per-entity
  /// handlers never see the batching.
  void track_host(const std::string& host_id, std::uint8_t categories,
                  TraceHandler handler, ReadyCallback on_ready = nullptr) {
    track(host_id, categories, std::move(handler), std::move(on_ready));
  }

  /// Stops tracking `entity_id`: unsubscribes every associated topic and
  /// stops answering its gauge probes, so the broker's interest record
  /// for this tracker expires after the TTL (§3.5).
  void untrack(const std::string& entity_id);

  /// Number of entities currently tracked.
  [[nodiscard]] std::size_t tracked_count() const { return tracked_.size(); }

  [[nodiscard]] const std::string& tracker_id() const { return identity_.id; }
  [[nodiscard]] const TrackerStats& stats() const { return stats_; }
  [[nodiscard]] pubsub::Client& client() { return client_; }

 private:
  struct Tracked {
    std::string entity_id;
    discovery::TopicAdvertisement advertisement;
    std::string trace_topic;  // UUID string
    std::uint8_t categories = 0;
    TraceHandler handler;
    crypto::SecretKey trace_key;
  };

  void begin_subscriptions(Tracked t, ReadyCallback on_ready);
  void on_trace(const std::string& trace_topic, const pubsub::Message& m);
  void on_digest(const std::string& trace_topic, const pubsub::Message& m);
  /// Token-chain + delegate-signature verification shared by per-entity
  /// traces and digests (§4.3), plus decryption when the payload is
  /// sealed with the trace key. Returns the plaintext body or nullopt
  /// (counters already bumped).
  std::optional<Bytes> verify_and_open(Tracked& t,
                                       const std::string& trace_topic,
                                       const pubsub::Message& m);
  void respond_interest(Tracked& t, bool secured);
  void on_key_delivery(const std::string& trace_topic,
                       const pubsub::Message& m);
  [[nodiscard]] std::string key_topic_for(const Tracked& t) const;

  transport::NetworkBackend& backend_;
  crypto::Identity identity_;
  TrustAnchors anchors_;
  Rng rng_;
  pubsub::Client client_;
  discovery::DiscoveryClient disc_;
  std::map<std::string, Tracked> tracked_;  // keyed by trace-topic string
  std::uint64_t sequence_ = 0;
  TrackerStats stats_;
};

}  // namespace et::tracing
