// Network-wide enforcement of trace authorization (paper §4.3/§5.2).
//
// Every broker in a tracing deployment installs this filter. Messages on
// trace-publication topics (/Constrained/Traces/Broker/Publish-Only/...)
// must carry an authorization token that
//   * chains to the TDN-signed advertisement and the CA,
//   * names the same trace topic the message is published on,
//   * grants publish rights and is within its validity window, and
//   * whose delegate key verifies the message signature.
// Anything else is discarded and counted as misbehaviour of the sending
// peer — repeated offences get the peer disconnected by the broker.
//
// Installation — the only path is filling in Broker::Options before the
// broker exists:
//
//   pubsub::Broker::Options opts{.name = "broker-0"};
//   auto handle = install_trace_filter(opts, anchors, net, config);
//   pubsub::Broker broker(net, std::move(opts));
//
// The installed filter is the *batched pipeline*: it performs only the
// cheap gates inline (topic grammar, token presence), defers the message
// into a VerifyPipeline and resolves it through the broker's
// deferred-verdict hooks — see verify_pipeline.h for the batching,
// ordering and determinism rules. The returned TraceFilterHandle is the
// one place to observe the broker's per-hop verification: filter verdict
// counters, the token cache and its hit rates, and the pipeline's
// batch-stage counters.
//
// make_trace_filter() still builds the *inline* reference filter — every
// message fully verified on the spot, no deferral — which benches compare
// the pipeline against and tests use to exercise verification without a
// running overlay.
#pragma once

#include <memory>

#include "src/common/stats.h"
#include "src/pubsub/broker.h"
#include "src/tracing/config.h"
#include "src/tracing/token_verify_cache.h"
#include "src/tracing/verify_pipeline.h"

namespace et::tracing {

/// One consistent read of a trace filter's counters.
struct TraceFilterStats {
  std::uint64_t passthrough = 0;  // non-trace topics (other rules apply)
  std::uint64_t checked = 0;      // trace publications inspected
  std::uint64_t accepted = 0;     // full verification (or cache) passed
  std::uint64_t rejected = 0;     // discarded as unauthorized/invalid
};

namespace internal {
/// Live counters shared between the filter closure and its handle.
struct FilterCounters {
  RelaxedCounter passthrough;
  RelaxedCounter checked;
  RelaxedCounter accepted;
  RelaxedCounter rejected;

  [[nodiscard]] TraceFilterStats snapshot() const {
    return {passthrough.get(), checked.get(), accepted.get(),
            rejected.get()};
  }
};
}  // namespace internal

/// Handle returned by install_trace_filter: one place to observe a
/// broker's per-hop verification (filter verdict counters + the token
/// cache and its hit rates + the verification pipeline's batch counters).
/// Copyable; default-constructed handles read as empty. The cache pointer
/// is nullptr when the config disables caching.
class TraceFilterHandle {
 public:
  TraceFilterHandle() = default;
  TraceFilterHandle(std::shared_ptr<TokenVerifyCache> cache,
                    std::shared_ptr<internal::FilterCounters> counters,
                    std::shared_ptr<VerifyPipeline> pipeline = nullptr)
      : cache_(std::move(cache)),
        counters_(std::move(counters)),
        pipeline_(std::move(pipeline)) {}

  /// The broker's token-verification cache (nullptr when disabled).
  [[nodiscard]] const std::shared_ptr<TokenVerifyCache>& cache() const {
    return cache_;
  }

  /// Cache counters; zeros when caching is disabled. Safe from any thread
  /// (relaxed atomics).
  [[nodiscard]] TokenCacheStats cache_stats() const {
    return cache_ ? cache_->stats() : TokenCacheStats{};
  }

  /// Filter verdict counters; safe from any thread. For messages the
  /// pipeline defers, accepted/rejected tick when the verdict is applied,
  /// not at admission — quiesce (pipeline()->idle()) before asserting
  /// exact totals.
  [[nodiscard]] TraceFilterStats stats() const {
    return counters_ ? counters_->snapshot() : TraceFilterStats{};
  }

  /// Batch-stage counters; zeros when this handle observes an inline
  /// filter. Safe from any thread.
  [[nodiscard]] VerifyPipelineStats pipeline_stats() const {
    return pipeline_ ? pipeline_->stats() : VerifyPipelineStats{};
  }

  /// The verification pipeline (nullptr for inline filters) — tests poll
  /// pipeline()->idle() to synchronize with deferred verdicts.
  [[nodiscard]] const std::shared_ptr<VerifyPipeline>& pipeline() const {
    return pipeline_;
  }

  /// True when this handle observes an installed filter.
  [[nodiscard]] explicit operator bool() const { return counters_ != nullptr; }

 private:
  std::shared_ptr<TokenVerifyCache> cache_;
  std::shared_ptr<internal::FilterCounters> counters_;
  std::shared_ptr<VerifyPipeline> pipeline_;
};

/// Builds the uncached inline (reference) filter; `backend` supplies the
/// verification clock. Every message pays the full verification chain.
pubsub::MessageFilter make_trace_filter(const TrustAnchors& anchors,
                                        transport::NetworkBackend& backend);

/// Builds the inline filter with a token-verification cache and optional
/// verdict counters. `cache` may be nullptr (equivalent to the uncached
/// filter); it must outlive the filter and, like the broker it serves, is
/// touched only from that broker's node context. `counters`, when given,
/// is incremented per verdict (relaxed atomics, readable anywhere).
pubsub::MessageFilter make_trace_filter(
    const TrustAnchors& anchors, transport::NetworkBackend& backend,
    std::shared_ptr<TokenVerifyCache> cache,
    std::shared_ptr<internal::FilterCounters> counters = nullptr);

/// Fills `options.message_filter` with the pipeline-backed trace filter
/// for a broker about to be constructed on `backend`, sized per
/// `config.verification` (cache capacity/TTL + batch knobs). Returns the
/// stats handle.
TraceFilterHandle install_trace_filter(pubsub::Broker::Options& options,
                                       const TrustAnchors& anchors,
                                       transport::NetworkBackend& backend,
                                       const TracingConfig& config = {});

}  // namespace et::tracing
