// Network-wide enforcement of trace authorization (paper §4.3/§5.2).
//
// Every broker in a tracing deployment installs this filter. Messages on
// trace-publication topics (/Constrained/Traces/Broker/Publish-Only/...)
// must carry an authorization token that
//   * chains to the TDN-signed advertisement and the CA,
//   * names the same trace topic the message is published on,
//   * grants publish rights and is within its validity window, and
//   * whose delegate key verifies the message signature.
// Anything else is discarded and counted as misbehaviour of the sending
// peer — repeated offences get the peer disconnected by the broker.
//
// Per-hop fast path: the first three bullet points depend only on the
// token bytes, which are identical for every trace a hosting broker emits
// during one validity window. With a TokenVerifyCache installed, the RSA
// chain (advertisement, credential, owner signature) runs once per
// (token, validity window) and only the per-message delegate-signature
// check runs for each trace. See token_verify_cache.h for the caching
// rules that keep this safe.
//
// Installation: the preferred path fills in Broker::Options before the
// broker exists —
//
//   pubsub::Broker::Options opts{.name = "broker-0"};
//   auto handle = install_trace_filter(opts, anchors, net, config);
//   pubsub::Broker broker(net, std::move(opts));
//
// — and hands back a TraceFilterHandle for reading cache and filter
// statistics. A shim overload wires an already-constructed broker via
// Broker::set_message_filter. Future verification-stage stats (e.g. the
// planned batch signature verification, ROADMAP) extend the handle
// instead of changing these signatures again.
#pragma once

#include <memory>

#include "src/common/stats.h"
#include "src/pubsub/broker.h"
#include "src/tracing/config.h"
#include "src/tracing/token_verify_cache.h"

namespace et::tracing {

/// One consistent read of a trace filter's counters.
struct TraceFilterStats {
  std::uint64_t passthrough = 0;  // non-trace topics (other rules apply)
  std::uint64_t checked = 0;      // trace publications inspected
  std::uint64_t accepted = 0;     // full verification (or cache) passed
  std::uint64_t rejected = 0;     // discarded as unauthorized/invalid
};

namespace internal {
/// Live counters shared between the filter closure and its handle.
struct FilterCounters {
  RelaxedCounter passthrough;
  RelaxedCounter checked;
  RelaxedCounter accepted;
  RelaxedCounter rejected;

  [[nodiscard]] TraceFilterStats snapshot() const {
    return {passthrough.get(), checked.get(), accepted.get(),
            rejected.get()};
  }
};
}  // namespace internal

/// Handle returned by install_trace_filter: one place to observe a
/// broker's per-hop verification (filter verdict counters + the token
/// cache and its hit rates). Copyable; default-constructed handles read
/// as empty. The cache pointer is nullptr when the config disables
/// caching.
class TraceFilterHandle {
 public:
  TraceFilterHandle() = default;
  TraceFilterHandle(std::shared_ptr<TokenVerifyCache> cache,
                    std::shared_ptr<internal::FilterCounters> counters)
      : cache_(std::move(cache)), counters_(std::move(counters)) {}

  /// The broker's token-verification cache (nullptr when disabled).
  [[nodiscard]] const std::shared_ptr<TokenVerifyCache>& cache() const {
    return cache_;
  }

  /// Cache counters; zeros when caching is disabled. NOTE: the cache is
  /// touched only from its broker's node context — read after quiescing
  /// (or accept slightly stale values).
  [[nodiscard]] TokenCacheStats cache_stats() const {
    return cache_ ? cache_->stats() : TokenCacheStats{};
  }

  /// Filter verdict counters; safe from any thread.
  [[nodiscard]] TraceFilterStats stats() const {
    return counters_ ? counters_->snapshot() : TraceFilterStats{};
  }

  /// True when this handle observes an installed filter.
  [[nodiscard]] explicit operator bool() const { return counters_ != nullptr; }

 private:
  std::shared_ptr<TokenVerifyCache> cache_;
  std::shared_ptr<internal::FilterCounters> counters_;
};

/// Builds the uncached (reference) filter; `backend` supplies the
/// verification clock. Every message pays the full verification chain.
pubsub::MessageFilter make_trace_filter(const TrustAnchors& anchors,
                                        transport::NetworkBackend& backend);

/// Builds the filter with a token-verification cache and optional verdict
/// counters. `cache` may be nullptr (equivalent to the uncached filter);
/// it must outlive the filter and, like the broker it serves, is touched
/// only from that broker's node context. `counters`, when given, is
/// incremented per verdict (relaxed atomics, readable anywhere).
pubsub::MessageFilter make_trace_filter(
    const TrustAnchors& anchors, transport::NetworkBackend& backend,
    std::shared_ptr<TokenVerifyCache> cache,
    std::shared_ptr<internal::FilterCounters> counters = nullptr);

/// Construction path: fills `options.message_filter` with a trace filter
/// sized per `config` (token_cache_capacity / token_cache_ttl), for a
/// broker about to be constructed on `backend`. Returns the stats handle.
TraceFilterHandle install_trace_filter(pubsub::Broker::Options& options,
                                       const TrustAnchors& anchors,
                                       transport::NetworkBackend& backend,
                                       const TracingConfig& config = {});

/// Shim: installs the filter on an already-constructed broker via
/// Broker::set_message_filter (must complete before traffic starts).
TraceFilterHandle install_trace_filter(pubsub::Broker& broker,
                                       const TrustAnchors& anchors,
                                       const TracingConfig& config = {});

}  // namespace et::tracing
