// Network-wide enforcement of trace authorization (paper §4.3/§5.2).
//
// Every broker in a tracing deployment installs this filter. Messages on
// trace-publication topics (/Constrained/Traces/Broker/Publish-Only/...)
// must carry an authorization token that
//   * chains to the TDN-signed advertisement and the CA,
//   * names the same trace topic the message is published on,
//   * grants publish rights and is within its validity window, and
//   * whose delegate key verifies the message signature.
// Anything else is discarded and counted as misbehaviour of the sending
// peer — repeated offences get the peer disconnected by the broker.
#pragma once

#include "src/pubsub/broker.h"
#include "src/tracing/config.h"

namespace et::tracing {

/// Builds the filter; `backend` supplies the verification clock.
pubsub::MessageFilter make_trace_filter(const TrustAnchors& anchors,
                                        transport::NetworkBackend& backend);

/// Convenience: installs make_trace_filter on `broker`.
void install_trace_filter(pubsub::Broker& broker, const TrustAnchors& anchors);

}  // namespace et::tracing
