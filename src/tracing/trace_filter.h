// Network-wide enforcement of trace authorization (paper §4.3/§5.2).
//
// Every broker in a tracing deployment installs this filter. Messages on
// trace-publication topics (/Constrained/Traces/Broker/Publish-Only/...)
// must carry an authorization token that
//   * chains to the TDN-signed advertisement and the CA,
//   * names the same trace topic the message is published on,
//   * grants publish rights and is within its validity window, and
//   * whose delegate key verifies the message signature.
// Anything else is discarded and counted as misbehaviour of the sending
// peer — repeated offences get the peer disconnected by the broker.
//
// Per-hop fast path: the first three bullet points depend only on the
// token bytes, which are identical for every trace a hosting broker emits
// during one validity window. With a TokenVerifyCache installed, the RSA
// chain (advertisement, credential, owner signature) runs once per
// (token, validity window) and only the per-message delegate-signature
// check runs for each trace. See token_verify_cache.h for the caching
// rules that keep this safe.
#pragma once

#include <memory>

#include "src/pubsub/broker.h"
#include "src/tracing/config.h"
#include "src/tracing/token_verify_cache.h"

namespace et::tracing {

/// Builds the uncached (reference) filter; `backend` supplies the
/// verification clock. Every message pays the full verification chain.
pubsub::MessageFilter make_trace_filter(const TrustAnchors& anchors,
                                        transport::NetworkBackend& backend);

/// Builds the filter with a token-verification cache. `cache` may be
/// nullptr (equivalent to the uncached filter). The cache must outlive
/// the filter and, like the broker it serves, is touched only from that
/// broker's node context.
pubsub::MessageFilter make_trace_filter(
    const TrustAnchors& anchors, transport::NetworkBackend& backend,
    std::shared_ptr<TokenVerifyCache> cache);

/// Convenience: installs make_trace_filter on `broker`, sized per
/// `config` (token_cache_capacity / token_cache_ttl). Returns the
/// broker's cache so callers can read its stats alongside BrokerStats;
/// nullptr when the config disables caching.
std::shared_ptr<TokenVerifyCache> install_trace_filter(
    pubsub::Broker& broker, const TrustAnchors& anchors,
    const TracingConfig& config = {});

}  // namespace et::tracing
