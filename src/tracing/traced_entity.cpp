#include "src/tracing/traced_entity.h"

#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/pubsub/constrained_topic.h"

namespace et::tracing {

namespace tt = pubsub::trace_topics;

TracedEntity::TracedEntity(transport::NetworkBackend& backend,
                           crypto::Identity identity, TrustAnchors anchors,
                           TracingConfig config, std::uint64_t seed)
    : backend_(backend),
      identity_(std::move(identity)),
      anchors_(std::move(anchors)),
      config_(config),
      rng_(seed),
      client_(backend, identity_.id),
      disc_(backend, identity_) {}

TracedEntity::~TracedEntity() { backend_.cancel(renewal_timer_); }

void TracedEntity::attach_tdn(transport::NodeId tdn,
                              const transport::LinkParams& params) {
  disc_.attach_tdn(tdn, params);
}

void TracedEntity::connect_broker(transport::NodeId broker,
                                  const transport::LinkParams& params) {
  client_.connect(broker, params);
}

void TracedEntity::start_tracing(discovery::DiscoveryRestrictions restrictions,
                                 ReadyCallback on_ready) {
  // Step 1: mint the trace topic at the TDN (§3.1). The callback hops into
  // the client context so all entity state stays single-context.
  disc_.create_topic(
      "Availability/Traces/" + identity_.id, std::move(restrictions),
      config_.topic_lifetime,
      [this, on_ready = std::move(on_ready)](
          Result<discovery::TopicAdvertisement> result) mutable {
        backend_.post(client_.node(), [this, result = std::move(result),
                                       on_ready = std::move(on_ready)]() mutable {
          if (!result.ok()) {
            if (on_ready) on_ready(result.status());
            return;
          }
          advertisement_ = std::move(result).value();
          trace_topic_ = advertisement_.topic();
          active_ = false;  // (re-)registration in progress
          register_with_broker(std::move(on_ready));
        });
      });
}

void TracedEntity::register_with_broker(ReadyCallback on_ready) {
  // A re-registration abandons any registration still in flight; its
  // callback must not fire later against a response meant for this one.
  pending_ready_ = std::move(on_ready);
  // Step 2 prep: listen for the response before asking (§3.2). Subscribe
  // once — the client keeps every handler ever registered for a pattern,
  // so re-subscribing here would replay responses into stale callbacks.
  if (!registration_subscribed_) {
    registration_subscribed_ = true;
    const std::string response_topic = "Constrained/Traces/" + identity_.id +
                                       "/Subscribe-Only/RegistrationResponse";
    client_.subscribe(response_topic, [this](const pubsub::Message& m) {
      on_registration_response(m);
    });
  }

  RegistrationRequest req;
  req.entity_id = identity_.id;
  req.credential = identity_.credential;
  req.advertisement = advertisement_;
  req.request_id = rng_.next_u64() | 1;
  registration_request_id_ = req.request_id;

  pubsub::Message m;
  m.topic = tt::registration();
  m.payload = req.serialize();
  m.publisher = identity_.id;
  m.sequence = ++sequence_;
  m.timestamp = backend_.now();
  // §3.2 item 4: demonstrate possession by signing the message.
  m.signature = identity_.keys.private_key.sign(m.signable_bytes());
  client_.publish(std::move(m));
}

void TracedEntity::on_registration_response(const pubsub::Message& m) {
  if (active_) return;  // duplicate delivery after success
  if (!m.encrypted) {
    // Plaintext responses are error reports {request_id, message}.
    try {
      Reader r(m.payload);
      const std::uint64_t req_id = r.u64();
      const std::string error = r.str();
      if (req_id != registration_request_id_) return;
      ET_LOG(kInfo) << identity_.id << ": registration rejected: " << error;
      if (auto cb = std::exchange(pending_ready_, nullptr)) {
        cb(unauthenticated(error));
      }
    } catch (const SerializeError&) {
    }
    return;
  }
  RegistrationResponse resp;
  try {
    const SealedEnvelope env = SealedEnvelope::deserialize(m.payload);
    resp = RegistrationResponse::deserialize(
        env.open(identity_.keys.private_key));
  } catch (const std::exception& e) {
    ET_LOG(kDebug) << identity_.id
                   << ": undecipherable registration response: " << e.what();
    return;
  }
  if (resp.request_id != registration_request_id_) return;

  session_id_ = resp.session_id;
  session_key_ = crypto::SecretKey::deserialize(resp.session_key);

  // Step 3: subscribe to the broker->entity session topic (§3.2).
  client_.subscribe(
      tt::broker_to_entity(identity_.id, trace_topic_.to_string(),
                           session_id_.to_string()),
      [this](const pubsub::Message& ping) { on_ping(ping); });

  deliver_delegation(std::exchange(pending_ready_, nullptr));
}

void TracedEntity::deliver_delegation(ReadyCallback on_ready) {
  // Step 4 (§4.3): fresh delegate pair, token signed by our long-term key.
  const crypto::RsaKeyPair delegate =
      crypto::rsa_generate(rng_, config_.delegate_key_bits);
  const TimePoint now = backend_.now();
  const AuthorizationToken token = AuthorizationToken::create(
      advertisement_, delegate.public_key, TokenRights::kPublish, now,
      now + config_.token_lifetime, identity_.keys.private_key);

  SessionMessage sm;
  sm.type = SessionMsgType::kTokenDelivery;
  sm.token = token.serialize();
  sm.delegate_secret = delegate.private_key.serialize();
  send_session_message(sm, /*force_encrypt=*/true);

  // §4.3: renew the delegation before the token expires.
  if (config_.auto_renew_tokens) {
    backend_.cancel(renewal_timer_);
    renewal_timer_ = backend_.schedule(
        client_.node(), config_.token_lifetime * 3 / 4, [this] {
          if (active_) renew_token();
        });
  }

  if (config_.secure_traces) {
    // The trace key survives token renewals — rotating it here would
    // orphan trackers that already unwrapped it. (Re-)delivery to the
    // broker is idempotent.
    if (trace_key_.empty()) {
      trace_key_ = crypto::SecretKey::generate(rng_, config_.symmetric_alg);
    }
    SessionMessage key_msg;
    key_msg.type = SessionMsgType::kTraceKeyDelivery;
    key_msg.trace_key = trace_key_.serialize();
    send_session_message(key_msg, /*force_encrypt=*/true);
  }

  active_ = true;
  if (on_ready) on_ready(Status::ok());
}

void TracedEntity::on_ping(const pubsub::Message& m) {
  SessionMessage ping;
  try {
    ping = SessionMessage::deserialize(m.payload);
  } catch (const SerializeError&) {
    return;
  }
  if (ping.type != SessionMsgType::kPing) return;
  ++stats_.pings_received;
  if (!responsive_) return;  // injected failure: stay silent

  // §3.3: the response echoes the ping's number and timestamp.
  SessionMessage resp;
  resp.type = SessionMsgType::kPingResponse;
  resp.ping_number = ping.ping_number;
  resp.ping_timestamp = ping.ping_timestamp;
  send_session_message(resp, /*force_encrypt=*/false);
  ++stats_.pings_answered;
}

void TracedEntity::send_session_message(const SessionMessage& sm,
                                        bool force_encrypt) {
  pubsub::Message m;
  m.topic = tt::entity_to_broker(trace_topic_.to_string(),
                                 session_id_.to_string());
  m.publisher = identity_.id;
  m.sequence = ++sequence_;
  m.timestamp = backend_.now();

  const bool encrypt =
      force_encrypt ||
      config_.signing_mode == EntitySigningMode::kSymmetricSession;
  if (encrypt) {
    // §6.3: encryption with the shared session key authenticates us —
    // "the broker accepts messages encrypted with this key as having
    // originated by the entity in question".
    m.payload = session_key_.encrypt(sm.serialize(), rng_);
    m.encrypted = true;
  } else {
    // §4.2: sign every message, including ping responses.
    m.payload = sm.serialize();
    m.signature = identity_.keys.private_key.sign(m.signable_bytes());
  }
  client_.publish(std::move(m));
}

void TracedEntity::set_state(EntityState state) {
  backend_.post(client_.node(), [this, state] {
    state_ = state;
    if (!active_) return;
    SessionMessage sm;
    sm.type = SessionMsgType::kStateReport;
    sm.state = state;
    send_session_message(sm, false);
    ++stats_.reports_sent;
  });
}

void TracedEntity::report_load(const LoadInfo& load) {
  backend_.post(client_.node(), [this, load] {
    if (!active_) return;
    SessionMessage sm;
    sm.type = SessionMsgType::kLoadReport;
    sm.load = load;
    send_session_message(sm, false);
    ++stats_.reports_sent;
  });
}

void TracedEntity::renew_token() {
  backend_.post(client_.node(), [this] {
    if (!active_) return;
    // Fresh delegation: new key pair, new token, same session. The broker
    // replaces its delegation atomically on receipt. A renewal failure is
    // indistinguishable from expiry, so there is no callback; the next
    // renewal timer is re-armed inside deliver_delegation.
    deliver_delegation(nullptr);
  });
}

void TracedEntity::stop_tracing() {
  backend_.post(client_.node(), [this] {
    if (!active_) return;
    SessionMessage sm;
    sm.type = SessionMsgType::kSilentMode;
    send_session_message(sm, false);
    active_ = false;
    backend_.cancel(renewal_timer_);
  });
}

void TracedEntity::disconnect() {
  backend_.post(client_.node(), [this] {
    active_ = false;
    backend_.cancel(renewal_timer_);
    if (client_.broker() != transport::kInvalidNode) {
      backend_.unlink(client_.node(), client_.broker());
    }
  });
}

void TracedEntity::set_responsive(bool responsive) {
  backend_.post(client_.node(), [this, responsive] {
    responsive_ = responsive;
  });
}

}  // namespace et::tracing
