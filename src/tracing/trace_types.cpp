#include "src/tracing/trace_types.h"

#include "src/pubsub/constrained_topic.h"

namespace et::tracing {

std::string_view trace_type_name(TraceType t) {
  switch (t) {
    case TraceType::kInitializing: return "INITIALIZING";
    case TraceType::kRecovering: return "RECOVERING";
    case TraceType::kReady: return "READY";
    case TraceType::kShutdown: return "SHUTDOWN";
    case TraceType::kFailureSuspicion: return "FAILURE_SUSPICION";
    case TraceType::kFailed: return "FAILED";
    case TraceType::kDisconnect: return "DISCONNECT";
    case TraceType::kGaugeInterest: return "GAUGE_INTEREST";
    case TraceType::kJoin: return "JOIN";
    case TraceType::kRevertingToSilentMode: return "REVERTING_TO_SILENT_MODE";
    case TraceType::kAllsWell: return "ALLS_WELL";
    case TraceType::kLoadInformation: return "LOAD_INFORMATION";
    case TraceType::kNetworkMetrics: return "NETWORK_METRICS";
    case TraceType::kDigest: return "DIGEST";
  }
  return "UNKNOWN";
}

std::uint8_t category_of(TraceType t) {
  switch (t) {
    case TraceType::kInitializing:
    case TraceType::kRecovering:
    case TraceType::kReady:
    case TraceType::kShutdown:
      return kCatStateTransitions;
    case TraceType::kFailureSuspicion:
    case TraceType::kFailed:
    case TraceType::kDisconnect:
    case TraceType::kJoin:
    case TraceType::kRevertingToSilentMode:
      return kCatChangeNotifications;
    case TraceType::kAllsWell:
    case TraceType::kDigest:  // digests carry coalesced ALLS_WELL
      return kCatAllUpdates;
    case TraceType::kLoadInformation:
      return kCatLoad;
    case TraceType::kNetworkMetrics:
      return kCatNetworkMetrics;
    case TraceType::kGaugeInterest:
      return 0;
  }
  return 0;
}

std::string_view category_suffix(std::uint8_t category_bit) {
  switch (category_bit) {
    case kCatChangeNotifications:
      return pubsub::trace_topics::kChangeNotifications;
    case kCatAllUpdates:
      return pubsub::trace_topics::kAllUpdates;
    case kCatStateTransitions:
      return pubsub::trace_topics::kStateTransitions;
    case kCatLoad:
      return pubsub::trace_topics::kLoad;
    case kCatNetworkMetrics:
      return pubsub::trace_topics::kNetworkMetrics;
    default:
      return "";
  }
}

TraceType state_trace_type(EntityState s) {
  switch (s) {
    case EntityState::kInitializing: return TraceType::kInitializing;
    case EntityState::kRecovering: return TraceType::kRecovering;
    case EntityState::kReady: return TraceType::kReady;
    case EntityState::kShutdown: return TraceType::kShutdown;
  }
  return TraceType::kReady;
}

std::string_view entity_state_name(EntityState s) {
  return trace_type_name(state_trace_type(s));
}

}  // namespace et::tracing
