#include "src/tracing/trace_filter.h"

#include "src/tracing/authorization_token.h"

namespace et::tracing {

pubsub::MessageFilter make_trace_filter(const TrustAnchors& anchors,
                                        transport::NetworkBackend& backend) {
  return [anchors, &backend](const pubsub::Message& m,
                             transport::NodeId) -> Status {
    const auto ct = pubsub::ConstrainedTopic::parse(m.topic);
    if (!ct || ct->event_type != "Traces" || !ct->constrainer_is_broker() ||
        ct->allowed != pubsub::AllowedActions::kPublishOnly) {
      return Status::ok();  // not a trace publication; other rules apply
    }

    if (m.auth_token.empty()) {
      return unauthenticated("trace message without authorization token");
    }
    AuthorizationToken token;
    try {
      token = AuthorizationToken::deserialize(m.auth_token);
    } catch (const SerializeError& e) {
      return unauthenticated(std::string("malformed token: ") + e.what());
    }
    if (const Status s =
            token.verify(anchors.tdn_key, anchors.ca_key, backend.now());
        !s.is_ok()) {
      return s;
    }
    if (token.rights() != TokenRights::kPublish) {
      return permission_denied("token does not grant publish rights");
    }
    // The token must authorize THIS topic: the first suffix segment of a
    // trace-publication topic is the trace-topic UUID.
    if (ct->suffixes.empty() ||
        ct->suffixes.front() != token.trace_topic().to_string()) {
      return permission_denied("token is for a different trace topic");
    }
    if (!token.verify_delegate_signature(m.signable_bytes(), m.signature)) {
      return unauthenticated("trace message not signed by the delegate key");
    }
    return Status::ok();
  };
}

void install_trace_filter(pubsub::Broker& broker,
                          const TrustAnchors& anchors) {
  broker.set_message_filter(make_trace_filter(anchors, broker.backend()));
}

}  // namespace et::tracing
