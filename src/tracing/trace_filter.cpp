#include "src/tracing/trace_filter.h"

#include <optional>
#include <string>
#include <utility>

#include "src/crypto/fingerprint.h"
#include "src/tracing/authorization_token.h"

namespace et::tracing {

namespace {

// May this rejection be replayed for a byte-identical resend? Signature
// -chain failures (unauthenticated / permission-denied) are deterministic
// over the bytes and the (fixed) trust anchors. Of the time-dependent
// kExpired rejections only a lapsed token window is monotonic — a
// not-yet-valid token or a transiently out-of-window credential must be
// re-verified later, so those are never cached.
bool rejection_is_deterministic(const Status& s, const AuthorizationToken& t,
                                TimePoint now, Duration skew) {
  if (s.code() != Code::kExpired) return true;
  return now - skew >= t.valid_until();
}

/// Is `topic` a trace publication this filter polices? Returns the parsed
/// topic when yes.
std::optional<pubsub::ConstrainedTopic> trace_publication(
    std::string_view topic) {
  auto ct = pubsub::ConstrainedTopic::parse(topic);
  if (!ct || ct->event_type != "Traces" || !ct->constrainer_is_broker() ||
      ct->allowed != pubsub::AllowedActions::kPublishOnly) {
    return std::nullopt;  // not a trace publication; other rules apply
  }
  return ct;
}

}  // namespace

pubsub::MessageFilter make_trace_filter(const TrustAnchors& anchors,
                                        transport::NetworkBackend& backend) {
  return make_trace_filter(anchors, backend, nullptr);
}

pubsub::MessageFilter make_trace_filter(
    const TrustAnchors& anchors, transport::NetworkBackend& backend,
    std::shared_ptr<TokenVerifyCache> cache,
    std::shared_ptr<internal::FilterCounters> counters) {
  auto verify = [anchors, &backend, cache = std::move(cache)](
                    const pubsub::MessageView& m) -> std::optional<Status> {
    const auto ct = trace_publication(m.topic);
    if (!ct) return std::nullopt;

    if (m.auth_token.empty()) {
      return unauthenticated("trace message without authorization token");
    }

    const TimePoint now = backend.now();
    const AuthorizationToken* token = nullptr;
    AuthorizationToken parsed;
    crypto::Fingerprint256 fp;
    if (cache) {
      fp = crypto::fingerprint(m.auth_token);
      const TokenVerifyCache::Lookup cached = cache->lookup(fp, now);
      if (cached.kind == TokenVerifyCache::Lookup::Kind::kRejected) {
        return cached.status;
      }
      if (cached.kind == TokenVerifyCache::Lookup::Kind::kOk) {
        token = cached.token;
      }
    }

    if (token == nullptr) {
      try {
        parsed = AuthorizationToken::deserialize(m.auth_token);
      } catch (const SerializeError& e) {
        // Malformed bytes are never cached: rejecting them is already
        // cheap, and an attacker flooding garbage must not be able to
        // thrash good entries out of the LRU.
        return unauthenticated(std::string("malformed token: ") + e.what());
      }
      if (const Status s =
              parsed.verify(anchors.tdn_key, anchors.ca_key, now);
          !s.is_ok()) {
        if (cache && rejection_is_deterministic(s, parsed, now,
                                                kDefaultSkewAllowance)) {
          cache->store_rejected(fp, s, now);
        }
        return s;
      }
      if (cache && cache->capacity() > 0) {
        token = cache->store_ok(fp, std::move(parsed), now);
      } else {
        token = &parsed;
      }
    }

    // Per-message checks: cheap, and dependent on the message rather than
    // the token bytes alone, so they run on cache hits too.
    if (token->rights() != TokenRights::kPublish) {
      return permission_denied("token does not grant publish rights");
    }
    // The token must authorize THIS topic: the first suffix segment of a
    // trace-publication topic is the trace-topic UUID.
    if (ct->suffixes.empty() ||
        ct->suffixes.front() != token->trace_topic().to_string()) {
      return permission_denied("token is for a different trace topic");
    }
    if (!token->verify_delegate_signature(m.signable_bytes(), m.signature)) {
      return unauthenticated("trace message not signed by the delegate key");
    }
    return Status::ok();
  };

  return [verify = std::move(verify), counters = std::move(counters)](
             pubsub::Broker&, const pubsub::MessageView& m,
             transport::NodeId) -> pubsub::FilterVerdict {
    const std::optional<Status> verdict = verify(m);
    if (counters) {
      if (!verdict) {
        counters->passthrough.inc();
      } else {
        counters->checked.inc();
        (verdict->is_ok() ? counters->accepted : counters->rejected).inc();
      }
    }
    if (verdict && !verdict->is_ok()) {
      return pubsub::FilterVerdict::reject(*verdict);
    }
    return pubsub::FilterVerdict::accept();
  };
}

TraceFilterHandle install_trace_filter(pubsub::Broker::Options& options,
                                       const TrustAnchors& anchors,
                                       transport::NetworkBackend& backend,
                                       const TracingConfig& config) {
  const TracingConfig::Verification& verification = config.verification;
  std::shared_ptr<TokenVerifyCache> cache;
  if (verification.cache_capacity > 0) {
    cache = std::make_shared<TokenVerifyCache>(verification.cache_capacity,
                                               verification.cache_ttl);
  }
  auto counters = std::make_shared<internal::FilterCounters>();
  auto pipeline = std::make_shared<VerifyPipeline>(
      anchors, backend, cache, verification,
      [counters](bool accepted) {
        (accepted ? counters->accepted : counters->rejected).inc();
      });

  // The filter does only the cheap gates inline; everything that costs an
  // RSA operation is deferred into the pipeline and resolved through the
  // broker's deferred-verdict hooks.
  options.message_filter =
      [counters, pipeline](pubsub::Broker& self, const pubsub::MessageView& m,
                           transport::NodeId from) -> pubsub::FilterVerdict {
    const auto ct = trace_publication(m.topic);
    if (!ct) {
      counters->passthrough.inc();
      return pubsub::FilterVerdict::accept();
    }
    counters->checked.inc();
    if (m.auth_token.empty()) {
      counters->rejected.inc();
      return pubsub::FilterVerdict::reject(
          unauthenticated("trace message without authorization token"));
    }
    // The first suffix segment is the trace-topic UUID the token must
    // authorize; an empty suffix list can never match one, and the batch
    // stage rejects it with the same status the inline filter uses.
    std::string expected =
        ct->suffixes.empty() ? std::string() : ct->suffixes.front();
    // The pipeline parks the message past this packet-handler call, so it
    // gets an owning copy — the one materialization on the deferred path.
    pipeline->admit(self, m.materialize(), std::move(expected), from);
    return pubsub::FilterVerdict::defer();
  };
  return {std::move(cache), std::move(counters), std::move(pipeline)};
}

}  // namespace et::tracing
