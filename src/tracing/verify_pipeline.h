// Batched per-hop verification pipeline (paper §4.3/§5.2, DESIGN.md §10).
//
// The trace filter no longer verifies delegate signatures inline: trace
// publications are *admitted* into a per-broker verification queue and the
// filter answers FilterVerdict::defer(). A drain stage later takes the
// backlog FIFO, groups it by delegate-key fingerprint, resolves the
// token-chain verdict once per key (through the TokenVerifyCache) and
// builds one RsaVerifyContext — the Montgomery domain of the delegate
// modulus plus a sparse-exponent ladder — per key, so a burst of traces
// from one hosting broker pays the per-key setup once instead of once per
// message. Accepted messages re-enter routing via Broker::release_deferred
// in admission order; rejections go through Broker::reject_deferred and
// get the same misbehaviour accounting an inline rejection would.
//
// Ordering: the queue is FIFO and at most one drain pass is in flight at
// a time (the active flag clears only after the node-context apply), so
// messages are released in exactly their admission order — grouping by
// key reorders *verification work*, never *delivery*.
//
// Scheduling by backend:
//   * VirtualTimeNetwork (concurrent_dispatch() == false): every admission
//     posts a drain task in the broker's node context "as soon as
//     possible", which the backend runs at the same virtual timestamp.
//     All trace publications that arrive at one timestamp are verified in
//     one batch and released before time advances — runs are bit-for-bit
//     identical to each other, and message-for-message identical to the
//     inline filter. Verification::threads/batch_max/batch_delay are
//     ignored.
//   * RealTimeNetwork: with batch_delay == 0 a drain fires whenever the
//     stage is idle and the queue is non-empty (sparse traffic pays no
//     added wait; bursts batch anyway because admissions during a busy
//     drain pile up for the next pass). With batch_delay > 0 the queue
//     accumulates until it holds Verification::batch_max messages or the
//     oldest has waited batch_delay, whichever comes first. With
//     Verification::threads > 0 the drain runs on a worker pool (key
//     groups of one batch are verified concurrently); with 0 it is posted
//     to the node context.
//
// Threading: admit() runs in the broker's node context (it is called by
// the message filter). The token cache is touched only by the drain
// coordinator; successive drains are serialized through the queue mutex,
// so the cache still sees single-threaded access. stats() reads relaxed
// atomics and is safe from any thread. Like in-flight match jobs, drain
// tasks reference the broker: stop the network before destroying it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/pubsub/broker.h"
#include "src/tracing/config.h"
#include "src/tracing/token_verify_cache.h"
#include "src/transport/network.h"

namespace et::tracing {

/// One consistent read of a pipeline's batch-stage counters.
struct VerifyPipelineStats {
  std::uint64_t queued = 0;        // messages admitted into the queue
  std::uint64_t drains = 0;        // drain passes run
  std::uint64_t batched = 0;       // messages taken off the queue in batches
  std::uint64_t keys_deduped = 0;  // messages that shared a batch key group
                                   // with an earlier member (chain + context
                                   // amortized away)
  std::uint64_t max_drain_depth = 0;  // deepest backlog a drain observed
};

namespace internal {
/// Live pipeline counters; relaxed atomics, readable from any thread.
struct PipelineCounters {
  RelaxedCounter queued;
  RelaxedCounter drains;
  RelaxedCounter batched;
  RelaxedCounter keys_deduped;
  RelaxedMaxGauge max_drain_depth;

  [[nodiscard]] VerifyPipelineStats snapshot() const {
    return {queued.get(), drains.get(), batched.get(), keys_deduped.get(),
            max_drain_depth.get()};
  }
};
}  // namespace internal

class VerifyPipeline {
 public:
  /// Per-verdict hook, invoked in the broker's node context right before
  /// the verdict is applied — install_trace_filter uses it to keep the
  /// filter's accepted/rejected counters in step with deferred outcomes.
  using VerdictHook = std::function<void(bool accepted)>;

  /// `cache` may be nullptr (every batch runs the full chain per key).
  /// `config` is the merged TracingConfig::Verification block; threads are
  /// clamped to 0 unless `backend` reports concurrent_dispatch().
  VerifyPipeline(TrustAnchors anchors, transport::NetworkBackend& backend,
                 std::shared_ptr<TokenVerifyCache> cache,
                 TracingConfig::Verification config,
                 VerdictHook on_verdict = {});

  VerifyPipeline(const VerifyPipeline&) = delete;
  VerifyPipeline& operator=(const VerifyPipeline&) = delete;

  /// Joins the drain worker pool; the network must already be stopped.
  ~VerifyPipeline();

  /// Queues a trace publication whose cheap gates (topic grammar, token
  /// presence) already passed. Must run in `self`'s node context — the
  /// caller is the broker's message filter, which just answered kDefer
  /// for this message. `expected_topic` is the trace-topic UUID segment
  /// the publication topic named (the token must authorize exactly it).
  /// A pipeline instance serves one broker for its whole lifetime.
  void admit(pubsub::Broker& self, pubsub::Message m,
             std::string expected_topic, transport::NodeId from);

  /// Batch-stage counters; safe from any thread.
  [[nodiscard]] VerifyPipelineStats stats() const {
    return counters_.snapshot();
  }

  /// True when no message is queued and no drain is in flight. Real-time
  /// tests poll this (after stopping publishers) to know the backlog has
  /// fully resolved.
  [[nodiscard]] bool idle() const;

  /// Drain worker threads actually in use (0 after clamping).
  [[nodiscard]] int verify_threads() const { return pool_threads_; }

 private:
  struct Pending {
    pubsub::Message msg;
    transport::NodeId from = transport::kInvalidNode;
    std::string expected_topic;
  };
  struct Group;
  class Pool;

  /// Starts a drain if one should run now; called with `lock` held (it is
  /// released before any backend call).
  void maybe_start_drain(std::unique_lock<std::mutex>& lock);
  void start_drain_locked(std::unique_lock<std::mutex>& lock);
  /// Drain coordinator: batch, group, verify, commit cache stores, then
  /// apply (inline when already in the node context, else posted back).
  void run_drain();
  /// Resolves one key group; runs on the coordinator or a pool worker.
  void verify_group(Group& g, const std::vector<Pending>& batch,
                    std::vector<Status>& verdicts, TimePoint now) const;
  /// Applies verdicts in admission order. Node context only.
  void apply(std::vector<Pending>& batch, const std::vector<Status>& verdicts);

  const TrustAnchors anchors_;
  transport::NetworkBackend& backend_;
  const std::shared_ptr<TokenVerifyCache> cache_;
  const TracingConfig::Verification config_;
  const VerdictHook on_verdict_;
  const bool concurrent_;  // backend.concurrent_dispatch()
  int pool_threads_ = 0;
  std::unique_ptr<Pool> pool_;  // null when pool_threads_ == 0

  pubsub::Broker* broker_ = nullptr;  // bound on first admit
  transport::NodeId node_ = transport::kInvalidNode;

  mutable std::mutex mu_;
  std::deque<Pending> queue_;
  bool drain_active_ = false;
  transport::TimerId delay_timer_ = 0;

  internal::PipelineCounters counters_;
};

}  // namespace et::tracing
