#include "src/baseline/allpairs_heartbeat.h"

namespace et::baseline {

using transport::NodeId;

AllPairsNode::AllPairsNode(transport::VirtualTimeNetwork& net,
                           std::string name, Duration heartbeat_interval,
                           Duration failure_timeout)
    : net_(net),
      name_(std::move(name)),
      interval_(heartbeat_interval),
      timeout_(failure_timeout) {
  node_ = net_.add_node(name_, [this](NodeId from, BytesView payload) {
    on_packet(from, payload);
  });
}

void AllPairsNode::add_peer(AllPairsNode& other,
                            const transport::LinkParams& params) {
  if (!net_.linked(node_, other.node_)) {
    net_.link(node_, other.node_, params);
  }
  peers_[other.node_] = Peer{other.node_, other.name_, net_.now(), false};
  other.peers_[node_] = Peer{node_, name_, net_.now(), false};
}

void AllPairsNode::start() {
  net_.schedule(node_, interval_, [this] { tick(); });
}

void AllPairsNode::tick() {
  const TimePoint now = net_.now();
  if (alive_) {
    for (auto& [id, peer] : peers_) {
      (void)net_.send(node_, id, Bytes{0x48});  // 'H'
      ++sent_;
    }
  }
  // Failure detection sweep.
  for (auto& [id, peer] : peers_) {
    if (!peer.suspected && now - peer.last_heard > timeout_) {
      peer.suspected = true;
      if (on_failure) on_failure(peer.name, now);
    }
  }
  net_.schedule(node_, interval_, [this] { tick(); });
}

void AllPairsNode::on_packet(NodeId from, BytesView) {
  const auto it = peers_.find(from);
  if (it == peers_.end()) return;
  it->second.last_heard = net_.now();
  it->second.suspected = false;
}

std::vector<std::string> AllPairsNode::failed_peers() const {
  std::vector<std::string> out;
  for (const auto& [id, peer] : peers_) {
    if (peer.suspected) out.push_back(peer.name);
  }
  return out;
}

AllPairsSystem::AllPairsSystem(transport::VirtualTimeNetwork& net,
                               std::size_t n, Duration heartbeat_interval,
                               Duration failure_timeout,
                               const transport::LinkParams& params) {
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<AllPairsNode>(
        net, "node" + std::to_string(i), heartbeat_interval,
        failure_timeout));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      nodes_[i]->add_peer(*nodes_[j], params);
    }
  }
}

void AllPairsSystem::start() {
  for (auto& n : nodes_) n->start();
}

std::uint64_t AllPairsSystem::total_heartbeats() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->heartbeats_sent();
  return total;
}

}  // namespace et::baseline
